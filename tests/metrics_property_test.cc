#include <set>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "metrics/metrics.h"
#include "ml/bitvector.h"

namespace hygnn::metrics {
namespace {

/// ROC-AUC (rank formula) against the O(n^2) pair-counting definition
/// over random score/label sets, including heavy ties.
class RocAucPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RocAucPropertyTest, MatchesPairCountingDefinition) {
  core::Rng rng(GetParam());
  const size_t n = 2 + rng.UniformInt(120);
  std::vector<float> scores(n), labels(n);
  bool has_pos = false, has_neg = false;
  for (size_t i = 0; i < n; ++i) {
    // Coarse quantization to force score ties.
    scores[i] = static_cast<float>(rng.UniformInt(8)) / 8.0f;
    labels[i] = rng.Bernoulli(0.4) ? 1.0f : 0.0f;
    (labels[i] > 0.5f ? has_pos : has_neg) = true;
  }
  if (!has_pos || !has_neg) {
    EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.5);
    return;
  }
  double wins = 0.0;
  int64_t pairs = 0;
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] < 0.5f) continue;
    for (size_t j = 0; j < n; ++j) {
      if (labels[j] > 0.5f) continue;
      ++pairs;
      if (scores[i] > scores[j]) {
        wins += 1.0;
      } else if (scores[i] == scores[j]) {
        wins += 0.5;
      }
    }
  }
  EXPECT_NEAR(RocAuc(scores, labels), wins / static_cast<double>(pairs),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RocAucPropertyTest,
                         ::testing::Values(7u, 17u, 27u, 37u, 47u, 57u));

/// F1-at-best-threshold dominates F1 at any fixed threshold.
class BestF1PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BestF1PropertyTest, DominatesFixedThresholds) {
  core::Rng rng(GetParam());
  const size_t n = 5 + rng.UniformInt(80);
  std::vector<float> scores(n), labels(n);
  for (size_t i = 0; i < n; ++i) {
    scores[i] = rng.UniformFloat();
    labels[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  }
  const double best = BestF1Threshold(scores, labels).f1;
  for (float threshold : {0.1f, 0.3f, 0.5f, 0.7f, 0.9f}) {
    EXPECT_GE(best + 1e-12, F1Score(scores, labels, threshold));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BestF1PropertyTest,
                         ::testing::Values(3u, 13u, 23u, 33u));

/// BitVector set algebra against std::set references.
class BitVectorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitVectorPropertyTest, MatchesSetAlgebra) {
  core::Rng rng(GetParam());
  const int32_t bits = 1 + static_cast<int32_t>(rng.UniformInt(300));
  ml::BitVector a(bits), b(bits);
  std::set<int32_t> sa, sb;
  const size_t inserts = rng.UniformInt(static_cast<uint64_t>(bits) * 2);
  for (size_t i = 0; i < inserts; ++i) {
    const int32_t bit = static_cast<int32_t>(rng.UniformInt(bits));
    if (rng.Bernoulli(0.5)) {
      a.SetBit(bit);
      sa.insert(bit);
    } else {
      b.SetBit(bit);
      sb.insert(bit);
    }
  }
  EXPECT_EQ(a.Popcount(), static_cast<int64_t>(sa.size()));
  std::set<int32_t> intersection, union_set(sa.begin(), sa.end());
  for (int32_t bit : sb) {
    if (sa.count(bit)) intersection.insert(bit);
    union_set.insert(bit);
  }
  EXPECT_EQ(a.IntersectionCount(b),
            static_cast<int64_t>(intersection.size()));
  EXPECT_EQ(a.UnionCount(b), static_cast<int64_t>(union_set.size()));
  EXPECT_EQ(a.And(b).Popcount(),
            static_cast<int64_t>(intersection.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVectorPropertyTest,
                         ::testing::Values(5u, 15u, 25u, 35u, 45u));

}  // namespace
}  // namespace hygnn::metrics
