#include <map>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "graph/graph.h"
#include "graph/random_walk.h"

namespace hygnn::graph {
namespace {

Graph MakePath() { return Graph(4, {{0, 1}, {1, 2}, {2, 3}}); }

TEST(RandomWalkTest, WalkCountAndLength) {
  Graph g = MakePath();
  core::Rng rng(1);
  RandomWalkConfig config;
  config.walk_length = 10;
  config.num_walks_per_node = 3;
  auto walks = UniformRandomWalks(g, config, &rng);
  EXPECT_EQ(walks.size(), 12u);
  for (const auto& walk : walks) {
    EXPECT_GE(walk.size(), 1u);
    EXPECT_LE(walk.size(), 10u);
  }
}

TEST(RandomWalkTest, StepsFollowEdges) {
  Graph g = MakePath();
  core::Rng rng(2);
  RandomWalkConfig config;
  config.walk_length = 20;
  config.num_walks_per_node = 5;
  for (const auto& walk : UniformRandomWalks(g, config, &rng)) {
    for (size_t i = 1; i < walk.size(); ++i) {
      EXPECT_TRUE(g.HasEdge(walk[i - 1], walk[i]))
          << walk[i - 1] << "->" << walk[i];
    }
  }
}

TEST(RandomWalkTest, IsolatedNodeWalkStops) {
  Graph g(2, {});
  core::Rng rng(3);
  RandomWalkConfig config;
  config.walk_length = 10;
  config.num_walks_per_node = 1;
  auto walks = UniformRandomWalks(g, config, &rng);
  ASSERT_EQ(walks.size(), 2u);
  EXPECT_EQ(walks[0].size(), 1u);
}

TEST(RandomWalkTest, EveryNodeIsAStart) {
  Graph g = MakePath();
  core::Rng rng(4);
  RandomWalkConfig config;
  config.walk_length = 5;
  config.num_walks_per_node = 1;
  auto walks = UniformRandomWalks(g, config, &rng);
  std::map<int32_t, int> starts;
  for (const auto& walk : walks) ++starts[walk[0]];
  for (int32_t v = 0; v < 4; ++v) EXPECT_EQ(starts[v], 1);
}

TEST(BiasedWalkTest, StepsFollowEdges) {
  Graph g = MakePath();
  core::Rng rng(5);
  RandomWalkConfig config;
  config.walk_length = 15;
  config.num_walks_per_node = 4;
  config.p = 0.5;
  config.q = 2.0;
  for (const auto& walk : BiasedRandomWalks(g, config, &rng)) {
    for (size_t i = 1; i < walk.size(); ++i) {
      EXPECT_TRUE(g.HasEdge(walk[i - 1], walk[i]));
    }
  }
}

TEST(BiasedWalkTest, LowPReturnsMoreOften) {
  // Star graph: center 0 with leaves. From a leaf, the only move is back
  // to the center; from the center with small p, the walk should return
  // to the previous leaf more often than under large p.
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t leaf = 1; leaf <= 6; ++leaf) edges.push_back({0, leaf});
  Graph star(7, edges);

  auto count_immediate_returns = [&star](double p, uint64_t seed) {
    core::Rng rng(seed);
    RandomWalkConfig config;
    config.walk_length = 50;
    config.num_walks_per_node = 30;
    config.p = p;
    config.q = 1.0;
    int returns = 0, transitions = 0;
    for (const auto& walk : BiasedRandomWalks(star, config, &rng)) {
      for (size_t i = 2; i < walk.size(); ++i) {
        ++transitions;
        if (walk[i] == walk[i - 2]) ++returns;
      }
    }
    return static_cast<double>(returns) / transitions;
  };

  const double return_rate_low_p = count_immediate_returns(0.1, 11);
  const double return_rate_high_p = count_immediate_returns(10.0, 11);
  EXPECT_GT(return_rate_low_p, return_rate_high_p);
}

TEST(BiasedWalkTest, UnitPqMatchesUniformStatistics) {
  // With p = q = 1 the biased walk reduces to a first-order walk; check
  // the stationary visit distribution is proportional to degree.
  Graph g(3, {{0, 1}, {1, 2}});  // degrees 1, 2, 1
  core::Rng rng(13);
  RandomWalkConfig config;
  config.walk_length = 200;
  config.num_walks_per_node = 30;
  auto walks = BiasedRandomWalks(g, config, &rng);
  std::map<int32_t, int64_t> visits;
  int64_t total = 0;
  for (const auto& walk : walks) {
    for (int32_t v : walk) {
      ++visits[v];
      ++total;
    }
  }
  // Node 1 has half the total degree.
  EXPECT_NEAR(static_cast<double>(visits[1]) / total, 0.5, 0.05);
}

}  // namespace
}  // namespace hygnn::graph
