#include "hygnn/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fs.h"
#include "core/rng.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "data/pairs.h"
#include "graph/builders.h"
#include "hygnn/model.h"
#include "hygnn/trainer.h"

namespace hygnn::model {
namespace {

std::string TempDirPath(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  core::PosixFs().CreateDir(dir);
  // These names are fixed, so a checkpoint left by a previous test
  // binary (possibly an older format version) would leak into this run.
  core::PosixFs().Remove(CheckpointPath(dir));
  return dir;
}

/// Miniature corpus shared by the resume tests.
struct TinyPipeline {
  TinyPipeline() {
    data::DatasetConfig data_config;
    data_config.num_drugs = 60;
    data_config.seed = 606;
    dataset = std::make_unique<data::DdiDataset>(
        data::GenerateDataset(data_config).value());
    data::FeaturizeConfig feat_config;
    feat_config.espf_frequency_threshold = 3;
    featurizer = std::make_unique<data::SubstructureFeaturizer>(
        data::SubstructureFeaturizer::Build(dataset->drugs(), feat_config)
            .value());
    auto hypergraph = graph::BuildDrugHypergraph(
        featurizer->drug_substructures(), featurizer->num_substructures());
    context = std::make_unique<HypergraphContext>(
        HypergraphContext::FromHypergraph(hypergraph));
    core::Rng rng(607);
    pairs = data::BuildBalancedPairs(*dataset, &rng);
  }

  HyGnnModel MakeModel(uint64_t seed = 1) const {
    core::Rng rng(seed);
    HyGnnConfig config;
    config.encoder.hidden_dim = 8;
    config.encoder.output_dim = 8;
    config.decoder_hidden_dim = 8;
    return HyGnnModel(featurizer->num_substructures(), config, &rng);
  }

  /// The checkpoint-relevant TrainConfig: mini-batching (the RNG is
  /// consumed every epoch) plus a validation fold (early-stop counters
  /// must survive the round trip).
  TrainConfig MakeConfig(int32_t epochs) const {
    TrainConfig config;
    config.epochs = epochs;
    config.batch_size = 64;
    config.validation_fraction = 0.25;
    config.seed = 7;
    config.checkpoint_backoff_ms = 0;
    return config;
  }

  std::unique_ptr<data::DdiDataset> dataset;
  std::unique_ptr<data::SubstructureFeaturizer> featurizer;
  std::unique_ptr<HypergraphContext> context;
  std::vector<data::LabeledPair> pairs;
};

std::vector<float> FlattenWeights(const HyGnnModel& model) {
  std::vector<float> flat;
  for (const auto& p : model.Parameters()) {
    flat.insert(flat.end(), p.data(), p.data() + p.size());
  }
  return flat;
}

bool BitIdentical(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

TEST(TrainCheckpointTest, RoundTripsEveryFieldBitExact) {
  TrainCheckpoint ckpt;
  ckpt.next_epoch = 17;
  ckpt.epoch_losses = {0.9f, 0.5f, 0.30000001f};
  ckpt.best_val_loss = 0.42f;
  ckpt.epochs_since_improvement = 3;
  ckpt.val_losses = {0.8f, 0.42f, 0.55f};
  ckpt.best_epoch = 1;
  ckpt.best_weights = {{0.5f, -0.25f, 1e-7f}, {3.0f}};
  core::Rng rng(99);
  rng.Normal();  // park a Box-Muller spare in the state
  ckpt.rng = rng.state();
  ckpt.adam.step = 51;
  ckpt.adam.m = {{0.125f, -2.5f}, {1e-9f}};
  ckpt.adam.v = {{0.0625f, 6.25f}, {1e-18f}};
  ckpt.weights.emplace_back("param0",
                            tensor::Tensor::Full(2, 2, 0.7071f));

  const std::string path =
      CheckpointPath(TempDirPath("ckpt_roundtrip"));
  ASSERT_TRUE(ckpt.Save(path, /*attempts=*/1, /*backoff_ms=*/0).ok());
  auto loaded = TrainCheckpoint::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const TrainCheckpoint& got = loaded.value();

  EXPECT_EQ(got.next_epoch, 17);
  ASSERT_EQ(got.epoch_losses.size(), 3u);
  EXPECT_EQ(std::memcmp(got.epoch_losses.data(), ckpt.epoch_losses.data(),
                        3 * sizeof(float)),
            0);
  EXPECT_EQ(got.best_val_loss, 0.42f);
  EXPECT_EQ(got.epochs_since_improvement, 3);
  ASSERT_EQ(got.val_losses.size(), 3u);
  EXPECT_EQ(std::memcmp(got.val_losses.data(), ckpt.val_losses.data(),
                        3 * sizeof(float)),
            0);
  EXPECT_EQ(got.best_epoch, 1);
  ASSERT_EQ(got.best_weights.size(), 2u);
  EXPECT_EQ(got.best_weights[0], ckpt.best_weights[0]);
  EXPECT_EQ(got.best_weights[1], ckpt.best_weights[1]);
  EXPECT_EQ(got.rng.s, ckpt.rng.s);
  EXPECT_EQ(got.rng.has_cached_normal, ckpt.rng.has_cached_normal);
  EXPECT_EQ(got.rng.cached_normal, ckpt.rng.cached_normal);
  // Adam: step and both moments, element-for-element.
  EXPECT_EQ(got.adam.step, 51);
  ASSERT_EQ(got.adam.m.size(), 2u);
  ASSERT_EQ(got.adam.v.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(got.adam.m[i], ckpt.adam.m[i]) << "m[" << i << "]";
    EXPECT_EQ(got.adam.v[i], ckpt.adam.v[i]) << "v[" << i << "]";
  }
  ASSERT_EQ(got.weights.size(), 1u);
  EXPECT_EQ(got.weights[0].first, "param0");
  EXPECT_EQ(got.weights[0].second.At(1, 1), 0.7071f);

  // The restored RNG stream continues exactly where the original does.
  core::Rng resumed(0);
  resumed.set_state(got.rng);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(resumed.Next(), rng.Next());
}

TEST(TrainCheckpointTest, LoadRejectsCorruptAndTornFiles) {
  const std::string dir = TempDirPath("ckpt_corrupt");
  const std::string path = CheckpointPath(dir);
  TrainCheckpoint ckpt;
  ckpt.weights.emplace_back("w", tensor::Tensor::Full(1, 1, 1.0f));
  ASSERT_TRUE(ckpt.Save(path, 1, 0).ok());

  auto raw = core::PosixFs().ReadFile(path);
  ASSERT_TRUE(raw.ok());

  // Torn: last bytes never made it to disk.
  std::string torn = raw.value().substr(0, raw.value().size() - 10);
  ASSERT_TRUE(core::WriteFileAtomic(core::PosixFs(), path, torn).ok());
  EXPECT_FALSE(TrainCheckpoint::Load(path).ok());

  // Corrupt: one payload byte flipped under an intact footer.
  std::string corrupt = raw.value();
  corrupt[8] ^= 0x10;
  ASSERT_TRUE(core::WriteFileAtomic(core::PosixFs(), path, corrupt).ok());
  auto loaded = TrainCheckpoint::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("checksum mismatch"),
            std::string::npos);
}

TEST(TrainCheckpointTest, KillAndResumeIsBitIdenticalToStraightRun) {
  TinyPipeline pipeline;
  constexpr int32_t kTotal = 8;
  constexpr int32_t kKillAfter = 4;

  // Reference: one uninterrupted run.
  HyGnnModel straight = pipeline.MakeModel();
  HyGnnTrainer straight_trainer(&straight, pipeline.MakeConfig(kTotal));
  straight_trainer.Fit(*pipeline.context, pipeline.pairs);

  // "Killed" run: stop at epoch kKillAfter with a checkpoint on disk...
  const std::string dir = TempDirPath("ckpt_resume");
  HyGnnModel killed = pipeline.MakeModel();
  TrainConfig first_half = pipeline.MakeConfig(kKillAfter);
  first_half.checkpoint_dir = dir;
  HyGnnTrainer killed_trainer(&killed, first_half);
  killed_trainer.Fit(*pipeline.context, pipeline.pairs);

  // ...then restart from scratch objects and resume.
  HyGnnModel resumed = pipeline.MakeModel();
  TrainConfig second_half = pipeline.MakeConfig(kTotal);
  second_half.checkpoint_dir = dir;
  second_half.resume = true;
  HyGnnTrainer resumed_trainer(&resumed, second_half);
  resumed_trainer.Fit(*pipeline.context, pipeline.pairs);

  // Loss history: same length, byte-for-byte equal.
  const auto& ref_losses = straight_trainer.epoch_losses();
  const auto& res_losses = resumed_trainer.epoch_losses();
  ASSERT_EQ(res_losses.size(), ref_losses.size());
  EXPECT_EQ(std::memcmp(res_losses.data(), ref_losses.data(),
                        ref_losses.size() * sizeof(float)),
            0);

  // Weights: bit-identical to the run that never stopped.
  EXPECT_TRUE(
      BitIdentical(FlattenWeights(straight), FlattenWeights(resumed)));
}

TEST(TrainCheckpointTest, ResumeAcrossEarlyStopRestoresSameBestWeights) {
  // An early-stopped run hands back its best-epoch weights. A run that
  // was killed mid-training and resumed must early-stop at the same
  // epoch and restore the same snapshot — best_weights rides in every
  // checkpoint, so the restore survives the kill.
  TinyPipeline pipeline;
  TrainConfig base = pipeline.MakeConfig(/*epochs=*/200);
  base.patience = 2;

  HyGnnModel straight = pipeline.MakeModel();
  HyGnnTrainer straight_trainer(&straight, base);
  straight_trainer.Fit(*pipeline.context, pipeline.pairs);
  ASSERT_TRUE(straight_trainer.early_stopped())
      << "tune patience: the reference run must early-stop";
  const auto epochs_run =
      static_cast<int32_t>(straight_trainer.epoch_losses().size());
  ASSERT_GE(epochs_run, 2);

  // "Kill" halfway (the straight run did not stop that early, so this
  // run cannot either — identical trajectories), then resume.
  const std::string dir = TempDirPath("ckpt_earlystop");
  HyGnnModel killed = pipeline.MakeModel();
  TrainConfig first_half = base;
  first_half.epochs = std::max(1, epochs_run / 2);
  first_half.checkpoint_dir = dir;
  HyGnnTrainer killed_trainer(&killed, first_half);
  killed_trainer.Fit(*pipeline.context, pipeline.pairs);

  HyGnnModel resumed = pipeline.MakeModel();
  TrainConfig second_half = base;
  second_half.checkpoint_dir = dir;
  second_half.resume = true;
  HyGnnTrainer resumed_trainer(&resumed, second_half);
  resumed_trainer.Fit(*pipeline.context, pipeline.pairs);

  EXPECT_TRUE(resumed_trainer.early_stopped());
  EXPECT_EQ(resumed_trainer.best_epoch(), straight_trainer.best_epoch());
  ASSERT_EQ(resumed_trainer.epoch_losses().size(),
            straight_trainer.epoch_losses().size());
  ASSERT_EQ(resumed_trainer.val_losses().size(),
            straight_trainer.val_losses().size());
  EXPECT_TRUE(
      BitIdentical(FlattenWeights(straight), FlattenWeights(resumed)));
}

TEST(TrainCheckpointTest, ResumeWithMissingCheckpointStartsFresh) {
  TinyPipeline pipeline;
  HyGnnModel model = pipeline.MakeModel();
  TrainConfig config = pipeline.MakeConfig(3);
  config.checkpoint_dir = TempDirPath("ckpt_fresh");
  config.resume = true;  // nothing there yet — must not be an error
  HyGnnTrainer trainer(&model, config);
  auto result = trainer.TryFit(*pipeline.context, pipeline.pairs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(trainer.epoch_losses().size(), 3u);
}

TEST(TrainCheckpointTest, ResumeFromCorruptCheckpointIsTypedError) {
  TinyPipeline pipeline;
  const std::string dir = TempDirPath("ckpt_badresume");
  ASSERT_TRUE(core::WriteFileAtomic(core::PosixFs(),
                                    CheckpointPath(dir),
                                    "garbage, not a checkpoint")
                  .ok());
  HyGnnModel model = pipeline.MakeModel();
  TrainConfig config = pipeline.MakeConfig(3);
  config.checkpoint_dir = dir;
  config.resume = true;
  HyGnnTrainer trainer(&model, config);
  auto result = trainer.TryFit(*pipeline.context, pipeline.pairs);
  // Never silently restart over work the caller believes is saved.
  ASSERT_FALSE(result.ok());
}

TEST(TrainCheckpointTest, ResumeWithoutCheckpointDirIsTypedError) {
  TinyPipeline pipeline;
  HyGnnModel model = pipeline.MakeModel();
  TrainConfig config = pipeline.MakeConfig(2);
  config.resume = true;  // but no checkpoint_dir
  HyGnnTrainer trainer(&model, config);
  auto result = trainer.TryFit(*pipeline.context, pipeline.pairs);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kInvalidArgument);
}

TEST(TrainCheckpointTest, FailedCheckpointWritesDoNotKillTraining) {
  TinyPipeline pipeline;
  HyGnnModel model = pipeline.MakeModel();
  TrainConfig config = pipeline.MakeConfig(3);
  config.checkpoint_dir = TempDirPath("ckpt_deaddisk");
  config.checkpoint_write_attempts = 1;
  HyGnnTrainer trainer(&model, config);

  core::FaultInjectingFs faulty(&core::PosixFs());
  faulty.FailAllAppends(true);  // every checkpoint write dies
  core::ScopedFileSystem scoped(&faulty);
  auto result = trainer.TryFit(*pipeline.context, pipeline.pairs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(trainer.epoch_losses().size(), 3u);
  EXPECT_FALSE(
      core::PosixFs().Exists(CheckpointPath(config.checkpoint_dir)));
}

TEST(TrainCheckpointTest, CheckpointEveryStillWritesFinalEpoch) {
  TinyPipeline pipeline;
  HyGnnModel model = pipeline.MakeModel();
  TrainConfig config = pipeline.MakeConfig(7);
  config.checkpoint_dir = TempDirPath("ckpt_interval");
  config.checkpoint_every = 3;  // 7 is not a multiple — final epoch wins
  HyGnnTrainer trainer(&model, config);
  trainer.Fit(*pipeline.context, pipeline.pairs);
  auto ckpt =
      TrainCheckpoint::Load(CheckpointPath(config.checkpoint_dir));
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
  EXPECT_EQ(ckpt.value().next_epoch, 7);
  EXPECT_EQ(ckpt.value().epoch_losses.size(), 7u);
  // Full-batch would take 1 Adam step per epoch; mini-batching takes
  // several — either way the step count is positive and persisted.
  EXPECT_GT(ckpt.value().adam.step, 0);
}

}  // namespace
}  // namespace hygnn::model
