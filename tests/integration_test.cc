#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "data/pairs.h"
#include "graph/builders.h"
#include "hygnn/model.h"
#include "hygnn/trainer.h"

namespace hygnn {
namespace {

/// End-to-end pipeline on a shared dataset: generate -> featurize ->
/// hypergraph -> HyGNN. Also checks the paper's headline *shape* claim
/// at miniature scale: HyGNN beats the functional-representation ML
/// baseline on identical data.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DatasetConfig data_config;
    data_config.num_drugs = 130;
    data_config.seed = 101;
    dataset_ =
        new data::DdiDataset(data::GenerateDataset(data_config).value());
    data::FeaturizeConfig feat_config;
    feat_config.mode = data::SubstructureMode::kEspf;
    feat_config.espf_frequency_threshold = 3;
    featurizer_ = new data::SubstructureFeaturizer(
        data::SubstructureFeaturizer::Build(dataset_->drugs(), feat_config)
            .value());
    core::Rng rng(102);
    auto pairs = data::BuildBalancedPairs(*dataset_, &rng);
    split_ = new data::PairSplit(data::RandomSplit(pairs, 0.7, &rng));
  }

  static void TearDownTestSuite() {
    delete split_;
    delete featurizer_;
    delete dataset_;
  }

  static model::EvalResult TrainHyGnn(model::DecoderKind decoder,
                                      int32_t epochs) {
    auto hypergraph = graph::BuildDrugHypergraph(
        featurizer_->drug_substructures(),
        featurizer_->num_substructures());
    auto context = model::HypergraphContext::FromHypergraph(hypergraph);
    core::Rng rng(103);
    model::HyGnnConfig config;
    config.encoder.hidden_dim = 32;
    config.encoder.output_dim = 32;
    config.decoder = decoder;
    model::HyGnnModel hygnn(featurizer_->num_substructures(), config, &rng);
    model::TrainConfig train_config;
    train_config.epochs = epochs;
    model::HyGnnTrainer trainer(&hygnn, train_config);
    trainer.Fit(context, split_->train);
    return trainer.Evaluate(context, split_->test);
  }

  static data::DdiDataset* dataset_;
  static data::SubstructureFeaturizer* featurizer_;
  static data::PairSplit* split_;
};

data::DdiDataset* PipelineTest::dataset_ = nullptr;
data::SubstructureFeaturizer* PipelineTest::featurizer_ = nullptr;
data::PairSplit* PipelineTest::split_ = nullptr;

TEST_F(PipelineTest, HyGnnMlpLearnsStrongSignal) {
  auto result = TrainHyGnn(model::DecoderKind::kMlp, 150);
  EXPECT_GT(result.roc_auc, 0.80);
  EXPECT_GT(result.pr_auc, 0.75);
  EXPECT_GT(result.f1, 0.70);
}

TEST_F(PipelineTest, HyGnnDotAlsoLearns) {
  auto result = TrainHyGnn(model::DecoderKind::kDot, 150);
  EXPECT_GT(result.roc_auc, 0.70);
}

TEST_F(PipelineTest, HyGnnBeatsFrBaselineShapeClaim) {
  // Table I shape at miniature scale: HyGNN >> ML-on-FR.
  auto hygnn_result = TrainHyGnn(model::DecoderKind::kMlp, 150);

  baselines::BaselineInputs inputs;
  inputs.num_drugs = dataset_->num_drugs();
  inputs.drug_substructures = &featurizer_->drug_substructures();
  inputs.num_substructures = featurizer_->num_substructures();
  inputs.train = split_->train;
  inputs.test = split_->test;
  inputs.seed = 104;
  baselines::BaselineConfig config;
  config.epochs = 60;
  auto lr_result = baselines::RunMlOnFunctionalRepresentation(
      inputs, baselines::MlKind::kLr, config);

  EXPECT_GT(hygnn_result.roc_auc, lr_result.roc_auc);
}

TEST_F(PipelineTest, ColdStartPredictionWorks) {
  // Table II protocol: withhold all pairs of two drugs, train, then
  // verify the model still ranks their positive pairs above negatives.
  std::vector<int32_t> new_drugs{3, 17};
  core::Rng rng(105);
  auto pairs = data::BuildBalancedPairs(*dataset_, &rng);
  auto cold = data::ColdStartSplit(pairs, new_drugs);
  ASSERT_FALSE(cold.test.empty());

  auto hypergraph = graph::BuildDrugHypergraph(
      featurizer_->drug_substructures(), featurizer_->num_substructures());
  auto context = model::HypergraphContext::FromHypergraph(hypergraph);
  core::Rng model_rng(106);
  model::HyGnnConfig config;
  config.encoder.hidden_dim = 32;
  config.encoder.output_dim = 32;
  model::HyGnnModel hygnn(featurizer_->num_substructures(), config,
                          &model_rng);
  model::TrainConfig train_config;
  train_config.epochs = 150;
  model::HyGnnTrainer trainer(&hygnn, train_config);
  trainer.Fit(context, cold.train);
  auto result = trainer.Evaluate(context, cold.test);
  // New drugs were never in a training pair, yet substructure sharing
  // should carry the signal well above chance.
  EXPECT_GT(result.roc_auc, 0.65);
}

TEST_F(PipelineTest, KmerFeaturizationPipelineRuns) {
  data::FeaturizeConfig feat_config;
  feat_config.mode = data::SubstructureMode::kKmer;
  feat_config.kmer_k = 5;
  auto kmer_featurizer =
      data::SubstructureFeaturizer::Build(dataset_->drugs(), feat_config)
          .value();
  auto hypergraph = graph::BuildDrugHypergraph(
      kmer_featurizer.drug_substructures(),
      kmer_featurizer.num_substructures());
  auto context = model::HypergraphContext::FromHypergraph(hypergraph);
  core::Rng rng(107);
  model::HyGnnConfig config;
  config.encoder.hidden_dim = 32;
  config.encoder.output_dim = 32;
  model::HyGnnModel hygnn(kmer_featurizer.num_substructures(), config,
                          &rng);
  model::TrainConfig train_config;
  train_config.epochs = 60;
  model::HyGnnTrainer trainer(&hygnn, train_config);
  trainer.Fit(context, split_->train);
  auto result = trainer.Evaluate(context, split_->test);
  EXPECT_GT(result.roc_auc, 0.75);
}

}  // namespace
}  // namespace hygnn
