#include <cmath>

#include <gtest/gtest.h>

#include "metrics/metrics.h"

namespace hygnn::metrics {
namespace {

TEST(ConfusionTest, CountsCorrect) {
  std::vector<float> scores{0.9f, 0.8f, 0.3f, 0.1f};
  std::vector<float> labels{1.0f, 0.0f, 1.0f, 0.0f};
  auto cm = ComputeConfusion(scores, labels, 0.5f);
  EXPECT_EQ(cm.true_positives, 1);
  EXPECT_EQ(cm.false_positives, 1);
  EXPECT_EQ(cm.false_negatives, 1);
  EXPECT_EQ(cm.true_negatives, 1);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(cm.Precision(), 0.5);
  EXPECT_DOUBLE_EQ(cm.Recall(), 0.5);
  EXPECT_DOUBLE_EQ(cm.F1(), 0.5);
}

TEST(ConfusionTest, DegenerateCasesAreZeroNotNan) {
  ConfusionMatrix empty;
  EXPECT_EQ(empty.Accuracy(), 0.0);
  EXPECT_EQ(empty.Precision(), 0.0);
  EXPECT_EQ(empty.Recall(), 0.0);
  EXPECT_EQ(empty.F1(), 0.0);
}

TEST(F1Test, PerfectClassifier) {
  std::vector<float> scores{0.99f, 0.98f, 0.01f, 0.02f};
  std::vector<float> labels{1.0f, 1.0f, 0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(F1Score(scores, labels), 1.0);
}

TEST(F1Test, ThresholdMatters) {
  std::vector<float> scores{0.6f, 0.4f};
  std::vector<float> labels{1.0f, 1.0f};
  EXPECT_NEAR(F1Score(scores, labels, 0.5f), 2.0 * 0.5 / 1.5, 1e-9);
  EXPECT_DOUBLE_EQ(F1Score(scores, labels, 0.3f), 1.0);
}

TEST(RocAucTest, PerfectAndWorst) {
  std::vector<float> labels{1.0f, 1.0f, 0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(RocAuc({0.9f, 0.8f, 0.2f, 0.1f}, labels), 1.0);
  EXPECT_DOUBLE_EQ(RocAuc({0.1f, 0.2f, 0.8f, 0.9f}, labels), 0.0);
}

TEST(RocAucTest, RandomScoresNearHalf) {
  // Known hand case: one inversion out of four pairs.
  std::vector<float> scores{0.7f, 0.3f, 0.5f, 0.1f};
  std::vector<float> labels{1.0f, 1.0f, 0.0f, 0.0f};
  // Positive-negative pairs: (0.7,0.5)+, (0.7,0.1)+, (0.3,0.5)-,
  // (0.3,0.1)+ -> 3/4.
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.75);
}

TEST(RocAucTest, TiesCountHalf) {
  std::vector<float> scores{0.5f, 0.5f};
  std::vector<float> labels{1.0f, 0.0f};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.5);
}

TEST(RocAucTest, SingleClassReturnsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.3f, 0.7f}, {1.0f, 1.0f}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0.3f, 0.7f}, {0.0f, 0.0f}), 0.5);
}

TEST(PrAucTest, PerfectClassifier) {
  std::vector<float> scores{0.9f, 0.8f, 0.2f, 0.1f};
  std::vector<float> labels{1.0f, 1.0f, 0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(PrAuc(scores, labels), 1.0);
}

TEST(PrAucTest, KnownHandCase) {
  // Ranking: pos(0.9), neg(0.8), pos(0.7).
  // AP = 1.0 * 0.5 + (2/3) * 0.5 = 0.8333...
  std::vector<float> scores{0.9f, 0.8f, 0.7f};
  std::vector<float> labels{1.0f, 0.0f, 1.0f};
  EXPECT_NEAR(PrAuc(scores, labels), 1.0 * 0.5 + (2.0 / 3.0) * 0.5, 1e-9);
}

TEST(PrAucTest, AllTiedScoresEqualPrevalence) {
  std::vector<float> scores{0.5f, 0.5f, 0.5f, 0.5f};
  std::vector<float> labels{1.0f, 0.0f, 0.0f, 0.0f};
  EXPECT_NEAR(PrAuc(scores, labels), 0.25, 1e-9);
}

TEST(PrAucTest, NoPositivesIsZero) {
  EXPECT_DOUBLE_EQ(PrAuc({0.5f}, {0.0f}), 0.0);
}

TEST(PrAucTest, TiedScoresAreOrderIndependent) {
  // Regression for the std::sort comparator: with a score-only
  // comparator, tied elements land in a standard-library-dependent
  // order (std::sort is not stable). Ties are processed as one
  // threshold group, so the value must not depend on the input order of
  // the tied block — permuting tied elements must not change the AP.
  std::vector<float> scores{0.9f, 0.5f, 0.5f, 0.5f, 0.1f};
  std::vector<float> labels{1.0f, 0.0f, 1.0f, 0.0f, 1.0f};
  const double reference = PrAuc(scores, labels);
  // Tied block permuted (same multiset of (score, label) pairs).
  std::vector<float> permuted_labels{1.0f, 1.0f, 0.0f, 0.0f, 1.0f};
  EXPECT_DOUBLE_EQ(PrAuc(scores, permuted_labels), reference);
  // Hand-computed: group thresholds are 0.9 (tp=1, recall 1/3), 0.5
  // (tp=2, fp=2, recall 2/3), 0.1 (tp=3, fp=2, recall 1).
  const double expected =
      1.0 * (1.0 / 3.0) + 0.5 * (1.0 / 3.0) + 0.6 * (1.0 / 3.0);
  EXPECT_NEAR(reference, expected, 1e-9);
}

TEST(PrAucTest, TiedScoresAtEveryDistinctValue) {
  // All-pairs tie structure exercised end to end: two tied blocks, each
  // mixing labels. Deterministic across standard libraries because the
  // comparator totally orders the permutation by (score desc, index).
  std::vector<float> scores{0.8f, 0.8f, 0.3f, 0.3f};
  std::vector<float> labels{1.0f, 0.0f, 1.0f, 0.0f};
  // Thresholds: 0.8 → tp=1, fp=1, recall 1/2, precision 1/2;
  //             0.3 → tp=2, fp=2, recall 1, precision 1/2.
  EXPECT_NEAR(PrAuc(scores, labels), 0.5 * 0.5 + 0.5 * 0.5, 1e-9);
}

TEST(AggregateTest, MeanAndStddev) {
  auto agg = AggregateOf({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(agg.mean, 2.0);
  EXPECT_NEAR(agg.stddev, std::sqrt(2.0 / 3.0), 1e-12);
}

TEST(AggregateTest, EmptyIsZero) {
  auto agg = AggregateOf({});
  EXPECT_EQ(agg.mean, 0.0);
  EXPECT_EQ(agg.stddev, 0.0);
}

// Property sweep: AUC is invariant to monotone transforms of scores.
class MonotoneInvarianceTest : public ::testing::TestWithParam<double> {};

TEST_P(MonotoneInvarianceTest, RocAucInvariant) {
  const double scale = GetParam();
  std::vector<float> scores{0.1f, 0.4f, 0.35f, 0.8f, 0.65f, 0.2f};
  std::vector<float> labels{0.0f, 1.0f, 0.0f, 1.0f, 1.0f, 0.0f};
  std::vector<float> transformed;
  for (float s : scores) {
    transformed.push_back(static_cast<float>(scale * s + 7.0));
  }
  EXPECT_NEAR(RocAuc(scores, labels), RocAuc(transformed, labels), 1e-12);
  EXPECT_NEAR(PrAuc(scores, labels), PrAuc(transformed, labels), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Scales, MonotoneInvarianceTest,
                         ::testing::Values(0.5, 1.0, 3.0, 100.0));

}  // namespace
}  // namespace hygnn::metrics
