#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "data/pairs.h"

namespace hygnn::baselines {
namespace {

/// Shared fixture: one small synthetic dataset + ESPF featurization,
/// built once for the whole suite (baselines are the slow tests).
class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DatasetConfig data_config;
    data_config.num_drugs = 60;
    data_config.seed = 33;
    dataset_ = new data::DdiDataset(
        data::GenerateDataset(data_config).value());
    data::FeaturizeConfig feat_config;
    feat_config.espf_frequency_threshold = 3;
    featurizer_ = new data::SubstructureFeaturizer(
        data::SubstructureFeaturizer::Build(dataset_->drugs(), feat_config)
            .value());
    core::Rng rng(44);
    auto pairs = data::BuildBalancedPairs(*dataset_, &rng);
    split_ = new data::PairSplit(data::RandomSplit(pairs, 0.7, &rng));
  }

  static void TearDownTestSuite() {
    delete split_;
    delete featurizer_;
    delete dataset_;
  }

  BaselineInputs MakeInputs() const {
    BaselineInputs inputs;
    inputs.num_drugs = dataset_->num_drugs();
    inputs.drugs = &dataset_->drugs();
    inputs.drug_substructures = &featurizer_->drug_substructures();
    inputs.num_substructures = featurizer_->num_substructures();
    inputs.train = split_->train;
    inputs.test = split_->test;
    inputs.seed = 55;
    return inputs;
  }

  BaselineConfig FastConfig() const {
    BaselineConfig config;
    config.epochs = 40;
    config.walk_length = 15;
    config.num_walks_per_node = 3;
    config.sgns_epochs = 1;
    return config;
  }

  static data::DdiDataset* dataset_;
  static data::SubstructureFeaturizer* featurizer_;
  static data::PairSplit* split_;
};

data::DdiDataset* BaselinesTest::dataset_ = nullptr;
data::SubstructureFeaturizer* BaselinesTest::featurizer_ = nullptr;
data::PairSplit* BaselinesTest::split_ = nullptr;

void ExpectSane(const model::EvalResult& result) {
  EXPECT_GE(result.f1, 0.0);
  EXPECT_LE(result.f1, 1.0);
  EXPECT_GE(result.roc_auc, 0.0);
  EXPECT_LE(result.roc_auc, 1.0);
  EXPECT_GE(result.pr_auc, 0.0);
  EXPECT_LE(result.pr_auc, 1.0);
}

TEST_F(BaselinesTest, GcnOnDdiGraphLearnsSignal) {
  auto result = RunGnnOnDdiGraph(MakeInputs(), GnnKind::kGcn, FastConfig());
  ExpectSane(result);
  EXPECT_GT(result.roc_auc, 0.55);
}

TEST_F(BaselinesTest, SageOnDdiGraphLearnsSignal) {
  auto result = RunGnnOnDdiGraph(MakeInputs(), GnnKind::kSage, FastConfig());
  ExpectSane(result);
  EXPECT_GT(result.roc_auc, 0.55);
}

TEST_F(BaselinesTest, GatOnDdiGraphRuns) {
  auto result = RunGnnOnDdiGraph(MakeInputs(), GnnKind::kGat, FastConfig());
  ExpectSane(result);
  EXPECT_GT(result.roc_auc, 0.5);
}

TEST_F(BaselinesTest, DeepWalkRuns) {
  auto result =
      RunRweOnDdiGraph(MakeInputs(), RweKind::kDeepWalk, FastConfig());
  ExpectSane(result);
  EXPECT_GT(result.roc_auc, 0.5);
}

TEST_F(BaselinesTest, Node2VecRuns) {
  auto result =
      RunRweOnDdiGraph(MakeInputs(), RweKind::kNode2Vec, FastConfig());
  ExpectSane(result);
  EXPECT_GT(result.roc_auc, 0.5);
}

TEST_F(BaselinesTest, GcnOnSsgLearnsSignal) {
  auto result = RunGnnOnSsg(MakeInputs(), GnnKind::kGcn, FastConfig());
  ExpectSane(result);
  EXPECT_GT(result.roc_auc, 0.55);
}

TEST_F(BaselinesTest, SageOnSsgLearnsSignal) {
  auto result = RunGnnOnSsg(MakeInputs(), GnnKind::kSage, FastConfig());
  ExpectSane(result);
  EXPECT_GT(result.roc_auc, 0.55);
}

TEST_F(BaselinesTest, GatOnSsgRuns) {
  auto result = RunGnnOnSsg(MakeInputs(), GnnKind::kGat, FastConfig());
  ExpectSane(result);
}

TEST_F(BaselinesTest, NnOnFrRuns) {
  auto result = RunMlOnFunctionalRepresentation(MakeInputs(), MlKind::kNn,
                                                FastConfig());
  ExpectSane(result);
}

TEST_F(BaselinesTest, LrOnFrRuns) {
  auto result = RunMlOnFunctionalRepresentation(MakeInputs(), MlKind::kLr,
                                                FastConfig());
  ExpectSane(result);
}

TEST_F(BaselinesTest, KnnOnFrRuns) {
  auto result = RunMlOnFunctionalRepresentation(MakeInputs(), MlKind::kKnn,
                                                FastConfig());
  ExpectSane(result);
}

TEST_F(BaselinesTest, MolecularSimilarityBeatsChance) {
  auto result = RunMolecularSimilarity(MakeInputs(), FastConfig());
  ExpectSane(result);
  // Structural similarity to known interactors carries real signal on
  // this corpus (interaction IS structural).
  EXPECT_GT(result.roc_auc, 0.6);
}

TEST(BaselineNamesTest, MatchPaperRows) {
  EXPECT_EQ(GnnKindName(GnnKind::kGcn), "GCN");
  EXPECT_EQ(GnnKindName(GnnKind::kSage), "GraphSAGE");
  EXPECT_EQ(GnnKindName(GnnKind::kGat), "GAT");
  EXPECT_EQ(RweKindName(RweKind::kDeepWalk), "DeepWalk");
  EXPECT_EQ(RweKindName(RweKind::kNode2Vec), "Node2Vec");
  EXPECT_EQ(MlKindName(MlKind::kNn), "NN");
  EXPECT_EQ(MlKindName(MlKind::kLr), "LR");
  EXPECT_EQ(MlKindName(MlKind::kKnn), "kNN");
}

}  // namespace
}  // namespace hygnn::baselines
