// Tests for the autograd correctness tooling in tensor/debug.h:
// GraphLint structural findings and NumericsGuard first-op attribution.

#include "tensor/debug.h"

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "tensor/loss.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"

namespace hygnn::tensor {
namespace {

bool HasFinding(const LintReport& report, LintKind kind) {
  for (const auto& issue : report.issues) {
    if (issue.kind == kind) return true;
  }
  return false;
}

TEST(GraphLintTest, CleanGraphAfterBackward) {
  Tensor w = Tensor::Full(2, 2, 0.5f, /*requires_grad=*/true);
  Tensor x = Tensor::Full(2, 2, 1.0f);
  Tensor loss = ReduceMean(Relu(MatMul(x, w)));
  loss.Backward();
  LintReport report = GraphLint(loss);
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_GE(report.nodes_visited, 5);  // w, x, MatMul, Relu, sum, scale
}

TEST(GraphLintTest, CleanBeforeBackwardToo) {
  Tensor w = Tensor::Full(1, 1, 2.0f, /*requires_grad=*/true);
  Tensor y = Scale(w, 3.0f);
  // No Backward yet: the requires_grad leaf legitimately has no grad.
  EXPECT_TRUE(GraphLint(y).clean());
}

TEST(GraphLintTest, DetectsDoubleBackward) {
  Tensor w = Tensor::Full(1, 1, 2.0f, /*requires_grad=*/true);
  Tensor y = Mul(w, w);
  y.Backward();
  y.Backward();  // double-accumulates dw
  LintReport report = GraphLint(y);
  EXPECT_TRUE(HasFinding(report, LintKind::kDoubleBackward))
      << report.ToString();
  // And the gradient really is doubled — the lint catches a real bug.
  EXPECT_FLOAT_EQ(w.grad()[0], 8.0f);
}

TEST(GraphLintTest, DetectsParamThatNeverReceivedGradient) {
  Tensor w = Tensor::Full(2, 1, 1.0f, /*requires_grad=*/true);
  // Hand-built op node whose backward_fn "forgets" to propagate to w —
  // the broken-chain-rule bug GraphLint exists to catch.
  auto out = std::make_shared<TensorImpl>();
  out->op = "BrokenOp";
  out->rows = 1;
  out->cols = 1;
  out->data.assign(1, 3.0f);
  out->requires_grad = true;
  out->parents = {w.impl()};
  out->backward_fn = [] {};
  Tensor y(out);
  y.Backward();
  LintReport report = GraphLint(y);
  EXPECT_TRUE(HasFinding(report, LintKind::kParamWithoutGradient))
      << report.ToString();
  EXPECT_FALSE(w.has_grad());
}

TEST(GraphLintTest, DetectsDanglingBackwardFnAfterRelease) {
  Tensor w = Tensor::Full(1, 1, 1.0f, /*requires_grad=*/true);
  Tensor y = Scale(w, 2.0f);
  // Simulate graph "release" that clears parents but leaks the closure.
  y.impl()->parents.clear();
  LintReport report = GraphLint(y);
  EXPECT_TRUE(HasFinding(report, LintKind::kDanglingBackwardFn))
      << report.ToString();
}

TEST(GraphLintTest, DetectsCycle) {
  auto a = std::make_shared<TensorImpl>();
  a->op = "A";
  a->rows = a->cols = 1;
  a->data.assign(1, 0.0f);
  auto b = std::make_shared<TensorImpl>();
  b->op = "B";
  b->rows = b->cols = 1;
  b->data.assign(1, 0.0f);
  a->parents = {b};
  b->parents = {a};  // shared_ptr ring: unreachable by the op API
  LintReport report = GraphLint(Tensor(a));
  EXPECT_TRUE(HasFinding(report, LintKind::kCycle)) << report.ToString();
  // Break the ring so the test does not leak under ASan.
  a->parents.clear();
  b->parents.clear();
}

TEST(GraphLintTest, DetectsShapeMismatch) {
  Tensor x = Tensor::Full(2, 2, 1.0f);
  x.impl()->data.resize(3);  // corrupt: rows*cols == 4
  LintReport report = GraphLint(x);
  EXPECT_TRUE(HasFinding(report, LintKind::kShapeMismatch))
      << report.ToString();
}

TEST(GraphLintTest, ReportPrintsAllIssues) {
  Tensor w = Tensor::Full(1, 1, 2.0f, /*requires_grad=*/true);
  Tensor y = Mul(w, w);
  y.Backward();
  y.Backward();
  const std::string text = GraphLint(y).ToString();
  EXPECT_NE(text.find("backward"), std::string::npos) << text;
  EXPECT_NE(text.find("'Mul'"), std::string::npos) << text;
}

class NumericsGuardTest : public ::testing::Test {
 protected:
  void SetUp() override { NumericsGuard::Reset(); }
  void TearDown() override {
    NumericsGuard::Disable();
    NumericsGuard::Reset();
  }
};

TEST_F(NumericsGuardTest, DisabledByDefaultAndSilentOnFiniteMath) {
  EXPECT_FALSE(NumericsGuard::enabled());
  NumericsGuardScope scope;
  Tensor x = Tensor::Full(3, 3, 2.0f, /*requires_grad=*/true);
  ReduceMean(Sigmoid(MatMul(x, x))).Backward();
  EXPECT_FALSE(NumericsGuard::triggered());
  EXPECT_EQ(NumericsGuard::report(), "");
}

TEST_F(NumericsGuardTest, AttributesLogOfNonPositiveValue) {
  NumericsGuardScope scope;
  // eps = 0 disables Log's clamp: log(0) = -inf.
  Tensor x = Tensor::FromVector({1.0f, 0.0f, 2.0f}, 3, 1);
  Tensor y = Log(x, /*eps=*/0.0f);
  ASSERT_TRUE(NumericsGuard::triggered());
  const std::string report = NumericsGuard::report();
  EXPECT_NE(report.find("'Log'"), std::string::npos) << report;
  EXPECT_NE(report.find("index 1"), std::string::npos) << report;
  EXPECT_NE(report.find("trace"), std::string::npos) << report;
}

TEST_F(NumericsGuardTest, NamesFirstOpNotDownstreamContamination) {
  NumericsGuardScope scope;
  // Scale overflows to inf first; Sub then turns it into NaN. The
  // report must blame Scale, not Sub.
  Tensor x = Tensor::Full(2, 1, 1e30f);
  Tensor big = Scale(x, 1e30f);             // inf — first violation
  Tensor nan = Sub(big, big);               // inf - inf = NaN
  (void)nan;
  ASSERT_TRUE(NumericsGuard::triggered());
  const std::string report = NumericsGuard::report();
  EXPECT_NE(report.find("'Scale'"), std::string::npos) << report;
  EXPECT_EQ(report.find("'Sub' produced"), std::string::npos) << report;
}

TEST_F(NumericsGuardTest, ReportsInsideSmallTrainingStep) {
  NumericsGuardScope scope;
  // A tiny training step with a corrupted weight: the first op that
  // touches the NaN parameter (MatMul) must be named, with the leaf
  // input flagged as the true source.
  Tensor w = Tensor::FromVector(
      {0.5f, std::numeric_limits<float>::quiet_NaN()}, 2, 1,
      /*requires_grad=*/true);
  Tensor x = Tensor::Full(3, 2, 1.0f);
  Tensor logits = MatMul(x, w);
  Tensor loss = BceWithLogitsLoss(logits, {1.0f, 0.0f, 1.0f});
  loss.Backward();
  ASSERT_TRUE(NumericsGuard::triggered());
  const std::string report = NumericsGuard::report();
  EXPECT_NE(report.find("'MatMul'"), std::string::npos) << report;
  EXPECT_NE(report.find("already non-finite"), std::string::npos) << report;
  EXPECT_NE(report.find("leaf"), std::string::npos) << report;
}

TEST_F(NumericsGuardTest, ScopeRestoresPreviousState) {
  EXPECT_FALSE(NumericsGuard::enabled());
  {
    NumericsGuardScope outer;
    EXPECT_TRUE(NumericsGuard::enabled());
    {
      NumericsGuardScope inner;
      EXPECT_TRUE(NumericsGuard::enabled());
    }
    EXPECT_TRUE(NumericsGuard::enabled());
  }
  EXPECT_FALSE(NumericsGuard::enabled());
}

TEST_F(NumericsGuardTest, ResetClearsTriggeredState) {
  NumericsGuardScope scope;
  Tensor x = Tensor::Full(1, 1, -1.0f);
  (void)Log(x, 0.0f);
  ASSERT_TRUE(NumericsGuard::triggered());
  NumericsGuard::Reset();
  EXPECT_FALSE(NumericsGuard::triggered());
  EXPECT_EQ(NumericsGuard::report(), "");
  // Still enabled: next violation is caught again.
  (void)Log(x, 0.0f);
  EXPECT_TRUE(NumericsGuard::triggered());
}

TEST(AllFiniteTest, Basics) {
  std::vector<float> ok{1.0f, -2.0f, 0.0f};
  EXPECT_TRUE(AllFinite(ok.data(), 3));
  std::vector<float> bad{1.0f, std::numeric_limits<float>::infinity()};
  EXPECT_FALSE(AllFinite(bad.data(), 2));
  EXPECT_TRUE(AllFinite(bad.data(), 1));  // prefix is fine
  EXPECT_TRUE(AllFinite(nullptr, 0));
}

}  // namespace
}  // namespace hygnn::tensor
