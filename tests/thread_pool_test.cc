#include "core/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/flags.h"
#include "core/mutex.h"

namespace hygnn::core {
namespace {

/// Restores a single-thread pool after each test so the global state
/// never leaks across test binaries' suites.
class ThreadPoolTest : public ::testing::Test {
 protected:
  void TearDown() override { SetNumThreads(1); }
};

TEST_F(ThreadPoolTest, SetAndGetNumThreads) {
  SetNumThreads(4);
  EXPECT_EQ(NumThreads(), 4);
  SetNumThreads(1);
  EXPECT_EQ(NumThreads(), 1);
  SetNumThreads(0);  // clamps to 1
  EXPECT_EQ(NumThreads(), 1);
}

TEST_F(ThreadPoolTest, CoversRangeExactlyOnce) {
  SetNumThreads(4);
  const int64_t n = 10'000;
  std::vector<int> counts(n, 0);
  ParallelFor(0, n, 64, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) ++counts[i];
  });
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(counts[i], 1) << "index " << i;
  }
}

TEST_F(ThreadPoolTest, SingleThreadRunsInlineAsOneChunk) {
  SetNumThreads(1);
  std::vector<std::pair<int64_t, int64_t>> chunks;
  ParallelFor(3, 1000, 10, [&](int64_t lo, int64_t hi) {
    chunks.push_back({lo, hi});
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<int64_t, int64_t>{3, 1000}));
}

TEST_F(ThreadPoolTest, PartitionDependsOnlyOnGrain) {
  // The chunk boundaries must be a pure function of (begin, end,
  // grain) — the determinism contract the kernels build on.
  SetNumThreads(4);
  std::mutex mutex;
  std::set<std::pair<int64_t, int64_t>> chunks;
  ParallelFor(0, 1000, 64, [&](int64_t lo, int64_t hi) {
    std::lock_guard<std::mutex> lock(mutex);
    chunks.insert({lo, hi});
  });
  std::set<std::pair<int64_t, int64_t>> expected;
  for (int64_t lo = 0; lo < 1000; lo += 64) {
    expected.insert({lo, std::min<int64_t>(1000, lo + 64)});
  }
  EXPECT_EQ(chunks, expected);
}

TEST_F(ThreadPoolTest, EmptyRangeNeverInvokes) {
  SetNumThreads(4);
  bool called = false;
  ParallelFor(5, 5, 1, [&](int64_t, int64_t) { called = true; });
  ParallelFor(7, 3, 1, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST_F(ThreadPoolTest, NestedCallRunsInline) {
  SetNumThreads(4);
  std::vector<int> counts(256, 0);
  ParallelFor(0, 4, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t outer = lo; outer < hi; ++outer) {
      ParallelFor(outer * 64, (outer + 1) * 64, 8,
                  [&](int64_t ilo, int64_t ihi) {
        for (int64_t i = ilo; i < ihi; ++i) ++counts[i];
      });
    }
  });
  for (size_t i = 0; i < counts.size(); ++i) {
    ASSERT_EQ(counts[i], 1) << "index " << i;
  }
}

// Regression test for the exception contract: a throwing worker task
// must surface in the caller instead of terminating the process.
TEST_F(ThreadPoolTest, ExceptionPropagatesFromWorkers) {
  SetNumThreads(4);
  EXPECT_THROW(
      ParallelFor(0, 1000, 1,
                  [&](int64_t lo, int64_t) {
                    if (lo == 637) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST_F(ThreadPoolTest, ExceptionPropagatesInline) {
  SetNumThreads(1);
  EXPECT_THROW(ParallelFor(0, 10, 100,
                           [](int64_t, int64_t) {
                             throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST_F(ThreadPoolTest, PoolUsableAfterException) {
  SetNumThreads(4);
  try {
    ParallelFor(0, 1000, 1, [&](int64_t lo, int64_t) {
      if (lo == 100) throw std::runtime_error("boom");
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  std::vector<int> counts(1000, 0);
  ParallelFor(0, 1000, 16, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) ++counts[i];
  });
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(counts[i], 1) << "index " << i;
  }
}

TEST(WorkerThreadTest, RunsTaskAndJoinIsIdempotent) {
  int ran = 0;
  {
    WorkerThread worker([&ran] { ran = 1; });
    worker.Join();
    EXPECT_EQ(ran, 1);
    worker.Join();  // second Join is a no-op
  }  // destructor after Join is also a no-op
  EXPECT_EQ(ran, 1);
}

TEST(WorkerThreadTest, DestructorJoins) {
  std::atomic<int> ran{0};
  { WorkerThread worker([&ran] { ran.store(1); }); }
  EXPECT_EQ(ran.load(), 1);
}

TEST(WorkerThreadTest, MovableIntoVector) {
  std::atomic<int> ran{0};
  {
    std::vector<WorkerThread> workers;
    for (int i = 0; i < 4; ++i) {
      workers.emplace_back([&ran] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 4);
}

TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  Mutex mutex;
  CondVar cv;
  MutexLock lock(mutex);
  // Nobody will notify: WaitFor must come back false (timeout) and
  // must refuse a non-positive budget without sleeping.
  EXPECT_FALSE(cv.WaitFor(mutex, /*timeout_us=*/1000));
  EXPECT_FALSE(cv.WaitFor(mutex, /*timeout_us=*/0));
  EXPECT_FALSE(cv.WaitFor(mutex, /*timeout_us=*/-5));
}

TEST(CondVarTest, WaitForWakesOnNotify) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  WorkerThread notifier([&] {
    MutexLock lock(mutex);
    ready = true;
    cv.NotifyAll();
  });
  MutexLock lock(mutex);
  // Generous budget: the worker's notify must land long before it.
  while (!ready) {
    cv.WaitFor(mutex, /*timeout_us=*/1'000'000);
  }
  EXPECT_TRUE(ready);
}

TEST(EnvIntTest, ParsesAndFallsBack) {
  ::setenv("HYGNN_TEST_ENV_INT", "12", 1);
  EXPECT_EQ(EnvInt("HYGNN_TEST_ENV_INT", 3), 12);
  ::setenv("HYGNN_TEST_ENV_INT", "-4", 1);
  EXPECT_EQ(EnvInt("HYGNN_TEST_ENV_INT", 3), -4);
  ::setenv("HYGNN_TEST_ENV_INT", "notanumber", 1);
  EXPECT_EQ(EnvInt("HYGNN_TEST_ENV_INT", 3), 3);
  ::setenv("HYGNN_TEST_ENV_INT", "12abc", 1);
  EXPECT_EQ(EnvInt("HYGNN_TEST_ENV_INT", 3), 3);
  ::setenv("HYGNN_TEST_ENV_INT", "", 1);
  EXPECT_EQ(EnvInt("HYGNN_TEST_ENV_INT", 3), 3);
  ::unsetenv("HYGNN_TEST_ENV_INT");
  EXPECT_EQ(EnvInt("HYGNN_TEST_ENV_INT", 3), 3);
}

}  // namespace
}  // namespace hygnn::core
