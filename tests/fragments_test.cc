#include <set>

#include <gtest/gtest.h>

#include "chem/fragments.h"
#include "chem/generator.h"
#include "chem/smiles.h"
#include "core/rng.h"

namespace hygnn::chem {
namespace {

TEST(FragmentLibraryTest, EveryFragmentIsValidSmiles) {
  for (const auto& fragment : StandardFragmentLibrary()) {
    EXPECT_TRUE(ValidateSmiles(fragment.smiles).ok())
        << fragment.name << ": " << fragment.smiles;
  }
}

TEST(FragmentLibraryTest, HasFunctionalGroupsAndFillers) {
  EXPECT_GT(FunctionalGroupIndices().size(), 10u);
  EXPECT_GT(FillerIndices().size(), 3u);
  EXPECT_GT(NumReactiveClasses(), 5);
}

TEST(FragmentLibraryTest, IndicesArePartition) {
  const auto& library = StandardFragmentLibrary();
  auto groups = FunctionalGroupIndices();
  auto fillers = FillerIndices();
  EXPECT_EQ(groups.size() + fillers.size(), library.size());
  std::set<int32_t> all(groups.begin(), groups.end());
  all.insert(fillers.begin(), fillers.end());
  EXPECT_EQ(all.size(), library.size());
}

TEST(FragmentLibraryTest, ReactiveClassesAreDense) {
  std::set<int32_t> classes;
  for (const auto& fragment : StandardFragmentLibrary()) {
    if (fragment.reactive_class >= 0) classes.insert(fragment.reactive_class);
  }
  // Classes 0..NumReactiveClasses-1 are all inhabited.
  EXPECT_EQ(static_cast<int32_t>(classes.size()), NumReactiveClasses());
  EXPECT_EQ(*classes.begin(), 0);
  EXPECT_EQ(*classes.rbegin(), NumReactiveClasses() - 1);
}

TEST(GeneratorTest, ProducesValidSmiles) {
  SmilesGenerator generator;
  core::Rng rng(42);
  auto groups = FunctionalGroupIndices();
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int32_t> picked;
    const size_t count = 1 + rng.UniformInt(4);
    auto selection = rng.SampleWithoutReplacement(groups.size(), count);
    for (size_t s : selection) picked.push_back(groups[s]);
    auto smiles_or =
        generator.Generate(picked, static_cast<int32_t>(rng.UniformInt(7)),
                           &rng);
    ASSERT_TRUE(smiles_or.ok()) << smiles_or.status().ToString();
    EXPECT_TRUE(ValidateSmiles(smiles_or.value()).ok())
        << smiles_or.value();
  }
}

TEST(GeneratorTest, ContainsRequestedFragmentSnippets) {
  SmilesGenerator generator;
  core::Rng rng(7);
  const auto& library = StandardFragmentLibrary();
  // Pick the sulfonamide fragment (distinctive snippet).
  int32_t sulfonamide = -1;
  for (size_t i = 0; i < library.size(); ++i) {
    if (library[i].name == "sulfonamide") {
      sulfonamide = static_cast<int32_t>(i);
    }
  }
  ASSERT_GE(sulfonamide, 0);
  auto smiles = generator.Generate({sulfonamide}, 2, &rng).value();
  EXPECT_NE(smiles.find("S(=O)(=O)N"), std::string::npos) << smiles;
}

TEST(GeneratorTest, DeterministicForSeed) {
  SmilesGenerator generator;
  core::Rng rng_a(5), rng_b(5);
  auto a = generator.Generate({0, 5}, 3, &rng_a).value();
  auto b = generator.Generate({0, 5}, 3, &rng_b).value();
  EXPECT_EQ(a, b);
}

TEST(GeneratorTest, RejectsBadFragmentIndex) {
  SmilesGenerator generator;
  core::Rng rng(1);
  EXPECT_FALSE(generator.Generate({-1}, 0, &rng).ok());
  EXPECT_FALSE(generator.Generate({10000}, 0, &rng).ok());
}

TEST(GeneratorTest, EmptyGroupsStillValid) {
  SmilesGenerator generator;
  core::Rng rng(9);
  auto smiles = generator.Generate({}, 4, &rng).value();
  EXPECT_TRUE(ValidateSmiles(smiles).ok());
}

}  // namespace
}  // namespace hygnn::chem
