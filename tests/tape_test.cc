// Tape + fusion tests: (1) fused and unfused execution are bit-identical
// — single chains, full training runs (losses AND trained weight bytes)
// at 1 and 4 threads; (2) gradcheck passes over fused chains of length
// 2-4, including broadcast ops at chain boundaries and smallest shapes;
// (3) the fusion pass actually reduces kernel invocations and buffer
// allocations (ExecStats); (4) the obs attribution table names fused
// groups by their constituent ops; (5) laziness semantics: pending
// graphs lint clean, and an external handle on an intermediate breaks
// fusion for that link without changing results.

#include "tensor/tape.h"

#include <cstring>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "data/pairs.h"
#include "graph/builders.h"
#include "hygnn/model.h"
#include "hygnn/trainer.h"
#include "obs/optime.h"
#include "tensor/debug.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"
#include "tests/gradcheck.h"

namespace hygnn {
namespace {

/// Every test leaves the process-wide fusion flag the way the trainer
/// default would: enabled.
class TapeTest : public ::testing::Test {
 protected:
  void TearDown() override {
    tensor::SetFusionEnabled(true);
    core::SetNumThreads(1);
  }
};

tensor::Tensor SeededInput(int64_t rows, int64_t cols, uint64_t seed = 3) {
  core::Rng rng(seed);
  std::vector<float> values(static_cast<size_t>(rows * cols));
  for (auto& v : values) v = rng.UniformFloat() * 2.0f - 1.0f;
  return tensor::Tensor::FromVector(std::move(values), rows, cols,
                                    /*requires_grad=*/true);
}

/// Runs dropout -> activation -> scale -> mean, backward included, and
/// captures the loss value and input gradient.
std::pair<float, std::vector<float>> RunChain(bool fuse, int32_t threads) {
  core::SetNumThreads(threads);
  tensor::SetFusionEnabled(fuse);
  tensor::Tensor x = SeededInput(37, 8);
  core::Rng rng(17);
  tensor::Tensor y = tensor::ReduceMean(tensor::Scale(
      tensor::LeakyRelu(tensor::Dropout(x, 0.3f, /*training=*/true, &rng),
                        0.1f),
      0.5f));
  y.Backward();
  return {y.item(), std::vector<float>(x.grad(), x.grad() + x.size())};
}

TEST_F(TapeTest, FusedChainBitIdenticalToUnfused) {
  const auto unfused = RunChain(false, 1);
  for (const bool fuse : {true, false}) {
    for (const int32_t threads : {1, 4}) {
      const auto run = RunChain(fuse, threads);
      EXPECT_EQ(std::memcmp(&run.first, &unfused.first, sizeof(float)), 0)
          << "loss, fuse=" << fuse << " threads=" << threads;
      ASSERT_EQ(run.second.size(), unfused.second.size());
      EXPECT_EQ(std::memcmp(run.second.data(), unfused.second.data(),
                            run.second.size() * sizeof(float)),
                0)
          << "grad, fuse=" << fuse << " threads=" << threads;
    }
  }
}

TEST_F(TapeTest, FusionReducesKernelInvocationsAndAllocations) {
  const auto run_stats = [](bool fuse) {
    tensor::SetFusionEnabled(fuse);
    tensor::ResetExecStats();
    tensor::Tensor x = SeededInput(64, 16);
    tensor::Tensor y = tensor::ReduceMean(
        tensor::Scale(tensor::Sigmoid(tensor::LeakyRelu(x, 0.1f)), 0.5f));
    y.Backward();
    return tensor::ExecStats();
  };
  const auto fused = run_stats(true);
  const auto unfused = run_stats(false);
  EXPECT_EQ(unfused.fused_groups, 0u);
  EXPECT_GE(fused.fused_groups, 1u);
  // LeakyRelu|Sigmoid|Scale collapse into one invocation: 2 fewer
  // kernel launches and 2 fewer intermediate buffers.
  EXPECT_LT(fused.ops_executed, unfused.ops_executed);
  EXPECT_LT(fused.buffers_allocated, unfused.buffers_allocated);
}

// ---------------------------------------------------------------------------
// Gradcheck over fused chains
// ---------------------------------------------------------------------------

class FusedGradcheckTest : public TapeTest {
 protected:
  void SetUp() override { tensor::SetFusionEnabled(true); }
};

TEST_F(FusedGradcheckTest, Length2Chain) {
  testing::ExpectGradMatchesNumeric(
      [] { return SeededInput(5, 3); },
      [](const tensor::Tensor& x) {
        return tensor::ReduceMean(tensor::Scale(tensor::Relu(x), 0.5f));
      });
}

TEST_F(FusedGradcheckTest, Length3ChainWithDropout) {
  testing::ExpectGradMatchesNumeric(
      [] { return SeededInput(4, 4); },
      [](const tensor::Tensor& x) {
        // Re-seeded per call so every finite-difference evaluation draws
        // the identical mask.
        core::Rng rng(5);
        return tensor::ReduceMean(tensor::Scale(
            tensor::LeakyRelu(tensor::Dropout(x, 0.25f, true, &rng), 0.2f),
            0.7f));
      });
}

TEST_F(FusedGradcheckTest, Length4Chain) {
  testing::ExpectGradMatchesNumeric(
      [] { return SeededInput(6, 2); },
      [](const tensor::Tensor& x) {
        return tensor::ReduceMean(tensor::Scale(
            tensor::Sigmoid(tensor::LeakyRelu(tensor::Scale(x, 1.1f), 0.1f)),
            0.7f));
      });
}

TEST_F(FusedGradcheckTest, BroadcastOpsAtChainBoundary) {
  // AddRowBroadcast / MulColumnBroadcast fuse only when the broadcast
  // side needs no grad; the chain still differentiates through x.
  const tensor::Tensor bias =
      tensor::Tensor::FromVector({0.3f, -0.2f, 0.5f}, 1, 3);
  testing::ExpectGradMatchesNumeric(
      [] { return SeededInput(4, 3); },
      [&bias](const tensor::Tensor& x) {
        return tensor::ReduceMean(
            tensor::Sigmoid(tensor::AddRowBroadcast(tensor::Scale(x, 1.3f),
                                                    bias)));
      });
  const tensor::Tensor w =
      tensor::Tensor::FromVector({0.5f, -1.0f, 2.0f, 0.25f}, 4, 1);
  testing::ExpectGradMatchesNumeric(
      [] { return SeededInput(4, 3, /*seed=*/9); },
      [&w](const tensor::Tensor& x) {
        return tensor::ReduceMean(
            tensor::Tanh(tensor::MulColumnBroadcast(x, w)));
      });
}

TEST_F(FusedGradcheckTest, SmallestShapes) {
  // Tensors cannot be empty (Tensor::Full checks rows/cols > 0), so the
  // boundary cases are single-element and single-row chains.
  testing::ExpectGradMatchesNumeric(
      [] { return SeededInput(1, 1); },
      [](const tensor::Tensor& x) {
        return tensor::ReduceMean(tensor::Scale(tensor::Tanh(x), 2.0f));
      });
  testing::ExpectGradMatchesNumeric(
      [] { return SeededInput(1, 8); },
      [](const tensor::Tensor& x) {
        return tensor::ReduceMean(
            tensor::Sigmoid(tensor::Scale(tensor::Relu(x), 0.9f)));
      });
}

// ---------------------------------------------------------------------------
// Laziness semantics
// ---------------------------------------------------------------------------

TEST_F(TapeTest, PendingGraphLintsCleanAndMaterializesOnRead) {
  tensor::SetFusionEnabled(true);
  tensor::Tensor x = SeededInput(3, 3);
  tensor::Tensor y = tensor::Scale(tensor::Relu(x), 2.0f);
  // Nothing has executed yet; the pending graph must still lint clean.
  EXPECT_TRUE(tensor::GraphLint(y).clean());
  // First read executes the tape.
  const float v00 = y.At(0, 0);
  EXPECT_EQ(v00, 2.0f * std::max(x.At(0, 0), 0.0f));
  EXPECT_TRUE(tensor::GraphLint(y).clean());
}

TEST_F(TapeTest, ExternalHandleOnIntermediateBreaksFusionNotResults) {
  tensor::SetFusionEnabled(true);
  tensor::Tensor x = SeededInput(8, 4);
  // `mid` is a live external handle: its use_count > 1 makes it
  // ineligible as a fused interior, so its value stays observable.
  tensor::Tensor mid = tensor::Relu(x);
  tensor::Tensor y = tensor::ReduceMean(tensor::Scale(mid, 3.0f));
  y.Backward();
  for (int64_t i = 0; i < mid.size(); ++i) {
    const int64_t r = i / mid.cols(), c = i % mid.cols();
    EXPECT_EQ(mid.At(r, c), std::max(x.At(r, c), 0.0f)) << i;
  }
  EXPECT_TRUE(x.has_grad());
}

TEST_F(TapeTest, InferenceForwardLeavesPlainValueNodes) {
  tensor::SetFusionEnabled(true);
  tensor::Tensor x = SeededInput(4, 4);
  tensor::InferenceModeScope inference;
  tensor::Tensor y = tensor::Scale(tensor::Sigmoid(x), 2.0f);
  (void)y.At(0, 0);  // materialize
  // After execution the no-grad nodes drop parents and tape records:
  // serving allocates no graph.
  const auto report = tensor::GraphLint(y);
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_EQ(report.nodes_visited, 1);
}

// ---------------------------------------------------------------------------
// obs attribution of fused groups
// ---------------------------------------------------------------------------

TEST_F(TapeTest, FusedGroupsAppearInOpTimeAttribution) {
  tensor::SetFusionEnabled(true);
  obs::ResetOpTimes();
  obs::SetKernelTimingEnabled(true);
  tensor::Tensor x = SeededInput(32, 8);
  tensor::Tensor y = tensor::ReduceMean(
      tensor::Scale(tensor::Sigmoid(tensor::LeakyRelu(x, 0.1f)), 0.5f));
  y.Backward();
  obs::SetKernelTimingEnabled(false);
  const auto snapshot = obs::OpTimeSnapshot();
  bool found = false;
  for (const auto& entry : snapshot) {
    if (entry.op == "Fused[LeakyRelu|Sigmoid|Scale]") {
      found = true;
      EXPECT_EQ(entry.forward_calls, 1u);
      EXPECT_EQ(entry.backward_calls, 1u);
    }
  }
  EXPECT_TRUE(found) << "no fused group in the attribution table";
  obs::ResetOpTimes();
}

// ---------------------------------------------------------------------------
// End-to-end: fused and unfused training are memcmp-identical
// ---------------------------------------------------------------------------

struct TrainArtifacts {
  std::vector<float> losses;
  std::string weight_bytes;
};

TrainArtifacts TrainOnce(bool fuse, int32_t threads) {
  data::DatasetConfig data_config;
  data_config.num_drugs = 60;
  data_config.seed = 7;
  auto dataset = data::GenerateDataset(data_config).value();
  data::FeaturizeConfig feat_config;
  feat_config.espf_frequency_threshold = 3;
  auto featurizer =
      data::SubstructureFeaturizer::Build(dataset.drugs(), feat_config)
          .value();
  auto hypergraph = graph::BuildDrugHypergraph(
      featurizer.drug_substructures(), featurizer.num_substructures());
  auto context = model::HypergraphContext::FromHypergraph(hypergraph);
  core::Rng pair_rng(8);
  auto pairs = data::BuildBalancedPairs(dataset, &pair_rng);

  core::Rng model_rng(9);
  model::HyGnnConfig model_config;
  model_config.encoder.hidden_dim = 16;
  model_config.encoder.output_dim = 16;
  model::HyGnnModel model(featurizer.num_substructures(), model_config,
                          &model_rng);
  model::TrainConfig train_config;
  train_config.epochs = 8;
  train_config.seed = 11;
  train_config.threads = threads;
  train_config.fuse = fuse;
  model::HyGnnTrainer trainer(&model, train_config);
  trainer.Fit(context, pairs);

  TrainArtifacts artifacts;
  artifacts.losses = trainer.epoch_losses();
  std::vector<std::pair<std::string, tensor::Tensor>> named;
  int index = 0;
  for (const auto& p : model.Parameters()) {
    named.emplace_back("p" + std::to_string(index++), p);
  }
  std::ostringstream bytes;
  EXPECT_TRUE(tensor::SaveTensorsToStream(named, bytes).ok());
  artifacts.weight_bytes = bytes.str();
  core::SetNumThreads(1);
  return artifacts;
}

TEST_F(TapeTest, TrainingBitIdenticalWithFusionOnOrOff) {
  const TrainArtifacts reference = TrainOnce(/*fuse=*/false, /*threads=*/1);
  ASSERT_EQ(reference.losses.size(), 8u);
  ASSERT_FALSE(reference.weight_bytes.empty());
  const struct {
    bool fuse;
    int32_t threads;
  } variants[] = {{true, 1}, {true, 4}, {false, 4}};
  for (const auto& variant : variants) {
    const TrainArtifacts run = TrainOnce(variant.fuse, variant.threads);
    ASSERT_EQ(run.losses.size(), reference.losses.size());
    EXPECT_EQ(std::memcmp(run.losses.data(), reference.losses.data(),
                          run.losses.size() * sizeof(float)),
              0)
        << "epoch losses diverged, fuse=" << variant.fuse
        << " threads=" << variant.threads;
    ASSERT_EQ(run.weight_bytes.size(), reference.weight_bytes.size());
    EXPECT_EQ(std::memcmp(run.weight_bytes.data(),
                          reference.weight_bytes.data(),
                          run.weight_bytes.size()),
              0)
        << "trained weight bytes diverged, fuse=" << variant.fuse
        << " threads=" << variant.threads;
  }
}

}  // namespace
}  // namespace hygnn
