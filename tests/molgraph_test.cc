#include <gtest/gtest.h>

#include "chem/fingerprint.h"
#include "chem/molgraph.h"

namespace hygnn::chem {
namespace {

TEST(MolGraphTest, Ethanol) {
  auto mol = MolecularGraph::FromSmiles("CCO").value();
  EXPECT_EQ(mol.num_atoms(), 3);
  EXPECT_EQ(mol.num_bonds(), 2);
  EXPECT_EQ(mol.atom(0).element, "C");
  EXPECT_EQ(mol.atom(2).element, "O");
  EXPECT_EQ(mol.Degree(1), 2);
  EXPECT_EQ(mol.Degree(0), 1);
}

TEST(MolGraphTest, BenzeneRing) {
  auto mol = MolecularGraph::FromSmiles("c1ccccc1").value();
  EXPECT_EQ(mol.num_atoms(), 6);
  EXPECT_EQ(mol.num_bonds(), 6);  // ring closure adds the 6th bond
  for (int32_t atom = 0; atom < 6; ++atom) {
    EXPECT_TRUE(mol.atom(atom).aromatic);
    EXPECT_EQ(mol.atom(atom).element, "C");
    EXPECT_EQ(mol.Degree(atom), 2);
  }
  int aromatic_bonds = 0;
  for (int32_t b = 0; b < mol.num_bonds(); ++b) {
    if (mol.bond(b).aromatic) ++aromatic_bonds;
  }
  EXPECT_EQ(aromatic_bonds, 6);
}

TEST(MolGraphTest, BondOrders) {
  auto mol = MolecularGraph::FromSmiles("C=CC#N").value();
  ASSERT_EQ(mol.num_bonds(), 3);
  EXPECT_EQ(mol.bond(0).order, 2);
  EXPECT_EQ(mol.bond(1).order, 1);
  EXPECT_EQ(mol.bond(2).order, 3);
}

TEST(MolGraphTest, Branches) {
  // Isobutane: central carbon with 3 methyl neighbors.
  auto mol = MolecularGraph::FromSmiles("CC(C)C").value();
  EXPECT_EQ(mol.num_atoms(), 4);
  EXPECT_EQ(mol.num_bonds(), 3);
  EXPECT_EQ(mol.Degree(1), 3);
}

TEST(MolGraphTest, BracketAtoms) {
  auto mol = MolecularGraph::FromSmiles("C[NH4+]").value();
  EXPECT_EQ(mol.num_atoms(), 2);
  EXPECT_EQ(mol.atom(1).element, "N");
  EXPECT_EQ(mol.atom(1).charge, 1);
  EXPECT_EQ(mol.atom(1).explicit_hydrogens, 4);

  auto anion = MolecularGraph::FromSmiles("[O-]C").value();
  EXPECT_EQ(anion.atom(0).charge, -1);

  auto nitro = MolecularGraph::FromSmiles("C[N+](=O)[O-]").value();
  EXPECT_EQ(nitro.atom(1).charge, 1);
  EXPECT_EQ(nitro.atom(2).element, "O");
  EXPECT_EQ(nitro.bond(1).order, 2);
}

TEST(MolGraphTest, ChiralityParsedAndIgnored) {
  auto mol = MolecularGraph::FromSmiles("C[C@@H](N)O").value();
  EXPECT_EQ(mol.num_atoms(), 4);
  EXPECT_EQ(mol.atom(1).element, "C");
  EXPECT_EQ(mol.atom(1).explicit_hydrogens, 1);
}

TEST(MolGraphTest, AromaticBracketAtom) {
  auto mol = MolecularGraph::FromSmiles("c1cnc[nH]1").value();
  EXPECT_EQ(mol.num_atoms(), 5);
  EXPECT_TRUE(mol.atom(4).aromatic);
  EXPECT_EQ(mol.atom(4).element, "N");
  EXPECT_EQ(mol.atom(4).explicit_hydrogens, 1);
}

TEST(MolGraphTest, DisconnectedComponents) {
  auto mol = MolecularGraph::FromSmiles("CC.O").value();
  EXPECT_EQ(mol.num_atoms(), 3);
  EXPECT_EQ(mol.num_bonds(), 1);
  EXPECT_EQ(mol.Degree(2), 0);
}

TEST(MolGraphTest, RingLabelReuse) {
  auto mol = MolecularGraph::FromSmiles("C1CC1C1CC1").value();
  EXPECT_EQ(mol.num_atoms(), 6);
  EXPECT_EQ(mol.num_bonds(), 7);  // two triangles + connector
}

TEST(MolGraphTest, SpiroRing) {
  // The paper's example drug DB00226 contains a spiro junction.
  auto mol = MolecularGraph::FromSmiles("NC(N)=NCC1COC2(CCCCC2)O1").value();
  EXPECT_GT(mol.num_atoms(), 10);
  // Spiro atom (C2(...)) has degree 4.
  int64_t max_degree = 0;
  for (int32_t atom = 0; atom < mol.num_atoms(); ++atom) {
    max_degree = std::max(max_degree, mol.Degree(atom));
  }
  EXPECT_EQ(max_degree, 4);
}

TEST(MolGraphTest, AspirinAtomCount) {
  // Aspirin C9H8O4: 13 heavy atoms, 13 bonds (1 ring).
  auto mol = MolecularGraph::FromSmiles("CC(=O)Oc1ccccc1C(=O)O").value();
  EXPECT_EQ(mol.num_atoms(), 13);
  EXPECT_EQ(mol.num_bonds(), 13);
}

TEST(MolGraphTest, RejectsInvalidSmiles) {
  EXPECT_FALSE(MolecularGraph::FromSmiles("C(C").ok());
  EXPECT_FALSE(MolecularGraph::FromSmiles("").ok());
  EXPECT_FALSE(MolecularGraph::FromSmiles("C1CC").ok());
}

TEST(MolGraphTest, OtherEndNavigation) {
  auto mol = MolecularGraph::FromSmiles("CCO").value();
  for (int32_t bond_index : mol.IncidentBonds(1)) {
    const int32_t other = mol.OtherEnd(bond_index, 1);
    EXPECT_TRUE(other == 0 || other == 2);
  }
}

// ---------- fingerprints ----------

TEST(FingerprintTest, DeterministicAndSelfSimilar) {
  auto fp1 = MorganFingerprintFromSmiles("CC(=O)Oc1ccccc1C(=O)O").value();
  auto fp2 = MorganFingerprintFromSmiles("CC(=O)Oc1ccccc1C(=O)O").value();
  EXPECT_TRUE(fp1 == fp2);
  EXPECT_DOUBLE_EQ(TanimotoSimilarity(fp1, fp2), 1.0);
  EXPECT_GT(fp1.Popcount(), 0);
}

TEST(FingerprintTest, SimilarMoleculesMoreSimilarThanDissimilar) {
  // Ethanol vs propanol (homologues) vs benzene (unrelated).
  auto ethanol = MorganFingerprintFromSmiles("CCO").value();
  auto propanol = MorganFingerprintFromSmiles("CCCO").value();
  auto benzene = MorganFingerprintFromSmiles("c1ccccc1").value();
  EXPECT_GT(TanimotoSimilarity(ethanol, propanol),
            TanimotoSimilarity(ethanol, benzene));
}

TEST(FingerprintTest, RadiusZeroIsAtomTypes) {
  FingerprintConfig config;
  config.radius = 0;
  auto a = MorganFingerprintFromSmiles("CCCC", config).value();
  auto b = MorganFingerprintFromSmiles("CCC", config).value();
  // Same atom environment alphabet (interior/terminal C): highly similar.
  EXPECT_GT(TanimotoSimilarity(a, b), 0.9);
}

TEST(FingerprintTest, LargerRadiusDistinguishesMore) {
  FingerprintConfig r0;
  r0.radius = 0;
  FingerprintConfig r2;
  r2.radius = 2;
  // Two molecules with identical atom-degree multisets but different
  // connectivity order.
  const char* m1 = "CCOCCN";
  const char* m2 = "CCNCCO";
  const double sim_r0 =
      TanimotoSimilarity(MorganFingerprintFromSmiles(m1, r0).value(),
                         MorganFingerprintFromSmiles(m2, r0).value());
  const double sim_r2 =
      TanimotoSimilarity(MorganFingerprintFromSmiles(m1, r2).value(),
                         MorganFingerprintFromSmiles(m2, r2).value());
  EXPECT_LE(sim_r2, sim_r0);
}

TEST(FingerprintTest, NeighborOrderInvariance) {
  // The same molecule written with branches in different orders must
  // produce the same fingerprint.
  auto a = MorganFingerprintFromSmiles("CC(N)(O)C").value();
  auto b = MorganFingerprintFromSmiles("CC(O)(N)C").value();
  EXPECT_DOUBLE_EQ(TanimotoSimilarity(a, b), 1.0);
}

TEST(FingerprintTest, PropagatesParserErrors) {
  EXPECT_FALSE(MorganFingerprintFromSmiles("not-smiles").ok());
}

}  // namespace
}  // namespace hygnn::chem
