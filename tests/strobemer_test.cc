#include <set>

#include <gtest/gtest.h>

#include "chem/strobemer.h"
#include "data/featurize.h"
#include "data/generator.h"

namespace hygnn::chem {
namespace {

StrobemerConfig SmallConfig() {
  StrobemerConfig config;
  config.k = 3;
  config.w_min = 1;
  config.w_max = 4;
  return config;
}

TEST(StrobemerTest, CountMatchesAnchorPositions) {
  const std::string s = "CC(=O)Oc1ccccc1C(=O)O";  // length 21
  auto config = SmallConfig();
  auto strobemers = ExtractRandstrobes(s, config).value();
  // Anchors run while 2k + w_min - 1 more chars fit:
  // last_anchor = l - (2k + w_min - 1) = 21 - 6 = 15 -> 16 strobemers.
  EXPECT_EQ(strobemers.size(), 16u);
}

TEST(StrobemerTest, FormatIsTwoLinkedStrobes) {
  auto strobemers =
      ExtractRandstrobes("CCCOCCNCC", SmallConfig()).value();
  for (const auto& strobemer : strobemers) {
    // "<3 chars>~<3 chars>"
    ASSERT_EQ(strobemer.size(), 7u) << strobemer;
    EXPECT_EQ(strobemer[3], '~');
  }
}

TEST(StrobemerTest, FirstStrobeIsContiguousPrefix) {
  const std::string s = "CC(=O)OCCN";
  auto strobemers = ExtractRandstrobes(s, SmallConfig()).value();
  for (size_t i = 0; i < strobemers.size(); ++i) {
    EXPECT_EQ(strobemers[i].substr(0, 3), s.substr(i, 3));
  }
}

TEST(StrobemerTest, SecondStrobeComesFromWindow) {
  const std::string s = "ABCDEFGHIJ";
  StrobemerConfig config = SmallConfig();
  auto strobemers = ExtractRandstrobes(s, config).value();
  for (size_t i = 0; i < strobemers.size(); ++i) {
    const std::string second = strobemers[i].substr(4);
    const size_t pos = s.find(second);
    ASSERT_NE(pos, std::string::npos);
    // Window: [i + k + w_min - 1, i + k + w_max - 1].
    EXPECT_GE(pos, i + 3 + 1 - 1);
    EXPECT_LE(pos, i + 3 + 4 - 1);
  }
}

TEST(StrobemerTest, Deterministic) {
  const std::string s = "CC(=O)Oc1ccccc1C(=O)O";
  auto a = ExtractRandstrobes(s, SmallConfig()).value();
  auto b = ExtractRandstrobes(s, SmallConfig()).value();
  EXPECT_EQ(a, b);
}

TEST(StrobemerTest, DifferentSeedDifferentSelection) {
  const std::string s = "CC(=O)Oc1ccccc1C(=O)OCCCNCCO";
  StrobemerConfig a = SmallConfig();
  StrobemerConfig b = SmallConfig();
  b.hash_seed = 12345;
  auto sa = ExtractRandstrobes(s, a).value();
  auto sb = ExtractRandstrobes(s, b).value();
  EXPECT_NE(sa, sb);  // at least one window picks differently
}

TEST(StrobemerTest, GapToleranceProperty) {
  // The defining property vs k-mers: a strobemer can skip over a local
  // edit. Check that the strobemer set of a string and its single-char
  // insertion variant still share elements, while the contiguous
  // (2k)-mer sets of the affected region differ more.
  const std::string base = "CCCCOCCCCNCCCCSCCCC";
  std::string edited = base;
  edited.insert(9, "F");
  auto config = SmallConfig();
  auto set_of = [&config](const std::string& s) {
    auto v = ExtractUniqueRandstrobes(s, config).value();
    return std::set<std::string>(v.begin(), v.end());
  };
  auto a = set_of(base);
  auto b = set_of(edited);
  size_t shared = 0;
  for (const auto& s : a) shared += b.count(s);
  EXPECT_GT(shared, 0u);
}

TEST(StrobemerTest, ShortStringFallsBackToWhole) {
  auto strobemers = ExtractRandstrobes("CCO", SmallConfig()).value();
  ASSERT_EQ(strobemers.size(), 1u);
  EXPECT_EQ(strobemers[0], "CCO");
}

TEST(StrobemerTest, ErrorPaths) {
  StrobemerConfig bad_k = SmallConfig();
  bad_k.k = 0;
  EXPECT_FALSE(ExtractRandstrobes("CCO", bad_k).ok());
  StrobemerConfig bad_window = SmallConfig();
  bad_window.w_max = 0;
  EXPECT_FALSE(ExtractRandstrobes("CCO", bad_window).ok());
  EXPECT_FALSE(ExtractRandstrobes("", SmallConfig()).ok());
}

TEST(StrobemerFeaturizerTest, IntegratesWithPipeline) {
  data::DatasetConfig data_config;
  data_config.num_drugs = 40;
  data_config.seed = 9;
  auto dataset = data::GenerateDataset(data_config).value();
  data::FeaturizeConfig feat_config;
  feat_config.mode = data::SubstructureMode::kStrobemer;
  feat_config.strobemer.k = 3;
  feat_config.strobemer.w_min = 1;
  feat_config.strobemer.w_max = 5;
  auto featurizer =
      data::SubstructureFeaturizer::Build(dataset.drugs(), feat_config)
          .value();
  EXPECT_GT(featurizer.num_substructures(), 40);
  for (const auto& substructures : featurizer.drug_substructures()) {
    EXPECT_FALSE(substructures.empty());
  }
  // Cold-start segmentation works too.
  auto ids =
      featurizer.SegmentNewSmiles(dataset.drugs()[0].smiles).value();
  EXPECT_EQ(ids, featurizer.drug_substructures()[0]);
}

}  // namespace
}  // namespace hygnn::chem
