// Tests for the observability layer (src/obs): metric primitives, the
// lock-free per-op kernel timer, the JSONL metrics sink (including its
// behavior under injected storage faults), and the layer's core
// contract — recording metrics never perturbs training numerics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/fs.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "graph/builders.h"
#include "hygnn/model.h"
#include "hygnn/trainer.h"
#include "obs/metrics.h"
#include "obs/optime.h"
#include "obs/sink.h"
#include "serve/embedding_store.h"
#include "serve/scoring.h"
#include "tensor/loss.h"
#include "tensor/ops.h"

namespace hygnn::obs {
namespace {

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  core::PosixFs().Remove(path);
  return path;
}

TEST(CounterTest, AddsAndWrapsModulo2e64) {
  Counter counter;
  counter.Add(3);
  counter.Add();
  EXPECT_EQ(counter.value(), 4u);
  // Overflow is well-defined: unsigned wraparound, never UB.
  counter.Add(UINT64_MAX);
  EXPECT_EQ(counter.value(), 3u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge;
  gauge.Set(1.5);
  gauge.Set(-2.25);
  EXPECT_EQ(gauge.value(), -2.25);
}

TEST(HistogramTest, QuantilesAreExactToBucketResolution) {
  // 10 buckets of width 10; 100 samples spread evenly (10 per bucket).
  Histogram hist({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int i = 0; i < 100; ++i) hist.Observe(i + 0.5);
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_NEAR(hist.mean(), 50.0, 0.5);
  const double width = 10.0;  // one bucket of resolution
  EXPECT_NEAR(hist.Quantile(0.50), 50.0, width);
  EXPECT_NEAR(hist.Quantile(0.95), 95.0, width);
  EXPECT_NEAR(hist.Quantile(0.99), 99.0, width);
  EXPECT_NEAR(hist.Quantile(1.00), 100.0, width);
}

TEST(HistogramTest, OverflowBucketReportsLastFiniteBound) {
  Histogram hist({1, 10, 100});
  hist.Observe(1e9);
  const auto counts = hist.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts.back(), 1u);
  EXPECT_EQ(hist.Quantile(0.5), 100.0);
}

TEST(HistogramTest, EmptyHistogramQuantileIsZero) {
  Histogram hist({1, 2});
  EXPECT_EQ(hist.Quantile(0.99), 0.0);
  EXPECT_EQ(hist.mean(), 0.0);
}

TEST(ScopedTimerTest, RecordsOnlyWhenMetricsEnabled) {
  Histogram hist(DefaultLatencyBoundsUs());
  {
    // Metrics off (the process default): no sample, no clock read.
    ASSERT_FALSE(MetricsEnabled());
    ScopedTimer span(&hist);
  }
  EXPECT_EQ(hist.count(), 0u);
  {
    ScopedMetricsEnabled on(true);
    ScopedTimer span(&hist);
  }
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_FALSE(MetricsEnabled());  // scope restored the previous state
}

TEST(MetricsRegistryTest, HandlesAreStableAndSnapshotIsSorted) {
  auto& registry = MetricsRegistry::Global();
  Counter* c = registry.GetCounter("test.registry.alpha");
  EXPECT_EQ(c, registry.GetCounter("test.registry.alpha"));
  registry.GetGauge("test.registry.beta")->Set(7.0);
  registry.GetHistogram("test.registry.gamma")->Observe(3.0);
  c->Add(2);
  const auto snapshot = registry.Snapshot();
  std::vector<std::string> names;
  for (const auto& snap : snapshot) names.push_back(snap.name);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  bool saw_counter = false;
  for (const auto& snap : snapshot) {
    if (snap.name == "test.registry.alpha") {
      saw_counter = true;
      EXPECT_EQ(snap.kind, MetricSnapshot::Kind::kCounter);
      EXPECT_EQ(snap.count, 2u);
    }
  }
  EXPECT_TRUE(saw_counter);
  registry.ResetValues();
  EXPECT_EQ(c->value(), 0u);
  // Reset clears values but keeps registrations: the handle stays valid.
  EXPECT_EQ(registry.GetCounter("test.registry.alpha"), c);
}

TEST(JsonWriterTest, EscapesAndFormats) {
  JsonWriter writer;
  writer.Str("s", "a\"b\\c\nd").Int("i", -3).Uint("u", 5).Num("x", 0.5);
  EXPECT_EQ(writer.Finish(),
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"i\":-3,\"u\":5,\"x\":0.5}");
  JsonWriter empty;
  EXPECT_EQ(empty.Finish(), "{}");
  JsonWriter nonfinite;
  nonfinite.Num("nan", std::nan(""));
  EXPECT_EQ(nonfinite.Finish(), "{\"nan\":null}");
}

TEST(MetricsRecorderTest, InertWithoutPath) {
  MetricsRecorder recorder("");
  EXPECT_FALSE(recorder.active());
  recorder.Event("{\"type\":\"event\"}");
  EXPECT_TRUE(recorder.Flush().ok());  // touches no disk
}

TEST(MetricsRecorderTest, RoundTripsThroughFaultInjectingFs) {
  core::FaultInjectingFs faulty(&core::PosixFs());
  core::ScopedFileSystem scoped(&faulty);
  const std::string path = TempPath("obs_roundtrip.jsonl");

  MetricsRecorder recorder(path);
  ASSERT_TRUE(recorder.active());
  JsonWriter event;
  event.Str("type", "event").Str("event", "unit").Int("epoch", 0);
  recorder.Event(event.Finish());
  MetricsRegistry::Global().GetCounter("test.sink.events")->Add(1);
  ASSERT_TRUE(recorder.Flush().ok());

  auto body = ReadMetricsFileVerified(path);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  const auto lines = SplitJsonlLines(body.value());
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines[0].find("\"event\":\"unit\""), std::string::npos);
  bool saw_counter = false;
  for (const auto& line : lines) {
    if (line.find("\"name\":\"test.sink.events\"") != std::string::npos) {
      saw_counter = true;
      EXPECT_NE(line.find("\"type\":\"counter\""), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_counter);

  // A dead disk fails the flush with a typed error — and because the
  // write is temp + rename, the last good copy survives untouched.
  faulty.FailAllAppends(true);
  EXPECT_FALSE(recorder.Flush().ok());
  faulty.FailAllAppends(false);
  EXPECT_TRUE(ReadMetricsFileVerified(path).ok());

  // A torn write (tail lost after the rename committed) is rejected by
  // the CRC trailer instead of being parsed as a shorter-but-valid file.
  faulty.TruncateClosesBy(10);
  ASSERT_TRUE(recorder.Flush().ok());
  faulty.TruncateClosesBy(0);
  auto torn = ReadMetricsFileVerified(path);
  ASSERT_FALSE(torn.ok());
  MetricsRegistry::Global().ResetValues();
}

TEST(MetricsRecorderTest, RejectsForeignFile) {
  const std::string path = TempPath("obs_foreign.jsonl");
  ASSERT_TRUE(core::WriteFileAtomic(core::PosixFs(), path,
                                    "{\"type\":\"event\"}\n")
                  .ok());
  auto body = ReadMetricsFileVerified(path);
  ASSERT_FALSE(body.ok());
  EXPECT_NE(body.status().message().find("#crc32"), std::string::npos);
}

TEST(OpTimeTest, AttributesForwardAndBackwardToOpTags) {
  ResetOpTimes();
  SetKernelTimingEnabled(true);
  tensor::Tensor x = tensor::Tensor::Full(4, 4, 0.5f, /*requires_grad=*/true);
  tensor::Tensor w = tensor::Tensor::Full(4, 4, 0.25f, /*requires_grad=*/true);
  tensor::Tensor loss = tensor::ReduceMean(tensor::MatMul(x, w));
  loss.Backward();
  SetKernelTimingEnabled(false);

  bool saw_matmul = false, saw_reduce = false;
  for (const auto& entry : OpTimeSnapshot()) {
    if (entry.op == "MatMul") {
      saw_matmul = true;
      EXPECT_EQ(entry.forward_calls, 1u);
      EXPECT_EQ(entry.backward_calls, 1u);
      EXPECT_GE(entry.forward_ms, 0.0);
    }
    // ReduceMean is composite: ReduceSum then Scale.
    if (entry.op == "ReduceSum") saw_reduce = true;
  }
  EXPECT_TRUE(saw_matmul);
  EXPECT_TRUE(saw_reduce);

  // Disabled timing records nothing.
  ResetOpTimes();
  tensor::Tensor y = tensor::MatMul(x, w);
  EXPECT_TRUE(OpTimeSnapshot().empty());
  (void)y;
}

TEST(OpTimeTest, AggregatesAcrossThreadPoolWorkers) {
  // The slot table must absorb concurrent spans from ParallelFor
  // workers without locks; run under tsan via scripts/check.sh.
  ResetOpTimes();
  SetKernelTimingEnabled(true);
  constexpr int64_t kSpans = 512;
  core::ParallelFor(0, kSpans, /*grain=*/8, [](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      int token = 0;  // any address works; matched per-thread by value
      OpStart(&token);
      OpFinish(&token, "TestConcurrentOp");
      RecordBackward("TestConcurrentOp", 100);
    }
  });
  SetKernelTimingEnabled(false);
  bool found = false;
  for (const auto& entry : OpTimeSnapshot()) {
    if (entry.op == "TestConcurrentOp") {
      found = true;
      EXPECT_EQ(entry.forward_calls, static_cast<uint64_t>(kSpans));
      EXPECT_EQ(entry.backward_calls, static_cast<uint64_t>(kSpans));
    }
  }
  EXPECT_TRUE(found);
  ResetOpTimes();
}

/// Miniature training pipeline for the bit-identity and serving tests.
struct ObsPipeline {
  ObsPipeline() {
    data::DatasetConfig data_config;
    data_config.num_drugs = 50;
    data_config.seed = 909;
    dataset = std::make_unique<data::DdiDataset>(
        data::GenerateDataset(data_config).value());
    data::FeaturizeConfig feat_config;
    feat_config.espf_frequency_threshold = 3;
    featurizer = std::make_unique<data::SubstructureFeaturizer>(
        data::SubstructureFeaturizer::Build(dataset->drugs(), feat_config)
            .value());
    auto hypergraph = graph::BuildDrugHypergraph(
        featurizer->drug_substructures(), featurizer->num_substructures());
    context = std::make_unique<model::HypergraphContext>(
        model::HypergraphContext::FromHypergraph(hypergraph));
    core::Rng rng(910);
    for (int32_t i = 0; i + 1 < context->num_edges; i += 2) {
      pairs.push_back({i, i + 1, static_cast<float>((i / 2) % 2)});
    }
  }

  model::HyGnnModel MakeModel() const {
    core::Rng rng(911);
    model::HyGnnConfig config;
    config.encoder.hidden_dim = 8;
    config.encoder.output_dim = 8;
    return model::HyGnnModel(featurizer->num_substructures(), config, &rng);
  }

  std::unique_ptr<data::DdiDataset> dataset;
  std::unique_ptr<data::SubstructureFeaturizer> featurizer;
  std::unique_ptr<model::HypergraphContext> context;
  std::vector<data::LabeledPair> pairs;
};

std::vector<float> FlattenWeights(const model::HyGnnModel& model) {
  std::vector<float> flat;
  for (const auto& p : model.Parameters()) {
    flat.insert(flat.end(), p.data(), p.data() + p.size());
  }
  return flat;
}

TEST(ObsTest, MetricsDoNotPerturbTraining) {
  ObsPipeline pipeline;
  model::TrainConfig config;
  config.epochs = 4;
  config.batch_size = 16;
  config.validation_fraction = 0.25;
  config.seed = 31;

  model::HyGnnModel plain = pipeline.MakeModel();
  model::HyGnnTrainer plain_trainer(&plain, config);
  plain_trainer.Fit(*pipeline.context, pipeline.pairs);

  model::TrainConfig instrumented = config;
  instrumented.metrics_path = TempPath("obs_bitident.jsonl");
  model::HyGnnModel recorded = pipeline.MakeModel();
  model::HyGnnTrainer recorded_trainer(&recorded, instrumented);
  recorded_trainer.Fit(*pipeline.context, pipeline.pairs);

  // The whole point of the layer: instrumentation is passive. Weights
  // and loss history are bit-identical with metrics on or off.
  const auto a = FlattenWeights(plain);
  const auto b = FlattenWeights(recorded);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
  const auto& la = plain_trainer.epoch_losses();
  const auto& lb = recorded_trainer.epoch_losses();
  ASSERT_EQ(la.size(), lb.size());
  EXPECT_EQ(std::memcmp(la.data(), lb.data(), la.size() * sizeof(float)), 0);

  // And the run actually produced a valid, checksummed JSONL file with
  // one epoch event per epoch plus the train_done summary.
  auto body = ReadMetricsFileVerified(instrumented.metrics_path);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  int epoch_events = 0;
  bool saw_done = false, saw_op = false, saw_histogram = false;
  for (const auto& line : SplitJsonlLines(body.value())) {
    if (line.find("\"event\":\"epoch\"") != std::string::npos) ++epoch_events;
    if (line.find("\"event\":\"train_done\"") != std::string::npos) {
      saw_done = true;
    }
    if (line.find("\"type\":\"op\"") != std::string::npos) saw_op = true;
    if (line.find("\"name\":\"train.epoch_us\"") != std::string::npos) {
      saw_histogram = true;
    }
  }
  EXPECT_EQ(epoch_events,
            static_cast<int>(recorded_trainer.epoch_losses().size()));
  EXPECT_TRUE(saw_done);
  EXPECT_TRUE(saw_op);
  EXPECT_TRUE(saw_histogram);
  EXPECT_FALSE(MetricsEnabled()) << "trainer must restore the metrics gate";
  EXPECT_FALSE(KernelTimingEnabled());
  MetricsRegistry::Global().ResetValues();
  ResetOpTimes();
}

TEST(ObsTest, ServingMetricsCoverStagesAndCache) {
  ObsPipeline pipeline;
  model::HyGnnModel hygnn = pipeline.MakeModel();
  serve::EmbeddingStore store(&hygnn);
  ASSERT_TRUE(store.Rebuild(*pipeline.context).ok());
  serve::ScreeningEngine engine(&hygnn, &store);

  ScopedMetricsEnabled on(true);
  MetricsRegistry::Global().ResetValues();
  const auto hits = engine.TopK(/*query=*/0, /*k=*/5);
  EXPECT_EQ(hits.size(), 5u);

  auto& registry = MetricsRegistry::Global();
  const uint64_t scored = registry.GetCounter("serve.pairs_scored")->value();
  EXPECT_EQ(scored, static_cast<uint64_t>(store.num_drugs() - 1));
  EXPECT_EQ(registry.GetCounter("serve.embedding_cache.hits")->value(),
            2 * scored);
  EXPECT_GE(registry.GetHistogram("serve.score_us")->count(), 1u);
  EXPECT_GE(registry.GetHistogram("serve.gather_us")->count(), 1u);
  EXPECT_GE(registry.GetHistogram("serve.decode_us")->count(), 1u);
  EXPECT_EQ(registry.GetHistogram("serve.topk_rank_us")->count(), 1u);

  // AddDrug counts as a cache miss; Rebuild bumps the rebuild counter.
  ASSERT_TRUE(store.AddDrug({0}).ok());
  EXPECT_EQ(registry.GetCounter("serve.embedding_cache.misses")->value(), 1u);
  ASSERT_TRUE(store.Rebuild(*pipeline.context).ok());
  EXPECT_EQ(registry.GetCounter("serve.embedding_cache.rebuilds")->value(),
            1u);
  MetricsRegistry::Global().ResetValues();
}

}  // namespace
}  // namespace hygnn::obs
