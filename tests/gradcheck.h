#ifndef HYGNN_TESTS_GRADCHECK_H_
#define HYGNN_TESTS_GRADCHECK_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace hygnn::testing {

/// Compares the autograd gradient of `fn` (a scalar-valued function of
/// one leaf tensor) against central finite differences. `make_input`
/// must return a fresh leaf tensor with identical contents each call,
/// and `fn` must rebuild the graph from it.
inline void ExpectGradMatchesNumeric(
    const std::function<tensor::Tensor()>& make_input,
    const std::function<tensor::Tensor(const tensor::Tensor&)>& fn,
    float epsilon = 1e-3f, float rel_tolerance = 2e-2f,
    float abs_tolerance = 2e-3f) {
  // Analytic gradient.
  tensor::Tensor x = make_input();
  tensor::Tensor y = fn(x);
  ASSERT_EQ(y.size(), 1) << "gradcheck target must be scalar";
  y.Backward();
  ASSERT_TRUE(x.has_grad());
  std::vector<float> analytic(x.grad(), x.grad() + x.size());

  // Numeric gradient, one coordinate at a time.
  for (int64_t i = 0; i < x.size(); ++i) {
    tensor::Tensor x_plus = make_input();
    x_plus.data()[i] += epsilon;
    const float f_plus = fn(x_plus).item();

    tensor::Tensor x_minus = make_input();
    x_minus.data()[i] -= epsilon;
    const float f_minus = fn(x_minus).item();

    const float numeric = (f_plus - f_minus) / (2.0f * epsilon);
    const float scale =
        std::max({std::fabs(numeric), std::fabs(analytic[i]), 1.0f});
    EXPECT_NEAR(analytic[i], numeric,
                std::max(abs_tolerance, rel_tolerance * scale))
        << "coordinate " << i;
  }
}

}  // namespace hygnn::testing

#endif  // HYGNN_TESTS_GRADCHECK_H_
