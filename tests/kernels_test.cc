// Kernel-layer tests: (1) threaded execution is bit-identical to the
// threads=1 reference for every parallelized op, forward AND backward;
// (2) gradcheck still passes with a 4-thread pool; (3) two seeded
// training runs produce identical per-epoch losses at any thread
// count.

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "data/pairs.h"
#include "graph/builders.h"
#include "hygnn/model.h"
#include "hygnn/trainer.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "tests/gradcheck.h"

namespace hygnn {
namespace {

/// Builds inputs (pushing every differentiable leaf into *inputs) and
/// returns the op output. Must be deterministic across invocations.
using OpBuilder =
    std::function<tensor::Tensor(std::vector<tensor::Tensor>* inputs)>;

/// Output data followed by each input's gradient after Backward().
std::vector<std::vector<float>> RunOpAtThreads(const OpBuilder& build,
                                               int32_t threads) {
  core::SetNumThreads(threads);
  std::vector<tensor::Tensor> inputs;
  tensor::Tensor y = build(&inputs);
  std::vector<std::vector<float>> captured;
  captured.emplace_back(y.data(), y.data() + y.size());
  if (y.requires_grad()) {
    tensor::Tensor loss = y.size() == 1 ? y : tensor::ReduceSum(y);
    loss.Backward();
    for (auto& input : inputs) {
      if (input.has_grad()) {
        captured.emplace_back(input.grad(), input.grad() + input.size());
      }
    }
  }
  core::SetNumThreads(1);
  return captured;
}

/// Expects bitwise equality between the sequential reference and runs
/// at 2 and 4 threads.
void ExpectThreadParity(const std::string& op, const OpBuilder& build) {
  const auto reference = RunOpAtThreads(build, 1);
  for (int32_t threads : {2, 4}) {
    const auto threaded = RunOpAtThreads(build, threads);
    ASSERT_EQ(threaded.size(), reference.size()) << op;
    for (size_t b = 0; b < reference.size(); ++b) {
      ASSERT_EQ(threaded[b].size(), reference[b].size()) << op;
      const bool identical =
          std::memcmp(threaded[b].data(), reference[b].data(),
                      reference[b].size() * sizeof(float)) == 0;
      EXPECT_TRUE(identical)
          << op << " buffer " << b << " differs at " << threads
          << " threads (0 = output, >0 = input gradients)";
    }
  }
}

/// Sizes comfortably above the kernels' row grain so the pool really
/// splits the work.
constexpr int64_t kRows = 37;
constexpr int64_t kCols = 19;

tensor::Tensor MakeLeaf(std::vector<tensor::Tensor>* inputs, uint64_t seed,
                        int64_t rows, int64_t cols) {
  core::Rng rng(seed);
  tensor::Tensor t = tensor::NormalInit(rows, cols, 1.0f, &rng, true);
  inputs->push_back(t);
  return t;
}

TEST(KernelParityTest, MatMul) {
  ExpectThreadParity("MatMul", [](std::vector<tensor::Tensor>* inputs) {
    auto a = MakeLeaf(inputs, 1, kRows, kCols);
    auto b = MakeLeaf(inputs, 2, kCols, 23);
    return tensor::MatMul(a, b);
  });
}

TEST(KernelParityTest, AddSubMulScale) {
  ExpectThreadParity("Add", [](std::vector<tensor::Tensor>* inputs) {
    return tensor::Add(MakeLeaf(inputs, 3, kRows, kCols),
                       MakeLeaf(inputs, 4, kRows, kCols));
  });
  ExpectThreadParity("Sub", [](std::vector<tensor::Tensor>* inputs) {
    return tensor::Sub(MakeLeaf(inputs, 5, kRows, kCols),
                       MakeLeaf(inputs, 6, kRows, kCols));
  });
  ExpectThreadParity("Mul", [](std::vector<tensor::Tensor>* inputs) {
    return tensor::Mul(MakeLeaf(inputs, 7, kRows, kCols),
                       MakeLeaf(inputs, 8, kRows, kCols));
  });
  ExpectThreadParity("Scale", [](std::vector<tensor::Tensor>* inputs) {
    return tensor::Scale(MakeLeaf(inputs, 9, kRows, kCols), -1.75f);
  });
}

TEST(KernelParityTest, Broadcasts) {
  ExpectThreadParity("AddRowBroadcast",
                     [](std::vector<tensor::Tensor>* inputs) {
    auto x = MakeLeaf(inputs, 10, kRows, kCols);
    auto bias = MakeLeaf(inputs, 11, 1, kCols);
    return tensor::AddRowBroadcast(x, bias);
  });
  ExpectThreadParity("MulColumnBroadcast",
                     [](std::vector<tensor::Tensor>* inputs) {
    auto x = MakeLeaf(inputs, 12, kRows, kCols);
    auto w = MakeLeaf(inputs, 13, kRows, 1);
    return tensor::MulColumnBroadcast(x, w);
  });
}

TEST(KernelParityTest, ConcatAndGather) {
  ExpectThreadParity("ConcatCols", [](std::vector<tensor::Tensor>* inputs) {
    return tensor::ConcatCols(MakeLeaf(inputs, 14, kRows, kCols),
                              MakeLeaf(inputs, 15, kRows, 7));
  });
  ExpectThreadParity("IndexSelectRows",
                     [](std::vector<tensor::Tensor>* inputs) {
    auto x = MakeLeaf(inputs, 16, kRows, kCols);
    // Duplicate indices exercise the scatter-add backward path that
    // must stay race-free and ordered.
    std::vector<int32_t> indices;
    for (int32_t i = 0; i < 64; ++i) {
      indices.push_back(i % static_cast<int32_t>(kRows));
      indices.push_back(3);
    }
    return tensor::IndexSelectRows(x, indices);
  });
}

std::vector<int32_t> TestSegmentIds(int64_t n, int64_t num_segments) {
  // Scattered assignment with segment 2 intentionally left empty.
  std::vector<int32_t> seg(n);
  for (int64_t i = 0; i < n; ++i) {
    int32_t s = static_cast<int32_t>((i * 7 + 3) % num_segments);
    if (s == 2) s = 1;
    seg[i] = s;
  }
  return seg;
}

TEST(KernelParityTest, SegmentOps) {
  constexpr int64_t kN = 200, kSegments = 40;
  ExpectThreadParity("SegmentSoftmax",
                     [](std::vector<tensor::Tensor>* inputs) {
    auto scores = MakeLeaf(inputs, 17, kN, 1);
    return tensor::SegmentSoftmax(scores, TestSegmentIds(kN, kSegments),
                                  kSegments);
  });
  ExpectThreadParity("SegmentSum", [](std::vector<tensor::Tensor>* inputs) {
    auto x = MakeLeaf(inputs, 18, kN, kCols);
    return tensor::SegmentSum(x, TestSegmentIds(kN, kSegments), kSegments);
  });
}

TEST(KernelParityTest, RowwiseAndReductions) {
  ExpectThreadParity("RowwiseDot", [](std::vector<tensor::Tensor>* inputs) {
    return tensor::RowwiseDot(MakeLeaf(inputs, 19, kRows, kCols),
                              MakeLeaf(inputs, 20, kRows, kCols));
  });
  ExpectThreadParity("ReduceMean", [](std::vector<tensor::Tensor>* inputs) {
    return tensor::ReduceMean(MakeLeaf(inputs, 21, kRows, kCols));
  });
  ExpectThreadParity("L2NormalizeRows",
                     [](std::vector<tensor::Tensor>* inputs) {
    return tensor::L2NormalizeRows(MakeLeaf(inputs, 22, kRows, kCols));
  });
  ExpectThreadParity("RowSoftmax", [](std::vector<tensor::Tensor>* inputs) {
    return tensor::RowSoftmax(MakeLeaf(inputs, 23, kRows, kCols));
  });
}

TEST(KernelParityTest, Activations) {
  // Large enough to exceed the elementwise grain (4096) so the maps
  // actually split into chunks.
  constexpr int64_t kBig = 9000;
  const std::vector<std::pair<std::string, std::function<tensor::Tensor(
                                               const tensor::Tensor&)>>>
      unary_ops = {
          {"Relu", [](const tensor::Tensor& x) { return tensor::Relu(x); }},
          {"LeakyRelu",
           [](const tensor::Tensor& x) { return tensor::LeakyRelu(x, 0.1f); }},
          {"Sigmoid",
           [](const tensor::Tensor& x) { return tensor::Sigmoid(x); }},
          {"Tanh", [](const tensor::Tensor& x) { return tensor::Tanh(x); }},
          {"Exp", [](const tensor::Tensor& x) { return tensor::Exp(x); }},
          {"Log", [](const tensor::Tensor& x) { return tensor::Log(x); }},
      };
  for (const auto& [name, op] : unary_ops) {
    ExpectThreadParity(name, [&op](std::vector<tensor::Tensor>* inputs) {
      return op(MakeLeaf(inputs, 24, kBig, 1));
    });
  }
}

TEST(KernelParityTest, DropoutWithSeededRng) {
  ExpectThreadParity("Dropout", [](std::vector<tensor::Tensor>* inputs) {
    auto x = MakeLeaf(inputs, 25, kRows, kCols);
    core::Rng rng(26);  // the mask stream is drawn sequentially
    return tensor::Dropout(x, 0.3f, /*training=*/true, &rng);
  });
}

TEST(KernelParityTest, TransposeNoGrad) {
  ExpectThreadParity("TransposeNoGrad",
                     [](std::vector<tensor::Tensor>* inputs) {
    core::Rng rng(27);
    tensor::Tensor x = tensor::NormalInit(kRows, kCols, 1.0f, &rng, false);
    inputs->clear();
    return tensor::TransposeNoGrad(x);
  });
}

// ---------------------------------------------------------------------------
// Gradcheck re-run with a live 4-thread pool
// ---------------------------------------------------------------------------

class ThreadedGradcheckTest : public ::testing::Test {
 protected:
  void SetUp() override { core::SetNumThreads(4); }
  void TearDown() override { core::SetNumThreads(1); }
};

tensor::Tensor GradcheckInput(int64_t rows, int64_t cols) {
  core::Rng rng(99);
  return tensor::NormalInit(rows, cols, 1.0f, &rng, true);
}

TEST_F(ThreadedGradcheckTest, MatMul) {
  core::Rng rng(100);
  tensor::Tensor b = tensor::NormalInit(5, 6, 1.0f, &rng, false);
  testing::ExpectGradMatchesNumeric(
      [] { return GradcheckInput(9, 5); },
      [&b](const tensor::Tensor& x) {
        return tensor::ReduceMean(tensor::MatMul(x, b));
      });
}

TEST_F(ThreadedGradcheckTest, SegmentSoftmax) {
  const std::vector<int32_t> seg = {0, 1, 0, 2, 1, 0, 2, 2, 1, 0, 3, 3};
  testing::ExpectGradMatchesNumeric(
      [] { return GradcheckInput(12, 1); },
      [&seg](const tensor::Tensor& x) {
        tensor::Tensor alpha = tensor::SegmentSoftmax(x, seg, 4);
        return tensor::ReduceSum(tensor::Mul(alpha, alpha));
      });
}

TEST_F(ThreadedGradcheckTest, SegmentSum) {
  const std::vector<int32_t> seg = {0, 1, 0, 2, 1, 0, 2, 2, 1};
  testing::ExpectGradMatchesNumeric(
      [] { return GradcheckInput(9, 4); },
      [&seg](const tensor::Tensor& x) {
        return tensor::ReduceMean(tensor::SegmentSum(x, seg, 3));
      });
}

TEST_F(ThreadedGradcheckTest, L2NormalizeAndSoftmax) {
  testing::ExpectGradMatchesNumeric(
      [] { return GradcheckInput(7, 5); },
      [](const tensor::Tensor& x) {
        return tensor::ReduceMean(tensor::L2NormalizeRows(x));
      });
  testing::ExpectGradMatchesNumeric(
      [] { return GradcheckInput(6, 5); },
      [](const tensor::Tensor& x) {
        tensor::Tensor y = tensor::RowSoftmax(x);
        return tensor::ReduceSum(tensor::Mul(y, y));
      });
}

// ---------------------------------------------------------------------------
// End-to-end training determinism
// ---------------------------------------------------------------------------

std::vector<float> TrainOnce(int32_t threads) {
  data::DatasetConfig data_config;
  data_config.num_drugs = 60;
  data_config.seed = 7;
  auto dataset = data::GenerateDataset(data_config).value();
  data::FeaturizeConfig feat_config;
  feat_config.espf_frequency_threshold = 3;
  auto featurizer =
      data::SubstructureFeaturizer::Build(dataset.drugs(), feat_config)
          .value();
  auto hypergraph = graph::BuildDrugHypergraph(
      featurizer.drug_substructures(), featurizer.num_substructures());
  auto context = model::HypergraphContext::FromHypergraph(hypergraph);
  core::Rng pair_rng(8);
  auto pairs = data::BuildBalancedPairs(dataset, &pair_rng);

  core::Rng model_rng(9);
  model::HyGnnConfig model_config;
  model_config.encoder.hidden_dim = 16;
  model_config.encoder.output_dim = 16;
  model::HyGnnModel model(featurizer.num_substructures(), model_config,
                          &model_rng);
  model::TrainConfig train_config;
  train_config.epochs = 8;
  train_config.seed = 11;
  train_config.threads = threads;
  model::HyGnnTrainer trainer(&model, train_config);
  trainer.Fit(context, pairs);
  std::vector<float> losses = trainer.epoch_losses();
  core::SetNumThreads(1);
  return losses;
}

TEST(TrainingDeterminismTest, SeededRunsBitIdenticalAcrossThreadCounts) {
  const std::vector<float> run_a = TrainOnce(4);
  const std::vector<float> run_b = TrainOnce(4);
  const std::vector<float> sequential = TrainOnce(1);
  ASSERT_EQ(run_a.size(), 8u);
  // Two seeded runs agree with each other AND with the sequential
  // path, epoch by epoch, bit for bit.
  ASSERT_EQ(run_a.size(), run_b.size());
  ASSERT_EQ(run_a.size(), sequential.size());
  for (size_t e = 0; e < run_a.size(); ++e) {
    EXPECT_EQ(run_a[e], run_b[e]) << "epoch " << e;
    EXPECT_EQ(run_a[e], sequential[e]) << "epoch " << e;
  }
}

}  // namespace
}  // namespace hygnn
