#!/usr/bin/env python3
"""Self-test for the repo linters (scripts/lint.py, scripts/tidy.py).

Each convention rule 1-13 is exercised both ways: a deliberately
violating fixture must fire it, and a conforming fixture must stay
quiet. This is what keeps the gate honest — a regex edit that silently
stops matching breaks THIS test instead of silently un-gating the repo.

Run directly (python3 tests/lint_test.py) or via ctest (lint_test).
"""

import importlib.util
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def load(name):
    spec = importlib.util.spec_from_file_location(
        name, REPO / "scripts" / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


lint = load("lint")
tidy = load("tidy")


def problems_of(check, path, text):
    problems = []
    check(path, text, problems)
    return problems


class IncludeGuardTest(unittest.TestCase):  # rule 1
    GOOD = ("#ifndef HYGNN_TENSOR_FOO_H_\n"
            "#define HYGNN_TENSOR_FOO_H_\n"
            "int x;\n"
            "#endif  // HYGNN_TENSOR_FOO_H_\n")

    def test_fires_on_mismatched_guard(self):
        bad = self.GOOD.replace("HYGNN_TENSOR_FOO_H_", "HYGNN_WRONG_H_")
        self.assertTrue(
            problems_of(lint.check_include_guard, "src/tensor/foo.h", bad))

    def test_fires_on_missing_guard(self):
        self.assertTrue(problems_of(
            lint.check_include_guard, "src/tensor/foo.h", "int x;\n"))

    def test_quiet_on_matching_guard(self):
        self.assertEqual([], problems_of(
            lint.check_include_guard, "src/tensor/foo.h", self.GOOD))


class UsingNamespaceTest(unittest.TestCase):  # rule 2
    def test_fires_in_header(self):
        self.assertTrue(problems_of(
            lint.check_using_namespace, "src/a.h",
            "using namespace std;\n"))

    def test_quiet_on_comment_and_alias(self):
        clean = ("// using namespace std; (docs only)\n"
                 "namespace t = hygnn::tensor;\n")
        self.assertEqual([], problems_of(
            lint.check_using_namespace, "src/a.h", clean))


class CmakeListingTest(unittest.TestCase):  # rule 3
    def run_check(self, cmake_text):
        problems = []
        original = lint.REPO
        with tempfile.TemporaryDirectory() as tmp:
            lint.REPO = Path(tmp)
            try:
                d = Path(tmp) / "src" / "foo"
                d.mkdir(parents=True)
                if cmake_text is not None:
                    (d / "CMakeLists.txt").write_text(cmake_text)
                lint.check_cmake_listing(["src/foo/bar.cc"], problems)
            finally:
                lint.REPO = original
        return problems

    def test_fires_on_unlisted_source(self):
        self.assertTrue(self.run_check("add_library(foo other.cc)\n"))

    def test_fires_on_missing_cmakelists(self):
        self.assertTrue(self.run_check(None))

    def test_quiet_on_listed_source(self):
        self.assertEqual([], self.run_check("add_library(foo bar.cc)\n"))


class RawAssertTest(unittest.TestCase):  # rule 4
    def test_fires_on_raw_assert(self):
        self.assertTrue(problems_of(
            lint.check_raw_assert, "src/a.cc", "assert(x > 0);\n"))

    def test_quiet_on_static_assert_and_check(self):
        clean = ("static_assert(sizeof(int) == 4);\n"
                 "HYGNN_CHECK(x > 0) << x;\n")
        self.assertEqual([], problems_of(
            lint.check_raw_assert, "src/a.cc", clean))


class BuildArtifactTest(unittest.TestCase):  # rule 5
    def run_check(self, files):
        problems = []
        lint.check_build_artifacts(files, problems)
        return problems

    def test_fires_on_build_tree_and_objects(self):
        for path in ("build/CMakeCache.txt", "build-tsan/x.ninja",
                     "src/core/rng.o", "compile_commands.json"):
            self.assertTrue(self.run_check([path]), path)

    def test_quiet_on_sources(self):
        self.assertEqual([], self.run_check(
            ["src/core/rng.cc", "CMakeLists.txt", "scripts/check.sh"]))


class NoRawLoopsTest(unittest.TestCase):  # rule 6
    def test_fires_on_loop(self):
        self.assertTrue(problems_of(
            lint.check_no_raw_loops, "src/tensor/ops.cc",
            "for (int i = 0; i < n; ++i) out[i] = a[i] + b[i];\n"))

    def test_quiet_on_commented_loop(self):
        clean = ("// for (each row) delegate to kernels::Add\n"
                 "/* while (unported) { } */\n"
                 "kernels::Add(a, b, out);\n")
        self.assertEqual([], problems_of(
            lint.check_no_raw_loops, "src/tensor/ops.cc", clean))


class NoKernelCallsTest(unittest.TestCase):  # rule 13
    def test_fires_on_kernel_call(self):
        self.assertTrue(problems_of(
            lint.check_no_kernel_calls, "src/tensor/ops.cc",
            "kernels::Add(a, b, out, total);\n"))

    def test_fires_on_kernel_include(self):
        self.assertTrue(problems_of(
            lint.check_no_kernel_calls, "src/tensor/ops.cc",
            "#include \"tensor/kernels/kernels.h\"\n"))

    def test_quiet_on_recording_and_comments(self):
        clean = ("// the executor calls kernels::Add for this node\n"
                 "/* was: kernels::MulAccumulate(...) */\n"
                 "auto out = RecordOp(\"Add\", OpKind::kAdd, rows, cols,\n"
                 "                    {a.impl(), b.impl()});\n"
                 "return FinishRecord(std::move(out));\n")
        self.assertEqual([], problems_of(
            lint.check_no_kernel_calls, "src/tensor/ops.cc", clean))

    def test_repo_ops_cc_is_clean(self):
        text = (lint.REPO / "src/tensor/ops.cc").read_text(encoding="utf-8")
        self.assertEqual([], problems_of(
            lint.check_no_kernel_calls, "src/tensor/ops.cc", text))


class RawFileStreamTest(unittest.TestCase):  # rule 7
    def test_fires_on_ofstream(self):
        self.assertTrue(problems_of(
            lint.check_no_raw_file_streams, "src/serve/a.cc",
            "std::ofstream out(path);\n"))

    def test_fires_on_fstream_include(self):
        self.assertTrue(problems_of(
            lint.check_no_raw_file_streams, "src/data/b.cc",
            "#include <fstream>\n"))

    def test_quiet_on_filesystem_api(self):
        self.assertEqual([], problems_of(
            lint.check_no_raw_file_streams, "src/serve/a.cc",
            "auto st = fs->WriteFileDurable(path, bytes);\n"))


class StopwatchTest(unittest.TestCase):  # rule 8
    def test_fires_on_stopwatch(self):
        self.assertTrue(problems_of(
            lint.check_no_stopwatch, "src/serve/a.cc",
            "core::Stopwatch sw;\n"))

    def test_quiet_on_obs_timer(self):
        self.assertEqual([], problems_of(
            lint.check_no_stopwatch, "src/serve/a.cc",
            "obs::ScopedTimer t(registry, \"score\");\n"))


class DisciplineRuleTest(unittest.TestCase):
    """Rules 9-12 share check_discipline; assert each fires in scope,
    stays quiet in its sanctioned home, and ignores out-of-scope files."""

    def rules_fired(self, path, text):
        return sorted({
            int(p.split("[rule ")[1].split("]")[0])
            for p in problems_of(lint.check_discipline, path, text)
        })

    # -- rule 9: ad-hoc RNG ------------------------------------------
    def test_rule9_fires_on_mt19937_rand_random_device(self):
        for snippet in ("std::mt19937 gen(42);\n",
                        "int x = rand() % n;\n",
                        "srand(1234);\n",
                        "std::random_device rd;\n"):
            self.assertEqual([9], self.rules_fired("src/hygnn/a.cc", snippet),
                             snippet)

    def test_rule9_quiet_in_core_rng_and_tests(self):
        self.assertEqual([], self.rules_fired(
            "src/core/rng.cc", "std::mt19937 reference(seed);\n"))
        self.assertEqual([], self.rules_fired(
            "tests/rng_test.cc", "std::mt19937 reference(seed);\n"))

    def test_rule9_quiet_on_identifiers_containing_rand(self):
        self.assertEqual([], self.rules_fired(
            "src/hygnn/a.cc", "float operand = Operand(x);\n"))

    # -- rule 10: clocks ---------------------------------------------
    def test_rule10_fires_on_wall_clocks_everywhere(self):
        for path in ("src/obs/metrics.cc", "src/core/stopwatch.h",
                     "bench/b.cc", "examples/e.cc"):
            self.assertEqual(
                [10],
                self.rules_fired(
                    path, "auto t = std::chrono::system_clock::now();\n"),
                path)
        self.assertEqual([10], self.rules_fired(
            "src/hygnn/a.cc",
            "using clock = std::chrono::high_resolution_clock;\n"))

    def test_rule10_fires_on_steady_clock_outside_obs_core(self):
        self.assertEqual([10], self.rules_fired(
            "src/tensor/a.cc",
            "auto t = std::chrono::steady_clock::now();\n"))

    def test_rule10_quiet_on_steady_clock_in_obs_and_core(self):
        for path in ("src/obs/optime.cc", "src/core/stopwatch.h"):
            self.assertEqual([], self.rules_fired(
                path, "auto t = std::chrono::steady_clock::now();\n"), path)

    def test_rule10_clock_seam_backend_is_sanctioned(self):
        # The core::Clock seam (src/core/clock.cc) owns the one raw
        # steady_clock read behind MonotonicClock(); the same line in a
        # consumer would defeat the seam and must still fire.
        snippet = ("return std::chrono::duration_cast<std::chrono::"
                   "nanoseconds>(std::chrono::steady_clock::now()"
                   ".time_since_epoch()).count();\n")
        self.assertEqual([], self.rules_fired("src/core/clock.cc", snippet))
        self.assertEqual([10], self.rules_fired("src/serve/server.cc",
                                                snippet))

    def test_rule10_quiet_on_clock_seam_consumers(self):
        # Deadline code reads time through the seam, which mentions no
        # std::chrono clock at all: rule 10 has nothing to match.
        self.assertEqual([], self.rules_fired(
            "src/serve/server.cc",
            "const uint64_t now_nanos = clock_->NowNanos();\n"
            "core::ManualClock manual;\n"))

    # -- rule 11: raw threads ----------------------------------------
    def test_rule11_fires_on_std_thread_and_detach(self):
        self.assertEqual([11], self.rules_fired(
            "src/serve/a.cc", "std::thread worker(Run);\n"))
        self.assertEqual([11], self.rules_fired(
            "src/serve/a.cc", "worker.detach();\n"))

    def test_rule11_quiet_in_thread_pool(self):
        self.assertEqual([], self.rules_fired(
            "src/core/thread_pool.cc", "threads_.emplace_back(std::thread(\n"))

    def test_rule11_quiet_on_parallel_for(self):
        self.assertEqual([], self.rules_fired(
            "src/serve/a.cc", "core::ParallelFor(0, n, grain, fn);\n"))

    # -- rule 12: bare mutexes ---------------------------------------
    def test_rule12_fires_on_each_primitive(self):
        for snippet in ("std::mutex mu;\n",
                        "std::lock_guard<std::mutex> lock(mu);\n",
                        "std::unique_lock<std::mutex> lock(mu);\n",
                        "std::condition_variable cv;\n",
                        "std::shared_mutex rw;\n",
                        "std::scoped_lock lock(a, b);\n"):
            fired = self.rules_fired("src/obs/a.cc", snippet)
            self.assertIn(12, fired, snippet)

    def test_rule12_quiet_in_core_and_on_wrappers(self):
        self.assertEqual([], self.rules_fired(
            "src/core/mutex.cc",
            "std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);\n"))
        self.assertEqual([], self.rules_fired(
            "src/obs/a.cc", "core::MutexLock lock(mutex_);\n"))

    # -- shared scoping behavior -------------------------------------
    def test_out_of_scope_paths_ignored(self):
        everything = ("std::mt19937 g;\n"
                      "std::chrono::system_clock::now();\n"
                      "std::thread t;\n"
                      "std::mutex mu;\n")
        for path in ("tests/a_test.cc", "scripts/gen.cc", "docs/x.cc"):
            self.assertEqual([], self.rules_fired(path, everything), path)

    def test_comments_ignored(self):
        self.assertEqual([], self.rules_fired(
            "src/hygnn/a.cc", "// replaced std::mt19937 with core::Rng\n"))

    def test_repo_sources_are_clean(self):
        """Every tracked source passes rules 9-12 right now — the gate
        starts from zero debt."""
        problems = []
        for path in lint.tracked_files():
            p = Path(path)
            if p.suffix not in (".h", ".cc", ".cpp"):
                continue
            text = (lint.REPO / p).read_text(encoding="utf-8",
                                             errors="replace")
            lint.check_discipline(path, text, problems)
        self.assertEqual([], problems)


class TidyGateTest(unittest.TestCase):
    """Baseline arithmetic of scripts/tidy.py, with synthetic findings
    (no clang-tidy needed)."""

    FINDINGS = {
        ("src/a.cc", "bugprone-x"): ["src/a.cc:1:1: msg [bugprone-x]",
                                     "src/a.cc:9:1: msg [bugprone-x]"],
        ("src/b.cc", "performance-y"): ["src/b.cc:3:1: msg [performance-y]"],
    }

    def test_new_finding_fails(self):
        new, stale = tidy.gate(self.FINDINGS, {})
        self.assertTrue(new)
        self.assertEqual([], stale)

    def test_baselined_findings_pass(self):
        baseline = {"src/a.cc|bugprone-x": 2, "src/b.cc|performance-y": 1}
        new, stale = tidy.gate(self.FINDINGS, baseline)
        self.assertEqual([], new)
        self.assertEqual([], stale)

    def test_count_increase_fails(self):
        baseline = {"src/a.cc|bugprone-x": 1, "src/b.cc|performance-y": 1}
        new, stale = tidy.gate(self.FINDINGS, baseline)
        self.assertTrue(new)
        self.assertIn("src/a.cc|bugprone-x", new[0])

    def test_paid_down_debt_is_stale_not_failing(self):
        baseline = {"src/a.cc|bugprone-x": 5, "src/b.cc|performance-y": 1,
                    "src/gone.cc|bugprone-z": 3}
        new, stale = tidy.gate(self.FINDINGS, baseline)
        self.assertEqual([], new)
        self.assertEqual(
            ["src/a.cc|bugprone-x", "src/gone.cc|bugprone-z"], stale)

    def test_finding_regex_parses_clang_tidy_line(self):
        line = ("/root/repo/src/core/rng.cc:42:7: warning: use of undeclared "
                "thing is bad [bugprone-use-after-move]")
        match = tidy.FINDING.match(line)
        self.assertIsNotNone(match)
        self.assertEqual("42", match.group("line"))
        self.assertEqual("bugprone-use-after-move", match.group("check"))

    def test_checked_in_baseline_parses(self):
        baseline = tidy.load_baseline()
        self.assertIsInstance(baseline, dict)
        for key, count in baseline.items():
            self.assertIn("|", key)
            self.assertIsInstance(count, int)


if __name__ == "__main__":
    result = unittest.main(exit=False, verbosity=1).result
    sys.exit(0 if result.wasSuccessful() else 1)
