#include <cctype>
#include <set>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/names.h"

namespace hygnn::data {
namespace {

TEST(NameGeneratorTest, NamesAreUnique) {
  NameGenerator generator;
  core::Rng rng(1);
  std::set<std::string> names;
  for (int i = 0; i < 2000; ++i) {
    auto name = generator.Generate(&rng);
    EXPECT_TRUE(names.insert(name).second) << "duplicate: " << name;
  }
}

TEST(NameGeneratorTest, NamesLookLikeDrugNames) {
  NameGenerator generator;
  core::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    auto name = generator.Generate(&rng);
    ASSERT_GE(name.size(), 4u);
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(name[0]))) << name;
    for (size_t c = 1; c < name.size(); ++c) {
      EXPECT_TRUE(std::islower(static_cast<unsigned char>(name[c])) ||
                  std::isdigit(static_cast<unsigned char>(name[c])) ||
                  name[c] == '-')
          << name;
    }
  }
}

TEST(NameGeneratorTest, DeterministicForSeed) {
  NameGenerator g1, g2;
  core::Rng rng1(3), rng2(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(g1.Generate(&rng1), g2.Generate(&rng2));
  }
}

}  // namespace
}  // namespace hygnn::data
