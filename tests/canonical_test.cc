#include <set>

#include <gtest/gtest.h>

#include "chem/canonical.h"
#include "chem/fragments.h"
#include "chem/generator.h"
#include "chem/smiles.h"
#include "core/rng.h"

namespace hygnn::chem {
namespace {

TEST(CanonicalRanksTest, IsPermutation) {
  auto mol = MolecularGraph::FromSmiles("CC(=O)Oc1ccccc1C(=O)O").value();
  auto ranks = CanonicalRanks(mol);
  std::set<int32_t> unique(ranks.begin(), ranks.end());
  EXPECT_EQ(unique.size(), static_cast<size_t>(mol.num_atoms()));
  EXPECT_EQ(*unique.begin(), 0);
  EXPECT_EQ(*unique.rbegin(), mol.num_atoms() - 1);
}

TEST(CanonicalSmilesTest, OutputIsValidSmiles) {
  for (const char* smiles :
       {"CCO", "CC(=O)Oc1ccccc1C(=O)O", "NC(N)=NCC1COC2(CCCCC2)O1",
        "C[N+](=O)[O-]", "c1cnc[nH]1", "CCO.CCN"}) {
    auto canonical = CanonicalSmiles(smiles).value();
    EXPECT_TRUE(ValidateSmiles(canonical).ok())
        << smiles << " -> " << canonical;
  }
}

TEST(CanonicalSmilesTest, EquivalentSpellingsAgree) {
  const std::pair<const char*, const char*> equivalent[] = {
      {"CCO", "OCC"},
      {"CC(C)C", "C(C)(C)C"},
      {"C(=O)O", "OC=O"},
      {"c1ccccc1", "c1ccccc1"},
      {"CCN(CC)CC", "N(CC)(CC)CC"},
      {"C1CCCCC1", "C1CCCCC1"},
      {"CC(=O)N", "NC(C)=O"},
      {"CCO.CCN", "CCN.CCO"},  // component order
  };
  for (const auto& [a, b] : equivalent) {
    auto ca = CanonicalSmiles(a).value();
    auto cb = CanonicalSmiles(b).value();
    EXPECT_EQ(ca, cb) << a << " vs " << b;
  }
}

TEST(CanonicalSmilesTest, DistinctMoleculesDiffer) {
  const std::pair<const char*, const char*> different[] = {
      {"CCO", "CCN"},
      {"CCO", "CCCO"},
      {"C=CC", "CCC"},
      {"c1ccccc1", "C1CCCCC1"},
      {"C[N+](=O)[O-]", "CN(=O)O"},
  };
  for (const auto& [a, b] : different) {
    EXPECT_NE(CanonicalSmiles(a).value(), CanonicalSmiles(b).value())
        << a << " vs " << b;
  }
}

TEST(CanonicalSmilesTest, Idempotent) {
  for (const char* smiles :
       {"CC(=O)Oc1ccccc1C(=O)O", "NC(N)=NCC1COC2(CCCCC2)O1",
        "N1CCOCC1C(F)(F)F"}) {
    auto once = CanonicalSmiles(smiles).value();
    auto twice = CanonicalSmiles(once).value();
    EXPECT_EQ(once, twice) << smiles;
  }
}

TEST(CanonicalSmilesTest, PreservesAtomAndBondCounts) {
  for (const char* smiles :
       {"CC(=O)Oc1ccccc1C(=O)O", "C1CC1C1CC1", "OP(=O)(O)O"}) {
    auto original = MolecularGraph::FromSmiles(smiles).value();
    auto canonical = CanonicalSmiles(smiles).value();
    auto reparsed = MolecularGraph::FromSmiles(canonical).value();
    EXPECT_EQ(reparsed.num_atoms(), original.num_atoms()) << canonical;
    EXPECT_EQ(reparsed.num_bonds(), original.num_bonds()) << canonical;
  }
}

TEST(CanonicalSmilesTest, RejectsInvalid) {
  EXPECT_FALSE(CanonicalSmiles("C(C").ok());
  EXPECT_FALSE(CanonicalSmiles("").ok());
}

/// Property sweep: every generator-produced drug canonicalizes to a
/// valid, idempotent, graph-preserving form, and the canonical form is
/// invariant under re-parsing.
class CanonicalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CanonicalPropertyTest, GeneratedDrugsRoundTrip) {
  SmilesGenerator generator;
  core::Rng rng(GetParam());
  auto groups = FunctionalGroupIndices();
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<int32_t> picked;
    for (size_t s : rng.SampleWithoutReplacement(groups.size(),
                                                 1 + rng.UniformInt(3))) {
      picked.push_back(groups[s]);
    }
    auto smiles =
        generator.Generate(picked, static_cast<int32_t>(rng.UniformInt(5)),
                           &rng)
            .value();
    auto canonical_or = CanonicalSmiles(smiles);
    ASSERT_TRUE(canonical_or.ok())
        << smiles << ": " << canonical_or.status().ToString();
    const std::string canonical = canonical_or.value();
    EXPECT_TRUE(ValidateSmiles(canonical).ok()) << canonical;
    EXPECT_EQ(CanonicalSmiles(canonical).value(), canonical)
        << smiles << " -> " << canonical;
    auto original = MolecularGraph::FromSmiles(smiles).value();
    auto reparsed = MolecularGraph::FromSmiles(canonical).value();
    EXPECT_EQ(reparsed.num_atoms(), original.num_atoms());
    EXPECT_EQ(reparsed.num_bonds(), original.num_bonds());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace hygnn::chem
