#include "core/fs.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/io.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace hygnn::core {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(Crc32Test, MatchesKnownVector) {
  // The IEEE 802.3 check value for the standard 9-byte test input.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_NE(Crc32("a"), Crc32("b"));
}

TEST(IntegrityFooterTest, RoundTrips) {
  std::string payload = "some binary\0payload";
  const std::string original = payload;
  AppendIntegrityFooter(&payload);
  ASSERT_EQ(payload.size(), original.size() + kIntegrityFooterBytes);
  auto stripped = StripIntegrityFooter(payload);
  ASSERT_TRUE(stripped.ok()) << stripped.status().ToString();
  EXPECT_EQ(std::string(stripped.value()), original);
}

TEST(IntegrityFooterTest, RejectsMissingTruncatedAndCorrupt) {
  std::string payload = "durable payload bytes";
  AppendIntegrityFooter(&payload);

  // Too short to even hold a footer.
  auto missing = StripIntegrityFooter("tiny");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("missing integrity footer"),
            std::string::npos);

  // Torn tail: footer intact but payload bytes missing.
  std::string torn = payload;
  torn.erase(4, 4);
  auto torn_result = StripIntegrityFooter(torn);
  ASSERT_FALSE(torn_result.ok());
  EXPECT_NE(torn_result.status().message().find("truncated"),
            std::string::npos);

  // Bit rot: length checks out, checksum doesn't.
  std::string corrupt = payload;
  corrupt[2] ^= 0x01;
  auto corrupt_result = StripIntegrityFooter(corrupt);
  ASSERT_FALSE(corrupt_result.ok());
  EXPECT_NE(corrupt_result.status().message().find("checksum mismatch"),
            std::string::npos);
}

TEST(FsFaultTest, DurableWriteRoundTripsThroughPosixFs) {
  const std::string path = TempPath("durable_roundtrip.bin");
  ASSERT_TRUE(WriteFileDurable(PosixFs(), path, "payload v1").ok());
  auto read = ReadFileVerified(PosixFs(), path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value(), "payload v1");
  // Replacement is atomic: the new content fully supersedes the old.
  ASSERT_TRUE(WriteFileDurable(PosixFs(), path, "payload v2 longer").ok());
  EXPECT_EQ(ReadFileVerified(PosixFs(), path).value(), "payload v2 longer");
}

TEST(FsFaultTest, CrashedWriteLeavesOldFile) {
  const std::string path = TempPath("old_preserved.bin");
  ASSERT_TRUE(WriteFileDurable(PosixFs(), path, "the good copy").ok());

  FaultInjectingFs faulty(&PosixFs());
  faulty.FailNthAppend(1);
  auto status = WriteFileDurable(faulty, path, "never lands");
  ASSERT_FALSE(status.ok());
  // The failed write went to the temp file; the committed copy and its
  // checksum are untouched, and the temp was cleaned up.
  auto read = ReadFileVerified(PosixFs(), path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value(), "the good copy");
  EXPECT_FALSE(PosixFs().Exists(path + ".tmp"));
}

TEST(FsFaultTest, CrashedFirstWriteLeavesNoFile) {
  const std::string path = TempPath("never_created.bin");
  FaultInjectingFs faulty(&PosixFs());
  faulty.FailAllAppends(true);
  ASSERT_FALSE(WriteFileDurable(faulty, path, "doomed").ok());
  EXPECT_FALSE(PosixFs().Exists(path));
  EXPECT_FALSE(PosixFs().Exists(path + ".tmp"));
}

TEST(FsFaultTest, FailedRenamePreservesOldFile) {
  const std::string path = TempPath("rename_fail.bin");
  ASSERT_TRUE(WriteFileDurable(PosixFs(), path, "committed").ok());
  FaultInjectingFs faulty(&PosixFs());
  faulty.FailRenames(true);
  ASSERT_FALSE(WriteFileDurable(faulty, path, "uncommitted").ok());
  EXPECT_EQ(ReadFileVerified(PosixFs(), path).value(), "committed");
}

TEST(FsFaultTest, EnospcFlavorNamesDiskFull) {
  FaultInjectingFs faulty(&PosixFs());
  faulty.FailNthAppend(1, /*enospc=*/true);
  auto status =
      WriteFileDurable(faulty, TempPath("enospc.bin"), "payload");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("ENOSPC"), std::string::npos);
}

TEST(FsFaultTest, RetryRecoversFromTransientFailure) {
  const std::string path = TempPath("retry.bin");
  FaultInjectingFs faulty(&PosixFs());
  faulty.FailNthAppend(1);  // first attempt dies, second succeeds
  auto status = WriteFileDurableWithRetry(faulty, path, "eventually",
                                          /*attempts=*/3, /*backoff_ms=*/0);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(ReadFileVerified(PosixFs(), path).value(), "eventually");
}

TEST(FsFaultTest, RetryGivesUpWhenDiskStaysDead) {
  FaultInjectingFs faulty(&PosixFs());
  faulty.FailAllAppends(true);
  auto status =
      WriteFileDurableWithRetry(faulty, TempPath("dead_disk.bin"),
                                "never", /*attempts=*/3, /*backoff_ms=*/0);
  ASSERT_FALSE(status.ok());
}

TEST(FsFaultTest, TornCloseIsRejectedByVerifiedRead) {
  const std::string path = TempPath("torn_close.bin");
  FaultInjectingFs faulty(&PosixFs());
  faulty.TruncateClosesBy(8);
  // The torn write itself "succeeds" — that's the point: the crash
  // happened after rename, the loader is the last line of defense.
  ASSERT_TRUE(WriteFileDurable(faulty, path, "a payload with a tail").ok());
  auto read = ReadFileVerified(PosixFs(), path);
  ASSERT_FALSE(read.ok());
}

TEST(FsFaultTest, ShortReadIsRejectedByVerifiedRead) {
  const std::string path = TempPath("short_read.bin");
  ASSERT_TRUE(WriteFileDurable(PosixFs(), path, "full contents here").ok());
  FaultInjectingFs faulty(&PosixFs());
  faulty.MaxReadBytes(10);
  auto read = ReadFileVerified(faulty, path);
  ASSERT_FALSE(read.ok());
}

TEST(FsFaultTest, MissingFileIsNotFound) {
  auto read = ReadFileVerified(PosixFs(), TempPath("no_such_file.bin"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

// ---- every persistence layer survives injected crashes ----

TEST(FsFaultTest, TensorTableSurvivesCrashMidWrite) {
  const std::string path = TempPath("tensors.hygt");
  std::vector<std::pair<std::string, tensor::Tensor>> tensors;
  tensors.emplace_back("w", tensor::Tensor::Full(2, 3, 1.5f));
  ASSERT_TRUE(tensor::SaveTensors(tensors, path).ok());

  FaultInjectingFs faulty(&PosixFs());
  faulty.FailNthAppend(1);
  {
    ScopedFileSystem scoped(&faulty);
    std::vector<std::pair<std::string, tensor::Tensor>> other;
    other.emplace_back("w", tensor::Tensor::Full(2, 3, -9.0f));
    ASSERT_FALSE(tensor::SaveTensors(other, path).ok());
  }
  auto loaded = tensor::LoadTensors(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()[0].second.At(0, 0), 1.5f);
}

TEST(FsFaultTest, TensorTableRejectsTornFile) {
  const std::string path = TempPath("torn.hygt");
  FaultInjectingFs faulty(&PosixFs());
  faulty.TruncateClosesBy(6);
  {
    ScopedFileSystem scoped(&faulty);
    std::vector<std::pair<std::string, tensor::Tensor>> tensors;
    tensors.emplace_back("w", tensor::Tensor::Full(4, 4, 2.0f));
    ASSERT_TRUE(tensor::SaveTensors(tensors, path).ok());
  }
  ASSERT_FALSE(tensor::LoadTensors(path).ok());
}

TEST(FsFaultTest, CsvSurvivesCrashMidWrite) {
  const std::string path = TempPath("pairs.csv");
  const std::vector<data::LabeledPair> pairs = {{0, 1, 1.0f}, {1, 2, 0.0f}};
  ASSERT_TRUE(data::WritePairsCsv(pairs, path).ok());

  FaultInjectingFs faulty(&PosixFs());
  faulty.FailNthAppend(1, /*enospc=*/true);
  {
    ScopedFileSystem scoped(&faulty);
    const std::vector<data::LabeledPair> other = {{5, 6, 1.0f}};
    ASSERT_FALSE(data::WritePairsCsv(other, path).ok());
  }
  auto loaded = data::ReadPairsCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[1].b, 2);
}

TEST(FsFaultTest, CsvRejectsTornFile) {
  const std::string path = TempPath("torn_pairs.csv");
  FaultInjectingFs faulty(&PosixFs());
  // Tear off the trailer line and part of the last row.
  faulty.TruncateClosesBy(20);
  {
    ScopedFileSystem scoped(&faulty);
    const std::vector<data::LabeledPair> pairs = {{0, 1, 1.0f},
                                                  {1, 2, 0.0f}};
    ASSERT_TRUE(data::WritePairsCsv(pairs, path).ok());
  }
  auto loaded = data::ReadPairsCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("#crc32"), std::string::npos);
}

TEST(FsFaultTest, CsvRejectsCorruptRowEvenWithLineBoundaryTear) {
  // A tear exactly at a line boundary looks like a well-formed shorter
  // CSV — only the checksum trailer can catch it.
  const std::string path = TempPath("boundary_tear.csv");
  const std::vector<data::LabeledPair> pairs = {{0, 1, 1.0f}, {1, 2, 0.0f}};
  ASSERT_TRUE(data::WritePairsCsv(pairs, path).ok());
  auto raw = PosixFs().ReadFile(path);
  ASSERT_TRUE(raw.ok());
  const std::string& content = raw.value();
  // Drop the second data row but keep the (now stale) trailer.
  const size_t trailer = content.rfind("#crc32,");
  const size_t row2 = content.rfind('\n', trailer - 2) + 1;
  const std::string torn =
      content.substr(0, row2) + content.substr(trailer);
  ASSERT_TRUE(WriteFileAtomic(PosixFs(), path, torn).ok());
  auto loaded = data::ReadPairsCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("checksum mismatch"),
            std::string::npos);
}

}  // namespace
}  // namespace hygnn::core
