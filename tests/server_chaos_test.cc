// Chaos-harness tests for serve::Server: injected stalls and batch
// failures (serve::FaultInjectingScorer) combined with a
// core::ManualClock drive every deadline/degradation path
// deterministically — no wall-clock sleeps, single-CPU safe:
//
//   * requests whose deadline passes while queued expire at batch
//     close with DeadlineExceeded, never scored;
//   * a deadline that passes *during* scoring withholds the stale
//     score and delivers the typed error instead;
//   * injected batch failures flow to every waiter as typed results;
//   * a warm service-time EWMA sheds doomed-deadline requests at
//     admission with a retry-after hint;
//   * shutdown during a stall drains cleanly, survivors bit-identical
//     to serial scoring;
//   * fire-and-forget submitters (dropped Pending handles) leak and
//     hang nothing — pinned under tsan and asan by scripts/check.sh;
//   * an expired waiter in a *failed* batch still gets its typed
//     DeadlineExceeded, never the batch error;
//   * stats() never transiently reports completed > accepted.
//
// Raw std::thread is fine here (tests are exempt from the
// thread_pool-only lint rule).

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/clock.h"
#include "core/status.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "graph/builders.h"
#include "hygnn/model.h"
#include "serve/chaos.h"
#include "serve/embedding_store.h"
#include "serve/request.h"
#include "serve/retry.h"
#include "serve/scoring.h"
#include "serve/server.h"

namespace hygnn::serve {
namespace {

/// Shared miniature corpus, same shape as ServerTest's but smaller —
/// these tests exercise control flow, not throughput, and run under
/// tsan.
class ServerChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DatasetConfig data_config;
    data_config.num_drugs = 40;
    data_config.seed = 909;
    auto dataset = data::GenerateDataset(data_config).value();
    data::FeaturizeConfig feat_config;
    feat_config.espf_frequency_threshold = 3;
    featurizer_ = new data::SubstructureFeaturizer(
        data::SubstructureFeaturizer::Build(dataset.drugs(), feat_config)
            .value());
    auto hypergraph =
        graph::BuildDrugHypergraph(featurizer_->drug_substructures(),
                                   featurizer_->num_substructures());
    context_ = new model::HypergraphContext(
        model::HypergraphContext::FromHypergraph(hypergraph));

    core::Rng rng(13);
    model::HyGnnConfig config;
    config.encoder.hidden_dim = 8;
    config.encoder.output_dim = 8;
    config.decoder_hidden_dim = 8;
    model_ = new model::HyGnnModel(featurizer_->num_substructures(),
                                   config, &rng);
    store_ = new EmbeddingStore(model_);
    ASSERT_TRUE(store_->Rebuild(*context_).ok());
  }

  static void TearDownTestSuite() {
    delete store_;
    delete model_;
    delete context_;
    delete featurizer_;
  }

  static std::vector<ScoreRequest> MakeRequests(int32_t count) {
    const int32_t n = store_->num_drugs();
    std::vector<ScoreRequest> requests(static_cast<size_t>(count));
    for (int32_t r = 0; r < count; ++r) {
      const int32_t pairs = r % 3 + 1;
      for (int32_t i = 0; i < pairs; ++i) {
        const int32_t a = (r * 7 + i) % n;
        const int32_t b = (r * 3 + i * 11 + 1) % n;
        requests[static_cast<size_t>(r)].pairs.push_back({a, b, 0.0f});
      }
    }
    return requests;
  }

  static std::vector<float> SerialScores(const ScoreRequest& request) {
    PairScorer scorer(model_, store_);
    auto response = scorer.ScorePairs(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return std::move(response).value().scores;
  }

  static void ExpectBitIdentical(const std::vector<float>& got,
                                 const std::vector<float>& want,
                                 const std::string& what) {
    ASSERT_EQ(got.size(), want.size()) << what;
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          want.size() * sizeof(float)),
              0)
        << what << ": served scores differ bitwise from serial";
  }

  /// One worker, greedy batching (max_wait 0 closes a batch as soon as
  /// the queue empties), chaos hook installed: the canonical
  /// deterministic chaos configuration.
  static ServerOptions ChaosOptions(FaultInjectingScorer* chaos) {
    ServerOptions options;
    options.workers = 1;
    options.max_wait_us = 0;
    options.chaos = chaos;
    return options;
  }

  static data::SubstructureFeaturizer* featurizer_;
  static model::HypergraphContext* context_;
  static model::HyGnnModel* model_;
  static EmbeddingStore* store_;
};

data::SubstructureFeaturizer* ServerChaosTest::featurizer_ = nullptr;
model::HypergraphContext* ServerChaosTest::context_ = nullptr;
model::HyGnnModel* ServerChaosTest::model_ = nullptr;
EmbeddingStore* ServerChaosTest::store_ = nullptr;

TEST_F(ServerChaosTest, QueuedRequestExpiresAtBatchCloseWhileWorkerStalled) {
  core::ManualClock manual;
  core::ScopedClock scoped(&manual);
  FaultInjectingScorer chaos;
  chaos.StallNthBatch(1);
  Server server(model_, store_, ChaosOptions(&chaos));
  ASSERT_TRUE(server.Start().ok());

  const auto requests = MakeRequests(2);
  const auto serial_a = SerialScores(requests[0]);

  // Batch 1 opens with A (no deadline) and parks on the stall.
  auto a = server.SubmitAsync(requests[0]);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  chaos.AwaitStalled();

  // B (1 ms deadline) queues behind the stalled batch; its deadline
  // passes while it waits.
  ScoreRequest with_deadline = requests[1];
  with_deadline.timeout_us = 1000;
  auto b = server.SubmitAsync(with_deadline);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  manual.AdvanceMicros(2000);
  chaos.ReleaseStall();

  // A was admitted before the deadline drama and completes normally,
  // bit-identical to serial scoring.
  auto a_result = a.value()->Wait();
  ASSERT_TRUE(a_result.ok()) << a_result.status().ToString();
  ExpectBitIdentical(a_result.value().scores, serial_a, "survivor A");

  // B expires at batch close: typed DeadlineExceeded, never scored.
  auto b_result = b.value()->Wait();
  ASSERT_FALSE(b_result.ok());
  EXPECT_EQ(b_result.status().code(),
            core::StatusCode::kDeadlineExceeded);
  EXPECT_NE(b_result.status().message().find("1000"), std::string::npos);

  server.Shutdown();
  const auto stats = server.stats();
  EXPECT_EQ(stats.expired, 1u);
  // Expired requests still count as completed: their result was
  // delivered.
  EXPECT_EQ(stats.completed, 2u);
}

TEST_F(ServerChaosTest, DeadlinePassingMidBatchWithholdsTheStaleScore) {
  core::ManualClock manual;
  core::ScopedClock scoped(&manual);
  FaultInjectingScorer chaos;
  chaos.StallNthBatch(1);
  Server server(model_, store_, ChaosOptions(&chaos));
  ASSERT_TRUE(server.Start().ok());

  // The request is live when its batch closes, but the batch then
  // stalls past the deadline: the score is computed and withheld.
  ScoreRequest request = MakeRequests(1)[0];
  request.timeout_us = 1000;
  auto pending = server.SubmitAsync(request);
  ASSERT_TRUE(pending.ok()) << pending.status().ToString();
  chaos.AwaitStalled();
  manual.AdvanceMicros(5000);
  chaos.ReleaseStall();

  auto result = pending.value()->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kDeadlineExceeded);

  server.Shutdown();
  const auto stats = server.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.batches, 1u);  // the batch really was scored
}

TEST_F(ServerChaosTest, InjectedBatchFailureReachesEveryWaiterTyped) {
  FaultInjectingScorer chaos;
  chaos.FailNthBatch(1, core::Status::Internal("injected scorer crash"));
  ServerOptions options = ChaosOptions(&chaos);
  options.max_batch = 4096;  // coalesce all three into batch 1
  Server server(model_, store_, options);

  const auto requests = MakeRequests(3);
  std::vector<std::shared_ptr<Server::Pending>> pendings;
  for (const auto& request : requests) {
    auto pending = server.SubmitAsync(request);
    ASSERT_TRUE(pending.ok()) << pending.status().ToString();
    pendings.push_back(std::move(pending).value());
  }
  // Submitted before Start, so all three requests join batch 1.
  ASSERT_TRUE(server.Start().ok());
  for (size_t r = 0; r < pendings.size(); ++r) {
    auto result = pendings[r]->Wait();
    ASSERT_FALSE(result.ok()) << "request " << r << " should fail";
    EXPECT_EQ(result.status().code(), core::StatusCode::kInternal);
    EXPECT_NE(result.status().message().find("injected"),
              std::string::npos);
  }

  // The fault was one-shot: the next batch scores normally.
  const auto follow_up = MakeRequests(1)[0];
  const auto serial = SerialScores(follow_up);
  auto recovered = server.Score(follow_up);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectBitIdentical(recovered.value().scores, serial, "post-fault");

  server.Shutdown();
  EXPECT_EQ(server.stats().completed, 4u);
  EXPECT_GE(chaos.batches_started(), 2);
}

TEST_F(ServerChaosTest, InjectedStoreStaleFailureKeepsItsStatusCode) {
  FaultInjectingScorer chaos;
  chaos.FailNthBatch(1, core::Status::FailedPrecondition(
                            "embedding store went stale mid-flight"));
  Server server(model_, store_, ChaosOptions(&chaos));
  ASSERT_TRUE(server.Start().ok());
  auto result = server.Score(MakeRequests(1)[0]);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(),
            core::StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().message().find("stale"), std::string::npos);
  server.Shutdown();
}

TEST_F(ServerChaosTest, WarmEwmaShedsDoomedDeadlineAtAdmissionWithHint) {
  core::ManualClock manual;
  core::ScopedClock scoped(&manual);
  FaultInjectingScorer chaos;
  chaos.StallNthBatch(1);
  Server server(model_, store_, ChaosOptions(&chaos));
  ASSERT_TRUE(server.Start().ok());

  const auto requests = MakeRequests(3);
  // Batch 1 takes 10 ms of (manual) service time: stall it, advance,
  // release. That seeds the admission EWMA at 10000 us.
  auto a = server.SubmitAsync(requests[0]);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  chaos.AwaitStalled();
  manual.AdvanceMicros(10000);
  chaos.ReleaseStall();
  ASSERT_TRUE(a.value()->Wait().ok());
  // Waiting on a request of the *next* batch guarantees batch 1's
  // EWMA fold (which happens after its waiters complete) is done.
  ASSERT_TRUE(server.Score(requests[1]).ok());

  // A 1 ms deadline cannot be met through a ~10 ms estimated wait:
  // shed at admission, with the estimate as the retry-after hint.
  ScoreRequest doomed = requests[2];
  doomed.timeout_us = 1000;
  auto shed = server.SubmitAsync(doomed);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), core::StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().message().find("cannot be met"),
            std::string::npos);
  EXPECT_NE(shed.status().message().find("retry after ~"),
            std::string::npos);
  EXPECT_EQ(server.stats().retried_after_hint, 1u);
  EXPECT_EQ(server.stats().shed, 1u);
  EXPECT_EQ(server.stats().expired, 0u);  // never queued, so never expired

  // The same pairs without a deadline are still served: degradation is
  // per-request, not a circuit breaker.
  auto no_deadline = server.Score(requests[2]);
  EXPECT_TRUE(no_deadline.ok()) << no_deadline.status().ToString();
  server.Shutdown();
}

TEST_F(ServerChaosTest, QueueFullShedCarriesEstimateOnceEwmaIsWarm) {
  core::ManualClock manual;
  core::ScopedClock scoped(&manual);
  FaultInjectingScorer chaos;
  chaos.StallNthBatch(1);
  ServerOptions options = ChaosOptions(&chaos);
  options.queue_capacity = 2;
  Server server(model_, store_, options);
  ASSERT_TRUE(server.Start().ok());

  const auto requests = MakeRequests(6);
  // Warm the EWMA (batch 1 "takes" 5 ms), proven folded by waiting out
  // a batch-2 request.
  auto a = server.SubmitAsync(requests[0]);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  chaos.AwaitStalled();
  manual.AdvanceMicros(5000);
  chaos.ReleaseStall();
  ASSERT_TRUE(a.value()->Wait().ok());
  ASSERT_TRUE(server.Score(requests[1]).ok());

  // Park batch 3 and fill the queue behind it.
  chaos.StallNthBatch(3);
  auto parked = server.SubmitAsync(requests[2]);
  ASSERT_TRUE(parked.ok()) << parked.status().ToString();
  chaos.AwaitStalled();
  std::vector<std::shared_ptr<Server::Pending>> queued;
  for (int32_t i = 3; i < 5; ++i) {
    auto pending = server.SubmitAsync(requests[static_cast<size_t>(i)]);
    ASSERT_TRUE(pending.ok()) << pending.status().ToString();
    queued.push_back(std::move(pending).value());
  }
  // Queue at capacity and EWMA warm: the shed message carries a
  // computed retry-after estimate, not the cold "backoff" fallback.
  EXPECT_EQ(server.health(), Server::Health::kDegraded);
  auto shed = server.SubmitAsync(requests[5]);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), core::StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().message().find("queue at capacity"),
            std::string::npos);
  EXPECT_NE(shed.status().message().find("retry after ~"),
            std::string::npos);
  EXPECT_GE(server.stats().retried_after_hint, 1u);

  chaos.ReleaseStall();
  ASSERT_TRUE(parked.value()->Wait().ok());
  for (const auto& pending : queued) EXPECT_TRUE(pending->Wait().ok());
  server.Shutdown();
  EXPECT_EQ(server.health(), Server::Health::kDraining);
}

TEST_F(ServerChaosTest, ShutdownDuringStallDrainsEveryWaiterTyped) {
  FaultInjectingScorer chaos;
  chaos.StallNthBatch(1);
  ServerOptions options = ChaosOptions(&chaos);
  options.max_batch = 2;  // force several batches behind the stall
  Server server(model_, store_, options);
  ASSERT_TRUE(server.Start().ok());

  const auto requests = MakeRequests(6);
  std::vector<std::vector<float>> serial;
  for (const auto& request : requests) serial.push_back(SerialScores(request));
  std::vector<std::shared_ptr<Server::Pending>> pendings;
  for (const auto& request : requests) {
    auto pending = server.SubmitAsync(request);
    ASSERT_TRUE(pending.ok()) << pending.status().ToString();
    pendings.push_back(std::move(pending).value());
  }
  chaos.AwaitStalled();
  // Shutdown while a worker is parked mid-batch: it must block until
  // the stall releases, then drain every accepted request.
  std::thread closer([&server] { server.Shutdown(); });
  chaos.ReleaseStall();
  closer.join();
  for (size_t r = 0; r < pendings.size(); ++r) {
    ASSERT_TRUE(pendings[r]->done()) << "request " << r;
    auto result = pendings[r]->Wait();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectBitIdentical(result.value().scores, serial[r],
                       "request " + std::to_string(r));
  }
  EXPECT_EQ(server.stats().completed, pendings.size());
}

TEST_F(ServerChaosTest, ReleaseBeforeWorkerReachesStallIsNotLost) {
  FaultInjectingScorer chaos;
  chaos.StallNthBatch(1);
  // The release lands before any batch opens: the stall must pass
  // straight through instead of parking the worker forever.
  chaos.ReleaseStall();
  Server server(model_, store_, ChaosOptions(&chaos));
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.Score(MakeRequests(1)[0]).ok());
  server.Shutdown();
}

TEST_F(ServerChaosTest, FireAndForgetHandlesDroppedMidFlightDoNotHang) {
  FaultInjectingScorer chaos;
  chaos.StallNthBatch(1);
  Server server(model_, store_, ChaosOptions(&chaos));
  ASSERT_TRUE(server.Start().ok());
  const auto requests = MakeRequests(4);
  // Submit and immediately drop every handle — including while the
  // worker is parked, so completions land on worker-owned references
  // only. asan (leaks) and tsan (races) watch this path in CI.
  {
    auto first = server.SubmitAsync(requests[0]);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
  }
  chaos.AwaitStalled();
  for (size_t r = 1; r < requests.size(); ++r) {
    auto pending = server.SubmitAsync(requests[r]);
    ASSERT_TRUE(pending.ok()) << pending.status().ToString();
  }
  chaos.ReleaseStall();
  server.Shutdown();
  EXPECT_EQ(server.stats().completed, requests.size());
}

TEST_F(ServerChaosTest, FireAndForgetAcrossShutdownCompletesEverything) {
  Server server(model_, store_, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  const auto requests = MakeRequests(8);
  for (const auto& request : requests) {
    auto pending = server.SubmitAsync(request);
    ASSERT_TRUE(pending.ok()) << pending.status().ToString();
    // handle dropped here, mid-drain
  }
  server.Shutdown();
  EXPECT_EQ(server.stats().completed, requests.size());
  EXPECT_EQ(server.stats().expired, 0u);
}

TEST_F(ServerChaosTest, ExpiredWaiterInFailedBatchGetsDeadlineExceeded) {
  core::ManualClock manual;
  core::ScopedClock scoped(&manual);
  FaultInjectingScorer chaos;
  // Stall and fail the same batch: the stall lets the test advance the
  // clock past one waiter's deadline before the injected failure
  // lands.
  chaos.StallNthBatch(1);
  chaos.FailNthBatch(1, core::Status::Internal("injected scorer crash"));
  ServerOptions options = ChaosOptions(&chaos);
  options.max_batch = 4096;  // coalesce both requests into batch 1
  Server server(model_, store_, options);

  const auto requests = MakeRequests(2);
  auto a = server.SubmitAsync(requests[0]);  // no deadline
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ScoreRequest with_deadline = requests[1];
  with_deadline.timeout_us = 1000;
  auto b = server.SubmitAsync(with_deadline);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  // Submitted before Start, so both join batch 1, which parks at open.
  ASSERT_TRUE(server.Start().ok());
  chaos.AwaitStalled();
  manual.AdvanceMicros(2000);  // B's deadline passes while parked
  chaos.ReleaseStall();

  // The live waiter gets the injected batch error, typed.
  auto a_result = a.value()->Wait();
  ASSERT_FALSE(a_result.ok());
  EXPECT_EQ(a_result.status().code(), core::StatusCode::kInternal);
  EXPECT_NE(a_result.status().message().find("injected"),
            std::string::npos);

  // The expired waiter keeps the deadline contract even though its
  // batch failed: DeadlineExceeded (what it would have observed had
  // the batch scored), not the batch error.
  auto b_result = b.value()->Wait();
  ASSERT_FALSE(b_result.ok());
  EXPECT_EQ(b_result.status().code(),
            core::StatusCode::kDeadlineExceeded);
  EXPECT_NE(b_result.status().message().find("1000"), std::string::npos);

  server.Shutdown();
  const auto stats = server.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST_F(ServerChaosTest, StatsNeverReportMoreCompletedThanAccepted) {
  // Regression: accepted_ used to be bumped *after* the admission
  // critical section, so a fast worker could complete a request before
  // its acceptance was recorded and a concurrent stats() reader saw
  // completed > accepted. A poller samples the invariant continuously
  // while requests flow; tsan additionally watches the window.
  Server server(model_, store_, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> done{false};
  std::thread poller([&server, &done] {
    while (!done.load(std::memory_order_acquire)) {
      const auto stats = server.stats();
      EXPECT_LE(stats.completed, stats.accepted);
    }
  });
  const auto requests = MakeRequests(8);
  for (int32_t round = 0; round < 8; ++round) {
    for (const auto& request : requests) {
      auto result = server.Score(request);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
    }
  }
  done.store(true, std::memory_order_release);
  poller.join();
  server.Shutdown();
  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, stats.accepted);
}

// ---------------------------------------------------------------------
// RetryPolicy unit tests (client-side resilience).

TEST(RetryPolicyTest, OnlyAdmissionTimeRefusalsAreRetryable) {
  EXPECT_TRUE(RetryPolicy::IsRetryable(
      core::Status::ResourceExhausted("shed")));
  EXPECT_TRUE(RetryPolicy::IsRetryable(
      core::Status::DeadlineExceeded("cannot be met")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(core::Status::Ok()));
  EXPECT_FALSE(RetryPolicy::IsRetryable(
      core::Status::InvalidArgument("bad pair")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(
      core::Status::FailedPrecondition("shut down")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(core::Status::Internal("crash")));
}

TEST(RetryPolicyTest, ZeroJitterBackoffGrowsExponentiallyToTheCap) {
  RetryOptions options;
  options.max_attempts = 5;
  options.initial_backoff_us = 100;
  options.multiplier = 2.0;
  options.max_backoff_us = 350;
  options.jitter = 0.0;
  RetryPolicy policy(options, /*seed=*/1);
  const auto shed = core::Status::ResourceExhausted("shed");
  EXPECT_EQ(policy.NextBackoffUs(shed, 1), 100);
  EXPECT_EQ(policy.NextBackoffUs(shed, 2), 200);
  EXPECT_EQ(policy.NextBackoffUs(shed, 3), 350);  // capped, not 400
  EXPECT_EQ(policy.NextBackoffUs(shed, 4), 350);
  // Attempt 5 of max_attempts 5: the request is out of tries.
  EXPECT_EQ(policy.NextBackoffUs(shed, 5), -1);
}

TEST(RetryPolicyTest, JitterDrawsStayInsideTheConfiguredBand) {
  RetryOptions options;
  options.max_attempts = 2;
  options.initial_backoff_us = 1000;
  options.jitter = 0.5;
  options.retry_budget = 1000;
  for (uint64_t seed = 0; seed < 32; ++seed) {
    RetryPolicy policy(options, seed);
    const int64_t backoff = policy.NextBackoffUs(
        core::Status::ResourceExhausted("shed"), 1);
    EXPECT_GE(backoff, 500) << "seed " << seed;
    EXPECT_LE(backoff, 1000) << "seed " << seed;
  }
}

TEST(RetryPolicyTest, SameSeedSameSchedule) {
  RetryOptions options;
  options.max_attempts = 4;
  options.jitter = 0.7;
  RetryPolicy left(options, 42);
  RetryPolicy right(options, 42);
  const auto shed = core::Status::ResourceExhausted("shed");
  for (int32_t attempt = 1; attempt <= 3; ++attempt) {
    EXPECT_EQ(left.NextBackoffUs(shed, attempt),
              right.NextBackoffUs(shed, attempt))
        << "attempt " << attempt;
  }
}

TEST(RetryPolicyTest, BudgetExhaustionStopsGrantingRetries) {
  RetryOptions options;
  options.max_attempts = 10;
  options.retry_budget = 2;
  RetryPolicy policy(options, 7);
  const auto shed = core::Status::ResourceExhausted("shed");
  EXPECT_GE(policy.NextBackoffUs(shed, 1), 0);
  EXPECT_GE(policy.NextBackoffUs(shed, 1), 0);
  EXPECT_EQ(policy.NextBackoffUs(shed, 1), -1);  // budget spent
  EXPECT_EQ(policy.retries_granted(), 2);
}

TEST(RetryPolicyTest, NonRetryableStatusConsumesNoBudget) {
  RetryOptions options;
  options.retry_budget = 5;
  RetryPolicy policy(options, 3);
  EXPECT_EQ(policy.NextBackoffUs(core::Status::Internal("crash"), 1), -1);
  EXPECT_EQ(policy.retries_granted(), 0);
}

TEST(RetryPolicyTest, OptionsValidateNamesEachBadKnob) {
  EXPECT_TRUE(RetryOptions{}.Validate().ok());
  RetryOptions bad_attempts;
  bad_attempts.max_attempts = 0;
  auto s = bad_attempts.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("max_attempts"), std::string::npos);
  RetryOptions bad_range;
  bad_range.initial_backoff_us = 100;
  bad_range.max_backoff_us = 50;
  EXPECT_FALSE(bad_range.Validate().ok());
  RetryOptions bad_multiplier;
  bad_multiplier.multiplier = 0.5;
  EXPECT_FALSE(bad_multiplier.Validate().ok());
  RetryOptions bad_jitter;
  bad_jitter.jitter = 1.5;
  EXPECT_FALSE(bad_jitter.Validate().ok());
  RetryOptions bad_budget;
  bad_budget.retry_budget = -1;
  EXPECT_FALSE(bad_budget.Validate().ok());
}

}  // namespace
}  // namespace hygnn::serve
