#include <gtest/gtest.h>

#include "baselines/pair_harness.h"
#include "core/rng.h"
#include "tensor/init.h"

namespace hygnn::baselines {
namespace {

TEST(ConcatPairRowsTest, GathersAndConcatenates) {
  tensor::Tensor embeddings =
      tensor::Tensor::FromVector({1, 2, 3, 4, 5, 6}, 3, 2);
  std::vector<data::LabeledPair> pairs{{0, 2, 1.0f}, {1, 1, 0.0f}};
  tensor::Tensor features = ConcatPairRows(embeddings, pairs);
  EXPECT_EQ(features.rows(), 2);
  EXPECT_EQ(features.cols(), 4);
  // Row 0: drug 0 (1,2) ++ drug 2 (5,6).
  EXPECT_EQ(features.At(0, 0), 1.0f);
  EXPECT_EQ(features.At(0, 2), 5.0f);
  // Row 1: drug 1 twice.
  EXPECT_EQ(features.At(1, 1), 4.0f);
  EXPECT_EQ(features.At(1, 3), 4.0f);
}

TEST(EmbeddingsToTensorTest, RowMajorCopy) {
  std::vector<std::vector<float>> rows{{1.0f, 2.0f}, {3.0f, 4.0f}};
  tensor::Tensor t = EmbeddingsToTensor(rows);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t.At(1, 0), 3.0f);
  EXPECT_FALSE(t.requires_grad());
}

TEST(PairHarnessTest, LearnsSeparableEmbeddingSignal) {
  // Drugs 0-3 in cluster A (embedding ~ +1), drugs 4-7 in cluster B
  // (~ -1). Pairs within a cluster interact; across clusters they don't.
  core::Rng rng(1);
  const int32_t n = 8;
  const int64_t dim = 4;
  std::vector<float> flat;
  for (int32_t d = 0; d < n; ++d) {
    for (int64_t j = 0; j < dim; ++j) {
      const float base = d < 4 ? 1.0f : -1.0f;
      flat.push_back(base + 0.1f * rng.UniformFloat());
    }
  }
  tensor::Tensor embeddings = tensor::Tensor::FromVector(flat, n, dim);

  std::vector<data::LabeledPair> train, test;
  for (int32_t a = 0; a < n; ++a) {
    for (int32_t b = a + 1; b < n; ++b) {
      const float label = ((a < 4) == (b < 4)) ? 1.0f : 0.0f;
      ((a + b) % 3 == 0 ? test : train).push_back({a, b, label});
    }
  }
  BaselineConfig config;
  config.epochs = 200;
  auto embed_fn = [embeddings](bool, core::Rng*) { return embeddings; };
  PairModelHarness harness(embed_fn, {}, dim, config, 7);
  auto result = harness.FitAndEvaluate(train, test);
  EXPECT_GT(result.roc_auc, 0.9);
}

TEST(PairHarnessTest, TrainableEmbeddingsReceiveUpdates) {
  core::Rng rng(2);
  tensor::Tensor embeddings =
      tensor::XavierUniform(4, 8, &rng, /*requires_grad=*/true);
  std::vector<float> before(embeddings.data(),
                            embeddings.data() + embeddings.size());
  BaselineConfig config;
  config.epochs = 5;
  auto embed_fn = [embeddings](bool, core::Rng*) { return embeddings; };
  PairModelHarness harness(embed_fn, {embeddings}, 8, config, 3);
  std::vector<data::LabeledPair> train{{0, 1, 1.0f}, {2, 3, 0.0f}};
  harness.Fit(train);
  int changed = 0;
  for (int64_t i = 0; i < embeddings.size(); ++i) {
    if (embeddings.data()[i] != before[static_cast<size_t>(i)]) ++changed;
  }
  EXPECT_GT(changed, 0);
}

TEST(PairHarnessTest, ScoresAreProbabilities) {
  core::Rng rng(3);
  tensor::Tensor embeddings = tensor::NormalInit(5, 4, 1.0f, &rng, false);
  BaselineConfig config;
  config.epochs = 3;
  auto embed_fn = [embeddings](bool, core::Rng*) { return embeddings; };
  PairModelHarness harness(embed_fn, {}, 4, config, 4);
  std::vector<data::LabeledPair> train{{0, 1, 1.0f}, {2, 3, 0.0f}};
  harness.Fit(train);
  std::vector<data::LabeledPair> all;
  for (int32_t a = 0; a < 5; ++a) {
    for (int32_t b = a + 1; b < 5; ++b) all.push_back({a, b, 0.0f});
  }
  for (float score : harness.Score(all)) {
    EXPECT_GE(score, 0.0f);
    EXPECT_LE(score, 1.0f);
  }
}

}  // namespace
}  // namespace hygnn::baselines
