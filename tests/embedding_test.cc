#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "embedding/sgns.h"
#include "embedding/walk_embedding.h"
#include "graph/graph.h"

namespace hygnn::embedding {
namespace {

double Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

/// Two 5-cliques joined by a single bridge edge.
graph::Graph TwoCommunities() {
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t a = 0; a < 5; ++a) {
    for (int32_t b = a + 1; b < 5; ++b) {
      edges.push_back({a, b});
      edges.push_back({a + 5, b + 5});
    }
  }
  edges.push_back({0, 5});
  return graph::Graph(10, edges);
}

TEST(SgnsTest, EmbeddingDimensions) {
  core::Rng rng(1);
  SgnsConfig config;
  config.dimension = 16;
  SgnsModel model(10, config, &rng);
  EXPECT_EQ(model.Embedding(0).size(), 16u);
  EXPECT_EQ(model.vocab_size(), 10);
}

TEST(SgnsTest, TrainingMovesCooccurringNodesTogether) {
  core::Rng rng(2);
  SgnsConfig config;
  config.dimension = 16;
  config.epochs = 10;
  SgnsModel model(4, config, &rng);
  // Corpus where 0 and 1 always co-occur, 2 and 3 always co-occur.
  std::vector<std::vector<int32_t>> walks;
  for (int i = 0; i < 200; ++i) {
    walks.push_back({0, 1, 0, 1, 0, 1});
    walks.push_back({2, 3, 2, 3, 2, 3});
  }
  model.Train(walks, &rng);
  const double same = Cosine(model.Embedding(0), model.Embedding(1));
  const double cross = Cosine(model.Embedding(0), model.Embedding(3));
  EXPECT_GT(same, cross);
}

TEST(DeepWalkTest, CommunityStructureRecovered) {
  graph::Graph g = TwoCommunities();
  core::Rng rng(3);
  WalkEmbeddingConfig config;
  config.walk.walk_length = 20;
  config.walk.num_walks_per_node = 10;
  config.sgns.dimension = 16;
  config.sgns.epochs = 5;
  auto embeddings = DeepWalkEmbeddings(g, config, &rng);
  ASSERT_EQ(embeddings.size(), 10u);
  // Average intra-community similarity must beat inter-community.
  double intra = 0.0, inter = 0.0;
  int intra_count = 0, inter_count = 0;
  for (int a = 0; a < 10; ++a) {
    for (int b = a + 1; b < 10; ++b) {
      const bool same_side = (a < 5) == (b < 5);
      const double cos = Cosine(embeddings[a], embeddings[b]);
      if (same_side) {
        intra += cos;
        ++intra_count;
      } else {
        inter += cos;
        ++inter_count;
      }
    }
  }
  EXPECT_GT(intra / intra_count, inter / inter_count);
}

TEST(Node2VecTest, ProducesFiniteEmbeddings) {
  graph::Graph g = TwoCommunities();
  core::Rng rng(4);
  WalkEmbeddingConfig config;
  config.walk.walk_length = 15;
  config.walk.num_walks_per_node = 5;
  config.walk.p = 0.5;
  config.walk.q = 2.0;
  config.sgns.dimension = 8;
  config.sgns.epochs = 2;
  auto embeddings = Node2VecEmbeddings(g, config, &rng);
  ASSERT_EQ(embeddings.size(), 10u);
  for (const auto& row : embeddings) {
    for (float v : row) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(WalkEmbeddingTest, DeterministicForSeed) {
  graph::Graph g = TwoCommunities();
  WalkEmbeddingConfig config;
  config.walk.walk_length = 10;
  config.walk.num_walks_per_node = 2;
  config.sgns.dimension = 8;
  config.sgns.epochs = 1;
  core::Rng rng_a(5), rng_b(5);
  auto a = DeepWalkEmbeddings(g, config, &rng_a);
  auto b = DeepWalkEmbeddings(g, config, &rng_b);
  for (size_t v = 0; v < a.size(); ++v) {
    for (size_t j = 0; j < a[v].size(); ++j) {
      EXPECT_EQ(a[v][j], b[v][j]);
    }
  }
}

}  // namespace
}  // namespace hygnn::embedding
