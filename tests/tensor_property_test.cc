#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "chem/smiles.h"
#include "core/rng.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace hygnn::tensor {
namespace {

/// MatMul against a double-precision reference over a shape sweep.
class MatMulPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulPropertyTest, MatchesReference) {
  const auto [n, k, m] = GetParam();
  core::Rng rng(static_cast<uint64_t>(n * 1000 + k * 100 + m));
  Tensor a = NormalInit(n, k, 1.0f, &rng, false);
  Tensor b = NormalInit(k, m, 1.0f, &rng, false);
  Tensor c = MatMul(a, b);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      double reference = 0.0;
      for (int kk = 0; kk < k; ++kk) {
        reference += static_cast<double>(a.At(i, kk)) * b.At(kk, j);
      }
      EXPECT_NEAR(c.At(i, j), reference, 1e-3 * std::max(1.0,
                                                         std::fabs(reference)))
          << "(" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulPropertyTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 3),
                      std::make_tuple(5, 1, 5), std::make_tuple(8, 8, 8),
                      std::make_tuple(17, 31, 13),
                      std::make_tuple(64, 3, 64)));

/// Segment ops against references over random segment patterns.
class SegmentPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SegmentPropertyTest, SoftmaxAndSumMatchReference) {
  core::Rng rng(GetParam());
  const int64_t n = 1 + static_cast<int64_t>(rng.UniformInt(200));
  const int64_t segments = 1 + static_cast<int64_t>(rng.UniformInt(20));
  std::vector<int32_t> segment_ids(static_cast<size_t>(n));
  for (auto& s : segment_ids) {
    s = static_cast<int32_t>(rng.UniformInt(segments));
  }
  Tensor scores = NormalInit(n, 1, 2.0f, &rng, false);

  // Reference softmax per segment (double precision).
  std::vector<double> seg_sum(static_cast<size_t>(segments), 0.0);
  std::vector<double> seg_max(static_cast<size_t>(segments), -1e300);
  for (int64_t i = 0; i < n; ++i) {
    seg_max[segment_ids[i]] =
        std::max(seg_max[segment_ids[i]],
                 static_cast<double>(scores.data()[i]));
  }
  for (int64_t i = 0; i < n; ++i) {
    seg_sum[segment_ids[i]] +=
        std::exp(scores.data()[i] - seg_max[segment_ids[i]]);
  }
  Tensor softmax = SegmentSoftmax(scores, segment_ids, segments);
  for (int64_t i = 0; i < n; ++i) {
    const double expected =
        std::exp(scores.data()[i] - seg_max[segment_ids[i]]) /
        seg_sum[segment_ids[i]];
    EXPECT_NEAR(softmax.data()[i], expected, 1e-5);
  }

  // Reference segment sum.
  const int64_t d = 1 + static_cast<int64_t>(rng.UniformInt(8));
  Tensor values = NormalInit(n, d, 1.0f, &rng, false);
  Tensor summed = SegmentSum(values, segment_ids, segments);
  for (int64_t s = 0; s < segments; ++s) {
    for (int64_t j = 0; j < d; ++j) {
      double expected = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        if (segment_ids[i] == s) expected += values.At(i, j);
      }
      EXPECT_NEAR(summed.At(s, j), expected, 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

/// Fuzz the SMILES tokenizer: arbitrary byte strings must either fail
/// cleanly with a Status or tokenize into texts that reconstruct the
/// input — never crash or mangle.
class TokenizerFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TokenizerFuzzTest, NeverCrashesAndRoundTrips) {
  core::Rng rng(GetParam());
  const char alphabet[] =
      "CNOSPcnospBrClF[]()=#-+@123456789%.Hh \t!xyZ";
  for (int trial = 0; trial < 300; ++trial) {
    std::string input;
    const size_t length = rng.UniformInt(30);
    for (size_t i = 0; i < length; ++i) {
      input += alphabet[rng.UniformInt(sizeof(alphabet) - 1)];
    }
    auto tokens_or = chem::TokenizeSmiles(input);
    if (tokens_or.ok()) {
      std::string reconstructed;
      for (const auto& t : tokens_or.value()) reconstructed += t.text;
      EXPECT_EQ(reconstructed, input);
      // Validation must also terminate without crashing.
      (void)chem::ValidateSmiles(input);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerFuzzTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace hygnn::tensor
