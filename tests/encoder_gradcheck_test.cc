#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "hygnn/encoder.h"
#include "hygnn/model.h"
#include "tensor/loss.h"
#include "tensor/ops.h"

namespace hygnn::model {
namespace {

/// Full numeric gradient check of the hypergraph edge encoder: for every
/// element of every parameter (W_q, g1, W_p, g2), compare the autograd
/// gradient of a scalar loss with central finite differences. This
/// exercises the complete attention pipeline — SpMM, IndexSelect,
/// SegmentSoftmax, MulColumnBroadcast, SegmentSum, ConcatCols,
/// LeakyReLU — end to end through both attention levels.
TEST(EncoderGradCheckTest, AllParametersMatchNumericGradients) {
  core::Rng rng(11);
  graph::Hypergraph hypergraph(4, {{0, 1}, {1, 2, 3}, {0, 3}});
  auto context = HypergraphContext::FromHypergraph(hypergraph);
  EncoderConfig config;
  config.hidden_dim = 3;
  config.output_dim = 2;
  HypergraphEdgeEncoder encoder(4, config, &rng);

  auto loss_value = [&]() {
    tensor::Tensor q = encoder.Forward(context, false, nullptr);
    return tensor::ReduceSum(tensor::Mul(q, q));
  };

  // Analytic gradients.
  tensor::Tensor loss = loss_value();
  loss.Backward();
  auto params = encoder.Parameters();
  std::vector<std::vector<float>> analytic;
  for (auto& param : params) {
    ASSERT_TRUE(param.has_grad());
    analytic.emplace_back(param.grad(), param.grad() + param.size());
  }

  // Numeric gradients, element by element.
  const float eps = 1e-3f;
  for (size_t p = 0; p < params.size(); ++p) {
    for (int64_t i = 0; i < params[p].size(); ++i) {
      const float saved = params[p].data()[i];
      params[p].data()[i] = saved + eps;
      const float f_plus = loss_value().item();
      params[p].data()[i] = saved - eps;
      const float f_minus = loss_value().item();
      params[p].data()[i] = saved;
      const float numeric = (f_plus - f_minus) / (2.0f * eps);
      const float a = analytic[p][static_cast<size_t>(i)];
      const float scale =
          std::max({std::fabs(numeric), std::fabs(a), 1.0f});
      EXPECT_NEAR(a, numeric, 3e-2f * scale)
          << "param " << p << " element " << i;
    }
  }
}

/// Same check for the full model with the MLP decoder and BCE loss —
/// the exact training objective (eq. 12).
TEST(EncoderGradCheckTest, FullModelBceGradientsMatchNumeric) {
  core::Rng rng(12);
  graph::Hypergraph hypergraph(4, {{0, 1}, {1, 2, 3}, {0, 3}});
  auto context = HypergraphContext::FromHypergraph(hypergraph);
  HyGnnConfig config;
  config.encoder.hidden_dim = 3;
  config.encoder.output_dim = 2;
  config.decoder_hidden_dim = 3;
  HyGnnModel model(4, config, &rng);
  std::vector<data::LabeledPair> pairs{{0, 1, 1.0f}, {1, 2, 0.0f},
                                       {0, 2, 1.0f}};
  std::vector<float> labels{1.0f, 0.0f, 1.0f};

  auto loss_value = [&]() {
    tensor::Tensor logits = model.Forward(context, pairs, false, nullptr);
    return tensor::BceWithLogitsLoss(logits, labels);
  };

  tensor::Tensor loss = loss_value();
  loss.Backward();
  auto params = model.Parameters();
  std::vector<std::vector<float>> analytic;
  for (auto& param : params) {
    ASSERT_TRUE(param.has_grad());
    analytic.emplace_back(param.grad(), param.grad() + param.size());
  }

  const float eps = 1e-3f;
  for (size_t p = 0; p < params.size(); ++p) {
    for (int64_t i = 0; i < params[p].size(); ++i) {
      const float saved = params[p].data()[i];
      params[p].data()[i] = saved + eps;
      const float f_plus = loss_value().item();
      params[p].data()[i] = saved - eps;
      const float f_minus = loss_value().item();
      params[p].data()[i] = saved;
      const float numeric = (f_plus - f_minus) / (2.0f * eps);
      const float a = analytic[p][static_cast<size_t>(i)];
      const float scale =
          std::max({std::fabs(numeric), std::fabs(a), 0.5f});
      EXPECT_NEAR(a, numeric, 3e-2f * scale)
          << "param " << p << " element " << i;
    }
  }
}

}  // namespace
}  // namespace hygnn::model
