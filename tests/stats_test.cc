#include <gtest/gtest.h>

#include "graph/stats.h"

namespace hygnn::graph {
namespace {

TEST(GraphStatsTest, TriangleGraph) {
  Graph g(3, {{0, 1}, {1, 2}, {2, 0}});
  auto stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_nodes, 3);
  EXPECT_EQ(stats.num_edges, 3);
  EXPECT_DOUBLE_EQ(stats.average_degree, 2.0);
  EXPECT_EQ(stats.max_degree, 2);
  EXPECT_EQ(stats.isolated_nodes, 0);
  EXPECT_EQ(stats.connected_components, 1);
  EXPECT_DOUBLE_EQ(stats.clustering_coefficient, 1.0);
}

TEST(GraphStatsTest, PathHasNoTriangles) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  auto stats = ComputeGraphStats(g);
  EXPECT_DOUBLE_EQ(stats.clustering_coefficient, 0.0);
  EXPECT_EQ(stats.connected_components, 1);
}

TEST(GraphStatsTest, DisconnectedPieces) {
  Graph g(5, {{0, 1}, {2, 3}});
  auto stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.connected_components, 3);  // {0,1}, {2,3}, {4}
  EXPECT_EQ(stats.isolated_nodes, 1);
}

TEST(GraphStatsTest, EmptyGraph) {
  Graph g(0, {});
  auto stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_nodes, 0);
  EXPECT_EQ(stats.connected_components, 0);
  EXPECT_DOUBLE_EQ(stats.average_degree, 0.0);
}

TEST(ConnectedComponentsTest, LargestFirstAndSorted) {
  Graph g(6, {{0, 1}, {1, 2}, {3, 4}});
  auto components = ConnectedComponents(g);
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0], (std::vector<int32_t>{0, 1, 2}));
  EXPECT_EQ(components[1], (std::vector<int32_t>{3, 4}));
  EXPECT_EQ(components[2], (std::vector<int32_t>{5}));
}

TEST(HypergraphStatsTest, BasicCounts) {
  Hypergraph h(5, {{0, 1, 2}, {1, 2, 3}, {4}});
  auto stats = ComputeHypergraphStats(h);
  EXPECT_EQ(stats.num_nodes, 5);
  EXPECT_EQ(stats.num_edges, 3);
  EXPECT_EQ(stats.num_incidences, 7);
  EXPECT_NEAR(stats.average_edge_degree, 7.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.average_node_degree, 7.0 / 5.0, 1e-12);
  EXPECT_EQ(stats.max_edge_degree, 3);
  EXPECT_EQ(stats.max_node_degree, 2);
  // Nodes 0, 3 and 4 belong to exactly one hyperedge.
  EXPECT_EQ(stats.private_nodes, 3);
}

}  // namespace
}  // namespace hygnn::graph
