#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "baselines/pair_harness.h"
#include "graph/hypergraph.h"
#include "hygnn/model.h"
#include "hygnn/scorer.h"
#include "hygnn/trainer.h"
#include "metrics/metrics.h"
#include "tensor/debug.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace hygnn::model {
namespace {

HypergraphContext TinyContext() {
  graph::Hypergraph graph(5, {{0, 1, 2}, {1, 2, 3}, {4}, {0, 3, 4}});
  return HypergraphContext::FromHypergraph(graph);
}

HyGnnModel TinyModel(uint64_t seed = 3) {
  core::Rng rng(seed);
  HyGnnConfig config;
  config.encoder.hidden_dim = 8;
  config.encoder.output_dim = 6;
  config.decoder_hidden_dim = 6;
  return HyGnnModel(5, config, &rng);
}

TEST(StableSigmoidTest, MatchesNaiveFormInModerateRange) {
  for (const float z : {-8.0f, -1.5f, -0.25f, 0.0f, 0.25f, 1.5f, 8.0f}) {
    const float naive = 1.0f / (1.0f + std::exp(-z));
    EXPECT_NEAR(StableSigmoid(z), naive, 1e-7f) << "z=" << z;
  }
}

TEST(StableSigmoidTest, SaturatesWithoutOverflow) {
  EXPECT_EQ(StableSigmoid(1e4f), 1.0f);
  EXPECT_EQ(StableSigmoid(-1e4f), 0.0f);
  EXPECT_TRUE(std::isfinite(StableSigmoid(88.0f)));
  EXPECT_TRUE(std::isfinite(StableSigmoid(-88.0f)));
}

TEST(StableSigmoidTest, SigmoidAllMapsColumn) {
  tensor::Tensor logits = tensor::Tensor::Zeros(3, 1);
  logits.data()[0] = -2.0f;
  logits.data()[1] = 0.0f;
  logits.data()[2] = 2.0f;
  const auto probabilities = SigmoidAll(logits);
  ASSERT_EQ(probabilities.size(), 3u);
  EXPECT_EQ(probabilities[0], StableSigmoid(-2.0f));
  EXPECT_EQ(probabilities[1], 0.5f);
  EXPECT_EQ(probabilities[2], StableSigmoid(2.0f));
}

TEST(ContextScorerTest, MatchesPredictProbabilitiesBitwise) {
  const auto context = TinyContext();
  const auto model = TinyModel();
  const std::vector<data::LabeledPair> pairs = {
      {0, 1, 1.0f}, {1, 2, 0.0f}, {0, 3, 1.0f}, {2, 3, 0.0f}};
  const auto direct = model.PredictProbabilities(context, pairs);
  ContextScorer scorer(&model, &context);
  const auto via_interface = scorer.Score(pairs);
  ASSERT_EQ(direct.size(), via_interface.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i], via_interface[i]);
  }
  EXPECT_EQ(scorer.score_width(), 1);
}

TEST(ContextScorerTest, EvaluateScorerAgreesWithTrainerMetrics) {
  const auto context = TinyContext();
  const auto model = TinyModel();
  const std::vector<data::LabeledPair> pairs = {
      {0, 1, 1.0f}, {1, 2, 0.0f}, {0, 3, 1.0f}, {2, 3, 0.0f}, {1, 3, 1.0f}};
  ContextScorer scorer(&model, &context);
  const metrics::BinaryEval from_scorer = EvaluateScorer(scorer, pairs);
  const EvalResult from_trainer =
      EvaluateScores(scorer.Score(pairs), LabelsOf(pairs));
  EXPECT_EQ(from_scorer.f1, from_trainer.f1);
  EXPECT_EQ(from_scorer.roc_auc, from_trainer.roc_auc);
  EXPECT_EQ(from_scorer.pr_auc, from_trainer.pr_auc);
}

TEST(ContextScorerTest, BaselineHarnessScoresThroughSameInterface) {
  tensor::Tensor embeddings = baselines::EmbeddingsToTensor({
      {1.0f, 0.0f},
      {0.9f, 0.1f},
      {0.0f, 1.0f},
      {0.1f, 0.9f},
  });
  baselines::BaselineConfig config;
  config.classifier_hidden_dim = 8;
  config.epochs = 10;
  baselines::PairModelHarness harness(
      [embeddings](bool, core::Rng*) { return embeddings; }, {}, 2, config,
      /*seed=*/7);
  const std::vector<data::LabeledPair> train = {
      {0, 1, 1.0f}, {2, 3, 1.0f}, {0, 2, 0.0f}, {1, 3, 0.0f}};
  harness.Fit(train);
  const Scorer& scorer = harness;  // baselines score via the same API
  const auto scores = scorer.Score(train);
  ASSERT_EQ(scores.size(), train.size());
  for (const float s : scores) {
    EXPECT_GE(s, 0.0f);
    EXPECT_LE(s, 1.0f);
  }
  const auto eval = EvaluateScorer(scorer, train);
  EXPECT_GE(eval.roc_auc, 0.0);
  EXPECT_LE(eval.roc_auc, 1.0);
}

TEST(InferenceModeTest, ServingForwardAllocatesNoGraphNodes) {
  const auto context = TinyContext();
  const auto model = TinyModel();
  const std::vector<data::LabeledPair> pairs = {{0, 1, 1.0f}, {2, 3, 0.0f}};
  tensor::InferenceModeScope inference;
  const tensor::Tensor logits = model.Forward(context, pairs, false, nullptr);
  // Reading the value materializes the lazy tape; afterwards the
  // executor has stripped parents/records from every no-grad node.
  (void)logits.At(0, 0);
  const auto report = tensor::GraphLint(logits);
  EXPECT_TRUE(report.issues.empty());
  // The logits tensor is the whole "graph": no graph edges survive.
  EXPECT_EQ(report.nodes_visited, 1);
  EXPECT_FALSE(logits.requires_grad());
}

TEST(InferenceModeTest, ScopeNestsAndRestores) {
  tensor::Tensor a =
      tensor::Tensor::Full(2, 2, 1.0f, /*requires_grad=*/true);
  {
    tensor::InferenceModeScope outer;
    {
      tensor::InferenceModeScope inner;
      EXPECT_TRUE(tensor::InferenceModeEnabled());
    }
    EXPECT_TRUE(tensor::InferenceModeEnabled());
    const tensor::Tensor detached = tensor::Relu(a);
    EXPECT_FALSE(detached.requires_grad());
    // Materialize: execution drops the no-grad node's graph edges.
    (void)detached.At(0, 0);
    EXPECT_EQ(tensor::GraphLint(detached).nodes_visited, 1);
  }
  EXPECT_FALSE(tensor::InferenceModeEnabled());
  const tensor::Tensor tracked = tensor::Relu(a);
  EXPECT_TRUE(tracked.requires_grad());
  EXPECT_GT(tensor::GraphLint(tracked).nodes_visited, 1);
}

TEST(MetricsUnificationTest, EvaluateBinaryMatchesPiecewiseMetrics) {
  const std::vector<float> scores = {0.9f, 0.2f, 0.7f, 0.4f, 0.6f};
  const std::vector<float> labels = {1.0f, 0.0f, 1.0f, 0.0f, 0.0f};
  const auto eval = metrics::EvaluateBinary(scores, labels);
  EXPECT_EQ(eval.f1, metrics::F1Score(scores, labels));
  EXPECT_EQ(eval.roc_auc, metrics::RocAuc(scores, labels));
  EXPECT_EQ(eval.pr_auc, metrics::PrAuc(scores, labels));
}

TEST(MetricsUnificationTest, EvaluateMultiClassCountsExactly) {
  const std::vector<int32_t> predicted = {0, 1, 2, 1, 0, 2};
  const std::vector<int32_t> actual = {0, 1, 1, 1, 2, 2};
  const auto eval = metrics::EvaluateMultiClass(predicted, actual, 3);
  EXPECT_NEAR(eval.accuracy, 4.0 / 6.0, 1e-12);
  // Per-class F1: class0 tp=1 fp=1 fn=0 -> 2/3; class1 tp=2 fp=0 fn=1
  // -> 4/5; class2 tp=1 fp=1 fn=1 -> 1/2; macro = (2/3+4/5+1/2)/3.
  EXPECT_NEAR(eval.macro_f1, (2.0 / 3.0 + 0.8 + 0.5) / 3.0, 1e-12);
}

}  // namespace
}  // namespace hygnn::model
