#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/generator.h"
#include "data/pairs.h"
#include "graph/hypergraph.h"
#include "graph/random_walk.h"

namespace hygnn::graph {
namespace {

/// Random hypergraphs: structural invariants hold for any membership
/// pattern.
class HypergraphInvariantTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(HypergraphInvariantTest, InvariantsHold) {
  core::Rng rng(GetParam());
  const int32_t num_nodes = 1 + static_cast<int32_t>(rng.UniformInt(40));
  const int32_t num_edges = 1 + static_cast<int32_t>(rng.UniformInt(25));
  std::vector<std::vector<int32_t>> members(
      static_cast<size_t>(num_edges));
  for (auto& edge : members) {
    const size_t degree = rng.UniformInt(
        static_cast<uint64_t>(num_nodes) + 1);
    for (size_t i = 0; i < degree; ++i) {
      edge.push_back(static_cast<int32_t>(rng.UniformInt(num_nodes)));
    }
  }
  Hypergraph h(num_nodes, members);

  // Sum of edge degrees == sum of node degrees == incidences.
  int64_t edge_degree_sum = 0;
  for (int32_t e = 0; e < h.num_edges(); ++e) {
    edge_degree_sum += h.EdgeDegree(e);
  }
  int64_t node_degree_sum = 0;
  for (int32_t v = 0; v < h.num_nodes(); ++v) {
    node_degree_sum += h.NodeDegree(v);
  }
  EXPECT_EQ(edge_degree_sum, h.num_incidences());
  EXPECT_EQ(node_degree_sum, h.num_incidences());

  // Membership is symmetric: v in EdgeMembers(e) <=> e in
  // NodeMemberships(v).
  for (int32_t e = 0; e < h.num_edges(); ++e) {
    for (int32_t v : h.EdgeMembers(e)) {
      auto memberships = h.NodeMemberships(v);
      EXPECT_TRUE(std::find(memberships.begin(), memberships.end(), e) !=
                  memberships.end());
    }
  }

  // Dense incidence agrees with the COO pairs.
  auto dense = h.DenseIncidence();
  int64_t nnz = 0;
  for (const auto& row : dense) {
    for (uint8_t cell : row) nnz += cell;
  }
  EXPECT_EQ(nnz, h.num_incidences());

  // SharedNodes is symmetric and bounded by the smaller degree.
  for (int32_t a = 0; a < h.num_edges(); ++a) {
    for (int32_t b = 0; b < h.num_edges(); ++b) {
      const int64_t shared = h.SharedNodes(a, b);
      EXPECT_EQ(shared, h.SharedNodes(b, a));
      EXPECT_LE(shared, std::min(h.EdgeDegree(a), h.EdgeDegree(b)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HypergraphInvariantTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u,
                                           606u));

/// node2vec walks stay on edges for any (p, q) combination.
class WalkParamTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(WalkParamTest, BiasedWalksFollowEdges) {
  const auto [p, q] = GetParam();
  Graph g(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}});
  core::Rng rng(9);
  RandomWalkConfig config;
  config.walk_length = 25;
  config.num_walks_per_node = 3;
  config.p = p;
  config.q = q;
  for (const auto& walk : BiasedRandomWalks(g, config, &rng)) {
    for (size_t i = 1; i < walk.size(); ++i) {
      ASSERT_TRUE(g.HasEdge(walk[i - 1], walk[i]))
          << "p=" << p << " q=" << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PqGrid, WalkParamTest,
    ::testing::Combine(::testing::Values(0.25, 1.0, 4.0),
                       ::testing::Values(0.25, 1.0, 4.0)));

/// Cold-start splits partition the pair set for any held-out subset.
class ColdStartPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ColdStartPropertyTest, PartitionAndIsolation) {
  core::Rng rng(GetParam());
  data::DatasetConfig config;
  config.num_drugs = 30;
  config.seed = GetParam();
  auto dataset = data::GenerateDataset(config).value();
  auto pairs = data::BuildBalancedPairs(dataset, &rng);

  const size_t held_count = 1 + rng.UniformInt(5);
  std::vector<int32_t> held;
  for (size_t index : rng.SampleWithoutReplacement(30, held_count)) {
    held.push_back(static_cast<int32_t>(index));
  }
  auto split = data::ColdStartSplit(pairs, held);
  EXPECT_EQ(split.train.size() + split.test.size(), pairs.size());
  std::set<int32_t> held_set(held.begin(), held.end());
  for (const auto& pair : split.train) {
    EXPECT_FALSE(held_set.count(pair.a) || held_set.count(pair.b));
  }
  for (const auto& pair : split.test) {
    EXPECT_TRUE(held_set.count(pair.a) || held_set.count(pair.b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColdStartPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace hygnn::graph
