#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "data/pairs.h"
#include "graph/builders.h"
#include "hygnn/encoder.h"
#include "hygnn/model.h"
#include "hygnn/trainer.h"
#include "tensor/loss.h"
#include "tensor/ops.h"

namespace hygnn::model {
namespace {

graph::Hypergraph TinyHypergraph() {
  return graph::Hypergraph(5, {{0, 1, 2}, {1, 2, 3}, {4}});
}

TEST(NoAttentionTest, UniformWeightsWhenDisabled) {
  core::Rng rng(1);
  auto context = HypergraphContext::FromHypergraph(TinyHypergraph());
  EncoderConfig config;
  config.use_attention = false;
  HypergraphEdgeEncoder encoder(5, config, &rng);
  AttentionSnapshot attention;
  encoder.Forward(context, false, nullptr, &attention);
  // Edge 0 has 3 members: node-level weights must all be 1/3.
  for (size_t i = 0; i < attention.node_level.size(); ++i) {
    if (context.pair_edges[i] == 0) {
      EXPECT_NEAR(attention.node_level[i], 1.0f / 3.0f, 1e-6f);
    }
    if (context.pair_edges[i] == 2) {  // singleton edge
      EXPECT_NEAR(attention.node_level[i], 1.0f, 1e-6f);
    }
  }
  // Node 1 belongs to edges 0 and 1: hyperedge-level weights are 1/2.
  for (size_t i = 0; i < attention.hyperedge_level.size(); ++i) {
    if (context.pair_nodes[i] == 1) {
      EXPECT_NEAR(attention.hyperedge_level[i], 0.5f, 1e-6f);
    }
  }
}

TEST(NoAttentionTest, AttentionWeightsAreNotUniformWhenEnabled) {
  core::Rng rng(2);
  auto context = HypergraphContext::FromHypergraph(TinyHypergraph());
  EncoderConfig config;
  HypergraphEdgeEncoder encoder(5, config, &rng);
  AttentionSnapshot attention;
  encoder.Forward(context, false, nullptr, &attention);
  // With random weights, edge 0's three member weights should not be
  // exactly uniform.
  float max_weight = 0.0f, min_weight = 1.0f;
  for (size_t i = 0; i < attention.node_level.size(); ++i) {
    if (context.pair_edges[i] == 0) {
      max_weight = std::max(max_weight, attention.node_level[i]);
      min_weight = std::min(min_weight, attention.node_level[i]);
    }
  }
  EXPECT_GT(max_weight - min_weight, 1e-5f);
}

TEST(NoAttentionTest, TrainsEndToEnd) {
  core::Rng rng(3);
  auto context = HypergraphContext::FromHypergraph(TinyHypergraph());
  HyGnnConfig config;
  config.encoder.use_attention = false;
  config.encoder.hidden_dim = 16;
  config.encoder.output_dim = 16;
  HyGnnModel model(5, config, &rng);
  std::vector<data::LabeledPair> pairs{{0, 1, 1.0f}, {0, 2, 0.0f}};
  TrainConfig train_config;
  train_config.epochs = 50;
  HyGnnTrainer trainer(&model, train_config);
  const float loss = trainer.Fit(context, pairs);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_LT(loss, 0.7f);
}

TEST(StackedEncoderTest, SingleLayerMatchesPlainEncoder) {
  auto context = HypergraphContext::FromHypergraph(TinyHypergraph());
  EncoderConfig config;
  config.hidden_dim = 8;
  config.output_dim = 8;
  core::Rng rng_a(7), rng_b(7);
  HypergraphEdgeEncoder plain(5, config, &rng_a);
  StackedEncoder stacked(5, config, 1, &rng_b);
  tensor::Tensor qa = plain.Forward(context, false, nullptr);
  tensor::Tensor qb = stacked.Forward(context, false, nullptr);
  ASSERT_EQ(qa.size(), qb.size());
  for (int64_t i = 0; i < qa.size(); ++i) {
    EXPECT_EQ(qa.data()[i], qb.data()[i]);
  }
}

TEST(StackedEncoderTest, TwoLayerShapesAndParams) {
  core::Rng rng(8);
  auto context = HypergraphContext::FromHypergraph(TinyHypergraph());
  EncoderConfig config;
  config.hidden_dim = 12;
  config.output_dim = 10;
  StackedEncoder stacked(5, config, 2, &rng);
  EXPECT_EQ(stacked.num_layers(), 2);
  EXPECT_EQ(stacked.Parameters().size(), 8u);
  tensor::Tensor q = stacked.Forward(context, false, nullptr);
  EXPECT_EQ(q.rows(), 3);
  EXPECT_EQ(q.cols(), 10);
}

TEST(StackedEncoderTest, DeepGradientsFlowToFirstLayer) {
  core::Rng rng(9);
  auto context = HypergraphContext::FromHypergraph(TinyHypergraph());
  EncoderConfig config;
  config.hidden_dim = 8;
  config.output_dim = 8;
  StackedEncoder stacked(5, config, 3, &rng);
  tensor::Tensor q = stacked.Forward(context, true, &rng);
  tensor::Tensor loss = tensor::ReduceSum(tensor::Mul(q, q));
  loss.Backward();
  auto params = stacked.Parameters();
  // First layer's W_q is params[0]; it must receive gradient through
  // all three layers.
  ASSERT_TRUE(params[0].has_grad());
  bool any_nonzero = false;
  for (int64_t i = 0; i < params[0].size(); ++i) {
    if (params[0].grad()[i] != 0.0f) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(StackedEncoderTest, AttentionSnapshotComesFromLastLayer) {
  core::Rng rng(10);
  auto hypergraph = TinyHypergraph();
  auto context = HypergraphContext::FromHypergraph(hypergraph);
  EncoderConfig config;
  StackedEncoder stacked(5, config, 2, &rng);
  AttentionSnapshot attention;
  stacked.Forward(context, false, nullptr, &attention);
  ASSERT_EQ(attention.node_level.size(),
            static_cast<size_t>(hypergraph.num_incidences()));
  // Still valid distributions per hyperedge.
  std::map<int32_t, float> per_edge;
  for (size_t i = 0; i < attention.node_level.size(); ++i) {
    per_edge[context.pair_edges[i]] += attention.node_level[i];
  }
  for (const auto& [edge, sum] : per_edge) {
    EXPECT_NEAR(sum, 1.0f, 1e-5f) << "edge " << edge;
  }
}

TEST(MultiLayerModelTest, TwoLayerModelTrains) {
  data::DatasetConfig data_config;
  data_config.num_drugs = 50;
  data_config.seed = 31;
  auto dataset = data::GenerateDataset(data_config).value();
  data::FeaturizeConfig feat_config;
  feat_config.espf_frequency_threshold = 3;
  auto featurizer =
      data::SubstructureFeaturizer::Build(dataset.drugs(), feat_config)
          .value();
  auto hypergraph = graph::BuildDrugHypergraph(
      featurizer.drug_substructures(), featurizer.num_substructures());
  auto context = HypergraphContext::FromHypergraph(hypergraph);
  core::Rng rng(32);
  auto pairs = data::BuildBalancedPairs(dataset, &rng);
  auto split = data::RandomSplit(pairs, 0.7, &rng);

  HyGnnConfig config;
  config.num_layers = 2;
  config.encoder.hidden_dim = 16;
  config.encoder.output_dim = 16;
  core::Rng model_rng(33);
  HyGnnModel model(featurizer.num_substructures(), config, &model_rng);
  TrainConfig train_config;
  train_config.epochs = 60;
  HyGnnTrainer trainer(&model, train_config);
  trainer.Fit(context, split.train);
  auto result = trainer.Evaluate(context, split.test);
  EXPECT_GT(result.roc_auc, 0.6);
}

}  // namespace
}  // namespace hygnn::model
