#include <gtest/gtest.h>
#include <cmath>
#include <memory>

#include "core/rng.h"
#include "core/stopwatch.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "data/pairs.h"
#include "graph/builders.h"
#include "hygnn/model.h"
#include "hygnn/trainer.h"

namespace hygnn::model {
namespace {

struct SmallPipeline {
  SmallPipeline() {
    data::DatasetConfig data_config;
    data_config.num_drugs = 100;
    data_config.seed = 404;
    dataset = std::make_unique<data::DdiDataset>(
        data::GenerateDataset(data_config).value());
    data::FeaturizeConfig feat_config;
    feat_config.espf_frequency_threshold = 3;
    featurizer = std::make_unique<data::SubstructureFeaturizer>(
        data::SubstructureFeaturizer::Build(dataset->drugs(), feat_config)
            .value());
    auto hypergraph = graph::BuildDrugHypergraph(
        featurizer->drug_substructures(), featurizer->num_substructures());
    context = std::make_unique<HypergraphContext>(
        HypergraphContext::FromHypergraph(hypergraph));
    core::Rng rng(405);
    auto pairs = data::BuildBalancedPairs(*dataset, &rng);
    split = data::RandomSplit(pairs, 0.7, &rng);
  }

  HyGnnModel MakeModel(uint64_t seed) const {
    core::Rng rng(seed);
    HyGnnConfig config;
    config.encoder.hidden_dim = 16;
    config.encoder.output_dim = 16;
    return HyGnnModel(featurizer->num_substructures(), config, &rng);
  }

  std::unique_ptr<data::DdiDataset> dataset;
  std::unique_ptr<data::SubstructureFeaturizer> featurizer;
  std::unique_ptr<HypergraphContext> context;
  data::PairSplit split;
};

TEST(TrainerFeaturesTest, MiniBatchTrainingLearns) {
  SmallPipeline pipeline;
  HyGnnModel model = pipeline.MakeModel(1);
  TrainConfig config;
  config.epochs = 60;
  config.batch_size = 256;
  HyGnnTrainer trainer(&model, config);
  trainer.Fit(*pipeline.context, pipeline.split.train);
  auto result = trainer.Evaluate(*pipeline.context, pipeline.split.test);
  EXPECT_GT(result.roc_auc, 0.7);
}

TEST(TrainerFeaturesTest, MiniBatchComparableToFullBatch) {
  SmallPipeline pipeline;
  HyGnnModel full_model = pipeline.MakeModel(2);
  TrainConfig full_config;
  full_config.epochs = 60;
  HyGnnTrainer full_trainer(&full_model, full_config);
  full_trainer.Fit(*pipeline.context, pipeline.split.train);
  auto full = full_trainer.Evaluate(*pipeline.context,
                                    pipeline.split.test);

  HyGnnModel batch_model = pipeline.MakeModel(2);
  TrainConfig batch_config;
  batch_config.epochs = 60;
  batch_config.batch_size = 256;
  HyGnnTrainer batch_trainer(&batch_model, batch_config);
  batch_trainer.Fit(*pipeline.context, pipeline.split.train);
  auto batched = batch_trainer.Evaluate(*pipeline.context,
                                        pipeline.split.test);
  EXPECT_GT(batched.roc_auc, full.roc_auc - 0.1);
}

TEST(TrainerFeaturesTest, EarlyStoppingTerminates) {
  SmallPipeline pipeline;
  HyGnnModel model = pipeline.MakeModel(3);
  TrainConfig config;
  config.epochs = 100000;  // would run forever without early stop
  config.validation_fraction = 0.2;
  config.patience = 12;
  HyGnnTrainer trainer(&model, config);
  core::Stopwatch watch;
  trainer.Fit(*pipeline.context, pipeline.split.train);
  // Generous bound: early stopping must kick in long before 100k
  // full-batch epochs would finish.
  EXPECT_LT(watch.ElapsedSeconds(), 120.0);
  auto result = trainer.Evaluate(*pipeline.context, pipeline.split.test);
  EXPECT_GT(result.roc_auc, 0.6);
}

TEST(TrainerFeaturesTest, ValidationFoldShrinksTrainingSet) {
  // With validation_fraction the trainer must still work on a tiny set.
  SmallPipeline pipeline;
  HyGnnModel model = pipeline.MakeModel(4);
  TrainConfig config;
  config.epochs = 10;
  config.validation_fraction = 0.5;
  HyGnnTrainer trainer(&model, config);
  const float loss = trainer.Fit(*pipeline.context, pipeline.split.train);
  EXPECT_TRUE(std::isfinite(loss));
}

}  // namespace
}  // namespace hygnn::model
