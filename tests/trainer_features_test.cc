#include <gtest/gtest.h>
#include <cmath>
#include <cstring>
#include <memory>

#include "core/rng.h"
#include "core/stopwatch.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "data/pairs.h"
#include "graph/builders.h"
#include "hygnn/model.h"
#include "hygnn/trainer.h"

namespace hygnn::model {
namespace {

struct SmallPipeline {
  SmallPipeline() {
    data::DatasetConfig data_config;
    data_config.num_drugs = 100;
    data_config.seed = 404;
    dataset = std::make_unique<data::DdiDataset>(
        data::GenerateDataset(data_config).value());
    data::FeaturizeConfig feat_config;
    feat_config.espf_frequency_threshold = 3;
    featurizer = std::make_unique<data::SubstructureFeaturizer>(
        data::SubstructureFeaturizer::Build(dataset->drugs(), feat_config)
            .value());
    auto hypergraph = graph::BuildDrugHypergraph(
        featurizer->drug_substructures(), featurizer->num_substructures());
    context = std::make_unique<HypergraphContext>(
        HypergraphContext::FromHypergraph(hypergraph));
    core::Rng rng(405);
    auto pairs = data::BuildBalancedPairs(*dataset, &rng);
    split = data::RandomSplit(pairs, 0.7, &rng);
  }

  HyGnnModel MakeModel(uint64_t seed) const {
    core::Rng rng(seed);
    HyGnnConfig config;
    config.encoder.hidden_dim = 16;
    config.encoder.output_dim = 16;
    return HyGnnModel(featurizer->num_substructures(), config, &rng);
  }

  std::unique_ptr<data::DdiDataset> dataset;
  std::unique_ptr<data::SubstructureFeaturizer> featurizer;
  std::unique_ptr<HypergraphContext> context;
  data::PairSplit split;
};

TEST(TrainerFeaturesTest, MiniBatchTrainingLearns) {
  SmallPipeline pipeline;
  HyGnnModel model = pipeline.MakeModel(1);
  TrainConfig config;
  config.epochs = 60;
  config.batch_size = 256;
  HyGnnTrainer trainer(&model, config);
  trainer.Fit(*pipeline.context, pipeline.split.train);
  auto result = trainer.Evaluate(*pipeline.context, pipeline.split.test);
  EXPECT_GT(result.roc_auc, 0.7);
}

TEST(TrainerFeaturesTest, MiniBatchComparableToFullBatch) {
  SmallPipeline pipeline;
  HyGnnModel full_model = pipeline.MakeModel(2);
  TrainConfig full_config;
  full_config.epochs = 60;
  HyGnnTrainer full_trainer(&full_model, full_config);
  full_trainer.Fit(*pipeline.context, pipeline.split.train);
  auto full = full_trainer.Evaluate(*pipeline.context,
                                    pipeline.split.test);

  HyGnnModel batch_model = pipeline.MakeModel(2);
  TrainConfig batch_config;
  batch_config.epochs = 60;
  batch_config.batch_size = 256;
  HyGnnTrainer batch_trainer(&batch_model, batch_config);
  batch_trainer.Fit(*pipeline.context, pipeline.split.train);
  auto batched = batch_trainer.Evaluate(*pipeline.context,
                                        pipeline.split.test);
  EXPECT_GT(batched.roc_auc, full.roc_auc - 0.1);
}

TEST(TrainerFeaturesTest, EarlyStoppingTerminates) {
  SmallPipeline pipeline;
  HyGnnModel model = pipeline.MakeModel(3);
  TrainConfig config;
  config.epochs = 100000;  // would run forever without early stop
  config.validation_fraction = 0.2;
  config.patience = 12;
  HyGnnTrainer trainer(&model, config);
  core::Stopwatch watch;
  trainer.Fit(*pipeline.context, pipeline.split.train);
  // Generous bound: early stopping must kick in long before 100k
  // full-batch epochs would finish.
  EXPECT_LT(watch.ElapsedSeconds(), 120.0);
  auto result = trainer.Evaluate(*pipeline.context, pipeline.split.test);
  EXPECT_GT(result.roc_auc, 0.6);
}

std::vector<float> FlattenWeights(const HyGnnModel& model) {
  std::vector<float> flat;
  for (const auto& p : model.Parameters()) {
    flat.insert(flat.end(), p.data(), p.data() + p.size());
  }
  return flat;
}

TEST(TrainerFeaturesTest, EarlyStopRestoresBestEpochWeights) {
  SmallPipeline pipeline;
  HyGnnModel stopped = pipeline.MakeModel(5);
  TrainConfig config;
  config.epochs = 100000;
  config.validation_fraction = 0.2;
  config.patience = 8;
  HyGnnTrainer trainer(&stopped, config);
  trainer.Fit(*pipeline.context, pipeline.split.train);
  ASSERT_TRUE(trainer.early_stopped());
  const int32_t best = trainer.best_epoch();
  ASSERT_GE(best, 0);
  EXPECT_EQ(trainer.val_losses().size(), trainer.epoch_losses().size());
  // The stop fires `patience` epochs after the last improvement.
  EXPECT_EQ(static_cast<int32_t>(trainer.epoch_losses().size()),
            best + config.patience + 1);

  // Replay: same seed, but stop exactly after the best epoch. Training
  // is deterministic, so both runs are identical through epoch `best`
  // and the replay never gets far enough to early-stop — its final
  // weights are precisely the snapshot the stopped run must restore.
  HyGnnModel replay = pipeline.MakeModel(5);
  TrainConfig replay_config = config;
  replay_config.epochs = best + 1;
  HyGnnTrainer replay_trainer(&replay, replay_config);
  replay_trainer.Fit(*pipeline.context, pipeline.split.train);
  EXPECT_FALSE(replay_trainer.early_stopped());

  const auto restored = FlattenWeights(stopped);
  const auto reference = FlattenWeights(replay);
  ASSERT_EQ(restored.size(), reference.size());
  EXPECT_EQ(std::memcmp(restored.data(), reference.data(),
                        restored.size() * sizeof(float)),
            0);
}

TEST(TrainerFeaturesTest, SingleBatchEpochLossEqualsLastBatchLoss) {
  // With one batch per epoch the example-weighted epoch mean must
  // degenerate to exactly that batch's loss.
  SmallPipeline pipeline;
  HyGnnModel model = pipeline.MakeModel(6);
  TrainConfig config;
  config.epochs = 3;
  config.batch_size =
      static_cast<int32_t>(pipeline.split.train.size());  // one batch
  HyGnnTrainer trainer(&model, config);
  trainer.Fit(*pipeline.context, pipeline.split.train);
  ASSERT_EQ(trainer.epoch_losses().size(), 3u);
  EXPECT_EQ(trainer.epoch_losses().back(), trainer.last_batch_loss());
}

TEST(TrainerFeaturesTest, EpochLossIsMeanNotLastBatch) {
  // Uneven batches: the short final batch must not dominate. The epoch
  // record is the example-weighted mean over the whole epoch, while
  // last_batch_loss() keeps the raw final-step quantity (the value the
  // old code wrongly averaged unweighted).
  SmallPipeline pipeline;
  HyGnnModel model = pipeline.MakeModel(7);
  TrainConfig config;
  config.epochs = 2;
  config.batch_size =
      static_cast<int32_t>(pipeline.split.train.size()) - 1;  // sizes n-1, 1
  HyGnnTrainer trainer(&model, config);
  trainer.Fit(*pipeline.context, pipeline.split.train);
  ASSERT_EQ(trainer.epoch_losses().size(), 2u);
  for (float loss : trainer.epoch_losses()) {
    EXPECT_TRUE(std::isfinite(loss));
  }
  EXPECT_NE(trainer.epoch_losses().back(), trainer.last_batch_loss());
}

TEST(TrainerFeaturesTest, ValidationFoldShrinksTrainingSet) {
  // With validation_fraction the trainer must still work on a tiny set.
  SmallPipeline pipeline;
  HyGnnModel model = pipeline.MakeModel(4);
  TrainConfig config;
  config.epochs = 10;
  config.validation_fraction = 0.5;
  HyGnnTrainer trainer(&model, config);
  const float loss = trainer.Fit(*pipeline.context, pipeline.split.train);
  EXPECT_TRUE(std::isfinite(loss));
}

}  // namespace
}  // namespace hygnn::model
