#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace hygnn::tensor {
namespace {

TEST(TensorTest, FactoryShapes) {
  Tensor z = Tensor::Zeros(2, 3);
  EXPECT_EQ(z.rows(), 2);
  EXPECT_EQ(z.cols(), 3);
  EXPECT_EQ(z.size(), 6);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(z.data()[i], 0.0f);

  Tensor f = Tensor::Full(2, 2, 3.5f);
  EXPECT_EQ(f.At(1, 1), 3.5f);

  Tensor s = Tensor::Scalar(2.0f);
  EXPECT_EQ(s.item(), 2.0f);
}

TEST(TensorTest, FromVectorAndAccessors) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6}, 2, 3);
  EXPECT_EQ(t.At(0, 0), 1.0f);
  EXPECT_EQ(t.At(0, 2), 3.0f);
  EXPECT_EQ(t.At(1, 0), 4.0f);
  t.Set(1, 2, 9.0f);
  EXPECT_EQ(t.At(1, 2), 9.0f);
}

TEST(TensorTest, HandleSemantics) {
  Tensor a = Tensor::Zeros(1, 1);
  Tensor b = a;  // aliases
  b.Set(0, 0, 5.0f);
  EXPECT_EQ(a.item(), 5.0f);
  Tensor c = a.Clone();  // deep copy
  c.Set(0, 0, 7.0f);
  EXPECT_EQ(a.item(), 5.0f);
}

TEST(TensorTest, DetachDropsGraphAndGrad) {
  Tensor a = Tensor::Full(1, 1, 2.0f, /*requires_grad=*/true);
  Tensor b = Scale(a, 3.0f);
  Tensor d = b.Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.item(), 6.0f);
}

TEST(OpsTest, MatMulValues) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4}, 2, 2);
  Tensor b = Tensor::FromVector({5, 6, 7, 8}, 2, 2);
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.At(0, 0), 19.0f);
  EXPECT_EQ(c.At(0, 1), 22.0f);
  EXPECT_EQ(c.At(1, 0), 43.0f);
  EXPECT_EQ(c.At(1, 1), 50.0f);
}

TEST(OpsTest, MatMulRectangular) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6}, 2, 3);
  Tensor b = Tensor::FromVector({1, 0, 0, 1, 1, 1}, 3, 2);
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_EQ(c.At(0, 0), 1.0f + 0.0f + 3.0f);
  EXPECT_EQ(c.At(1, 1), 5.0f + 6.0f);
}

TEST(OpsTest, AddSubMulScale) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4}, 2, 2);
  Tensor b = Tensor::FromVector({4, 3, 2, 1}, 2, 2);
  EXPECT_EQ(Add(a, b).At(0, 0), 5.0f);
  EXPECT_EQ(Sub(a, b).At(0, 0), -3.0f);
  EXPECT_EQ(Mul(a, b).At(1, 0), 6.0f);
  EXPECT_EQ(Scale(a, -2.0f).At(1, 1), -8.0f);
}

TEST(OpsTest, AddRowBroadcast) {
  Tensor x = Tensor::FromVector({1, 2, 3, 4}, 2, 2);
  Tensor bias = Tensor::FromVector({10, 20}, 1, 2);
  Tensor y = AddRowBroadcast(x, bias);
  EXPECT_EQ(y.At(0, 0), 11.0f);
  EXPECT_EQ(y.At(1, 1), 24.0f);
}

TEST(OpsTest, MulColumnBroadcast) {
  Tensor x = Tensor::FromVector({1, 2, 3, 4}, 2, 2);
  Tensor w = Tensor::FromVector({2, -1}, 2, 1);
  Tensor y = MulColumnBroadcast(x, w);
  EXPECT_EQ(y.At(0, 1), 4.0f);
  EXPECT_EQ(y.At(1, 0), -3.0f);
}

TEST(OpsTest, ConcatCols) {
  Tensor a = Tensor::FromVector({1, 2}, 2, 1);
  Tensor b = Tensor::FromVector({3, 4, 5, 6}, 2, 2);
  Tensor c = ConcatCols(a, b);
  EXPECT_EQ(c.cols(), 3);
  EXPECT_EQ(c.At(0, 0), 1.0f);
  EXPECT_EQ(c.At(0, 1), 3.0f);
  EXPECT_EQ(c.At(1, 2), 6.0f);
}

TEST(OpsTest, IndexSelectRows) {
  Tensor x = Tensor::FromVector({1, 2, 3, 4, 5, 6}, 3, 2);
  Tensor y = IndexSelectRows(x, {2, 0, 2});
  EXPECT_EQ(y.rows(), 3);
  EXPECT_EQ(y.At(0, 0), 5.0f);
  EXPECT_EQ(y.At(1, 1), 2.0f);
  EXPECT_EQ(y.At(2, 1), 6.0f);
}

TEST(OpsTest, SegmentSoftmaxSumsToOnePerSegment) {
  Tensor scores = Tensor::FromVector({1.0f, 2.0f, 0.5f, 3.0f, -1.0f}, 5, 1);
  std::vector<int32_t> segments{0, 0, 1, 1, 1};
  Tensor y = SegmentSoftmax(scores, segments, 2);
  EXPECT_NEAR(y.At(0, 0) + y.At(1, 0), 1.0f, 1e-6f);
  EXPECT_NEAR(y.At(2, 0) + y.At(3, 0) + y.At(4, 0), 1.0f, 1e-6f);
  // Larger score -> larger weight within a segment.
  EXPECT_GT(y.At(1, 0), y.At(0, 0));
  EXPECT_GT(y.At(3, 0), y.At(2, 0));
}

TEST(OpsTest, SegmentSoftmaxSingletonIsOne) {
  Tensor scores = Tensor::FromVector({42.0f}, 1, 1);
  Tensor y = SegmentSoftmax(scores, {0}, 1);
  EXPECT_NEAR(y.item(), 1.0f, 1e-6f);
}

TEST(OpsTest, SegmentSoftmaxNumericallyStable) {
  // Large scores must not overflow exp.
  Tensor scores = Tensor::FromVector({1000.0f, 999.0f}, 2, 1);
  Tensor y = SegmentSoftmax(scores, {0, 0}, 1);
  EXPECT_TRUE(std::isfinite(y.At(0, 0)));
  EXPECT_NEAR(y.At(0, 0) + y.At(1, 0), 1.0f, 1e-5f);
  EXPECT_GT(y.At(0, 0), y.At(1, 0));
}

TEST(OpsTest, SegmentSumGroupsRows) {
  Tensor x = Tensor::FromVector({1, 1, 2, 2, 3, 3}, 3, 2);
  Tensor y = SegmentSum(x, {1, 1, 0}, 2);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.At(0, 0), 3.0f);  // row 2 only
  EXPECT_EQ(y.At(1, 0), 3.0f);  // rows 0 and 1
  EXPECT_EQ(y.At(1, 1), 3.0f);
}

TEST(OpsTest, SegmentSumEmptySegmentIsZero) {
  Tensor x = Tensor::FromVector({5, 5}, 1, 2);
  Tensor y = SegmentSum(x, {2}, 4);
  EXPECT_EQ(y.At(0, 0), 0.0f);
  EXPECT_EQ(y.At(2, 1), 5.0f);
  EXPECT_EQ(y.At(3, 0), 0.0f);
}

TEST(OpsTest, RowwiseDot) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4}, 2, 2);
  Tensor b = Tensor::FromVector({5, 6, 7, 8}, 2, 2);
  Tensor y = RowwiseDot(a, b);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.At(0, 0), 17.0f);
  EXPECT_EQ(y.At(1, 0), 53.0f);
}

TEST(OpsTest, Reductions) {
  Tensor x = Tensor::FromVector({1, 2, 3, 4}, 2, 2);
  EXPECT_EQ(ReduceSum(x).item(), 10.0f);
  EXPECT_EQ(ReduceMean(x).item(), 2.5f);
}

TEST(OpsTest, ActivationValues) {
  Tensor x = Tensor::FromVector({-2.0f, 0.0f, 2.0f}, 3, 1);
  Tensor relu = Relu(x);
  EXPECT_EQ(relu.At(0, 0), 0.0f);
  EXPECT_EQ(relu.At(2, 0), 2.0f);

  Tensor leaky = LeakyRelu(x, 0.1f);
  EXPECT_NEAR(leaky.At(0, 0), -0.2f, 1e-6f);
  EXPECT_EQ(leaky.At(2, 0), 2.0f);

  Tensor sig = Sigmoid(x);
  EXPECT_NEAR(sig.At(1, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(sig.At(2, 0), 1.0f / (1.0f + std::exp(-2.0f)), 1e-6f);

  Tensor tanh = Tanh(x);
  EXPECT_NEAR(tanh.At(2, 0), std::tanh(2.0f), 1e-6f);

  EXPECT_NEAR(Exp(x).At(2, 0), std::exp(2.0f), 1e-4f);
  Tensor pos = Tensor::FromVector({0.5f}, 1, 1);
  EXPECT_NEAR(Log(pos).item(), std::log(0.5f), 1e-6f);
}

TEST(OpsTest, SigmoidExtremeInputsStable) {
  Tensor x = Tensor::FromVector({-100.0f, 100.0f}, 2, 1);
  Tensor y = Sigmoid(x);
  EXPECT_TRUE(std::isfinite(y.At(0, 0)));
  EXPECT_NEAR(y.At(0, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(y.At(1, 0), 1.0f, 1e-6f);
}

TEST(OpsTest, DropoutIdentityInEval) {
  core::Rng rng(3);
  Tensor x = Tensor::Full(4, 4, 1.0f);
  Tensor y = Dropout(x, 0.5f, /*training=*/false, &rng);
  for (int64_t i = 0; i < y.size(); ++i) EXPECT_EQ(y.data()[i], 1.0f);
}

TEST(OpsTest, DropoutScalesSurvivors) {
  core::Rng rng(3);
  Tensor x = Tensor::Full(100, 10, 1.0f);
  Tensor y = Dropout(x, 0.5f, /*training=*/true, &rng);
  int zeros = 0;
  for (int64_t i = 0; i < y.size(); ++i) {
    if (y.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.data()[i], 2.0f, 1e-6f);
    }
  }
  EXPECT_NEAR(zeros / 1000.0, 0.5, 0.07);
}

TEST(OpsTest, L2NormalizeRows) {
  Tensor x = Tensor::FromVector({3, 4, 0, 0}, 2, 2);
  Tensor y = L2NormalizeRows(x);
  EXPECT_NEAR(y.At(0, 0), 0.6f, 1e-6f);
  EXPECT_NEAR(y.At(0, 1), 0.8f, 1e-6f);
  // Zero row stays finite (zero).
  EXPECT_EQ(y.At(1, 0), 0.0f);
}

TEST(OpsTest, TransposeNoGrad) {
  Tensor x = Tensor::FromVector({1, 2, 3, 4, 5, 6}, 2, 3);
  Tensor t = TransposeNoGrad(x);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t.At(2, 1), 6.0f);
}

TEST(InitTest, XavierBounds) {
  core::Rng rng(1);
  Tensor w = XavierUniform(100, 50, &rng);
  const float bound = std::sqrt(6.0f / 150.0f);
  for (int64_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w.data()[i], -bound);
    EXPECT_LE(w.data()[i], bound);
  }
  EXPECT_TRUE(w.requires_grad());
}

TEST(InitTest, NormalInitStddev) {
  core::Rng rng(2);
  Tensor w = NormalInit(200, 50, 0.5f, &rng);
  double sum = 0.0, sum_sq = 0.0;
  for (int64_t i = 0; i < w.size(); ++i) {
    sum += w.data()[i];
    sum_sq += static_cast<double>(w.data()[i]) * w.data()[i];
  }
  const double n = static_cast<double>(w.size());
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(std::sqrt(sum_sq / n), 0.5, 0.02);
}

}  // namespace
}  // namespace hygnn::tensor
