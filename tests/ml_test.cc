#include <gtest/gtest.h>

#include "core/rng.h"
#include "ml/bitvector.h"
#include "ml/knn.h"
#include "ml/logistic_regression.h"

namespace hygnn::ml {
namespace {

TEST(BitVectorTest, SetGetPopcount) {
  BitVector bits(130);
  bits.SetBit(0);
  bits.SetBit(64);
  bits.SetBit(129);
  EXPECT_TRUE(bits.GetBit(0));
  EXPECT_TRUE(bits.GetBit(64));
  EXPECT_FALSE(bits.GetBit(1));
  EXPECT_EQ(bits.Popcount(), 3);
}

TEST(BitVectorTest, AndSemantics) {
  BitVector a(10), b(10);
  a.SetBit(1);
  a.SetBit(2);
  b.SetBit(2);
  b.SetBit(3);
  BitVector c = a.And(b);
  EXPECT_EQ(c.Popcount(), 1);
  EXPECT_TRUE(c.GetBit(2));
  EXPECT_EQ(a.IntersectionCount(b), 1);
  EXPECT_EQ(a.UnionCount(b), 3);
}

TEST(BitVectorTest, Jaccard) {
  BitVector a(8), b(8);
  a.SetBit(0);
  a.SetBit(1);
  b.SetBit(1);
  b.SetBit(2);
  EXPECT_DOUBLE_EQ(a.Jaccard(b), 1.0 / 3.0);
  BitVector empty1(8), empty2(8);
  EXPECT_DOUBLE_EQ(empty1.Jaccard(empty2), 0.0);
}

TEST(BitVectorTest, ToFloats) {
  BitVector bits(5);
  bits.SetBit(3);
  auto dense = bits.ToFloats();
  ASSERT_EQ(dense.size(), 5u);
  EXPECT_EQ(dense[3], 1.0f);
  EXPECT_EQ(dense[0], 0.0f);
}

TEST(BitVectorTest, BuildFunctionalRepresentations) {
  auto frs = BuildFunctionalRepresentations({{0, 2}, {1}}, 3);
  ASSERT_EQ(frs.size(), 2u);
  EXPECT_TRUE(frs[0].GetBit(0));
  EXPECT_TRUE(frs[0].GetBit(2));
  EXPECT_FALSE(frs[0].GetBit(1));
  EXPECT_TRUE(frs[1].GetBit(1));
}

TEST(LogisticRegressionTest, LearnsLinearlySeparable) {
  // Label = 1 iff feature 0 is set.
  core::Rng rng(1);
  std::vector<std::vector<float>> features;
  std::vector<float> labels;
  for (int i = 0; i < 200; ++i) {
    const bool positive = i % 2 == 0;
    std::vector<float> x(4, 0.0f);
    x[0] = positive ? 1.0f : 0.0f;
    x[1] = static_cast<float>(rng.Uniform());  // noise
    features.push_back(x);
    labels.push_back(positive ? 1.0f : 0.0f);
  }
  LogisticRegression lr;
  lr.Fit(features, labels, &rng);
  EXPECT_GT(lr.PredictProbability({1.0f, 0.5f, 0.0f, 0.0f}), 0.9f);
  EXPECT_LT(lr.PredictProbability({0.0f, 0.5f, 0.0f, 0.0f}), 0.1f);
}

TEST(LogisticRegressionTest, OutputsAreProbabilities) {
  core::Rng rng(2);
  std::vector<std::vector<float>> features{{0.0f}, {1.0f}};
  std::vector<float> labels{0.0f, 1.0f};
  LogisticRegression lr;
  lr.Fit(features, labels, &rng);
  for (float x = -5.0f; x <= 5.0f; x += 1.0f) {
    const float p = lr.PredictProbability({x});
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(KnnTest, MajorityVote) {
  // Train: three near-identical positives, three distinct negatives.
  std::vector<BitVector> features;
  std::vector<float> labels;
  for (int i = 0; i < 3; ++i) {
    BitVector bits(16);
    bits.SetBit(0);
    bits.SetBit(1);
    if (i > 0) bits.SetBit(10 + i);
    features.push_back(bits);
    labels.push_back(1.0f);
  }
  for (int i = 0; i < 3; ++i) {
    BitVector bits(16);
    bits.SetBit(8);
    bits.SetBit(9 + i > 15 ? 15 : 9);
    features.push_back(bits);
    labels.push_back(0.0f);
  }
  KnnClassifier knn(3);
  knn.Fit(features, labels);
  BitVector query(16);
  query.SetBit(0);
  query.SetBit(1);
  EXPECT_GT(knn.PredictScore(query), 0.9f);
  BitVector far_query(16);
  far_query.SetBit(8);
  EXPECT_LT(knn.PredictScore(far_query), 0.5f);
}

TEST(KnnTest, KLargerThanTrainingSetClamps) {
  std::vector<BitVector> features{BitVector(4)};
  features[0].SetBit(0);
  KnnClassifier knn(10);
  knn.Fit(features, {1.0f});
  BitVector query(4);
  query.SetBit(0);
  EXPECT_EQ(knn.PredictScore(query), 1.0f);
}

TEST(KnnTest, ScoreIsGraded) {
  // 2 positive, 1 negative neighbours at equal distance: score 2/3.
  std::vector<BitVector> features;
  std::vector<float> labels{1.0f, 1.0f, 0.0f};
  for (int i = 0; i < 3; ++i) {
    BitVector bits(8);
    bits.SetBit(i);
    features.push_back(bits);
  }
  KnnClassifier knn(3);
  knn.Fit(features, labels);
  BitVector query(8);
  query.SetBit(5);
  EXPECT_NEAR(knn.PredictScore(query), 2.0f / 3.0f, 1e-6f);
}

}  // namespace
}  // namespace hygnn::ml
