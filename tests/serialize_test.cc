#include <cstdio>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "data/pairs.h"
#include "graph/builders.h"
#include "hygnn/model.h"
#include "hygnn/trainer.h"
#include "tensor/init.h"
#include "tensor/serialize.h"

namespace hygnn::tensor {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializeTest, RoundTripPreservesValues) {
  core::Rng rng(1);
  Tensor a = NormalInit(3, 4, 1.0f, &rng, false);
  Tensor b = NormalInit(1, 7, 2.0f, &rng, false);
  const std::string path = TempPath("tensors.bin");
  ASSERT_TRUE(SaveTensors({{"a", a}, {"b", b}}, path).ok());
  auto loaded = LoadTensors(path).value();
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].first, "a");
  EXPECT_EQ(loaded[1].first, "b");
  EXPECT_EQ(loaded[0].second.rows(), 3);
  EXPECT_EQ(loaded[0].second.cols(), 4);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(loaded[0].second.data()[i], a.data()[i]);
  }
  for (int64_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(loaded[1].second.data()[i], b.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadedTensorsAreLeaves) {
  const std::string path = TempPath("leaf.bin");
  Tensor t = Tensor::Full(2, 2, 1.0f, /*requires_grad=*/true);
  ASSERT_TRUE(SaveTensors({{"t", t}}, path).ok());
  auto loaded = LoadTensors(path).value();
  EXPECT_FALSE(loaded[0].second.requires_grad());
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsCorruptFiles) {
  const std::string path = TempPath("garbage.bin");
  FILE* f = fopen(path.c_str(), "wb");
  fputs("not a tensor file at all", f);
  fclose(f);
  EXPECT_FALSE(LoadTensors(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadTensors("/nonexistent/x.bin").ok());
}

TEST(SerializeTest, RestoreParametersChecksShapes) {
  core::Rng rng(2);
  Tensor p = NormalInit(2, 3, 1.0f, &rng, true);
  std::vector<Tensor> params{p};
  std::vector<std::pair<std::string, Tensor>> wrong_count;
  EXPECT_FALSE(RestoreParameters(wrong_count, &params).ok());
  std::vector<std::pair<std::string, Tensor>> wrong_shape{
      {"x", Tensor::Zeros(3, 2)}};
  EXPECT_FALSE(RestoreParameters(wrong_shape, &params).ok());
  std::vector<std::pair<std::string, Tensor>> good{
      {"x", Tensor::Full(2, 3, 9.0f)}};
  ASSERT_TRUE(RestoreParameters(good, &params).ok());
  EXPECT_EQ(params[0].At(1, 2), 9.0f);
}

TEST(ModelCheckpointTest, SaveLoadReproducesPredictions) {
  data::DatasetConfig data_config;
  data_config.num_drugs = 60;
  data_config.seed = 77;
  auto dataset = data::GenerateDataset(data_config).value();
  data::FeaturizeConfig feat_config;
  feat_config.espf_frequency_threshold = 3;
  auto featurizer =
      data::SubstructureFeaturizer::Build(dataset.drugs(), feat_config)
          .value();
  auto hypergraph = graph::BuildDrugHypergraph(
      featurizer.drug_substructures(), featurizer.num_substructures());
  auto context = model::HypergraphContext::FromHypergraph(hypergraph);

  core::Rng rng(3);
  auto pairs = data::BuildBalancedPairs(dataset, &rng);
  auto split = data::RandomSplit(pairs, 0.7, &rng);

  model::HyGnnConfig config;
  config.encoder.hidden_dim = 16;
  config.encoder.output_dim = 16;
  core::Rng model_rng(4);
  model::HyGnnModel original(featurizer.num_substructures(), config,
                             &model_rng);
  model::TrainConfig train_config;
  train_config.epochs = 30;
  model::HyGnnTrainer trainer(&original, train_config);
  trainer.Fit(context, split.train);

  const std::string path = TempPath("model.bin");
  ASSERT_TRUE(original.SaveWeights(path).ok());

  // A fresh model with different random init must reproduce the
  // original's predictions exactly after loading.
  core::Rng other_rng(999);
  model::HyGnnModel restored(featurizer.num_substructures(), config,
                             &other_rng);
  ASSERT_TRUE(restored.LoadWeights(path).ok());
  auto original_scores =
      original.PredictProbabilities(context, split.test);
  auto restored_scores =
      restored.PredictProbabilities(context, split.test);
  ASSERT_EQ(original_scores.size(), restored_scores.size());
  for (size_t i = 0; i < original_scores.size(); ++i) {
    EXPECT_EQ(original_scores[i], restored_scores[i]);
  }
  std::remove(path.c_str());
}

TEST(ModelCheckpointTest, LoadRejectsMismatchedArchitecture) {
  data::DatasetConfig data_config;
  data_config.num_drugs = 40;
  auto dataset = data::GenerateDataset(data_config).value();
  data::FeaturizeConfig feat_config;
  feat_config.espf_frequency_threshold = 3;
  auto featurizer =
      data::SubstructureFeaturizer::Build(dataset.drugs(), feat_config)
          .value();

  core::Rng rng(5);
  model::HyGnnConfig small;
  small.encoder.hidden_dim = 8;
  small.encoder.output_dim = 8;
  model::HyGnnModel small_model(featurizer.num_substructures(), small,
                                &rng);
  const std::string path = TempPath("small.bin");
  ASSERT_TRUE(small_model.SaveWeights(path).ok());

  model::HyGnnConfig big;
  big.encoder.hidden_dim = 32;
  big.encoder.output_dim = 32;
  model::HyGnnModel big_model(featurizer.num_substructures(), big, &rng);
  EXPECT_FALSE(big_model.LoadWeights(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hygnn::tensor
