// serve::Server pipeline tests: admission control, dynamic batching
// determinism (per-request results bit-identical to serial scoring for
// every batch composition), shutdown drain, and typed errors.
//
// Raw std::thread is fine here (tests are exempt from the
// thread_pool-only lint rule) and is used deliberately so submitter
// threads do not share any machinery with the server under test.

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/clock.h"
#include "core/status.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "graph/builders.h"
#include "hygnn/model.h"
#include "serve/embedding_store.h"
#include "serve/request.h"
#include "serve/scoring.h"
#include "serve/server.h"

namespace hygnn::serve {
namespace {

/// Shared miniature corpus, same shape as ServeTest's: generate ->
/// featurize -> hypergraph, whole catalog served.
class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DatasetConfig data_config;
    data_config.num_drugs = 60;
    data_config.seed = 707;
    auto dataset = data::GenerateDataset(data_config).value();
    data::FeaturizeConfig feat_config;
    feat_config.espf_frequency_threshold = 3;
    featurizer_ = new data::SubstructureFeaturizer(
        data::SubstructureFeaturizer::Build(dataset.drugs(), feat_config)
            .value());
    auto hypergraph =
        graph::BuildDrugHypergraph(featurizer_->drug_substructures(),
                                   featurizer_->num_substructures());
    context_ = new model::HypergraphContext(
        model::HypergraphContext::FromHypergraph(hypergraph));

    core::Rng rng(11);
    model::HyGnnConfig config;
    config.encoder.hidden_dim = 16;
    config.encoder.output_dim = 12;
    config.decoder_hidden_dim = 10;
    model_ = new model::HyGnnModel(featurizer_->num_substructures(),
                                   config, &rng);
    store_ = new EmbeddingStore(model_);
    ASSERT_TRUE(store_->Rebuild(*context_).ok());
  }

  static void TearDownTestSuite() {
    delete store_;
    delete model_;
    delete context_;
    delete featurizer_;
  }

  /// Deterministic request pool: request r holds r%5+1 pairs, so a mix
  /// of sizes lands in every batch.
  static std::vector<ScoreRequest> MakeRequests(int32_t count) {
    const int32_t n = store_->num_drugs();
    std::vector<ScoreRequest> requests(static_cast<size_t>(count));
    for (int32_t r = 0; r < count; ++r) {
      const int32_t pairs = r % 5 + 1;
      for (int32_t i = 0; i < pairs; ++i) {
        const int32_t a = (r * 7 + i) % n;
        const int32_t b = (r * 3 + i * 11 + 1) % n;
        requests[static_cast<size_t>(r)].pairs.push_back({a, b, 0.0f});
      }
    }
    return requests;
  }

  /// Serial reference scores, one ScorePairs call per request.
  static std::vector<std::vector<float>> SerialScores(
      const std::vector<ScoreRequest>& requests) {
    PairScorer scorer(model_, store_);
    std::vector<std::vector<float>> scores;
    for (const auto& request : requests) {
      auto response = scorer.ScorePairs(request);
      EXPECT_TRUE(response.ok()) << response.status().ToString();
      scores.push_back(std::move(response).value().scores);
    }
    return scores;
  }

  static void ExpectBitIdentical(const std::vector<float>& got,
                                 const std::vector<float>& want,
                                 const std::string& what) {
    ASSERT_EQ(got.size(), want.size()) << what;
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          want.size() * sizeof(float)),
              0)
        << what << ": served scores differ bitwise from serial";
  }

  static data::SubstructureFeaturizer* featurizer_;
  static model::HypergraphContext* context_;
  static model::HyGnnModel* model_;
  static EmbeddingStore* store_;
};

data::SubstructureFeaturizer* ServerTest::featurizer_ = nullptr;
model::HypergraphContext* ServerTest::context_ = nullptr;
model::HyGnnModel* ServerTest::model_ = nullptr;
EmbeddingStore* ServerTest::store_ = nullptr;

TEST_F(ServerTest, OptionsValidateNamesEachBadKnob) {
  EXPECT_TRUE(ServerOptions{}.Validate().ok());
  ServerOptions bad_queue;
  bad_queue.queue_capacity = 0;
  auto s = bad_queue.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), core::StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("queue_capacity"), std::string::npos);
  ServerOptions bad_batch;
  bad_batch.max_batch = -3;
  s = bad_batch.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("-3"), std::string::npos);
  ServerOptions bad_wait;
  bad_wait.max_wait_us = -1;
  EXPECT_FALSE(bad_wait.Validate().ok());
  ServerOptions bad_workers;
  bad_workers.workers = 0;
  EXPECT_FALSE(bad_workers.Validate().ok());
  // Zero wait is a real configuration (greedy batching), not an error.
  ServerOptions zero_wait;
  zero_wait.max_wait_us = 0;
  EXPECT_TRUE(zero_wait.Validate().ok());
}

TEST_F(ServerTest, StartSurfacesInvalidOptions) {
  ServerOptions options;
  options.workers = 0;
  Server server(model_, store_, options);
  auto s = server.Start();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), core::StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, SubmitBeforeStartQueuesThenDrains) {
  const auto requests = MakeRequests(6);
  const auto serial = SerialScores(requests);
  Server server(model_, store_, ServerOptions{});
  std::vector<std::shared_ptr<Server::Pending>> pendings;
  for (const auto& request : requests) {
    auto pending = server.SubmitAsync(request);
    ASSERT_TRUE(pending.ok()) << pending.status().ToString();
    pendings.push_back(std::move(pending).value());
  }
  for (const auto& pending : pendings) EXPECT_FALSE(pending->done());
  ASSERT_TRUE(server.Start().ok());
  for (size_t r = 0; r < pendings.size(); ++r) {
    auto result = pendings[r]->Wait();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectBitIdentical(result.value().scores, serial[r],
                       "request " + std::to_string(r));
  }
  server.Shutdown();
  EXPECT_EQ(server.stats().completed, pendings.size());
}

TEST_F(ServerTest, ShedsWithTypedErrorWhenQueueSaturates) {
  ServerOptions options;
  options.queue_capacity = 4;
  Server server(model_, store_, options);
  const auto requests = MakeRequests(5);
  std::vector<std::shared_ptr<Server::Pending>> pendings;
  // Workers have not started: exactly queue_capacity requests fit.
  for (int32_t i = 0; i < 4; ++i) {
    auto pending = server.SubmitAsync(requests[static_cast<size_t>(i)]);
    ASSERT_TRUE(pending.ok()) << pending.status().ToString();
    pendings.push_back(std::move(pending).value());
  }
  auto shed = server.SubmitAsync(requests[4]);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), core::StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().message().find("queue"), std::string::npos);
  EXPECT_EQ(server.stats().shed, 1u);
  EXPECT_EQ(server.stats().accepted, 4u);

  // Draining restores admission: the same request is accepted once
  // workers free queue slots.
  ASSERT_TRUE(server.Start().ok());
  for (const auto& pending : pendings) {
    EXPECT_TRUE(pending->Wait().ok());
  }
  auto retried = server.Score(requests[4]);
  EXPECT_TRUE(retried.ok()) << retried.status().ToString();
  server.Shutdown();
}

TEST_F(ServerTest, BatchCompositionNeverChangesScoresBitwise) {
  const auto requests = MakeRequests(24);
  const auto serial = SerialScores(requests);

  // Three adversarial batching regimes: every request alone
  // (max_batch=1), everything coalesced (huge batch + long wait), and
  // a multi-worker scramble. All must reproduce serial bit-for-bit.
  std::vector<ServerOptions> regimes(3);
  regimes[0].max_batch = 1;
  regimes[0].max_wait_us = 0;
  regimes[1].max_batch = 4096;
  regimes[1].max_wait_us = 5000;
  regimes[2].max_batch = 8;
  regimes[2].max_wait_us = 100;
  regimes[2].workers = 4;

  for (size_t regime = 0; regime < regimes.size(); ++regime) {
    Server server(model_, store_, regimes[regime]);
    ASSERT_TRUE(server.Start().ok());
    std::vector<std::shared_ptr<Server::Pending>> pendings;
    for (const auto& request : requests) {
      auto pending = server.SubmitAsync(request);
      ASSERT_TRUE(pending.ok()) << pending.status().ToString();
      pendings.push_back(std::move(pending).value());
    }
    for (size_t r = 0; r < pendings.size(); ++r) {
      auto result = pendings[r]->Wait();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectBitIdentical(result.value().scores, serial[r],
                         "regime " + std::to_string(regime) + " request " +
                             std::to_string(r));
    }
    server.Shutdown();
    const auto stats = server.stats();
    EXPECT_EQ(stats.completed, requests.size());
    if (regime == 0) {
      // max_batch=1 forbids coalescing: one batch per request.
      EXPECT_EQ(stats.batches, requests.size());
    }
  }
}

TEST_F(ServerTest, ConcurrentSubmittersEachGetTheirOwnScores) {
  const int32_t kThreads = 4;
  const int32_t kPerThread = 16;
  const auto requests = MakeRequests(kThreads * kPerThread);
  const auto serial = SerialScores(requests);

  ServerOptions options;
  options.workers = 2;
  options.max_batch = 16;
  options.max_wait_us = 200;
  Server server(model_, store_, options);
  ASSERT_TRUE(server.Start().ok());

  std::vector<int32_t> mismatches(static_cast<size_t>(kThreads), 0);
  std::vector<std::thread> submitters;
  for (int32_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int32_t i = 0; i < kPerThread; ++i) {
        const size_t r = static_cast<size_t>(t * kPerThread + i);
        auto result = server.Score(requests[r]);
        if (!result.ok() ||
            result.value().scores.size() != serial[r].size() ||
            std::memcmp(result.value().scores.data(), serial[r].data(),
                        serial[r].size() * sizeof(float)) != 0) {
          ++mismatches[static_cast<size_t>(t)];
        }
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  server.Shutdown();
  for (int32_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[static_cast<size_t>(t)], 0) << "thread " << t;
  }
  EXPECT_EQ(server.stats().completed,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_F(ServerTest, ShutdownDrainsEveryAcceptedRequest) {
  ServerOptions options;
  // A long batching wait: shutdown must cut it short and still score
  // everything already admitted.
  options.max_wait_us = 5000;
  Server server(model_, store_, options);
  ASSERT_TRUE(server.Start().ok());
  const auto requests = MakeRequests(12);
  std::vector<std::shared_ptr<Server::Pending>> pendings;
  for (const auto& request : requests) {
    auto pending = server.SubmitAsync(request);
    ASSERT_TRUE(pending.ok()) << pending.status().ToString();
    pendings.push_back(std::move(pending).value());
  }
  server.Shutdown();
  for (const auto& pending : pendings) {
    ASSERT_TRUE(pending->done());
    EXPECT_TRUE(pending->Wait().ok());
  }
  EXPECT_EQ(server.stats().completed, pendings.size());
}

TEST_F(ServerTest, SubmitAfterShutdownIsRefused) {
  Server server(model_, store_, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  server.Shutdown();
  auto refused = server.SubmitAsync(MakeRequests(1)[0]);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(),
            core::StatusCode::kFailedPrecondition);
  // Idempotent: a second Shutdown is a no-op, and Start after Shutdown
  // is refused rather than resurrecting the pipeline.
  server.Shutdown();
  EXPECT_FALSE(server.Start().ok());
}

TEST_F(ServerTest, NeverStartedServerFailsOrphansInsteadOfHanging) {
  std::shared_ptr<Server::Pending> orphan;
  {
    Server server(model_, store_, ServerOptions{});
    auto pending = server.SubmitAsync(MakeRequests(1)[0]);
    ASSERT_TRUE(pending.ok());
    orphan = std::move(pending).value();
  }
  ASSERT_TRUE(orphan->done());
  auto result = orphan->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(),
            core::StatusCode::kFailedPrecondition);
}

TEST_F(ServerTest, EmptyRequestYieldsEmptyResponse) {
  Server server(model_, store_, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto result = server.Score(ScoreRequest{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().scores.empty());
  server.Shutdown();
}

TEST_F(ServerTest, OutOfCatalogPairRefusedAtAdmission) {
  Server server(model_, store_, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ScoreRequest bad;
  bad.pairs.push_back({0, store_->num_drugs(), 0.0f});
  auto refused = server.SubmitAsync(bad);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), core::StatusCode::kInvalidArgument);
  EXPECT_NE(refused.status().message().find(
                std::to_string(store_->num_drugs())),
            std::string::npos);
  EXPECT_EQ(server.stats().accepted, 0u);
  server.Shutdown();
}

TEST_F(ServerTest, StaleStoreRefusedAtAdmission) {
  EmbeddingStore stale(model_);  // never Rebuilt
  Server server(model_, &stale, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ScoreRequest request;
  request.pairs.push_back({0, 1, 0.0f});
  auto refused = server.SubmitAsync(request);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(),
            core::StatusCode::kFailedPrecondition);
  server.Shutdown();
}

TEST_F(ServerTest, ResourceExhaustedCodeIsDistinctAndNamed) {
  const auto status = core::Status::ResourceExhausted("queue full");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), core::StatusCode::kResourceExhausted);
  EXPECT_EQ(status.ToString(), "ResourceExhausted: queue full");
}

TEST_F(ServerTest, QueuedDeadlineExpiresUnderManualClockWithoutScoring) {
  core::ManualClock manual;
  core::ScopedClock scoped(&manual);
  Server server(model_, store_, ServerOptions{});
  // Queue before Start so the deadline provably passes while the
  // request waits — no chaos hook, no wall-clock sleeps.
  ScoreRequest request = MakeRequests(1)[0];
  request.timeout_us = 500;
  auto pending = server.SubmitAsync(request);
  ASSERT_TRUE(pending.ok()) << pending.status().ToString();
  manual.AdvanceMicros(501);
  ASSERT_TRUE(server.Start().ok());
  auto result = pending.value()->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kDeadlineExceeded);
  server.Shutdown();
  EXPECT_EQ(server.stats().expired, 1u);
  EXPECT_EQ(server.stats().batches, 0u);  // expired at batch close, unscored
}

TEST_F(ServerTest, ZeroTimeoutMeansNoDeadline) {
  core::ManualClock manual;
  core::ScopedClock scoped(&manual);
  Server server(model_, store_, ServerOptions{});
  ScoreRequest request = MakeRequests(1)[0];
  request.timeout_us = 0;
  auto pending = server.SubmitAsync(request);
  ASSERT_TRUE(pending.ok()) << pending.status().ToString();
  // An eternity passes while queued; without a deadline the request
  // still scores.
  manual.AdvanceMicros(int64_t{1} << 40);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(pending.value()->Wait().ok());
  server.Shutdown();
  EXPECT_EQ(server.stats().expired, 0u);
}

TEST_F(ServerTest, NegativeTimeoutRefusedAtSubmit) {
  Server server(model_, store_, ServerOptions{});
  ScoreRequest request = MakeRequests(1)[0];
  request.timeout_us = -5;
  auto refused = server.SubmitAsync(request);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), core::StatusCode::kInvalidArgument);
  EXPECT_NE(refused.status().message().find("timeout_us"),
            std::string::npos);
  EXPECT_EQ(server.stats().accepted, 0u);
}

TEST_F(ServerTest, WaitForBoundsTheWaitAndKeepsTheRequestInFlight) {
  // Never-started server: the result cannot arrive, so WaitFor must
  // give up on its own.
  Server server(model_, store_, ServerOptions{});
  auto pending = server.SubmitAsync(MakeRequests(1)[0]);
  ASSERT_TRUE(pending.ok()) << pending.status().ToString();
  // Non-positive timeout is a poll.
  auto poll = pending.value()->WaitFor(0);
  ASSERT_FALSE(poll.ok());
  EXPECT_EQ(poll.status().code(), core::StatusCode::kDeadlineExceeded);
  auto timed_out = pending.value()->WaitFor(1000);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(),
            core::StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(pending.value()->done());  // still in flight, not failed
  // Once the result exists, WaitFor returns it like Wait.
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(pending.value()->Wait().ok());
  EXPECT_TRUE(pending.value()->WaitFor(1).ok());
  server.Shutdown();
}

TEST_F(ServerTest, HealthTracksQueuePressureAndShutdown) {
  ServerOptions options;
  options.queue_capacity = 4;
  Server server(model_, store_, options);
  EXPECT_EQ(server.health(), Server::Health::kServing);
  // Workers not started: queued requests pile up deterministically.
  const auto requests = MakeRequests(2);
  for (const auto& request : requests) {
    ASSERT_TRUE(server.SubmitAsync(request).ok());
  }
  // 2 of 4 slots used = half full: degraded.
  EXPECT_EQ(server.health(), Server::Health::kDegraded);
  ASSERT_TRUE(server.Start().ok());
  server.Shutdown();
  EXPECT_EQ(server.health(), Server::Health::kDraining);
}

}  // namespace
}  // namespace hygnn::serve
