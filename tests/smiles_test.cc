#include <string>

#include <gtest/gtest.h>

#include "chem/smiles.h"

namespace hygnn::chem {
namespace {

TEST(TokenizerTest, SimpleChain) {
  auto tokens = TokenizeSmiles("CCO").value();
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, SmilesTokenType::kAtom);
  EXPECT_EQ(tokens[0].text, "C");
  EXPECT_EQ(tokens[2].text, "O");
}

TEST(TokenizerTest, TwoCharElements) {
  auto tokens = TokenizeSmiles("CClBrC").value();
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].text, "Cl");
  EXPECT_EQ(tokens[2].text, "Br");
}

TEST(TokenizerTest, AromaticAtoms) {
  auto tokens = TokenizeSmiles("c1ccccc1").value();
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].text, "c");
  EXPECT_EQ(tokens[1].type, SmilesTokenType::kRingBond);
}

TEST(TokenizerTest, BracketAtomIsOneToken) {
  auto tokens = TokenizeSmiles("C[NH4+]C").value();
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].type, SmilesTokenType::kBracketAtom);
  EXPECT_EQ(tokens[1].text, "[NH4+]");
}

TEST(TokenizerTest, BondsAndBranches) {
  auto tokens = TokenizeSmiles("C(=O)O").value();
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[1].type, SmilesTokenType::kBranchOpen);
  EXPECT_EQ(tokens[2].type, SmilesTokenType::kBond);
  EXPECT_EQ(tokens[2].text, "=");
  EXPECT_EQ(tokens[5].type, SmilesTokenType::kAtom);
}

TEST(TokenizerTest, PercentRingClosure) {
  auto tokens = TokenizeSmiles("C%12CCCCC%12").value();
  EXPECT_EQ(tokens[1].type, SmilesTokenType::kRingBond);
  EXPECT_EQ(tokens[1].text, "%12");
}

TEST(TokenizerTest, PaperExampleDb00226) {
  // The paper's running example (§III-B).
  const std::string smiles = "NC(N)=NCC1COC2(CCCCC2)O1";
  auto tokens_or = TokenizeSmiles(smiles);
  ASSERT_TRUE(tokens_or.ok()) << tokens_or.status().ToString();
  std::string reconstructed;
  for (const auto& t : tokens_or.value()) reconstructed += t.text;
  EXPECT_EQ(reconstructed, smiles);
}

TEST(TokenizerTest, RejectsInvalid) {
  EXPECT_FALSE(TokenizeSmiles("").ok());
  EXPECT_FALSE(TokenizeSmiles("CXC").ok());       // X not an element
  EXPECT_FALSE(TokenizeSmiles("C[NH4").ok());     // unterminated bracket
  EXPECT_FALSE(TokenizeSmiles("C]C").ok());       // stray close bracket
  EXPECT_FALSE(TokenizeSmiles("C C").ok());       // whitespace
  EXPECT_FALSE(TokenizeSmiles("C%1C").ok());      // bad %nn
}

TEST(ValidatorTest, AcceptsRealDrugSmiles) {
  // Aspirin, caffeine, ibuprofen.
  EXPECT_TRUE(ValidateSmiles("CC(=O)Oc1ccccc1C(=O)O").ok());
  EXPECT_TRUE(ValidateSmiles("Cn1cnc2c1c(=O)n(C)c(=O)n2C").ok());
  EXPECT_TRUE(ValidateSmiles("CC(C)Cc1ccc(cc1)C(C)C(=O)O").ok());
}

TEST(ValidatorTest, RejectsStructuralErrors) {
  EXPECT_FALSE(ValidateSmiles("C(C").ok());    // unbalanced (
  EXPECT_FALSE(ValidateSmiles("CC)").ok());    // unmatched )
  EXPECT_FALSE(ValidateSmiles("C1CC").ok());   // unclosed ring
  EXPECT_FALSE(ValidateSmiles("=CC").ok());    // leading bond
  EXPECT_FALSE(ValidateSmiles("CC=").ok());    // trailing bond
  EXPECT_FALSE(ValidateSmiles("C==C").ok());   // double bond symbol
  EXPECT_FALSE(ValidateSmiles("C()C").ok());   // empty branch
  EXPECT_FALSE(ValidateSmiles("(CC)").ok());   // branch before any atom
}

TEST(ValidatorTest, RingLabelReuseIsLegal) {
  // Label 1 closes, then reopens: two separate rings.
  EXPECT_TRUE(ValidateSmiles("C1CCCCC1C1CCCCC1").ok());
}

TEST(ValidatorTest, DisconnectedComponents) {
  EXPECT_TRUE(ValidateSmiles("CCO.CCN").ok());
}

TEST(NormalizeTest, StripsRedundantSingleBonds) {
  auto normalized = NormalizeSmiles("C-C-O").value();
  EXPECT_EQ(normalized, "CCO");
}

TEST(NormalizeTest, PreservesOtherBonds) {
  auto normalized = NormalizeSmiles("C=CC#N").value();
  EXPECT_EQ(normalized, "C=CC#N");
}

TEST(NormalizeTest, StripsWhitespacePadding) {
  auto normalized = NormalizeSmiles(" CCO\n").value();
  EXPECT_EQ(normalized, "CCO");
}

TEST(NormalizeTest, RejectsInvalidInput) {
  EXPECT_FALSE(NormalizeSmiles("C(C").ok());
}

// Parameterized sweep: every token type round-trips through the
// tokenizer (concatenating token texts reproduces the input).
class RoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RoundTripTest, TokensReconstructInput) {
  const std::string& smiles = GetParam();
  auto tokens_or = TokenizeSmiles(smiles);
  ASSERT_TRUE(tokens_or.ok()) << smiles;
  std::string reconstructed;
  for (const auto& t : tokens_or.value()) reconstructed += t.text;
  EXPECT_EQ(reconstructed, smiles);
  EXPECT_TRUE(ValidateSmiles(smiles).ok()) << smiles;
}

INSTANTIATE_TEST_SUITE_P(
    DrugLikeSmiles, RoundTripTest,
    ::testing::Values(
        "CC(=O)Oc1ccccc1C(=O)O",          // aspirin
        "Cn1cnc2c1c(=O)n(C)c(=O)n2C",     // caffeine
        "CC(C)Cc1ccc(cc1)C(C)C(=O)O",     // ibuprofen
        "NC(N)=NCC1COC2(CCCCC2)O1",       // paper's DB00226
        "C(F)(F)F",                       // trifluoromethyl
        "[N+](=O)[O-]",                   // nitro (bracket atoms)
        "c1cnc[nH]1",                     // imidazole
        "OP(=O)(O)O",                     // phosphate
        "C1CCCCC1C1CCCCC1",               // ring label reuse
        "CCO.CCN"));                      // disconnected

}  // namespace
}  // namespace hygnn::chem
