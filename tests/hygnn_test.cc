#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "data/pairs.h"
#include "graph/builders.h"
#include "hygnn/decoder.h"
#include "hygnn/encoder.h"
#include "hygnn/model.h"
#include "hygnn/trainer.h"
#include "tensor/loss.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace hygnn::model {
namespace {

/// 5 substructures, 3 drugs: e0={0,1,2}, e1={1,2,3}, e2={4}.
graph::Hypergraph TinyHypergraph() {
  return graph::Hypergraph(5, {{0, 1, 2}, {1, 2, 3}, {4}});
}

TEST(ContextTest, FromHypergraphShapes) {
  auto context = HypergraphContext::FromHypergraph(TinyHypergraph());
  EXPECT_EQ(context.num_nodes, 5);
  EXPECT_EQ(context.num_edges, 3);
  EXPECT_EQ(context.pair_nodes.size(), 7u);
  ASSERT_NE(context.edge_features, nullptr);
  EXPECT_EQ(context.edge_features->rows(), 3);
  EXPECT_EQ(context.edge_features->cols(), 5);
  EXPECT_EQ(context.edge_features->nnz(), 7);
}

TEST(EncoderTest, OutputShape) {
  core::Rng rng(1);
  auto context = HypergraphContext::FromHypergraph(TinyHypergraph());
  EncoderConfig config;
  config.hidden_dim = 8;
  config.output_dim = 6;
  HypergraphEdgeEncoder encoder(5, config, &rng);
  tensor::Tensor q = encoder.Forward(context, false, nullptr);
  EXPECT_EQ(q.rows(), 3);   // one embedding per drug
  EXPECT_EQ(q.cols(), 6);
  EXPECT_EQ(encoder.Parameters().size(), 4u);  // W_q, g1, W_p, g2
}

TEST(EncoderTest, AttentionWeightsAreSegmentDistributions) {
  core::Rng rng(2);
  auto hypergraph = TinyHypergraph();
  auto context = HypergraphContext::FromHypergraph(hypergraph);
  EncoderConfig config;
  HypergraphEdgeEncoder encoder(5, config, &rng);
  AttentionSnapshot attention;
  encoder.Forward(context, false, nullptr, &attention);
  ASSERT_EQ(attention.hyperedge_level.size(), 7u);
  ASSERT_EQ(attention.node_level.size(), 7u);

  // Hyperedge-level weights sum to 1 over each node's incident edges.
  std::map<int32_t, float> per_node;
  for (size_t i = 0; i < attention.hyperedge_level.size(); ++i) {
    per_node[context.pair_nodes[i]] += attention.hyperedge_level[i];
  }
  for (const auto& [node, sum] : per_node) {
    EXPECT_NEAR(sum, 1.0f, 1e-5f) << "node " << node;
  }
  // Node-level weights sum to 1 over each hyperedge's members.
  std::map<int32_t, float> per_edge;
  for (size_t i = 0; i < attention.node_level.size(); ++i) {
    per_edge[context.pair_edges[i]] += attention.node_level[i];
  }
  for (const auto& [edge, sum] : per_edge) {
    EXPECT_NEAR(sum, 1.0f, 1e-5f) << "edge " << edge;
  }
}

TEST(EncoderTest, GradientsReachAllParameters) {
  core::Rng rng(3);
  auto context = HypergraphContext::FromHypergraph(TinyHypergraph());
  EncoderConfig config;
  HypergraphEdgeEncoder encoder(5, config, &rng);
  tensor::Tensor q = encoder.Forward(context, true, &rng);
  tensor::Tensor loss = tensor::ReduceSum(tensor::Mul(q, q));
  loss.Backward();
  for (auto& param : encoder.Parameters()) {
    ASSERT_TRUE(param.has_grad());
    bool any_nonzero = false;
    for (int64_t i = 0; i < param.size(); ++i) {
      if (param.grad()[i] != 0.0f) any_nonzero = true;
    }
    EXPECT_TRUE(any_nonzero);
  }
}

TEST(EncoderTest, DrugsWithSharedSubstructuresMoreSimilar) {
  // e0 and e1 share 2 of 3 substructures; e2 is disjoint. Untrained
  // encoder embeddings should already reflect this structural overlap.
  core::Rng rng(4);
  auto context = HypergraphContext::FromHypergraph(TinyHypergraph());
  EncoderConfig config;
  config.hidden_dim = 32;
  config.output_dim = 32;
  HypergraphEdgeEncoder encoder(5, config, &rng);
  tensor::Tensor q = encoder.Forward(context, false, nullptr);
  auto cosine = [&q](int64_t a, int64_t b) {
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (int64_t j = 0; j < q.cols(); ++j) {
      dot += q.At(a, j) * q.At(b, j);
      na += q.At(a, j) * q.At(a, j);
      nb += q.At(b, j) * q.At(b, j);
    }
    return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-12);
  };
  EXPECT_GT(cosine(0, 1), cosine(0, 2));
}

TEST(DecoderTest, DotDecoder) {
  tensor::Tensor a = tensor::Tensor::FromVector({1, 2, 3, 4}, 2, 2);
  tensor::Tensor b = tensor::Tensor::FromVector({5, 6, 7, 8}, 2, 2);
  DotDecoder decoder;
  tensor::Tensor score = decoder.Score(a, b, false, nullptr);
  EXPECT_EQ(score.At(0, 0), 17.0f);
  EXPECT_TRUE(decoder.Parameters().empty());
}

TEST(DecoderTest, MlpDecoderShapeAndParams) {
  core::Rng rng(5);
  MlpDecoder decoder(8, 16, &rng);
  tensor::Tensor a = tensor::Tensor::Full(3, 8, 0.5f);
  tensor::Tensor b = tensor::Tensor::Full(3, 8, -0.5f);
  tensor::Tensor score = decoder.Score(a, b, false, nullptr);
  EXPECT_EQ(score.rows(), 3);
  EXPECT_EQ(score.cols(), 1);
  EXPECT_EQ(decoder.Parameters().size(), 4u);
}

TEST(DecoderTest, Factory) {
  core::Rng rng(6);
  EXPECT_TRUE(MakeDecoder(DecoderKind::kDot, 8, 8, &rng)->Parameters()
                  .empty());
  EXPECT_FALSE(MakeDecoder(DecoderKind::kMlp, 8, 8, &rng)->Parameters()
                   .empty());
}

TEST(ModelTest, ForwardShapes) {
  core::Rng rng(7);
  auto context = HypergraphContext::FromHypergraph(TinyHypergraph());
  HyGnnConfig config;
  HyGnnModel model(5, config, &rng);
  std::vector<data::LabeledPair> pairs{{0, 1, 1.0f}, {0, 2, 0.0f}};
  tensor::Tensor logits = model.Forward(context, pairs, false, nullptr);
  EXPECT_EQ(logits.rows(), 2);
  EXPECT_EQ(logits.cols(), 1);
  auto probabilities = model.PredictProbabilities(context, pairs);
  ASSERT_EQ(probabilities.size(), 2u);
  for (float p : probabilities) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(ModelTest, DotVariantHasFewerParameters) {
  core::Rng rng(8);
  HyGnnConfig mlp_config;
  mlp_config.decoder = DecoderKind::kMlp;
  HyGnnConfig dot_config;
  dot_config.decoder = DecoderKind::kDot;
  HyGnnModel mlp_model(5, mlp_config, &rng);
  HyGnnModel dot_model(5, dot_config, &rng);
  EXPECT_GT(mlp_model.Parameters().size(), dot_model.Parameters().size());
}

TEST(TrainerTest, OverfitsTinyDataset) {
  core::Rng rng(9);
  // Hypergraph with clear structure: drugs 0,1 share substructures,
  // drug 2 disjoint; labels follow the sharing pattern.
  graph::Hypergraph hypergraph(6, {{0, 1, 2}, {0, 1, 3}, {4, 5}, {4, 5}});
  auto context = HypergraphContext::FromHypergraph(hypergraph);
  HyGnnConfig config;
  config.encoder.hidden_dim = 16;
  config.encoder.output_dim = 16;
  HyGnnModel model(6, config, &rng);
  std::vector<data::LabeledPair> pairs{
      {0, 1, 1.0f}, {2, 3, 1.0f}, {0, 2, 0.0f}, {1, 3, 0.0f}};
  TrainConfig train_config;
  train_config.epochs = 300;
  train_config.learning_rate = 0.01f;
  HyGnnTrainer trainer(&model, train_config);
  const float final_loss = trainer.Fit(context, pairs);
  EXPECT_LT(final_loss, 0.1f);
  EvalResult result = trainer.Evaluate(context, pairs);
  EXPECT_GT(result.roc_auc, 0.95);
}

TEST(TrainerTest, TrainingImprovesOverUntrained) {
  core::Rng rng(10);
  data::DatasetConfig data_config;
  data_config.num_drugs = 100;
  data_config.seed = 11;
  auto dataset = data::GenerateDataset(data_config).value();
  data::FeaturizeConfig feat_config;
  feat_config.espf_frequency_threshold = 3;
  auto featurizer =
      data::SubstructureFeaturizer::Build(dataset.drugs(), feat_config)
          .value();
  auto hypergraph = graph::BuildDrugHypergraph(
      featurizer.drug_substructures(), featurizer.num_substructures());
  auto context = HypergraphContext::FromHypergraph(hypergraph);

  core::Rng pair_rng(12);
  auto pairs = data::BuildBalancedPairs(dataset, &pair_rng);
  auto split = data::RandomSplit(pairs, 0.7, &pair_rng);

  HyGnnConfig config;
  config.encoder.hidden_dim = 32;
  config.encoder.output_dim = 32;
  HyGnnModel model(featurizer.num_substructures(), config, &rng);
  TrainConfig train_config;
  train_config.epochs = 150;
  HyGnnTrainer trainer(&model, train_config);

  EvalResult untrained = trainer.Evaluate(context, split.test);
  trainer.Fit(context, split.train);
  EvalResult trained = trainer.Evaluate(context, split.test);
  EXPECT_GT(trained.roc_auc, untrained.roc_auc);
  EXPECT_GT(trained.roc_auc, 0.75);
}

TEST(EvaluateScoresTest, MatchesMetrics) {
  std::vector<float> scores{0.9f, 0.1f};
  std::vector<float> labels{1.0f, 0.0f};
  EvalResult result = EvaluateScores(scores, labels);
  EXPECT_DOUBLE_EQ(result.f1, 1.0);
  EXPECT_DOUBLE_EQ(result.roc_auc, 1.0);
  EXPECT_DOUBLE_EQ(result.pr_auc, 1.0);
}

// Property sweep over encoder dimensions and decoder kinds: forward
// pass is finite and parameters all receive gradients.
class ModelPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, DecoderKind>> {};

TEST_P(ModelPropertyTest, ForwardBackwardFinite) {
  const int dim = std::get<0>(GetParam());
  const DecoderKind decoder = std::get<1>(GetParam());
  core::Rng rng(20 + dim);
  auto context = HypergraphContext::FromHypergraph(TinyHypergraph());
  HyGnnConfig config;
  config.encoder.hidden_dim = dim;
  config.encoder.output_dim = dim;
  config.decoder = decoder;
  HyGnnModel model(5, config, &rng);
  std::vector<data::LabeledPair> pairs{{0, 1, 1.0f}, {1, 2, 0.0f},
                                       {0, 2, 0.0f}};
  tensor::Tensor logits = model.Forward(context, pairs, true, &rng);
  for (int64_t i = 0; i < logits.size(); ++i) {
    ASSERT_TRUE(std::isfinite(logits.data()[i]));
  }
  tensor::Tensor loss =
      tensor::BceWithLogitsLoss(logits, {1.0f, 0.0f, 0.0f});
  loss.Backward();
  for (auto& param : model.Parameters()) {
    ASSERT_TRUE(param.has_grad());
    for (int64_t i = 0; i < param.size(); ++i) {
      ASSERT_TRUE(std::isfinite(param.grad()[i]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelPropertyTest,
    ::testing::Combine(::testing::Values(4, 16, 64),
                       ::testing::Values(DecoderKind::kDot,
                                         DecoderKind::kMlp)));

}  // namespace
}  // namespace hygnn::model
