#include <numeric>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "chem/espf.h"
#include "chem/kmer.h"
#include "chem/vocab.h"

namespace hygnn::chem {
namespace {

TEST(KmerTest, PaperExample) {
  // §III-B: "NCCO" -> 2-mers {NC, CC, CO}, 3-mers {NCC, CCO}.
  auto two = ExtractKmers("NCCO", 2).value();
  ASSERT_EQ(two.size(), 3u);
  EXPECT_EQ(two[0], "NC");
  EXPECT_EQ(two[1], "CC");
  EXPECT_EQ(two[2], "CO");
  auto three = ExtractKmers("NCCO", 3).value();
  ASSERT_EQ(three.size(), 2u);
  EXPECT_EQ(three[0], "NCC");
  EXPECT_EQ(three[1], "CCO");
}

TEST(KmerTest, CountIsLMinusKPlusOne) {
  const std::string s = "CC(=O)Oc1ccccc1";
  for (int64_t k = 1; k <= 5; ++k) {
    auto kmers = ExtractKmers(s, k).value();
    EXPECT_EQ(kmers.size(), s.size() - k + 1);
  }
}

TEST(KmerTest, ShortStringYieldsWhole) {
  auto kmers = ExtractKmers("CO", 10).value();
  ASSERT_EQ(kmers.size(), 1u);
  EXPECT_EQ(kmers[0], "CO");
}

TEST(KmerTest, UniquePreservesOrder) {
  auto unique = ExtractUniqueKmers("CCCC", 2).value();
  ASSERT_EQ(unique.size(), 1u);
  EXPECT_EQ(unique[0], "CC");
}

TEST(KmerTest, InvalidArguments) {
  EXPECT_FALSE(ExtractKmers("CCO", 0).ok());
  EXPECT_FALSE(ExtractKmers("", 2).ok());
}

TEST(EspfTest, LearnsFrequentPairs) {
  // "CO" appears in every string; with threshold 3 the C+O merge must be
  // learned.
  std::vector<std::string> corpus{"CCO", "CCO", "NCO", "OCO"};
  EspfConfig config;
  config.frequency_threshold = 3;
  auto espf = Espf::Train(corpus, config).value();
  EXPECT_GT(espf.num_merges(), 0);
  auto units = espf.Segment("CCO").value();
  // Some merge happened: fewer units than tokens.
  EXPECT_LT(units.size(), 3u);
}

TEST(EspfTest, SegmentationReconstructsString) {
  std::vector<std::string> corpus{"CC(=O)O", "CC(=O)N", "CC(=O)OC",
                                  "CCN", "CCO"};
  EspfConfig config;
  config.frequency_threshold = 2;
  auto espf = Espf::Train(corpus, config).value();
  for (const auto& smiles : corpus) {
    auto units = espf.Segment(smiles).value();
    std::string joined;
    for (const auto& u : units) joined += u;
    EXPECT_EQ(joined, smiles);
  }
}

TEST(EspfTest, HighThresholdLearnsNothing) {
  std::vector<std::string> corpus{"CCO", "CNO"};
  EspfConfig config;
  config.frequency_threshold = 100;
  auto espf = Espf::Train(corpus, config).value();
  EXPECT_EQ(espf.num_merges(), 0);
  // Segmentation degenerates to single tokens.
  auto units = espf.Segment("CCO").value();
  EXPECT_EQ(units.size(), 3u);
}

TEST(EspfTest, LowerThresholdYieldsMoreMerges) {
  std::vector<std::string> corpus;
  for (int i = 0; i < 6; ++i) corpus.push_back("CC(=O)Oc1ccccc1");
  for (int i = 0; i < 3; ++i) corpus.push_back("NC(N)=NCC1COC2(CCCCC2)O1");
  EspfConfig strict, loose;
  strict.frequency_threshold = 6;
  loose.frequency_threshold = 2;
  auto espf_strict = Espf::Train(corpus, strict).value();
  auto espf_loose = Espf::Train(corpus, loose).value();
  EXPECT_GT(espf_loose.num_merges(), espf_strict.num_merges());
  EXPECT_GE(espf_loose.vocabulary().size(),
            espf_strict.vocabulary().size() ? 1u : 0u);
}

TEST(EspfTest, VocabularyOrderedByFrequency) {
  std::vector<std::string> corpus{"CCO", "CCO", "CCO", "CCN"};
  EspfConfig config;
  config.frequency_threshold = 2;
  auto espf = Espf::Train(corpus, config).value();
  ASSERT_FALSE(espf.vocabulary().empty());
  // The vocabulary exists and contains the most frequent unit first; all
  // units must be non-empty.
  for (const auto& unit : espf.vocabulary()) EXPECT_FALSE(unit.empty());
}

TEST(EspfTest, SegmentUnseenDrug) {
  std::vector<std::string> corpus{"CC(=O)O", "CC(=O)O", "CC(=O)O"};
  EspfConfig config;
  config.frequency_threshold = 2;
  auto espf = Espf::Train(corpus, config).value();
  // A molecule not in the corpus still segments (cold-start path).
  auto units = espf.Segment("NCC(=O)OCC").value();
  std::string joined;
  for (const auto& u : units) joined += u;
  EXPECT_EQ(joined, "NCC(=O)OCC");
}

TEST(EspfTest, ErrorPaths) {
  EXPECT_FALSE(Espf::Train({}, {}).ok());
  EspfConfig bad;
  bad.frequency_threshold = 0;
  EXPECT_FALSE(Espf::Train({"CC"}, bad).ok());
  EspfConfig ok_config;
  auto espf = Espf::Train({"CCO", "CCO"}, ok_config).value();
  EXPECT_FALSE(espf.Segment("not smiles!").ok());
}

TEST(VocabTest, AddFindRoundTrip) {
  SubstructureVocabulary vocab;
  const int32_t id1 = vocab.AddOrGet("CC");
  const int32_t id2 = vocab.AddOrGet("CO");
  EXPECT_NE(id1, id2);
  EXPECT_EQ(vocab.AddOrGet("CC"), id1);
  EXPECT_EQ(vocab.Find("CC"), id1);
  EXPECT_EQ(vocab.Find("XX"), -1);
  EXPECT_EQ(vocab.size(), 2);
  EXPECT_EQ(vocab.Text(id2), "CO");
}

TEST(VocabTest, FrequencyOrdering) {
  SubstructureVocabulary vocab;
  const int32_t a = vocab.AddOrGet("A");
  const int32_t b = vocab.AddOrGet("B");
  vocab.CountOccurrence(a, 2);
  vocab.CountOccurrence(b, 5);
  auto by_freq = vocab.IdsByFrequency();
  ASSERT_EQ(by_freq.size(), 2u);
  EXPECT_EQ(by_freq[0], b);
  EXPECT_EQ(vocab.Frequency(b), 5);
}

// Property sweep: for several (corpus size, threshold) combinations,
// segmentation always reconstructs the input and never yields empty
// units.
class EspfPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EspfPropertyTest, SegmentationInvariants) {
  const int copies = std::get<0>(GetParam());
  const int threshold = std::get<1>(GetParam());
  std::vector<std::string> base{"CC(=O)Oc1ccccc1C(=O)O",
                                "CC(C)Cc1ccc(cc1)C(C)C(=O)O",
                                "NC(N)=NCC1COC2(CCCCC2)O1",
                                "S(=O)(=O)NC1CCCCC1",
                                "c1ccncc1C(F)(F)F"};
  std::vector<std::string> corpus;
  for (int c = 0; c < copies; ++c) {
    corpus.insert(corpus.end(), base.begin(), base.end());
  }
  EspfConfig config;
  config.frequency_threshold = threshold;
  auto espf = Espf::Train(corpus, config).value();
  for (const auto& smiles : base) {
    auto units = espf.Segment(smiles).value();
    EXPECT_FALSE(units.empty());
    std::string joined;
    for (const auto& u : units) {
      EXPECT_FALSE(u.empty());
      joined += u;
    }
    EXPECT_EQ(joined, smiles);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EspfPropertyTest,
                         ::testing::Combine(::testing::Values(1, 3, 10),
                                            ::testing::Values(2, 5, 8)));

}  // namespace
}  // namespace hygnn::chem
