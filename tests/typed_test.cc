#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "graph/builders.h"
#include "hygnn/typed.h"
#include "tensor/loss.h"
#include "tensor/ops.h"
#include "tests/gradcheck.h"

namespace hygnn::model {
namespace {

TEST(SoftmaxCrossEntropyTest, UniformLogitsGiveLogK) {
  tensor::Tensor logits = tensor::Tensor::Zeros(2, 4);
  tensor::Tensor loss =
      tensor::SoftmaxCrossEntropyLoss(logits, {0, 3});
  EXPECT_NEAR(loss.item(), std::log(4.0f), 1e-5f);
}

TEST(SoftmaxCrossEntropyTest, ConfidentCorrectIsSmall) {
  tensor::Tensor logits =
      tensor::Tensor::FromVector({10, 0, 0, 0, 0, 10}, 2, 3);
  tensor::Tensor loss = tensor::SoftmaxCrossEntropyLoss(logits, {0, 2});
  EXPECT_LT(loss.item(), 1e-3f);
}

TEST(SoftmaxCrossEntropyTest, GradCheck) {
  std::vector<int32_t> labels{1, 0, 2};
  hygnn::testing::ExpectGradMatchesNumeric(
      [] {
        core::Rng rng(55);
        std::vector<float> values(9);
        for (auto& v : values) v = (rng.UniformFloat() - 0.5f) * 2.0f;
        return tensor::Tensor::FromVector(std::move(values), 3, 3, true);
      },
      [&labels](const tensor::Tensor& logits) {
        return tensor::SoftmaxCrossEntropyLoss(logits, labels);
      });
}

TEST(RowSoftmaxTest, RowsSumToOne) {
  tensor::Tensor x = tensor::Tensor::FromVector({1, 2, 3, -1, 0, 1}, 2, 3);
  tensor::Tensor y = tensor::RowSoftmax(x);
  for (int64_t i = 0; i < 2; ++i) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 3; ++j) sum += y.At(i, j);
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
  }
  EXPECT_GT(y.At(0, 2), y.At(0, 0));
}

TEST(RowSoftmaxTest, GradCheck) {
  tensor::Tensor mix = tensor::Tensor::FromVector(
      {0.3f, -0.7f, 1.1f, 0.2f, 0.9f, -0.4f}, 2, 3);
  hygnn::testing::ExpectGradMatchesNumeric(
      [] {
        core::Rng rng(56);
        std::vector<float> values(6);
        for (auto& v : values) v = (rng.UniformFloat() - 0.5f) * 2.0f;
        return tensor::Tensor::FromVector(std::move(values), 2, 3, true);
      },
      [&mix](const tensor::Tensor& x) {
        return tensor::ReduceSum(tensor::Mul(tensor::RowSoftmax(x), mix));
      });
}

TEST(EvaluateTypedTest, PerfectPrediction) {
  auto result = EvaluateTyped({0, 1, 2, 1}, {0, 1, 2, 1}, 3);
  EXPECT_DOUBLE_EQ(result.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(result.macro_f1, 1.0);
}

TEST(EvaluateTypedTest, MacroF1PenalizesMinorityErrors) {
  // Majority class 0 predicted always: accuracy 3/4 but macro-F1 low.
  auto result = EvaluateTyped({0, 0, 0, 0}, {0, 0, 0, 1}, 2);
  EXPECT_DOUBLE_EQ(result.accuracy, 0.75);
  // Class 0: P=3/4, R=1 -> F1 = 6/7. Class 1: F1 = 0. Macro = 3/7.
  EXPECT_NEAR(result.macro_f1, (6.0 / 7.0) / 2.0, 1e-9);
}

TEST(EvaluateTypedTest, UnusedClassesIgnored) {
  auto result = EvaluateTyped({0, 1}, {0, 1}, 10);
  EXPECT_DOUBLE_EQ(result.macro_f1, 1.0);
}

TEST(TypedModelTest, LearnsInteractionTypes) {
  data::DatasetConfig data_config;
  data_config.num_drugs = 100;
  data_config.seed = 606;
  auto dataset = data::GenerateDataset(data_config).value();
  data::FeaturizeConfig feat_config;
  feat_config.espf_frequency_threshold = 3;
  auto featurizer =
      data::SubstructureFeaturizer::Build(dataset.drugs(), feat_config)
          .value();
  auto hypergraph = graph::BuildDrugHypergraph(
      featurizer.drug_substructures(), featurizer.num_substructures());
  auto context = HypergraphContext::FromHypergraph(hypergraph);

  // Typed positives: every recorded DDI labeled with its latent rule.
  const int32_t num_types =
      static_cast<int32_t>(dataset.reactive_rule().size());
  std::vector<TypedPair> typed;
  for (const auto& pair : dataset.positives()) {
    const int32_t type = dataset.OracleInteractionType(pair.a, pair.b);
    if (type >= 0) typed.push_back({pair.a, pair.b, type});
  }
  ASSERT_GT(typed.size(), 100u);

  core::Rng split_rng(607);
  split_rng.Shuffle(typed);
  const size_t train_size = typed.size() * 7 / 10;
  std::vector<TypedPair> train(typed.begin(), typed.begin() + train_size);
  std::vector<TypedPair> test(typed.begin() + train_size, typed.end());

  EncoderConfig encoder_config;
  encoder_config.hidden_dim = 32;
  encoder_config.output_dim = 32;
  core::Rng model_rng(608);
  TypedHyGnnModel model(featurizer.num_substructures(), num_types,
                        encoder_config, 32, &model_rng);
  TypedTrainConfig train_config;
  train_config.epochs = 120;
  TypedTrainer trainer(&model, train_config);
  const float loss = trainer.Fit(context, train);
  EXPECT_TRUE(std::isfinite(loss));

  auto result = trainer.Evaluate(context, test);
  // Chance accuracy is ~1/num_types (~8%); the model must do far
  // better by reading the substructures.
  EXPECT_GT(result.accuracy, 3.0 / num_types);
  EXPECT_GT(result.macro_f1, 0.15);
}

TEST(TypedModelTest, RejectsSingleClass) {
  core::Rng rng(1);
  EncoderConfig config;
  EXPECT_DEATH(TypedHyGnnModel(5, 1, config, 8, &rng), "num_types");
}

}  // namespace
}  // namespace hygnn::model
