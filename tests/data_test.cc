#include <cstdio>
#include <set>
#include <string>
#include <unordered_set>

#include <gtest/gtest.h>

#include "chem/smiles.h"
#include "core/fs.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/pairs.h"

namespace hygnn::data {
namespace {

DatasetConfig SmallConfig(uint64_t seed = 42) {
  DatasetConfig config;
  config.num_drugs = 40;
  config.seed = seed;
  return config;
}

TEST(GeneratorTest, ProducesRequestedDrugCount) {
  auto dataset = GenerateDataset(SmallConfig()).value();
  EXPECT_EQ(dataset.num_drugs(), 40);
  EXPECT_FALSE(dataset.positives().empty());
}

TEST(GeneratorTest, AllSmilesValid) {
  auto dataset = GenerateDataset(SmallConfig()).value();
  for (const auto& drug : dataset.drugs()) {
    EXPECT_TRUE(chem::ValidateSmiles(drug.smiles).ok()) << drug.smiles;
  }
}

TEST(GeneratorTest, DrugBankIdsSequentialAndNamesUnique) {
  auto dataset = GenerateDataset(SmallConfig()).value();
  std::set<std::string> names;
  EXPECT_EQ(dataset.drugs()[0].drugbank_id, "DB00001");
  EXPECT_EQ(dataset.drugs()[39].drugbank_id, "DB00040");
  for (const auto& drug : dataset.drugs()) names.insert(drug.name);
  EXPECT_EQ(names.size(), 40u);
}

TEST(GeneratorTest, DeterministicForSeed) {
  auto a = GenerateDataset(SmallConfig(7)).value();
  auto b = GenerateDataset(SmallConfig(7)).value();
  ASSERT_EQ(a.num_drugs(), b.num_drugs());
  for (int32_t i = 0; i < a.num_drugs(); ++i) {
    EXPECT_EQ(a.drugs()[i].smiles, b.drugs()[i].smiles);
  }
  EXPECT_EQ(a.positives().size(), b.positives().size());
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  auto a = GenerateDataset(SmallConfig(1)).value();
  auto b = GenerateDataset(SmallConfig(2)).value();
  int differences = 0;
  for (int32_t i = 0; i < a.num_drugs(); ++i) {
    if (a.drugs()[i].smiles != b.drugs()[i].smiles) ++differences;
  }
  EXPECT_GT(differences, 10);
}

TEST(GeneratorTest, OracleIsSymmetric) {
  auto dataset = GenerateDataset(SmallConfig()).value();
  for (int32_t a = 0; a < 10; ++a) {
    for (int32_t b = a + 1; b < 10; ++b) {
      EXPECT_EQ(dataset.OracleInteracts(a, b), dataset.OracleInteracts(b, a));
    }
  }
}

TEST(GeneratorTest, PositivesMostlyMatchOracle) {
  DatasetConfig config = SmallConfig();
  config.num_drugs = 80;
  config.false_positive_rate = 0.0;
  config.positive_keep_prob = 1.0;
  auto dataset = GenerateDataset(config).value();
  for (const auto& pair : dataset.positives()) {
    EXPECT_TRUE(dataset.OracleInteracts(pair.a, pair.b));
  }
}

TEST(GeneratorTest, IsKnownPositiveAgreesWithList) {
  auto dataset = GenerateDataset(SmallConfig()).value();
  for (const auto& pair : dataset.positives()) {
    EXPECT_TRUE(dataset.IsKnownPositive(pair.a, pair.b));
    EXPECT_TRUE(dataset.IsKnownPositive(pair.b, pair.a));
  }
  // A pair absent from the list must report false.
  std::set<DrugPair> positive_set(dataset.positives().begin(),
                                  dataset.positives().end());
  for (int32_t a = 0; a < dataset.num_drugs() && a < 10; ++a) {
    for (int32_t b = a + 1; b < dataset.num_drugs(); ++b) {
      if (!positive_set.count(MakePair(a, b))) {
        EXPECT_FALSE(dataset.IsKnownPositive(a, b));
        break;
      }
    }
  }
}

TEST(GeneratorTest, RejectsBadConfig) {
  DatasetConfig config;
  config.num_drugs = 1;
  EXPECT_FALSE(GenerateDataset(config).ok());
  config = {};
  config.min_groups_per_drug = 3;
  config.max_groups_per_drug = 1;
  EXPECT_FALSE(GenerateDataset(config).ok());
}

TEST(GeneratorTest, DensityInPaperBallpark) {
  // DrugBank density is ~28%; the synthetic rule should land in a broad
  // band around it (10% - 60%).
  DatasetConfig config = SmallConfig();
  config.num_drugs = 120;
  auto dataset = GenerateDataset(config).value();
  const double density =
      static_cast<double>(dataset.positives().size()) /
      (120.0 * 119.0 / 2.0);
  EXPECT_GT(density, 0.08);
  EXPECT_LT(density, 0.45);
}

// ---------- balanced pairs & splits ----------

TEST(PairsTest, BalancedDatasetHasEqualClasses) {
  auto dataset = GenerateDataset(SmallConfig()).value();
  core::Rng rng(3);
  auto pairs = BuildBalancedPairs(dataset, &rng);
  EXPECT_EQ(pairs.size(), dataset.positives().size() * 2);
  EXPECT_NEAR(PositiveFraction(pairs), 0.5, 1e-9);
}

TEST(PairsTest, NegativesAreNotKnownPositives) {
  auto dataset = GenerateDataset(SmallConfig()).value();
  core::Rng rng(4);
  for (const auto& pair : BuildBalancedPairs(dataset, &rng)) {
    if (pair.label < 0.5f) {
      EXPECT_FALSE(dataset.IsKnownPositive(pair.a, pair.b));
    }
  }
}

TEST(PairsTest, NoDuplicatePairs) {
  auto dataset = GenerateDataset(SmallConfig()).value();
  core::Rng rng(5);
  auto pairs = BuildBalancedPairs(dataset, &rng);
  std::set<std::pair<int32_t, int32_t>> seen;
  for (const auto& pair : pairs) {
    EXPECT_TRUE(seen.insert({pair.a, pair.b}).second)
        << pair.a << "," << pair.b;
  }
}

TEST(SplitTest, FractionsRespected) {
  std::vector<LabeledPair> pairs(1000);
  for (int i = 0; i < 1000; ++i) {
    pairs[static_cast<size_t>(i)] = {i, i + 1, static_cast<float>(i % 2)};
  }
  core::Rng rng(6);
  auto split = RandomSplit(pairs, 0.7, &rng);
  EXPECT_EQ(split.train.size(), 700u);
  EXPECT_EQ(split.test.size(), 300u);
}

TEST(SplitTest, PartitionIsComplete) {
  std::vector<LabeledPair> pairs;
  for (int i = 0; i < 100; ++i) pairs.push_back({i, i + 1, 1.0f});
  core::Rng rng(7);
  auto split = RandomSplit(pairs, 0.3, &rng);
  std::set<int32_t> all;
  for (const auto& p : split.train) all.insert(p.a);
  for (const auto& p : split.test) all.insert(p.a);
  EXPECT_EQ(all.size(), 100u);
}

TEST(SplitTest, ColdStartIsolation) {
  std::vector<LabeledPair> pairs{{0, 1, 1.0f}, {1, 2, 0.0f}, {2, 3, 1.0f},
                                 {3, 4, 1.0f}, {0, 4, 0.0f}};
  auto split = ColdStartSplit(pairs, {0});
  EXPECT_EQ(split.test.size(), 2u);  // pairs touching drug 0
  EXPECT_EQ(split.train.size(), 3u);
  for (const auto& pair : split.train) {
    EXPECT_NE(pair.a, 0);
    EXPECT_NE(pair.b, 0);
  }
}

TEST(SplitTest, PositivePairsExtraction) {
  std::vector<LabeledPair> pairs{{0, 1, 1.0f}, {1, 2, 0.0f}, {2, 3, 1.0f}};
  auto positives = PositivePairs(pairs);
  ASSERT_EQ(positives.size(), 2u);
  EXPECT_EQ(positives[0].first, 0);
  EXPECT_EQ(positives[1].second, 3);
}

// ---------- featurizer ----------

TEST(FeaturizerTest, EspfBuildsSharedVocabulary) {
  auto dataset = GenerateDataset(SmallConfig()).value();
  FeaturizeConfig config;
  config.mode = SubstructureMode::kEspf;
  config.espf_frequency_threshold = 3;
  auto featurizer =
      SubstructureFeaturizer::Build(dataset.drugs(), config).value();
  EXPECT_GT(featurizer.num_substructures(), 5);
  EXPECT_EQ(featurizer.drug_substructures().size(), 40u);
  for (const auto& substructures : featurizer.drug_substructures()) {
    EXPECT_FALSE(substructures.empty());
    for (int32_t id : substructures) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, featurizer.num_substructures());
    }
  }
}

TEST(FeaturizerTest, KmerMode) {
  auto dataset = GenerateDataset(SmallConfig()).value();
  FeaturizeConfig config;
  config.mode = SubstructureMode::kKmer;
  config.kmer_k = 4;
  auto featurizer =
      SubstructureFeaturizer::Build(dataset.drugs(), config).value();
  EXPECT_GT(featurizer.num_substructures(),
            40);  // many distinct 4-mers across the corpus
}

TEST(FeaturizerTest, DrugSubstructuresAreUnique) {
  auto dataset = GenerateDataset(SmallConfig()).value();
  FeaturizeConfig config;
  config.mode = SubstructureMode::kKmer;
  config.kmer_k = 3;
  auto featurizer =
      SubstructureFeaturizer::Build(dataset.drugs(), config).value();
  for (const auto& substructures : featurizer.drug_substructures()) {
    std::unordered_set<int32_t> unique(substructures.begin(),
                                       substructures.end());
    EXPECT_EQ(unique.size(), substructures.size());
  }
}

TEST(FeaturizerTest, SegmentNewSmilesUsesExistingVocabOnly) {
  auto dataset = GenerateDataset(SmallConfig()).value();
  FeaturizeConfig config;
  auto featurizer =
      SubstructureFeaturizer::Build(dataset.drugs(), config).value();
  auto ids = featurizer.SegmentNewSmiles("CC(=O)Oc1ccccc1C(=O)O").value();
  for (int32_t id : ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, featurizer.num_substructures());
  }
}

TEST(FeaturizerTest, SameSmilesSameFeatures) {
  auto dataset = GenerateDataset(SmallConfig()).value();
  FeaturizeConfig config;
  auto featurizer =
      SubstructureFeaturizer::Build(dataset.drugs(), config).value();
  const auto& drug = dataset.drugs()[0];
  auto re_segmented = featurizer.SegmentNewSmiles(drug.smiles).value();
  EXPECT_EQ(re_segmented, featurizer.drug_substructures()[0]);
}

TEST(FeaturizerTest, CanonicalizationMakesSpellingInvariant) {
  // Two spellings of the same molecule must featurize identically when
  // canonicalization is on, and (for this pair) differently when off.
  DrugRecord a, b;
  a.index = 0;
  a.smiles = "OCC(C)N";
  b.index = 1;
  b.smiles = "NC(C)CO";
  FeaturizeConfig config;
  config.mode = SubstructureMode::kKmer;
  config.kmer_k = 3;
  config.canonicalize_smiles = true;
  auto canonical =
      SubstructureFeaturizer::Build({a, b}, config).value();
  EXPECT_EQ(canonical.drug_substructures()[0],
            canonical.drug_substructures()[1]);

  config.canonicalize_smiles = false;
  auto raw = SubstructureFeaturizer::Build({a, b}, config).value();
  EXPECT_NE(raw.drug_substructures()[0], raw.drug_substructures()[1]);
}

TEST(FeaturizerTest, CanonicalizedColdStartMatchesAnySpelling) {
  DrugRecord drug;
  drug.index = 0;
  drug.smiles = "CC(=O)OCC";
  FeaturizeConfig config;
  config.mode = SubstructureMode::kKmer;
  config.kmer_k = 3;
  config.canonicalize_smiles = true;
  auto featurizer = SubstructureFeaturizer::Build({drug}, config).value();
  // The same molecule written differently segments to the same ids.
  auto ids = featurizer.SegmentNewSmiles("CCOC(C)=O").value();
  EXPECT_EQ(ids, featurizer.drug_substructures()[0]);
}

// ---------- io round trip ----------

TEST(IoTest, DrugsCsvRoundTrip) {
  auto dataset = GenerateDataset(SmallConfig()).value();
  const std::string path = ::testing::TempDir() + "/drugs_test.csv";
  ASSERT_TRUE(WriteDrugsCsv(dataset.drugs(), path).ok());
  auto loaded = ReadDrugsCsv(path).value();
  ASSERT_EQ(loaded.size(), dataset.drugs().size());
  for (size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].drugbank_id, dataset.drugs()[i].drugbank_id);
    EXPECT_EQ(loaded[i].smiles, dataset.drugs()[i].smiles);
    EXPECT_EQ(loaded[i].name, dataset.drugs()[i].name);
  }
  std::remove(path.c_str());
}

TEST(IoTest, PairsCsvRoundTrip) {
  std::vector<LabeledPair> pairs{{0, 1, 1.0f}, {2, 3, 0.0f}};
  const std::string path = ::testing::TempDir() + "/pairs_test.csv";
  ASSERT_TRUE(WritePairsCsv(pairs, path).ok());
  auto loaded = ReadPairsCsv(path).value();
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].a, 0);
  EXPECT_EQ(loaded[0].label, 1.0f);
  EXPECT_EQ(loaded[1].b, 3);
  std::remove(path.c_str());
}

TEST(IoTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadDrugsCsv("/nonexistent/nope.csv").ok());
  EXPECT_FALSE(ReadPairsCsv("/nonexistent/nope.csv").ok());
}

/// Blesses `content` with the #crc32 trailer and writes it, so the
/// malformed-input tests exercise the parser rather than the checksum.
std::string WriteBlessedCsv(const std::string& name, std::string content) {
  AppendCsvIntegrityFooter(&content);
  const std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(
      core::WriteFileAtomic(core::PosixFs(), path, content).ok());
  return path;
}

TEST(IoTest, MalformedPairRowsNameTheLine) {
  struct Case {
    const char* rows;
    const char* expect_in_message;
  };
  // Header is line 1; the corpus puts one good row on line 2 and the
  // malformed row on line 3.
  const Case cases[] = {
      {"0,1,1\nx,2,0\n", "malformed drug_a index \"x\""},
      {"0,1,1\n2,twelve,0\n", "malformed drug_b index \"twelve\""},
      {"0,1,1\n2,3,maybe\n", "malformed label \"maybe\""},
      {"0,1,1\n2,3,inf\n", "malformed label"},
      {"0,1,1\n-4,3,1\n", "malformed drug_a index \"-4\""},
      {"0,1,1\n99999999999,3,1\n", "malformed drug_a index"},
      {"0,1,1\n2,3\n", "expected 3 fields"},
      {"0,1,1\n2,3,1,0\n", "expected 3 fields"},
  };
  for (const Case& c : cases) {
    const std::string path = WriteBlessedCsv(
        "malformed_pairs.csv", std::string("drug_a,drug_b,label\n") + c.rows);
    auto loaded = ReadPairsCsv(path);
    ASSERT_FALSE(loaded.ok()) << c.rows;
    EXPECT_EQ(loaded.status().code(), core::StatusCode::kInvalidArgument)
        << c.rows;
    EXPECT_NE(loaded.status().message().find(":3: "), std::string::npos)
        << "message should name line 3: " << loaded.status().message();
    EXPECT_NE(loaded.status().message().find(c.expect_in_message),
              std::string::npos)
        << loaded.status().message();
  }
}

TEST(IoTest, MalformedDrugRowsNameTheLine) {
  const std::string header = "index,drugbank_id,name,smiles\n";
  const std::string path = WriteBlessedCsv(
      "malformed_drugs.csv", header + "0,DB1,Alpha,CC\nseven,DB2,Beta,CO\n");
  auto loaded = ReadDrugsCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(":3: "), std::string::npos)
      << loaded.status().message();
  EXPECT_NE(loaded.status().message().find("drug index"), std::string::npos);

  const std::string short_path = WriteBlessedCsv(
      "short_drugs.csv", header + "0,DB1,Alpha\n");
  auto short_row = ReadDrugsCsv(short_path);
  ASSERT_FALSE(short_row.ok());
  EXPECT_NE(short_row.status().message().find("expected 4 fields"),
            std::string::npos);
}

TEST(IoTest, CsvWithoutIntegrityTrailerIsRejected) {
  // An externally-produced CSV (no trailer) can't be distinguished from
  // a file torn at a line boundary, so the readers refuse it and point
  // at the adoption path.
  const std::string path = ::testing::TempDir() + "/no_trailer.csv";
  ASSERT_TRUE(core::WriteFileAtomic(core::PosixFs(), path,
                                    "drug_a,drug_b,label\n0,1,1\n")
                  .ok());
  auto loaded = ReadPairsCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kFailedPrecondition);
  EXPECT_NE(loaded.status().message().find("#crc32"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("AppendCsvIntegrityFooter"),
            std::string::npos);
}

TEST(IoTest, ValidatePairsNamesOffendingPair) {
  const std::vector<LabeledPair> pairs{{0, 1, 1.0f}, {5, 1, 0.0f}};
  EXPECT_TRUE(ValidatePairs(pairs, 6).ok());
  auto status = ValidatePairs(pairs, 3);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), core::StatusCode::kOutOfRange);
  EXPECT_NE(status.message().find("pair 1"), std::string::npos);
  EXPECT_NE(status.message().find("5"), std::string::npos);
  EXPECT_NE(status.message().find("3"), std::string::npos);
}

}  // namespace
}  // namespace hygnn::data
