#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fs.h"
#include "core/thread_pool.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "graph/builders.h"
#include "hygnn/model.h"
#include "serve/bundle.h"
#include "serve/embedding_store.h"
#include "serve/scoring.h"

namespace hygnn::serve {
namespace {

/// Shared miniature corpus: generate -> featurize -> hypergraph. The
/// last drug is held out of the serving catalog so AddDrug can join it
/// cold.
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DatasetConfig data_config;
    data_config.num_drugs = 60;
    data_config.seed = 707;
    dataset_ =
        new data::DdiDataset(data::GenerateDataset(data_config).value());
    data::FeaturizeConfig feat_config;
    feat_config.espf_frequency_threshold = 3;
    featurizer_ = new data::SubstructureFeaturizer(
        data::SubstructureFeaturizer::Build(dataset_->drugs(), feat_config)
            .value());
    catalog_members_ = new std::vector<std::vector<int32_t>>(
        featurizer_->drug_substructures().begin(),
        featurizer_->drug_substructures().end() - 1);
    auto hypergraph = graph::BuildDrugHypergraph(
        *catalog_members_, featurizer_->num_substructures());
    context_ = new model::HypergraphContext(
        model::HypergraphContext::FromHypergraph(hypergraph));
  }

  static void TearDownTestSuite() {
    delete context_;
    delete catalog_members_;
    delete featurizer_;
    delete dataset_;
  }

  static model::HyGnnModel MakeModel(uint64_t seed = 11,
                                     int32_t num_layers = 1) {
    core::Rng rng(seed);
    model::HyGnnConfig config;
    config.encoder.hidden_dim = 16;
    config.encoder.output_dim = 12;
    config.num_layers = num_layers;
    config.decoder_hidden_dim = 10;
    return model::HyGnnModel(featurizer_->num_substructures(), config,
                             &rng);
  }

  static std::vector<data::LabeledPair> SomePairs() {
    std::vector<data::LabeledPair> pairs;
    const int32_t n = context_->num_edges;
    for (int32_t i = 0; i + 1 < n; i += 3) {
      pairs.push_back({i, (i * 7 + 1) % n, 1.0f});
    }
    return pairs;
  }

  static std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  static data::DdiDataset* dataset_;
  static data::SubstructureFeaturizer* featurizer_;
  static std::vector<std::vector<int32_t>>* catalog_members_;
  static model::HypergraphContext* context_;
};

data::DdiDataset* ServeTest::dataset_ = nullptr;
data::SubstructureFeaturizer* ServeTest::featurizer_ = nullptr;
std::vector<std::vector<int32_t>>* ServeTest::catalog_members_ = nullptr;
model::HypergraphContext* ServeTest::context_ = nullptr;

TEST_F(ServeTest, BundleRoundTripScoresBitIdentical) {
  const auto model = MakeModel();
  const std::string path = TempPath("roundtrip.hygb");
  ASSERT_TRUE(model.Save(path, featurizer_->vocabulary()).ok());

  chem::SubstructureVocabulary vocabulary;
  auto loaded = model::HyGnnModel::Load(path, &vocabulary);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(vocabulary.size(), featurizer_->vocabulary().size());
  EXPECT_EQ(loaded.value().input_dim(), model.input_dim());
  EXPECT_EQ(loaded.value().config().encoder.hidden_dim,
            model.config().encoder.hidden_dim);

  const auto pairs = SomePairs();
  const auto expected = model.PredictProbabilities(*context_, pairs);
  const auto actual = loaded.value().PredictProbabilities(*context_, pairs);
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i], actual[i]) << "pair " << i;
  }
}

TEST_F(ServeTest, BundleLoadNeedsNoCallerConfig) {
  const auto model = MakeModel(/*seed=*/29);
  const std::string path = TempPath("selfdesc.hygb");
  ASSERT_TRUE(model.Save(path, featurizer_->vocabulary()).ok());
  auto bundle = ModelBundle::Load(path);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  EXPECT_EQ(bundle.value().input_dim, featurizer_->num_substructures());
  EXPECT_EQ(bundle.value().weights.size(), model.Parameters().size());
  EXPECT_EQ(bundle.value().weights[0].first, "encoder.layer0.w_q");
  auto rebuilt = bundle.value().BuildModel();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
}

TEST_F(ServeTest, LoadRejectsBadMagic) {
  const std::string path = TempPath("badmagic.hygb");
  std::ofstream(path, std::ios::binary) << "NOPE this is not a bundle";
  auto loaded = ModelBundle::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("not a HyGNN model bundle"),
            std::string::npos);
}

TEST_F(ServeTest, LoadRejectsVersionSkewNamingBothVersions) {
  const auto model = MakeModel();
  const std::string path = TempPath("skew.hygb");
  ASSERT_TRUE(model.Save(path, featurizer_->vocabulary()).ok());
  // Patch the u32 version field right after the 4-byte magic, then
  // re-bless the integrity footer so Load trips on the skew itself,
  // not on the checksum.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  auto payload = core::StripIntegrityFooter(bytes);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  std::string patched(payload.value());
  const uint32_t bogus = 99;
  std::memcpy(patched.data() + 4, &bogus, sizeof(bogus));
  core::AppendIntegrityFooter(&patched);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(patched.data(), static_cast<std::streamsize>(patched.size()));
  out.close();
  auto loaded = ModelBundle::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kFailedPrecondition);
  EXPECT_NE(loaded.status().message().find("99"), std::string::npos);
  EXPECT_NE(loaded.status().message().find(std::to_string(kBundleVersion)),
            std::string::npos);
}

TEST_F(ServeTest, LoadRejectsTruncation) {
  const auto model = MakeModel();
  const std::string path = TempPath("whole.hygb");
  ASSERT_TRUE(model.Save(path, featurizer_->vocabulary()).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Cut the file at several depths; every prefix must be rejected.
  for (const double fraction : {0.1, 0.5, 0.9}) {
    const std::string cut_path = TempPath("truncated.hygb");
    std::ofstream out(cut_path, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() * fraction));
    out.close();
    auto loaded = ModelBundle::Load(cut_path);
    EXPECT_FALSE(loaded.ok()) << "prefix fraction " << fraction;
  }
}

TEST_F(ServeTest, SaveRejectsVocabularyModelMismatch) {
  const auto model = MakeModel();
  chem::SubstructureVocabulary tiny;
  tiny.AddOrGet("C");
  auto status = model.Save(TempPath("mismatch.hygb"), tiny);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("1"), std::string::npos);
  EXPECT_NE(status.message().find(
                std::to_string(featurizer_->num_substructures())),
            std::string::npos);
}

TEST_F(ServeTest, DeprecatedLoadWeightsNamesBothShapesOnMismatch) {
  const auto model = MakeModel();
  const std::string path = TempPath("weights.hygt");
  ASSERT_TRUE(model.SaveWeights(path).ok());
  core::Rng rng(5);
  model::HyGnnConfig other_config;
  other_config.encoder.hidden_dim = 24;  // differs from MakeModel's 16
  other_config.encoder.output_dim = 12;
  other_config.decoder_hidden_dim = 10;
  model::HyGnnModel other(featurizer_->num_substructures(), other_config,
                          &rng);
  auto status = other.LoadWeights(path);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("16"), std::string::npos);
  EXPECT_NE(status.message().find("24"), std::string::npos);
}

TEST_F(ServeTest, CachedPairScorerMatchesColdPathBitwise) {
  const auto model = MakeModel();
  EmbeddingStore store(&model);
  ASSERT_TRUE(store.Rebuild(*context_).ok());
  EXPECT_EQ(store.num_drugs(), context_->num_edges);
  EXPECT_EQ(store.dim(), model.config().encoder.output_dim);

  const auto pairs = SomePairs();
  const auto cold = model.PredictProbabilities(*context_, pairs);
  PairScorer scorer(&model, &store);
  const auto cached = scorer.Score(pairs);
  ASSERT_EQ(cold.size(), cached.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i], cached[i]) << "pair " << i;
  }
}

TEST_F(ServeTest, StoreInvalidationAndRebuildAfterWeightReload) {
  auto model = MakeModel(/*seed=*/11);
  const auto other = MakeModel(/*seed=*/500);
  const std::string path = TempPath("other_weights.hygt");
  ASSERT_TRUE(other.SaveWeights(path).ok());

  EmbeddingStore store(&model);
  ASSERT_TRUE(store.Rebuild(*context_).ok());
  const uint64_t generation_before = store.generation();
  PairScorer scorer(&model, &store);
  const auto pairs = SomePairs();
  const auto before = scorer.Score(pairs);

  // Reload different weights into the model: the cache is now stale.
  ASSERT_TRUE(model.LoadWeights(path).ok());
  store.Invalidate();
  EXPECT_FALSE(store.valid());
  ASSERT_TRUE(store.Rebuild(*context_).ok());
  EXPECT_TRUE(store.valid());
  EXPECT_GT(store.generation(), generation_before);

  const auto after = scorer.Score(pairs);
  const auto cold_after = model.PredictProbabilities(*context_, pairs);
  bool any_changed = false;
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i], cold_after[i]) << "pair " << i;
    any_changed = any_changed || after[i] != before[i];
  }
  EXPECT_TRUE(any_changed)
      << "reloaded weights produced identical scores; cache test is vacuous";
}

TEST_F(ServeTest, ScreeningDeterministicAcrossThreadCounts) {
  const auto model = MakeModel();
  EmbeddingStore store(&model);
  ASSERT_TRUE(store.Rebuild(*context_).ok());
  ScreeningEngine engine(&model, &store);

  std::vector<std::vector<ScreeningHit>> runs;
  for (const int32_t threads : {1, 2, 4}) {
    core::SetNumThreads(threads);
    runs.push_back(engine.TopK(/*query=*/3, /*k=*/10));
  }
  core::SetNumThreads(1);
  ASSERT_EQ(runs[0].size(), 10u);
  for (size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[run][i].drug, runs[0][i].drug) << "rank " << i;
      EXPECT_EQ(runs[run][i].score, runs[0][i].score) << "rank " << i;
    }
  }
  // Scores are descending with ids breaking ties.
  for (size_t i = 1; i < runs[0].size(); ++i) {
    EXPECT_GE(runs[0][i - 1].score, runs[0][i].score);
  }
}

TEST_F(ServeTest, ScreeningBreaksTiedScoresByAscendingDrugId) {
  const auto model = MakeModel();
  // A catalog with duplicate hyperedges: drugs 1/3/5 share one
  // substructure set and drugs 2/4 another, so their embeddings — and
  // their scores against the query — are exactly equal. The shortlist
  // must still be a strict order: ties resolve to ascending drug id.
  const std::vector<std::vector<int32_t>> members = {
      {0, 1}, {2, 3}, {4, 5}, {2, 3}, {4, 5}, {2, 3}};
  auto hypergraph = graph::BuildDrugHypergraph(
      members, featurizer_->num_substructures());
  auto context = model::HypergraphContext::FromHypergraph(hypergraph);
  EmbeddingStore store(&model);
  ASSERT_TRUE(store.Rebuild(context).ok());

  ScreeningEngine engine(&model, &store);
  auto response = engine.Screen({/*query=*/0, /*top_k=*/5});
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const auto& hits = response.value().hits;
  ASSERT_EQ(hits.size(), 5u);

  // The ties must really exist, or this test is vacuous.
  std::map<int32_t, float> by_drug;
  for (const auto& hit : hits) by_drug[hit.drug] = hit.score;
  ASSERT_EQ(by_drug.size(), 5u);
  EXPECT_EQ(by_drug[1], by_drug[3]);
  EXPECT_EQ(by_drug[3], by_drug[5]);
  EXPECT_EQ(by_drug[2], by_drug[4]);

  // Strict ScreeningHitBefore order over the whole shortlist implies
  // descending scores with tied runs in ascending-id order.
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_TRUE(ScreeningHitBefore(hits[i - 1], hits[i]))
        << "rank " << i - 1 << " (drug " << hits[i - 1].drug
        << ") vs rank " << i << " (drug " << hits[i].drug << ")";
  }
}

TEST_F(ServeTest, ScreeningHitBeforeIsAStrictTotalOrder) {
  const ScreeningHit high{7, 0.9f};
  const ScreeningHit low{2, 0.1f};
  const ScreeningHit low_later{5, 0.1f};
  EXPECT_TRUE(ScreeningHitBefore(high, low));
  EXPECT_FALSE(ScreeningHitBefore(low, high));
  // Tie: lower drug id first, and never both ways.
  EXPECT_TRUE(ScreeningHitBefore(low, low_later));
  EXPECT_FALSE(ScreeningHitBefore(low_later, low));
  // Irreflexive.
  EXPECT_FALSE(ScreeningHitBefore(high, high));
}

TEST_F(ServeTest, AddDrugMatchesFullReencodeBitwise) {
  const auto model = MakeModel();
  EmbeddingStore store(&model);
  ASSERT_TRUE(store.Rebuild(*context_).ok());

  const std::string& cold_smiles = dataset_->drugs().back().smiles;
  auto added = store.AddDrugSmiles(*featurizer_, cold_smiles);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  const int32_t new_id = added.value();
  EXPECT_EQ(new_id, context_->num_edges);
  EXPECT_EQ(store.num_drugs(), context_->num_edges + 1);

  // Reference: re-encode the whole extended hypergraph from scratch.
  auto members = featurizer_->SegmentNewSmiles(cold_smiles).value();
  ASSERT_FALSE(members.empty());
  auto extended = *catalog_members_;
  extended.push_back(members);
  auto hypergraph = graph::BuildDrugHypergraph(
      extended, featurizer_->num_substructures());
  auto full_context = model::HypergraphContext::FromHypergraph(hypergraph);
  const tensor::Tensor full =
      model.EmbedDrugs(full_context, /*training=*/false, nullptr);

  const float* incremental = store.Row(new_id);
  for (int64_t j = 0; j < store.dim(); ++j) {
    EXPECT_EQ(incremental[j], full.At(new_id, j)) << "dim " << j;
  }
}

TEST_F(ServeTest, AddDrugValidatesInput) {
  const auto model = MakeModel();
  EmbeddingStore store(&model);
  // Stale store: AddDrug before Rebuild must fail.
  EXPECT_FALSE(store.AddDrug({0}).ok());
  ASSERT_TRUE(store.Rebuild(*context_).ok());
  auto out_of_range = store.AddDrug({featurizer_->num_substructures()});
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code(), core::StatusCode::kOutOfRange);
  // An isolated (no known substructure) drug still gets a row: all
  // zeros, same as a full forward would produce for an empty hyperedge.
  auto empty = store.AddDrug({});
  ASSERT_TRUE(empty.ok());
  const float* row = store.Row(empty.value());
  for (int64_t j = 0; j < store.dim(); ++j) EXPECT_EQ(row[j], 0.0f);
}

TEST_F(ServeTest, AddDrugRejectsMultiLayerEncoders) {
  const auto model = MakeModel(/*seed=*/11, /*num_layers=*/2);
  EmbeddingStore store(&model);
  ASSERT_TRUE(store.Rebuild(*context_).ok());  // caching still works
  PairScorer scorer(&model, &store);
  const auto pairs = SomePairs();
  const auto cold = model.PredictProbabilities(*context_, pairs);
  const auto cached = scorer.Score(pairs);
  for (size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i], cached[i]) << "pair " << i;
  }
  auto added = store.AddDrug({1, 2});
  ASSERT_FALSE(added.ok());
  EXPECT_EQ(added.status().code(),
            core::StatusCode::kFailedPrecondition);
}

TEST_F(ServeTest, LoadRejectsTornWrite) {
  const auto model = MakeModel();
  const std::string path = TempPath("torn.hygb");
  // A torn write: the rename commits but the tail of the payload never
  // made it to disk. The CRC footer is what catches this.
  core::FaultInjectingFs faulty(&core::PosixFs());
  faulty.TruncateClosesBy(32);
  {
    core::ScopedFileSystem scoped(&faulty);
    ASSERT_TRUE(model.Save(path, featurizer_->vocabulary()).ok());
  }
  auto loaded = ModelBundle::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kIoError);
}

TEST_F(ServeTest, LoadRejectsBadChecksum) {
  const auto model = MakeModel();
  const std::string path = TempPath("corrupt.hygb");
  ASSERT_TRUE(model.Save(path, featurizer_->vocabulary()).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Flip one payload byte past the header: the footer checksum no
  // longer matches and Load must refuse.
  bytes[bytes.size() / 2] ^= 0x40;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  auto loaded = ModelBundle::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("checksum mismatch"),
            std::string::npos);
}

TEST_F(ServeTest, SaveCrashMidWritePreservesOldBundle) {
  const auto model = MakeModel();
  const auto other = MakeModel(/*seed=*/500);
  const std::string path = TempPath("durable.hygb");
  ASSERT_TRUE(model.Save(path, featurizer_->vocabulary()).ok());

  // Crash the replacement write: the injected failure happens before
  // rename, so the original bundle must survive untouched.
  core::FaultInjectingFs faulty(&core::PosixFs());
  faulty.FailNthAppend(1, /*enospc=*/true);
  {
    core::ScopedFileSystem scoped(&faulty);
    auto status = other.Save(path, featurizer_->vocabulary());
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("ENOSPC"), std::string::npos);
  }
  auto loaded = ModelBundle::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
}

TEST_F(ServeTest, AddDrugNamedRejectsDuplicateIds) {
  const auto model = MakeModel();
  EmbeddingStore store(&model);
  ASSERT_TRUE(store.Rebuild(*context_).ok());

  auto first = store.AddDrugNamed("DB00001", {1, 2});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto found = store.FindDrug("DB00001");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), first.value());

  // Double submission: typed rejection, and the cache did not grow.
  const int32_t drugs_before = store.num_drugs();
  auto dup = store.AddDrugNamed("DB00001", {3});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), core::StatusCode::kAlreadyExists);
  EXPECT_NE(dup.status().message().find("DB00001"), std::string::npos);
  EXPECT_EQ(store.num_drugs(), drugs_before);

  EXPECT_FALSE(store.AddDrugNamed("", {1}).ok());

  // Rebuild reassigns row ids, so the registry is cleared with them.
  ASSERT_TRUE(store.Rebuild(*context_).ok());
  auto gone = store.FindDrug("DB00001");
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), core::StatusCode::kNotFound);
}

TEST_F(ServeTest, AddDrugWithNoRecognizedSubstructuresDegradesGracefully) {
  const auto model = MakeModel();
  EmbeddingStore store(&model);
  ASSERT_TRUE(store.Rebuild(*context_).ok());
  // A named drug with zero recognized substructures still joins the
  // catalog with a zero embedding instead of failing the request.
  auto added = store.AddDrugNamed("DB99999", {});
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  const float* row = store.Row(added.value());
  for (int64_t j = 0; j < store.dim(); ++j) EXPECT_EQ(row[j], 0.0f);
  PairScorer scorer(&model, &store);
  const std::vector<data::LabeledPair> query = {{0, added.value(), 0.0f}};
  const auto scores = scorer.Score(query);
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_TRUE(std::isfinite(scores[0]));
}

}  // namespace
}  // namespace hygnn::serve
