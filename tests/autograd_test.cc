#include <gtest/gtest.h>

#include "core/rng.h"
#include "tensor/init.h"
#include "tensor/loss.h"
#include "tensor/ops.h"
#include "tests/gradcheck.h"

namespace hygnn::tensor {
namespace {

using hygnn::testing::ExpectGradMatchesNumeric;

/// Fixed pseudo-random contents so make_input() is repeatable.
Tensor FixedRandom(int64_t rows, int64_t cols, uint64_t seed,
                   bool requires_grad = true) {
  core::Rng rng(seed);
  std::vector<float> values(static_cast<size_t>(rows * cols));
  for (auto& v : values) v = (rng.UniformFloat() - 0.5f) * 2.0f;
  return Tensor::FromVector(std::move(values), rows, cols, requires_grad);
}

TEST(AutogradTest, ScaleAndSumChain) {
  Tensor x = Tensor::Full(1, 1, 3.0f, true);
  Tensor y = Scale(x, 4.0f);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 4.0f);
}

TEST(AutogradTest, GradAccumulatesAcrossSharedUse) {
  // y = x*x uses x twice via Mul: dy/dx = 2x.
  Tensor x = Tensor::Full(1, 1, 5.0f, true);
  Tensor y = Mul(x, x);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 10.0f);
}

TEST(AutogradTest, DiamondGraph) {
  // z = (x*2) + (x*3): dz/dx = 5.
  Tensor x = Tensor::Full(1, 1, 1.0f, true);
  Tensor z = Add(Scale(x, 2.0f), Scale(x, 3.0f));
  z.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 5.0f);
}

TEST(AutogradTest, NoGradLeafUntouched) {
  Tensor x = Tensor::Full(1, 1, 2.0f, /*requires_grad=*/false);
  Tensor w = Tensor::Full(1, 1, 3.0f, /*requires_grad=*/true);
  Tensor y = Mul(x, w);
  y.Backward();
  EXPECT_FALSE(x.has_grad());
  EXPECT_FLOAT_EQ(w.grad()[0], 2.0f);
}

TEST(AutogradTest, ZeroGradClears) {
  Tensor x = Tensor::Full(1, 1, 2.0f, true);
  Tensor y = Scale(x, 2.0f);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

// ----- numeric gradient checks, one per operator -----

TEST(GradCheckTest, MatMulLeft) {
  Tensor b = FixedRandom(3, 2, 99, /*requires_grad=*/false);
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(2, 3, 1); },
      [&b](const Tensor& x) { return ReduceSum(MatMul(x, b)); });
}

TEST(GradCheckTest, MatMulRight) {
  Tensor a = FixedRandom(2, 3, 98, /*requires_grad=*/false);
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(3, 2, 2); },
      [&a](const Tensor& x) { return ReduceSum(MatMul(a, x)); });
}

TEST(GradCheckTest, AddAndSub) {
  Tensor b = FixedRandom(2, 2, 97, false);
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(2, 2, 3); },
      [&b](const Tensor& x) { return ReduceSum(Sub(Add(x, b), b)); });
}

TEST(GradCheckTest, MulElementwise) {
  Tensor b = FixedRandom(2, 3, 96, false);
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(2, 3, 4); },
      [&b](const Tensor& x) { return ReduceSum(Mul(x, b)); });
}

TEST(GradCheckTest, AddRowBroadcastBias) {
  Tensor x_fixed = FixedRandom(3, 4, 95, false);
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(1, 4, 5); },
      [&x_fixed](const Tensor& bias) {
        return ReduceSum(Mul(AddRowBroadcast(x_fixed, bias),
                             AddRowBroadcast(x_fixed, bias)));
      });
}

TEST(GradCheckTest, MulColumnBroadcastBothSides) {
  Tensor w = FixedRandom(3, 1, 94, false);
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(3, 2, 6); },
      [&w](const Tensor& x) { return ReduceSum(MulColumnBroadcast(x, w)); });
  Tensor x = FixedRandom(3, 2, 93, false);
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(3, 1, 7); },
      [&x](const Tensor& w2) {
        return ReduceSum(MulColumnBroadcast(x, w2));
      });
}

TEST(GradCheckTest, ConcatCols) {
  Tensor b = FixedRandom(2, 2, 92, false);
  Tensor scale = FixedRandom(4, 1, 91, false);
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(2, 2, 8); },
      [&](const Tensor& x) {
        return ReduceSum(MatMul(ConcatCols(x, b), scale));
      });
}

TEST(GradCheckTest, IndexSelectRows) {
  std::vector<int32_t> indices{0, 2, 2, 1};
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(3, 2, 9); },
      [&indices](const Tensor& x) {
        Tensor selected = IndexSelectRows(x, indices);
        return ReduceSum(Mul(selected, selected));
      });
}

TEST(GradCheckTest, SegmentSoftmax) {
  std::vector<int32_t> segments{0, 0, 1, 1, 1};
  Tensor mix = FixedRandom(5, 1, 90, false);
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(5, 1, 10); },
      [&](const Tensor& scores) {
        return ReduceSum(Mul(SegmentSoftmax(scores, segments, 2), mix));
      });
}

TEST(GradCheckTest, SegmentSum) {
  std::vector<int32_t> segments{1, 0, 1};
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(3, 2, 11); },
      [&segments](const Tensor& x) {
        Tensor summed = SegmentSum(x, segments, 2);
        return ReduceSum(Mul(summed, summed));
      });
}

TEST(GradCheckTest, SegmentSoftmaxWithEmptySegments) {
  // Segments 1 and 3 have no rows: the softmax must skip them in both
  // passes and the gradient must stay exact for the populated ones.
  std::vector<int32_t> segments{0, 0, 2, 2, 4};
  Tensor mix = FixedRandom(5, 1, 91, false);
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(5, 1, 13); },
      [&](const Tensor& scores) {
        return ReduceSum(Mul(SegmentSoftmax(scores, segments, 5), mix));
      });
}

TEST(GradCheckTest, SegmentSoftmaxSingleElementSegments) {
  // Every segment has exactly one row, so each softmax output is the
  // constant 1 and the analytic gradient must vanish (y*(g - g*y) = 0).
  std::vector<int32_t> segments{0, 1, 2};
  Tensor mix = FixedRandom(3, 1, 92, false);
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(3, 1, 14); },
      [&](const Tensor& scores) {
        return ReduceSum(Mul(SegmentSoftmax(scores, segments, 3), mix));
      });
}

TEST(GradCheckTest, SegmentSoftmaxSingleSegmentMatchesRowSoftmax) {
  // One segment covering every row: segment softmax degenerates to a
  // plain softmax over the column.
  std::vector<int32_t> segments{0, 0, 0, 0};
  Tensor mix = FixedRandom(4, 1, 93, false);
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(4, 1, 15); },
      [&](const Tensor& scores) {
        return ReduceSum(Mul(SegmentSoftmax(scores, segments, 1), mix));
      });
}

TEST(GradCheckTest, SegmentSumWithEmptyAndSingleSegments) {
  // Segment 1 is empty, segments 0 and 3 have one row each, segment 2
  // has two; gradients must scatter back through the gaps untouched.
  std::vector<int32_t> segments{0, 2, 2, 3};
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(4, 2, 16); },
      [&](const Tensor& x) {
        Tensor summed = SegmentSum(x, segments, 4);
        return ReduceSum(Mul(summed, summed));
      });
}

TEST(SegmentOpsTest, EmptySegmentForwardIsZero) {
  // Forward-only contract: rows of an empty segment do not exist, the
  // summed accumulator stays zero, and softmax outputs stay normalized
  // within their own segment.
  Tensor x = Tensor::FromVector({1.0f, 2.0f, 3.0f}, 3, 1);
  std::vector<int32_t> segments{0, 0, 2};
  Tensor summed = SegmentSum(x, segments, 3);
  EXPECT_FLOAT_EQ(summed.At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(summed.At(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(summed.At(2, 0), 3.0f);
  Tensor soft = SegmentSoftmax(x, segments, 3);
  EXPECT_NEAR(soft.At(0, 0) + soft.At(1, 0), 1.0f, 1e-6f);
  EXPECT_FLOAT_EQ(soft.At(2, 0), 1.0f);
}

TEST(GradCheckTest, RowwiseDot) {
  Tensor b = FixedRandom(3, 2, 89, false);
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(3, 2, 12); },
      [&b](const Tensor& x) { return ReduceSum(RowwiseDot(x, b)); });
}

TEST(GradCheckTest, ReluAwayFromKink) {
  // Shift inputs away from 0 where ReLU is non-differentiable.
  ExpectGradMatchesNumeric(
      [] {
        Tensor x = FixedRandom(2, 3, 13);
        for (int64_t i = 0; i < x.size(); ++i) {
          if (std::fabs(x.data()[i]) < 0.05f) x.data()[i] = 0.2f;
        }
        return x;
      },
      [](const Tensor& x) { return ReduceSum(Relu(x)); });
}

TEST(GradCheckTest, LeakyReluAwayFromKink) {
  ExpectGradMatchesNumeric(
      [] {
        Tensor x = FixedRandom(2, 3, 14);
        for (int64_t i = 0; i < x.size(); ++i) {
          if (std::fabs(x.data()[i]) < 0.05f) x.data()[i] = -0.2f;
        }
        return x;
      },
      [](const Tensor& x) { return ReduceSum(LeakyRelu(x, 0.2f)); });
}

TEST(GradCheckTest, SigmoidTanhExp) {
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(2, 2, 15); },
      [](const Tensor& x) { return ReduceSum(Sigmoid(x)); });
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(2, 2, 16); },
      [](const Tensor& x) { return ReduceSum(Tanh(x)); });
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(2, 2, 17); },
      [](const Tensor& x) { return ReduceSum(Exp(x)); });
}

TEST(GradCheckTest, LogPositiveInputs) {
  ExpectGradMatchesNumeric(
      [] {
        Tensor x = FixedRandom(2, 2, 18);
        for (int64_t i = 0; i < x.size(); ++i) {
          x.data()[i] = std::fabs(x.data()[i]) + 0.5f;
        }
        return x;
      },
      [](const Tensor& x) { return ReduceSum(Log(x)); });
}

TEST(GradCheckTest, L2NormalizeRows) {
  Tensor mix = FixedRandom(2, 3, 88, false);
  ExpectGradMatchesNumeric(
      [] {
        Tensor x = FixedRandom(2, 3, 19);
        for (int64_t i = 0; i < x.size(); ++i) x.data()[i] += 1.5f;
        return x;
      },
      [&mix](const Tensor& x) {
        return ReduceSum(Mul(L2NormalizeRows(x), mix));
      });
}

TEST(GradCheckTest, ReduceMean) {
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(3, 3, 20); },
      [](const Tensor& x) { return ReduceMean(Mul(x, x)); });
}

TEST(GradCheckTest, BceWithLogitsLoss) {
  std::vector<float> targets{1.0f, 0.0f, 1.0f, 0.0f};
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(4, 1, 21); },
      [&targets](const Tensor& logits) {
        return BceWithLogitsLoss(logits, targets);
      });
}

TEST(GradCheckTest, BceLossOnProbabilities) {
  std::vector<float> targets{1.0f, 0.0f, 1.0f};
  ExpectGradMatchesNumeric(
      [] {
        // Probabilities well inside (0, 1).
        return Tensor::FromVector({0.3f, 0.6f, 0.8f}, 3, 1, true);
      },
      [&targets](const Tensor& probs) { return BceLoss(probs, targets); });
}

TEST(GradCheckTest, MseLoss) {
  std::vector<float> targets{0.5f, -0.5f, 1.0f};
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(3, 1, 22); },
      [&targets](const Tensor& pred) { return MseLoss(pred, targets); });
}

TEST(GradCheckTest, ComposedAttentionPattern) {
  // Miniature of the HyGNN attention computation: projection ->
  // segment-softmax -> weighted segment-sum. Verifies the composition
  // end to end.
  std::vector<int32_t> pair_nodes{0, 0, 1, 1, 2};
  std::vector<int32_t> pair_edges{0, 1, 0, 2, 1};
  Tensor g = FixedRandom(2, 1, 87, false);
  ExpectGradMatchesNumeric(
      [] { return FixedRandom(3, 2, 23); },  // 3 edges, dim 2
      [&](const Tensor& edge_feat) {
        Tensor scores = MatMul(LeakyRelu(edge_feat, 0.2f), g);  // [3,1]
        Tensor pair_scores = IndexSelectRows(scores, pair_edges);
        Tensor alpha = SegmentSoftmax(pair_scores, pair_nodes, 3);
        Tensor messages = IndexSelectRows(edge_feat, pair_edges);
        Tensor nodes = SegmentSum(MulColumnBroadcast(messages, alpha),
                                  pair_nodes, 3);
        return ReduceSum(Mul(nodes, nodes));
      });
}

}  // namespace
}  // namespace hygnn::tensor
