#include <cmath>

#include <gtest/gtest.h>

#include "metrics/metrics.h"

namespace hygnn::metrics {
namespace {

TEST(AccuracyTest, Basic) {
  std::vector<float> scores{0.9f, 0.2f, 0.7f, 0.4f};
  std::vector<float> labels{1.0f, 0.0f, 0.0f, 1.0f};
  EXPECT_DOUBLE_EQ(Accuracy(scores, labels), 0.5);
  EXPECT_DOUBLE_EQ(Accuracy(scores, labels, 0.95f), 0.5);  // all negative
}

TEST(BrierScoreTest, PerfectAndWorst) {
  EXPECT_DOUBLE_EQ(BrierScore({1.0f, 0.0f}, {1.0f, 0.0f}), 0.0);
  EXPECT_DOUBLE_EQ(BrierScore({0.0f, 1.0f}, {1.0f, 0.0f}), 1.0);
  EXPECT_DOUBLE_EQ(BrierScore({0.5f}, {1.0f}), 0.25);
}

TEST(BrierScoreTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(BrierScore({}, {}), 0.0);
}

TEST(BestF1ThresholdTest, FindsSeparator) {
  // Positives at 0.8/0.9, negatives at 0.1/0.2: threshold 0.8 is
  // perfect.
  std::vector<float> scores{0.9f, 0.8f, 0.2f, 0.1f};
  std::vector<float> labels{1.0f, 1.0f, 0.0f, 0.0f};
  auto best = BestF1Threshold(scores, labels);
  EXPECT_DOUBLE_EQ(best.f1, 1.0);
  EXPECT_NEAR(best.threshold, 0.8, 1e-6);
}

TEST(BestF1ThresholdTest, BeatsFixedThresholdOnShiftedScores) {
  // A well-ranked but badly-calibrated model: all scores below 0.5.
  std::vector<float> scores{0.4f, 0.35f, 0.1f, 0.05f};
  std::vector<float> labels{1.0f, 1.0f, 0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(F1Score(scores, labels, 0.5f), 0.0);
  auto best = BestF1Threshold(scores, labels);
  EXPECT_DOUBLE_EQ(best.f1, 1.0);
}

TEST(BestF1ThresholdTest, AllNegativesGiveZero) {
  auto best = BestF1Threshold({0.5f, 0.6f}, {0.0f, 0.0f});
  EXPECT_DOUBLE_EQ(best.f1, 0.0);
}

TEST(BestF1ThresholdTest, TiedScoresHandledAsOneCut) {
  std::vector<float> scores{0.5f, 0.5f, 0.5f};
  std::vector<float> labels{1.0f, 1.0f, 0.0f};
  auto best = BestF1Threshold(scores, labels);
  // Single possible cut: everything positive -> P=2/3, R=1.
  EXPECT_NEAR(best.f1, 2.0 * (2.0 / 3.0) / (2.0 / 3.0 + 1.0), 1e-9);
}

}  // namespace
}  // namespace hygnn::metrics
