#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "tensor/init.h"
#include "tensor/loss.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "tensor/sparse.h"
#include "tests/gradcheck.h"

namespace hygnn::tensor {
namespace {

using hygnn::testing::ExpectGradMatchesNumeric;

TEST(CsrMatrixTest, FromCooBasics) {
  auto m = CsrMatrix::FromCoo(3, 3, {0, 1, 2}, {1, 2, 0},
                              {1.0f, 2.0f, 3.0f});
  EXPECT_EQ(m->rows(), 3);
  EXPECT_EQ(m->cols(), 3);
  EXPECT_EQ(m->nnz(), 3);
}

TEST(CsrMatrixTest, DuplicatesAreSummed) {
  auto m = CsrMatrix::FromCoo(2, 2, {0, 0, 1}, {1, 1, 0},
                              {1.0f, 2.0f, 5.0f});
  EXPECT_EQ(m->nnz(), 2);
  // Row 0 has a single entry of value 3 at column 1.
  EXPECT_EQ(m->values()[0], 3.0f);
  EXPECT_EQ(m->col_idx()[0], 1);
}

TEST(CsrMatrixTest, MultiplyMatchesDense) {
  // A = [[1, 0], [2, 3]]
  auto a = CsrMatrix::FromCoo(2, 2, {0, 1, 1}, {0, 0, 1},
                              {1.0f, 2.0f, 3.0f});
  std::vector<float> x{10.0f, 20.0f};  // column vector, d = 1
  std::vector<float> y(2, 0.0f);
  a->MultiplyInto(x.data(), 1, y.data());
  EXPECT_EQ(y[0], 10.0f);
  EXPECT_EQ(y[1], 80.0f);
}

TEST(CsrMatrixTest, TransposeCorrect) {
  auto a = CsrMatrix::FromCoo(2, 3, {0, 1, 1}, {2, 0, 1},
                              {1.0f, 2.0f, 3.0f});
  auto at = a->Transpose();
  EXPECT_EQ(at->rows(), 3);
  EXPECT_EQ(at->cols(), 2);
  EXPECT_EQ(at->nnz(), 3);
  // (0,2)=1 -> (2,0)=1
  std::vector<float> x{1.0f, 0.0f};  // pick out column 0 of A^T
  std::vector<float> y(3, 0.0f);
  at->MultiplyInto(x.data(), 1, y.data());
  EXPECT_EQ(y[2], 1.0f);
  EXPECT_EQ(y[0], 0.0f);
}

TEST(CsrMatrixTest, TransposeIsCached) {
  auto a = CsrMatrix::FromCoo(2, 2, {0}, {1}, {1.0f});
  EXPECT_EQ(a->Transpose().get(), a->Transpose().get());
}

TEST(SpMMTest, ForwardMatchesDense) {
  // A = [[1, 2], [0, 3]] ; X = [[1, 1], [2, 2]]
  auto a = CsrMatrix::FromCoo(2, 2, {0, 0, 1}, {0, 1, 1},
                              {1.0f, 2.0f, 3.0f});
  Tensor x = Tensor::FromVector({1, 1, 2, 2}, 2, 2);
  Tensor y = SpMM(a, x);
  EXPECT_EQ(y.At(0, 0), 5.0f);
  EXPECT_EQ(y.At(0, 1), 5.0f);
  EXPECT_EQ(y.At(1, 0), 6.0f);
}

TEST(SpMMTest, GradCheck) {
  auto a = CsrMatrix::FromCoo(3, 3, {0, 0, 1, 2, 2}, {0, 2, 1, 0, 2},
                              {0.5f, 1.5f, -1.0f, 2.0f, 0.25f});
  ExpectGradMatchesNumeric(
      [] {
        core::Rng rng(77);
        std::vector<float> values(6);
        for (auto& v : values) v = (rng.UniformFloat() - 0.5f) * 2.0f;
        return Tensor::FromVector(std::move(values), 3, 2, true);
      },
      [&a](const Tensor& x) {
        Tensor y = SpMM(a, x);
        return ReduceSum(Mul(y, y));
      });
}

// ---------- optimizers ----------

TEST(SgdTest, MinimizesQuadratic) {
  // f(w) = (w - 3)^2, start at 0.
  Tensor w = Tensor::Full(1, 1, 0.0f, true);
  Sgd sgd({w}, 0.1f);
  for (int step = 0; step < 200; ++step) {
    sgd.ZeroGrad();
    Tensor diff = Sub(w, Tensor::Full(1, 1, 3.0f));
    Tensor loss = Mul(diff, diff);
    loss.Backward();
    sgd.Step();
  }
  EXPECT_NEAR(w.item(), 3.0f, 1e-3f);
}

TEST(AdamTest, MinimizesQuadraticBowl) {
  Tensor w = Tensor::FromVector({5.0f, -5.0f}, 2, 1, true);
  Adam adam({w}, 0.1f);
  for (int step = 0; step < 500; ++step) {
    adam.ZeroGrad();
    Tensor loss = ReduceSum(Mul(w, w));
    loss.Backward();
    adam.Step();
  }
  EXPECT_NEAR(w.At(0, 0), 0.0f, 1e-2f);
  EXPECT_NEAR(w.At(1, 0), 0.0f, 1e-2f);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  Tensor w = Tensor::Full(1, 1, 1.0f, true);
  Adam adam({w}, 0.01f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/1.0f);
  // Zero data gradient; only the decay term acts.
  for (int step = 0; step < 100; ++step) {
    adam.ZeroGrad();
    Tensor loss = Scale(w, 0.0f);
    loss.Backward();
    adam.Step();
  }
  EXPECT_LT(std::fabs(w.item()), 1.0f);
}

TEST(OptimizerTest, ClipGradNormScales) {
  Tensor w = Tensor::FromVector({3.0f, 4.0f}, 2, 1, true);
  Sgd sgd({w}, 1.0f);
  Tensor loss = ReduceSum(Mul(w, w));  // grad = 2w = (6, 8), norm 10
  loss.Backward();
  const float norm = sgd.ClipGradNorm(5.0f);
  EXPECT_NEAR(norm, 10.0f, 1e-4f);
  EXPECT_NEAR(w.grad()[0], 3.0f, 1e-4f);
  EXPECT_NEAR(w.grad()[1], 4.0f, 1e-4f);
}

TEST(OptimizerTest, ClipBelowThresholdNoChange) {
  Tensor w = Tensor::FromVector({0.3f, 0.4f}, 2, 1, true);
  Sgd sgd({w}, 1.0f);
  Tensor loss = ReduceSum(Mul(w, w));
  loss.Backward();
  const float before0 = w.grad()[0];
  sgd.ClipGradNorm(100.0f);
  EXPECT_EQ(w.grad()[0], before0);
}

// ---------- losses ----------

TEST(LossTest, BceWithLogitsValue) {
  // logit 0 -> p=0.5 -> loss = ln 2 for either label.
  Tensor logits = Tensor::FromVector({0.0f, 0.0f}, 2, 1);
  Tensor loss = BceWithLogitsLoss(logits, {1.0f, 0.0f});
  EXPECT_NEAR(loss.item(), std::log(2.0f), 1e-5f);
}

TEST(LossTest, BceWithLogitsConfidentCorrectIsSmall) {
  Tensor logits = Tensor::FromVector({10.0f, -10.0f}, 2, 1);
  Tensor loss = BceWithLogitsLoss(logits, {1.0f, 0.0f});
  EXPECT_LT(loss.item(), 1e-3f);
}

TEST(LossTest, BceWithLogitsConfidentWrongIsLarge) {
  Tensor logits = Tensor::FromVector({10.0f}, 1, 1);
  Tensor loss = BceWithLogitsLoss(logits, {0.0f});
  EXPECT_GT(loss.item(), 5.0f);
}

TEST(LossTest, BceWithLogitsStableAtExtremes) {
  Tensor logits = Tensor::FromVector({500.0f, -500.0f}, 2, 1);
  Tensor loss = BceWithLogitsLoss(logits, {0.0f, 1.0f});
  EXPECT_TRUE(std::isfinite(loss.item()));
}

TEST(LossTest, BceMatchesBceWithLogits) {
  Tensor logits = Tensor::FromVector({0.7f, -1.2f, 2.0f}, 3, 1);
  std::vector<float> targets{1.0f, 0.0f, 1.0f};
  Tensor fused = BceWithLogitsLoss(logits, targets);
  Tensor composed = BceLoss(Sigmoid(logits), targets);
  EXPECT_NEAR(fused.item(), composed.item(), 1e-5f);
}

TEST(LossTest, MseValue) {
  Tensor pred = Tensor::FromVector({1.0f, 2.0f}, 2, 1);
  Tensor loss = MseLoss(pred, {0.0f, 4.0f});
  EXPECT_NEAR(loss.item(), (1.0f + 4.0f) / 2.0f, 1e-6f);
}

}  // namespace
}  // namespace hygnn::tensor
