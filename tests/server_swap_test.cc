// Epoch-based hot catalog swap tests: serve::EmbeddingStore publishes
// immutable StoreSnapshots through an atomic handle, and serve::Server
// pins one snapshot per batch, so AddDrug/Rebuild/Invalidate while
// Started never quiesce serving:
//
//   * a snapshot pinned before a swap keeps its generation, catalog
//     size, and exact bytes while the store moves on;
//   * scores of pre-existing pairs are bit-identical across an AddDrug
//     publication (rows are byte-copied into each new epoch);
//   * a batch pinned to epoch N completes correctly — against N's
//     bytes — after N+1 publishes mid-batch, with Health() reporting
//     the brief kSwapping transition;
//   * requests validated against epoch N but scored under a shrunken
//     or invalidated epoch get a typed error, never a torn score;
//   * superseded snapshots are reclaimed exactly when their last
//     pinned batch drains (grace period = shared_ptr refcount),
//     observed via StoreSnapshot::LiveCount and weak_ptr expiry;
//   * concurrent AddDrug against live serving is race-free (tsan runs
//     this file in CI) and kDegraded keeps precedence over kSwapping.
//
// Raw std::thread is fine here (tests are exempt from the
// thread_pool-only lint rule).

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/clock.h"
#include "core/status.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "graph/builders.h"
#include "hygnn/model.h"
#include "serve/chaos.h"
#include "serve/embedding_store.h"
#include "serve/request.h"
#include "serve/scoring.h"
#include "serve/server.h"

namespace hygnn::serve {
namespace {

/// Shared read-only corpus (same shape as ServerChaosTest's). The
/// store is NOT shared: every test builds its own, because these tests
/// mutate the catalog.
class ServerSwapTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DatasetConfig data_config;
    data_config.num_drugs = 40;
    data_config.seed = 909;
    auto dataset = data::GenerateDataset(data_config).value();
    data::FeaturizeConfig feat_config;
    feat_config.espf_frequency_threshold = 3;
    featurizer_ = new data::SubstructureFeaturizer(
        data::SubstructureFeaturizer::Build(dataset.drugs(), feat_config)
            .value());
    auto hypergraph =
        graph::BuildDrugHypergraph(featurizer_->drug_substructures(),
                                   featurizer_->num_substructures());
    context_ = new model::HypergraphContext(
        model::HypergraphContext::FromHypergraph(hypergraph));

    core::Rng rng(13);
    model::HyGnnConfig config;
    config.encoder.hidden_dim = 8;
    config.encoder.output_dim = 8;
    config.decoder_hidden_dim = 8;
    model_ = new model::HyGnnModel(featurizer_->num_substructures(),
                                   config, &rng);
  }

  static void TearDownTestSuite() {
    delete model_;
    delete context_;
    delete featurizer_;
  }

  /// A fresh valid store over the full 40-drug corpus.
  static std::unique_ptr<EmbeddingStore> MakeStore() {
    auto store = std::make_unique<EmbeddingStore>(model_);
    EXPECT_TRUE(store->Rebuild(*context_).ok());
    return store;
  }

  static std::vector<ScoreRequest> MakeRequests(int32_t count,
                                                int32_t catalog) {
    std::vector<ScoreRequest> requests(static_cast<size_t>(count));
    for (int32_t r = 0; r < count; ++r) {
      const int32_t pairs = r % 3 + 1;
      for (int32_t i = 0; i < pairs; ++i) {
        const int32_t a = (r * 7 + i) % catalog;
        const int32_t b = (r * 3 + i * 11 + 1) % catalog;
        requests[static_cast<size_t>(r)].pairs.push_back({a, b, 0.0f});
      }
    }
    return requests;
  }

  /// Substructure ids of corpus drug `i` — valid encoder input, so
  /// AddDrug always succeeds.
  static const std::vector<int32_t>& Substructures(size_t i) {
    const auto& subs = featurizer_->drug_substructures();
    return subs[i % subs.size()];
  }

  static void ExpectBitIdentical(const std::vector<float>& got,
                                 const std::vector<float>& want,
                                 const std::string& what) {
    ASSERT_EQ(got.size(), want.size()) << what;
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          want.size() * sizeof(float)),
              0)
        << what << ": scores differ bitwise across the swap";
  }

  /// One worker, greedy batching, chaos hook installed.
  static ServerOptions ChaosOptions(FaultInjectingScorer* chaos) {
    ServerOptions options;
    options.workers = 1;
    options.max_wait_us = 0;
    options.chaos = chaos;
    return options;
  }

  static data::SubstructureFeaturizer* featurizer_;
  static model::HypergraphContext* context_;
  static model::HyGnnModel* model_;
};

data::SubstructureFeaturizer* ServerSwapTest::featurizer_ = nullptr;
model::HypergraphContext* ServerSwapTest::context_ = nullptr;
model::HyGnnModel* ServerSwapTest::model_ = nullptr;

// ---------------------------------------------------------------------
// Store-level snapshot semantics.

TEST_F(ServerSwapTest, PinnedSnapshotKeepsItsViewAcrossPublications) {
  auto store = MakeStore();
  const auto pinned = store->Snapshot();
  ASSERT_NE(pinned, nullptr);
  const int32_t old_drugs = pinned->num_drugs();
  const uint64_t old_generation = pinned->generation();
  // Copy one row's bytes to compare after the swap.
  std::vector<float> row0(static_cast<size_t>(pinned->dim()));
  std::memcpy(row0.data(), pinned->Row(0), row0.size() * sizeof(float));

  auto added = store->AddDrug(Substructures(0));
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(added.value(), old_drugs);  // appended, ids stable

  // The store moved on...
  const auto current = store->Snapshot();
  ASSERT_NE(current, nullptr);
  EXPECT_GT(store->generation(), old_generation);
  EXPECT_EQ(current->num_drugs(), old_drugs + 1);
  // ...but the pinned epoch is frozen: same generation, same catalog,
  // same bytes.
  EXPECT_EQ(pinned->generation(), old_generation);
  EXPECT_EQ(pinned->num_drugs(), old_drugs);
  EXPECT_EQ(std::memcmp(pinned->Row(0), row0.data(),
                        row0.size() * sizeof(float)),
            0);
  // And the new epoch byte-copied every pre-existing row.
  EXPECT_EQ(std::memcmp(current->Row(0), pinned->Row(0),
                        static_cast<size_t>(old_drugs) *
                            static_cast<size_t>(pinned->dim()) *
                            sizeof(float)),
            0);
}

TEST_F(ServerSwapTest, GenerationBumpsOnEveryPublication) {
  auto store = MakeStore();
  const uint64_t after_rebuild = store->generation();
  ASSERT_TRUE(store->AddDrug(Substructures(1)).ok());
  const uint64_t after_add = store->generation();
  EXPECT_GT(after_add, after_rebuild);
  store->Invalidate();
  const uint64_t after_invalidate = store->generation();
  EXPECT_GT(after_invalidate, after_add);
  // Invalidate publishes the null (stale) epoch.
  EXPECT_EQ(store->Snapshot(), nullptr);
  EXPECT_FALSE(store->valid());
  EXPECT_EQ(store->num_drugs(), 0);
  ASSERT_TRUE(store->Rebuild(*context_).ok());
  EXPECT_GT(store->generation(), after_invalidate);
  EXPECT_TRUE(store->valid());
}

TEST_F(ServerSwapTest, SupersededSnapshotReclaimedWhenLastPinDrops) {
  auto store = MakeStore();
  const int64_t live_before = StoreSnapshot::LiveCount();
  std::weak_ptr<const StoreSnapshot> old_epoch = store->Snapshot();
  ASSERT_FALSE(old_epoch.expired());
  {
    // A pinned reader holds the old epoch across the swap.
    const auto pinned = store->Snapshot();
    ASSERT_TRUE(store->AddDrug(Substructures(2)).ok());
    EXPECT_FALSE(old_epoch.expired());
    EXPECT_EQ(StoreSnapshot::LiveCount(), live_before + 1);
  }
  // Last pin dropped: the grace period ends and the buffer is freed.
  EXPECT_TRUE(old_epoch.expired());
  EXPECT_EQ(StoreSnapshot::LiveCount(), live_before);
}

// ---------------------------------------------------------------------
// Serving through a swap.

TEST_F(ServerSwapTest, AddDrugWhileStartedPreservesServedScoresBitwise) {
  auto store = MakeStore();
  const auto requests = MakeRequests(6, store->num_drugs());
  PairScorer serial(model_, store.get());
  std::vector<std::vector<float>> before;
  for (const auto& request : requests) {
    before.push_back(serial.ScorePairs(request).value().scores);
  }

  Server server(model_, store.get(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  // Mutate the catalog while the server is live — no shutdown, no
  // quiesce.
  for (int32_t i = 0; i < 3; ++i) {
    auto added = store->AddDrug(Substructures(static_cast<size_t>(i)));
    ASSERT_TRUE(added.ok()) << added.status().ToString();
  }
  for (size_t r = 0; r < requests.size(); ++r) {
    auto served = server.Score(requests[r]);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    ExpectBitIdentical(served.value().scores, before[r],
                       "request " + std::to_string(r));
  }
  server.Shutdown();
  EXPECT_EQ(server.stats().completed, requests.size());
}

TEST_F(ServerSwapTest, BatchPinnedToOldEpochCompletesAfterSwapPublishes) {
  auto store = MakeStore();
  FaultInjectingScorer chaos;
  chaos.StallNthBatch(1);
  Server server(model_, store.get(), ChaosOptions(&chaos));
  ASSERT_TRUE(server.Start().ok());

  const auto request = MakeRequests(1, store->num_drugs())[0];
  auto pending = server.SubmitAsync(request);
  ASSERT_TRUE(pending.ok()) << pending.status().ToString();
  chaos.AwaitStalled();

  // The batch pinned its epoch before parking. Publish the next epoch
  // underneath it.
  const auto old_epoch = store->Snapshot();
  ASSERT_TRUE(store->AddDrug(Substructures(3)).ok());
  ASSERT_GT(store->generation(), old_epoch->generation());
  // The brief swap transition is visible while the old-epoch batch is
  // still in flight.
  EXPECT_EQ(server.health(), Server::Health::kSwapping);

  chaos.ReleaseStall();
  auto result = pending.value()->Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The batch scored against the epoch it pinned, not the new one.
  PairScorer scorer(model_, store.get());
  auto expected = scorer.ScorePairs(request, old_epoch);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ExpectBitIdentical(result.value().scores, expected.value().scores,
                     "old-epoch batch");

  // A follow-up batch (same single worker) proves the stalled batch
  // fully drained; the transition is over.
  ASSERT_TRUE(server.Score(request).ok());
  EXPECT_EQ(server.health(), Server::Health::kServing);
  server.Shutdown();
}

TEST_F(ServerSwapTest, SwapUnderDeadlinePressureKeepsBothContracts) {
  core::ManualClock manual;
  core::ScopedClock scoped(&manual);
  auto store = MakeStore();
  FaultInjectingScorer chaos;
  chaos.StallNthBatch(1);
  Server server(model_, store.get(), ChaosOptions(&chaos));
  ASSERT_TRUE(server.Start().ok());

  const auto requests = MakeRequests(2, store->num_drugs());
  // Batch 1 opens with A (no deadline) and parks.
  auto a = server.SubmitAsync(requests[0]);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  chaos.AwaitStalled();
  // B (1 ms deadline) queues behind the stall; then the catalog swaps
  // and B's deadline passes — swap pressure and deadline pressure at
  // once.
  ScoreRequest with_deadline = requests[1];
  with_deadline.timeout_us = 1000;
  auto b = server.SubmitAsync(with_deadline);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  const auto old_epoch = store->Snapshot();
  ASSERT_TRUE(store->AddDrug(Substructures(4)).ok());
  manual.AdvanceMicros(2000);
  chaos.ReleaseStall();

  // A still completes against its pinned pre-swap epoch.
  auto a_result = a.value()->Wait();
  ASSERT_TRUE(a_result.ok()) << a_result.status().ToString();
  PairScorer scorer(model_, store.get());
  ExpectBitIdentical(
      a_result.value().scores,
      scorer.ScorePairs(requests[0], old_epoch).value().scores,
      "pinned survivor");
  // B's deadline contract is untouched by the swap: typed expiry.
  auto b_result = b.value()->Wait();
  ASSERT_FALSE(b_result.ok());
  EXPECT_EQ(b_result.status().code(),
            core::StatusCode::kDeadlineExceeded);

  server.Shutdown();
  EXPECT_EQ(server.stats().expired, 1u);
}

TEST_F(ServerSwapTest, RequestValidatedAgainstOldEpochGetsTypedError) {
  // A request admitted under the 40-drug epoch but scored under a
  // shrunken one must get a typed error, never a torn or out-of-bounds
  // score. The shrink happens between SubmitAsync and Start, so the
  // batch pins the small epoch.
  auto store = MakeStore();
  Server server(model_, store.get(), ServerOptions{});
  ScoreRequest request;
  request.pairs.push_back({store->num_drugs() - 1, 0, 0.0f});
  auto pending = server.SubmitAsync(request);
  ASSERT_TRUE(pending.ok()) << pending.status().ToString();

  // Rebuild over the first half of the corpus: same substructure
  // vocabulary, smaller catalog.
  const auto& all_subs = featurizer_->drug_substructures();
  std::vector<std::vector<int32_t>> half(
      all_subs.begin(),
      all_subs.begin() + static_cast<ptrdiff_t>(all_subs.size() / 2));
  auto small_graph = graph::BuildDrugHypergraph(
      half, featurizer_->num_substructures());
  auto small_context =
      model::HypergraphContext::FromHypergraph(small_graph);
  ASSERT_TRUE(store->Rebuild(small_context).ok());

  ASSERT_TRUE(server.Start().ok());
  auto result = pending.value()->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("outside catalog"),
            std::string::npos);
  server.Shutdown();
}

TEST_F(ServerSwapTest, RequestScoredUnderInvalidatedEpochGetsTypedError) {
  auto store = MakeStore();
  Server server(model_, store.get(), ServerOptions{});
  auto pending =
      server.SubmitAsync(MakeRequests(1, store->num_drugs())[0]);
  ASSERT_TRUE(pending.ok()) << pending.status().ToString();
  // The store goes stale (weight reload) before the batch opens: the
  // batch pins the null epoch and fails typed.
  store->Invalidate();
  ASSERT_TRUE(server.Start().ok());
  auto result = pending.value()->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(),
            core::StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().message().find("stale"), std::string::npos);
  // New admissions are refused at the door while stale...
  auto refused = server.SubmitAsync(MakeRequests(1, 40)[0]);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(),
            core::StatusCode::kFailedPrecondition);
  // ...and a Rebuild restores serving with no restart.
  ASSERT_TRUE(store->Rebuild(*context_).ok());
  EXPECT_TRUE(server.Score(MakeRequests(1, store->num_drugs())[0]).ok());
  server.Shutdown();
}

TEST_F(ServerSwapTest, OldEpochReclaimedExactlyWhenPinnedBatchDrains) {
  auto store = MakeStore();
  FaultInjectingScorer chaos;
  chaos.StallNthBatch(1);
  Server server(model_, store.get(), ChaosOptions(&chaos));
  ASSERT_TRUE(server.Start().ok());

  const auto request = MakeRequests(1, store->num_drugs())[0];
  std::weak_ptr<const StoreSnapshot> old_epoch = store->Snapshot();
  const int64_t live_before = StoreSnapshot::LiveCount();
  auto pending = server.SubmitAsync(request);
  ASSERT_TRUE(pending.ok()) << pending.status().ToString();
  chaos.AwaitStalled();

  ASSERT_TRUE(store->AddDrug(Substructures(5)).ok());
  // Grace period: the stalled batch still pins the superseded epoch.
  EXPECT_FALSE(old_epoch.expired());
  EXPECT_EQ(StoreSnapshot::LiveCount(), live_before + 1);

  chaos.ReleaseStall();
  ASSERT_TRUE(pending.value()->Wait().ok());
  // The waiter completing doesn't end the grace period — the worker
  // frame does. A follow-up blocking Score on the single worker
  // guarantees that frame unwound.
  ASSERT_TRUE(server.Score(request).ok());
  EXPECT_TRUE(old_epoch.expired());
  EXPECT_EQ(StoreSnapshot::LiveCount(), live_before);
  server.Shutdown();
}

TEST_F(ServerSwapTest, ConcurrentAddDrugWhileServingIsRaceFree) {
  // tsan pins this path in CI: submitters score pre-existing pairs
  // while a mutator publishes epochs as fast as it can. No locks are
  // shared between the read side (atomic snapshot load) and scoring.
  auto store = MakeStore();
  const auto requests = MakeRequests(4, store->num_drugs());
  PairScorer serial(model_, store.get());
  std::vector<std::vector<float>> before;
  for (const auto& request : requests) {
    before.push_back(serial.ScorePairs(request).value().scores);
  }
  Server server(model_, store.get(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  std::thread mutator([&store] {
    for (int32_t i = 0; i < 8; ++i) {
      auto added = store->AddDrug(Substructures(static_cast<size_t>(i)));
      ASSERT_TRUE(added.ok()) << added.status().ToString();
    }
  });
  for (int32_t round = 0; round < 8; ++round) {
    for (size_t r = 0; r < requests.size(); ++r) {
      auto served = server.Score(requests[r]);
      ASSERT_TRUE(served.ok()) << served.status().ToString();
      ExpectBitIdentical(served.value().scores, before[r],
                         "round " + std::to_string(round) + " request " +
                             std::to_string(r));
    }
  }
  mutator.join();
  server.Shutdown();
  EXPECT_EQ(store->num_drugs(), 48);
  EXPECT_EQ(server.stats().completed, server.stats().accepted);
}

TEST_F(ServerSwapTest, DegradedHealthKeepsPrecedenceOverSwapping) {
  auto store = MakeStore();
  FaultInjectingScorer chaos;
  chaos.StallNthBatch(1);
  ServerOptions options = ChaosOptions(&chaos);
  options.queue_capacity = 2;
  Server server(model_, store.get(), options);
  ASSERT_TRUE(server.Start().ok());

  const auto requests = MakeRequests(3, store->num_drugs());
  auto parked = server.SubmitAsync(requests[0]);
  ASSERT_TRUE(parked.ok()) << parked.status().ToString();
  chaos.AwaitStalled();
  // Fill the queue to the degradation threshold behind the stall.
  auto queued = server.SubmitAsync(requests[1]);
  ASSERT_TRUE(queued.ok()) << queued.status().ToString();
  ASSERT_EQ(server.health(), Server::Health::kDegraded);

  // A swap while degraded: queue pressure outranks the transition.
  ASSERT_TRUE(store->AddDrug(Substructures(6)).ok());
  EXPECT_EQ(server.health(), Server::Health::kDegraded);

  chaos.ReleaseStall();
  ASSERT_TRUE(parked.value()->Wait().ok());
  ASSERT_TRUE(queued.value()->Wait().ok());
  server.Shutdown();
  EXPECT_EQ(server.health(), Server::Health::kDraining);
}

}  // namespace
}  // namespace hygnn::serve
