#include <set>

#include <gtest/gtest.h>

#include "graph/builders.h"
#include "graph/graph.h"
#include "graph/hypergraph.h"

namespace hygnn::graph {
namespace {

Graph MakeTriangle() {
  return Graph(4, {{0, 1}, {1, 2}, {2, 0}});  // node 3 isolated
}

TEST(GraphTest, BasicCounts) {
  Graph g = MakeTriangle();
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_EQ(g.Degree(3), 0);
}

TEST(GraphTest, NeighborsSorted) {
  Graph g(3, {{2, 0}, {0, 1}});
  auto nbrs = g.Neighbors(0);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 1);
  EXPECT_EQ(nbrs[1], 2);
}

TEST(GraphTest, SelfLoopsDropped) {
  Graph g(2, {{0, 0}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.Degree(0), 1);
}

TEST(GraphTest, ParallelEdgesMerged) {
  Graph g(2, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(GraphTest, HasEdge) {
  Graph g = MakeTriangle();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(GraphTest, NormalizedAdjacencyRowsSumAtMostOne) {
  Graph g = MakeTriangle();
  auto adj = g.NormalizedAdjacency();
  EXPECT_EQ(adj->rows(), 4);
  // For a triangle node: deg+1 = 3, each entry 1/3, row sums to 1.
  std::vector<float> ones(4, 1.0f);
  std::vector<float> row_sums(4, 0.0f);
  adj->MultiplyInto(ones.data(), 1, row_sums.data());
  EXPECT_NEAR(row_sums[0], 1.0f, 1e-5f);
  // Isolated node has only its self-loop: sum = 1.
  EXPECT_NEAR(row_sums[3], 1.0f, 1e-5f);
}

TEST(GraphTest, MeanAdjacencyAverages) {
  Graph g = MakeTriangle();
  auto adj = g.MeanAdjacency();
  std::vector<float> ones(4, 1.0f);
  std::vector<float> row_sums(4, 0.0f);
  adj->MultiplyInto(ones.data(), 1, row_sums.data());
  EXPECT_NEAR(row_sums[0], 1.0f, 1e-5f);
  EXPECT_EQ(row_sums[3], 0.0f);  // isolated: empty row
}

TEST(GraphTest, DirectedEdgesBothDirections) {
  Graph g(2, {{0, 1}});
  std::vector<int32_t> sources, targets;
  g.DirectedEdges(&sources, &targets);
  ASSERT_EQ(sources.size(), 2u);
  std::set<std::pair<int32_t, int32_t>> edges;
  for (size_t i = 0; i < sources.size(); ++i) {
    edges.insert({sources[i], targets[i]});
  }
  EXPECT_TRUE(edges.count({0, 1}));
  EXPECT_TRUE(edges.count({1, 0}));
}

// ---------- Hypergraph ----------

Hypergraph MakeDrugHypergraph() {
  // 5 substructures, 3 drugs:
  //   e0 = {0, 1, 2}, e1 = {1, 2, 3}, e2 = {4}
  return Hypergraph(5, {{0, 1, 2}, {1, 2, 3}, {4}});
}

TEST(HypergraphTest, Counts) {
  Hypergraph h = MakeDrugHypergraph();
  EXPECT_EQ(h.num_nodes(), 5);
  EXPECT_EQ(h.num_edges(), 3);
  EXPECT_EQ(h.num_incidences(), 7);
}

TEST(HypergraphTest, Degrees) {
  Hypergraph h = MakeDrugHypergraph();
  EXPECT_EQ(h.EdgeDegree(0), 3);
  EXPECT_EQ(h.EdgeDegree(2), 1);
  EXPECT_EQ(h.NodeDegree(1), 2);  // in e0 and e1
  EXPECT_EQ(h.NodeDegree(0), 1);
  EXPECT_EQ(h.NodeDegree(4), 1);
}

TEST(HypergraphTest, Membership) {
  Hypergraph h = MakeDrugHypergraph();
  auto members = h.EdgeMembers(1);
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], 1);
  EXPECT_EQ(members[2], 3);
  auto memberships = h.NodeMemberships(2);
  ASSERT_EQ(memberships.size(), 2u);
  EXPECT_EQ(memberships[0], 0);
  EXPECT_EQ(memberships[1], 1);
}

TEST(HypergraphTest, SharedNodes) {
  Hypergraph h = MakeDrugHypergraph();
  EXPECT_EQ(h.SharedNodes(0, 1), 2);  // {1, 2}
  EXPECT_EQ(h.SharedNodes(0, 2), 0);
  EXPECT_EQ(h.SharedNodes(1, 1), 3);
}

TEST(HypergraphTest, DuplicateMembersMerged) {
  Hypergraph h(3, {{0, 0, 1}});
  EXPECT_EQ(h.EdgeDegree(0), 2);
}

TEST(HypergraphTest, DenseIncidenceMatchesCoo) {
  Hypergraph h = MakeDrugHypergraph();
  auto dense = h.DenseIncidence();
  // Reconstruct from COO pairs and compare (H[i][j] = 1 iff v_i in e_j).
  int64_t dense_nnz = 0;
  for (const auto& row : dense) {
    for (uint8_t cell : row) dense_nnz += cell;
  }
  EXPECT_EQ(dense_nnz, h.num_incidences());
  const auto& nodes = h.pair_nodes();
  const auto& edges = h.pair_edges();
  for (size_t p = 0; p < nodes.size(); ++p) {
    EXPECT_EQ(dense[static_cast<size_t>(nodes[p])]
                   [static_cast<size_t>(edges[p])],
              1);
  }
}

TEST(HypergraphTest, PairsOrderedByEdge) {
  Hypergraph h = MakeDrugHypergraph();
  const auto& edges = h.pair_edges();
  for (size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LE(edges[i - 1], edges[i]);
  }
}

TEST(HypergraphTest, EmptyEdgeAllowed) {
  Hypergraph h(3, {{0}, {}, {1, 2}});
  EXPECT_EQ(h.num_edges(), 3);
  EXPECT_EQ(h.EdgeDegree(1), 0);
  EXPECT_EQ(h.num_incidences(), 3);
}

// ---------- builders ----------

TEST(BuildersTest, DdiGraphFromPairs) {
  Graph g = BuildDdiGraph(4, {{0, 1}, {2, 3}});
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(BuildersTest, SsgThreshold) {
  // d0 = {0,1,2}, d1 = {1,2,3}, d2 = {5}: d0-d1 share 2.
  std::vector<std::vector<int32_t>> subs{{0, 1, 2}, {1, 2, 3}, {5}};
  Graph ssg2 = BuildSubstructureSimilarityGraph(subs, 6, 2);
  EXPECT_TRUE(ssg2.HasEdge(0, 1));
  EXPECT_EQ(ssg2.num_edges(), 1);
  Graph ssg3 = BuildSubstructureSimilarityGraph(subs, 6, 3);
  EXPECT_EQ(ssg3.num_edges(), 0);
}

TEST(BuildersTest, DrugHypergraphShape) {
  std::vector<std::vector<int32_t>> subs{{0, 1}, {1, 2}};
  Hypergraph h = BuildDrugHypergraph(subs, 3);
  EXPECT_EQ(h.num_nodes(), 3);
  EXPECT_EQ(h.num_edges(), 2);
  EXPECT_EQ(h.SharedNodes(0, 1), 1);
}

}  // namespace
}  // namespace hygnn::graph
