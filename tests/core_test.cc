#include <algorithm>
#include <cstdlib>
#include <set>

#include <gtest/gtest.h>

#include "core/clock.h"
#include "core/flags.h"
#include "core/rng.h"
#include "core/status.h"
#include "core/string_util.h"

namespace hygnn::core {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "Ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(StatusTest, ResourceExhaustedFactory) {
  Status status = Status::ResourceExhausted("queue at capacity");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(status.ToString(), "ResourceExhausted: queue at capacity");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("hello"));
  std::string value = std::move(result).value();
  EXPECT_EQ(value, "hello");
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 16);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.UniformInt(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u) << "all residues should be hit";
}

TEST(RngTest, NormalMoments) {
  Rng rng(5);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = items;
  rng.Shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(23);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(29);
  std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 8000.0, 0.25, 0.03);
  EXPECT_NEAR(counts[2] / 8000.0, 0.75, 0.03);
}

TEST(RngTest, ForkIndependent) {
  Rng rng(31);
  Rng fork = rng.Fork();
  // Forked stream differs from parent continuation.
  EXPECT_NE(fork.Next(), rng.Next());
}

TEST(RngTest, StateRoundTripContinuesStreamBitExact) {
  Rng rng(123);
  for (int i = 0; i < 7; ++i) rng.Next();
  rng.Normal();  // leaves a cached Box-Muller spare in the state
  const Rng::State snapshot = rng.state();

  Rng resumed(0);  // different seed: state() must fully overwrite it
  resumed.set_state(snapshot);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(resumed.Next(), rng.Next());
  // The spare normal is part of the state too.
  Rng a(456), b(0);
  a.Normal();
  b.set_state(a.state());
  EXPECT_EQ(a.Normal(), b.Normal());
  EXPECT_EQ(a.Uniform(), b.Uniform());
}

// ---------- string_util ----------

TEST(StringUtilTest, SplitBasic) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitEmptyString) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StringUtilTest, FormatFloat) {
  EXPECT_EQ(FormatFloat(0.98765, 3), "0.988");
  EXPECT_EQ(FormatFloat(1.0, 1), "1.0");
}

// ---------- flags ----------

TEST(FlagParserTest, ParsesBothForms) {
  const char* argv[] = {"prog", "--alpha", "3", "--beta=hello", "pos",
                        "--flag"};
  FlagParser parser;
  ASSERT_TRUE(parser.Parse(6, argv).ok());
  EXPECT_EQ(parser.GetInt("alpha", 0), 3);
  EXPECT_EQ(parser.GetString("beta", ""), "hello");
  EXPECT_TRUE(parser.GetBool("flag", false));
  ASSERT_EQ(parser.positional().size(), 1u);
  EXPECT_EQ(parser.positional()[0], "pos");
}

TEST(FlagParserTest, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  FlagParser parser;
  ASSERT_TRUE(parser.Parse(1, argv).ok());
  EXPECT_EQ(parser.GetInt("missing", 99), 99);
  EXPECT_EQ(parser.GetDouble("missing", 0.5), 0.5);
  EXPECT_FALSE(parser.Has("missing"));
}

TEST(FlagParserTest, DoubleValues) {
  const char* argv[] = {"prog", "--rate=0.25"};
  FlagParser parser;
  ASSERT_TRUE(parser.Parse(2, argv).ok());
  EXPECT_DOUBLE_EQ(parser.GetDouble("rate", 0.0), 0.25);
}

TEST(FlagParserTest, RequireKnownNamesTheStranger) {
  const char* argv[] = {"prog", "--epochs", "5", "--resme"};
  FlagParser parser;
  ASSERT_TRUE(parser.Parse(4, argv).ok());
  EXPECT_TRUE(parser.RequireKnown({"epochs", "resme"}).ok());
  // A typo'd flag (--resme for --resume) must fail loudly, not be
  // silently ignored.
  auto status = parser.RequireKnown({"epochs", "resume"});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("--resme"), std::string::npos);
}

TEST(ClockTest, ManualClockMovesOnlyWhenAdvanced) {
  ManualClock clock(1000);
  EXPECT_EQ(clock.NowNanos(), 1000u);
  EXPECT_EQ(clock.NowNanos(), 1000u);  // reads do not advance it
  clock.AdvanceNanos(5);
  EXPECT_EQ(clock.NowNanos(), 1005u);
  clock.AdvanceMicros(2);
  EXPECT_EQ(clock.NowNanos(), 3005u);
}

TEST(ClockTest, ManualClockSleepAdvancesInsteadOfBlocking) {
  ManualClock clock;
  clock.SleepForMicros(250);
  EXPECT_EQ(clock.NowNanos(), 250000u);
  // Non-positive sleeps are no-ops, not underflows.
  clock.SleepForMicros(0);
  clock.SleepForMicros(-10);
  EXPECT_EQ(clock.NowNanos(), 250000u);
}

TEST(ClockTest, ScopedClockInstallsAndRestoresTheActiveClock) {
  Clock* original = &ActiveClock();
  ManualClock manual(42);
  {
    ScopedClock scoped(&manual);
    EXPECT_EQ(&ActiveClock(), &manual);
    EXPECT_EQ(ActiveClock().NowNanos(), 42u);
    {
      ManualClock inner(7);
      ScopedClock nested(&inner);
      EXPECT_EQ(&ActiveClock(), &inner);
    }
    EXPECT_EQ(&ActiveClock(), &manual);  // nesting unwinds in order
  }
  EXPECT_EQ(&ActiveClock(), original);
}

TEST(ClockTest, MonotonicClockNeverGoesBackwards) {
  Clock& clock = MonotonicClock();
  uint64_t last = clock.NowNanos();
  for (int i = 0; i < 1000; ++i) {
    const uint64_t now = clock.NowNanos();
    ASSERT_GE(now, last);
    last = now;
  }
  // The default active clock is the monotonic one.
  EXPECT_EQ(&ActiveClock(), &clock);
}

TEST(StatusTest, DeadlineExceededCodeIsDistinctAndNamed) {
  const auto status = Status::DeadlineExceeded("too slow");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(status.ToString(), "DeadlineExceeded: too slow");
  EXPECT_NE(static_cast<int>(StatusCode::kDeadlineExceeded),
            static_cast<int>(StatusCode::kResourceExhausted));
}

TEST(EnvFlagTest, ParsesTruthyFalsyAndFallsBack) {
  ASSERT_EQ(setenv("HYGNN_TEST_ENV_FLAG", "1", 1), 0);
  EXPECT_TRUE(EnvFlag("HYGNN_TEST_ENV_FLAG", false));
  ASSERT_EQ(setenv("HYGNN_TEST_ENV_FLAG", "no", 1), 0);
  EXPECT_FALSE(EnvFlag("HYGNN_TEST_ENV_FLAG", true));
  ASSERT_EQ(setenv("HYGNN_TEST_ENV_FLAG", "garbage", 1), 0);
  EXPECT_TRUE(EnvFlag("HYGNN_TEST_ENV_FLAG", true));
  ASSERT_EQ(unsetenv("HYGNN_TEST_ENV_FLAG"), 0);
  EXPECT_FALSE(EnvFlag("HYGNN_TEST_ENV_FLAG", false));
}

}  // namespace
}  // namespace hygnn::core
