#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "graph/graph.h"
#include "nn/gnn_layers.h"
#include "tensor/init.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "tensor/loss.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace hygnn::nn {
namespace {

TEST(LinearTest, ShapesAndBias) {
  core::Rng rng(1);
  Linear layer(3, 5, /*use_bias=*/true, &rng);
  tensor::Tensor x = tensor::Tensor::Full(2, 3, 1.0f);
  tensor::Tensor y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.cols(), 5);
  EXPECT_EQ(layer.Parameters().size(), 2u);
}

TEST(LinearTest, NoBias) {
  core::Rng rng(2);
  Linear layer(3, 4, /*use_bias=*/false, &rng);
  EXPECT_EQ(layer.Parameters().size(), 1u);
}

TEST(LinearTest, GradientsFlowToWeights) {
  core::Rng rng(3);
  Linear layer(2, 2, true, &rng);
  tensor::Tensor x = tensor::Tensor::Full(1, 2, 1.0f);
  tensor::Tensor loss = tensor::ReduceSum(layer.Forward(x));
  loss.Backward();
  for (auto& param : layer.Parameters()) {
    ASSERT_TRUE(param.has_grad());
    bool any_nonzero = false;
    for (int64_t i = 0; i < param.size(); ++i) {
      if (param.grad()[i] != 0.0f) any_nonzero = true;
    }
    EXPECT_TRUE(any_nonzero);
  }
}

TEST(MlpTest, LearnsXor) {
  core::Rng rng(4);
  Mlp mlp({2, 8, 1}, &rng);
  tensor::Tensor x = tensor::Tensor::FromVector(
      {0, 0, 0, 1, 1, 0, 1, 1}, 4, 2);
  std::vector<float> labels{0.0f, 1.0f, 1.0f, 0.0f};
  tensor::Adam adam(mlp.Parameters(), 0.05f);
  float final_loss = 1e9f;
  for (int epoch = 0; epoch < 500; ++epoch) {
    adam.ZeroGrad();
    tensor::Tensor logits = mlp.Forward(x, true, &rng);
    tensor::Tensor loss = tensor::BceWithLogitsLoss(logits, labels);
    loss.Backward();
    adam.Step();
    final_loss = loss.item();
  }
  EXPECT_LT(final_loss, 0.1f);
  // Predictions on the training points are on the right side.
  tensor::Tensor logits = mlp.Forward(x);
  EXPECT_LT(logits.At(0, 0), 0.0f);
  EXPECT_GT(logits.At(1, 0), 0.0f);
  EXPECT_GT(logits.At(2, 0), 0.0f);
  EXPECT_LT(logits.At(3, 0), 0.0f);
}

TEST(MlpTest, ParameterCount) {
  core::Rng rng(5);
  Mlp mlp({4, 8, 8, 1}, &rng);
  EXPECT_EQ(mlp.Parameters().size(), 6u);  // 3 layers x (W, b)
}

graph::Graph MakeTestGraph() {
  return graph::Graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
}

TEST(GcnTest, OutputShape) {
  core::Rng rng(6);
  graph::Graph g = MakeTestGraph();
  GcnConv layer(8, 16, &rng);
  tensor::Tensor x = tensor::Tensor::Full(5, 8, 0.5f);
  tensor::Tensor y = layer.Forward(g.NormalizedAdjacency(), x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 16);
}

TEST(GcnTest, IdenticalFeaturesOnSymmetricGraphStayIdentical) {
  // A 5-cycle is vertex-transitive; identical inputs must produce
  // identical outputs on every node.
  core::Rng rng(7);
  graph::Graph g = MakeTestGraph();
  GcnConv layer(4, 4, &rng);
  tensor::Tensor x = tensor::Tensor::Full(5, 4, 1.0f);
  tensor::Tensor y = layer.Forward(g.NormalizedAdjacency(), x);
  for (int64_t v = 1; v < 5; ++v) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(y.At(v, j), y.At(0, j), 1e-5f);
    }
  }
}

TEST(SageTest, OutputShapeAndGrad) {
  core::Rng rng(8);
  graph::Graph g = MakeTestGraph();
  SageConv layer(8, 16, &rng);
  tensor::Tensor x = tensor::Tensor::Full(5, 8, 0.5f);
  tensor::Tensor y = layer.Forward(g.MeanAdjacency(), x);
  EXPECT_EQ(y.cols(), 16);
  tensor::Tensor loss = tensor::ReduceSum(tensor::Mul(y, y));
  loss.Backward();
  EXPECT_TRUE(layer.Parameters()[0].has_grad());
}

TEST(GatTest, OutputShapeMultiHead) {
  core::Rng rng(9);
  graph::Graph g = MakeTestGraph();
  GatConv layer(8, 4, /*num_heads=*/3, &rng);
  auto edges = GatEdgeIndex::FromGraph(g);
  tensor::Tensor x = tensor::Tensor::Full(5, 8, 0.5f);
  tensor::Tensor y = layer.Forward(edges, x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 12);  // heads * head_dim
}

TEST(GatTest, SelfLoopsIncluded) {
  graph::Graph g(3, {});  // no edges at all
  auto edges = GatEdgeIndex::FromGraph(g);
  // Only the 3 self-loops.
  EXPECT_EQ(edges.sources.size(), 3u);
  core::Rng rng(10);
  GatConv layer(4, 4, 1, &rng);
  tensor::Tensor x = tensor::Tensor::Full(3, 4, 1.0f);
  tensor::Tensor y = layer.Forward(edges, x);
  // With only a self-loop, attention weight is 1 — output is finite.
  for (int64_t i = 0; i < y.size(); ++i) {
    EXPECT_TRUE(std::isfinite(y.data()[i]));
  }
}

TEST(GatTest, AttentionTrainable) {
  core::Rng rng(11);
  graph::Graph g = MakeTestGraph();
  GatConv layer(4, 4, 2, &rng);
  EXPECT_EQ(layer.Parameters().size(), 6u);  // 2 heads x (W, a_src, a_tgt)
  auto edges = GatEdgeIndex::FromGraph(g);
  tensor::Tensor x = tensor::Tensor::Full(5, 4, 1.0f);
  tensor::Tensor loss =
      tensor::ReduceSum(tensor::Mul(layer.Forward(edges, x),
                                    layer.Forward(edges, x)));
  loss.Backward();
  EXPECT_TRUE(layer.Parameters()[1].has_grad());
}

TEST(GnnTrainingTest, TwoLayerGcnFitsCommunityLabels) {
  // Two 4-cliques joined by one edge; labels = community. A 2-layer GCN
  // with learnable inputs should separate them.
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t a = 0; a < 4; ++a) {
    for (int32_t b = a + 1; b < 4; ++b) {
      edges.push_back({a, b});
      edges.push_back({a + 4, b + 4});
    }
  }
  edges.push_back({0, 4});
  graph::Graph g(8, edges);
  core::Rng rng(12);
  tensor::Tensor features =
      tensor::XavierUniform(8, 8, &rng, /*requires_grad=*/true);
  GcnConv layer1(8, 8, &rng);
  GcnConv layer2(8, 1, &rng);
  auto adj = g.NormalizedAdjacency();
  std::vector<float> labels{0, 0, 0, 0, 1, 1, 1, 1};

  std::vector<tensor::Tensor> params{features};
  for (auto& p : layer1.Parameters()) params.push_back(p);
  for (auto& p : layer2.Parameters()) params.push_back(p);
  tensor::Adam adam(params, 0.05f);
  float final_loss = 1e9f;
  for (int epoch = 0; epoch < 200; ++epoch) {
    adam.ZeroGrad();
    tensor::Tensor h = tensor::Relu(layer1.Forward(adj, features));
    tensor::Tensor logits = layer2.Forward(adj, h);
    tensor::Tensor loss = tensor::BceWithLogitsLoss(logits, labels);
    loss.Backward();
    adam.Step();
    final_loss = loss.item();
  }
  EXPECT_LT(final_loss, 0.2f);
}

}  // namespace
}  // namespace hygnn::nn
