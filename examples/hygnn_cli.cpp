// hygnn_cli — end-to-end command-line interface over the library,
// working from CSV files so the whole pipeline can be driven without
// writing C++.
//
//   hygnn_cli generate --drugs 150 --seed 7
//       --out_drugs drugs.csv --out_pairs pairs.csv
//   hygnn_cli train   --drugs_csv drugs.csv --pairs_csv pairs.csv
//       --mode espf --epochs 150 --model model.bin
//       [--numerics_guard]   # report first op producing NaN/Inf
//       [--threads N]        # kernel thread pool size (also via the
//                            # HYGNN_NUM_THREADS env var; results are
//                            # bit-identical at any thread count)
//       [--fuse=0]           # disable the elementwise fusion pass
//                            # (default on; HYGNN_FUSE=0 also vetoes it;
//                            # fused and unfused runs are bit-identical)
//       [--checkpoint_dir d] # durably checkpoint training into d
//       [--checkpoint_every N]  # epochs between checkpoints (default 1)
//       [--resume]           # continue from d's checkpoint, bit-identical
//                            # to a run that never stopped; starts fresh
//                            # when no checkpoint exists yet
//       [--metrics_out f]    # write training observability (per-epoch
//                            # events, latency histograms, per-op kernel
//                            # times) to f as checksummed JSONL; also via
//                            # the HYGNN_METRICS env var. Never perturbs
//                            # training — weights are bit-identical with
//                            # the flag on or off
//   hygnn_cli evaluate --drugs_csv drugs.csv --pairs_csv pairs.csv
//       --mode espf --model model.bin
//   hygnn_cli predict --drugs_csv drugs.csv --mode espf
//       --model model.bin --a DB00003 --b DB00017
//   hygnn_cli screen  --drugs_csv drugs.csv --mode espf
//       --model model.bin --query DB00003 --top 10
//       [--metrics_out f]    # serving-stage latency histograms, cache
//                            # counters, per-op kernel times as JSONL
//   hygnn_cli serve-load --drugs_csv drugs.csv --mode espf
//       --model model.bin --qps 500 --seconds 2
//       [--workers N --max_batch N --max_wait_us N --queue_capacity N]
//       [--pairs_per_request N --submitters N --seed N]
//       [--metrics_out f]    # adds serve.server.* queue-wait/batch-size
//                            # /score-latency histograms to the JSONL
//
// `train` writes a self-describing model bundle (serve::ModelBundle):
// config, substructure vocabulary, and weights in one file. The later
// commands restore the model from the bundle alone — no architecture
// flags needed — and only use the drugs CSV for the catalog hypergraph
// and DrugBank-id lookup. `screen` serves ranked interaction partners
// from the cached embedding store.

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/flags.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/pairs.h"
#include "graph/builders.h"
#include "hygnn/model.h"
#include "hygnn/trainer.h"
#include "obs/metrics.h"
#include "obs/optime.h"
#include "obs/sink.h"
#include "core/rng.h"
#include "serve/embedding_store.h"
#include "serve/loadgen.h"
#include "serve/request.h"
#include "serve/scoring.h"
#include "serve/server.h"

namespace {

using namespace hygnn;

data::FeaturizeConfig FeatConfigFromFlags(const core::FlagParser& flags) {
  data::FeaturizeConfig config;
  const std::string mode = flags.GetString("mode", "espf");
  if (mode == "kmer") {
    config.mode = data::SubstructureMode::kKmer;
  } else if (mode == "strobemer") {
    config.mode = data::SubstructureMode::kStrobemer;
  } else {
    config.mode = data::SubstructureMode::kEspf;
  }
  config.espf_frequency_threshold = flags.GetInt("espf_threshold", 3);
  config.kmer_k = flags.GetInt("kmer_k", 6);
  return config;
}

model::HyGnnConfig ModelConfigFromFlags(const core::FlagParser& flags) {
  model::HyGnnConfig config;
  const int64_t dim = flags.GetInt("hidden_dim", 64);
  config.encoder.hidden_dim = dim;
  config.encoder.output_dim = dim;
  config.num_layers = static_cast<int32_t>(flags.GetInt("layers", 1));
  config.decoder = flags.GetString("decoder", "mlp") == "dot"
                       ? model::DecoderKind::kDot
                       : model::DecoderKind::kMlp;
  config.decoder_hidden_dim = dim;
  return config;
}

int Fail(const core::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Flags every corpus-loading command understands (LoadCorpus +
/// FeatConfigFromFlags + ModelConfigFromFlags).
const std::vector<std::string> kCorpusFlags = {
    "drugs_csv", "mode", "espf_threshold", "kmer_k",
    "hidden_dim", "layers", "decoder"};

std::vector<std::string> KnownFlags(std::vector<std::string> extra) {
  extra.insert(extra.end(), kCorpusFlags.begin(), kCorpusFlags.end());
  return extra;
}

int CmdGenerate(const core::FlagParser& flags) {
  if (auto s = flags.RequireKnown(
          {"drugs", "seed", "out_drugs", "out_pairs"});
      !s.ok()) {
    return Fail(s);
  }
  data::DatasetConfig config;
  config.num_drugs = static_cast<int32_t>(flags.GetInt("drugs", 150));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  auto dataset_or = data::GenerateDataset(config);
  if (!dataset_or.ok()) return Fail(dataset_or.status());
  const auto& dataset = dataset_or.value();

  core::Rng rng(config.seed ^ 0x1234);
  auto pairs = data::BuildBalancedPairs(dataset, &rng);

  const std::string drugs_path = flags.GetString("out_drugs", "drugs.csv");
  const std::string pairs_path = flags.GetString("out_pairs", "pairs.csv");
  if (auto s = data::WriteDrugsCsv(dataset.drugs(), drugs_path); !s.ok()) {
    return Fail(s);
  }
  if (auto s = data::WritePairsCsv(pairs, pairs_path); !s.ok()) {
    return Fail(s);
  }
  std::printf("wrote %d drugs to %s and %zu labeled pairs to %s\n",
              dataset.num_drugs(), drugs_path.c_str(), pairs.size(),
              pairs_path.c_str());
  return 0;
}

/// Shared loading for train/evaluate/predict.
struct LoadedCorpus {
  std::vector<data::DrugRecord> drugs;
  data::SubstructureFeaturizer featurizer;
  model::HypergraphContext context;
};

core::Result<LoadedCorpus> LoadCorpus(const core::FlagParser& flags) {
  auto drugs_or =
      data::ReadDrugsCsv(flags.GetString("drugs_csv", "drugs.csv"));
  if (!drugs_or.ok()) return drugs_or.status();
  auto featurizer_or = data::SubstructureFeaturizer::Build(
      drugs_or.value(), FeatConfigFromFlags(flags));
  if (!featurizer_or.ok()) return featurizer_or.status();
  auto hypergraph = graph::BuildDrugHypergraph(
      featurizer_or.value().drug_substructures(),
      featurizer_or.value().num_substructures());
  LoadedCorpus corpus{std::move(drugs_or).value(),
                      std::move(featurizer_or).value(),
                      model::HypergraphContext::FromHypergraph(hypergraph)};
  return corpus;
}

int CmdTrain(const core::FlagParser& flags) {
  // A typo'd flag must fail loudly: --resme silently starting a 600-epoch
  // run from scratch is exactly the failure mode --resume exists to stop.
  if (auto s = flags.RequireKnown(KnownFlags(
          {"pairs_csv", "seed", "epochs", "numerics_guard", "threads",
           "fuse", "model", "checkpoint_dir", "checkpoint_every", "resume",
           "metrics_out"}));
      !s.ok()) {
    return Fail(s);
  }
  auto corpus_or = LoadCorpus(flags);
  if (!corpus_or.ok()) return Fail(corpus_or.status());
  auto& corpus = corpus_or.value();
  auto pairs_or =
      data::ReadPairsCsv(flags.GetString("pairs_csv", "pairs.csv"));
  if (!pairs_or.ok()) return Fail(pairs_or.status());
  if (auto s = data::ValidatePairs(
          pairs_or.value(),
          static_cast<int32_t>(corpus.drugs.size()));
      !s.ok()) {
    return Fail(s);
  }

  core::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  model::HyGnnModel hygnn(corpus.featurizer.num_substructures(),
                          ModelConfigFromFlags(flags), &rng);
  model::TrainConfig train_config;
  train_config.epochs = static_cast<int32_t>(flags.GetInt("epochs", 150));
  train_config.verbose = true;
  train_config.log_every = 25;
  train_config.numerics_guard = flags.GetBool("numerics_guard", false);
  train_config.threads = static_cast<int32_t>(flags.GetInt("threads", 0));
  train_config.fuse = flags.GetBool("fuse", true);
  train_config.checkpoint_dir = flags.GetString("checkpoint_dir", "");
  train_config.checkpoint_every =
      static_cast<int32_t>(flags.GetInt("checkpoint_every", 1));
  train_config.resume = flags.GetBool("resume", false);
  train_config.metrics_path = flags.GetString("metrics_out", "");
  model::HyGnnTrainer trainer(&hygnn, train_config);
  auto loss_or = trainer.TryFit(corpus.context, pairs_or.value());
  if (!loss_or.ok()) return Fail(loss_or.status());
  const float loss = loss_or.value();
  std::printf("final training loss: %.4f\n", loss);

  const std::string model_path = flags.GetString("model", "model.bin");
  if (auto s = hygnn.Save(model_path, corpus.featurizer.vocabulary());
      !s.ok()) {
    return Fail(s);
  }
  std::printf("saved model bundle to %s\n", model_path.c_str());
  return 0;
}

int CmdEvaluate(const core::FlagParser& flags) {
  if (auto s = flags.RequireKnown(KnownFlags({"pairs_csv", "model"}));
      !s.ok()) {
    return Fail(s);
  }
  auto corpus_or = LoadCorpus(flags);
  if (!corpus_or.ok()) return Fail(corpus_or.status());
  auto& corpus = corpus_or.value();
  auto pairs_or =
      data::ReadPairsCsv(flags.GetString("pairs_csv", "pairs.csv"));
  if (!pairs_or.ok()) return Fail(pairs_or.status());
  if (auto s = data::ValidatePairs(
          pairs_or.value(),
          static_cast<int32_t>(corpus.drugs.size()));
      !s.ok()) {
    return Fail(s);
  }

  auto hygnn_or = model::HyGnnModel::Load(flags.GetString("model", "model.bin"));
  if (!hygnn_or.ok()) return Fail(hygnn_or.status());
  auto& hygnn = hygnn_or.value();
  if (hygnn.input_dim() != corpus.featurizer.num_substructures()) {
    return Fail(core::Status::FailedPrecondition(
        "bundle vocabulary does not match the drugs CSV featurization"));
  }
  auto scores = hygnn.PredictProbabilities(corpus.context, pairs_or.value());
  auto result =
      model::EvaluateScores(scores, model::LabelsOf(pairs_or.value()));
  std::printf("F1 %.3f  ROC-AUC %.3f  PR-AUC %.3f  (%zu pairs)\n",
              result.f1, result.roc_auc, result.pr_auc,
              pairs_or.value().size());
  return 0;
}

int CmdPredict(const core::FlagParser& flags) {
  if (auto s = flags.RequireKnown(KnownFlags({"model", "a", "b"}));
      !s.ok()) {
    return Fail(s);
  }
  auto corpus_or = LoadCorpus(flags);
  if (!corpus_or.ok()) return Fail(corpus_or.status());
  auto& corpus = corpus_or.value();

  auto find_drug = [&corpus](const std::string& id) -> int32_t {
    for (const auto& drug : corpus.drugs) {
      if (drug.drugbank_id == id || drug.name == id) return drug.index;
    }
    return -1;
  };
  const int32_t a = find_drug(flags.GetString("a", ""));
  const int32_t b = find_drug(flags.GetString("b", ""));
  if (a < 0 || b < 0) {
    std::fprintf(stderr, "error: --a/--b must name drugs from the CSV\n");
    return 1;
  }

  auto hygnn_or = model::HyGnnModel::Load(flags.GetString("model", "model.bin"));
  if (!hygnn_or.ok()) return Fail(hygnn_or.status());
  auto& hygnn = hygnn_or.value();
  std::vector<data::LabeledPair> query{{a, b, 0.0f}};
  auto scores = hygnn.PredictProbabilities(corpus.context, query);
  std::printf("%s + %s -> interaction probability %.4f\n",
              corpus.drugs[static_cast<size_t>(a)].drugbank_id.c_str(),
              corpus.drugs[static_cast<size_t>(b)].drugbank_id.c_str(),
              scores[0]);
  return 0;
}

int CmdScreen(const core::FlagParser& flags) {
  if (auto s = flags.RequireKnown(
          KnownFlags({"model", "query", "top", "metrics_out"}));
      !s.ok()) {
    return Fail(s);
  }
  // Serving observability: per-stage latency histograms, cache
  // counters, and per-op kernel times, flushed as checksummed JSONL.
  obs::MetricsRecorder recorder(flags.GetString("metrics_out", ""));
  std::optional<obs::ScopedMetricsEnabled> metrics_scope;
  if (recorder.active()) {
    metrics_scope.emplace(true);
    obs::SetKernelTimingEnabled(true);
  }
  auto corpus_or = LoadCorpus(flags);
  if (!corpus_or.ok()) return Fail(corpus_or.status());
  auto& corpus = corpus_or.value();

  auto hygnn_or = model::HyGnnModel::Load(flags.GetString("model", "model.bin"));
  if (!hygnn_or.ok()) return Fail(hygnn_or.status());
  auto& hygnn = hygnn_or.value();

  int32_t query = -1;
  const std::string id = flags.GetString("query", "");
  for (const auto& drug : corpus.drugs) {
    if (drug.drugbank_id == id || drug.name == id) query = drug.index;
  }
  if (query < 0) {
    std::fprintf(stderr, "error: --query must name a drug from the CSV\n");
    return 1;
  }

  serve::EmbeddingStore store(&hygnn);
  if (auto s = store.Rebuild(corpus.context); !s.ok()) return Fail(s);
  serve::ScreeningEngine engine(&hygnn, &store);
  serve::ScreenRequest request;
  request.query = query;
  request.top_k = static_cast<int32_t>(flags.GetInt("top", 10));
  auto response = engine.Screen(request);
  if (!response.ok()) return Fail(response.status());
  const auto& hits = response.value().hits;
  std::printf("top %zu interaction candidates for %s:\n", hits.size(),
              corpus.drugs[static_cast<size_t>(query)].drugbank_id.c_str());
  for (const auto& hit : hits) {
    const auto& drug = corpus.drugs[static_cast<size_t>(hit.drug)];
    std::printf("  %-10s %-20s %.4f\n", drug.drugbank_id.c_str(),
                drug.name.c_str(), hit.score);
  }
  if (recorder.active()) {
    obs::SetKernelTimingEnabled(false);
    if (auto s = recorder.Flush(); !s.ok()) return Fail(s);
    std::printf("wrote metrics to %s\n", recorder.path().c_str());
  }
  return 0;
}

/// serve-load: stands up an in-process serve::Server over the model
/// bundle's embedding cache and drives it open-loop at --qps for
/// --seconds, reporting sustained QPS, end-to-end latency percentiles,
/// and how many requests admission control shed. --timeout_us stamps a
/// per-request deadline (expired requests are reported separately) and
/// --retry resubmits shed requests with jittered backoff.
int CmdServeLoad(const core::FlagParser& flags) {
  if (auto s = flags.RequireKnown(KnownFlags(
          {"model", "queue_capacity", "max_batch", "max_wait_us", "workers",
           "qps", "seconds", "pairs_per_request", "submitters", "seed",
           "timeout_us", "retry", "metrics_out"}));
      !s.ok()) {
    return Fail(s);
  }
  obs::MetricsRecorder recorder(flags.GetString("metrics_out", ""));
  std::optional<obs::ScopedMetricsEnabled> metrics_scope;
  if (recorder.active()) metrics_scope.emplace(true);
  auto corpus_or = LoadCorpus(flags);
  if (!corpus_or.ok()) return Fail(corpus_or.status());
  auto& corpus = corpus_or.value();
  auto hygnn_or =
      model::HyGnnModel::Load(flags.GetString("model", "model.bin"));
  if (!hygnn_or.ok()) return Fail(hygnn_or.status());
  auto& hygnn = hygnn_or.value();

  serve::EmbeddingStore store(&hygnn);
  if (auto s = store.Rebuild(corpus.context); !s.ok()) return Fail(s);

  serve::ServerOptions options;
  options.queue_capacity =
      static_cast<int32_t>(flags.GetInt("queue_capacity", 256));
  options.max_batch = static_cast<int32_t>(flags.GetInt("max_batch", 64));
  options.max_wait_us = flags.GetInt("max_wait_us", 1000);
  options.workers = static_cast<int32_t>(flags.GetInt("workers", 2));
  serve::Server server(&hygnn, &store, options);
  if (auto s = server.Start(); !s.ok()) return Fail(s);

  // A fixed pool of random in-catalog requests the submitters cycle
  // through; seeded, so two runs offer identical work.
  const int32_t catalog = store.num_drugs();
  if (catalog < 2) {
    return Fail(core::Status::FailedPrecondition(
        "serving catalog needs at least 2 drugs"));
  }
  const auto pairs_per_request =
      static_cast<int32_t>(flags.GetInt("pairs_per_request", 8));
  core::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 42)));
  std::vector<serve::ScoreRequest> pool(64);
  for (auto& request : pool) {
    request.pairs.reserve(static_cast<size_t>(pairs_per_request));
    for (int32_t i = 0; i < pairs_per_request; ++i) {
      const auto a = static_cast<int32_t>(
          rng.UniformInt(static_cast<uint64_t>(catalog)));
      auto b = static_cast<int32_t>(
          rng.UniformInt(static_cast<uint64_t>(catalog - 1)));
      if (b >= a) ++b;
      request.pairs.push_back({a, b, 0.0f});
    }
  }

  serve::LoadConfig load;
  load.offered_qps = flags.GetDouble("qps", 500.0);
  load.duration_seconds = flags.GetDouble("seconds", 2.0);
  load.submitters = static_cast<int32_t>(flags.GetInt("submitters", 2));
  // --timeout_us stamps a per-request deadline (0 = none); --retry
  // turns on jittered-backoff retries of shed/doomed submissions.
  load.timeout_us = flags.GetInt("timeout_us", 0);
  load.retry = flags.GetBool("retry", false);
  if (load.offered_qps <= 0.0 || load.duration_seconds <= 0.0 ||
      load.submitters < 1 || load.timeout_us < 0) {
    return Fail(core::Status::InvalidArgument(
        "--qps, --seconds and --timeout_us must be positive, "
        "--submitters >= 1"));
  }
  const auto report = serve::RunLoad(&server, pool, load);
  server.Shutdown();
  const auto stats = server.stats();

  std::printf("serve-load: offered %.0f req/s for %.1fs "
              "(workers=%d max_batch=%d max_wait_us=%lld queue=%d)\n",
              report.offered_qps, report.duration_seconds, options.workers,
              options.max_batch,
              static_cast<long long>(options.max_wait_us),
              options.queue_capacity);
  std::printf("  requests %llu (%llu attempts)  completed %llu  shed %llu  "
              "failed %llu  expired %llu\n",
              static_cast<unsigned long long>(report.submitted),
              static_cast<unsigned long long>(report.attempts),
              static_cast<unsigned long long>(report.completed),
              static_cast<unsigned long long>(report.shed),
              static_cast<unsigned long long>(report.failed),
              static_cast<unsigned long long>(report.expired));
  if (load.retry) {
    std::printf("  retries: %llu backed-off resubmits, %llu eventually "
                "accepted\n",
                static_cast<unsigned long long>(report.retried),
                static_cast<unsigned long long>(report.retried_ok));
  }
  std::printf("  sustained %.0f req/s  latency p50 %.0f us  p95 %.0f us  "
              "p99 %.0f us\n",
              report.sustained_qps, report.p50_us, report.p95_us,
              report.p99_us);
  std::printf("  server: %llu batches for %llu requests (%.1f req/batch)\n",
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.completed),
              stats.batches > 0
                  ? static_cast<double>(stats.completed) /
                        static_cast<double>(stats.batches)
                  : 0.0);
  if (recorder.active()) {
    if (auto s = recorder.Flush(); !s.ok()) return Fail(s);
    std::printf("wrote metrics to %s\n", recorder.path().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  core::FlagParser flags;
  if (!flags.Parse(argc, argv).ok() || flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: hygnn_cli "
                 "<generate|train|evaluate|predict|screen|serve-load> "
                 "[flags]\n");
    return 1;
  }
  const std::string& command = flags.positional()[0];
  if (command == "generate") return CmdGenerate(flags);
  if (command == "train") return CmdTrain(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "predict") return CmdPredict(flags);
  if (command == "screen") return CmdScreen(flags);
  if (command == "serve-load") return CmdServeLoad(flags);
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 1;
}
