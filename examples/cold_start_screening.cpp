// Cold-start screening: predict interaction partners for a drug that
// was never seen during training — the paper's motivating scenario for
// a SMILES-only model ("applicable to any drugs, including new drugs").
//
// The new drug enters the system as a raw SMILES string. Its hyperedge
// is built by segmenting that SMILES against the existing substructure
// vocabulary (`SegmentNewSmiles`); no interaction data for it exists
// anywhere in training. The trained model then screens it against the
// whole library and prints the strongest predicted interactions, with
// the generator's latent rule as the external validator.
//
// Build & run:  ./build/examples/cold_start_screening

#include <algorithm>
#include <cstdio>
#include <vector>

#include "data/featurize.h"
#include "data/generator.h"
#include "data/pairs.h"
#include "graph/builders.h"
#include "hygnn/model.h"
#include "hygnn/trainer.h"

int main() {
  using namespace hygnn;

  // Corpus and featurization. The last drug plays the "new drug": its
  // pairs are stripped from training and its SMILES is treated as the
  // only thing we know about it.
  data::DatasetConfig data_config;
  data_config.num_drugs = 140;
  data_config.seed = 555;
  auto dataset = data::GenerateDataset(data_config).value();
  const int32_t new_drug = dataset.num_drugs() - 1;
  const auto& new_record = dataset.drugs()[static_cast<size_t>(new_drug)];
  std::printf("new drug: %s (%s)\n  SMILES: %s\n",
              new_record.drugbank_id.c_str(), new_record.name.c_str(),
              new_record.smiles.c_str());

  data::FeaturizeConfig feat_config;
  feat_config.mode = data::SubstructureMode::kEspf;
  feat_config.espf_frequency_threshold = 3;
  auto featurizer =
      data::SubstructureFeaturizer::Build(dataset.drugs(), feat_config)
          .value();

  // Demonstrate the inductive path: re-derive the new drug's hyperedge
  // from its raw SMILES against the frozen vocabulary, exactly as an
  // external user would for a molecule we have never featurized.
  auto new_substructures =
      featurizer.SegmentNewSmiles(new_record.smiles).value();
  std::printf("  decomposes into %zu known substructures\n\n",
              new_substructures.size());
  auto memberships = featurizer.drug_substructures();
  memberships[static_cast<size_t>(new_drug)] = new_substructures;

  auto hypergraph = graph::BuildDrugHypergraph(
      memberships, featurizer.num_substructures());
  auto context = model::HypergraphContext::FromHypergraph(hypergraph);

  // Train with every pair touching the new drug withheld.
  core::Rng rng(99);
  auto pairs = data::BuildBalancedPairs(dataset, &rng);
  auto cold = data::ColdStartSplit(pairs, {new_drug});
  std::printf("training on %zu pairs (all %zu pairs of the new drug "
              "withheld)\n",
              cold.train.size(), cold.test.size());

  core::Rng model_rng(17);
  model::HyGnnConfig config;
  config.encoder.hidden_dim = 64;
  config.encoder.output_dim = 64;
  model::HyGnnModel hygnn(featurizer.num_substructures(), config,
                          &model_rng);
  model::TrainConfig train_config;
  train_config.epochs = 150;
  model::HyGnnTrainer trainer(&hygnn, train_config);
  trainer.Fit(context, cold.train);

  // Screen the new drug against the entire library.
  std::vector<data::LabeledPair> screen;
  for (int32_t candidate = 0; candidate < dataset.num_drugs();
       ++candidate) {
    if (candidate == new_drug) continue;
    screen.push_back({new_drug, candidate, 0.0f});
  }
  auto scores = hygnn.PredictProbabilities(context, screen);

  std::vector<size_t> order(screen.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&scores](size_t a, size_t b) { return scores[a] > scores[b]; });

  std::printf("\ntop predicted interaction partners:\n");
  std::printf("%-10s %-22s %8s %10s\n", "Drug", "Name", "score",
              "oracle");
  int correct = 0;
  const size_t top_k = 10;
  for (size_t rank = 0; rank < top_k; ++rank) {
    const auto& pair = screen[order[rank]];
    const auto& partner = dataset.drugs()[static_cast<size_t>(pair.b)];
    const bool oracle = dataset.OracleInteracts(pair.a, pair.b);
    if (oracle) ++correct;
    std::printf("%-10s %-22s %8.3f %10s\n", partner.drugbank_id.c_str(),
                partner.name.c_str(), scores[order[rank]],
                oracle ? "interacts" : "-");
  }
  std::printf("\nprecision@%zu against the latent rule: %.2f\n", top_k,
              static_cast<double>(correct) / top_k);
  return 0;
}
