// Quickstart: the whole HyGNN pipeline in ~80 lines.
//
//   1. Generate a synthetic DrugBank-like corpus (drugs with SMILES and
//      known DDIs).
//   2. Mine frequent substructures from the SMILES with ESPF.
//   3. Build the drug hypergraph (substructures = nodes, drugs =
//      hyperedges).
//   4. Train HyGNN (hypergraph edge encoder + MLP decoder).
//   5. Evaluate on held-out pairs and score a few individual pairs.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "data/featurize.h"
#include "data/generator.h"
#include "data/pairs.h"
#include "graph/builders.h"
#include "hygnn/model.h"
#include "hygnn/trainer.h"

int main() {
  using namespace hygnn;

  // 1. Synthetic corpus: 120 drugs assembled from functional-group
  //    fragments; DDIs follow a latent reactive-pair rule.
  data::DatasetConfig data_config;
  data_config.num_drugs = 120;
  data_config.seed = 2024;
  auto dataset = data::GenerateDataset(data_config).value();
  std::printf("corpus: %d drugs, %zu known DDIs\n", dataset.num_drugs(),
              dataset.positives().size());
  std::printf("example drug %s (%s): %s\n",
              dataset.drugs()[0].drugbank_id.c_str(),
              dataset.drugs()[0].name.c_str(),
              dataset.drugs()[0].smiles.c_str());

  // 2. ESPF substructure mining (threshold 3 for this small corpus; the
  //    paper uses 5 on full DrugBank).
  data::FeaturizeConfig feat_config;
  feat_config.mode = data::SubstructureMode::kEspf;
  feat_config.espf_frequency_threshold = 3;
  auto featurizer =
      data::SubstructureFeaturizer::Build(dataset.drugs(), feat_config)
          .value();
  std::printf("ESPF vocabulary: %d substructures\n",
              featurizer.num_substructures());

  // 3. Drug hypergraph: each drug is a hyperedge over its substructures.
  auto hypergraph = graph::BuildDrugHypergraph(
      featurizer.drug_substructures(), featurizer.num_substructures());
  std::printf("hypergraph: %d nodes, %d hyperedges, %lld incidences\n",
              hypergraph.num_nodes(), hypergraph.num_edges(),
              static_cast<long long>(hypergraph.num_incidences()));
  auto context = model::HypergraphContext::FromHypergraph(hypergraph);

  // Balanced positive/negative pairs, 70/30 split (paper protocol).
  core::Rng rng(7);
  auto pairs = data::BuildBalancedPairs(dataset, &rng);
  auto split = data::RandomSplit(pairs, 0.7, &rng);

  // 4. HyGNN: single-layer hypergraph edge encoder with two attention
  //    levels + MLP decoder, Adam at lr 0.01 (paper settings).
  core::Rng model_rng(13);
  model::HyGnnConfig config;
  config.encoder.hidden_dim = 64;
  config.encoder.output_dim = 64;
  config.decoder = model::DecoderKind::kMlp;
  model::HyGnnModel hygnn(featurizer.num_substructures(), config,
                          &model_rng);
  model::TrainConfig train_config;
  train_config.epochs = 150;
  train_config.verbose = true;
  train_config.log_every = 50;
  model::HyGnnTrainer trainer(&hygnn, train_config);
  std::printf("training on %zu pairs...\n", split.train.size());
  trainer.Fit(context, split.train);

  // 5. Held-out evaluation + a few individual predictions.
  auto metrics = trainer.Evaluate(context, split.test);
  std::printf("test: F1 %.3f  ROC-AUC %.3f  PR-AUC %.3f\n", metrics.f1,
              metrics.roc_auc, metrics.pr_auc);

  std::vector<data::LabeledPair> queries(split.test.begin(),
                                         split.test.begin() + 5);
  auto scores = hygnn.PredictProbabilities(context, queries);
  std::printf("\nsample predictions:\n");
  for (size_t i = 0; i < queries.size(); ++i) {
    std::printf("  %s + %s -> %.3f (label %d)\n",
                dataset.drugs()[queries[i].a].drugbank_id.c_str(),
                dataset.drugs()[queries[i].b].drugbank_id.c_str(),
                scores[i], static_cast<int>(queries[i].label));
  }
  return 0;
}
