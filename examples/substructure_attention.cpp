// Substructure attention analysis: the interpretability angle of the
// paper. HyGNN's node-level attention (eq. 8) assigns each substructure
// a weight inside every drug's hyperedge — "not all but a few
// substructures are mainly significant in terms of chemical reactions".
//
// This example trains HyGNN, captures an AttentionSnapshot, and prints
// each sampled drug's substructures ranked by learned attention, so you
// can see which functional groups the model considers load-bearing.
//
// Build & run:  ./build/examples/substructure_attention

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "data/featurize.h"
#include "data/generator.h"
#include "data/pairs.h"
#include "graph/builders.h"
#include "hygnn/model.h"
#include "hygnn/trainer.h"

int main() {
  using namespace hygnn;

  data::DatasetConfig data_config;
  data_config.num_drugs = 120;
  data_config.seed = 321;
  auto dataset = data::GenerateDataset(data_config).value();

  data::FeaturizeConfig feat_config;
  feat_config.mode = data::SubstructureMode::kEspf;
  feat_config.espf_frequency_threshold = 3;
  auto featurizer =
      data::SubstructureFeaturizer::Build(dataset.drugs(), feat_config)
          .value();

  auto hypergraph = graph::BuildDrugHypergraph(
      featurizer.drug_substructures(), featurizer.num_substructures());
  auto context = model::HypergraphContext::FromHypergraph(hypergraph);

  core::Rng rng(1);
  auto pairs = data::BuildBalancedPairs(dataset, &rng);
  auto split = data::RandomSplit(pairs, 0.7, &rng);

  core::Rng model_rng(2);
  model::HyGnnConfig config;
  config.encoder.hidden_dim = 64;
  config.encoder.output_dim = 64;
  model::HyGnnModel hygnn(featurizer.num_substructures(), config,
                          &model_rng);
  model::TrainConfig train_config;
  train_config.epochs = 150;
  model::HyGnnTrainer trainer(&hygnn, train_config);
  trainer.Fit(context, split.train);
  auto metrics = trainer.Evaluate(context, split.test);
  std::printf("trained HyGNN: test ROC-AUC %.3f\n\n", metrics.roc_auc);

  // Capture the attention coefficients of a full forward pass.
  model::AttentionSnapshot attention;
  hygnn.EmbedDrugs(context, /*training=*/false, nullptr, &attention);

  // Group the node-level attention X_ji by drug (hyperedge).
  std::map<int32_t, std::vector<std::pair<float, int32_t>>> per_drug;
  for (size_t pair_index = 0; pair_index < attention.node_level.size();
       ++pair_index) {
    per_drug[context.pair_edges[pair_index]].push_back(
        {attention.node_level[pair_index],
         context.pair_nodes[pair_index]});
  }

  for (int32_t drug : {0, 1, 2}) {
    const auto& record = dataset.drugs()[static_cast<size_t>(drug)];
    std::printf("%s (%s)  SMILES: %s\n", record.drugbank_id.c_str(),
                record.name.c_str(), record.smiles.c_str());
    auto& weighted = per_drug[drug];
    std::sort(weighted.begin(), weighted.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::printf("  %-20s %s\n", "substructure", "attention");
    const size_t show = std::min<size_t>(6, weighted.size());
    for (size_t i = 0; i < show; ++i) {
      std::printf("  %-20s %9.3f%s\n",
                  featurizer.vocabulary().Text(weighted[i].second).c_str(),
                  weighted[i].first,
                  i == 0 ? "   <- most significant" : "");
    }
    std::printf("\n");
  }

  // Aggregate view: the globally most-attended substructures.
  std::map<int32_t, double> global;
  for (size_t pair_index = 0; pair_index < attention.node_level.size();
       ++pair_index) {
    global[context.pair_nodes[pair_index]] +=
        attention.node_level[pair_index];
  }
  std::vector<std::pair<double, int32_t>> ranked;
  for (const auto& [node, total] : global) ranked.push_back({total, node});
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("globally most-attended substructures:\n");
  for (size_t i = 0; i < std::min<size_t>(10, ranked.size()); ++i) {
    std::printf("  %-20s total attention %.2f across %lld drugs\n",
                featurizer.vocabulary().Text(ranked[i].second).c_str(),
                ranked[i].first,
                static_cast<long long>(
                    hypergraph.NodeDegree(ranked[i].second)));
  }
  return 0;
}
