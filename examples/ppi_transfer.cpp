// Protein-protein interaction (PPI) transfer: the paper's conclusion
// names PPI prediction as future work ("we plan to extend our model to
// address other problems in bioinformatics like protein-protein
// interaction prediction"). This example shows that nothing in the
// library is SMILES-specific: the same hypergraph-edge-encoder pipeline
// runs on amino-acid sequences.
//
//   * proteins  = hyperedges, sequence k-mers = nodes,
//   * a latent motif-pair rule generates interactions,
//   * HyGNN predicts held-out protein pairs.
//
// Build & run:  ./build/examples/ppi_transfer

#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "chem/kmer.h"
#include "chem/vocab.h"
#include "core/rng.h"
#include "data/drug.h"
#include "data/pairs.h"
#include "graph/builders.h"
#include "hygnn/model.h"
#include "hygnn/trainer.h"

namespace {

using namespace hygnn;

constexpr const char* kAminoAcids = "ACDEFGHIKLMNPQRSTVWY";

/// Sequence motifs that drive interactions (stand-ins for binding
/// domains). Proteins carrying motifs from an interacting pair of
/// families bind each other.
const std::vector<std::string> kMotifs = {
    "WWPWW", "HKHKH", "DEDED", "FYFYF", "CCGCC",
    "RKRKR", "QNQNQ", "LLVLL", "TSTST", "MGMGM",
};
const std::vector<std::pair<int, int>> kBindingRule = {
    {0, 1}, {2, 5}, {3, 3}, {4, 8}, {6, 9}, {7, 2}};

struct Protein {
  std::string sequence;
  std::vector<int> motifs;
};

Protein MakeProtein(core::Rng* rng) {
  Protein protein;
  const size_t num_motifs = 1 + rng->UniformInt(3);
  auto picks = rng->SampleWithoutReplacement(kMotifs.size(), num_motifs);
  for (size_t pick : picks) protein.motifs.push_back(static_cast<int>(pick));
  // Random residues interleaved with the motifs.
  auto random_run = [rng]() {
    std::string run;
    const size_t len = 4 + rng->UniformInt(10);
    for (size_t i = 0; i < len; ++i) {
      run += kAminoAcids[rng->UniformInt(20)];
    }
    return run;
  };
  protein.sequence = random_run();
  for (int motif : protein.motifs) {
    protein.sequence += kMotifs[static_cast<size_t>(motif)];
    protein.sequence += random_run();
  }
  return protein;
}

bool Binds(const Protein& a, const Protein& b) {
  for (const auto& [x, y] : kBindingRule) {
    const bool ax = std::find(a.motifs.begin(), a.motifs.end(), x) !=
                    a.motifs.end();
    const bool by = std::find(b.motifs.begin(), b.motifs.end(), y) !=
                    b.motifs.end();
    const bool ay = std::find(a.motifs.begin(), a.motifs.end(), y) !=
                    a.motifs.end();
    const bool bx = std::find(b.motifs.begin(), b.motifs.end(), x) !=
                    b.motifs.end();
    if ((ax && by) || (ay && bx)) return true;
  }
  return false;
}

}  // namespace

int main() {
  const int num_proteins = 120;
  core::Rng rng(777);
  std::vector<Protein> proteins;
  proteins.reserve(num_proteins);
  for (int i = 0; i < num_proteins; ++i) {
    proteins.push_back(MakeProtein(&rng));
  }
  std::printf("generated %d synthetic proteins (len %zu..%zu)\n",
              num_proteins, proteins[0].sequence.size(),
              proteins[1].sequence.size());

  // Featurize with sequence 4-mers — chem::ExtractKmers is just a
  // sequence operation; it never assumes SMILES.
  chem::SubstructureVocabulary vocab;
  std::vector<std::vector<int32_t>> memberships(proteins.size());
  for (size_t p = 0; p < proteins.size(); ++p) {
    auto kmers = chem::ExtractUniqueKmers(proteins[p].sequence, 4).value();
    for (const auto& kmer : kmers) {
      memberships[p].push_back(vocab.AddOrGet(kmer));
    }
  }
  std::printf("protein hypergraph: %d k-mer nodes, %d hyperedges\n",
              vocab.size(), num_proteins);

  auto hypergraph = graph::BuildDrugHypergraph(memberships, vocab.size());
  auto context = model::HypergraphContext::FromHypergraph(hypergraph);

  // Labeled pairs from the binding rule, balanced and split.
  std::vector<data::LabeledPair> positives, negatives;
  for (int32_t a = 0; a < num_proteins; ++a) {
    for (int32_t b = a + 1; b < num_proteins; ++b) {
      (Binds(proteins[static_cast<size_t>(a)],
             proteins[static_cast<size_t>(b)])
           ? positives
           : negatives)
          .push_back({a, b, 0.0f});
    }
  }
  rng.Shuffle(negatives);
  std::vector<data::LabeledPair> pairs;
  for (auto& p : positives) {
    p.label = 1.0f;
    pairs.push_back(p);
  }
  pairs.insert(pairs.end(), negatives.begin(),
               negatives.begin() +
                   std::min(positives.size(), negatives.size()));
  auto split = data::RandomSplit(pairs, 0.7, &rng);
  std::printf("PPI pairs: %zu positive / %zu total, 70/30 split\n",
              positives.size(), pairs.size());

  core::Rng model_rng(778);
  model::HyGnnConfig config;
  config.encoder.hidden_dim = 64;
  config.encoder.output_dim = 64;
  model::HyGnnModel hygnn(vocab.size(), config, &model_rng);
  model::TrainConfig train_config;
  train_config.epochs = 150;
  model::HyGnnTrainer trainer(&hygnn, train_config);
  trainer.Fit(context, split.train);

  auto metrics = trainer.Evaluate(context, split.test);
  std::printf("held-out PPI prediction: F1 %.3f  ROC-AUC %.3f  PR-AUC "
              "%.3f\n",
              metrics.f1, metrics.roc_auc, metrics.pr_auc);
  std::printf("\nThe identical encoder/decoder stack that predicts DDIs "
              "from SMILES\nsubstructures predicts PPIs from sequence "
              "motifs — the hypergraph\nformulation is domain-agnostic, "
              "as the paper's future-work section anticipates.\n");
  return 0;
}
