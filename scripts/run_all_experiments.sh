#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus the ablations and
# the typed extension, writing the combined log to bench_output.txt.
#
# Defaults are laptop scale; pass paper-scale flags through, e.g.
#   scripts/run_all_experiments.sh --drugs 824 --epochs 600 --runs 5
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure | tee test_output.txt

{
  for b in build/bench/bench_*; do
    [ -x "$b" ] || continue
    echo "===== $b ====="
    "$b" "$@"
  done
} 2>&1 | tee bench_output.txt
