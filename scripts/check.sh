#!/usr/bin/env bash
# Correctness gate: repo lint + sanitizer-clean test suite.
#
#   scripts/check.sh              # lint, then ctest under asan-ubsan
#   scripts/check.sh tsan         # same under ThreadSanitizer
#   scripts/check.sh debug        # plain Debug build (HYGNN_DCHECK on)
#
# Also runs clang-tidy over src/ when the binary is available; tidy
# findings are reported but only lint + tests gate the exit status.
set -euo pipefail
cd "$(dirname "$0")/.."

PRESET="${1:-asan-ubsan}"
JOBS="${JOBS:-$(nproc)}"

echo "== lint =="
python3 scripts/lint.py

echo "== configure (${PRESET}) =="
cmake --preset "${PRESET}" >/dev/null

echo "== build (${PRESET}) =="
cmake --build --preset "${PRESET}" -j "${JOBS}"

echo "== test (${PRESET}) =="
ctest --preset "${PRESET}" -j "${JOBS}"

# The thread-pool kernels, the serving engine (batched PairScorer
# chunks score on pool workers), and the obs layer (kernel-timer slot
# table aggregates spans from pool workers with relaxed atomics) are the
# concurrent code in the repo, so their tests always get a
# ThreadSanitizer pass, whatever preset the main suite ran under.
# Binaries are run directly (not via ctest) so a targeted build
# suffices.
if [[ "${PRESET}" != "tsan" ]]; then
  echo "== threaded tests (tsan) =="
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "${JOBS}" \
    --target thread_pool_test kernels_test serve_test obs_test
  HYGNN_NUM_THREADS=4 build-tsan/tests/thread_pool_test
  HYGNN_NUM_THREADS=4 build-tsan/tests/kernels_test
  HYGNN_NUM_THREADS=4 build-tsan/tests/serve_test
  HYGNN_NUM_THREADS=4 build-tsan/tests/obs_test
fi

# Durability tests (fault-injected crash-consistency + bit-identical
# resume) always run under AddressSanitizer/UBSan: a torn-write bug is
# most likely to show up as a heap overrun or uninitialized read while
# parsing a truncated file, which asan catches and a plain build may
# not. When the main suite already ran under asan-ubsan this is covered
# by ctest above.
if [[ "${PRESET}" != "asan-ubsan" ]]; then
  echo "== durability tests (asan-ubsan) =="
  cmake --preset asan-ubsan >/dev/null
  cmake --build --preset asan-ubsan -j "${JOBS}" \
    --target fs_fault_test checkpoint_test obs_test
  build-asan-ubsan/tests/fs_fault_test
  build-asan-ubsan/tests/checkpoint_test
  build-asan-ubsan/tests/obs_test
fi

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (advisory) =="
  # The preset build dir has a compile database when the generator
  # supports it; regenerate one explicitly to be safe.
  cmake --preset "${PRESET}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  find src -name '*.cc' -print0 |
    xargs -0 -n 8 clang-tidy -p "build-${PRESET}" --quiet || true
else
  echo "== clang-tidy not found; skipping advisory pass =="
fi

echo "check.sh: OK (${PRESET})"
