#!/usr/bin/env bash
# Correctness gate: repo lint + lint self-test + sanitizer-clean test
# suite + gating static analysis.
#
#   scripts/check.sh              # lint, then ctest under asan-ubsan
#   scripts/check.sh tsan         # same under ThreadSanitizer
#   scripts/check.sh debug        # plain Debug build (HYGNN_DCHECK on)
#
# Static analysis gates (both fail the script):
#   * scripts/tidy.py — clang-tidy against the frozen baseline in
#     scripts/tidy_baseline.json; new findings fail. Skipped with a
#     notice when clang-tidy is not installed (CI runs it with
#     --require).
#   * a clang++ build of src/ with -Werror=thread-safety, exercising
#     the HYGNN_GUARDED_BY annotations. Skipped when clang++ is not
#     installed (CI runs it unconditionally).
set -euo pipefail
cd "$(dirname "$0")/.."

PRESET="${1:-asan-ubsan}"
JOBS="${JOBS:-$(nproc)}"

echo "== lint =="
python3 scripts/lint.py

echo "== lint self-test =="
python3 tests/lint_test.py

# Re-configuring an already-configured tree costs several seconds and
# changes nothing unless the CMake inputs moved; `cmake --build` re-runs
# the generator itself when they did. Only configure from scratch.
configure_if_needed() {
  local preset="$1"; shift
  if [[ -f "build-${preset}/compile_commands.json" ]]; then
    echo "(build-${preset} already configured)"
  else
    cmake --preset "${preset}" "$@" >/dev/null
  fi
}

echo "== configure (${PRESET}) =="
configure_if_needed "${PRESET}"

echo "== build (${PRESET}) =="
cmake --build --preset "${PRESET}" -j "${JOBS}"

echo "== test (${PRESET}) =="
ctest --preset "${PRESET}" -j "${JOBS}"

# The thread-pool kernels, the serving engine (batched PairScorer
# chunks score on pool workers; serve::Server batches requests across
# submitter and scorer-worker threads), the obs layer (kernel-timer
# slot table aggregates spans from pool workers with relaxed atomics),
# and the tape executor (fused kernels run on pool workers; exec-stats
# counters and the fused-name intern table are shared) are the
# concurrent code in the repo, so their tests always get a
# ThreadSanitizer pass, whatever preset the main suite ran under.
# Binaries are run directly (not via ctest) so a targeted build
# suffices.
if [[ "${PRESET}" != "tsan" ]]; then
  echo "== threaded tests (tsan) =="
  configure_if_needed tsan
  cmake --build --preset tsan -j "${JOBS}" \
    --target thread_pool_test kernels_test serve_test server_test \
    server_chaos_test server_swap_test obs_test tape_test
  HYGNN_NUM_THREADS=4 build-tsan/tests/thread_pool_test
  HYGNN_NUM_THREADS=4 build-tsan/tests/kernels_test
  HYGNN_NUM_THREADS=4 build-tsan/tests/serve_test
  HYGNN_NUM_THREADS=4 build-tsan/tests/server_test
  HYGNN_NUM_THREADS=4 build-tsan/tests/server_chaos_test
  HYGNN_NUM_THREADS=4 build-tsan/tests/server_swap_test
  HYGNN_NUM_THREADS=4 build-tsan/tests/obs_test
  HYGNN_NUM_THREADS=4 build-tsan/tests/tape_test
fi

# Durability tests (fault-injected crash-consistency + bit-identical
# resume) always run under AddressSanitizer/UBSan: a torn-write bug is
# most likely to show up as a heap overrun or uninitialized read while
# parsing a truncated file, which asan catches and a plain build may
# not. When the main suite already ran under asan-ubsan this is covered
# by ctest above.
if [[ "${PRESET}" != "asan-ubsan" ]]; then
  echo "== durability tests (asan-ubsan) =="
  configure_if_needed asan-ubsan
  cmake --build --preset asan-ubsan -j "${JOBS}" \
    --target fs_fault_test checkpoint_test obs_test
  build-asan-ubsan/tests/fs_fault_test
  build-asan-ubsan/tests/checkpoint_test
  build-asan-ubsan/tests/obs_test
fi

echo "== clang-tidy (gating, baseline in scripts/tidy_baseline.json) =="
python3 scripts/tidy.py --build-dir "build-${PRESET}"

# Thread Safety Analysis needs clang to compile the annotated sources;
# the flags are wired in CMakeLists.txt and only light up for clang.
# Building the libraries is enough — TSA is a compile-time analysis.
if command -v clang++ >/dev/null 2>&1; then
  echo "== thread-safety analysis (clang -Werror=thread-safety) =="
  if [[ ! -f build-clang-tsa/CMakeCache.txt ]]; then
    cmake -B build-clang-tsa -S . \
      -DCMAKE_CXX_COMPILER=clang++ \
      -DHYGNN_NATIVE_ARCH=OFF >/dev/null
  fi
  cmake --build build-clang-tsa -j "${JOBS}"
else
  echo "== clang++ not found; skipping thread-safety analysis build =="
fi

echo "check.sh: OK (${PRESET})"
