#!/usr/bin/env python3
"""Gating clang-tidy runner with a checked-in finding baseline.

The old check.sh clang-tidy pass was advisory (`|| true`): findings
scrolled by and nothing failed. This runner makes clang-tidy a real
gate without forcing a big-bang cleanup:

  * every (file, check) pair's finding count is compared against the
    frozen counts in scripts/tidy_baseline.json;
  * a finding in a file/check pair that is NOT in the baseline — or a
    count above its frozen value — FAILS the gate (new debt is barred);
  * counts below the baseline are reported as stale entries (ratchet
    down by re-running with --update-baseline after paying debt off).

Usage:
  scripts/tidy.py [--build-dir DIR] [--update-baseline] [--require]

  --build-dir DIR    build tree holding compile_commands.json
                     (default: newest build*/ dir that has one; the
                     tree is configured with CMAKE_EXPORT_COMPILE_COMMANDS
                     on, so any configured preset dir works)
  --update-baseline  rewrite scripts/tidy_baseline.json from this run
  --require          fail (exit 2) when clang-tidy is missing instead
                     of skipping — CI sets this; local runs on boxes
                     without clang degrade to a no-op with a notice

Checks and per-check options come from .clang-tidy at the repo root.
Exit status: 0 clean/skipped, 1 new findings, 2 environment error.
"""

import argparse
import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO / "scripts" / "tidy_baseline.json"

# clang-tidy diagnostic line: "<path>:<line>:<col>: warning: <msg> [<check>]"
FINDING = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?:warning|error):\s+(?P<msg>.*?)\s+\[(?P<check>[A-Za-z0-9.,_-]+)\]$")


def find_clang_tidy():
    """The clang-tidy binary, preferring unversioned, then newest."""
    if shutil.which("clang-tidy"):
        return "clang-tidy"
    for version in range(25, 11, -1):
        name = f"clang-tidy-{version}"
        if shutil.which(name):
            return name
    return None


def tracked_sources():
    out = subprocess.run(
        ["git", "ls-files", "src/**/*.cc", "src/*.cc"], cwd=REPO,
        check=True, capture_output=True, text=True)
    return sorted(line for line in out.stdout.splitlines() if line)


def default_build_dir():
    """Newest build tree that already has a compile database."""
    candidates = [
        d for d in REPO.glob("build*")
        if (d / "compile_commands.json").is_file()
    ]
    if not candidates:
        return None
    return max(candidates,
               key=lambda d: (d / "compile_commands.json").stat().st_mtime)


def ensure_compile_db(build_dir):
    """Configures `build_dir` when its compile database is missing or
    predates a CMakeLists/preset edit. Skips the (slow) re-configure
    when the database is already current."""
    db = build_dir / "compile_commands.json"
    if db.is_file():
        inputs = [REPO / "CMakePresets.json", REPO / "CMakeLists.txt"]
        inputs += list(REPO.glob("src/**/CMakeLists.txt"))
        db_mtime = db.stat().st_mtime
        if all(not p.exists() or p.stat().st_mtime <= db_mtime
               for p in inputs):
            return True
        print(f"tidy.py: {db} is stale; re-configuring", file=sys.stderr)
    result = subprocess.run(
        ["cmake", "-B", str(build_dir), "-S", str(REPO),
         "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON"],
        capture_output=True, text=True)
    if result.returncode != 0:
        print(result.stderr, file=sys.stderr)
        print(f"tidy.py: cmake configure of {build_dir} failed",
              file=sys.stderr)
        return False
    return db.is_file()


def run_clang_tidy(binary, build_dir, sources):
    """Findings as {(relpath, check): [finding line, ...]}, deduplicated
    by (path, line, col, check) so a header diagnosed from several
    translation units counts once."""
    findings = {}
    seen = set()
    batch = 8
    for start in range(0, len(sources), batch):
        chunk = sources[start:start + batch]
        result = subprocess.run(
            [binary, "-p", str(build_dir), "--quiet"] + chunk,
            cwd=REPO, capture_output=True, text=True)
        for raw in result.stdout.splitlines():
            match = FINDING.match(raw)
            if not match:
                continue
            path = Path(match.group("path"))
            if path.is_absolute():
                try:
                    path = path.relative_to(REPO)
                except ValueError:
                    continue  # system header — not ours to baseline
            rel = path.as_posix()
            if not rel.startswith("src/"):
                continue
            dedupe = (rel, match.group("line"), match.group("col"),
                      match.group("check"))
            if dedupe in seen:
                continue
            seen.add(dedupe)
            for check in match.group("check").split(","):
                findings.setdefault((rel, check), []).append(
                    f"{rel}:{match.group('line')}:{match.group('col')}: "
                    f"{match.group('msg')} [{check}]")
    return findings


def load_baseline():
    if not BASELINE_PATH.is_file():
        return {}
    data = json.loads(BASELINE_PATH.read_text())
    return data.get("findings", {})


def write_baseline(findings):
    payload = {
        "_format": (
            "\"<file>|<check>\" -> frozen finding count. Existing debt "
            "is tolerated at exactly this count; new or increased "
            "findings fail scripts/tidy.py. Regenerate with "
            "scripts/tidy.py --update-baseline after paying debt down "
            "(never to admit new debt)."),
        "findings": {
            f"{path}|{check}": len(lines)
            for (path, check), lines in sorted(findings.items())
        },
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def gate(findings, baseline):
    """(new_finding_lines, stale_keys): lines over baseline, and
    baseline keys whose debt shrank or vanished."""
    new_lines = []
    counted = {}
    for (path, check), lines in sorted(findings.items()):
        key = f"{path}|{check}"
        counted[key] = len(lines)
        allowed = baseline.get(key, 0)
        if len(lines) > allowed:
            # All of the pair's findings are listed (line numbers drift,
            # so naming the specific "new" one is impossible) — but only
            # pairs over budget fail.
            new_lines.append(
                f"  {key}: {len(lines)} finding(s), baseline allows "
                f"{allowed}")
            new_lines.extend(f"    {line}" for line in lines)
    stale = [
        key for key, allowed in sorted(baseline.items())
        if counted.get(key, 0) < allowed
    ]
    return new_lines, stale


def main():
    parser = argparse.ArgumentParser(
        description="clang-tidy with a frozen-debt baseline gate")
    parser.add_argument("--build-dir", type=Path, default=None)
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("--require", action="store_true",
                        help="missing clang-tidy is an error, not a skip")
    args = parser.parse_args()

    binary = find_clang_tidy()
    if binary is None:
        message = ("tidy.py: clang-tidy not found — the baseline gate "
                   "did not run")
        if args.require:
            print(message + " (--require set)", file=sys.stderr)
            return 2
        print(message + "; install clang-tidy to run it locally")
        return 0

    build_dir = args.build_dir or default_build_dir()
    if build_dir is None:
        build_dir = REPO / "build"
    build_dir = build_dir if build_dir.is_absolute() else REPO / build_dir
    if not ensure_compile_db(build_dir):
        print("tidy.py: no compile_commands.json available", file=sys.stderr)
        return 2

    sources = tracked_sources()
    findings = run_clang_tidy(binary, build_dir, sources)

    if args.update_baseline:
        write_baseline(findings)
        total = sum(len(lines) for lines in findings.values())
        print(f"tidy.py: baseline rewritten — {total} finding(s) across "
              f"{len(findings)} file/check pair(s)")
        return 0

    baseline = load_baseline()
    new_lines, stale = gate(findings, baseline)
    if stale:
        print("tidy.py: stale baseline entries (debt was paid down — "
              "ratchet with --update-baseline):")
        for key in stale:
            print(f"  {key}")
    if new_lines:
        print("tidy.py: NEW clang-tidy findings (not in "
              "scripts/tidy_baseline.json):", file=sys.stderr)
        for line in new_lines:
            print(line, file=sys.stderr)
        print("tidy.py: fix the findings (preferred) or, for "
              "deliberate debt, re-baseline with --update-baseline",
              file=sys.stderr)
        return 1
    total = sum(len(lines) for lines in findings.values())
    print(f"tidy.py: clean — {total} finding(s), all within baseline "
          f"({len(sources)} sources)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
