#!/usr/bin/env python3
"""Repository convention linter (run by scripts/check.sh and CI).

Checks, over *tracked* files only (git ls-files):
  1. include guards match the file path (HYGNN_<PATH>_H_, src/ stripped)
  2. no `using namespace` in headers
  3. every .cc under src/ is listed in its directory's CMakeLists.txt
  4. no raw assert( in src/ — use HYGNN_CHECK / HYGNN_DCHECK
  5. no committed build artifacts (build trees, objects, caches)
  6. src/tensor/ops.cc contains no raw compute loops — numeric work
     belongs in src/tensor/kernels/ (the autograd layer only does shape
     checks and graph wiring)
  7. no raw std::ofstream/std::ifstream/std::fstream under src/serve/ or
     src/data/ — persistence there must go through core::FileSystem
     (src/core/fs.h) so fault injection and the durable-write protocol
     (temp + fsync + rename + checksum footer) cover every byte on disk
  8. no ad-hoc core::Stopwatch timing under src/hygnn/ or src/serve/ —
     hot-path timing there must go through the observability layer
     (obs::Timer / obs::ScopedTimer, src/obs/metrics.h) so every sample
     lands in the shared registry instead of a one-off log line

Determinism & concurrency discipline (rules 9-12, DISCIPLINE_RULES;
these keep every nondeterminism source inside its sanctioned home so
the bit-identity guarantee survives concurrent code):

  9. no rand()/srand()/std::random_device/std::mt19937 outside
     src/core/rng and tests/ — all randomness flows through the seeded
     core::Rng stream, which checkpoints pin for bit-identical resume
 10. no wall clocks (system_clock / high_resolution_clock) anywhere in
     src/, bench/, or examples/, and no raw steady_clock reads outside
     src/obs/ and src/core/ — timing goes through obs (Timer,
     NowNanos) or core::Stopwatch so no clock read can leak into
     computed results
 11. no raw std::thread or .detach() outside src/core/thread_pool —
     concurrency runs on the shared pool whose grain-based chunking is
     what makes parallel results bit-identical
 12. no bare std::mutex / std::condition_variable / std::lock_guard /
     std::unique_lock / std::scoped_lock outside src/core/ — locking
     routes through the annotated core::Mutex wrappers
     (src/core/mutex.h) so Clang Thread Safety Analysis sees every
     acquisition
 13. src/tensor/ops.cc never invokes the kernel layer directly (no
     `kernels::` calls, no `#include "tensor/kernels/...`) — ops only
     *record* tape nodes (tensor/tape.h); all kernel dispatch lives in
     the tape executor, which is what lets the fusion pass rewrite
     execution without touching the op API

Exits 0 when clean, 1 with one line per violation otherwise.
"""

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

BUILD_ARTIFACT_PATTERNS = [
    re.compile(r"^build[^/]*/"),
    re.compile(r"^cmake-build[^/]*/"),
    re.compile(r"\.(o|a|so|obj|exe)$"),
    re.compile(r"(^|/)CMakeCache\.txt$"),
    re.compile(r"(^|/)CMakeFiles/"),
    re.compile(r"(^|/)compile_commands\.json$"),
]

RAW_ASSERT = re.compile(r"(?<![\w_])assert\s*\(")
USING_NAMESPACE = re.compile(r"^\s*using\s+namespace\b")
LINE_COMMENT = re.compile(r"//.*$")
RAW_LOOP = re.compile(r"(?<![\w_])(for|while)\s*\(")

# Files that must stay loop-free: the autograd layer delegates all
# numeric iteration to the kernel layer (src/tensor/kernels/).
NO_LOOP_FILES = {"src/tensor/ops.cc"}

RAW_KERNEL_CALL = re.compile(
    r"\bkernels\s*::\s*\w+|#\s*include\s*\"tensor/kernels/")

# Files that must never invoke the kernel layer: the op layer records
# tape nodes only (tensor/tape.h); dispatch belongs to the executor.
NO_KERNEL_CALL_FILES = {"src/tensor/ops.cc"}

RAW_FILE_STREAM = re.compile(
    r"(?:std::)?(?:o|i)?fstream\b|#\s*include\s*<fstream>")

# Directories whose persistence must route through core::FileSystem:
# a raw stream bypasses fault injection, the atomic temp+fsync+rename
# protocol, and checksum footers, so a crash there can tear files.
NO_RAW_STREAM_DIRS = ("src/serve/", "src/data/")

RAW_STOPWATCH = re.compile(
    r"\bStopwatch\b|#\s*include\s*\"core/stopwatch\.h\"")

# Directories whose timing must route through the obs layer: an ad-hoc
# Stopwatch produces a measurement no registry snapshot, histogram, or
# metrics file ever sees.
NO_STOPWATCH_DIRS = ("src/hygnn/", "src/serve/")

# Rules 9-12: each nondeterminism / concurrency primitive is confined
# to a sanctioned home. A rule applies to files whose repo-relative path
# starts with a `scope` prefix and none of the `exempt` prefixes;
# matching is over comment-stripped lines.
DISCIPLINE_RULES = (
    {
        "rule": 9,
        "pattern": re.compile(
            r"(?<![\w_])(?:std\s*::\s*)?s?rand\s*\("
            r"|std\s*::\s*random_device"
            r"|std\s*::\s*(?:mt19937|minstd_rand|default_random_engine)"),
        "scope": ("src/", "bench/", "examples/"),
        "exempt": ("src/core/rng.",),
        "message": (
            "ad-hoc RNG — randomness must flow through the seeded "
            "core::Rng stream (src/core/rng.h) so checkpoints can pin "
            "and replay it bit-identically"),
    },
    {
        "rule": 10,
        "pattern": re.compile(
            r"\b(?:system_clock|high_resolution_clock)\b"),
        "scope": ("src/", "bench/", "examples/"),
        "exempt": (),
        "message": (
            "wall clock — system_clock/high_resolution_clock are "
            "nondeterministic across runs; use std::chrono::steady_clock "
            "via obs::Timer / obs::NowNanos or core::Stopwatch"),
    },
    {
        "rule": 10,
        "pattern": re.compile(r"\bsteady_clock\b"),
        "scope": ("src/",),
        "exempt": ("src/obs/", "src/core/"),
        "message": (
            "raw steady_clock read — timing outside src/obs and "
            "src/core goes through obs::Timer / obs::ScopedTimer / "
            "obs::NowNanos so every sample reaches the metrics registry"),
    },
    {
        "rule": 11,
        "pattern": re.compile(r"\bstd\s*::\s*thread\b|\.\s*detach\s*\("),
        "scope": ("src/", "bench/", "examples/"),
        "exempt": ("src/core/thread_pool.",),
        "message": (
            "raw std::thread — concurrency runs on core::ParallelFor "
            "(src/core/thread_pool.h), whose fixed grain chunking keeps "
            "results bit-identical at any thread count"),
    },
    {
        "rule": 12,
        "pattern": re.compile(
            r"\bstd\s*::\s*(?:mutex|recursive_mutex|timed_mutex"
            r"|recursive_timed_mutex|shared_mutex|shared_timed_mutex"
            r"|condition_variable|condition_variable_any|lock_guard"
            r"|unique_lock|scoped_lock)\b"),
        "scope": ("src/", "bench/", "examples/"),
        "exempt": ("src/core/",),
        "message": (
            "bare std mutex primitive — use the annotated core::Mutex / "
            "core::MutexLock / core::CondVar (src/core/mutex.h) so Clang "
            "Thread Safety Analysis sees the acquisition"),
    },
)


def tracked_files():
    out = subprocess.run(
        ["git", "ls-files"], cwd=REPO, check=True, capture_output=True,
        text=True)
    return [line for line in out.stdout.splitlines() if line]


def expected_guard(path):
    """src/tensor/debug.h -> HYGNN_TENSOR_DEBUG_H_ ; tests/gradcheck.h ->
    HYGNN_TESTS_GRADCHECK_H_ (the src/ prefix is dropped, others kept)."""
    parts = Path(path).parts
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"\.h$", "", stem)
    stem = re.sub(r"[^A-Za-z0-9]", "_", stem).upper()
    return f"HYGNN_{stem}_H_"


def check_include_guard(path, text, problems):
    guard = expected_guard(path)
    lines = text.splitlines()
    head = [ln for ln in lines[:10] if ln.strip()]
    ifndef = next((ln for ln in head if ln.startswith("#ifndef")), None)
    define = next((ln for ln in head if ln.startswith("#define")), None)
    if ifndef is None or define is None:
        problems.append(f"{path}: missing include guard (expected {guard})")
        return
    if ifndef.split()[1] != guard or define.split()[1] != guard:
        problems.append(
            f"{path}: include guard {ifndef.split()[1]} does not match "
            f"path (expected {guard})")
    if not any(guard in ln for ln in lines[-3:] if ln.strip()):
        problems.append(f"{path}: closing #endif not annotated with {guard}")


def check_using_namespace(path, text, problems):
    for i, line in enumerate(text.splitlines(), 1):
        code = LINE_COMMENT.sub("", line)
        if USING_NAMESPACE.search(code):
            problems.append(
                f"{path}:{i}: `using namespace` in a header leaks into "
                "every includer")


def check_raw_assert(path, text, problems):
    for i, line in enumerate(text.splitlines(), 1):
        code = LINE_COMMENT.sub("", line).replace("static_assert", "")
        if RAW_ASSERT.search(code):
            problems.append(
                f"{path}:{i}: raw assert() — use HYGNN_CHECK (always on) "
                "or HYGNN_DCHECK (debug only)")


def check_no_raw_loops(path, text, problems):
    """The autograd layer (ops.cc) must contain zero numeric loops —
    every for/while is compute that belongs in tensor/kernels/."""
    in_block_comment = False
    for i, line in enumerate(text.splitlines(), 1):
        code = line
        if in_block_comment:
            end = code.find("*/")
            if end < 0:
                continue
            code = code[end + 2:]
            in_block_comment = False
        while "/*" in code:
            start = code.find("/*")
            end = code.find("*/", start + 2)
            if end < 0:
                code = code[:start]
                in_block_comment = True
                break
            code = code[:start] + code[end + 2:]
        code = LINE_COMMENT.sub("", code)
        if RAW_LOOP.search(code):
            problems.append(
                f"{path}:{i}: raw loop in the autograd layer — move the "
                "compute into src/tensor/kernels/ and call the kernel")


def check_no_kernel_calls(path, text, problems):
    """Rule 13: the op layer records tape nodes; it never dispatches to
    the kernel layer itself (that is the tape executor's job)."""
    in_block_comment = False
    for i, line in enumerate(text.splitlines(), 1):
        code = line
        if in_block_comment:
            end = code.find("*/")
            if end < 0:
                continue
            code = code[end + 2:]
            in_block_comment = False
        while "/*" in code:
            start = code.find("/*")
            end = code.find("*/", start + 2)
            if end < 0:
                code = code[:start]
                in_block_comment = True
                break
            code = code[:start] + code[end + 2:]
        code = LINE_COMMENT.sub("", code)
        if RAW_KERNEL_CALL.search(code):
            problems.append(
                f"{path}:{i}: [rule 13] direct kernel invocation in the "
                "op layer — record a tape node (tensor/tape.h) and let "
                "the executor dispatch it")


def check_no_stopwatch(path, text, problems):
    for i, line in enumerate(text.splitlines(), 1):
        code = LINE_COMMENT.sub("", line)
        if RAW_STOPWATCH.search(code):
            problems.append(
                f"{path}:{i}: ad-hoc core::Stopwatch timing — use "
                "obs::Timer / obs::ScopedTimer (src/obs/metrics.h) so the "
                "sample reaches the metrics registry")


def check_no_raw_file_streams(path, text, problems):
    for i, line in enumerate(text.splitlines(), 1):
        code = LINE_COMMENT.sub("", line)
        if RAW_FILE_STREAM.search(code):
            problems.append(
                f"{path}:{i}: raw std::fstream I/O — use core::FileSystem "
                "(src/core/fs.h) so durable writes and fault injection "
                "cover this path")


def discipline_rules_for(path):
    """The subset of DISCIPLINE_RULES that applies to `path`."""
    return [
        rule for rule in DISCIPLINE_RULES
        if path.startswith(tuple(rule["scope"]))
        and not path.startswith(tuple(rule["exempt"]))
    ]


def check_discipline(path, text, problems):
    """Rules 9-12: confined nondeterminism / concurrency primitives."""
    rules = discipline_rules_for(path)
    if not rules:
        return
    for i, line in enumerate(text.splitlines(), 1):
        code = LINE_COMMENT.sub("", line)
        for rule in rules:
            if rule["pattern"].search(code):
                problems.append(
                    f"{path}:{i}: [rule {rule['rule']}] {rule['message']}")


def check_cmake_listing(files, problems):
    cmake_cache = {}
    for path in files:
        p = Path(path)
        if p.suffix != ".cc" or p.parts[0] != "src":
            continue
        cmake = p.parent / "CMakeLists.txt"
        if str(cmake) not in cmake_cache:
            full = REPO / cmake
            cmake_cache[str(cmake)] = (
                full.read_text() if full.exists() else None)
        text = cmake_cache[str(cmake)]
        if text is None:
            problems.append(f"{path}: no {cmake} to register it in")
        elif not re.search(rf"\b{re.escape(p.name)}\b", text):
            problems.append(f"{path}: not listed in {cmake}")


def check_build_artifacts(files, problems):
    for path in files:
        if any(pat.search(path) for pat in BUILD_ARTIFACT_PATTERNS):
            problems.append(
                f"{path}: committed build artifact — remove from git "
                "(build trees are .gitignored)")


def main():
    files = tracked_files()
    problems = []

    check_build_artifacts(files, problems)
    check_cmake_listing(files, problems)

    for path in files:
        p = Path(path)
        if p.parts[0] not in ("src", "tests", "bench", "examples"):
            continue
        if p.suffix not in (".h", ".cc", ".cpp"):
            continue
        text = (REPO / p).read_text(encoding="utf-8", errors="replace")
        if p.suffix == ".h":
            check_include_guard(path, text, problems)
            check_using_namespace(path, text, problems)
        if p.parts[0] == "src":
            check_raw_assert(path, text, problems)
        if path in NO_LOOP_FILES:
            check_no_raw_loops(path, text, problems)
        if path in NO_KERNEL_CALL_FILES:
            check_no_kernel_calls(path, text, problems)
        if path.startswith(NO_RAW_STREAM_DIRS):
            check_no_raw_file_streams(path, text, problems)
        if path.startswith(NO_STOPWATCH_DIRS):
            check_no_stopwatch(path, text, problems)
        check_discipline(path, text, problems)

    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"lint.py: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"lint.py: clean ({len(files)} tracked files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
