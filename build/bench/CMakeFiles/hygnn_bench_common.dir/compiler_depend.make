# Empty compiler generated dependencies file for hygnn_bench_common.
# This may be replaced when dependencies are built.
