file(REMOVE_RECURSE
  "CMakeFiles/hygnn_bench_common.dir/experiment.cc.o"
  "CMakeFiles/hygnn_bench_common.dir/experiment.cc.o.d"
  "libhygnn_bench_common.a"
  "libhygnn_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygnn_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
