file(REMOVE_RECURSE
  "libhygnn_bench_common.a"
)
