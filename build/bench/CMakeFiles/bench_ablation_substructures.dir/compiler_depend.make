# Empty compiler generated dependencies file for bench_ablation_substructures.
# This may be replaced when dependencies are built.
