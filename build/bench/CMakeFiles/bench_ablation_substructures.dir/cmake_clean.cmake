file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_substructures.dir/bench_ablation_substructures.cc.o"
  "CMakeFiles/bench_ablation_substructures.dir/bench_ablation_substructures.cc.o.d"
  "bench_ablation_substructures"
  "bench_ablation_substructures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_substructures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
