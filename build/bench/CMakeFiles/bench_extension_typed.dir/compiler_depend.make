# Empty compiler generated dependencies file for bench_extension_typed.
# This may be replaced when dependencies are built.
