file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_typed.dir/bench_extension_typed.cc.o"
  "CMakeFiles/bench_extension_typed.dir/bench_extension_typed.cc.o.d"
  "bench_extension_typed"
  "bench_extension_typed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_typed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
