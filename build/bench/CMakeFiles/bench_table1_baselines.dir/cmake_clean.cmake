file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_baselines.dir/bench_table1_baselines.cc.o"
  "CMakeFiles/bench_table1_baselines.dir/bench_table1_baselines.cc.o.d"
  "bench_table1_baselines"
  "bench_table1_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
