file(REMOVE_RECURSE
  "libhygnn_data.a"
)
