
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/featurize.cc" "src/data/CMakeFiles/hygnn_data.dir/featurize.cc.o" "gcc" "src/data/CMakeFiles/hygnn_data.dir/featurize.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/data/CMakeFiles/hygnn_data.dir/generator.cc.o" "gcc" "src/data/CMakeFiles/hygnn_data.dir/generator.cc.o.d"
  "/root/repo/src/data/io.cc" "src/data/CMakeFiles/hygnn_data.dir/io.cc.o" "gcc" "src/data/CMakeFiles/hygnn_data.dir/io.cc.o.d"
  "/root/repo/src/data/names.cc" "src/data/CMakeFiles/hygnn_data.dir/names.cc.o" "gcc" "src/data/CMakeFiles/hygnn_data.dir/names.cc.o.d"
  "/root/repo/src/data/pairs.cc" "src/data/CMakeFiles/hygnn_data.dir/pairs.cc.o" "gcc" "src/data/CMakeFiles/hygnn_data.dir/pairs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hygnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/hygnn_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/hygnn_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
