file(REMOVE_RECURSE
  "CMakeFiles/hygnn_data.dir/featurize.cc.o"
  "CMakeFiles/hygnn_data.dir/featurize.cc.o.d"
  "CMakeFiles/hygnn_data.dir/generator.cc.o"
  "CMakeFiles/hygnn_data.dir/generator.cc.o.d"
  "CMakeFiles/hygnn_data.dir/io.cc.o"
  "CMakeFiles/hygnn_data.dir/io.cc.o.d"
  "CMakeFiles/hygnn_data.dir/names.cc.o"
  "CMakeFiles/hygnn_data.dir/names.cc.o.d"
  "CMakeFiles/hygnn_data.dir/pairs.cc.o"
  "CMakeFiles/hygnn_data.dir/pairs.cc.o.d"
  "libhygnn_data.a"
  "libhygnn_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygnn_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
