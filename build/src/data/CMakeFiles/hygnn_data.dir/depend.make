# Empty dependencies file for hygnn_data.
# This may be replaced when dependencies are built.
