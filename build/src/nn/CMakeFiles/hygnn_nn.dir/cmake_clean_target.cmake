file(REMOVE_RECURSE
  "libhygnn_nn.a"
)
