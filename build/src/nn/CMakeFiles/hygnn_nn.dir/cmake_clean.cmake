file(REMOVE_RECURSE
  "CMakeFiles/hygnn_nn.dir/gnn_layers.cc.o"
  "CMakeFiles/hygnn_nn.dir/gnn_layers.cc.o.d"
  "CMakeFiles/hygnn_nn.dir/linear.cc.o"
  "CMakeFiles/hygnn_nn.dir/linear.cc.o.d"
  "CMakeFiles/hygnn_nn.dir/mlp.cc.o"
  "CMakeFiles/hygnn_nn.dir/mlp.cc.o.d"
  "CMakeFiles/hygnn_nn.dir/module.cc.o"
  "CMakeFiles/hygnn_nn.dir/module.cc.o.d"
  "libhygnn_nn.a"
  "libhygnn_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygnn_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
