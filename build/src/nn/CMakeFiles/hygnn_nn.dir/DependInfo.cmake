
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/gnn_layers.cc" "src/nn/CMakeFiles/hygnn_nn.dir/gnn_layers.cc.o" "gcc" "src/nn/CMakeFiles/hygnn_nn.dir/gnn_layers.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/hygnn_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/hygnn_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/nn/CMakeFiles/hygnn_nn.dir/mlp.cc.o" "gcc" "src/nn/CMakeFiles/hygnn_nn.dir/mlp.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/hygnn_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/hygnn_nn.dir/module.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hygnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hygnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hygnn_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
