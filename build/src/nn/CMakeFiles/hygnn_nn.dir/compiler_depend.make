# Empty compiler generated dependencies file for hygnn_nn.
# This may be replaced when dependencies are built.
