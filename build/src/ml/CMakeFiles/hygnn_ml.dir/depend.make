# Empty dependencies file for hygnn_ml.
# This may be replaced when dependencies are built.
