file(REMOVE_RECURSE
  "libhygnn_ml.a"
)
