file(REMOVE_RECURSE
  "CMakeFiles/hygnn_ml.dir/bitvector.cc.o"
  "CMakeFiles/hygnn_ml.dir/bitvector.cc.o.d"
  "CMakeFiles/hygnn_ml.dir/knn.cc.o"
  "CMakeFiles/hygnn_ml.dir/knn.cc.o.d"
  "CMakeFiles/hygnn_ml.dir/logistic_regression.cc.o"
  "CMakeFiles/hygnn_ml.dir/logistic_regression.cc.o.d"
  "libhygnn_ml.a"
  "libhygnn_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygnn_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
