
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/bitvector.cc" "src/ml/CMakeFiles/hygnn_ml.dir/bitvector.cc.o" "gcc" "src/ml/CMakeFiles/hygnn_ml.dir/bitvector.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/hygnn_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/hygnn_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/ml/CMakeFiles/hygnn_ml.dir/logistic_regression.cc.o" "gcc" "src/ml/CMakeFiles/hygnn_ml.dir/logistic_regression.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hygnn_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
