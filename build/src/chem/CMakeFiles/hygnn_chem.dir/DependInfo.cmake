
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chem/canonical.cc" "src/chem/CMakeFiles/hygnn_chem.dir/canonical.cc.o" "gcc" "src/chem/CMakeFiles/hygnn_chem.dir/canonical.cc.o.d"
  "/root/repo/src/chem/espf.cc" "src/chem/CMakeFiles/hygnn_chem.dir/espf.cc.o" "gcc" "src/chem/CMakeFiles/hygnn_chem.dir/espf.cc.o.d"
  "/root/repo/src/chem/fingerprint.cc" "src/chem/CMakeFiles/hygnn_chem.dir/fingerprint.cc.o" "gcc" "src/chem/CMakeFiles/hygnn_chem.dir/fingerprint.cc.o.d"
  "/root/repo/src/chem/fragments.cc" "src/chem/CMakeFiles/hygnn_chem.dir/fragments.cc.o" "gcc" "src/chem/CMakeFiles/hygnn_chem.dir/fragments.cc.o.d"
  "/root/repo/src/chem/generator.cc" "src/chem/CMakeFiles/hygnn_chem.dir/generator.cc.o" "gcc" "src/chem/CMakeFiles/hygnn_chem.dir/generator.cc.o.d"
  "/root/repo/src/chem/kmer.cc" "src/chem/CMakeFiles/hygnn_chem.dir/kmer.cc.o" "gcc" "src/chem/CMakeFiles/hygnn_chem.dir/kmer.cc.o.d"
  "/root/repo/src/chem/molgraph.cc" "src/chem/CMakeFiles/hygnn_chem.dir/molgraph.cc.o" "gcc" "src/chem/CMakeFiles/hygnn_chem.dir/molgraph.cc.o.d"
  "/root/repo/src/chem/smiles.cc" "src/chem/CMakeFiles/hygnn_chem.dir/smiles.cc.o" "gcc" "src/chem/CMakeFiles/hygnn_chem.dir/smiles.cc.o.d"
  "/root/repo/src/chem/strobemer.cc" "src/chem/CMakeFiles/hygnn_chem.dir/strobemer.cc.o" "gcc" "src/chem/CMakeFiles/hygnn_chem.dir/strobemer.cc.o.d"
  "/root/repo/src/chem/vocab.cc" "src/chem/CMakeFiles/hygnn_chem.dir/vocab.cc.o" "gcc" "src/chem/CMakeFiles/hygnn_chem.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hygnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/hygnn_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
