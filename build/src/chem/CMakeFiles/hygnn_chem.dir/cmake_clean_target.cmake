file(REMOVE_RECURSE
  "libhygnn_chem.a"
)
