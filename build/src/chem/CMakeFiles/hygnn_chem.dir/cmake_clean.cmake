file(REMOVE_RECURSE
  "CMakeFiles/hygnn_chem.dir/canonical.cc.o"
  "CMakeFiles/hygnn_chem.dir/canonical.cc.o.d"
  "CMakeFiles/hygnn_chem.dir/espf.cc.o"
  "CMakeFiles/hygnn_chem.dir/espf.cc.o.d"
  "CMakeFiles/hygnn_chem.dir/fingerprint.cc.o"
  "CMakeFiles/hygnn_chem.dir/fingerprint.cc.o.d"
  "CMakeFiles/hygnn_chem.dir/fragments.cc.o"
  "CMakeFiles/hygnn_chem.dir/fragments.cc.o.d"
  "CMakeFiles/hygnn_chem.dir/generator.cc.o"
  "CMakeFiles/hygnn_chem.dir/generator.cc.o.d"
  "CMakeFiles/hygnn_chem.dir/kmer.cc.o"
  "CMakeFiles/hygnn_chem.dir/kmer.cc.o.d"
  "CMakeFiles/hygnn_chem.dir/molgraph.cc.o"
  "CMakeFiles/hygnn_chem.dir/molgraph.cc.o.d"
  "CMakeFiles/hygnn_chem.dir/smiles.cc.o"
  "CMakeFiles/hygnn_chem.dir/smiles.cc.o.d"
  "CMakeFiles/hygnn_chem.dir/strobemer.cc.o"
  "CMakeFiles/hygnn_chem.dir/strobemer.cc.o.d"
  "CMakeFiles/hygnn_chem.dir/vocab.cc.o"
  "CMakeFiles/hygnn_chem.dir/vocab.cc.o.d"
  "libhygnn_chem.a"
  "libhygnn_chem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygnn_chem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
