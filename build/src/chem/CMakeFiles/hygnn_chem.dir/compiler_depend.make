# Empty compiler generated dependencies file for hygnn_chem.
# This may be replaced when dependencies are built.
