file(REMOVE_RECURSE
  "CMakeFiles/hygnn_embedding.dir/sgns.cc.o"
  "CMakeFiles/hygnn_embedding.dir/sgns.cc.o.d"
  "CMakeFiles/hygnn_embedding.dir/walk_embedding.cc.o"
  "CMakeFiles/hygnn_embedding.dir/walk_embedding.cc.o.d"
  "libhygnn_embedding.a"
  "libhygnn_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygnn_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
