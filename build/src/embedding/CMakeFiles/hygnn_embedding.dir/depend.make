# Empty dependencies file for hygnn_embedding.
# This may be replaced when dependencies are built.
