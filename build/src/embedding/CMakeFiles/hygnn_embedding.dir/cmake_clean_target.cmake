file(REMOVE_RECURSE
  "libhygnn_embedding.a"
)
