
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builders.cc" "src/graph/CMakeFiles/hygnn_graph.dir/builders.cc.o" "gcc" "src/graph/CMakeFiles/hygnn_graph.dir/builders.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/hygnn_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/hygnn_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/hypergraph.cc" "src/graph/CMakeFiles/hygnn_graph.dir/hypergraph.cc.o" "gcc" "src/graph/CMakeFiles/hygnn_graph.dir/hypergraph.cc.o.d"
  "/root/repo/src/graph/random_walk.cc" "src/graph/CMakeFiles/hygnn_graph.dir/random_walk.cc.o" "gcc" "src/graph/CMakeFiles/hygnn_graph.dir/random_walk.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/graph/CMakeFiles/hygnn_graph.dir/stats.cc.o" "gcc" "src/graph/CMakeFiles/hygnn_graph.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hygnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hygnn_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
