file(REMOVE_RECURSE
  "CMakeFiles/hygnn_graph.dir/builders.cc.o"
  "CMakeFiles/hygnn_graph.dir/builders.cc.o.d"
  "CMakeFiles/hygnn_graph.dir/graph.cc.o"
  "CMakeFiles/hygnn_graph.dir/graph.cc.o.d"
  "CMakeFiles/hygnn_graph.dir/hypergraph.cc.o"
  "CMakeFiles/hygnn_graph.dir/hypergraph.cc.o.d"
  "CMakeFiles/hygnn_graph.dir/random_walk.cc.o"
  "CMakeFiles/hygnn_graph.dir/random_walk.cc.o.d"
  "CMakeFiles/hygnn_graph.dir/stats.cc.o"
  "CMakeFiles/hygnn_graph.dir/stats.cc.o.d"
  "libhygnn_graph.a"
  "libhygnn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygnn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
