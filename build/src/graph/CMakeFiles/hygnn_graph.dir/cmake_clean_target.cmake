file(REMOVE_RECURSE
  "libhygnn_graph.a"
)
