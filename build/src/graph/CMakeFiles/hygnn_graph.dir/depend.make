# Empty dependencies file for hygnn_graph.
# This may be replaced when dependencies are built.
