file(REMOVE_RECURSE
  "libhygnn_model.a"
)
