# Empty dependencies file for hygnn_model.
# This may be replaced when dependencies are built.
