file(REMOVE_RECURSE
  "CMakeFiles/hygnn_model.dir/decoder.cc.o"
  "CMakeFiles/hygnn_model.dir/decoder.cc.o.d"
  "CMakeFiles/hygnn_model.dir/encoder.cc.o"
  "CMakeFiles/hygnn_model.dir/encoder.cc.o.d"
  "CMakeFiles/hygnn_model.dir/model.cc.o"
  "CMakeFiles/hygnn_model.dir/model.cc.o.d"
  "CMakeFiles/hygnn_model.dir/trainer.cc.o"
  "CMakeFiles/hygnn_model.dir/trainer.cc.o.d"
  "CMakeFiles/hygnn_model.dir/typed.cc.o"
  "CMakeFiles/hygnn_model.dir/typed.cc.o.d"
  "libhygnn_model.a"
  "libhygnn_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygnn_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
