
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hygnn/decoder.cc" "src/hygnn/CMakeFiles/hygnn_model.dir/decoder.cc.o" "gcc" "src/hygnn/CMakeFiles/hygnn_model.dir/decoder.cc.o.d"
  "/root/repo/src/hygnn/encoder.cc" "src/hygnn/CMakeFiles/hygnn_model.dir/encoder.cc.o" "gcc" "src/hygnn/CMakeFiles/hygnn_model.dir/encoder.cc.o.d"
  "/root/repo/src/hygnn/model.cc" "src/hygnn/CMakeFiles/hygnn_model.dir/model.cc.o" "gcc" "src/hygnn/CMakeFiles/hygnn_model.dir/model.cc.o.d"
  "/root/repo/src/hygnn/trainer.cc" "src/hygnn/CMakeFiles/hygnn_model.dir/trainer.cc.o" "gcc" "src/hygnn/CMakeFiles/hygnn_model.dir/trainer.cc.o.d"
  "/root/repo/src/hygnn/typed.cc" "src/hygnn/CMakeFiles/hygnn_model.dir/typed.cc.o" "gcc" "src/hygnn/CMakeFiles/hygnn_model.dir/typed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hygnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hygnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hygnn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hygnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hygnn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/hygnn_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/hygnn_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/hygnn_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
