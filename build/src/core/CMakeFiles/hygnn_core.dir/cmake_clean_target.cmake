file(REMOVE_RECURSE
  "libhygnn_core.a"
)
