file(REMOVE_RECURSE
  "CMakeFiles/hygnn_core.dir/flags.cc.o"
  "CMakeFiles/hygnn_core.dir/flags.cc.o.d"
  "CMakeFiles/hygnn_core.dir/logging.cc.o"
  "CMakeFiles/hygnn_core.dir/logging.cc.o.d"
  "CMakeFiles/hygnn_core.dir/rng.cc.o"
  "CMakeFiles/hygnn_core.dir/rng.cc.o.d"
  "CMakeFiles/hygnn_core.dir/status.cc.o"
  "CMakeFiles/hygnn_core.dir/status.cc.o.d"
  "CMakeFiles/hygnn_core.dir/string_util.cc.o"
  "CMakeFiles/hygnn_core.dir/string_util.cc.o.d"
  "libhygnn_core.a"
  "libhygnn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygnn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
