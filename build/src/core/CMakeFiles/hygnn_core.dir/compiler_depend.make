# Empty compiler generated dependencies file for hygnn_core.
# This may be replaced when dependencies are built.
