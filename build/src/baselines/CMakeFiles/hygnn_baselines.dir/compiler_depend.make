# Empty compiler generated dependencies file for hygnn_baselines.
# This may be replaced when dependencies are built.
