file(REMOVE_RECURSE
  "CMakeFiles/hygnn_baselines.dir/gnn_baselines.cc.o"
  "CMakeFiles/hygnn_baselines.dir/gnn_baselines.cc.o.d"
  "CMakeFiles/hygnn_baselines.dir/ml_baselines.cc.o"
  "CMakeFiles/hygnn_baselines.dir/ml_baselines.cc.o.d"
  "CMakeFiles/hygnn_baselines.dir/pair_harness.cc.o"
  "CMakeFiles/hygnn_baselines.dir/pair_harness.cc.o.d"
  "CMakeFiles/hygnn_baselines.dir/rwe_baselines.cc.o"
  "CMakeFiles/hygnn_baselines.dir/rwe_baselines.cc.o.d"
  "CMakeFiles/hygnn_baselines.dir/similarity_baseline.cc.o"
  "CMakeFiles/hygnn_baselines.dir/similarity_baseline.cc.o.d"
  "libhygnn_baselines.a"
  "libhygnn_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygnn_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
