file(REMOVE_RECURSE
  "libhygnn_baselines.a"
)
