file(REMOVE_RECURSE
  "libhygnn_tensor.a"
)
