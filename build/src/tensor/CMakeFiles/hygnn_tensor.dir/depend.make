# Empty dependencies file for hygnn_tensor.
# This may be replaced when dependencies are built.
