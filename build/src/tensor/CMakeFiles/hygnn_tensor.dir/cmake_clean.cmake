file(REMOVE_RECURSE
  "CMakeFiles/hygnn_tensor.dir/init.cc.o"
  "CMakeFiles/hygnn_tensor.dir/init.cc.o.d"
  "CMakeFiles/hygnn_tensor.dir/loss.cc.o"
  "CMakeFiles/hygnn_tensor.dir/loss.cc.o.d"
  "CMakeFiles/hygnn_tensor.dir/ops.cc.o"
  "CMakeFiles/hygnn_tensor.dir/ops.cc.o.d"
  "CMakeFiles/hygnn_tensor.dir/optimizer.cc.o"
  "CMakeFiles/hygnn_tensor.dir/optimizer.cc.o.d"
  "CMakeFiles/hygnn_tensor.dir/serialize.cc.o"
  "CMakeFiles/hygnn_tensor.dir/serialize.cc.o.d"
  "CMakeFiles/hygnn_tensor.dir/sparse.cc.o"
  "CMakeFiles/hygnn_tensor.dir/sparse.cc.o.d"
  "CMakeFiles/hygnn_tensor.dir/tensor.cc.o"
  "CMakeFiles/hygnn_tensor.dir/tensor.cc.o.d"
  "libhygnn_tensor.a"
  "libhygnn_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygnn_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
