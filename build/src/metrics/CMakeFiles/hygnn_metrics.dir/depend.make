# Empty dependencies file for hygnn_metrics.
# This may be replaced when dependencies are built.
