file(REMOVE_RECURSE
  "libhygnn_metrics.a"
)
