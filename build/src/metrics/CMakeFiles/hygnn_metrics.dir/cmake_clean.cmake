file(REMOVE_RECURSE
  "CMakeFiles/hygnn_metrics.dir/metrics.cc.o"
  "CMakeFiles/hygnn_metrics.dir/metrics.cc.o.d"
  "libhygnn_metrics.a"
  "libhygnn_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygnn_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
