file(REMOVE_RECURSE
  "CMakeFiles/ppi_transfer.dir/ppi_transfer.cpp.o"
  "CMakeFiles/ppi_transfer.dir/ppi_transfer.cpp.o.d"
  "ppi_transfer"
  "ppi_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppi_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
