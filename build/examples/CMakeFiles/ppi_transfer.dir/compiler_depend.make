# Empty compiler generated dependencies file for ppi_transfer.
# This may be replaced when dependencies are built.
