# Empty compiler generated dependencies file for substructure_attention.
# This may be replaced when dependencies are built.
