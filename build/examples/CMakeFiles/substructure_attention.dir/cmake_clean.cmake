file(REMOVE_RECURSE
  "CMakeFiles/substructure_attention.dir/substructure_attention.cpp.o"
  "CMakeFiles/substructure_attention.dir/substructure_attention.cpp.o.d"
  "substructure_attention"
  "substructure_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substructure_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
