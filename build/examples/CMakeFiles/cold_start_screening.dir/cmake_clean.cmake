file(REMOVE_RECURSE
  "CMakeFiles/cold_start_screening.dir/cold_start_screening.cpp.o"
  "CMakeFiles/cold_start_screening.dir/cold_start_screening.cpp.o.d"
  "cold_start_screening"
  "cold_start_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_start_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
