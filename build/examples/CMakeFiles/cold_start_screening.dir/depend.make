# Empty dependencies file for cold_start_screening.
# This may be replaced when dependencies are built.
