# Empty compiler generated dependencies file for hygnn_cli.
# This may be replaced when dependencies are built.
