file(REMOVE_RECURSE
  "CMakeFiles/hygnn_cli.dir/hygnn_cli.cpp.o"
  "CMakeFiles/hygnn_cli.dir/hygnn_cli.cpp.o.d"
  "hygnn_cli"
  "hygnn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygnn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
