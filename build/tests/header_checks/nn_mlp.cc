#include "nn/mlp.h"
