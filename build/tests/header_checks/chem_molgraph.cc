#include "chem/molgraph.h"
