#include "graph/graph.h"
