#include "data/io.h"
