#include "tensor/ops.h"
