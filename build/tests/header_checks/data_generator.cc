#include "data/generator.h"
