#include "tensor/init.h"
