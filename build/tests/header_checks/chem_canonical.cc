#include "chem/canonical.h"
