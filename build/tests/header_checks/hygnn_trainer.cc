#include "hygnn/trainer.h"
