#include "core/logging.h"
