#include "core/string_util.h"
