#include "chem/smiles.h"
