#include "hygnn/model.h"
