#include "graph/stats.h"
