#include "nn/gnn_layers.h"
