#include "chem/fingerprint.h"
