#include "chem/fragments.h"
