#include "core/stopwatch.h"
