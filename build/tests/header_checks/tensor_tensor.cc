#include "tensor/tensor.h"
