#include "nn/module.h"
