#include "graph/builders.h"
