#include "nn/linear.h"
