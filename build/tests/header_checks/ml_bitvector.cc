#include "ml/bitvector.h"
