#include "hygnn/typed.h"
