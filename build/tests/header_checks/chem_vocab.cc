#include "chem/vocab.h"
