#include "tensor/sparse.h"
