#include "data/pairs.h"
