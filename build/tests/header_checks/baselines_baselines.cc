#include "baselines/baselines.h"
