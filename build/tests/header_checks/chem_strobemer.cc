#include "chem/strobemer.h"
