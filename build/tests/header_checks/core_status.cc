#include "core/status.h"
