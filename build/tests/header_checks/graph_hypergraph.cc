#include "graph/hypergraph.h"
