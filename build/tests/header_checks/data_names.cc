#include "data/names.h"
