#include "graph/random_walk.h"
