#include "data/featurize.h"
