#include "embedding/sgns.h"
