#include "core/rng.h"
