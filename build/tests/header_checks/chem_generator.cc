#include "chem/generator.h"
