#include "chem/espf.h"
