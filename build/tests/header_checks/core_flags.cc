#include "core/flags.h"
