#include "tensor/loss.h"
