#include "hygnn/decoder.h"
