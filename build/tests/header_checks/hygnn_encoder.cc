#include "hygnn/encoder.h"
