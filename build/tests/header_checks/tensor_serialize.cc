#include "tensor/serialize.h"
