#include "embedding/walk_embedding.h"
