#include "metrics/metrics.h"
