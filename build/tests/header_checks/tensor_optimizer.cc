#include "tensor/optimizer.h"
