#include "ml/logistic_regression.h"
