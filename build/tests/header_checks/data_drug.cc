#include "data/drug.h"
