#include "ml/knn.h"
