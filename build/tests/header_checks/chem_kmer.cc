#include "chem/kmer.h"
