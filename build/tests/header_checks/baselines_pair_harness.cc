#include "baselines/pair_harness.h"
