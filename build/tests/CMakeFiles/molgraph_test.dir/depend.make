# Empty dependencies file for molgraph_test.
# This may be replaced when dependencies are built.
