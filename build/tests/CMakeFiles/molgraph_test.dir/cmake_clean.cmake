file(REMOVE_RECURSE
  "CMakeFiles/molgraph_test.dir/molgraph_test.cc.o"
  "CMakeFiles/molgraph_test.dir/molgraph_test.cc.o.d"
  "molgraph_test"
  "molgraph_test.pdb"
  "molgraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
