# Empty compiler generated dependencies file for pair_harness_test.
# This may be replaced when dependencies are built.
