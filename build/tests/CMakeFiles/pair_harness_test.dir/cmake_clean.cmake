file(REMOVE_RECURSE
  "CMakeFiles/pair_harness_test.dir/pair_harness_test.cc.o"
  "CMakeFiles/pair_harness_test.dir/pair_harness_test.cc.o.d"
  "pair_harness_test"
  "pair_harness_test.pdb"
  "pair_harness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pair_harness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
