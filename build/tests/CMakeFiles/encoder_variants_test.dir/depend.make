# Empty dependencies file for encoder_variants_test.
# This may be replaced when dependencies are built.
