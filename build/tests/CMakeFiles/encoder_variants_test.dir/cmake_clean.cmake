file(REMOVE_RECURSE
  "CMakeFiles/encoder_variants_test.dir/encoder_variants_test.cc.o"
  "CMakeFiles/encoder_variants_test.dir/encoder_variants_test.cc.o.d"
  "encoder_variants_test"
  "encoder_variants_test.pdb"
  "encoder_variants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoder_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
