
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/core_test.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/hygnn_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/hygnn/CMakeFiles/hygnn_model.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/hygnn_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/hygnn_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hygnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hygnn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hygnn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/hygnn_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/hygnn_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hygnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hygnn_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
