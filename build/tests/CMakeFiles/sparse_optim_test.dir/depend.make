# Empty dependencies file for sparse_optim_test.
# This may be replaced when dependencies are built.
