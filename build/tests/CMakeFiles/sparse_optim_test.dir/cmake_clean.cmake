file(REMOVE_RECURSE
  "CMakeFiles/sparse_optim_test.dir/sparse_optim_test.cc.o"
  "CMakeFiles/sparse_optim_test.dir/sparse_optim_test.cc.o.d"
  "sparse_optim_test"
  "sparse_optim_test.pdb"
  "sparse_optim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_optim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
