file(REMOVE_RECURSE
  "CMakeFiles/hygnn_test.dir/hygnn_test.cc.o"
  "CMakeFiles/hygnn_test.dir/hygnn_test.cc.o.d"
  "hygnn_test"
  "hygnn_test.pdb"
  "hygnn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
