# Empty dependencies file for hygnn_test.
# This may be replaced when dependencies are built.
