file(REMOVE_RECURSE
  "CMakeFiles/espf_kmer_test.dir/espf_kmer_test.cc.o"
  "CMakeFiles/espf_kmer_test.dir/espf_kmer_test.cc.o.d"
  "espf_kmer_test"
  "espf_kmer_test.pdb"
  "espf_kmer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/espf_kmer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
