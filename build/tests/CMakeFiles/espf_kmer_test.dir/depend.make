# Empty dependencies file for espf_kmer_test.
# This may be replaced when dependencies are built.
