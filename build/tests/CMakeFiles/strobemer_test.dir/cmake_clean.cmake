file(REMOVE_RECURSE
  "CMakeFiles/strobemer_test.dir/strobemer_test.cc.o"
  "CMakeFiles/strobemer_test.dir/strobemer_test.cc.o.d"
  "strobemer_test"
  "strobemer_test.pdb"
  "strobemer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strobemer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
