# Empty dependencies file for strobemer_test.
# This may be replaced when dependencies are built.
