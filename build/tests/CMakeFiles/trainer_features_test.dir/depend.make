# Empty dependencies file for trainer_features_test.
# This may be replaced when dependencies are built.
