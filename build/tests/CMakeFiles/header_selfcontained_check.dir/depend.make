# Empty dependencies file for header_selfcontained_check.
# This may be replaced when dependencies are built.
