file(REMOVE_RECURSE
  "libheader_selfcontained_check.a"
)
