
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/build/tests/header_checks/baselines_baselines.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/baselines_baselines.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/baselines_baselines.cc.o.d"
  "/root/repo/build/tests/header_checks/baselines_pair_harness.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/baselines_pair_harness.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/baselines_pair_harness.cc.o.d"
  "/root/repo/build/tests/header_checks/chem_canonical.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/chem_canonical.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/chem_canonical.cc.o.d"
  "/root/repo/build/tests/header_checks/chem_espf.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/chem_espf.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/chem_espf.cc.o.d"
  "/root/repo/build/tests/header_checks/chem_fingerprint.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/chem_fingerprint.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/chem_fingerprint.cc.o.d"
  "/root/repo/build/tests/header_checks/chem_fragments.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/chem_fragments.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/chem_fragments.cc.o.d"
  "/root/repo/build/tests/header_checks/chem_generator.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/chem_generator.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/chem_generator.cc.o.d"
  "/root/repo/build/tests/header_checks/chem_kmer.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/chem_kmer.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/chem_kmer.cc.o.d"
  "/root/repo/build/tests/header_checks/chem_molgraph.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/chem_molgraph.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/chem_molgraph.cc.o.d"
  "/root/repo/build/tests/header_checks/chem_smiles.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/chem_smiles.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/chem_smiles.cc.o.d"
  "/root/repo/build/tests/header_checks/chem_strobemer.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/chem_strobemer.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/chem_strobemer.cc.o.d"
  "/root/repo/build/tests/header_checks/chem_vocab.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/chem_vocab.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/chem_vocab.cc.o.d"
  "/root/repo/build/tests/header_checks/core_flags.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/core_flags.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/core_flags.cc.o.d"
  "/root/repo/build/tests/header_checks/core_logging.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/core_logging.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/core_logging.cc.o.d"
  "/root/repo/build/tests/header_checks/core_rng.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/core_rng.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/core_rng.cc.o.d"
  "/root/repo/build/tests/header_checks/core_status.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/core_status.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/core_status.cc.o.d"
  "/root/repo/build/tests/header_checks/core_stopwatch.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/core_stopwatch.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/core_stopwatch.cc.o.d"
  "/root/repo/build/tests/header_checks/core_string_util.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/core_string_util.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/core_string_util.cc.o.d"
  "/root/repo/build/tests/header_checks/data_drug.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/data_drug.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/data_drug.cc.o.d"
  "/root/repo/build/tests/header_checks/data_featurize.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/data_featurize.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/data_featurize.cc.o.d"
  "/root/repo/build/tests/header_checks/data_generator.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/data_generator.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/data_generator.cc.o.d"
  "/root/repo/build/tests/header_checks/data_io.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/data_io.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/data_io.cc.o.d"
  "/root/repo/build/tests/header_checks/data_names.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/data_names.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/data_names.cc.o.d"
  "/root/repo/build/tests/header_checks/data_pairs.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/data_pairs.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/data_pairs.cc.o.d"
  "/root/repo/build/tests/header_checks/embedding_sgns.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/embedding_sgns.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/embedding_sgns.cc.o.d"
  "/root/repo/build/tests/header_checks/embedding_walk_embedding.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/embedding_walk_embedding.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/embedding_walk_embedding.cc.o.d"
  "/root/repo/build/tests/header_checks/graph_builders.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/graph_builders.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/graph_builders.cc.o.d"
  "/root/repo/build/tests/header_checks/graph_graph.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/graph_graph.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/graph_graph.cc.o.d"
  "/root/repo/build/tests/header_checks/graph_hypergraph.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/graph_hypergraph.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/graph_hypergraph.cc.o.d"
  "/root/repo/build/tests/header_checks/graph_random_walk.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/graph_random_walk.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/graph_random_walk.cc.o.d"
  "/root/repo/build/tests/header_checks/graph_stats.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/graph_stats.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/graph_stats.cc.o.d"
  "/root/repo/build/tests/header_checks/hygnn_decoder.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/hygnn_decoder.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/hygnn_decoder.cc.o.d"
  "/root/repo/build/tests/header_checks/hygnn_encoder.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/hygnn_encoder.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/hygnn_encoder.cc.o.d"
  "/root/repo/build/tests/header_checks/hygnn_model.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/hygnn_model.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/hygnn_model.cc.o.d"
  "/root/repo/build/tests/header_checks/hygnn_trainer.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/hygnn_trainer.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/hygnn_trainer.cc.o.d"
  "/root/repo/build/tests/header_checks/hygnn_typed.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/hygnn_typed.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/hygnn_typed.cc.o.d"
  "/root/repo/build/tests/header_checks/metrics_metrics.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/metrics_metrics.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/metrics_metrics.cc.o.d"
  "/root/repo/build/tests/header_checks/ml_bitvector.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/ml_bitvector.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/ml_bitvector.cc.o.d"
  "/root/repo/build/tests/header_checks/ml_knn.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/ml_knn.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/ml_knn.cc.o.d"
  "/root/repo/build/tests/header_checks/ml_logistic_regression.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/ml_logistic_regression.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/ml_logistic_regression.cc.o.d"
  "/root/repo/build/tests/header_checks/nn_gnn_layers.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/nn_gnn_layers.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/nn_gnn_layers.cc.o.d"
  "/root/repo/build/tests/header_checks/nn_linear.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/nn_linear.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/nn_linear.cc.o.d"
  "/root/repo/build/tests/header_checks/nn_mlp.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/nn_mlp.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/nn_mlp.cc.o.d"
  "/root/repo/build/tests/header_checks/nn_module.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/nn_module.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/nn_module.cc.o.d"
  "/root/repo/build/tests/header_checks/tensor_init.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/tensor_init.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/tensor_init.cc.o.d"
  "/root/repo/build/tests/header_checks/tensor_loss.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/tensor_loss.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/tensor_loss.cc.o.d"
  "/root/repo/build/tests/header_checks/tensor_ops.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/tensor_ops.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/tensor_ops.cc.o.d"
  "/root/repo/build/tests/header_checks/tensor_optimizer.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/tensor_optimizer.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/tensor_optimizer.cc.o.d"
  "/root/repo/build/tests/header_checks/tensor_serialize.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/tensor_serialize.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/tensor_serialize.cc.o.d"
  "/root/repo/build/tests/header_checks/tensor_sparse.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/tensor_sparse.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/tensor_sparse.cc.o.d"
  "/root/repo/build/tests/header_checks/tensor_tensor.cc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/tensor_tensor.cc.o" "gcc" "tests/CMakeFiles/header_selfcontained_check.dir/header_checks/tensor_tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
