file(REMOVE_RECURSE
  "CMakeFiles/encoder_gradcheck_test.dir/encoder_gradcheck_test.cc.o"
  "CMakeFiles/encoder_gradcheck_test.dir/encoder_gradcheck_test.cc.o.d"
  "encoder_gradcheck_test"
  "encoder_gradcheck_test.pdb"
  "encoder_gradcheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoder_gradcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
