file(REMOVE_RECURSE
  "CMakeFiles/smiles_test.dir/smiles_test.cc.o"
  "CMakeFiles/smiles_test.dir/smiles_test.cc.o.d"
  "smiles_test"
  "smiles_test.pdb"
  "smiles_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
