# Empty dependencies file for smiles_test.
# This may be replaced when dependencies are built.
