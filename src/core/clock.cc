#include "core/clock.h"

#include <chrono>
#include <thread>

namespace hygnn::core {

namespace {

/// steady_clock backend — the one sanctioned raw monotonic read
/// (src/core is exempt from lint rule 10 for exactly this primitive).
class MonotonicClockImpl : public Clock {
 public:
  uint64_t NowNanos() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void SleepForMicros(int64_t micros) override {
    if (micros > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(micros));
    }
  }
};

Clock*& ActiveClockSlot() {
  static Clock* active = &MonotonicClock();
  return active;
}

}  // namespace

Clock& MonotonicClock() {
  static MonotonicClockImpl clock;
  return clock;
}

Clock& ActiveClock() { return *ActiveClockSlot(); }

ScopedClock::ScopedClock(Clock* clock) : previous_(ActiveClockSlot()) {
  ActiveClockSlot() = clock;
}

ScopedClock::~ScopedClock() { ActiveClockSlot() = previous_; }

}  // namespace hygnn::core
