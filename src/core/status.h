#ifndef HYGNN_CORE_STATUS_H_
#define HYGNN_CORE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace hygnn::core {

/// Error categories used across the library. Follows the RocksDB-style
/// convention: recoverable failures are reported through `Status` /
/// `Result<T>` return values rather than exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kAlreadyExists,
  kResourceExhausted,
  kDeadlineExceeded,
};

/// Returns a short human-readable name for a status code ("Ok",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success/error value. Cheap to copy on the success path
/// (no allocation); error path stores a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  /// A bounded resource (queue slot, quota) is at capacity right now;
  /// the caller may retry after backing off. serve::Server sheds load
  /// with this code when its request queue saturates.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// The operation's deadline passed before it could complete (or
  /// before it even started). serve::Server completes expired requests
  /// with this code instead of scoring them, and Pending::WaitFor
  /// returns it when the result is not ready in time.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error return type. Use `ok()` to test, `value()` to access
/// (valid only when `ok()`), `status()` for the error.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (error).
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  /// Returns the error status, or OK when this result holds a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace hygnn::core

#endif  // HYGNN_CORE_STATUS_H_
