#ifndef HYGNN_CORE_STOPWATCH_H_
#define HYGNN_CORE_STOPWATCH_H_

#include <chrono>

namespace hygnn::core {

/// Wall-clock stopwatch used by training loops and bench harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hygnn::core

#endif  // HYGNN_CORE_STOPWATCH_H_
