#ifndef HYGNN_CORE_THREAD_POOL_H_
#define HYGNN_CORE_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace hygnn::core {

/// Persistent worker pool behind ParallelFor. One pool is shared
/// process-wide (see NumThreads / SetNumThreads); kernels never spawn
/// threads themselves (scripts/lint.py rule 11 makes this file the only
/// home of raw std::thread in the repo).
///
/// Determinism contract: ParallelFor splits [begin, end) into
/// fixed-size chunks of `grain` iterations. Chunk boundaries depend
/// only on (begin, end, grain) — never on the thread count or on which
/// worker picks up which chunk — so any kernel whose chunks write
/// disjoint outputs and preserve per-element accumulation order
/// produces bit-identical results at every thread count, including the
/// inline sequential path used when the pool has one thread.
///
/// Lock discipline is machine-checked: every field the pool mutex
/// protects is HYGNN_GUARDED_BY-annotated, and clang builds promote
/// -Wthread-safety to an error (see src/core/thread_annotations.h).
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers; the calling thread participates
  /// in every ParallelFor, so `num_threads == 1` spawns nothing.
  explicit ThreadPool(int32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int32_t num_threads() const { return num_threads_; }

  /// Runs fn(chunk_begin, chunk_end) over every grain-sized chunk of
  /// [begin, end), distributing chunks across the pool. Blocks until
  /// all chunks finished. If any invocation of `fn` throws, the first
  /// exception (in completion order) is rethrown here after all
  /// remaining chunks have been skipped; the pool stays usable.
  ///
  /// Not reentrant: a nested call from inside `fn` runs the nested
  /// range inline on the calling worker (no deadlock, still exact).
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn)
      HYGNN_EXCLUDES(mutex_);

 private:
  struct Job {
    int64_t begin = 0;
    int64_t end = 0;
    int64_t grain = 1;
    int64_t num_chunks = 0;
    std::atomic<int64_t> next_chunk{0};
    std::atomic<int64_t> done_chunks{0};
    std::atomic<bool> failed{false};
    const std::function<void(int64_t, int64_t)>* fn = nullptr;
    Mutex error_mutex;
    std::exception_ptr error HYGNN_GUARDED_BY(error_mutex);
  };

  void WorkerLoop() HYGNN_EXCLUDES(mutex_);
  void RunChunks(Job* job) HYGNN_EXCLUDES(mutex_);

  const int32_t num_threads_;
  std::vector<std::thread> workers_;

  Mutex mutex_;
  CondVar job_ready_;
  CondVar job_done_;
  /// Current job; null when idle.
  std::shared_ptr<Job> job_ HYGNN_GUARDED_BY(mutex_);
  /// Bumped per job so workers run each exactly once.
  uint64_t generation_ HYGNN_GUARDED_BY(mutex_) = 0;
  bool shutdown_ HYGNN_GUARDED_BY(mutex_) = false;
};

/// Number of threads the global pool runs with. Resolved lazily on
/// first use: HYGNN_NUM_THREADS from the environment when set and
/// positive, otherwise 1 (exact sequential execution).
int32_t NumThreads();

/// Replaces the global pool with an `n`-thread one (values < 1 clamp
/// to 1; 1 destroys the pool and makes ParallelFor run inline). Joins
/// the previous pool's workers first. Not safe to call concurrently
/// with an in-flight ParallelFor.
void SetNumThreads(int32_t n);

/// Runs `fn` over grain-sized chunks of [begin, end) on the global
/// pool (see ThreadPool::ParallelFor for the determinism and exception
/// contract). With one thread — or when the whole range fits in a
/// single grain — this is exactly `fn(begin, end)` on the caller.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// A single long-lived service thread: serve::Server scorer workers,
/// load-generator submitters, and similar loops that live for a whole
/// service lifetime rather than one ParallelFor call. This file is the
/// sole sanctioned home of raw std::thread (scripts/lint.py rule 11),
/// so every service loop in src/serve, bench/, and examples/ routes
/// through this wrapper instead of spawning threads itself.
///
/// `fn` starts running immediately; Join (idempotent, also called by
/// the destructor) blocks until it returns. Movable so containers of
/// workers can grow; moving a joined or moved-from thread is fine,
/// and the moved-from object joins nothing.
class WorkerThread {
 public:
  explicit WorkerThread(std::function<void()> fn);
  WorkerThread(WorkerThread&& other) noexcept = default;
  ~WorkerThread();

  WorkerThread(const WorkerThread&) = delete;
  WorkerThread& operator=(const WorkerThread&) = delete;
  WorkerThread& operator=(WorkerThread&&) = delete;

  /// Blocks until `fn` returned. Safe to call more than once.
  void Join();

 private:
  std::thread thread_;
};

}  // namespace hygnn::core

#endif  // HYGNN_CORE_THREAD_POOL_H_
