#include "core/logging.h"

#include <atomic>

namespace hygnn::core {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) {
    std::cerr << stream_.str() << std::endl;
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[FATAL " << file << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal_logging
}  // namespace hygnn::core
