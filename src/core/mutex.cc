#include "core/mutex.h"

#include <chrono>

namespace hygnn::core {

// The caller holds `mu` (enforced by the HYGNN_REQUIRES annotation on
// the declaration). std::condition_variable needs a unique_lock that
// *owns* the underlying std::mutex, so adopt the already-held lock for
// the duration of the wait and release ownership again before
// returning — the net effect is "held on entry, held on exit", exactly
// what the annotation promises. The adopt/release pair is invisible to
// the analysis (it manipulates the raw std::mutex), which is fine: no
// annotated capability changes state here.
void CondVar::Wait(Mutex& mu) {
  std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

// Same adopt/release dance as Wait; wait_for uses steady_clock
// internally, so the deadline is immune to wall-clock adjustments
// (src/core is exempt from lint rule 10 for exactly this kind of
// timing primitive).
bool CondVar::WaitFor(Mutex& mu, int64_t timeout_us) {
  if (timeout_us <= 0) return false;
  std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
  const auto status = cv_.wait_for(lock, std::chrono::microseconds(timeout_us));
  lock.release();
  return status == std::cv_status::no_timeout;
}

}  // namespace hygnn::core
