#include "core/mutex.h"

namespace hygnn::core {

// The caller holds `mu` (enforced by the HYGNN_REQUIRES annotation on
// the declaration). std::condition_variable needs a unique_lock that
// *owns* the underlying std::mutex, so adopt the already-held lock for
// the duration of the wait and release ownership again before
// returning — the net effect is "held on entry, held on exit", exactly
// what the annotation promises. The adopt/release pair is invisible to
// the analysis (it manipulates the raw std::mutex), which is fine: no
// annotated capability changes state here.
void CondVar::Wait(Mutex& mu) {
  std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

}  // namespace hygnn::core
