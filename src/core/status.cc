#include "core/status.h"

namespace hygnn::core {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace hygnn::core
