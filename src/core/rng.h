#ifndef HYGNN_CORE_RNG_H_
#define HYGNN_CORE_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hygnn::core {

/// Deterministic 64-bit pseudo-random generator (xoshiro256** seeded via
/// SplitMix64). Every stochastic component in the library takes an
/// explicit seed so that experiments and tests are reproducible.
class Rng {
 public:
  /// Seeds the generator. Identical seeds yield identical streams.
  explicit Rng(uint64_t seed);

  /// Complete generator state — the xoshiro words plus the Box-Muller
  /// spare — so a stream can be checkpointed and resumed bit-exactly
  /// (training checkpoints persist this).
  struct State {
    std::array<uint64_t, 4> s{};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };

  /// Snapshots the stream; feeding the snapshot to set_state reproduces
  /// the exact continuation.
  State state() const;

  /// Restores a snapshot taken with state().
  void set_state(const State& state);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform float in [0, 1).
  float UniformFloat();

  /// Uniform double in [lo, hi).
  double UniformRange(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal sample (Box-Muller).
  double Normal();

  /// Normal sample with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap(items[i], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Draws an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Weights must be non-negative with a positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// Derives an independent generator (for per-worker streams).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace hygnn::core

#endif  // HYGNN_CORE_RNG_H_
