#ifndef HYGNN_CORE_THREAD_ANNOTATIONS_H_
#define HYGNN_CORE_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis macros (no-ops on other compilers).
//
// These attributes teach -Wthread-safety which lock protects which
// data, so lock-discipline violations are *compile errors* under clang
// (the root CMakeLists promotes -Wthread-safety to -Werror for clang
// builds; scripts/check.sh and CI run such a build when clang++ is
// available). GCC builds compile the annotations away and enforce
// nothing — the clang build in CI is the gate.
//
// The analysis only sees locks it can name, which is why the repo bans
// bare std::mutex outside src/core/ (scripts/lint.py rule 12): all
// concurrency routes through the annotated core::Mutex / core::MutexLock
// / core::CondVar wrappers in src/core/mutex.h.
//
// Usage summary (see DESIGN.md §11 for the full contract):
//   core::Mutex mu_;
//   int value_ HYGNN_GUARDED_BY(mu_);          // reads+writes need mu_
//   int* ptr_ HYGNN_PT_GUARDED_BY(mu_);        // *ptr_ needs mu_
//   void Mutate() HYGNN_EXCLUDES(mu_);         // locks mu_ internally
//   void MutateLocked() HYGNN_REQUIRES(mu_);   // caller must hold mu_
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__)
#define HYGNN_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define HYGNN_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability ("mutex" is the conventional
/// capability kind; error messages read "mutex 'mu_' is not held").
#define HYGNN_CAPABILITY(x) \
  HYGNN_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (core::MutexLock).
#define HYGNN_SCOPED_CAPABILITY \
  HYGNN_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define HYGNN_GUARDED_BY(x) HYGNN_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed while holding `x`
/// (the pointer itself is unguarded).
#define HYGNN_PT_GUARDED_BY(x) \
  HYGNN_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Documents (and checks) lock-acquisition order between two mutexes.
#define HYGNN_ACQUIRED_BEFORE(...) \
  HYGNN_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define HYGNN_ACQUIRED_AFTER(...) \
  HYGNN_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function requires the caller to already hold the capability
/// (exclusively / shared).
#define HYGNN_REQUIRES(...) \
  HYGNN_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define HYGNN_REQUIRES_SHARED(...) \
  HYGNN_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define HYGNN_ACQUIRE(...) \
  HYGNN_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define HYGNN_ACQUIRE_SHARED(...) \
  HYGNN_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function releases a capability the caller held on entry.
#define HYGNN_RELEASE(...) \
  HYGNN_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define HYGNN_RELEASE_SHARED(...) \
  HYGNN_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// Function attempts to acquire; first argument is the return value
/// that signals success, e.g. HYGNN_TRY_ACQUIRE(true).
#define HYGNN_TRY_ACQUIRE(...) \
  HYGNN_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (it acquires it
/// itself — calling with it held would self-deadlock).
#define HYGNN_EXCLUDES(...) \
  HYGNN_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code the analysis
/// cannot follow, e.g. lock acquired through an opaque callback).
#define HYGNN_ASSERT_CAPABILITY(x) \
  HYGNN_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Accessor returning a reference to the capability guarding the class.
#define HYGNN_RETURN_CAPABILITY(x) \
  HYGNN_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: suppress the analysis for one function. Every use
/// needs a comment justifying why the analysis cannot see the truth
/// (e.g. adopt/release tricks inside core::CondVar::Wait).
#define HYGNN_NO_THREAD_SAFETY_ANALYSIS \
  HYGNN_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // HYGNN_CORE_THREAD_ANNOTATIONS_H_
