#ifndef HYGNN_CORE_FLAGS_H_
#define HYGNN_CORE_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/status.h"

namespace hygnn::core {

/// Minimal command-line flag parser for the bench/example binaries.
/// Accepts `--name value` and `--name=value`; anything else is a
/// positional argument.
class FlagParser {
 public:
  /// Parses argv. Returns InvalidArgument on a trailing `--name` with no
  /// value.
  Status Parse(int argc, const char* const* argv);

  /// True when `--name` appeared on the command line.
  bool Has(const std::string& name) const;

  /// Typed getters returning `fallback` when the flag is absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  /// Verifies every parsed `--flag` is in `known`, returning
  /// InvalidArgument naming the first stranger. Binaries call this after
  /// Parse so a typo'd flag (--resme for --resume) fails loudly instead
  /// of being silently ignored and changing behavior.
  Status RequireKnown(const std::vector<std::string>& known) const;

  /// Arguments that did not look like flags, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Reads a boolean from the process environment: "1", "true", "yes"
/// (case-sensitive) enable, "0", "false", "no" disable, anything else
/// (including unset) yields `fallback`. Lets debug modes such as
/// HYGNN_NUMERICS_GUARD be switched on without plumbing a flag through
/// every entry point.
bool EnvFlag(const std::string& name, bool fallback);

/// Reads an integer from the process environment. Unset, empty, or
/// unparsable values yield `fallback`. Companion to EnvFlag for knobs
/// that carry a count rather than a switch (e.g. HYGNN_NUM_THREADS).
int64_t EnvInt(const std::string& name, int64_t fallback);

/// Reads a string from the process environment. Unset or empty values
/// yield `fallback`. Used for path-valued knobs such as HYGNN_METRICS
/// (the metrics JSONL output path).
std::string EnvString(const std::string& name, const std::string& fallback);

}  // namespace hygnn::core

#endif  // HYGNN_CORE_FLAGS_H_
