#include "core/flags.h"

#include <algorithm>
#include <cstdlib>

#include "core/string_util.h"

namespace hygnn::core {

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--flag value` form; a flag at the end of the line is boolean true.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
  return Status::Ok();
}

Status FlagParser::RequireKnown(const std::vector<std::string>& known) const {
  for (const auto& [name, value] : values_) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      return Status::InvalidArgument(
          "unrecognized flag --" + name +
          " (misspelled? run without flags for usage)");
    }
  }
  return Status::Ok();
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool EnvFlag(const std::string& name, bool fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  const std::string value(raw);
  if (value == "1" || value == "true" || value == "yes") return true;
  if (value == "0" || value == "false" || value == "no") return false;
  return fallback;
}

int64_t EnvInt(const std::string& name, int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const int64_t value = std::strtoll(raw, &end, 10);
  return (end == raw || *end != '\0') ? fallback : value;
}

std::string EnvString(const std::string& name, const std::string& fallback) {
  const char* raw = std::getenv(name.c_str());
  return (raw == nullptr || *raw == '\0') ? fallback : std::string(raw);
}

}  // namespace hygnn::core
