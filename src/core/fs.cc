#include "core/fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

namespace hygnn::core {

namespace {

std::string ErrnoMessage(const std::string& op, const std::string& path) {
  return op + " failed for " + path + ": " + std::strerror(errno);
}

// ---------------------------------------------------------------- POSIX

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(std::string_view data) override {
    if (file_ == nullptr) {
      return Status::FailedPrecondition("append after close: " + path_);
    }
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return Status::IoError(ErrnoMessage("write", path_));
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (file_ == nullptr) {
      return Status::FailedPrecondition("sync after close: " + path_);
    }
    if (std::fflush(file_) != 0) {
      return Status::IoError(ErrnoMessage("fflush", path_));
    }
    if (::fsync(::fileno(file_)) != 0) {
      return Status::IoError(ErrnoMessage("fsync", path_));
    }
    return Status::Ok();
  }

  Status Close() override {
    if (file_ == nullptr) {
      return Status::FailedPrecondition("double close: " + path_);
    }
    std::FILE* file = file_;
    file_ = nullptr;
    if (std::fclose(file) != 0) {
      return Status::IoError(ErrnoMessage("close", path_));
    }
    return Status::Ok();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixFileSystem : public FileSystem {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
      return Status::IoError(ErrnoMessage("open for write", path));
    }
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(file, path));
  }

  Result<std::string> ReadFile(const std::string& path) override {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      if (errno == ENOENT) {
        return Status::NotFound("no such file: " + path);
      }
      return Status::IoError(ErrnoMessage("open for read", path));
    }
    std::string contents;
    std::array<char, 1 << 16> buffer;
    size_t got = 0;
    while ((got = std::fread(buffer.data(), 1, buffer.size(), file)) > 0) {
      contents.append(buffer.data(), got);
    }
    const bool failed = std::ferror(file) != 0;
    std::fclose(file);
    if (failed) return Status::IoError(ErrnoMessage("read", path));
    return contents;
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IoError(ErrnoMessage("rename to " + to, from));
    }
    return Status::Ok();
  }

  Status Remove(const std::string& path) override {
    if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IoError(ErrnoMessage("remove", path));
    }
    return Status::Ok();
  }

  bool Exists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError(ErrnoMessage("mkdir", path));
    }
    return Status::Ok();
  }

  Status SyncDir(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::IoError(ErrnoMessage("open dir", path));
    const bool failed = ::fsync(fd) != 0;
    ::close(fd);
    if (failed) return Status::IoError(ErrnoMessage("fsync dir", path));
    return Status::Ok();
  }
};

FileSystem*& ActiveFsSlot() {
  static FileSystem* active = &PosixFs();
  return active;
}

}  // namespace

FileSystem& PosixFs() {
  static PosixFileSystem posix;
  return posix;
}

FileSystem& ActiveFileSystem() { return *ActiveFsSlot(); }

ScopedFileSystem::ScopedFileSystem(FileSystem* fs)
    : previous_(ActiveFsSlot()) {
  ActiveFsSlot() = fs;
}

ScopedFileSystem::~ScopedFileSystem() { ActiveFsSlot() = previous_; }

// -------------------------------------------------------- fault injection

/// Buffers every Append in memory; the file only reaches the base
/// filesystem at Close (possibly truncated), so an injected mid-write
/// failure leaves nothing on disk — exactly like a killed process whose
/// temp file was never flushed.
class FaultInjectingWritableFile : public WritableFile {
 public:
  FaultInjectingWritableFile(FaultInjectingFs* fs, std::string path)
      : fs_(fs), path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    if (closed_) {
      return Status::FailedPrecondition("append after close: " + path_);
    }
    const int64_t index = ++fs_->append_count_;
    const bool armed_nth =
        fs_->fail_at_append_ > 0 && index == fs_->fail_at_append_;
    if (fs_->fail_all_appends_ || armed_nth) {
      failed_ = true;
      if (fs_->enospc_) {
        return Status::IoError("injected ENOSPC: no space left on device "
                               "(append #" + std::to_string(index) + " to " +
                               path_ + ")");
      }
      return Status::IoError("injected write fault at append #" +
                             std::to_string(index) + " to " + path_);
    }
    buffer_.append(data.data(), data.size());
    return Status::Ok();
  }

  Status Sync() override {
    if (failed_) {
      return Status::IoError("injected fault: sync of failed file " + path_);
    }
    return Status::Ok();
  }

  Status Close() override {
    if (closed_) {
      return Status::FailedPrecondition("double close: " + path_);
    }
    closed_ = true;
    if (failed_) {
      // The "crashed" file never reaches disk at all.
      return Status::IoError("injected fault: file abandoned before close: " +
                             path_);
    }
    std::string contents = buffer_;
    if (fs_->truncate_close_bytes_ > 0) {
      const size_t drop = std::min<size_t>(
          contents.size(), static_cast<size_t>(fs_->truncate_close_bytes_));
      contents.resize(contents.size() - drop);
    }
    auto file_or = fs_->base_->NewWritableFile(path_);
    if (!file_or.ok()) return file_or.status();
    auto file = std::move(file_or).value();
    if (auto s = file->Append(contents); !s.ok()) return s;
    if (auto s = file->Sync(); !s.ok()) return s;
    return file->Close();
  }

 private:
  FaultInjectingFs* fs_;
  std::string path_;
  std::string buffer_;
  bool failed_ = false;
  bool closed_ = false;
};

void FaultInjectingFs::Reset() {
  append_count_ = 0;
  fail_at_append_ = 0;
  enospc_ = false;
  fail_all_appends_ = false;
  truncate_close_bytes_ = 0;
  max_read_bytes_ = -1;
  fail_renames_ = false;
}

void FaultInjectingFs::FailNthAppend(int64_t n, bool enospc) {
  fail_at_append_ = n;
  enospc_ = enospc;
}

Result<std::unique_ptr<WritableFile>> FaultInjectingFs::NewWritableFile(
    const std::string& path) {
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectingWritableFile>(this, path));
}

Result<std::string> FaultInjectingFs::ReadFile(const std::string& path) {
  auto contents = base_->ReadFile(path);
  if (!contents.ok()) return contents;
  if (max_read_bytes_ >= 0 &&
      contents.value().size() > static_cast<size_t>(max_read_bytes_)) {
    contents.value().resize(static_cast<size_t>(max_read_bytes_));
  }
  return contents;
}

Status FaultInjectingFs::Rename(const std::string& from,
                                const std::string& to) {
  if (fail_renames_) {
    return Status::IoError("injected rename fault: " + from + " -> " + to);
  }
  return base_->Rename(from, to);
}

Status FaultInjectingFs::Remove(const std::string& path) {
  return base_->Remove(path);
}

bool FaultInjectingFs::Exists(const std::string& path) {
  return base_->Exists(path);
}

Status FaultInjectingFs::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

Status FaultInjectingFs::SyncDir(const std::string& path) {
  return base_->SyncDir(path);
}

// ------------------------------------------------- integrity + atomicity

namespace {

constexpr char kFooterMagic[4] = {'H', 'Y', 'G', 'F'};

const uint32_t* Crc32Table() {
  static const auto table = [] {
    static uint32_t entries[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      entries[i] = crc;
    }
    return entries;
  }();
  return table;
}

void AppendPod(std::string* out, const void* value, size_t size) {
  out->append(reinterpret_cast<const char*>(value), size);
}

template <typename T>
T LoadPod(const char* bytes) {
  T value;
  std::memcpy(&value, bytes, sizeof(T));
  return value;
}

std::string HexU32(uint32_t value) {
  char buffer[9];
  std::snprintf(buffer, sizeof(buffer), "%08x", value);
  return buffer;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (const char c : data) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<uint8_t>(c)) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

void AppendIntegrityFooter(std::string* payload) {
  const uint32_t crc = Crc32(*payload);
  const uint64_t length = payload->size();
  AppendPod(payload, &crc, sizeof(crc));
  AppendPod(payload, &length, sizeof(length));
  payload->append(kFooterMagic, sizeof(kFooterMagic));
}

Result<std::string_view> StripIntegrityFooter(std::string_view file_bytes) {
  if (file_bytes.size() < kIntegrityFooterBytes ||
      std::memcmp(file_bytes.data() + file_bytes.size() - 4, kFooterMagic,
                  sizeof(kFooterMagic)) != 0) {
    return Status::IoError(
        "missing integrity footer (truncated, torn, or pre-durability "
        "file)");
  }
  const char* footer =
      file_bytes.data() + file_bytes.size() - kIntegrityFooterBytes;
  const auto stored_crc = LoadPod<uint32_t>(footer);
  const auto stored_length = LoadPod<uint64_t>(footer + sizeof(uint32_t));
  const uint64_t payload_length = file_bytes.size() - kIntegrityFooterBytes;
  if (stored_length != payload_length) {
    return Status::IoError(
        "truncated file: footer records " + std::to_string(stored_length) +
        " payload bytes, file holds " + std::to_string(payload_length));
  }
  const std::string_view payload = file_bytes.substr(0, payload_length);
  const uint32_t computed = Crc32(payload);
  if (computed != stored_crc) {
    return Status::IoError(
        "integrity checksum mismatch (torn or corrupt write): stored 0x" +
        HexU32(stored_crc) + ", computed 0x" + HexU32(computed));
  }
  return payload;
}

Status WriteFileAtomic(FileSystem& fs, const std::string& path,
                       std::string_view payload) {
  const std::string tmp = path + ".tmp";
  auto file_or = fs.NewWritableFile(tmp);
  if (!file_or.ok()) return file_or.status();
  auto file = std::move(file_or).value();
  Status status = file->Append(payload);
  if (status.ok()) status = file->Sync();
  if (status.ok()) status = file->Close();
  if (!status.ok()) {
    fs.Remove(tmp);  // best effort; the destination was never touched
    return status;
  }
  if (auto s = fs.Rename(tmp, path); !s.ok()) {
    fs.Remove(tmp);
    return s;
  }
  // Make the rename itself durable: fsync the containing directory.
  const size_t slash = path.find_last_of('/');
  return fs.SyncDir(slash == std::string::npos ? std::string(".")
                                               : path.substr(0, slash));
}

Status WriteFileDurable(FileSystem& fs, const std::string& path,
                        std::string_view payload) {
  std::string framed(payload);
  AppendIntegrityFooter(&framed);
  return WriteFileAtomic(fs, path, framed);
}

Status WriteFileDurableWithRetry(FileSystem& fs, const std::string& path,
                                 std::string_view payload, int attempts,
                                 int backoff_ms) {
  Status last;
  for (int attempt = 0; attempt < std::max(1, attempts); ++attempt) {
    if (attempt > 0 && backoff_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(backoff_ms << (attempt - 1)));
    }
    last = WriteFileDurable(fs, path, payload);
    if (last.ok()) return last;
  }
  return last;
}

Result<std::string> ReadFileVerified(FileSystem& fs,
                                     const std::string& path) {
  auto bytes = fs.ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  auto payload = StripIntegrityFooter(bytes.value());
  if (!payload.ok()) {
    return Status(payload.status().code(),
                  payload.status().message() + ": " + path);
  }
  return std::string(payload.value());
}

}  // namespace hygnn::core
