#include "core/rng.h"

#include <cmath>

#include "core/logging.h"

namespace hygnn::core {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

Rng::State Rng::state() const {
  State snapshot;
  for (size_t i = 0; i < snapshot.s.size(); ++i) snapshot.s[i] = state_[i];
  snapshot.has_cached_normal = has_cached_normal_;
  snapshot.cached_normal = cached_normal_;
  return snapshot;
}

void Rng::set_state(const State& state) {
  for (size_t i = 0; i < state.s.size(); ++i) state_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

float Rng::UniformFloat() {
  return static_cast<float>(Next() >> 40) * 0x1.0p-24f;
}

double Rng::UniformRange(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  HYGNN_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  HYGNN_CHECK_LE(k, n);
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  // Partial Fisher-Yates: only the first k positions need shuffling.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  HYGNN_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    HYGNN_CHECK_GE(w, 0.0);
    total += w;
  }
  HYGNN_CHECK_GT(total, 0.0);
  double target = Uniform() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace hygnn::core
