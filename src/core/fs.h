#ifndef HYGNN_CORE_FS_H_
#define HYGNN_CORE_FS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "core/status.h"

namespace hygnn::core {

/// An open file being written. Obtained from FileSystem::NewWritableFile;
/// data is not guaranteed on disk until Sync (or a Close that syncs).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the current end of the file.
  virtual Status Append(std::string_view data) = 0;

  /// Flushes userspace buffers and fsyncs the file descriptor, so the
  /// bytes survive a machine crash (not just a process crash).
  virtual Status Sync() = 0;

  /// Closes the file. Append/Sync after Close are invalid.
  virtual Status Close() = 0;
};

/// Minimal filesystem abstraction (RocksDB-style Env) behind every
/// persistence path in the library — CSV corpora (data/io), tensor
/// tables (tensor/serialize), model bundles (serve/bundle), and training
/// checkpoints (hygnn/checkpoint). Having one seam means FaultInjectingFs
/// can prove crash-safety of all of them with injected failures instead
/// of hoping.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Opens `path` for writing, truncating any existing file.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Reads the whole file into a string. NotFound when absent.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Deletes a file; missing files are not an error.
  virtual Status Remove(const std::string& path) = 0;

  virtual bool Exists(const std::string& path) = 0;

  /// Creates one directory level; an already-existing directory is OK.
  virtual Status CreateDir(const std::string& path) = 0;

  /// fsyncs a directory so a completed rename inside it survives a
  /// crash (the final step of the atomic-write protocol).
  virtual Status SyncDir(const std::string& path) = 0;
};

/// The process-wide POSIX filesystem.
FileSystem& PosixFs();

/// The filesystem every library persistence path uses. Defaults to
/// PosixFs(); tests swap in a FaultInjectingFs with ScopedFileSystem.
FileSystem& ActiveFileSystem();

/// RAII override of ActiveFileSystem for the current scope. Not
/// thread-safe: install before spawning work, as the library reads the
/// active filesystem without synchronization.
class ScopedFileSystem {
 public:
  explicit ScopedFileSystem(FileSystem* fs);
  ~ScopedFileSystem();

  ScopedFileSystem(const ScopedFileSystem&) = delete;
  ScopedFileSystem& operator=(const ScopedFileSystem&) = delete;

 private:
  FileSystem* previous_;
};

/// A FileSystem decorator that injects storage faults, for proving that
/// loaders never accept a torn file and writers never destroy the last
/// good copy. Writes are buffered in memory and only materialized
/// through the base filesystem at Close, which is what lets a "crashed"
/// write leave no file at all and a truncated close produce a torn one.
class FaultInjectingFs : public FileSystem {
 public:
  /// `base` must outlive this wrapper.
  explicit FaultInjectingFs(FileSystem* base) : base_(base) {}

  // ---- fault plan (all faults default off) ----

  /// Clears every armed fault and the append counter.
  void Reset();

  /// Fails the `n`th Append (1-based, counted across all files). With
  /// `enospc`, the error reads as disk-full. n <= 0 disarms.
  void FailNthAppend(int64_t n, bool enospc = false);

  /// Fails every Append from now on (a dead disk / full volume).
  void FailAllAppends(bool on) { fail_all_appends_ = on; }

  /// Every subsequent Close materializes the file with its last `bytes`
  /// bytes missing — a torn write: the rename still happens, but the
  /// tail was never durable. 0 disarms.
  void TruncateClosesBy(int64_t bytes) { truncate_close_bytes_ = bytes; }

  /// ReadFile returns at most `bytes` bytes (a short read). < 0 disarms.
  void MaxReadBytes(int64_t bytes) { max_read_bytes_ = bytes; }

  /// Fails every Rename — the commit step of atomic writes.
  void FailRenames(bool on) { fail_renames_ = on; }

  /// Appends observed so far (failed attempts included). Lets tests aim
  /// FailNthAppend at a specific write of a multi-write protocol.
  int64_t append_count() const { return append_count_; }

  // ---- FileSystem ----
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  bool Exists(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status SyncDir(const std::string& path) override;

 private:
  friend class FaultInjectingWritableFile;

  FileSystem* base_;
  int64_t append_count_ = 0;
  int64_t fail_at_append_ = 0;
  bool enospc_ = false;
  bool fail_all_appends_ = false;
  int64_t truncate_close_bytes_ = 0;
  int64_t max_read_bytes_ = -1;
  bool fail_renames_ = false;
};

/// CRC-32 (IEEE 802.3 polynomial) of `data`.
uint32_t Crc32(std::string_view data);

/// Size of the binary integrity footer AppendIntegrityFooter writes.
inline constexpr size_t kIntegrityFooterBytes = 16;

/// Appends the 16-byte integrity footer (u32 CRC-32 of the payload,
/// u64 payload length, magic "HYGF") used by every binary persistence
/// format. Exposed so tests can bless hand-crafted files.
void AppendIntegrityFooter(std::string* payload);

/// Validates the integrity footer at the end of `file_bytes` and
/// returns a view of the payload (footer stripped). Typed errors:
/// IoError for a missing footer, a length mismatch (truncation), or a
/// checksum mismatch (torn or corrupt write).
Result<std::string_view> StripIntegrityFooter(std::string_view file_bytes);

/// Crash-safe file replacement: writes `payload` to `path + ".tmp"`,
/// fsyncs, renames over `path`, and fsyncs the directory. A crash at
/// any point leaves either the old file or no file — never a torn one.
/// No integrity footer is added (use for text formats that carry their
/// own, like the CSV "#crc32" trailer line).
Status WriteFileAtomic(FileSystem& fs, const std::string& path,
                       std::string_view payload);

/// WriteFileAtomic plus the binary integrity footer, so loaders can
/// reject any torn or corrupt copy via ReadFileVerified.
Status WriteFileDurable(FileSystem& fs, const std::string& path,
                        std::string_view payload);

/// WriteFileDurable retried up to `attempts` times with exponential
/// backoff starting at `backoff_ms` (0 skips the sleeps — tests), for
/// transient failures such as a momentarily full disk. Returns the last
/// failure when every attempt fails.
Status WriteFileDurableWithRetry(FileSystem& fs, const std::string& path,
                                 std::string_view payload, int attempts,
                                 int backoff_ms);

/// Reads a WriteFileDurable file and verifies + strips its footer.
Result<std::string> ReadFileVerified(FileSystem& fs,
                                     const std::string& path);

}  // namespace hygnn::core

#endif  // HYGNN_CORE_FS_H_
