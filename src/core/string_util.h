#ifndef HYGNN_CORE_STRING_UTIL_H_
#define HYGNN_CORE_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace hygnn::core {

/// Splits `text` on `delimiter`. Empty fields are preserved;
/// splitting "" yields one empty field.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Joins `parts` with `delimiter`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(std::string_view text);

/// True when `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True when `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// Formats a double with `precision` digits after the decimal point.
std::string FormatFloat(double value, int precision);

}  // namespace hygnn::core

#endif  // HYGNN_CORE_STRING_UTIL_H_
