#ifndef HYGNN_CORE_LOGGING_H_
#define HYGNN_CORE_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace hygnn::core {

/// Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is emitted. Defaults to kInfo.
void SetLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits on destruction when the message severity
/// passes the global filter. Not for direct use — use the HYGNN_LOG /
/// HYGNN_CHECK macros.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction. Used by CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace hygnn::core

/// Usage: HYGNN_LOG(Info) << "message" << value;
/// Severity filtering happens at emit time (LogMessage destructor).
#define HYGNN_LOG(level)                              \
  ::hygnn::core::internal_logging::LogMessage(        \
      ::hygnn::core::LogLevel::k##level, __FILE__,    \
      __LINE__)                                       \
      .stream()

/// Aborts with a message when `condition` is false. Programmer-error
/// guard; recoverable errors go through core::Status instead.
#define HYGNN_CHECK(condition)                                          \
  if (!(condition))                                                     \
  ::hygnn::core::internal_logging::FatalLogMessage(__FILE__, __LINE__)  \
          .stream()                                                     \
      << "Check failed: " #condition " "

#define HYGNN_CHECK_EQ(a, b) HYGNN_CHECK((a) == (b))
#define HYGNN_CHECK_NE(a, b) HYGNN_CHECK((a) != (b))
#define HYGNN_CHECK_LT(a, b) HYGNN_CHECK((a) < (b))
#define HYGNN_CHECK_LE(a, b) HYGNN_CHECK((a) <= (b))
#define HYGNN_CHECK_GT(a, b) HYGNN_CHECK((a) > (b))
#define HYGNN_CHECK_GE(a, b) HYGNN_CHECK((a) >= (b))

/// Debug-only contracts. HYGNN_DCHECK behaves like HYGNN_CHECK when
/// debug checks are on and compiles to nothing (the condition is parsed
/// but never evaluated) when they are off, so contracts that scan whole
/// buffers are free in Release. Enabled by default in builds without
/// NDEBUG; sanitizer builds force them on via -DHYGNN_DCHECK_ENABLED=1
/// (see the HYGNN_SANITIZE block in the top-level CMakeLists.txt).
#ifndef HYGNN_DCHECK_ENABLED
#ifdef NDEBUG
#define HYGNN_DCHECK_ENABLED 0
#else
#define HYGNN_DCHECK_ENABLED 1
#endif
#endif

#if HYGNN_DCHECK_ENABLED
#define HYGNN_DCHECK(condition) HYGNN_CHECK(condition)
#else
// `while (false)` keeps the condition and any streamed message
// compiling (catching type errors and "used" for -Wunused) while the
// optimizer deletes the whole statement as dead code.
#define HYGNN_DCHECK(condition) \
  while (false) HYGNN_CHECK(condition)
#endif

#define HYGNN_DCHECK_EQ(a, b) HYGNN_DCHECK((a) == (b))
#define HYGNN_DCHECK_NE(a, b) HYGNN_DCHECK((a) != (b))
#define HYGNN_DCHECK_LT(a, b) HYGNN_DCHECK((a) < (b))
#define HYGNN_DCHECK_LE(a, b) HYGNN_DCHECK((a) <= (b))
#define HYGNN_DCHECK_GT(a, b) HYGNN_DCHECK((a) > (b))
#define HYGNN_DCHECK_GE(a, b) HYGNN_DCHECK((a) >= (b))

#endif  // HYGNN_CORE_LOGGING_H_
