#ifndef HYGNN_CORE_CLOCK_H_
#define HYGNN_CORE_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace hygnn::core {

/// Monotonic time-source seam, mirroring the core::FileSystem seam
/// (src/core/fs.h): every *semantic* time read in the library — request
/// deadlines, batching windows, retry backoff sleeps — goes through the
/// active Clock, so tests can swap in a ManualClock and drive "time
/// passes" deterministically instead of sleeping and hoping the
/// scheduler cooperates. Purely observational timing (obs histograms,
/// bench timers) stays on obs::Timer / obs::NowNanos — metrics may
/// jitter, semantics may not.
///
/// Living in src/core keeps the one raw steady_clock read inside the
/// sanctioned home of lint rule 10 (scripts/lint.py): callers never
/// touch std::chrono clocks directly.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic nanoseconds since an arbitrary epoch. Never decreases;
  /// immune to wall-clock adjustments.
  virtual uint64_t NowNanos() = 0;

  /// Blocks the calling thread for at least `micros` microseconds.
  /// ManualClock advances its own time instead of blocking, so code
  /// that backs off (retry policies) runs instantly under test.
  virtual void SleepForMicros(int64_t micros) = 0;
};

/// The process-wide monotonic (steady_clock) backend.
Clock& MonotonicClock();

/// The clock every semantic-time consumer reads. Defaults to
/// MonotonicClock(); tests swap in a ManualClock with ScopedClock.
Clock& ActiveClock();

/// RAII override of ActiveClock for the current scope. Not thread-safe:
/// install before spawning work (e.g. before constructing a
/// serve::Server), as the library reads the active clock without
/// synchronization — the same contract as ScopedFileSystem.
class ScopedClock {
 public:
  explicit ScopedClock(Clock* clock);
  ~ScopedClock();

  ScopedClock(const ScopedClock&) = delete;
  ScopedClock& operator=(const ScopedClock&) = delete;

 private:
  Clock* previous_;
};

/// A clock that only moves when the test says so. Reads and advances
/// are atomic, so worker threads may read NowNanos concurrently with a
/// test thread advancing it (the common chaos-test shape: park a worker
/// on a FaultInjectingScorer stall, advance past a deadline, release).
class ManualClock : public Clock {
 public:
  explicit ManualClock(uint64_t start_nanos = 0) : nanos_(start_nanos) {}

  uint64_t NowNanos() override {
    return nanos_.load(std::memory_order_relaxed);
  }

  /// Advances time instead of blocking — a retry backoff under test
  /// completes immediately while still "taking" the right duration.
  void SleepForMicros(int64_t micros) override {
    if (micros > 0) AdvanceMicros(static_cast<uint64_t>(micros));
  }

  void AdvanceNanos(uint64_t nanos) {
    nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }

  void AdvanceMicros(uint64_t micros) { AdvanceNanos(micros * 1000); }

 private:
  std::atomic<uint64_t> nanos_;
};

}  // namespace hygnn::core

#endif  // HYGNN_CORE_CLOCK_H_
