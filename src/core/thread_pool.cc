#include "core/thread_pool.h"

#include <algorithm>

#include "core/flags.h"
#include "core/logging.h"

namespace hygnn::core {

namespace {

/// True while the current thread is executing ParallelFor chunks;
/// nested ParallelFor calls from kernel code run inline instead of
/// deadlocking on the single shared job slot.
thread_local bool t_inside_parallel_for = false;

}  // namespace

ThreadPool::ThreadPool(int32_t num_threads)
    : num_threads_(std::max<int32_t>(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int32_t i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  job_ready_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      MutexLock lock(mutex_);
      while (!shutdown_ &&
             !(job_ != nullptr && generation_ != seen_generation)) {
        job_ready_.Wait(mutex_);
      }
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    t_inside_parallel_for = true;
    RunChunks(job.get());
    t_inside_parallel_for = false;
  }
}

void ThreadPool::RunChunks(Job* job) {
  for (;;) {
    const int64_t chunk = job->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job->num_chunks) break;
    // After a failure the job is abandoned: remaining chunks are
    // counted as done without running so the caller unblocks fast.
    if (!job->failed.load(std::memory_order_acquire)) {
      try {
        const int64_t lo = job->begin + chunk * job->grain;
        const int64_t hi = std::min(job->end, lo + job->grain);
        (*job->fn)(lo, hi);
      } catch (...) {
        {
          MutexLock lock(job->error_mutex);
          if (!job->error) job->error = std::current_exception();
        }
        job->failed.store(true, std::memory_order_release);
      }
    }
    const int64_t done =
        job->done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (done == job->num_chunks) {
      // Lock pairs with the caller's predicate check to avoid a missed
      // wakeup between its done_chunks load and its wait.
      MutexLock lock(mutex_);
      job_done_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  HYGNN_CHECK_GT(grain, 0);
  if (end <= begin) return;
  const int64_t range = end - begin;
  if (num_threads_ == 1 || range <= grain || t_inside_parallel_for) {
    fn(begin, end);
    return;
  }

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_chunks = (range + grain - 1) / grain;
  job->fn = &fn;
  {
    MutexLock lock(mutex_);
    job_ = job;
    ++generation_;
  }
  job_ready_.NotifyAll();

  t_inside_parallel_for = true;
  RunChunks(job.get());
  t_inside_parallel_for = false;

  {
    MutexLock lock(mutex_);
    while (job->done_chunks.load(std::memory_order_acquire) !=
           job->num_chunks) {
      job_done_.Wait(mutex_);
    }
    job_ = nullptr;
  }
  std::exception_ptr error;
  {
    MutexLock lock(job->error_mutex);
    error = job->error;
  }
  if (error) std::rethrow_exception(error);
}

namespace {

Mutex g_pool_mutex;
/// Null while the count is 1.
ThreadPool* g_pool HYGNN_GUARDED_BY(g_pool_mutex) = nullptr;
/// 0 = not yet resolved.
int32_t g_num_threads HYGNN_GUARDED_BY(g_pool_mutex) = 0;

int32_t ResolveDefaultThreads() {
  const int64_t from_env = EnvInt("HYGNN_NUM_THREADS", 0);
  return from_env > 0 ? static_cast<int32_t>(from_env) : 1;
}

}  // namespace

int32_t NumThreads() {
  MutexLock lock(g_pool_mutex);
  if (g_num_threads == 0) g_num_threads = ResolveDefaultThreads();
  return g_num_threads;
}

void SetNumThreads(int32_t n) {
  n = std::max<int32_t>(1, n);
  MutexLock lock(g_pool_mutex);
  if (n == g_num_threads) return;
  delete g_pool;
  g_pool = n > 1 ? new ThreadPool(n) : nullptr;
  g_num_threads = n;
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  HYGNN_CHECK_GT(grain, 0);
  if (end <= begin) return;
  ThreadPool* pool;
  {
    MutexLock lock(g_pool_mutex);
    if (g_num_threads == 0) {
      g_num_threads = ResolveDefaultThreads();
      if (g_num_threads > 1) g_pool = new ThreadPool(g_num_threads);
    }
    pool = g_pool;
  }
  if (pool == nullptr) {
    fn(begin, end);
    return;
  }
  pool->ParallelFor(begin, end, grain, fn);
}

WorkerThread::WorkerThread(std::function<void()> fn)
    : thread_(std::move(fn)) {}

WorkerThread::~WorkerThread() { Join(); }

void WorkerThread::Join() {
  if (thread_.joinable()) thread_.join();
}

}  // namespace hygnn::core
