#ifndef HYGNN_CORE_MUTEX_H_
#define HYGNN_CORE_MUTEX_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "core/thread_annotations.h"

namespace hygnn::core {

/// Annotated mutual-exclusion lock. A thin wrapper over std::mutex
/// whose only reason to exist is Clang Thread Safety Analysis: the
/// capability annotations make "which lock protects which field"
/// machine-checked (std::mutex and std::lock_guard are invisible to the
/// analysis). scripts/lint.py rule 12 routes every mutex in the repo
/// outside src/core/ through this type.
///
/// Annotate each protected field with the lock that guards it:
///
///   core::Mutex mutex_;
///   std::vector<int> items_ HYGNN_GUARDED_BY(mutex_);
///
/// and hold the lock with core::MutexLock (scoped) or Lock()/Unlock()
/// (annotated, for the rare non-scoped pattern).
class HYGNN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HYGNN_ACQUIRE() { mu_.lock(); }
  void Unlock() HYGNN_RELEASE() { mu_.unlock(); }
  bool TryLock() HYGNN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over core::Mutex — the annotated equivalent of
/// std::lock_guard. Acquires in the constructor, releases in the
/// destructor; the analysis tracks the capability for the scope,
/// including early returns.
class HYGNN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HYGNN_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() HYGNN_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with core::Mutex. Wait releases the mutex
/// while blocked and reacquires it before returning; it can wake
/// spuriously, so callers loop on their predicate explicitly:
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.Wait(mutex_);
///
/// Deliberately no predicate-lambda overload: the analysis treats a
/// lambda body as a separate unannotated function, so a predicate
/// reading HYGNN_GUARDED_BY fields would warn under clang even though
/// the lock is held. The explicit while loop keeps guarded reads inside
/// the annotated scope.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or a spurious wakeup). `mu` must be held by
  /// the caller; it is released for the duration of the block and held
  /// again on return.
  void Wait(Mutex& mu) HYGNN_REQUIRES(mu);

  /// Like Wait, but gives up after `timeout_us` microseconds. Returns
  /// false on timeout, true when notified (or woken spuriously) — so
  /// callers still loop on their predicate and treat the return value
  /// only as "did the deadline pass". Non-positive timeouts return
  /// false immediately without blocking. The dynamic batcher in
  /// serve::Server uses this to close a batch at max-wait-μs.
  bool WaitFor(Mutex& mu, int64_t timeout_us) HYGNN_REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hygnn::core

#endif  // HYGNN_CORE_MUTEX_H_
