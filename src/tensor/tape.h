#ifndef HYGNN_TENSOR_TAPE_H_
#define HYGNN_TENSOR_TAPE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace hygnn::core {
class Rng;
}  // namespace hygnn::core

namespace hygnn::tensor {

/// Record-then-execute tape for the autograd engine (DESIGN.md §12).
///
/// The operator layer (tensor/ops.cc) no longer computes anything: each
/// op call records a pending TensorImpl carrying an OpRecord — the op
/// kind plus whatever payload the kernel dispatch needs — and returns
/// immediately. The first read of a pending tensor (Tensor::data / At /
/// item / Backward / ...) calls MaterializeTensor, which
///
///   1. *linearizes* the pending subgraph into a topologically-ordered
///      op tape (the same post-order DFS Tensor::Backward uses, so the
///      execution order is deterministic and independent of fusion);
///   2. runs the *fusion pass* (tensor/fuse.h) when enabled, merging
///      adjacent single-consumer elementwise ops into fused groups;
///   3. *executes* the tape through the kernel layer, one kernel
///      invocation per op — or per fused group.
///
/// Fused and unfused execution are bit-identical by construction: the
/// fused kernels chain the exact per-element scalar functions the
/// standalone kernels use, normalizing accumulate-into-zero writes the
/// same way (see kernels.h FusedChainForward). The backward pass keeps
/// the seed engine's node order and kernel calls exactly, so gradients
/// are memcmp-equal with fusion on or off, at any thread count.

struct FusedGroup;  // tensor/fuse.h

/// Operator kinds the executor dispatches on — one per op in
/// tensor/ops.h that records a tape node.
enum class OpKind : uint8_t {
  kMatMul,
  kAdd,
  kAddRowBroadcast,
  kSub,
  kMul,
  kScale,
  kMulColumnBroadcast,
  kConcatCols,
  kIndexSelectRows,
  kSegmentSoftmax,
  kSegmentSum,
  kRowwiseDot,
  kReduceSum,
  kRelu,
  kLeakyRelu,
  kSigmoid,
  kTanh,
  kExp,
  kLog,
  kDropout,
  kL2NormalizeRows,
  kRowSoftmax,
  kTranspose,
};

/// Payload of one recorded op. Inputs are implicit: `parents` on the
/// owning TensorImpl, in the operand order the kernels expect.
struct OpRecord {
  OpKind kind = OpKind::kAdd;
  /// Scalar parameter: Scale factor, LeakyRelu slope, Log /
  /// L2NormalizeRows epsilon. Unused otherwise.
  float alpha = 0.0f;
  /// Integer payload: IndexSelectRows indices, Segment* segment ids.
  std::vector<int32_t> ibuf;
  /// Float payload: the Dropout mask (drawn at record time so the RNG
  /// stream order matches eager execution), or the L2NormalizeRows
  /// norms cache (filled at execution time for the backward pass).
  std::shared_ptr<std::vector<float>> fbuf;
  int64_t num_segments = 0;
  /// Set on the tail node of a fused group; the executor runs the whole
  /// chain as one kernel invocation when it reaches the tail.
  std::shared_ptr<FusedGroup> group;
  /// True on non-tail members of a fused group: the node's value is
  /// never written (its data stays empty) because the chain recomputes
  /// intermediates per element.
  bool fused_member = false;
};

/// Allocates a pending tape node: shape, static op name, kind, and
/// parents (always stored — the executor needs them even for no-grad
/// nodes; they are released after execution when requires_grad is
/// false). `detached` forces requires_grad off regardless of parents
/// (TransposeNoGrad). No data is allocated and no kernel runs.
std::shared_ptr<TensorImpl> RecordOp(
    const char* op, OpKind kind, int64_t rows, int64_t cols,
    std::vector<std::shared_ptr<TensorImpl>> parents, bool detached = false);

/// Final step of every recorded op: wraps the node into a Tensor. When
/// NumericsGuard is enabled the node is materialized immediately so the
/// guard attributes the first NaN/Inf to the op in program order, the
/// same behavior the eager engine had (fusion is effectively disabled
/// under the guard — each op materializes alone).
Tensor FinishRecord(std::shared_ptr<TensorImpl> out);

/// Runs one node's backward step: the legacy backward_fn closure when
/// present, otherwise the OpRecord kind dispatch (or the fused-chain
/// backward on a group tail). Called by Tensor::Backward in reverse
/// topological order; `time_ops` routes per-node wall time into the obs
/// per-op attribution table (fused groups report under their
/// constituent-op name, e.g. "Fused[Dropout|Relu|Scale]").
void ExecuteNodeBackward(TensorImpl* node, bool time_ops);

/// Enables/disables the elementwise fusion pass process-wide. Defaults
/// to the HYGNN_FUSE environment flag (itself defaulting on); the
/// trainer overrides it from TrainConfig::fuse / --fuse.
void SetFusionEnabled(bool enabled);
bool FusionEnabled();

/// Executor counters since the last ResetExecStats. Relaxed atomics —
/// safe to read concurrently, intended for tests and benches.
struct ExecStatsSnapshot {
  uint64_t ops_executed = 0;       // kernel-level invocations (fused = 1)
  uint64_t fused_groups = 0;       // groups executed as one invocation
  uint64_t buffers_allocated = 0;  // output data buffers allocated
};
ExecStatsSnapshot ExecStats();
void ResetExecStats();

/// Bounds-check helper so the recording layer can validate indices
/// without a raw kernel call (lint rule 13): true iff every v[i] is in
/// [lo, hi).
bool IndicesInRange(const int32_t* v, int64_t n, int32_t lo, int32_t hi);

/// Draws the inverted-dropout mask at record time (index-order RNG
/// stream, matching eager execution and any thread count).
void DrawDropoutMask(core::Rng* rng, float p, float keep_scale, float* mask,
                     int64_t n);

}  // namespace hygnn::tensor

#endif  // HYGNN_TENSOR_TAPE_H_
