#include <algorithm>

#include "tensor/kernels/kernels.h"

namespace hygnn::tensor::kernels {

void MatMul(const float* a, const float* b, float* c, int64_t n, int64_t k,
            int64_t m) {
  // ikj loop order for cache-friendly row-major access; each output row
  // belongs to exactly one chunk.
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      float* crow = c + i * m;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float aik = a[i * k + kk];
        if (aik == 0.0f) continue;
        const float* brow = b + kk * m;
        for (int64_t j = 0; j < m; ++j) crow[j] += aik * brow[j];
      }
    }
  });
}

void MatMulNT(const float* a, const float* b, float* c, int64_t n, int64_t k,
              int64_t m) {
  // c[i,j] += a_i · b_j; both operands are read row-wise, so the
  // transposed product needs no transposed copy.
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * m;
      for (int64_t j = 0; j < m; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] += acc;
      }
    }
  });
}

void MatMulTN(const float* a, const float* b, float* c, int64_t n, int64_t k,
              int64_t m) {
  // Output row kk gathers column kk of a; i ascends inside each chunk
  // so every c element accumulates in the sequential order.
  core::ParallelFor(0, k, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t kk = lo; kk < hi; ++kk) {
      float* crow = c + kk * m;
      for (int64_t i = 0; i < n; ++i) {
        const float aik = a[i * k + kk];
        if (aik == 0.0f) continue;
        const float* brow = b + i * m;
        for (int64_t j = 0; j < m; ++j) crow[j] += aik * brow[j];
      }
    }
  });
}

void Transpose(const float* x, int64_t n, int64_t d, float* out) {
  core::ParallelFor(0, d, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t j = lo; j < hi; ++j) {
      float* orow = out + j * n;
      for (int64_t i = 0; i < n; ++i) orow[i] = x[i * d + j];
    }
  });
}

}  // namespace hygnn::tensor::kernels
