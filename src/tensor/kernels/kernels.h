#ifndef HYGNN_TENSOR_KERNELS_KERNELS_H_
#define HYGNN_TENSOR_KERNELS_KERNELS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "core/thread_pool.h"

namespace hygnn::core {
class Rng;
}  // namespace hygnn::core

/// Pure numeric kernel layer. Every function works on raw row-major
/// float buffers — no Tensor, no autograd, no graph wiring — so the
/// autograd layer (tensor/ops.cc) reduces to shape checks and
/// forward/backward dispatch, and alternative backends (SIMD, blocked,
/// sharded) can swap in underneath without touching the graph code.
///
/// Determinism contract: parallel kernels partition work so that every
/// output element is written by exactly one chunk and accumulated in
/// the same order as the sequential (threads = 1) execution. Results
/// are therefore bit-identical at any thread count. Accumulating
/// kernels (named *Accumulate, plus the MatMul family and Axpy) add
/// into their destination; callers pass zero-filled buffers to get
/// plain assignment.
namespace hygnn::tensor::kernels {

/// Chunk sizes for core::ParallelFor. Fixed constants — never derived
/// from the thread count — so the partition (and thus any per-chunk
/// rounding behavior) is identical no matter how many workers run.
inline constexpr int64_t kElementGrain = 4096;  // cheap per-element maps
inline constexpr int64_t kRowGrain = 4;         // O(cols)+ work per row
inline constexpr int64_t kSegmentGrain = 16;    // per-segment reductions

// ---------------------------------------------------------------------------
// matmul.cc — dense products and layout transforms
// ---------------------------------------------------------------------------

/// c[n,m] += a[n,k] · b[k,m]. Parallel over rows of c; skips zero a
/// entries (hypergraph incidence operands are sparse in practice).
void MatMul(const float* a, const float* b, float* c, int64_t n, int64_t k,
            int64_t m);

/// c[n,m] += a[n,k] · b[m,k]ᵀ — the transposed-B product used by
/// MatMul's dA backward without materializing a transposed copy.
/// Parallel over rows of c.
void MatMulNT(const float* a, const float* b, float* c, int64_t n, int64_t k,
              int64_t m);

/// c[k,m] += a[n,k]ᵀ · b[n,m] — the transposed-A product used by
/// MatMul's dB backward without materializing a transposed copy.
/// Parallel over rows of c (columns of a); per-element accumulation
/// runs over i ascending, matching the sequential order.
void MatMulTN(const float* a, const float* b, float* c, int64_t n, int64_t k,
              int64_t m);

/// out[d,n] = xᵀ for x[n,d]. Parallel over output rows.
void Transpose(const float* x, int64_t n, int64_t d, float* out);

// ---------------------------------------------------------------------------
// elementwise.cc — maps, broadcasts, copies, reductions
// ---------------------------------------------------------------------------

/// c[i] = a[i] + b[i].
void Add(const float* a, const float* b, float* c, int64_t n);

/// c[i] = a[i] - b[i].
void Sub(const float* a, const float* b, float* c, int64_t n);

/// y[i] += alpha * x[i].
void Axpy(float alpha, const float* x, float* y, int64_t n);

/// c[i] += a[i] * b[i].
void MulAccumulate(const float* a, const float* b, float* c, int64_t n);

/// y[i] += value.
void AccumulateConstant(float value, float* y, int64_t n);

/// Ordered sequential sum of x[0..n) (left-to-right float addition —
/// intentionally not parallel so the result is the canonical ordered
/// reduction).
float Sum(const float* x, int64_t n);

/// out[i,j] = x[i,j] + bias[j] for x[n,d], bias[1,d]. Parallel rows.
void AddRowBroadcast(const float* x, const float* bias, float* out, int64_t n,
                     int64_t d);

/// out[j] += sum_i g[i,j] for g[n,d]. Parallel over columns; each
/// column accumulates over i ascending (sequential order).
void ColumnSumAccumulate(const float* g, int64_t n, int64_t d, float* out);

/// out[i,j] += s[i] * x[i,j] for x[n,d], s[n,1]. Parallel rows. Serves
/// MulColumnBroadcast forward (zeroed out) and its / RowwiseDot's
/// backward passes.
void RowScaleAccumulate(const float* s, const float* x, float* out, int64_t n,
                        int64_t d);

/// out[i] += a_i · b_i (row dot) for a,b[n,d], out[n,1]. Parallel rows.
void RowwiseDotAccumulate(const float* a, const float* b, float* out,
                          int64_t n, int64_t d);

/// dst[i, dst_off + j] = src[i, src_off + j] for j < width; src has
/// src_d columns, dst has dst_d. Parallel rows. Serves ConcatCols.
void CopyColumnBlock(const float* src, int64_t n, int64_t src_d,
                     int64_t src_off, float* dst, int64_t dst_d,
                     int64_t dst_off, int64_t width);

/// Accumulating variant of CopyColumnBlock (dst += src block).
void AccumulateColumnBlock(const float* src, int64_t n, int64_t src_d,
                           int64_t src_off, float* dst, int64_t dst_d,
                           int64_t dst_off, int64_t width);

/// dst[i] = src[indices[i]] (row gather, d columns). Parallel rows.
void GatherRows(const float* src, int64_t d, const int32_t* indices,
                int64_t n, float* dst);

/// dst[indices[i]] += src[i] (row scatter-add, d columns). Indices may
/// repeat, so this parallelizes over column blocks instead of rows:
/// each destination element accumulates over i ascending.
void ScatterAddRows(const float* src, const int32_t* indices, int64_t n,
                    int64_t d, float* dst);

/// True iff every v[i] is in [lo, hi). Validation helper so the
/// autograd layer can bounds-check indices without its own loop.
bool AllInRange(const int32_t* v, int64_t n, int32_t lo, int32_t hi);

/// Inverted-dropout mask: mask[i] = keep_scale with probability 1 - p,
/// else 0. Sequential by construction — the RNG stream must be drawn
/// in index order for seed-reproducibility at any thread count.
void DropoutMask(core::Rng* rng, float p, float keep_scale, float* mask,
                 int64_t n);

/// out_i = x_i / max(||x_i||, eps) per row; norms[i] receives the
/// clamped norm for the backward pass. Parallel rows.
void L2NormalizeRows(const float* x, int64_t n, int64_t d, float eps,
                     float* out, float* norms);

/// dx_i += (g_i - y_i * (g_i · y_i)) / norms[i]. Parallel rows.
void L2NormalizeRowsBackward(const float* g, const float* y,
                             const float* norms, int64_t n, int64_t d,
                             float* dx);

/// Numerically-stabilized softmax over each row of x[n,k]. Parallel
/// rows.
void RowSoftmax(const float* x, int64_t n, int64_t k, float* out);

/// dx_i += y_i ⊙ (g_i - (g_i · y_i)) per row. Parallel rows.
void RowSoftmaxBackward(const float* g, const float* y, int64_t n, int64_t k,
                        float* dx);

/// out[i] = fn(x[i]) — the shared forward for activation / pointwise
/// ops (Relu, Sigmoid, Tanh, Exp, Log, ...). Parallel over elements.
template <typename Fn>
void RowwiseMap(const float* x, float* out, int64_t n, Fn fn) {
  core::ParallelFor(0, n, kElementGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) out[i] = fn(x[i]);
  });
}

/// dx[i] += g[i] * dydx(x[i], y[i]) — the shared backward for
/// RowwiseMap ops. Parallel over elements.
template <typename Dydx>
void RowwiseMapGradAccumulate(const float* x, const float* y, const float* g,
                              float* dx, int64_t n, Dydx dydx) {
  core::ParallelFor(0, n, kElementGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) dx[i] += g[i] * dydx(x[i], y[i]);
  });
}

// ---------------------------------------------------------------------------
// Scalar activation bodies — shared by the standalone RowwiseMap path
// and the fused-chain kernels below. Both paths calling the exact same
// functions is what makes fused and unfused execution bit-identical.
// ---------------------------------------------------------------------------

inline float ScalarRelu(float v) { return v > 0.0f ? v : 0.0f; }
inline float ScalarReluGrad(float x) { return x > 0.0f ? 1.0f : 0.0f; }

inline float ScalarLeakyRelu(float v, float slope) {
  return v >= 0.0f ? v : slope * v;
}
inline float ScalarLeakyReluGrad(float x, float slope) {
  return x >= 0.0f ? 1.0f : slope;
}

/// Numerically-stable two-branch logistic (never exponentiates a
/// positive argument).
inline float ScalarSigmoid(float v) {
  if (v >= 0.0f) {
    const float z = std::exp(-v);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(v);
  return z / (1.0f + z);
}
inline float ScalarSigmoidGrad(float y) { return y * (1.0f - y); }

inline float ScalarTanh(float v) { return std::tanh(v); }
inline float ScalarTanhGrad(float y) { return 1.0f - y * y; }

inline float ScalarExp(float v) { return std::exp(v); }

inline float ScalarLog(float v, float eps) {
  return std::log(std::max(v, eps));
}
inline float ScalarLogGrad(float x, float eps) {
  return 1.0f / std::max(x, eps);
}

// ---------------------------------------------------------------------------
// Fused elementwise chains (tensor/fuse.h groups execute through these)
// ---------------------------------------------------------------------------

/// Longest op chain one fused kernel invocation may cover. Small enough
/// for a stack-resident recompute buffer in the backward pass.
inline constexpr int32_t kMaxFusedChain = 8;

/// One link of a fused elementwise chain, describing how the chained
/// value v transforms at that op. `side` points at the non-chain
/// operand's materialized data for binary/broadcast links (the dropout
/// mask for kMul links produced by Dropout); `alpha` carries the Scale
/// factor, LeakyRelu slope, or Log epsilon.
///
/// Forward semantics reproduce what each standalone kernel writes into
/// its zero-initialized output, including the `0.0f + ...`
/// normalization of accumulate-into-zero kernels (Axpy, MulAccumulate,
/// RowScaleAccumulate add into a zero buffer, which flushes a negative
/// zero product to +0.0f — the fused path must match bit-for-bit):
///   kRelu/kLeakyRelu/kSigmoid/kTanh/kExp/kLog: Scalar*(v)
///   kScale:       0.0f + alpha * v
///   kMul:         0.0f + v * side[i]
///   kAdd:         v + side[i]
///   kSub:         v - side[i]            (chain is the minuend)
///   kSubFrom:     side[i] - v            (chain is the subtrahend)
///   kAddRowBias:  v + side[col]          (side is [1, d])
///   kMulRowScale: 0.0f + side[row] * v   (side is [n, 1])
struct FusedStep {
  enum class Kind : uint8_t {
    kRelu,
    kLeakyRelu,
    kSigmoid,
    kTanh,
    kExp,
    kLog,
    kScale,
    kMul,
    kAdd,
    kSub,
    kSubFrom,
    kAddRowBias,
    kMulRowScale,
  };
  Kind kind = Kind::kRelu;
  float alpha = 0.0f;
  const float* side = nullptr;
};

/// out[i] = (step[num_steps-1] ∘ ... ∘ step[0])(x[i]) for an [n, d]
/// tensor, one pass over the elements with no intermediate buffers.
/// Parallel over elements with the standard kElementGrain chunking.
void FusedChainForward(const float* x, float* out, int64_t n, int64_t d,
                       const FusedStep* steps, int32_t num_steps);

/// dx[i] += d(chain)/dx[i] * g[i], recomputing the chain's intermediate
/// values per element. Each link's gradient factor is applied in the
/// same operand order — and with the same accumulate-into-zero
/// normalization for interior links — as the standalone backward
/// kernels, so the result is bit-identical to running the unfused
/// backward chain. num_steps must be <= kMaxFusedChain.
void FusedChainBackward(const float* x, const float* g, int64_t n, int64_t d,
                        const FusedStep* steps, int32_t num_steps, float* dx);

// ---------------------------------------------------------------------------
// segment.cc — per-segment attention primitives
// ---------------------------------------------------------------------------

/// Softmax of scores[n,1] within each segment (see ops.h
/// SegmentSoftmax). Rows are grouped by segment internally (a stable
/// counting sort), then segments are processed in parallel; each
/// segment's rows are visited in ascending row order so sums match the
/// sequential accumulation bit-for-bit. Empty segments are fine.
/// Requires every seg[i] in [0, num_segments).
void SegmentSoftmax(const float* scores, const int32_t* seg, int64_t n,
                    int64_t num_segments, float* out);

/// dscores[i] += y_i * (g_i - sum_{j in seg(i)} g_j y_j). Parallel
/// over segments with the same grouping/order contract as the forward.
void SegmentSoftmaxBackward(const float* g, const float* y,
                            const int32_t* seg, int64_t n,
                            int64_t num_segments, float* dscores);

/// out[s] += sum_{i: seg[i]==s} x[i] for x[n,d], out[num_segments,d].
/// Parallel over segments; rows of a segment accumulate in ascending
/// row order.
void SegmentSumAccumulate(const float* x, const int32_t* seg, int64_t n,
                          int64_t d, float* out, int64_t num_segments);

/// dx[i] += g[seg[i]] (broadcast of the segment gradient back to every
/// member row). Parallel over rows — writes are disjoint.
void SegmentSumBackward(const float* g, const int32_t* seg, int64_t n,
                        int64_t d, float* dx);

}  // namespace hygnn::tensor::kernels

#endif  // HYGNN_TENSOR_KERNELS_KERNELS_H_
