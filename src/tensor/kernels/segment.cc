#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "tensor/kernels/kernels.h"

namespace hygnn::tensor::kernels {

namespace {

/// CSR-style grouping of rows by segment: rows of segment s are
/// rows[offsets[s] .. offsets[s + 1]), in ascending row order (the
/// counting sort is stable). Grouping lets the segment kernels
/// parallelize over segments while visiting each segment's rows in the
/// exact order the sequential implementation accumulates them.
struct SegmentGroups {
  std::vector<int64_t> offsets;  // num_segments + 1
  std::vector<int64_t> rows;     // n, grouped by segment
};

SegmentGroups GroupBySegment(const int32_t* seg, int64_t n,
                             int64_t num_segments) {
  SegmentGroups groups;
  groups.offsets.assign(static_cast<size_t>(num_segments) + 1, 0);
  for (int64_t i = 0; i < n; ++i) ++groups.offsets[seg[i] + 1];
  for (int64_t s = 0; s < num_segments; ++s) {
    groups.offsets[s + 1] += groups.offsets[s];
  }
  groups.rows.resize(static_cast<size_t>(n));
  std::vector<int64_t> cursor(groups.offsets.begin(),
                              groups.offsets.end() - 1);
  for (int64_t i = 0; i < n; ++i) groups.rows[cursor[seg[i]]++] = i;
  return groups;
}

}  // namespace

void SegmentSoftmax(const float* scores, const int32_t* seg, int64_t n,
                    int64_t num_segments, float* out) {
  const SegmentGroups groups = GroupBySegment(seg, n, num_segments);
  core::ParallelFor(0, num_segments, kSegmentGrain,
                    [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s) {
      const int64_t begin = groups.offsets[s], end = groups.offsets[s + 1];
      float seg_max = -std::numeric_limits<float>::infinity();
      for (int64_t r = begin; r < end; ++r) {
        seg_max = std::max(seg_max, scores[groups.rows[r]]);
      }
      float seg_sum = 0.0f;
      for (int64_t r = begin; r < end; ++r) {
        const int64_t i = groups.rows[r];
        out[i] = std::exp(scores[i] - seg_max);
        seg_sum += out[i];
      }
      for (int64_t r = begin; r < end; ++r) {
        const int64_t i = groups.rows[r];
        out[i] = seg_sum > 0.0f ? out[i] / seg_sum : 0.0f;
      }
    }
  });
}

void SegmentSoftmaxBackward(const float* g, const float* y,
                            const int32_t* seg, int64_t n,
                            int64_t num_segments, float* dscores) {
  const SegmentGroups groups = GroupBySegment(seg, n, num_segments);
  core::ParallelFor(0, num_segments, kSegmentGrain,
                    [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s) {
      const int64_t begin = groups.offsets[s], end = groups.offsets[s + 1];
      // d s_i = y_i * (g_i - sum_{j in seg} g_j y_j)
      float seg_dot = 0.0f;
      for (int64_t r = begin; r < end; ++r) {
        const int64_t i = groups.rows[r];
        seg_dot += g[i] * y[i];
      }
      for (int64_t r = begin; r < end; ++r) {
        const int64_t i = groups.rows[r];
        dscores[i] += y[i] * (g[i] - seg_dot);
      }
    }
  });
}

void SegmentSumAccumulate(const float* x, const int32_t* seg, int64_t n,
                          int64_t d, float* out, int64_t num_segments) {
  const SegmentGroups groups = GroupBySegment(seg, n, num_segments);
  core::ParallelFor(0, num_segments, kSegmentGrain,
                    [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s) {
      float* dst = out + s * d;
      for (int64_t r = groups.offsets[s]; r < groups.offsets[s + 1]; ++r) {
        const float* src = x + groups.rows[r] * d;
        for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
      }
    }
  });
}

void SegmentSumBackward(const float* g, const int32_t* seg, int64_t n,
                        int64_t d, float* dx) {
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* src = g + static_cast<int64_t>(seg[i]) * d;
      float* dst = dx + i * d;
      for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
    }
  });
}

}  // namespace hygnn::tensor::kernels
