#include <algorithm>
#include <cmath>
#include <limits>

#include "core/logging.h"
#include "core/rng.h"
#include "tensor/kernels/kernels.h"

namespace hygnn::tensor::kernels {

void Add(const float* a, const float* b, float* c, int64_t n) {
  core::ParallelFor(0, n, kElementGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) c[i] = a[i] + b[i];
  });
}

void Sub(const float* a, const float* b, float* c, int64_t n) {
  core::ParallelFor(0, n, kElementGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) c[i] = a[i] - b[i];
  });
}

void Axpy(float alpha, const float* x, float* y, int64_t n) {
  core::ParallelFor(0, n, kElementGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) y[i] += alpha * x[i];
  });
}

void MulAccumulate(const float* a, const float* b, float* c, int64_t n) {
  core::ParallelFor(0, n, kElementGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) c[i] += a[i] * b[i];
  });
}

void AccumulateConstant(float value, float* y, int64_t n) {
  core::ParallelFor(0, n, kElementGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) y[i] += value;
  });
}

float Sum(const float* x, int64_t n) {
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) acc += x[i];
  return acc;
}

void AddRowBroadcast(const float* x, const float* bias, float* out, int64_t n,
                     int64_t d) {
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      for (int64_t j = 0; j < d; ++j) out[i * d + j] = x[i * d + j] + bias[j];
    }
  });
}

void ColumnSumAccumulate(const float* g, int64_t n, int64_t d, float* out) {
  core::ParallelFor(0, d, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = 0; i < n; ++i) {
      const float* grow = g + i * d;
      for (int64_t j = lo; j < hi; ++j) out[j] += grow[j];
    }
  });
}

void RowScaleAccumulate(const float* s, const float* x, float* out, int64_t n,
                        int64_t d) {
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float sv = s[i];
      for (int64_t j = 0; j < d; ++j) out[i * d + j] += sv * x[i * d + j];
    }
  });
}

void RowwiseDotAccumulate(const float* a, const float* b, float* out,
                          int64_t n, int64_t d) {
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      float acc = 0.0f;
      for (int64_t j = 0; j < d; ++j) acc += a[i * d + j] * b[i * d + j];
      out[i] += acc;
    }
  });
}

void CopyColumnBlock(const float* src, int64_t n, int64_t src_d,
                     int64_t src_off, float* dst, int64_t dst_d,
                     int64_t dst_off, int64_t width) {
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* s = src + i * src_d + src_off;
      float* t = dst + i * dst_d + dst_off;
      for (int64_t j = 0; j < width; ++j) t[j] = s[j];
    }
  });
}

void AccumulateColumnBlock(const float* src, int64_t n, int64_t src_d,
                           int64_t src_off, float* dst, int64_t dst_d,
                           int64_t dst_off, int64_t width) {
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* s = src + i * src_d + src_off;
      float* t = dst + i * dst_d + dst_off;
      for (int64_t j = 0; j < width; ++j) t[j] += s[j];
    }
  });
}

void GatherRows(const float* src, int64_t d, const int32_t* indices,
                int64_t n, float* dst) {
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* s = src + static_cast<int64_t>(indices[i]) * d;
      float* t = dst + i * d;
      for (int64_t j = 0; j < d; ++j) t[j] = s[j];
    }
  });
}

void ScatterAddRows(const float* src, const int32_t* indices, int64_t n,
                    int64_t d, float* dst) {
  // Duplicate indices make row-parallelism racy, so chunk the columns:
  // each destination element is owned by one chunk and accumulates over
  // i ascending — the sequential order.
  core::ParallelFor(0, d, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = 0; i < n; ++i) {
      float* t = dst + static_cast<int64_t>(indices[i]) * d;
      const float* s = src + i * d;
      for (int64_t j = lo; j < hi; ++j) t[j] += s[j];
    }
  });
}

bool AllInRange(const int32_t* v, int64_t n, int32_t lo, int32_t hi) {
  for (int64_t i = 0; i < n; ++i) {
    if (v[i] < lo || v[i] >= hi) return false;
  }
  return true;
}

void DropoutMask(core::Rng* rng, float p, float keep_scale, float* mask,
                 int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    mask[i] = rng->Bernoulli(p) ? 0.0f : keep_scale;
  }
}

void L2NormalizeRows(const float* x, int64_t n, int64_t d, float eps,
                     float* out, float* norms) {
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      float acc = 0.0f;
      for (int64_t j = 0; j < d; ++j) {
        const float v = x[i * d + j];
        acc += v * v;
      }
      norms[i] = std::max(std::sqrt(acc), eps);
      const float inv = 1.0f / norms[i];
      for (int64_t j = 0; j < d; ++j) out[i * d + j] = x[i * d + j] * inv;
    }
  });
}

void L2NormalizeRowsBackward(const float* g, const float* y,
                             const float* norms, int64_t n, int64_t d,
                             float* dx) {
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      float dot = 0.0f;
      for (int64_t j = 0; j < d; ++j) dot += g[i * d + j] * y[i * d + j];
      const float inv = 1.0f / norms[i];
      for (int64_t j = 0; j < d; ++j) {
        dx[i * d + j] += (g[i * d + j] - y[i * d + j] * dot) * inv;
      }
    }
  });
}

void RowSoftmax(const float* x, int64_t n, int64_t k, float* out) {
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      float row_max = -std::numeric_limits<float>::infinity();
      for (int64_t j = 0; j < k; ++j) {
        row_max = std::max(row_max, x[i * k + j]);
      }
      float denom = 0.0f;
      for (int64_t j = 0; j < k; ++j) {
        out[i * k + j] = std::exp(x[i * k + j] - row_max);
        denom += out[i * k + j];
      }
      for (int64_t j = 0; j < k; ++j) out[i * k + j] /= denom;
    }
  });
}

namespace {

/// Elements of a fused chain processed per dispatch. The switch over
/// FusedStep::Kind runs once per block (not once per element) so each
/// kind's loop stays tight and auto-vectorizable; the backward scratch
/// buffers are kBlock floats per link, small enough for the stack.
constexpr int64_t kFusedBlock = 512;

/// Applies one forward link of a fused chain to a block: dst[j] =
/// f(src[j]) for j in [0, m), where base is the block's absolute offset
/// into the [n, d] tensor (side inputs index by absolute element / row /
/// column). src == dst is allowed. See kernels.h FusedStep for the exact
/// per-kind semantics, including the accumulate-into-zero normalization.
inline void FusedApplyBlock(const FusedStep& s, const float* src, float* dst,
                            int64_t base, int64_t m, int64_t d) {
  switch (s.kind) {
    case FusedStep::Kind::kRelu:
      for (int64_t j = 0; j < m; ++j) dst[j] = ScalarRelu(src[j]);
      break;
    case FusedStep::Kind::kLeakyRelu:
      for (int64_t j = 0; j < m; ++j) dst[j] = ScalarLeakyRelu(src[j], s.alpha);
      break;
    case FusedStep::Kind::kSigmoid:
      for (int64_t j = 0; j < m; ++j) dst[j] = ScalarSigmoid(src[j]);
      break;
    case FusedStep::Kind::kTanh:
      for (int64_t j = 0; j < m; ++j) dst[j] = ScalarTanh(src[j]);
      break;
    case FusedStep::Kind::kExp:
      for (int64_t j = 0; j < m; ++j) dst[j] = ScalarExp(src[j]);
      break;
    case FusedStep::Kind::kLog:
      for (int64_t j = 0; j < m; ++j) dst[j] = ScalarLog(src[j], s.alpha);
      break;
    case FusedStep::Kind::kScale:
      for (int64_t j = 0; j < m; ++j) dst[j] = 0.0f + s.alpha * src[j];
      break;
    case FusedStep::Kind::kMul:
      for (int64_t j = 0; j < m; ++j) dst[j] = 0.0f + src[j] * s.side[base + j];
      break;
    case FusedStep::Kind::kAdd:
      for (int64_t j = 0; j < m; ++j) dst[j] = src[j] + s.side[base + j];
      break;
    case FusedStep::Kind::kSub:
      for (int64_t j = 0; j < m; ++j) dst[j] = src[j] - s.side[base + j];
      break;
    case FusedStep::Kind::kSubFrom:
      for (int64_t j = 0; j < m; ++j) dst[j] = s.side[base + j] - src[j];
      break;
    case FusedStep::Kind::kAddRowBias: {
      int64_t col = base % d;
      for (int64_t j = 0; j < m; ++j) {
        dst[j] = src[j] + s.side[col];
        if (++col == d) col = 0;
      }
      break;
    }
    case FusedStep::Kind::kMulRowScale: {
      int64_t row = base / d;
      int64_t col = base - row * d;
      for (int64_t j = 0; j < m; ++j) {
        dst[j] = 0.0f + s.side[row] * src[j];
        if (++col == d) {
          col = 0;
          ++row;
        }
      }
      break;
    }
  }
}

/// Applies one backward link to a block of incoming grads in place:
/// t[j] *= the link's local derivative, with multiplication operands in
/// the same order as the standalone backward kernels (g * dydx for
/// RowwiseMap links, alpha * g for Axpy-style links, s[row] * g for
/// RowScaleAccumulate). vin / vout are the link's recomputed input and
/// output values for the block.
inline void FusedGradBlock(const FusedStep& s, float* t, const float* vin,
                           const float* vout, int64_t base, int64_t m,
                           int64_t d) {
  switch (s.kind) {
    case FusedStep::Kind::kRelu:
      for (int64_t j = 0; j < m; ++j) t[j] = t[j] * ScalarReluGrad(vin[j]);
      break;
    case FusedStep::Kind::kLeakyRelu:
      for (int64_t j = 0; j < m; ++j) {
        t[j] = t[j] * ScalarLeakyReluGrad(vin[j], s.alpha);
      }
      break;
    case FusedStep::Kind::kSigmoid:
      for (int64_t j = 0; j < m; ++j) t[j] = t[j] * ScalarSigmoidGrad(vout[j]);
      break;
    case FusedStep::Kind::kTanh:
      for (int64_t j = 0; j < m; ++j) t[j] = t[j] * ScalarTanhGrad(vout[j]);
      break;
    case FusedStep::Kind::kExp:
      for (int64_t j = 0; j < m; ++j) t[j] = t[j] * vout[j];
      break;
    case FusedStep::Kind::kLog:
      for (int64_t j = 0; j < m; ++j) {
        t[j] = t[j] * ScalarLogGrad(vin[j], s.alpha);
      }
      break;
    case FusedStep::Kind::kScale:
      for (int64_t j = 0; j < m; ++j) t[j] = s.alpha * t[j];
      break;
    case FusedStep::Kind::kMul:
      for (int64_t j = 0; j < m; ++j) t[j] = t[j] * s.side[base + j];
      break;
    case FusedStep::Kind::kAdd:
    case FusedStep::Kind::kSub:
    case FusedStep::Kind::kAddRowBias:
      for (int64_t j = 0; j < m; ++j) t[j] = 1.0f * t[j];
      break;
    case FusedStep::Kind::kSubFrom:
      for (int64_t j = 0; j < m; ++j) t[j] = -1.0f * t[j];
      break;
    case FusedStep::Kind::kMulRowScale: {
      int64_t row = base / d;
      int64_t col = base - row * d;
      for (int64_t j = 0; j < m; ++j) {
        t[j] = s.side[row] * t[j];
        if (++col == d) {
          col = 0;
          ++row;
        }
      }
      break;
    }
  }
}

}  // namespace

void FusedChainForward(const float* x, float* out, int64_t n, int64_t d,
                       const FusedStep* steps, int32_t num_steps) {
  HYGNN_CHECK(num_steps >= 1 && num_steps <= kMaxFusedChain);
  core::ParallelFor(0, n * d, kElementGrain, [&](int64_t lo, int64_t hi) {
    // First link reads x into out, the rest run in place; one dispatch
    // per link per grain chunk.
    FusedApplyBlock(steps[0], x + lo, out + lo, lo, hi - lo, d);
    for (int32_t k = 1; k < num_steps; ++k) {
      FusedApplyBlock(steps[k], out + lo, out + lo, lo, hi - lo, d);
    }
  });
}

void FusedChainBackward(const float* x, const float* g, int64_t n, int64_t d,
                        const FusedStep* steps, int32_t num_steps, float* dx) {
  HYGNN_CHECK(num_steps >= 1 && num_steps <= kMaxFusedChain);
  core::ParallelFor(0, n * d, kElementGrain, [&](int64_t lo, int64_t hi) {
    // vals[k] holds link k's recomputed output for the current block
    // (vals[0] is unused: link 0 reads x directly).
    float vals[kMaxFusedChain + 1][kFusedBlock];
    float t[kFusedBlock];
    for (int64_t base = lo; base < hi; base += kFusedBlock) {
      const int64_t m = std::min(kFusedBlock, hi - base);
      // Backward needs every link's input and output; recompute the
      // forward chain for this block rather than storing n*d floats per
      // skipped intermediate.
      FusedApplyBlock(steps[0], x + base, vals[1], base, m, d);
      for (int32_t k = 1; k < num_steps; ++k) {
        FusedApplyBlock(steps[k], vals[k], vals[k + 1], base, m, d);
      }
      // Walk the chain rule tail-to-head. Interior grads normalize
      // through `0.0f + ...` because the unfused path materializes each
      // intermediate gradient by accumulating into a zero buffer.
      for (int64_t j = 0; j < m; ++j) t[j] = g[base + j];
      for (int32_t k = num_steps - 1; k > 0; --k) {
        FusedGradBlock(steps[k], t, vals[k], vals[k + 1], base, m, d);
        for (int64_t j = 0; j < m; ++j) t[j] = 0.0f + t[j];
      }
      FusedGradBlock(steps[0], t, x + base, vals[1], base, m, d);
      for (int64_t j = 0; j < m; ++j) dx[base + j] += t[j];
    }
  });
}

void RowSoftmaxBackward(const float* g, const float* y, int64_t n, int64_t k,
                        float* dx) {
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      float dot = 0.0f;
      for (int64_t j = 0; j < k; ++j) dot += g[i * k + j] * y[i * k + j];
      for (int64_t j = 0; j < k; ++j) {
        dx[i * k + j] += y[i * k + j] * (g[i * k + j] - dot);
      }
    }
  });
}

}  // namespace hygnn::tensor::kernels
