#include <algorithm>
#include <cmath>
#include <limits>

#include "core/rng.h"
#include "tensor/kernels/kernels.h"

namespace hygnn::tensor::kernels {

void Add(const float* a, const float* b, float* c, int64_t n) {
  core::ParallelFor(0, n, kElementGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) c[i] = a[i] + b[i];
  });
}

void Sub(const float* a, const float* b, float* c, int64_t n) {
  core::ParallelFor(0, n, kElementGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) c[i] = a[i] - b[i];
  });
}

void Axpy(float alpha, const float* x, float* y, int64_t n) {
  core::ParallelFor(0, n, kElementGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) y[i] += alpha * x[i];
  });
}

void MulAccumulate(const float* a, const float* b, float* c, int64_t n) {
  core::ParallelFor(0, n, kElementGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) c[i] += a[i] * b[i];
  });
}

void AccumulateConstant(float value, float* y, int64_t n) {
  core::ParallelFor(0, n, kElementGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) y[i] += value;
  });
}

float Sum(const float* x, int64_t n) {
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) acc += x[i];
  return acc;
}

void AddRowBroadcast(const float* x, const float* bias, float* out, int64_t n,
                     int64_t d) {
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      for (int64_t j = 0; j < d; ++j) out[i * d + j] = x[i * d + j] + bias[j];
    }
  });
}

void ColumnSumAccumulate(const float* g, int64_t n, int64_t d, float* out) {
  core::ParallelFor(0, d, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = 0; i < n; ++i) {
      const float* grow = g + i * d;
      for (int64_t j = lo; j < hi; ++j) out[j] += grow[j];
    }
  });
}

void RowScaleAccumulate(const float* s, const float* x, float* out, int64_t n,
                        int64_t d) {
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float sv = s[i];
      for (int64_t j = 0; j < d; ++j) out[i * d + j] += sv * x[i * d + j];
    }
  });
}

void RowwiseDotAccumulate(const float* a, const float* b, float* out,
                          int64_t n, int64_t d) {
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      float acc = 0.0f;
      for (int64_t j = 0; j < d; ++j) acc += a[i * d + j] * b[i * d + j];
      out[i] += acc;
    }
  });
}

void CopyColumnBlock(const float* src, int64_t n, int64_t src_d,
                     int64_t src_off, float* dst, int64_t dst_d,
                     int64_t dst_off, int64_t width) {
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* s = src + i * src_d + src_off;
      float* t = dst + i * dst_d + dst_off;
      for (int64_t j = 0; j < width; ++j) t[j] = s[j];
    }
  });
}

void AccumulateColumnBlock(const float* src, int64_t n, int64_t src_d,
                           int64_t src_off, float* dst, int64_t dst_d,
                           int64_t dst_off, int64_t width) {
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* s = src + i * src_d + src_off;
      float* t = dst + i * dst_d + dst_off;
      for (int64_t j = 0; j < width; ++j) t[j] += s[j];
    }
  });
}

void GatherRows(const float* src, int64_t d, const int32_t* indices,
                int64_t n, float* dst) {
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* s = src + static_cast<int64_t>(indices[i]) * d;
      float* t = dst + i * d;
      for (int64_t j = 0; j < d; ++j) t[j] = s[j];
    }
  });
}

void ScatterAddRows(const float* src, const int32_t* indices, int64_t n,
                    int64_t d, float* dst) {
  // Duplicate indices make row-parallelism racy, so chunk the columns:
  // each destination element is owned by one chunk and accumulates over
  // i ascending — the sequential order.
  core::ParallelFor(0, d, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = 0; i < n; ++i) {
      float* t = dst + static_cast<int64_t>(indices[i]) * d;
      const float* s = src + i * d;
      for (int64_t j = lo; j < hi; ++j) t[j] += s[j];
    }
  });
}

bool AllInRange(const int32_t* v, int64_t n, int32_t lo, int32_t hi) {
  for (int64_t i = 0; i < n; ++i) {
    if (v[i] < lo || v[i] >= hi) return false;
  }
  return true;
}

void DropoutMask(core::Rng* rng, float p, float keep_scale, float* mask,
                 int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    mask[i] = rng->Bernoulli(p) ? 0.0f : keep_scale;
  }
}

void L2NormalizeRows(const float* x, int64_t n, int64_t d, float eps,
                     float* out, float* norms) {
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      float acc = 0.0f;
      for (int64_t j = 0; j < d; ++j) {
        const float v = x[i * d + j];
        acc += v * v;
      }
      norms[i] = std::max(std::sqrt(acc), eps);
      const float inv = 1.0f / norms[i];
      for (int64_t j = 0; j < d; ++j) out[i * d + j] = x[i * d + j] * inv;
    }
  });
}

void L2NormalizeRowsBackward(const float* g, const float* y,
                             const float* norms, int64_t n, int64_t d,
                             float* dx) {
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      float dot = 0.0f;
      for (int64_t j = 0; j < d; ++j) dot += g[i * d + j] * y[i * d + j];
      const float inv = 1.0f / norms[i];
      for (int64_t j = 0; j < d; ++j) {
        dx[i * d + j] += (g[i * d + j] - y[i * d + j] * dot) * inv;
      }
    }
  });
}

void RowSoftmax(const float* x, int64_t n, int64_t k, float* out) {
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      float row_max = -std::numeric_limits<float>::infinity();
      for (int64_t j = 0; j < k; ++j) {
        row_max = std::max(row_max, x[i * k + j]);
      }
      float denom = 0.0f;
      for (int64_t j = 0; j < k; ++j) {
        out[i * k + j] = std::exp(x[i * k + j] - row_max);
        denom += out[i * k + j];
      }
      for (int64_t j = 0; j < k; ++j) out[i * k + j] /= denom;
    }
  });
}

void RowSoftmaxBackward(const float* g, const float* y, int64_t n, int64_t k,
                        float* dx) {
  core::ParallelFor(0, n, kRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      float dot = 0.0f;
      for (int64_t j = 0; j < k; ++j) dot += g[i * k + j] * y[i * k + j];
      for (int64_t j = 0; j < k; ++j) {
        dx[i * k + j] += y[i * k + j] * (g[i * k + j] - dot);
      }
    }
  });
}

}  // namespace hygnn::tensor::kernels
