#include "tensor/sparse.h"

#include <algorithm>
#include <map>

#include "core/logging.h"

namespace hygnn::tensor {

std::shared_ptr<CsrMatrix> CsrMatrix::FromCoo(
    int64_t rows, int64_t cols, const std::vector<int32_t>& row_indices,
    const std::vector<int32_t>& col_indices,
    const std::vector<float>& values) {
  HYGNN_CHECK_EQ(row_indices.size(), col_indices.size());
  HYGNN_CHECK_EQ(row_indices.size(), values.size());
  auto m = std::make_shared<CsrMatrix>();
  m->rows_ = rows;
  m->cols_ = cols;
  // Deduplicate by (row, col), summing values.
  std::map<std::pair<int32_t, int32_t>, float> cells;
  for (size_t i = 0; i < row_indices.size(); ++i) {
    HYGNN_CHECK(row_indices[i] >= 0 && row_indices[i] < rows);
    HYGNN_CHECK(col_indices[i] >= 0 && col_indices[i] < cols);
    cells[{row_indices[i], col_indices[i]}] += values[i];
  }
  m->row_ptr_.assign(static_cast<size_t>(rows) + 1, 0);
  m->col_idx_.reserve(cells.size());
  m->values_.reserve(cells.size());
  for (const auto& [key, value] : cells) {
    m->row_ptr_[static_cast<size_t>(key.first) + 1]++;
    m->col_idx_.push_back(key.second);
    m->values_.push_back(value);
  }
  for (size_t r = 1; r < m->row_ptr_.size(); ++r) {
    m->row_ptr_[r] += m->row_ptr_[r - 1];
  }
  return m;
}

std::shared_ptr<const CsrMatrix> CsrMatrix::Transpose() const {
  if (transpose_cache_) return transpose_cache_;
  std::vector<int32_t> t_rows, t_cols;
  std::vector<float> t_vals;
  t_rows.reserve(col_idx_.size());
  t_cols.reserve(col_idx_.size());
  t_vals.reserve(col_idx_.size());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      t_rows.push_back(col_idx_[k]);
      t_cols.push_back(static_cast<int32_t>(r));
      t_vals.push_back(values_[k]);
    }
  }
  transpose_cache_ = FromCoo(cols_, rows_, t_rows, t_cols, t_vals);
  return transpose_cache_;
}

void CsrMatrix::MultiplyInto(const float* x, int64_t d, float* y) const {
  for (int64_t r = 0; r < rows_; ++r) {
    float* yrow = y + r * d;
    std::fill(yrow, yrow + d, 0.0f);
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const float v = values_[k];
      const float* xrow = x + static_cast<int64_t>(col_idx_[k]) * d;
      for (int64_t j = 0; j < d; ++j) yrow[j] += v * xrow[j];
    }
  }
}

Tensor SpMM(const std::shared_ptr<const CsrMatrix>& a, const Tensor& x) {
  HYGNN_CHECK(a != nullptr);
  HYGNN_CHECK(x.defined());
  HYGNN_CHECK_EQ(a->cols(), x.rows());
  const int64_t n = a->rows(), d = x.cols();
  auto xi = x.impl();
  // SpMM is an opaque eager op reading xi->data inline; run any
  // pending recorded graph below it first.
  MaterializeTensor(xi);
  auto out = std::make_shared<TensorImpl>();
  out->rows = n;
  out->cols = d;
  out->data.assign(static_cast<size_t>(n * d), 0.0f);
  out->requires_grad = xi->requires_grad && !InferenceModeEnabled();
  a->MultiplyInto(xi->data.data(), d, out->data.data());
  if (out->requires_grad) {
    out->parents = {xi};
    TensorImpl* oi = out.get();
    out->backward_fn = [a, xi, oi, d]() {
      if (oi->grad.empty()) return;
      xi->EnsureGrad();
      auto at = a->Transpose();
      // dx += A^T * dout
      std::vector<float> tmp(xi->data.size(), 0.0f);
      at->MultiplyInto(oi->grad.data(), d, tmp.data());
      for (size_t i = 0; i < tmp.size(); ++i) xi->grad[i] += tmp[i];
    };
  }
  return Tensor(out);
}

}  // namespace hygnn::tensor
