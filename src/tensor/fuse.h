#ifndef HYGNN_TENSOR_FUSE_H_
#define HYGNN_TENSOR_FUSE_H_

#include <cstdint>
#include <vector>

#include "tensor/kernels/kernels.h"
#include "tensor/tape.h"
#include "tensor/tensor.h"

namespace hygnn::tensor {

/// Elementwise fusion pass over a linearized op tape (DESIGN.md §12).
///
/// A fused group is a chain of shape-preserving elementwise ops
/// (Relu/LeakyRelu/Sigmoid/Tanh/Exp/Log/Scale/Dropout, elementwise
/// Add/Sub/Mul, and the AddRowBroadcast/MulColumnBroadcast variants)
/// where every intermediate value has exactly one consumer — the next
/// op in the chain — and no external Tensor handle. The executor runs
/// the whole chain as a single FusedChainForward kernel invocation,
/// never allocating the intermediates; the backward pass recomputes the
/// chain per element inside one FusedChainBackward call.
///
/// Fusion rules (each checked per member):
///   * the op kind is fusable and shape-preserving along its chain
///     input (binary/broadcast ops chain through one operand; the other
///     — the side input — is read but never differentiated);
///   * every side input must NOT require grad, because the fused
///     backward propagates only along the chain;
///   * interior members are single-consumer: the consumer's shared_ptr
///     is the only reference (use_count == 1), so no external handle
///     can ever observe the skipped intermediate;
///   * chains have >= 2 members, capped at kernels::kMaxFusedChain.
struct FusedGroup {
  /// Chain members in execution order: deepest (head-side) first, the
  /// tail — the only node whose data buffer is written — last. Raw
  /// pointers; the tail's parent chain keeps every member alive.
  std::vector<TensorImpl*> members;
  /// Per member, the parent index its chain input flows through (always
  /// 0 for unary and broadcast ops; 0 or 1 for binary elementwise).
  std::vector<int32_t> chain_parent;
  /// The chain's input node (the deepest member's chain parent) — where
  /// FusedChainBackward accumulates dx.
  TensorImpl* head_input = nullptr;
  /// Interned "Fused[Dropout|LeakyRelu|Scale]" label (stable storage)
  /// used by the obs per-op attribution table.
  const char* name = "Fused";
};

/// Marks fusable chains in `order` (a topologically-sorted pending-op
/// tape, parents before consumers): interior members get
/// rec->fused_member, each tail gets rec->group. Nodes already in a
/// group are never re-grouped.
void FuseEligibleChains(const std::vector<TensorImpl*>& order);

/// Translates a group's members into the kernel-layer step descriptors
/// consumed by FusedChainForward/Backward. Side-input pointers are
/// resolved at call time, after every side has materialized.
void BuildFusedSteps(const FusedGroup& group,
                     std::vector<kernels::FusedStep>* steps);

}  // namespace hygnn::tensor

#endif  // HYGNN_TENSOR_FUSE_H_
