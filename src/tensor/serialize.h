#ifndef HYGNN_TENSOR_SERIALIZE_H_
#define HYGNN_TENSOR_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"
#include "tensor/tensor.h"

namespace hygnn::tensor {

/// Writes named tensors to a binary file (little-endian, versioned
/// header). Used for model checkpointing.
core::Status SaveTensors(
    const std::vector<std::pair<std::string, Tensor>>& named_tensors,
    const std::string& path);

/// Reads a file written by SaveTensors. Loaded tensors are leaves with
/// requires_grad = false.
core::Result<std::vector<std::pair<std::string, Tensor>>> LoadTensors(
    const std::string& path);

/// Stream form of SaveTensors: writes the same magic + version +
/// tensor-table section into `out` at the current position, so the
/// table can be embedded inside a larger container (serve::ModelBundle
/// embeds one after its config and vocabulary sections).
core::Status SaveTensorsToStream(
    const std::vector<std::pair<std::string, Tensor>>& named_tensors,
    std::ostream& out);

/// Stream form of LoadTensors: reads one tensor-table section starting
/// at the current position of `in` and leaves the stream positioned
/// just past it.
core::Result<std::vector<std::pair<std::string, Tensor>>>
LoadTensorsFromStream(std::istream& in);

/// Copies loaded values into existing parameters by position; fails on
/// count or shape mismatch with a message naming both sides. Gradients
/// and optimizer state are untouched.
core::Status RestoreParameters(
    const std::vector<std::pair<std::string, Tensor>>& loaded,
    std::vector<Tensor>* parameters);

}  // namespace hygnn::tensor

#endif  // HYGNN_TENSOR_SERIALIZE_H_
