// Tape linearizer and executor (see tape.h for the design overview).
// This file owns all numeric dispatch for recorded ops: the recording
// layer (ops.cc) never touches the kernel layer, and the forward /
// backward kernel calls here replicate the eager engine's exact
// arguments and operand order so results stay bit-identical.

#include "tensor/tape.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/flags.h"
#include "core/logging.h"
#include "obs/optime.h"
#include "tensor/debug.h"
#include "tensor/fuse.h"
#include "tensor/kernels/kernels.h"

namespace hygnn::tensor {

// OpRecord (and through it FusedGroup's shared_ptr) is complete here,
// so the out-of-line special members keep tensor.h free of tape
// internals.
TensorImpl::TensorImpl() = default;
TensorImpl::~TensorImpl() = default;

namespace {

/// Tri-state fusion flag: -1 = unset (first FusionEnabled() call reads
/// HYGNN_FUSE, default on), else 0/1. Relaxed atomics: toggled on the
/// coordinating thread before any materialization fan-out.
std::atomic<int32_t> g_fusion_state{-1};

std::atomic<uint64_t> g_ops_executed{0};
std::atomic<uint64_t> g_fused_groups{0};
std::atomic<uint64_t> g_buffers_allocated{0};

/// Zero-fills the node's output buffer. Every kernel below either
/// plain-assigns or accumulates into zero, matching the eager engine.
void AllocateOutput(TensorImpl* node) {
  node->data.assign(static_cast<size_t>(node->size()), 0.0f);
  g_buffers_allocated.fetch_add(1, std::memory_order_relaxed);
}

/// Dispatches one standalone (non-fused) op to the kernel layer. The
/// kernel names and argument order mirror the eager ops.cc exactly.
void DispatchForward(TensorImpl* node, OpRecord* rec) {
  float* out = node->data.data();
  const int64_t total = node->size();
  const TensorImpl* p0 = node->parents[0].get();
  const float* x = p0->data.data();
  switch (rec->kind) {
    case OpKind::kMatMul: {
      const TensorImpl* p1 = node->parents[1].get();
      kernels::MatMul(x, p1->data.data(), out, p0->rows, p0->cols, p1->cols);
      break;
    }
    case OpKind::kAdd:
      kernels::Add(x, node->parents[1]->data.data(), out, total);
      break;
    case OpKind::kAddRowBroadcast:
      kernels::AddRowBroadcast(x, node->parents[1]->data.data(), out,
                               node->rows, node->cols);
      break;
    case OpKind::kSub:
      kernels::Sub(x, node->parents[1]->data.data(), out, total);
      break;
    case OpKind::kMul:
      kernels::MulAccumulate(x, node->parents[1]->data.data(), out, total);
      break;
    case OpKind::kScale:
      kernels::Axpy(rec->alpha, x, out, total);
      break;
    case OpKind::kMulColumnBroadcast:
      // parents = {x, w}; the kernel takes the [n,1] scale first.
      kernels::RowScaleAccumulate(node->parents[1]->data.data(), x, out,
                                  node->rows, node->cols);
      break;
    case OpKind::kConcatCols: {
      const int64_t d1 = p0->cols;
      const int64_t d2 = node->parents[1]->cols;
      kernels::CopyColumnBlock(x, node->rows, d1, 0, out, d1 + d2, 0, d1);
      kernels::CopyColumnBlock(node->parents[1]->data.data(), node->rows, d2,
                               0, out, d1 + d2, d1, d2);
      break;
    }
    case OpKind::kIndexSelectRows:
      kernels::GatherRows(x, node->cols, rec->ibuf.data(), node->rows, out);
      break;
    case OpKind::kSegmentSoftmax:
      kernels::SegmentSoftmax(x, rec->ibuf.data(), node->rows,
                              rec->num_segments, out);
      break;
    case OpKind::kSegmentSum:
      kernels::SegmentSumAccumulate(x, rec->ibuf.data(), p0->rows, node->cols,
                                    out, rec->num_segments);
      break;
    case OpKind::kRowwiseDot:
      kernels::RowwiseDotAccumulate(x, node->parents[1]->data.data(), out,
                                    node->rows, p0->cols);
      break;
    case OpKind::kReduceSum:
      node->data[0] = kernels::Sum(x, p0->size());
      break;
    case OpKind::kRelu:
      kernels::RowwiseMap(x, out, total,
                          [](float v) { return kernels::ScalarRelu(v); });
      break;
    case OpKind::kLeakyRelu:
      kernels::RowwiseMap(x, out, total, [slope = rec->alpha](float v) {
        return kernels::ScalarLeakyRelu(v, slope);
      });
      break;
    case OpKind::kSigmoid:
      kernels::RowwiseMap(x, out, total,
                          [](float v) { return kernels::ScalarSigmoid(v); });
      break;
    case OpKind::kTanh:
      kernels::RowwiseMap(x, out, total,
                          [](float v) { return kernels::ScalarTanh(v); });
      break;
    case OpKind::kExp:
      kernels::RowwiseMap(x, out, total,
                          [](float v) { return kernels::ScalarExp(v); });
      break;
    case OpKind::kLog:
      kernels::RowwiseMap(x, out, total, [eps = rec->alpha](float v) {
        return kernels::ScalarLog(v, eps);
      });
      break;
    case OpKind::kDropout:
      kernels::MulAccumulate(x, rec->fbuf->data(), out, total);
      break;
    case OpKind::kL2NormalizeRows:
      // The norms cache feeds the backward pass; allocated here, at
      // execution time, like the eager engine allocated it per call.
      rec->fbuf = std::make_shared<std::vector<float>>(
          static_cast<size_t>(node->rows), 0.0f);
      kernels::L2NormalizeRows(x, node->rows, node->cols, rec->alpha, out,
                               rec->fbuf->data());
      break;
    case OpKind::kRowSoftmax:
      kernels::RowSoftmax(x, node->rows, node->cols, out);
      break;
    case OpKind::kTranspose:
      kernels::Transpose(x, p0->rows, p0->cols, out);
      break;
  }
}

/// Executes a fused group when the tape reaches its tail: one kernel
/// invocation, one output allocation, no intermediates.
void ExecuteFusedGroup(TensorImpl* tail) {
  const FusedGroup& group = *tail->rec->group;
  obs::OpStart(tail);
  AllocateOutput(tail);
  std::vector<kernels::FusedStep> steps;
  BuildFusedSteps(group, &steps);
  kernels::FusedChainForward(group.head_input->data.data(),
                             tail->data.data(), tail->rows, tail->cols,
                             steps.data(), static_cast<int32_t>(steps.size()));
  g_ops_executed.fetch_add(1, std::memory_order_relaxed);
  g_fused_groups.fetch_add(1, std::memory_order_relaxed);
  tail->materialized = true;
  obs::OpFinish(tail, group.name);
  GuardOpResult(tail);
}

/// Executes one tape node: allocates its output, runs the kernel, and
/// reports to obs / NumericsGuard. Fused interior members are skipped
/// (their group runs at the tail); they are marked materialized with
/// intentionally-empty data.
void ExecuteNodeForward(TensorImpl* node) {
  OpRecord* rec = node->rec.get();
  HYGNN_DCHECK(rec != nullptr) << "pending node without a tape record";
  if (rec->fused_member) {
    node->materialized = true;
    return;
  }
  if (rec->group != nullptr) {
    ExecuteFusedGroup(node);
    return;
  }
  obs::OpStart(node);
  AllocateOutput(node);
  DispatchForward(node, rec);
  g_ops_executed.fetch_add(1, std::memory_order_relaxed);
  node->materialized = true;
  obs::OpFinish(node, node->op);
  GuardOpResult(node);
}

/// Gradient dispatch for one recorded op — a line-for-line mirror of
/// the eager engine's backward closures (same kernels, same operand
/// order, same NeedsGrad gating), driven by OpKind instead of a
/// captured lambda.
void DispatchBackward(TensorImpl* node, OpRecord* rec) {
  const float* g = node->grad.data();
  const int64_t total = node->size();
  TensorImpl* p0 = node->parents[0].get();
  switch (rec->kind) {
    case OpKind::kMatMul: {
      TensorImpl* p1 = node->parents[1].get();
      const int64_t n = p0->rows, k = p0->cols, m = p1->cols;
      if (p0->requires_grad) {
        p0->EnsureGrad();
        // dA = G · Bᵀ via the transposed-operand kernel — no
        // materialized transpose.
        kernels::MatMulNT(g, p1->data.data(), p0->grad.data(), n, m, k);
      }
      if (p1->requires_grad) {
        p1->EnsureGrad();
        // dB = Aᵀ · G, likewise transpose-free.
        kernels::MatMulTN(p0->data.data(), g, p1->grad.data(), n, k, m);
      }
      break;
    }
    case OpKind::kAdd: {
      TensorImpl* p1 = node->parents[1].get();
      if (p0->requires_grad) {
        p0->EnsureGrad();
        kernels::Axpy(1.0f, g, p0->grad.data(), total);
      }
      if (p1->requires_grad) {
        p1->EnsureGrad();
        kernels::Axpy(1.0f, g, p1->grad.data(), total);
      }
      break;
    }
    case OpKind::kAddRowBroadcast: {
      TensorImpl* p1 = node->parents[1].get();
      if (p0->requires_grad) {
        p0->EnsureGrad();
        kernels::Axpy(1.0f, g, p0->grad.data(), total);
      }
      if (p1->requires_grad) {
        p1->EnsureGrad();
        kernels::ColumnSumAccumulate(g, node->rows, node->cols,
                                     p1->grad.data());
      }
      break;
    }
    case OpKind::kSub: {
      TensorImpl* p1 = node->parents[1].get();
      if (p0->requires_grad) {
        p0->EnsureGrad();
        kernels::Axpy(1.0f, g, p0->grad.data(), total);
      }
      if (p1->requires_grad) {
        p1->EnsureGrad();
        kernels::Axpy(-1.0f, g, p1->grad.data(), total);
      }
      break;
    }
    case OpKind::kMul: {
      TensorImpl* p1 = node->parents[1].get();
      if (p0->requires_grad) {
        p0->EnsureGrad();
        kernels::MulAccumulate(g, p1->data.data(), p0->grad.data(), total);
      }
      if (p1->requires_grad) {
        p1->EnsureGrad();
        kernels::MulAccumulate(g, p0->data.data(), p1->grad.data(), total);
      }
      break;
    }
    case OpKind::kScale:
      if (p0->requires_grad) {
        p0->EnsureGrad();
        kernels::Axpy(rec->alpha, g, p0->grad.data(), total);
      }
      break;
    case OpKind::kMulColumnBroadcast: {
      TensorImpl* p1 = node->parents[1].get();  // the [n,1] weights
      if (p0->requires_grad) {
        p0->EnsureGrad();
        kernels::RowScaleAccumulate(p1->data.data(), g, p0->grad.data(),
                                    node->rows, node->cols);
      }
      if (p1->requires_grad) {
        p1->EnsureGrad();
        kernels::RowwiseDotAccumulate(g, p0->data.data(), p1->grad.data(),
                                      node->rows, node->cols);
      }
      break;
    }
    case OpKind::kConcatCols: {
      TensorImpl* p1 = node->parents[1].get();
      const int64_t d1 = p0->cols, d2 = p1->cols;
      if (p0->requires_grad) {
        p0->EnsureGrad();
        kernels::AccumulateColumnBlock(g, node->rows, d1 + d2, 0,
                                       p0->grad.data(), d1, 0, d1);
      }
      if (p1->requires_grad) {
        p1->EnsureGrad();
        kernels::AccumulateColumnBlock(g, node->rows, d1 + d2, d1,
                                       p1->grad.data(), d2, 0, d2);
      }
      break;
    }
    case OpKind::kIndexSelectRows:
      p0->EnsureGrad();
      kernels::ScatterAddRows(g, rec->ibuf.data(), node->rows, node->cols,
                              p0->grad.data());
      break;
    case OpKind::kSegmentSoftmax:
      p0->EnsureGrad();
      kernels::SegmentSoftmaxBackward(g, node->data.data(), rec->ibuf.data(),
                                      node->rows, rec->num_segments,
                                      p0->grad.data());
      break;
    case OpKind::kSegmentSum:
      p0->EnsureGrad();
      kernels::SegmentSumBackward(g, rec->ibuf.data(), p0->rows, node->cols,
                                  p0->grad.data());
      break;
    case OpKind::kRowwiseDot: {
      TensorImpl* p1 = node->parents[1].get();
      if (p0->requires_grad) {
        p0->EnsureGrad();
        kernels::RowScaleAccumulate(g, p1->data.data(), p0->grad.data(),
                                    p0->rows, p0->cols);
      }
      if (p1->requires_grad) {
        p1->EnsureGrad();
        kernels::RowScaleAccumulate(g, p0->data.data(), p1->grad.data(),
                                    p0->rows, p0->cols);
      }
      break;
    }
    case OpKind::kReduceSum:
      p0->EnsureGrad();
      kernels::AccumulateConstant(node->grad[0], p0->grad.data(), p0->size());
      break;
    case OpKind::kRelu:
      p0->EnsureGrad();
      kernels::RowwiseMapGradAccumulate(
          p0->data.data(), node->data.data(), g, p0->grad.data(), total,
          [](float v, float) { return kernels::ScalarReluGrad(v); });
      break;
    case OpKind::kLeakyRelu:
      p0->EnsureGrad();
      kernels::RowwiseMapGradAccumulate(
          p0->data.data(), node->data.data(), g, p0->grad.data(), total,
          [slope = rec->alpha](float v, float) {
            return kernels::ScalarLeakyReluGrad(v, slope);
          });
      break;
    case OpKind::kSigmoid:
      p0->EnsureGrad();
      kernels::RowwiseMapGradAccumulate(
          p0->data.data(), node->data.data(), g, p0->grad.data(), total,
          [](float, float y) { return kernels::ScalarSigmoidGrad(y); });
      break;
    case OpKind::kTanh:
      p0->EnsureGrad();
      kernels::RowwiseMapGradAccumulate(
          p0->data.data(), node->data.data(), g, p0->grad.data(), total,
          [](float, float y) { return kernels::ScalarTanhGrad(y); });
      break;
    case OpKind::kExp:
      p0->EnsureGrad();
      kernels::RowwiseMapGradAccumulate(
          p0->data.data(), node->data.data(), g, p0->grad.data(), total,
          [](float, float y) { return y; });
      break;
    case OpKind::kLog:
      p0->EnsureGrad();
      kernels::RowwiseMapGradAccumulate(
          p0->data.data(), node->data.data(), g, p0->grad.data(), total,
          [eps = rec->alpha](float v, float) {
            return kernels::ScalarLogGrad(v, eps);
          });
      break;
    case OpKind::kDropout:
      p0->EnsureGrad();
      kernels::MulAccumulate(g, rec->fbuf->data(), p0->grad.data(), total);
      break;
    case OpKind::kL2NormalizeRows:
      p0->EnsureGrad();
      kernels::L2NormalizeRowsBackward(g, node->data.data(),
                                       rec->fbuf->data(), node->rows,
                                       node->cols, p0->grad.data());
      break;
    case OpKind::kRowSoftmax:
      p0->EnsureGrad();
      kernels::RowSoftmaxBackward(g, node->data.data(), node->rows,
                                  node->cols, p0->grad.data());
      break;
    case OpKind::kTranspose:
      // Recorded detached; never reached with requires_grad set.
      break;
  }
}

/// Backward of a fused group (runs when the tail's turn comes in the
/// reverse-topological sweep — by then the tail's grad has accumulated
/// every consumer contribution, exactly like the unfused path).
void FusedGroupBackward(TensorImpl* tail) {
  const FusedGroup& group = *tail->rec->group;
  TensorImpl* head = group.head_input;
  if (!head->requires_grad) return;
  head->EnsureGrad();
  std::vector<kernels::FusedStep> steps;
  BuildFusedSteps(group, &steps);
  kernels::FusedChainBackward(head->data.data(), tail->grad.data(),
                              tail->rows, tail->cols, steps.data(),
                              static_cast<int32_t>(steps.size()),
                              head->grad.data());
}

void RunRecordBackward(TensorImpl* node, OpRecord* rec) {
  if (node->grad.empty()) return;
  if (rec->group != nullptr) {
    FusedGroupBackward(node);
    return;
  }
  DispatchBackward(node, rec);
}

}  // namespace

std::shared_ptr<TensorImpl> RecordOp(
    const char* op, OpKind kind, int64_t rows, int64_t cols,
    std::vector<std::shared_ptr<TensorImpl>> parents, bool detached) {
  HYGNN_CHECK_GT(rows, 0);
  HYGNN_CHECK_GT(cols, 0);
  auto out = std::make_shared<TensorImpl>();
  out->op = op;
  out->rows = rows;
  out->cols = cols;
  out->materialized = false;
  out->requires_grad =
      !detached && !InferenceModeEnabled() &&
      std::any_of(parents.begin(), parents.end(),
                  [](const std::shared_ptr<TensorImpl>& p) {
                    return p->requires_grad;
                  });
  out->parents = std::move(parents);
  out->rec = std::make_unique<OpRecord>();
  out->rec->kind = kind;
  return out;
}

Tensor FinishRecord(std::shared_ptr<TensorImpl> out) {
  // Under the numerics watchdog every op materializes at the call site,
  // restoring the eager engine's program-order NaN attribution (a lazy
  // first-read would blame the op whose *read* triggered execution).
  if (NumericsGuard::enabled()) MaterializeTensor(out);
  return Tensor(std::move(out));
}

void MaterializeTensor(const std::shared_ptr<TensorImpl>& root) {
  if (root == nullptr || root->materialized) return;
  // Linearize: iterative post-order DFS over the *pending* subgraph —
  // the same traversal Tensor::Backward uses over the full graph, so
  // execution order is a fixed function of the recorded graph shape.
  // Materialized parents are frontier inputs, not tape entries.
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  std::vector<std::pair<TensorImpl*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, child_index] = stack.back();
    if (child_index < node->parents.size()) {
      TensorImpl* parent = node->parents[child_index++].get();
      if (!parent->materialized && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  if (FusionEnabled()) FuseEligibleChains(order);
  for (TensorImpl* node : order) ExecuteNodeForward(node);
  // Nodes that will never run backward keep neither graph edges nor
  // tape state — inference forwards end up as plain value nodes (the
  // serve tests pin this with GraphLint), and skipped fused
  // intermediates are freed here with their data never allocated.
  for (TensorImpl* node : order) {
    if (!node->requires_grad) {
      node->parents.clear();
      node->rec.reset();
    }
  }
}

void ExecuteNodeBackward(TensorImpl* node, bool time_ops) {
  if (node->backward_fn) {
    ++node->backward_runs;
    if (time_ops) {
      // Attribute each node's gradient kernel to its producing op —
      // the backward half of the obs per-op attribution table.
      const uint64_t start = obs::NowNanos();
      node->backward_fn();
      obs::RecordBackward(node->op, obs::NowNanos() - start);
    } else {
      node->backward_fn();
    }
    return;
  }
  OpRecord* rec = node->rec.get();
  if (rec == nullptr || !node->requires_grad) return;
  ++node->backward_runs;
  // Interior members of a fused group have no work of their own — the
  // tail's FusedChainBackward covers the whole chain. The run counter
  // still advances so GraphLint's double-backward detection sees them.
  if (rec->fused_member) return;
  if (time_ops) {
    const uint64_t start = obs::NowNanos();
    RunRecordBackward(node, rec);
    obs::RecordBackward(rec->group != nullptr ? rec->group->name : node->op,
                        obs::NowNanos() - start);
  } else {
    RunRecordBackward(node, rec);
  }
}

void SetFusionEnabled(bool enabled) {
  g_fusion_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool FusionEnabled() {
  int32_t state = g_fusion_state.load(std::memory_order_relaxed);
  if (state < 0) {
    state = core::EnvFlag("HYGNN_FUSE", true) ? 1 : 0;
    g_fusion_state.store(state, std::memory_order_relaxed);
  }
  return state == 1;
}

ExecStatsSnapshot ExecStats() {
  ExecStatsSnapshot snapshot;
  snapshot.ops_executed = g_ops_executed.load(std::memory_order_relaxed);
  snapshot.fused_groups = g_fused_groups.load(std::memory_order_relaxed);
  snapshot.buffers_allocated =
      g_buffers_allocated.load(std::memory_order_relaxed);
  return snapshot;
}

void ResetExecStats() {
  g_ops_executed.store(0, std::memory_order_relaxed);
  g_fused_groups.store(0, std::memory_order_relaxed);
  g_buffers_allocated.store(0, std::memory_order_relaxed);
}

bool IndicesInRange(const int32_t* v, int64_t n, int32_t lo, int32_t hi) {
  return kernels::AllInRange(v, n, lo, hi);
}

void DrawDropoutMask(core::Rng* rng, float p, float keep_scale, float* mask,
                     int64_t n) {
  kernels::DropoutMask(rng, p, keep_scale, mask, n);
}

}  // namespace hygnn::tensor
