#include "tensor/optimizer.h"

#include <cmath>

#include "core/logging.h"
#include "tensor/debug.h"

namespace hygnn::tensor {

Optimizer::Optimizer(std::vector<Tensor> parameters)
    : parameters_(std::move(parameters)) {
  for (const auto& p : parameters_) {
    HYGNN_CHECK(p.defined());
    HYGNN_CHECK(p.requires_grad());
  }
}

void Optimizer::ZeroGrad() {
  for (auto& p : parameters_) p.ZeroGrad();
}

float Optimizer::GradNorm() const {
  double total_sq = 0.0;
  for (const auto& p : parameters_) {
    if (!p.has_grad()) continue;
    const float* g = p.grad();
    for (int64_t i = 0; i < p.size(); ++i) {
      total_sq += static_cast<double>(g[i]) * g[i];
    }
  }
  return static_cast<float>(std::sqrt(total_sq));
}

float Optimizer::ClipGradNorm(float max_norm) {
  const float norm = GradNorm();
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& p : parameters_) {
      if (!p.has_grad()) continue;
      float* g = p.grad();
      for (int64_t i = 0; i < p.size(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Tensor> parameters, float lr, float weight_decay)
    : Optimizer(std::move(parameters)), lr_(lr), weight_decay_(weight_decay) {
  HYGNN_DCHECK(std::isfinite(lr) && lr > 0.0f) << "Sgd lr " << lr;
  HYGNN_DCHECK(std::isfinite(weight_decay) && weight_decay >= 0.0f);
}

void Sgd::Step() {
  for (auto& p : parameters_) {
    if (!p.has_grad()) continue;
    HYGNN_DCHECK(AllFinite(p.grad(), p.size()))
        << "Sgd::Step: non-finite gradient in parameter " << p.ToString()
        << " — enable NumericsGuard to find the producing op";
    float* w = p.data();
    const float* g = p.grad();
    for (int64_t i = 0; i < p.size(); ++i) {
      w[i] -= lr_ * (g[i] + weight_decay_ * w[i]);
    }
  }
}

Adam::Adam(std::vector<Tensor> parameters, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(parameters)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  HYGNN_DCHECK(std::isfinite(lr) && lr > 0.0f) << "Adam lr " << lr;
  HYGNN_DCHECK(beta1 >= 0.0f && beta1 < 1.0f) << "Adam beta1 " << beta1;
  HYGNN_DCHECK(beta2 >= 0.0f && beta2 < 1.0f) << "Adam beta2 " << beta2;
  HYGNN_DCHECK(eps > 0.0f) << "Adam eps " << eps;
  m_.resize(parameters_.size());
  v_.resize(parameters_.size());
  for (size_t i = 0; i < parameters_.size(); ++i) {
    m_[i].assign(static_cast<size_t>(parameters_[i].size()), 0.0f);
    v_[i].assign(static_cast<size_t>(parameters_[i].size()), 0.0f);
  }
}

AdamState Adam::ExportState() const {
  AdamState state;
  state.step = t_;
  state.m = m_;
  state.v = v_;
  return state;
}

core::Status Adam::RestoreState(const AdamState& state) {
  if (state.m.size() != m_.size() || state.v.size() != v_.size()) {
    return core::Status::InvalidArgument(
        "Adam state parameter count mismatch: state has " +
        std::to_string(state.m.size()) + "/" + std::to_string(state.v.size()) +
        " (m/v), optimizer has " + std::to_string(m_.size()));
  }
  for (size_t i = 0; i < m_.size(); ++i) {
    if (state.m[i].size() != m_[i].size() ||
        state.v[i].size() != v_[i].size()) {
      return core::Status::InvalidArgument(
          "Adam state size mismatch at parameter " + std::to_string(i) +
          ": state has " + std::to_string(state.m[i].size()) +
          " elements, optimizer has " + std::to_string(m_[i].size()));
    }
  }
  if (state.step < 0) {
    return core::Status::InvalidArgument(
        "Adam state has negative step count " + std::to_string(state.step));
  }
  t_ = state.step;
  m_ = state.m;
  v_ = state.v;
  return core::Status::Ok();
}

void Adam::Step() {
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t pi = 0; pi < parameters_.size(); ++pi) {
    auto& p = parameters_[pi];
    if (!p.has_grad()) continue;
    HYGNN_DCHECK(AllFinite(p.grad(), p.size()))
        << "Adam::Step: non-finite gradient in parameter " << p.ToString()
        << " — enable NumericsGuard to find the producing op";
    float* w = p.data();
    const float* g = p.grad();
    for (int64_t i = 0; i < p.size(); ++i) {
      const float grad = g[i] + weight_decay_ * w[i];
      m_[pi][i] = beta1_ * m_[pi][i] + (1.0f - beta1_) * grad;
      v_[pi][i] = beta2_ * v_[pi][i] + (1.0f - beta2_) * grad * grad;
      const float m_hat = m_[pi][i] / bias1;
      const float v_hat = v_[pi][i] / bias2;
      w[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace hygnn::tensor
