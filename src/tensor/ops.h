#ifndef HYGNN_TENSOR_OPS_H_
#define HYGNN_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "tensor/tensor.h"

namespace hygnn::tensor {

/// All operators build the dynamic autograd graph: the result requires
/// grad iff any input does, and carries a closure that back-propagates
/// into its inputs when `Tensor::Backward()` runs on a downstream scalar.
///
/// This is the *autograd layer*: shape checks and graph wiring only.
/// The numeric work (forward and backward) is delegated to the raw
/// float kernels in tensor/kernels/kernels.h, which parallelize over
/// the global core::ThreadPool with bit-identical results at any
/// thread count (see DESIGN.md §7).

/// Dense matrix product: [n,k] x [k,m] -> [n,m].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Elementwise sum of same-shape tensors.
Tensor Add(const Tensor& a, const Tensor& b);

/// Adds a [1,d] bias row to every row of a [n,d] tensor.
Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias);

/// Elementwise difference of same-shape tensors.
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise (Hadamard) product of same-shape tensors.
Tensor Mul(const Tensor& a, const Tensor& b);

/// Multiplies every element by the constant `s`.
Tensor Scale(const Tensor& x, float s);

/// Multiplies row i of x [n,d] by the scalar w[i] (w is [n,1]). This is
/// the attention-weighting primitive: out_i = w_i * x_i.
Tensor MulColumnBroadcast(const Tensor& x, const Tensor& w);

/// Concatenates along columns: [n,d1] ++ [n,d2] -> [n,d1+d2].
Tensor ConcatCols(const Tensor& a, const Tensor& b);

/// Gathers rows: out[i] = x[indices[i]]. Gradients scatter-add back.
Tensor IndexSelectRows(const Tensor& x, const std::vector<int32_t>& indices);

/// Softmax of a [n,1] score column computed independently within each
/// segment: out_i = exp(s_i) / sum_{j: seg[j]==seg[i]} exp(s_j).
/// Numerically stabilized by per-segment max subtraction. Empty segments
/// are allowed (they simply have no rows).
Tensor SegmentSoftmax(const Tensor& scores,
                      const std::vector<int32_t>& segment_ids,
                      int64_t num_segments);

/// Sums rows of x [n,d] into per-segment accumulators:
/// out[s] = sum_{i: seg[i]==s} x[i]; result is [num_segments, d].
Tensor SegmentSum(const Tensor& x, const std::vector<int32_t>& segment_ids,
                  int64_t num_segments);

/// Row-wise dot product of same-shape [n,d] tensors -> [n,1].
Tensor RowwiseDot(const Tensor& a, const Tensor& b);

/// Sum of all elements -> scalar [1,1].
Tensor ReduceSum(const Tensor& x);

/// Mean of all elements -> scalar [1,1].
Tensor ReduceMean(const Tensor& x);

/// Elementwise max(x, 0).
Tensor Relu(const Tensor& x);

/// Elementwise x >= 0 ? x : slope * x.
Tensor LeakyRelu(const Tensor& x, float slope = 0.01f);

/// Elementwise logistic sigmoid.
Tensor Sigmoid(const Tensor& x);

/// Elementwise hyperbolic tangent.
Tensor Tanh(const Tensor& x);

/// Elementwise exponential.
Tensor Exp(const Tensor& x);

/// Elementwise natural log of max(x, eps) for numerical safety.
Tensor Log(const Tensor& x, float eps = 1e-12f);

/// Inverted dropout: when `training`, zeroes each element with
/// probability p and scales survivors by 1/(1-p); identity otherwise.
Tensor Dropout(const Tensor& x, float p, bool training, core::Rng* rng);

/// Row-wise L2 normalization: out_i = x_i / max(||x_i||, eps).
Tensor L2NormalizeRows(const Tensor& x, float eps = 1e-12f);

/// Row-wise softmax of a [n, k] tensor (numerically stabilized).
Tensor RowSoftmax(const Tensor& x);

/// Transpose without autograd support (helper for inference paths).
Tensor TransposeNoGrad(const Tensor& x);

}  // namespace hygnn::tensor

#endif  // HYGNN_TENSOR_OPS_H_
