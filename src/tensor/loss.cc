#include "tensor/loss.h"

#include <cmath>

#include "core/logging.h"
#include "obs/optime.h"
#include "tensor/debug.h"
#include "tensor/ops.h"

namespace hygnn::tensor {

Tensor BceWithLogitsLoss(const Tensor& logits,
                         const std::vector<float>& targets) {
  HYGNN_CHECK(logits.defined());
  HYGNN_CHECK_EQ(logits.cols(), 1);
  HYGNN_CHECK_EQ(logits.rows(), static_cast<int64_t>(targets.size()));
  const int64_t n = logits.rows();
  auto zi = logits.impl();
  // This loss reads zi->data inline (it is an opaque eager op, not a
  // recorded one), so a pending logits graph executes here.
  MaterializeTensor(zi);
  for (float y : targets) {
    HYGNN_DCHECK(y >= 0.0f && y <= 1.0f)
        << "BceWithLogitsLoss target " << y << " outside [0, 1]";
  }

  auto out = std::make_shared<TensorImpl>();
  out->op = "BceWithLogitsLoss";
  out->rows = 1;
  out->cols = 1;
  out->data.assign(1, 0.0f);
  out->requires_grad = zi->requires_grad && !InferenceModeEnabled();
  if (out->requires_grad) out->parents = {zi};
  obs::OpStart(out.get());

  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float z = zi->data[i];
    const float y = targets[i];
    acc += std::max(z, 0.0f) - z * y + std::log1p(std::exp(-std::fabs(z)));
  }
  out->data[0] = static_cast<float>(acc / static_cast<double>(n));

  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    auto targets_copy = targets;
    out->backward_fn = [zi, oi, targets_copy, n]() {
      if (oi->grad.empty()) return;
      zi->EnsureGrad();
      const float g = oi->grad[0] / static_cast<float>(n);
      for (int64_t i = 0; i < n; ++i) {
        const float z = zi->data[i];
        float sig;
        if (z >= 0.0f) {
          const float e = std::exp(-z);
          sig = 1.0f / (1.0f + e);
        } else {
          const float e = std::exp(z);
          sig = e / (1.0f + e);
        }
        zi->grad[i] += g * (sig - targets_copy[i]);
      }
    };
  }
  obs::OpFinish(out.get(), out->op);
  GuardOpResult(out);
  return Tensor(out);
}

Tensor BceLoss(const Tensor& probs, const std::vector<float>& targets,
               float eps) {
  HYGNN_CHECK(probs.defined());
  HYGNN_CHECK_EQ(probs.cols(), 1);
  HYGNN_CHECK_EQ(probs.rows(), static_cast<int64_t>(targets.size()));
  const int64_t n = probs.rows();
  HYGNN_DCHECK(AllFinite(probs.data(), n))
      << "BceLoss probabilities contain NaN/Inf";
  for (float t : targets) {
    HYGNN_DCHECK(t >= 0.0f && t <= 1.0f)
        << "BceLoss target " << t << " outside [0, 1]";
  }
  Tensor y = Tensor::FromVector(targets, n, 1);
  Tensor one = Tensor::Full(n, 1, 1.0f);
  // -(y*log(p) + (1-y)*log(1-p)) averaged.
  Tensor term1 = Mul(y, Log(probs, eps));
  Tensor term2 = Mul(Sub(one, y), Log(Sub(one, probs), eps));
  return Scale(ReduceMean(Add(term1, term2)), -1.0f);
}

Tensor MseLoss(const Tensor& predictions, const std::vector<float>& targets) {
  HYGNN_CHECK(predictions.defined());
  HYGNN_CHECK_EQ(predictions.cols(), 1);
  HYGNN_CHECK_EQ(predictions.rows(), static_cast<int64_t>(targets.size()));
  Tensor y = Tensor::FromVector(targets, predictions.rows(), 1);
  Tensor diff = Sub(predictions, y);
  return ReduceMean(Mul(diff, diff));
}

Tensor SoftmaxCrossEntropyLoss(const Tensor& logits,
                               const std::vector<int32_t>& labels) {
  HYGNN_CHECK(logits.defined());
  const int64_t n = logits.rows(), k = logits.cols();
  HYGNN_CHECK_EQ(n, static_cast<int64_t>(labels.size()));
  for (int32_t label : labels) {
    HYGNN_CHECK(label >= 0 && label < k);
  }
  auto zi = logits.impl();
  // Opaque eager op: reads zi->data inline, so execute any pending
  // graph first.
  MaterializeTensor(zi);
  auto out = std::make_shared<TensorImpl>();
  out->op = "SoftmaxCrossEntropyLoss";
  out->rows = 1;
  out->cols = 1;
  out->data.assign(1, 0.0f);
  out->requires_grad = zi->requires_grad && !InferenceModeEnabled();
  if (out->requires_grad) out->parents = {zi};
  obs::OpStart(out.get());

  // Cache the softmax for the backward pass.
  auto softmax = std::make_shared<std::vector<float>>(
      static_cast<size_t>(n * k));
  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    float row_max = zi->data[i * k];
    for (int64_t j = 1; j < k; ++j) {
      row_max = std::max(row_max, zi->data[i * k + j]);
    }
    double denom = 0.0;
    for (int64_t j = 0; j < k; ++j) {
      const double e = std::exp(zi->data[i * k + j] - row_max);
      (*softmax)[static_cast<size_t>(i * k + j)] = static_cast<float>(e);
      denom += e;
    }
    for (int64_t j = 0; j < k; ++j) {
      (*softmax)[static_cast<size_t>(i * k + j)] /=
          static_cast<float>(denom);
    }
    total -= std::log(std::max<double>(
        (*softmax)[static_cast<size_t>(i * k + labels[i])], 1e-30));
  }
  out->data[0] = static_cast<float>(total / static_cast<double>(n));

  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    auto labels_copy = labels;
    out->backward_fn = [zi, oi, softmax, labels_copy, n, k]() {
      if (oi->grad.empty()) return;
      zi->EnsureGrad();
      const float g = oi->grad[0] / static_cast<float>(n);
      for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < k; ++j) {
          float delta = (*softmax)[static_cast<size_t>(i * k + j)];
          if (j == labels_copy[i]) delta -= 1.0f;
          zi->grad[i * k + j] += g * delta;
        }
      }
    };
  }
  obs::OpFinish(out.get(), out->op);
  GuardOpResult(out);
  return Tensor(out);
}

}  // namespace hygnn::tensor
