#ifndef HYGNN_TENSOR_TENSOR_H_
#define HYGNN_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/logging.h"

namespace hygnn::tensor {

/// Tape record for a recorded-but-not-yet-executed op (tensor/tape.h).
struct OpRecord;

/// Internal storage and autograd node for a Tensor. Holds the value, the
/// accumulated gradient, and the closure that propagates gradients to the
/// node's parents in the dynamic computation graph.
struct TensorImpl {
  std::vector<float> data;
  std::vector<float> grad;  // same length as data once EnsureGrad ran
  int64_t rows = 0;
  int64_t cols = 0;
  bool requires_grad = false;

  /// Propagates this node's gradient into its parents' gradients. Used
  /// by opaque eager ops (loss.cc, sparse.cc, hand-built nodes); ops
  /// recorded through tensor/ops.cc carry an OpRecord instead.
  std::function<void()> backward_fn;
  std::vector<std::shared_ptr<TensorImpl>> parents;

  /// Name of the operator that produced this node ("leaf" for inputs and
  /// parameters). Static strings only; used by NumericsGuard reports and
  /// GraphLint (see tensor/debug.h).
  const char* op = "leaf";

  /// How many times Backward() has run this node's backward_fn. A value
  /// above 1 means gradients were double-accumulated through this node
  /// (flagged by GraphLint).
  int32_t backward_runs = 0;

  /// False while the node is a recorded tape op whose value has not been
  /// computed yet; the executor (tensor/tape.cc) flips it after writing
  /// `data`. Leaves and hand-built nodes are born materialized.
  bool materialized = true;

  /// Present on every node produced by the recording layer
  /// (tensor/ops.cc): the op kind plus op-specific payload the executor
  /// dispatches on. Cleared after execution for nodes that will never
  /// run backward, so inference graphs carry no tape state.
  std::unique_ptr<OpRecord> rec;

  TensorImpl();   // defined in tape.cc (OpRecord is incomplete here)
  ~TensorImpl();  // likewise

  int64_t size() const { return rows * cols; }

  /// Allocates (zero-filled) gradient storage if absent.
  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

/// Executes the pending tape subgraph below `root`: linearizes it into
/// topological order, runs the elementwise fusion pass (tensor/fuse.h)
/// when enabled, and dispatches every op to the kernel layer. No-op
/// when `root` is already materialized. Declared here so Tensor's
/// accessors can trigger it; implementation in tensor/tape.cc.
void MaterializeTensor(const std::shared_ptr<TensorImpl>& root);

/// RAII guard that switches the whole tensor engine into inference
/// mode while alive: every operator executed inside the scope produces
/// a detached result — requires_grad is forced off, no parents are
/// recorded, and no backward_fn closure is allocated — regardless of
/// whether the inputs are trainable parameters. Serving paths wrap
/// their forward passes in this scope so scoring millions of pairs
/// allocates zero autograd graph nodes (verified with GraphLint in the
/// serve tests).
///
/// Scopes nest; the engine leaves inference mode when the outermost
/// scope is destroyed. The flag is process-global (not thread-local)
/// so kernel worker threads spawned by core::ParallelFor inherit it;
/// do not run training concurrently with an active inference scope —
/// the same restriction the global thread pool already imposes.
class InferenceModeScope {
 public:
  InferenceModeScope();
  ~InferenceModeScope();

  InferenceModeScope(const InferenceModeScope&) = delete;
  InferenceModeScope& operator=(const InferenceModeScope&) = delete;
};

/// True while at least one InferenceModeScope is alive.
bool InferenceModeEnabled();

/// A dense row-major 2-D float tensor with reverse-mode autograd.
///
/// Tensor is a cheap shared handle: copying a Tensor aliases the same
/// storage and autograd node. Column vectors are [n, 1], row vectors
/// [1, d], scalars [1, 1]. Gradients are accumulated by `Backward()`
/// called on a scalar result (typically a loss).
class Tensor {
 public:
  /// Constructs a null tensor (no storage). `defined()` is false.
  Tensor() = default;

  /// Wraps an existing implementation node.
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  /// A [rows, cols] tensor of zeros.
  static Tensor Zeros(int64_t rows, int64_t cols, bool requires_grad = false);

  /// A [rows, cols] tensor filled with `value`.
  static Tensor Full(int64_t rows, int64_t cols, float value,
                     bool requires_grad = false);

  /// A [rows, cols] tensor initialized from `values` (row-major;
  /// values.size() must equal rows*cols).
  static Tensor FromVector(std::vector<float> values, int64_t rows,
                           int64_t cols, bool requires_grad = false);

  /// A [1, 1] scalar tensor.
  static Tensor Scalar(float value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }

  int64_t rows() const {
    HYGNN_DCHECK(defined()) << "rows() on a null tensor";
    return impl_->rows;
  }
  int64_t cols() const {
    HYGNN_DCHECK(defined()) << "cols() on a null tensor";
    return impl_->cols;
  }
  int64_t size() const {
    HYGNN_DCHECK(defined()) << "size() on a null tensor";
    return impl_->size();
  }
  bool requires_grad() const {
    HYGNN_DCHECK(defined()) << "requires_grad() on a null tensor";
    return impl_->requires_grad;
  }

  float* data() {
    EnsureValue();
    return impl_->data.data();
  }
  const float* data() const {
    EnsureValue();
    return impl_->data.data();
  }

  /// Gradient storage; valid after Backward() reached this node.
  float* grad() { return impl_->grad.data(); }
  const float* grad() const { return impl_->grad.data(); }
  bool has_grad() const { return !impl_->grad.empty(); }

  float At(int64_t r, int64_t c) const;
  void Set(int64_t r, int64_t c, float value);

  /// Value of a [1, 1] tensor.
  float item() const;

  /// Runs reverse-mode differentiation from this node. The node must be a
  /// scalar ([1, 1]); its gradient is seeded with 1.
  void Backward();

  /// Clears this node's gradient (if allocated).
  void ZeroGrad();

  /// Detaches from the autograd graph: returns a tensor sharing no
  /// history (fresh copy of the data, requires_grad = false).
  Tensor Detach() const;

  /// Deep copy of the data into a new leaf tensor.
  Tensor Clone() const;

  /// Human-readable summary, e.g. "Tensor[3x4]".
  std::string ToString() const;

  std::shared_ptr<TensorImpl> impl() const { return impl_; }

 private:
  /// Runs the recorded tape below this tensor if its value is pending.
  /// Reading through `impl()` directly bypasses this — callers doing so
  /// must call MaterializeTensor themselves (see loss.cc, sparse.cc).
  void EnsureValue() const {
    if (impl_ != nullptr && !impl_->materialized) MaterializeTensor(impl_);
  }

  std::shared_ptr<TensorImpl> impl_;
};

}  // namespace hygnn::tensor

#endif  // HYGNN_TENSOR_TENSOR_H_
