#ifndef HYGNN_TENSOR_INIT_H_
#define HYGNN_TENSOR_INIT_H_

#include "core/rng.h"
#include "tensor/tensor.h"

namespace hygnn::tensor {

/// Glorot/Xavier uniform initialization: U(-a, a) with
/// a = sqrt(6 / (fan_in + fan_out)). Standard for attention/GNN weights.
Tensor XavierUniform(int64_t fan_in, int64_t fan_out, core::Rng* rng,
                     bool requires_grad = true);

/// He/Kaiming uniform initialization: U(-a, a) with a = sqrt(6 / fan_in).
/// Preferred in front of ReLU nonlinearities.
Tensor HeUniform(int64_t fan_in, int64_t fan_out, core::Rng* rng,
                 bool requires_grad = true);

/// Uniform initialization in [lo, hi).
Tensor UniformInit(int64_t rows, int64_t cols, float lo, float hi,
                   core::Rng* rng, bool requires_grad = true);

/// Gaussian initialization N(0, stddev^2).
Tensor NormalInit(int64_t rows, int64_t cols, float stddev, core::Rng* rng,
                  bool requires_grad = true);

}  // namespace hygnn::tensor

#endif  // HYGNN_TENSOR_INIT_H_
