#ifndef HYGNN_TENSOR_LOSS_H_
#define HYGNN_TENSOR_LOSS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace hygnn::tensor {

/// Numerically stable binary cross-entropy on raw scores (logits):
///   loss = mean_i [ max(z,0) - z*y + log(1 + exp(-|z|)) ]
/// This is eq. (12) of the HyGNN paper (summed form there; we use the
/// mean so the learning rate is independent of batch size) fused with the
/// decoder's sigmoid for stability.
///
/// `logits` is [n,1]; `targets` holds n labels in {0, 1}.
Tensor BceWithLogitsLoss(const Tensor& logits,
                         const std::vector<float>& targets);

/// Plain binary cross-entropy on probabilities in (0, 1); provided for
/// parity with the paper's formulation. Prefer BceWithLogitsLoss.
Tensor BceLoss(const Tensor& probs, const std::vector<float>& targets,
               float eps = 1e-7f);

/// Mean squared error between predictions [n,1] and targets.
Tensor MseLoss(const Tensor& predictions, const std::vector<float>& targets);

/// Fused softmax + cross-entropy on raw class scores: `logits` is
/// [n, k], `labels` holds n class indices in [0, k). Mean over rows.
/// Used by the typed-DDI extension (multi-relational prediction).
Tensor SoftmaxCrossEntropyLoss(const Tensor& logits,
                               const std::vector<int32_t>& labels);

}  // namespace hygnn::tensor

#endif  // HYGNN_TENSOR_LOSS_H_
