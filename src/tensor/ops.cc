// Autograd layer: shape checks, graph wiring, and forward/backward
// dispatch. All numeric loops live in the kernel layer
// (tensor/kernels/) — scripts/lint.py enforces that this file contains
// no raw compute loops, which keeps the backend seam (threading, SIMD,
// alternative kernels) below this file.

#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"
#include "obs/optime.h"
#include "tensor/debug.h"
#include "tensor/kernels/kernels.h"

namespace hygnn::tensor {

namespace {

/// Allocates the output node for a unary/binary op and wires parents.
/// `op` must be a static string; it labels the node for NumericsGuard /
/// GraphLint reports. Under an InferenceModeScope the result is always
/// detached: no parents, no backward_fn, requires_grad off.
std::shared_ptr<TensorImpl> MakeOutput(
    const char* op, int64_t rows, int64_t cols,
    std::vector<std::shared_ptr<TensorImpl>> parents) {
  auto out = std::make_shared<TensorImpl>();
  out->op = op;
  out->rows = rows;
  out->cols = cols;
  out->data.assign(static_cast<size_t>(rows * cols), 0.0f);
  out->requires_grad =
      !InferenceModeEnabled() &&
      std::any_of(parents.begin(), parents.end(),
                  [](const std::shared_ptr<TensorImpl>& p) {
                    return p->requires_grad;
                  });
  if (out->requires_grad) out->parents = std::move(parents);
  // Opens the per-op timing span (obs::OpFinish in FinishOp closes it
  // and attributes the elapsed time to out->op). No-op unless
  // obs::SetKernelTimingEnabled was called; never touches tensor data.
  obs::OpStart(out.get());
  return out;
}

bool NeedsGrad(const std::shared_ptr<TensorImpl>& node) {
  return node->requires_grad;
}

/// Every op returns through here after its forward value is written so
/// NumericsGuard can attribute the first NaN/Inf to the producing op.
Tensor FinishOp(std::shared_ptr<TensorImpl> out) {
  obs::OpFinish(out.get(), out->op);
  GuardOpResult(out);
  return Tensor(std::move(out));
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  HYGNN_CHECK(a.defined() && b.defined());
  HYGNN_CHECK_EQ(a.cols(), b.rows());
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  auto ai = a.impl(), bi = b.impl();
  auto out = MakeOutput("MatMul", n, m, {ai, bi});
  kernels::MatMul(ai->data.data(), bi->data.data(), out->data.data(), n, k, m);
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [ai, bi, oi, n, k, m]() {
      if (oi->grad.empty()) return;
      const float* g = oi->grad.data();
      if (NeedsGrad(ai)) {
        ai->EnsureGrad();
        // dA = G · Bᵀ via the transposed-operand kernel — no
        // materialized transpose.
        kernels::MatMulNT(g, bi->data.data(), ai->grad.data(), n, m, k);
      }
      if (NeedsGrad(bi)) {
        bi->EnsureGrad();
        // dB = Aᵀ · G, likewise transpose-free.
        kernels::MatMulTN(ai->data.data(), g, bi->grad.data(), n, k, m);
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor Add(const Tensor& a, const Tensor& b) {
  HYGNN_CHECK(a.defined() && b.defined());
  HYGNN_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  auto ai = a.impl(), bi = b.impl();
  auto out = MakeOutput("Add", a.rows(), a.cols(), {ai, bi});
  const int64_t total = out->size();
  kernels::Add(ai->data.data(), bi->data.data(), out->data.data(), total);
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [ai, bi, oi, total]() {
      if (oi->grad.empty()) return;
      if (NeedsGrad(ai)) {
        ai->EnsureGrad();
        kernels::Axpy(1.0f, oi->grad.data(), ai->grad.data(), total);
      }
      if (NeedsGrad(bi)) {
        bi->EnsureGrad();
        kernels::Axpy(1.0f, oi->grad.data(), bi->grad.data(), total);
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias) {
  HYGNN_CHECK(x.defined() && bias.defined());
  HYGNN_CHECK_EQ(bias.rows(), 1);
  HYGNN_CHECK_EQ(bias.cols(), x.cols());
  auto xi = x.impl(), bi = bias.impl();
  const int64_t n = x.rows(), d = x.cols();
  auto out = MakeOutput("AddRowBroadcast", n, d, {xi, bi});
  kernels::AddRowBroadcast(xi->data.data(), bi->data.data(), out->data.data(),
                           n, d);
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [xi, bi, oi, n, d]() {
      if (oi->grad.empty()) return;
      if (NeedsGrad(xi)) {
        xi->EnsureGrad();
        kernels::Axpy(1.0f, oi->grad.data(), xi->grad.data(), n * d);
      }
      if (NeedsGrad(bi)) {
        bi->EnsureGrad();
        kernels::ColumnSumAccumulate(oi->grad.data(), n, d, bi->grad.data());
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  HYGNN_CHECK(a.defined() && b.defined());
  HYGNN_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  auto ai = a.impl(), bi = b.impl();
  auto out = MakeOutput("Sub", a.rows(), a.cols(), {ai, bi});
  const int64_t total = out->size();
  kernels::Sub(ai->data.data(), bi->data.data(), out->data.data(), total);
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [ai, bi, oi, total]() {
      if (oi->grad.empty()) return;
      if (NeedsGrad(ai)) {
        ai->EnsureGrad();
        kernels::Axpy(1.0f, oi->grad.data(), ai->grad.data(), total);
      }
      if (NeedsGrad(bi)) {
        bi->EnsureGrad();
        kernels::Axpy(-1.0f, oi->grad.data(), bi->grad.data(), total);
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  HYGNN_CHECK(a.defined() && b.defined());
  HYGNN_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  auto ai = a.impl(), bi = b.impl();
  auto out = MakeOutput("Mul", a.rows(), a.cols(), {ai, bi});
  const int64_t total = out->size();
  kernels::MulAccumulate(ai->data.data(), bi->data.data(), out->data.data(),
                         total);
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [ai, bi, oi, total]() {
      if (oi->grad.empty()) return;
      if (NeedsGrad(ai)) {
        ai->EnsureGrad();
        kernels::MulAccumulate(oi->grad.data(), bi->data.data(),
                               ai->grad.data(), total);
      }
      if (NeedsGrad(bi)) {
        bi->EnsureGrad();
        kernels::MulAccumulate(oi->grad.data(), ai->data.data(),
                               bi->grad.data(), total);
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor Scale(const Tensor& x, float s) {
  HYGNN_CHECK(x.defined());
  HYGNN_DCHECK(std::isfinite(s)) << "Scale by non-finite constant " << s;
  auto xi = x.impl();
  auto out = MakeOutput("Scale", x.rows(), x.cols(), {xi});
  const int64_t total = out->size();
  kernels::Axpy(s, xi->data.data(), out->data.data(), total);
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [xi, oi, s, total]() {
      if (oi->grad.empty()) return;
      xi->EnsureGrad();
      kernels::Axpy(s, oi->grad.data(), xi->grad.data(), total);
    };
  }
  return FinishOp(std::move(out));
}

Tensor MulColumnBroadcast(const Tensor& x, const Tensor& w) {
  HYGNN_CHECK(x.defined() && w.defined());
  HYGNN_CHECK_EQ(w.cols(), 1);
  HYGNN_CHECK_EQ(w.rows(), x.rows());
  auto xi = x.impl(), wi = w.impl();
  const int64_t n = x.rows(), d = x.cols();
  auto out = MakeOutput("MulColumnBroadcast", n, d, {xi, wi});
  kernels::RowScaleAccumulate(wi->data.data(), xi->data.data(),
                              out->data.data(), n, d);
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [xi, wi, oi, n, d]() {
      if (oi->grad.empty()) return;
      if (NeedsGrad(xi)) {
        xi->EnsureGrad();
        kernels::RowScaleAccumulate(wi->data.data(), oi->grad.data(),
                                    xi->grad.data(), n, d);
      }
      if (NeedsGrad(wi)) {
        wi->EnsureGrad();
        kernels::RowwiseDotAccumulate(oi->grad.data(), xi->data.data(),
                                      wi->grad.data(), n, d);
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  HYGNN_CHECK(a.defined() && b.defined());
  HYGNN_CHECK_EQ(a.rows(), b.rows());
  auto ai = a.impl(), bi = b.impl();
  const int64_t n = a.rows(), d1 = a.cols(), d2 = b.cols();
  auto out = MakeOutput("ConcatCols", n, d1 + d2, {ai, bi});
  kernels::CopyColumnBlock(ai->data.data(), n, d1, 0, out->data.data(),
                           d1 + d2, 0, d1);
  kernels::CopyColumnBlock(bi->data.data(), n, d2, 0, out->data.data(),
                           d1 + d2, d1, d2);
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [ai, bi, oi, n, d1, d2]() {
      if (oi->grad.empty()) return;
      if (NeedsGrad(ai)) {
        ai->EnsureGrad();
        kernels::AccumulateColumnBlock(oi->grad.data(), n, d1 + d2, 0,
                                       ai->grad.data(), d1, 0, d1);
      }
      if (NeedsGrad(bi)) {
        bi->EnsureGrad();
        kernels::AccumulateColumnBlock(oi->grad.data(), n, d1 + d2, d1,
                                       bi->grad.data(), d2, 0, d2);
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor IndexSelectRows(const Tensor& x, const std::vector<int32_t>& indices) {
  HYGNN_CHECK(x.defined());
  auto xi = x.impl();
  const int64_t n = static_cast<int64_t>(indices.size());
  const int64_t d = x.cols();
  HYGNN_CHECK_GT(n, 0);
  HYGNN_CHECK(kernels::AllInRange(indices.data(), n, 0,
                                  static_cast<int32_t>(x.rows())))
      << "IndexSelectRows index out of range [0, " << x.rows() << ")";
  auto out = MakeOutput("IndexSelectRows", n, d, {xi});
  kernels::GatherRows(xi->data.data(), d, indices.data(), n,
                      out->data.data());
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    auto idx_copy = indices;
    out->backward_fn = [xi, oi, idx_copy, n, d]() {
      if (oi->grad.empty()) return;
      xi->EnsureGrad();
      kernels::ScatterAddRows(oi->grad.data(), idx_copy.data(), n, d,
                              xi->grad.data());
    };
  }
  return FinishOp(std::move(out));
}

Tensor SegmentSoftmax(const Tensor& scores,
                      const std::vector<int32_t>& segment_ids,
                      int64_t num_segments) {
  HYGNN_CHECK(scores.defined());
  HYGNN_CHECK_EQ(scores.cols(), 1);
  HYGNN_CHECK_EQ(scores.rows(), static_cast<int64_t>(segment_ids.size()));
  const int64_t n = scores.rows();
  HYGNN_CHECK(kernels::AllInRange(segment_ids.data(), n, 0,
                                  static_cast<int32_t>(num_segments)))
      << "SegmentSoftmax segment id out of range [0, " << num_segments << ")";
  auto si = scores.impl();
  auto out = MakeOutput("SegmentSoftmax", n, 1, {si});
  kernels::SegmentSoftmax(si->data.data(), segment_ids.data(), n,
                          num_segments, out->data.data());
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    auto seg_copy = segment_ids;
    out->backward_fn = [si, oi, seg_copy, n, num_segments]() {
      if (oi->grad.empty()) return;
      si->EnsureGrad();
      kernels::SegmentSoftmaxBackward(oi->grad.data(), oi->data.data(),
                                      seg_copy.data(), n, num_segments,
                                      si->grad.data());
    };
  }
  return FinishOp(std::move(out));
}

Tensor SegmentSum(const Tensor& x, const std::vector<int32_t>& segment_ids,
                  int64_t num_segments) {
  HYGNN_CHECK(x.defined());
  HYGNN_CHECK_EQ(x.rows(), static_cast<int64_t>(segment_ids.size()));
  const int64_t n = x.rows(), d = x.cols();
  HYGNN_CHECK(kernels::AllInRange(segment_ids.data(), n, 0,
                                  static_cast<int32_t>(num_segments)))
      << "SegmentSum segment id out of range [0, " << num_segments << ")";
  auto xi = x.impl();
  auto out = MakeOutput("SegmentSum", num_segments, d, {xi});
  kernels::SegmentSumAccumulate(xi->data.data(), segment_ids.data(), n, d,
                                out->data.data(), num_segments);
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    auto seg_copy = segment_ids;
    out->backward_fn = [xi, oi, seg_copy, n, d]() {
      if (oi->grad.empty()) return;
      xi->EnsureGrad();
      kernels::SegmentSumBackward(oi->grad.data(), seg_copy.data(), n, d,
                                  xi->grad.data());
    };
  }
  return FinishOp(std::move(out));
}

Tensor RowwiseDot(const Tensor& a, const Tensor& b) {
  HYGNN_CHECK(a.defined() && b.defined());
  HYGNN_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  const int64_t n = a.rows(), d = a.cols();
  auto ai = a.impl(), bi = b.impl();
  auto out = MakeOutput("RowwiseDot", n, 1, {ai, bi});
  kernels::RowwiseDotAccumulate(ai->data.data(), bi->data.data(),
                                out->data.data(), n, d);
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [ai, bi, oi, n, d]() {
      if (oi->grad.empty()) return;
      if (NeedsGrad(ai)) {
        ai->EnsureGrad();
        kernels::RowScaleAccumulate(oi->grad.data(), bi->data.data(),
                                    ai->grad.data(), n, d);
      }
      if (NeedsGrad(bi)) {
        bi->EnsureGrad();
        kernels::RowScaleAccumulate(oi->grad.data(), ai->data.data(),
                                    bi->grad.data(), n, d);
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor ReduceSum(const Tensor& x) {
  HYGNN_CHECK(x.defined());
  auto xi = x.impl();
  auto out = MakeOutput("ReduceSum", 1, 1, {xi});
  const int64_t total = xi->size();
  out->data[0] = kernels::Sum(xi->data.data(), total);
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [xi, oi, total]() {
      if (oi->grad.empty()) return;
      xi->EnsureGrad();
      kernels::AccumulateConstant(oi->grad[0], xi->grad.data(), total);
    };
  }
  return FinishOp(std::move(out));
}

Tensor ReduceMean(const Tensor& x) {
  const float inv = 1.0f / static_cast<float>(x.size());
  return Scale(ReduceSum(x), inv);
}

namespace {

/// Shared wiring for elementwise unary ops. `fwd` maps x->y, `dydx`
/// maps (x, y)->dy/dx; both run inside the parallel RowwiseMap
/// kernels.
template <typename Fwd, typename Dydx>
Tensor UnaryOp(const char* op, const Tensor& x, Fwd fwd, Dydx dydx) {
  HYGNN_CHECK(x.defined());
  auto xi = x.impl();
  auto out = MakeOutput(op, x.rows(), x.cols(), {xi});
  const int64_t total = out->size();
  kernels::RowwiseMap(xi->data.data(), out->data.data(), total, fwd);
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [xi, oi, dydx, total]() {
      if (oi->grad.empty()) return;
      xi->EnsureGrad();
      kernels::RowwiseMapGradAccumulate(xi->data.data(), oi->data.data(),
                                        oi->grad.data(), xi->grad.data(),
                                        total, dydx);
    };
  }
  return FinishOp(std::move(out));
}

}  // namespace

Tensor Relu(const Tensor& x) {
  return UnaryOp(
      "Relu", x, [](float v) { return v > 0.0f ? v : 0.0f; },
      [](float v, float) { return v > 0.0f ? 1.0f : 0.0f; });
}

Tensor LeakyRelu(const Tensor& x, float slope) {
  HYGNN_DCHECK(std::isfinite(slope));
  return UnaryOp(
      "LeakyRelu", x, [slope](float v) { return v >= 0.0f ? v : slope * v; },
      [slope](float v, float) { return v >= 0.0f ? 1.0f : slope; });
}

Tensor Sigmoid(const Tensor& x) {
  return UnaryOp(
      "Sigmoid", x,
      [](float v) {
        if (v >= 0.0f) {
          const float z = std::exp(-v);
          return 1.0f / (1.0f + z);
        }
        const float z = std::exp(v);
        return z / (1.0f + z);
      },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& x) {
  return UnaryOp("Tanh", x, [](float v) { return std::tanh(v); },
                 [](float, float y) { return 1.0f - y * y; });
}

Tensor Exp(const Tensor& x) {
  return UnaryOp("Exp", x, [](float v) { return std::exp(v); },
                 [](float, float y) { return y; });
}

Tensor Log(const Tensor& x, float eps) {
  HYGNN_DCHECK_GE(eps, 0.0f);
  return UnaryOp(
      "Log", x, [eps](float v) { return std::log(std::max(v, eps)); },
      [eps](float v, float) { return 1.0f / std::max(v, eps); });
}

Tensor Dropout(const Tensor& x, float p, bool training, core::Rng* rng) {
  HYGNN_CHECK(x.defined());
  HYGNN_CHECK(p >= 0.0f && p < 1.0f);
  if (!training || p == 0.0f) return x;
  HYGNN_CHECK(rng != nullptr);
  auto xi = x.impl();
  auto out = MakeOutput("Dropout", x.rows(), x.cols(), {xi});
  const int64_t total = out->size();
  const float keep_scale = 1.0f / (1.0f - p);
  auto mask = std::make_shared<std::vector<float>>(total, 0.0f);
  kernels::DropoutMask(rng, p, keep_scale, mask->data(), total);
  kernels::MulAccumulate(xi->data.data(), mask->data(), out->data.data(),
                         total);
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [xi, oi, mask, total]() {
      if (oi->grad.empty()) return;
      xi->EnsureGrad();
      kernels::MulAccumulate(oi->grad.data(), mask->data(), xi->grad.data(),
                             total);
    };
  }
  return FinishOp(std::move(out));
}

Tensor L2NormalizeRows(const Tensor& x, float eps) {
  HYGNN_CHECK(x.defined());
  HYGNN_DCHECK_GT(eps, 0.0f);
  auto xi = x.impl();
  const int64_t n = x.rows(), d = x.cols();
  auto out = MakeOutput("L2NormalizeRows", n, d, {xi});
  auto norms = std::make_shared<std::vector<float>>(n, 0.0f);
  kernels::L2NormalizeRows(xi->data.data(), n, d, eps, out->data.data(),
                           norms->data());
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [xi, oi, norms, n, d]() {
      if (oi->grad.empty()) return;
      xi->EnsureGrad();
      kernels::L2NormalizeRowsBackward(oi->grad.data(), oi->data.data(),
                                       norms->data(), n, d, xi->grad.data());
    };
  }
  return FinishOp(std::move(out));
}

Tensor RowSoftmax(const Tensor& x) {
  HYGNN_CHECK(x.defined());
  const int64_t n = x.rows(), k = x.cols();
  auto xi = x.impl();
  auto out = MakeOutput("RowSoftmax", n, k, {xi});
  kernels::RowSoftmax(xi->data.data(), n, k, out->data.data());
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [xi, oi, n, k]() {
      if (oi->grad.empty()) return;
      xi->EnsureGrad();
      kernels::RowSoftmaxBackward(oi->grad.data(), oi->data.data(), n, k,
                                  xi->grad.data());
    };
  }
  return FinishOp(std::move(out));
}

Tensor TransposeNoGrad(const Tensor& x) {
  HYGNN_CHECK(x.defined());
  const int64_t n = x.rows(), d = x.cols();
  Tensor out = Tensor::Zeros(d, n);
  out.impl()->op = "TransposeNoGrad";
  kernels::Transpose(x.data(), n, d, out.data());
  return out;
}

}  // namespace hygnn::tensor
