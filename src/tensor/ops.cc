#include "tensor/ops.h"

#include <cmath>
#include <limits>

#include "core/logging.h"
#include "tensor/debug.h"

namespace hygnn::tensor {

namespace {

/// Allocates the output node for a unary/binary op and wires parents.
/// `op` must be a static string; it labels the node for NumericsGuard /
/// GraphLint reports.
std::shared_ptr<TensorImpl> MakeOutput(
    const char* op, int64_t rows, int64_t cols,
    std::vector<std::shared_ptr<TensorImpl>> parents) {
  auto out = std::make_shared<TensorImpl>();
  out->op = op;
  out->rows = rows;
  out->cols = cols;
  out->data.assign(static_cast<size_t>(rows * cols), 0.0f);
  out->requires_grad = false;
  for (const auto& p : parents) {
    if (p->requires_grad) out->requires_grad = true;
  }
  if (out->requires_grad) out->parents = std::move(parents);
  return out;
}

bool NeedsGrad(const std::shared_ptr<TensorImpl>& node) {
  return node->requires_grad;
}

/// Every op returns through here after its forward value is written so
/// NumericsGuard can attribute the first NaN/Inf to the producing op.
Tensor FinishOp(std::shared_ptr<TensorImpl> out) {
  GuardOpResult(out);
  return Tensor(std::move(out));
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  HYGNN_CHECK(a.defined() && b.defined());
  HYGNN_CHECK_EQ(a.cols(), b.rows());
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  auto ai = a.impl(), bi = b.impl();
  auto out = MakeOutput("MatMul", n, m, {ai, bi});
  // ikj loop order for cache-friendly row-major access.
  const float* A = ai->data.data();
  const float* B = bi->data.data();
  float* C = out->data.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = A[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = B + kk * m;
      float* crow = C + i * m;
      for (int64_t j = 0; j < m; ++j) crow[j] += aik * brow[j];
    }
  }
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [ai, bi, oi, n, k, m]() {
      if (oi->grad.empty()) return;
      const float* G = oi->grad.data();
      if (NeedsGrad(ai)) {
        ai->EnsureGrad();
        // dA = G * B^T : dA[i,kk] += sum_j G[i,j] * B[kk,j]
        const float* B = bi->data.data();
        float* dA = ai->grad.data();
        for (int64_t i = 0; i < n; ++i) {
          for (int64_t kk = 0; kk < k; ++kk) {
            const float* grow = G + i * m;
            const float* brow = B + kk * m;
            float acc = 0.0f;
            for (int64_t j = 0; j < m; ++j) acc += grow[j] * brow[j];
            dA[i * k + kk] += acc;
          }
        }
      }
      if (NeedsGrad(bi)) {
        bi->EnsureGrad();
        // dB = A^T * G : dB[kk,j] += sum_i A[i,kk] * G[i,j]
        const float* A = ai->data.data();
        float* dB = bi->grad.data();
        for (int64_t i = 0; i < n; ++i) {
          for (int64_t kk = 0; kk < k; ++kk) {
            const float aik = A[i * k + kk];
            if (aik == 0.0f) continue;
            const float* grow = G + i * m;
            float* drow = dB + kk * m;
            for (int64_t j = 0; j < m; ++j) drow[j] += aik * grow[j];
          }
        }
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor Add(const Tensor& a, const Tensor& b) {
  HYGNN_CHECK(a.defined() && b.defined());
  HYGNN_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  auto ai = a.impl(), bi = b.impl();
  auto out = MakeOutput("Add", a.rows(), a.cols(), {ai, bi});
  const int64_t total = out->size();
  for (int64_t i = 0; i < total; ++i) {
    out->data[i] = ai->data[i] + bi->data[i];
  }
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [ai, bi, oi, total]() {
      if (oi->grad.empty()) return;
      if (NeedsGrad(ai)) {
        ai->EnsureGrad();
        for (int64_t i = 0; i < total; ++i) ai->grad[i] += oi->grad[i];
      }
      if (NeedsGrad(bi)) {
        bi->EnsureGrad();
        for (int64_t i = 0; i < total; ++i) bi->grad[i] += oi->grad[i];
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias) {
  HYGNN_CHECK(x.defined() && bias.defined());
  HYGNN_CHECK_EQ(bias.rows(), 1);
  HYGNN_CHECK_EQ(bias.cols(), x.cols());
  auto xi = x.impl(), bi = bias.impl();
  const int64_t n = x.rows(), d = x.cols();
  auto out = MakeOutput("AddRowBroadcast", n, d, {xi, bi});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      out->data[i * d + j] = xi->data[i * d + j] + bi->data[j];
    }
  }
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [xi, bi, oi, n, d]() {
      if (oi->grad.empty()) return;
      if (NeedsGrad(xi)) {
        xi->EnsureGrad();
        const int64_t total = n * d;
        for (int64_t i = 0; i < total; ++i) xi->grad[i] += oi->grad[i];
      }
      if (NeedsGrad(bi)) {
        bi->EnsureGrad();
        for (int64_t i = 0; i < n; ++i) {
          for (int64_t j = 0; j < d; ++j) bi->grad[j] += oi->grad[i * d + j];
        }
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  HYGNN_CHECK(a.defined() && b.defined());
  HYGNN_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  auto ai = a.impl(), bi = b.impl();
  auto out = MakeOutput("Sub", a.rows(), a.cols(), {ai, bi});
  const int64_t total = out->size();
  for (int64_t i = 0; i < total; ++i) {
    out->data[i] = ai->data[i] - bi->data[i];
  }
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [ai, bi, oi, total]() {
      if (oi->grad.empty()) return;
      if (NeedsGrad(ai)) {
        ai->EnsureGrad();
        for (int64_t i = 0; i < total; ++i) ai->grad[i] += oi->grad[i];
      }
      if (NeedsGrad(bi)) {
        bi->EnsureGrad();
        for (int64_t i = 0; i < total; ++i) bi->grad[i] -= oi->grad[i];
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  HYGNN_CHECK(a.defined() && b.defined());
  HYGNN_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  auto ai = a.impl(), bi = b.impl();
  auto out = MakeOutput("Mul", a.rows(), a.cols(), {ai, bi});
  const int64_t total = out->size();
  for (int64_t i = 0; i < total; ++i) {
    out->data[i] = ai->data[i] * bi->data[i];
  }
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [ai, bi, oi, total]() {
      if (oi->grad.empty()) return;
      if (NeedsGrad(ai)) {
        ai->EnsureGrad();
        for (int64_t i = 0; i < total; ++i) {
          ai->grad[i] += oi->grad[i] * bi->data[i];
        }
      }
      if (NeedsGrad(bi)) {
        bi->EnsureGrad();
        for (int64_t i = 0; i < total; ++i) {
          bi->grad[i] += oi->grad[i] * ai->data[i];
        }
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor Scale(const Tensor& x, float s) {
  HYGNN_CHECK(x.defined());
  HYGNN_DCHECK(std::isfinite(s)) << "Scale by non-finite constant " << s;
  auto xi = x.impl();
  auto out = MakeOutput("Scale", x.rows(), x.cols(), {xi});
  const int64_t total = out->size();
  for (int64_t i = 0; i < total; ++i) out->data[i] = xi->data[i] * s;
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [xi, oi, s, total]() {
      if (oi->grad.empty()) return;
      xi->EnsureGrad();
      for (int64_t i = 0; i < total; ++i) xi->grad[i] += oi->grad[i] * s;
    };
  }
  return FinishOp(std::move(out));
}

Tensor MulColumnBroadcast(const Tensor& x, const Tensor& w) {
  HYGNN_CHECK(x.defined() && w.defined());
  HYGNN_CHECK_EQ(w.cols(), 1);
  HYGNN_CHECK_EQ(w.rows(), x.rows());
  auto xi = x.impl(), wi = w.impl();
  const int64_t n = x.rows(), d = x.cols();
  auto out = MakeOutput("MulColumnBroadcast", n, d, {xi, wi});
  for (int64_t i = 0; i < n; ++i) {
    const float wv = wi->data[i];
    for (int64_t j = 0; j < d; ++j) {
      out->data[i * d + j] = xi->data[i * d + j] * wv;
    }
  }
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [xi, wi, oi, n, d]() {
      if (oi->grad.empty()) return;
      if (NeedsGrad(xi)) {
        xi->EnsureGrad();
        for (int64_t i = 0; i < n; ++i) {
          const float wv = wi->data[i];
          for (int64_t j = 0; j < d; ++j) {
            xi->grad[i * d + j] += oi->grad[i * d + j] * wv;
          }
        }
      }
      if (NeedsGrad(wi)) {
        wi->EnsureGrad();
        for (int64_t i = 0; i < n; ++i) {
          float acc = 0.0f;
          for (int64_t j = 0; j < d; ++j) {
            acc += oi->grad[i * d + j] * xi->data[i * d + j];
          }
          wi->grad[i] += acc;
        }
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  HYGNN_CHECK(a.defined() && b.defined());
  HYGNN_CHECK_EQ(a.rows(), b.rows());
  auto ai = a.impl(), bi = b.impl();
  const int64_t n = a.rows(), d1 = a.cols(), d2 = b.cols();
  auto out = MakeOutput("ConcatCols", n, d1 + d2, {ai, bi});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d1; ++j) {
      out->data[i * (d1 + d2) + j] = ai->data[i * d1 + j];
    }
    for (int64_t j = 0; j < d2; ++j) {
      out->data[i * (d1 + d2) + d1 + j] = bi->data[i * d2 + j];
    }
  }
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [ai, bi, oi, n, d1, d2]() {
      if (oi->grad.empty()) return;
      if (NeedsGrad(ai)) {
        ai->EnsureGrad();
        for (int64_t i = 0; i < n; ++i) {
          for (int64_t j = 0; j < d1; ++j) {
            ai->grad[i * d1 + j] += oi->grad[i * (d1 + d2) + j];
          }
        }
      }
      if (NeedsGrad(bi)) {
        bi->EnsureGrad();
        for (int64_t i = 0; i < n; ++i) {
          for (int64_t j = 0; j < d2; ++j) {
            bi->grad[i * d2 + j] += oi->grad[i * (d1 + d2) + d1 + j];
          }
        }
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor IndexSelectRows(const Tensor& x, const std::vector<int32_t>& indices) {
  HYGNN_CHECK(x.defined());
  auto xi = x.impl();
  const int64_t n = static_cast<int64_t>(indices.size());
  const int64_t d = x.cols();
  HYGNN_CHECK_GT(n, 0);
  for (int32_t idx : indices) {
    HYGNN_CHECK(idx >= 0 && idx < x.rows());
  }
  auto out = MakeOutput("IndexSelectRows", n, d, {xi});
  for (int64_t i = 0; i < n; ++i) {
    const float* src = xi->data.data() + static_cast<int64_t>(indices[i]) * d;
    float* dst = out->data.data() + i * d;
    for (int64_t j = 0; j < d; ++j) dst[j] = src[j];
  }
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    auto idx_copy = indices;
    out->backward_fn = [xi, oi, idx_copy, n, d]() {
      if (oi->grad.empty()) return;
      xi->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) {
        float* dst = xi->grad.data() + static_cast<int64_t>(idx_copy[i]) * d;
        const float* src = oi->grad.data() + i * d;
        for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor SegmentSoftmax(const Tensor& scores,
                      const std::vector<int32_t>& segment_ids,
                      int64_t num_segments) {
  HYGNN_CHECK(scores.defined());
  HYGNN_CHECK_EQ(scores.cols(), 1);
  HYGNN_CHECK_EQ(scores.rows(), static_cast<int64_t>(segment_ids.size()));
  const int64_t n = scores.rows();
  auto si = scores.impl();
  auto out = MakeOutput("SegmentSoftmax", n, 1, {si});

  std::vector<float> seg_max(static_cast<size_t>(num_segments),
                             -std::numeric_limits<float>::infinity());
  for (int64_t i = 0; i < n; ++i) {
    const int32_t s = segment_ids[i];
    HYGNN_CHECK(s >= 0 && s < num_segments);
    seg_max[s] = std::max(seg_max[s], si->data[i]);
  }
  std::vector<float> seg_sum(static_cast<size_t>(num_segments), 0.0f);
  for (int64_t i = 0; i < n; ++i) {
    const int32_t s = segment_ids[i];
    out->data[i] = std::exp(si->data[i] - seg_max[s]);
    seg_sum[s] += out->data[i];
  }
  for (int64_t i = 0; i < n; ++i) {
    const float denom = seg_sum[segment_ids[i]];
    out->data[i] = denom > 0.0f ? out->data[i] / denom : 0.0f;
  }

  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    auto seg_copy = segment_ids;
    out->backward_fn = [si, oi, seg_copy, n, num_segments]() {
      if (oi->grad.empty()) return;
      si->EnsureGrad();
      // d s_i = y_i * (g_i - sum_{j in seg} g_j y_j)
      std::vector<float> seg_dot(static_cast<size_t>(num_segments), 0.0f);
      for (int64_t i = 0; i < n; ++i) {
        seg_dot[seg_copy[i]] += oi->grad[i] * oi->data[i];
      }
      for (int64_t i = 0; i < n; ++i) {
        si->grad[i] += oi->data[i] * (oi->grad[i] - seg_dot[seg_copy[i]]);
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor SegmentSum(const Tensor& x, const std::vector<int32_t>& segment_ids,
                  int64_t num_segments) {
  HYGNN_CHECK(x.defined());
  HYGNN_CHECK_EQ(x.rows(), static_cast<int64_t>(segment_ids.size()));
  const int64_t n = x.rows(), d = x.cols();
  auto xi = x.impl();
  auto out = MakeOutput("SegmentSum", num_segments, d, {xi});
  for (int64_t i = 0; i < n; ++i) {
    const int32_t s = segment_ids[i];
    HYGNN_CHECK(s >= 0 && s < num_segments);
    const float* src = xi->data.data() + i * d;
    float* dst = out->data.data() + static_cast<int64_t>(s) * d;
    for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
  }
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    auto seg_copy = segment_ids;
    out->backward_fn = [xi, oi, seg_copy, n, d]() {
      if (oi->grad.empty()) return;
      xi->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) {
        const float* src =
            oi->grad.data() + static_cast<int64_t>(seg_copy[i]) * d;
        float* dst = xi->grad.data() + i * d;
        for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor RowwiseDot(const Tensor& a, const Tensor& b) {
  HYGNN_CHECK(a.defined() && b.defined());
  HYGNN_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  const int64_t n = a.rows(), d = a.cols();
  auto ai = a.impl(), bi = b.impl();
  auto out = MakeOutput("RowwiseDot", n, 1, {ai, bi});
  for (int64_t i = 0; i < n; ++i) {
    float acc = 0.0f;
    for (int64_t j = 0; j < d; ++j) {
      acc += ai->data[i * d + j] * bi->data[i * d + j];
    }
    out->data[i] = acc;
  }
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [ai, bi, oi, n, d]() {
      if (oi->grad.empty()) return;
      if (NeedsGrad(ai)) {
        ai->EnsureGrad();
        for (int64_t i = 0; i < n; ++i) {
          const float g = oi->grad[i];
          for (int64_t j = 0; j < d; ++j) {
            ai->grad[i * d + j] += g * bi->data[i * d + j];
          }
        }
      }
      if (NeedsGrad(bi)) {
        bi->EnsureGrad();
        for (int64_t i = 0; i < n; ++i) {
          const float g = oi->grad[i];
          for (int64_t j = 0; j < d; ++j) {
            bi->grad[i * d + j] += g * ai->data[i * d + j];
          }
        }
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor ReduceSum(const Tensor& x) {
  HYGNN_CHECK(x.defined());
  auto xi = x.impl();
  auto out = MakeOutput("ReduceSum", 1, 1, {xi});
  const int64_t total = xi->size();
  float acc = 0.0f;
  for (int64_t i = 0; i < total; ++i) acc += xi->data[i];
  out->data[0] = acc;
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [xi, oi, total]() {
      if (oi->grad.empty()) return;
      xi->EnsureGrad();
      const float g = oi->grad[0];
      for (int64_t i = 0; i < total; ++i) xi->grad[i] += g;
    };
  }
  return FinishOp(std::move(out));
}

Tensor ReduceMean(const Tensor& x) {
  const float inv = 1.0f / static_cast<float>(x.size());
  return Scale(ReduceSum(x), inv);
}

namespace {

/// Shared implementation for elementwise unary ops. `fwd` maps x->y,
/// `dydx` maps (x, y)->dy/dx.
template <typename Fwd, typename Dydx>
Tensor UnaryOp(const char* op, const Tensor& x, Fwd fwd, Dydx dydx) {
  HYGNN_CHECK(x.defined());
  auto xi = x.impl();
  auto out = MakeOutput(op, x.rows(), x.cols(), {xi});
  const int64_t total = out->size();
  for (int64_t i = 0; i < total; ++i) out->data[i] = fwd(xi->data[i]);
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [xi, oi, dydx, total]() {
      if (oi->grad.empty()) return;
      xi->EnsureGrad();
      for (int64_t i = 0; i < total; ++i) {
        xi->grad[i] += oi->grad[i] * dydx(xi->data[i], oi->data[i]);
      }
    };
  }
  return FinishOp(std::move(out));
}

}  // namespace

Tensor Relu(const Tensor& x) {
  return UnaryOp(
      "Relu", x, [](float v) { return v > 0.0f ? v : 0.0f; },
      [](float v, float) { return v > 0.0f ? 1.0f : 0.0f; });
}

Tensor LeakyRelu(const Tensor& x, float slope) {
  HYGNN_DCHECK(std::isfinite(slope));
  return UnaryOp(
      "LeakyRelu", x, [slope](float v) { return v >= 0.0f ? v : slope * v; },
      [slope](float v, float) { return v >= 0.0f ? 1.0f : slope; });
}

Tensor Sigmoid(const Tensor& x) {
  return UnaryOp(
      "Sigmoid", x,
      [](float v) {
        if (v >= 0.0f) {
          const float z = std::exp(-v);
          return 1.0f / (1.0f + z);
        }
        const float z = std::exp(v);
        return z / (1.0f + z);
      },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& x) {
  return UnaryOp("Tanh", x, [](float v) { return std::tanh(v); },
                 [](float, float y) { return 1.0f - y * y; });
}

Tensor Exp(const Tensor& x) {
  return UnaryOp("Exp", x, [](float v) { return std::exp(v); },
                 [](float, float y) { return y; });
}

Tensor Log(const Tensor& x, float eps) {
  HYGNN_DCHECK_GE(eps, 0.0f);
  return UnaryOp(
      "Log", x, [eps](float v) { return std::log(std::max(v, eps)); },
      [eps](float v, float) { return 1.0f / std::max(v, eps); });
}

Tensor Dropout(const Tensor& x, float p, bool training, core::Rng* rng) {
  HYGNN_CHECK(x.defined());
  HYGNN_CHECK(p >= 0.0f && p < 1.0f);
  if (!training || p == 0.0f) return x;
  HYGNN_CHECK(rng != nullptr);
  auto xi = x.impl();
  auto out = MakeOutput("Dropout", x.rows(), x.cols(), {xi});
  const int64_t total = out->size();
  const float keep_scale = 1.0f / (1.0f - p);
  auto mask = std::make_shared<std::vector<float>>(total, 0.0f);
  for (int64_t i = 0; i < total; ++i) {
    if (!rng->Bernoulli(p)) (*mask)[i] = keep_scale;
    out->data[i] = xi->data[i] * (*mask)[i];
  }
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [xi, oi, mask, total]() {
      if (oi->grad.empty()) return;
      xi->EnsureGrad();
      for (int64_t i = 0; i < total; ++i) {
        xi->grad[i] += oi->grad[i] * (*mask)[i];
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor L2NormalizeRows(const Tensor& x, float eps) {
  HYGNN_CHECK(x.defined());
  HYGNN_DCHECK_GT(eps, 0.0f);
  auto xi = x.impl();
  const int64_t n = x.rows(), d = x.cols();
  auto out = MakeOutput("L2NormalizeRows", n, d, {xi});
  auto norms = std::make_shared<std::vector<float>>(n, 0.0f);
  for (int64_t i = 0; i < n; ++i) {
    float acc = 0.0f;
    for (int64_t j = 0; j < d; ++j) {
      const float v = xi->data[i * d + j];
      acc += v * v;
    }
    (*norms)[i] = std::max(std::sqrt(acc), eps);
    const float inv = 1.0f / (*norms)[i];
    for (int64_t j = 0; j < d; ++j) {
      out->data[i * d + j] = xi->data[i * d + j] * inv;
    }
  }
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [xi, oi, norms, n, d]() {
      if (oi->grad.empty()) return;
      xi->EnsureGrad();
      // d x_i = (g_i - y_i * (g_i . y_i)) / ||x_i||
      for (int64_t i = 0; i < n; ++i) {
        float dot = 0.0f;
        for (int64_t j = 0; j < d; ++j) {
          dot += oi->grad[i * d + j] * oi->data[i * d + j];
        }
        const float inv = 1.0f / (*norms)[i];
        for (int64_t j = 0; j < d; ++j) {
          xi->grad[i * d + j] +=
              (oi->grad[i * d + j] - oi->data[i * d + j] * dot) * inv;
        }
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor RowSoftmax(const Tensor& x) {
  HYGNN_CHECK(x.defined());
  const int64_t n = x.rows(), k = x.cols();
  auto xi = x.impl();
  auto out = MakeOutput("RowSoftmax", n, k, {xi});
  for (int64_t i = 0; i < n; ++i) {
    float row_max = -std::numeric_limits<float>::infinity();
    for (int64_t j = 0; j < k; ++j) {
      row_max = std::max(row_max, xi->data[i * k + j]);
    }
    float denom = 0.0f;
    for (int64_t j = 0; j < k; ++j) {
      out->data[i * k + j] = std::exp(xi->data[i * k + j] - row_max);
      denom += out->data[i * k + j];
    }
    for (int64_t j = 0; j < k; ++j) out->data[i * k + j] /= denom;
  }
  if (out->requires_grad) {
    TensorImpl* oi = out.get();
    out->backward_fn = [xi, oi, n, k]() {
      if (oi->grad.empty()) return;
      xi->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) {
        float dot = 0.0f;
        for (int64_t j = 0; j < k; ++j) {
          dot += oi->grad[i * k + j] * oi->data[i * k + j];
        }
        for (int64_t j = 0; j < k; ++j) {
          xi->grad[i * k + j] +=
              oi->data[i * k + j] * (oi->grad[i * k + j] - dot);
        }
      }
    };
  }
  return FinishOp(std::move(out));
}

Tensor TransposeNoGrad(const Tensor& x) {
  HYGNN_CHECK(x.defined());
  const int64_t n = x.rows(), d = x.cols();
  Tensor out = Tensor::Zeros(d, n);
  out.impl()->op = "TransposeNoGrad";
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      out.Set(j, i, x.At(i, j));
    }
  }
  return out;
}

}  // namespace hygnn::tensor
