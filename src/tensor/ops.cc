// Operator layer: shape checks and graph wiring ONLY. Every op records
// a pending tape node (tensor/tape.h) and returns without computing —
// the executor in tape.cc owns all kernel dispatch, forward and
// backward. scripts/lint.py enforces both halves of the seam: this
// file contains no raw compute loops (rule 6) and no direct kernel
// invocations (rule 13), which keeps the backend seam (threading,
// SIMD, fusion, alternative kernels) entirely below the op API.

#include "tensor/ops.h"

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "core/logging.h"
#include "tensor/tape.h"

namespace hygnn::tensor {

Tensor MatMul(const Tensor& a, const Tensor& b) {
  HYGNN_CHECK(a.defined() && b.defined());
  HYGNN_CHECK_EQ(a.cols(), b.rows());
  auto out = RecordOp("MatMul", OpKind::kMatMul, a.rows(), b.cols(),
                      {a.impl(), b.impl()});
  return FinishRecord(std::move(out));
}

Tensor Add(const Tensor& a, const Tensor& b) {
  HYGNN_CHECK(a.defined() && b.defined());
  HYGNN_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  auto out =
      RecordOp("Add", OpKind::kAdd, a.rows(), a.cols(), {a.impl(), b.impl()});
  return FinishRecord(std::move(out));
}

Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias) {
  HYGNN_CHECK(x.defined() && bias.defined());
  HYGNN_CHECK_EQ(bias.rows(), 1);
  HYGNN_CHECK_EQ(bias.cols(), x.cols());
  auto out = RecordOp("AddRowBroadcast", OpKind::kAddRowBroadcast, x.rows(),
                      x.cols(), {x.impl(), bias.impl()});
  return FinishRecord(std::move(out));
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  HYGNN_CHECK(a.defined() && b.defined());
  HYGNN_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  auto out =
      RecordOp("Sub", OpKind::kSub, a.rows(), a.cols(), {a.impl(), b.impl()});
  return FinishRecord(std::move(out));
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  HYGNN_CHECK(a.defined() && b.defined());
  HYGNN_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  auto out =
      RecordOp("Mul", OpKind::kMul, a.rows(), a.cols(), {a.impl(), b.impl()});
  return FinishRecord(std::move(out));
}

Tensor Scale(const Tensor& x, float s) {
  HYGNN_CHECK(x.defined());
  HYGNN_DCHECK(std::isfinite(s)) << "Scale by non-finite constant " << s;
  auto out = RecordOp("Scale", OpKind::kScale, x.rows(), x.cols(), {x.impl()});
  out->rec->alpha = s;
  return FinishRecord(std::move(out));
}

Tensor MulColumnBroadcast(const Tensor& x, const Tensor& w) {
  HYGNN_CHECK(x.defined() && w.defined());
  HYGNN_CHECK_EQ(w.cols(), 1);
  HYGNN_CHECK_EQ(w.rows(), x.rows());
  auto out = RecordOp("MulColumnBroadcast", OpKind::kMulColumnBroadcast,
                      x.rows(), x.cols(), {x.impl(), w.impl()});
  return FinishRecord(std::move(out));
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  HYGNN_CHECK(a.defined() && b.defined());
  HYGNN_CHECK_EQ(a.rows(), b.rows());
  auto out = RecordOp("ConcatCols", OpKind::kConcatCols, a.rows(),
                      a.cols() + b.cols(), {a.impl(), b.impl()});
  return FinishRecord(std::move(out));
}

Tensor IndexSelectRows(const Tensor& x, const std::vector<int32_t>& indices) {
  HYGNN_CHECK(x.defined());
  const int64_t n = static_cast<int64_t>(indices.size());
  HYGNN_CHECK_GT(n, 0);
  HYGNN_CHECK(
      IndicesInRange(indices.data(), n, 0, static_cast<int32_t>(x.rows())))
      << "IndexSelectRows index out of range [0, " << x.rows() << ")";
  auto out = RecordOp("IndexSelectRows", OpKind::kIndexSelectRows, n, x.cols(),
                      {x.impl()});
  out->rec->ibuf = indices;
  return FinishRecord(std::move(out));
}

Tensor SegmentSoftmax(const Tensor& scores,
                      const std::vector<int32_t>& segment_ids,
                      int64_t num_segments) {
  HYGNN_CHECK(scores.defined());
  HYGNN_CHECK_EQ(scores.cols(), 1);
  HYGNN_CHECK_EQ(scores.rows(), static_cast<int64_t>(segment_ids.size()));
  const int64_t n = scores.rows();
  HYGNN_CHECK(IndicesInRange(segment_ids.data(), n, 0,
                             static_cast<int32_t>(num_segments)))
      << "SegmentSoftmax segment id out of range [0, " << num_segments << ")";
  auto out =
      RecordOp("SegmentSoftmax", OpKind::kSegmentSoftmax, n, 1, {scores.impl()});
  out->rec->ibuf = segment_ids;
  out->rec->num_segments = num_segments;
  return FinishRecord(std::move(out));
}

Tensor SegmentSum(const Tensor& x, const std::vector<int32_t>& segment_ids,
                  int64_t num_segments) {
  HYGNN_CHECK(x.defined());
  HYGNN_CHECK_EQ(x.rows(), static_cast<int64_t>(segment_ids.size()));
  const int64_t n = x.rows();
  HYGNN_CHECK(IndicesInRange(segment_ids.data(), n, 0,
                             static_cast<int32_t>(num_segments)))
      << "SegmentSum segment id out of range [0, " << num_segments << ")";
  auto out = RecordOp("SegmentSum", OpKind::kSegmentSum, num_segments, x.cols(),
                      {x.impl()});
  out->rec->ibuf = segment_ids;
  out->rec->num_segments = num_segments;
  return FinishRecord(std::move(out));
}

Tensor RowwiseDot(const Tensor& a, const Tensor& b) {
  HYGNN_CHECK(a.defined() && b.defined());
  HYGNN_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  auto out = RecordOp("RowwiseDot", OpKind::kRowwiseDot, a.rows(), 1,
                      {a.impl(), b.impl()});
  return FinishRecord(std::move(out));
}

Tensor ReduceSum(const Tensor& x) {
  HYGNN_CHECK(x.defined());
  auto out = RecordOp("ReduceSum", OpKind::kReduceSum, 1, 1, {x.impl()});
  return FinishRecord(std::move(out));
}

Tensor ReduceMean(const Tensor& x) {
  const float inv = 1.0f / static_cast<float>(x.size());
  return Scale(ReduceSum(x), inv);
}

Tensor Relu(const Tensor& x) {
  HYGNN_CHECK(x.defined());
  auto out = RecordOp("Relu", OpKind::kRelu, x.rows(), x.cols(), {x.impl()});
  return FinishRecord(std::move(out));
}

Tensor LeakyRelu(const Tensor& x, float slope) {
  HYGNN_CHECK(x.defined());
  HYGNN_DCHECK(std::isfinite(slope));
  auto out =
      RecordOp("LeakyRelu", OpKind::kLeakyRelu, x.rows(), x.cols(), {x.impl()});
  out->rec->alpha = slope;
  return FinishRecord(std::move(out));
}

Tensor Sigmoid(const Tensor& x) {
  HYGNN_CHECK(x.defined());
  auto out =
      RecordOp("Sigmoid", OpKind::kSigmoid, x.rows(), x.cols(), {x.impl()});
  return FinishRecord(std::move(out));
}

Tensor Tanh(const Tensor& x) {
  HYGNN_CHECK(x.defined());
  auto out = RecordOp("Tanh", OpKind::kTanh, x.rows(), x.cols(), {x.impl()});
  return FinishRecord(std::move(out));
}

Tensor Exp(const Tensor& x) {
  HYGNN_CHECK(x.defined());
  auto out = RecordOp("Exp", OpKind::kExp, x.rows(), x.cols(), {x.impl()});
  return FinishRecord(std::move(out));
}

Tensor Log(const Tensor& x, float eps) {
  HYGNN_CHECK(x.defined());
  HYGNN_DCHECK_GE(eps, 0.0f);
  auto out = RecordOp("Log", OpKind::kLog, x.rows(), x.cols(), {x.impl()});
  out->rec->alpha = eps;
  return FinishRecord(std::move(out));
}

Tensor Dropout(const Tensor& x, float p, bool training, core::Rng* rng) {
  HYGNN_CHECK(x.defined());
  HYGNN_CHECK(p >= 0.0f && p < 1.0f);
  if (!training || p == 0.0f) return x;
  HYGNN_CHECK(rng != nullptr);
  auto out =
      RecordOp("Dropout", OpKind::kDropout, x.rows(), x.cols(), {x.impl()});
  const int64_t total = out->size();
  const float keep_scale = 1.0f / (1.0f - p);
  // The mask is drawn NOW, at record time, so the RNG stream advances
  // in program order — identical draws whether or not execution is
  // deferred or fused, at any thread count.
  out->rec->fbuf = std::make_shared<std::vector<float>>(
      static_cast<size_t>(total), 0.0f);
  DrawDropoutMask(rng, p, keep_scale, out->rec->fbuf->data(), total);
  return FinishRecord(std::move(out));
}

Tensor L2NormalizeRows(const Tensor& x, float eps) {
  HYGNN_CHECK(x.defined());
  HYGNN_DCHECK_GT(eps, 0.0f);
  auto out = RecordOp("L2NormalizeRows", OpKind::kL2NormalizeRows, x.rows(),
                      x.cols(), {x.impl()});
  out->rec->alpha = eps;
  return FinishRecord(std::move(out));
}

Tensor RowSoftmax(const Tensor& x) {
  HYGNN_CHECK(x.defined());
  auto out = RecordOp("RowSoftmax", OpKind::kRowSoftmax, x.rows(), x.cols(),
                      {x.impl()});
  return FinishRecord(std::move(out));
}

Tensor TransposeNoGrad(const Tensor& x) {
  HYGNN_CHECK(x.defined());
  auto out = RecordOp("TransposeNoGrad", OpKind::kTranspose, x.cols(),
                      x.rows(), {x.impl()}, /*detached=*/true);
  return FinishRecord(std::move(out));
}

}  // namespace hygnn::tensor
