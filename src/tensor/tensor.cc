#include "tensor/tensor.h"

#include <atomic>
#include <unordered_set>

#include "core/logging.h"
#include "obs/optime.h"
#include "tensor/tape.h"

namespace hygnn::tensor {

namespace {

/// Nesting depth of live InferenceModeScope instances. Relaxed atomics
/// suffice: the scope is created/destroyed on the coordinating thread
/// before/after any ParallelFor fan-out that reads it.
std::atomic<int32_t> inference_depth{0};

}  // namespace

InferenceModeScope::InferenceModeScope() {
  inference_depth.fetch_add(1, std::memory_order_relaxed);
}

InferenceModeScope::~InferenceModeScope() {
  const int32_t previous =
      inference_depth.fetch_sub(1, std::memory_order_relaxed);
  HYGNN_DCHECK_GT(previous, 0) << "unbalanced InferenceModeScope";
}

bool InferenceModeEnabled() {
  return inference_depth.load(std::memory_order_relaxed) > 0;
}

Tensor Tensor::Zeros(int64_t rows, int64_t cols, bool requires_grad) {
  return Full(rows, cols, 0.0f, requires_grad);
}

Tensor Tensor::Full(int64_t rows, int64_t cols, float value,
                    bool requires_grad) {
  HYGNN_CHECK_GT(rows, 0);
  HYGNN_CHECK_GT(cols, 0);
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->data.assign(static_cast<size_t>(rows * cols), value);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::FromVector(std::vector<float> values, int64_t rows,
                          int64_t cols, bool requires_grad) {
  HYGNN_CHECK_EQ(static_cast<int64_t>(values.size()), rows * cols);
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->data = std::move(values);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return Full(1, 1, value, requires_grad);
}

float Tensor::At(int64_t r, int64_t c) const {
  HYGNN_CHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
  EnsureValue();
  return impl_->data[static_cast<size_t>(r * cols() + c)];
}

void Tensor::Set(int64_t r, int64_t c, float value) {
  HYGNN_CHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
  EnsureValue();
  impl_->data[static_cast<size_t>(r * cols() + c)] = value;
}

float Tensor::item() const {
  HYGNN_CHECK_EQ(size(), 1);
  EnsureValue();
  return impl_->data[0];
}

void Tensor::Backward() {
  HYGNN_CHECK(defined());
  HYGNN_CHECK_EQ(size(), 1);
  // Forward values must exist before gradients flow; a pending root
  // materializes (linearize -> fuse -> execute) right here.
  MaterializeTensor(impl_);
  // Topological order by iterative post-order DFS over parents.
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  std::vector<std::pair<TensorImpl*, size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, child_index] = stack.back();
    if (child_index < node->parents.size()) {
      TensorImpl* parent = node->parents[child_index++].get();
      if (visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  impl_->EnsureGrad();
  impl_->grad[0] = 1.0f;
  // order is post-order (children before parents in graph-edge sense);
  // reverse it so the root runs first.
  const bool time_ops = obs::KernelTimingEnabled();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    ExecuteNodeBackward(*it, time_ops);
  }
}

void Tensor::ZeroGrad() {
  if (!impl_->grad.empty()) {
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  }
}

Tensor Tensor::Detach() const {
  EnsureValue();
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows();
  impl->cols = cols();
  impl->data = impl_->data;
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

Tensor Tensor::Clone() const {
  auto copy = Detach();
  copy.impl()->requires_grad = impl_->requires_grad;
  return copy;
}

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor[null]";
  return "Tensor[" + std::to_string(rows()) + "x" + std::to_string(cols()) +
         "]";
}

}  // namespace hygnn::tensor
