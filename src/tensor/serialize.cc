#include "tensor/serialize.h"

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "core/fs.h"

namespace hygnn::tensor {

using core::Result;
using core::Status;

namespace {

constexpr char kMagic[4] = {'H', 'Y', 'G', 'T'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

std::string ShapeString(int64_t rows, int64_t cols) {
  return "[" + std::to_string(rows) + " x " + std::to_string(cols) + "]";
}

}  // namespace

Status SaveTensorsToStream(
    const std::vector<std::pair<std::string, Tensor>>& named_tensors,
    std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint64_t>(named_tensors.size()));
  for (const auto& [name, tensor] : named_tensors) {
    if (!tensor.defined()) {
      return Status::InvalidArgument("undefined tensor: " + name);
    }
    WritePod(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    WritePod(out, static_cast<int64_t>(tensor.rows()));
    WritePod(out, static_cast<int64_t>(tensor.cols()));
    out.write(reinterpret_cast<const char*>(tensor.data()),
              static_cast<std::streamsize>(tensor.size() * sizeof(float)));
  }
  if (!out) return Status::IoError("tensor table write failed");
  return Status::Ok();
}

Result<std::vector<std::pair<std::string, Tensor>>> LoadTensorsFromStream(
    std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("not a HyGNN tensor table");
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::IoError("unsupported tensor table version " +
                           std::to_string(version) + " (reader supports " +
                           std::to_string(kVersion) + ")");
  }
  uint64_t count = 0;
  if (!ReadPod(in, &count)) return Status::IoError("truncated header");
  std::vector<std::pair<std::string, Tensor>> result;
  result.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len) || name_len > (1u << 20)) {
      return Status::IoError("corrupt tensor name length");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    int64_t rows = 0, cols = 0;
    if (!ReadPod(in, &rows) || !ReadPod(in, &cols) || rows <= 0 ||
        cols <= 0) {
      return Status::IoError("corrupt tensor shape for " + name);
    }
    std::vector<float> data(static_cast<size_t>(rows * cols));
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!in) return Status::IoError("truncated tensor data for " + name);
    result.emplace_back(std::move(name),
                        Tensor::FromVector(std::move(data), rows, cols));
  }
  return result;
}

Status SaveTensors(
    const std::vector<std::pair<std::string, Tensor>>& named_tensors,
    const std::string& path) {
  // Serialize in memory, then commit through the crash-safe write path
  // (temp + fsync + rename, CRC32 footer) of the active filesystem.
  std::ostringstream buffer;
  if (auto status = SaveTensorsToStream(named_tensors, buffer);
      !status.ok()) {
    return Status(status.code(), status.message() + ": " + path);
  }
  return core::WriteFileDurable(core::ActiveFileSystem(), path,
                                buffer.str());
}

Result<std::vector<std::pair<std::string, Tensor>>> LoadTensors(
    const std::string& path) {
  auto payload = core::ReadFileVerified(core::ActiveFileSystem(), path);
  if (!payload.ok()) return payload.status();
  std::istringstream in(std::move(payload).value());
  auto loaded = LoadTensorsFromStream(in);
  if (!loaded.ok()) {
    return Status(loaded.status().code(),
                  loaded.status().message() + ": " + path);
  }
  return loaded;
}

Status RestoreParameters(
    const std::vector<std::pair<std::string, Tensor>>& loaded,
    std::vector<Tensor>* parameters) {
  if (parameters == nullptr) {
    return Status::InvalidArgument("null parameters");
  }
  if (loaded.size() != parameters->size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: file has " +
        std::to_string(loaded.size()) + ", model has " +
        std::to_string(parameters->size()));
  }
  for (size_t i = 0; i < loaded.size(); ++i) {
    const Tensor& src = loaded[i].second;
    Tensor& dst = (*parameters)[i];
    if (src.rows() != dst.rows() || src.cols() != dst.cols()) {
      return Status::InvalidArgument(
          "shape mismatch at " + loaded[i].first + ": file has " +
          ShapeString(src.rows(), src.cols()) + ", model expects " +
          ShapeString(dst.rows(), dst.cols()));
    }
    std::memcpy(dst.data(), src.data(),
                static_cast<size_t>(src.size()) * sizeof(float));
  }
  return Status::Ok();
}

}  // namespace hygnn::tensor
