#ifndef HYGNN_TENSOR_SPARSE_H_
#define HYGNN_TENSOR_SPARSE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace hygnn::tensor {

/// Compressed-sparse-row matrix with float values. Used for graph
/// adjacency/propagation matrices (e.g. the symmetric-normalized
/// adjacency of GCN). Immutable after construction.
class CsrMatrix {
 public:
  /// Builds from COO triplets. Duplicate (row, col) entries are summed.
  static std::shared_ptr<CsrMatrix> FromCoo(
      int64_t rows, int64_t cols, const std::vector<int32_t>& row_indices,
      const std::vector<int32_t>& col_indices,
      const std::vector<float>& values);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  /// Lazily-built, cached transpose (thread-unsafe lazy init; fine for the
  /// single-threaded training loops in this library).
  std::shared_ptr<const CsrMatrix> Transpose() const;

  /// Dense product y = A * x without autograd, x is [cols, d].
  void MultiplyInto(const float* x, int64_t d, float* y) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_;
  std::vector<int32_t> col_idx_;
  std::vector<float> values_;
  mutable std::shared_ptr<const CsrMatrix> transpose_cache_;
};

/// Autograd-aware sparse-dense product: out = A * x, where A is
/// [n, m] CSR and x is [m, d]. Gradient flows to x only (A is constant):
/// dx = A^T * dout.
Tensor SpMM(const std::shared_ptr<const CsrMatrix>& a, const Tensor& x);

}  // namespace hygnn::tensor

#endif  // HYGNN_TENSOR_SPARSE_H_
