#ifndef HYGNN_TENSOR_OPTIMIZER_H_
#define HYGNN_TENSOR_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "tensor/tensor.h"

namespace hygnn::tensor {

/// Base class for first-order optimizers over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> parameters);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients currently stored on the
  /// parameters. Parameters with no accumulated gradient are skipped.
  virtual void Step() = 0;

  /// Clears all parameter gradients. Call between optimization steps.
  void ZeroGrad();

  /// Global L2 norm of all accumulated parameter gradients. Read-only
  /// (never modifies gradients); the trainer's observability layer
  /// reports this per epoch.
  float GradNorm() const;

  /// Scales gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clipping norm.
  float ClipGradNorm(float max_norm);

  const std::vector<Tensor>& parameters() const { return parameters_; }

 protected:
  std::vector<Tensor> parameters_;
};

/// Stochastic gradient descent with optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> parameters, float lr, float weight_decay = 0.0f);

  void Step() override;

 private:
  float lr_;
  float weight_decay_;
};

/// The evolving part of an Adam optimizer — step count plus both moment
/// vectors per parameter. Snapshotted into training checkpoints so a
/// resumed run takes bit-identical steps.
struct AdamState {
  int64_t step = 0;
  std::vector<std::vector<float>> m;  // first moment per parameter
  std::vector<std::vector<float>> v;  // second moment per parameter
};

/// Adam (Kingma & Ba). Defaults follow the paper:
/// beta1=0.9, beta2=0.999, eps=1e-8. The HyGNN paper trains with Adam at
/// lr = 0.01.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> parameters, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  /// Copies out the optimizer state for checkpointing.
  AdamState ExportState() const;

  /// Installs a state exported from an identically-shaped optimizer;
  /// fails with a message naming both sides on any size mismatch.
  core::Status RestoreState(const AdamState& state);

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;  // first moment per parameter
  std::vector<std::vector<float>> v_;  // second moment per parameter
};

}  // namespace hygnn::tensor

#endif  // HYGNN_TENSOR_OPTIMIZER_H_
