#include "tensor/init.h"

#include <cmath>

#include "core/logging.h"

namespace hygnn::tensor {

Tensor XavierUniform(int64_t fan_in, int64_t fan_out, core::Rng* rng,
                     bool requires_grad) {
  const float a =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return UniformInit(fan_in, fan_out, -a, a, rng, requires_grad);
}

Tensor HeUniform(int64_t fan_in, int64_t fan_out, core::Rng* rng,
                 bool requires_grad) {
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in));
  return UniformInit(fan_in, fan_out, -a, a, rng, requires_grad);
}

Tensor UniformInit(int64_t rows, int64_t cols, float lo, float hi,
                   core::Rng* rng, bool requires_grad) {
  HYGNN_CHECK(rng != nullptr);
  Tensor t = Tensor::Zeros(rows, cols, requires_grad);
  float* d = t.data();
  const int64_t total = rows * cols;
  for (int64_t i = 0; i < total; ++i) {
    d[i] = lo + (hi - lo) * rng->UniformFloat();
  }
  return t;
}

Tensor NormalInit(int64_t rows, int64_t cols, float stddev, core::Rng* rng,
                  bool requires_grad) {
  HYGNN_CHECK(rng != nullptr);
  Tensor t = Tensor::Zeros(rows, cols, requires_grad);
  float* d = t.data();
  const int64_t total = rows * cols;
  for (int64_t i = 0; i < total; ++i) {
    d[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return t;
}

}  // namespace hygnn::tensor
