#include "tensor/debug.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "core/logging.h"
#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "tensor/tape.h"

namespace hygnn::tensor {

bool AllFinite(const float* data, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) return false;
  }
  return true;
}

namespace {

/// "'MatMul' Tensor[3x4]" — shared label format for reports.
std::string Describe(const TensorImpl* node) {
  std::ostringstream os;
  os << "'" << node->op << "' Tensor[" << node->rows << "x" << node->cols
     << "]";
  return os.str();
}

/// Follows the first-parent chain upward, e.g. "Log <- Sub <- leaf".
std::string ProducerTrace(const TensorImpl* node) {
  constexpr int kMaxDepth = 10;
  std::ostringstream os;
  const TensorImpl* cur = node;
  for (int depth = 0; cur != nullptr; ++depth) {
    if (depth > 0) os << " <- ";
    if (depth == kMaxDepth) {
      os << "...";
      break;
    }
    os << cur->op;
    cur = cur->parents.empty() ? nullptr : cur->parents.front().get();
  }
  return os.str();
}

}  // namespace

std::string LintReport::ToString() const {
  if (issues.empty()) {
    return "GraphLint: clean (" + std::to_string(nodes_visited) + " nodes)";
  }
  std::ostringstream os;
  os << "GraphLint: " << issues.size() << " issue(s) across "
     << nodes_visited << " nodes";
  for (const auto& issue : issues) os << "\n  " << issue.message;
  return os.str();
}

LintReport GraphLint(const Tensor& root) {
  LintReport report;
  HYGNN_CHECK(root.defined()) << "GraphLint on a null tensor";

  // Iterative DFS with an on-stack set for cycle detection; `visited`
  // doubles as the node collection for the per-node checks below.
  std::vector<TensorImpl*> nodes;
  std::unordered_set<TensorImpl*> visited;
  std::unordered_set<TensorImpl*> on_stack;
  std::vector<std::pair<TensorImpl*, size_t>> stack;
  bool cycle_reported = false;
  stack.emplace_back(root.impl().get(), 0);
  visited.insert(root.impl().get());
  on_stack.insert(root.impl().get());
  nodes.push_back(root.impl().get());
  while (!stack.empty()) {
    auto& [node, next_parent] = stack.back();
    if (next_parent < node->parents.size()) {
      TensorImpl* parent = node->parents[next_parent++].get();
      if (on_stack.count(parent) > 0) {
        if (!cycle_reported) {
          cycle_reported = true;
          report.issues.push_back(
              {LintKind::kCycle,
               "cycle through " + Describe(parent) +
                   " — the \"DAG\" is not acyclic; its shared_ptr ring "
                   "can never be freed"});
        }
        continue;
      }
      if (visited.insert(parent).second) {
        nodes.push_back(parent);
        on_stack.insert(parent);
        stack.emplace_back(parent, 0);
      }
    } else {
      on_stack.erase(node);
      stack.pop_back();
    }
  }
  report.nodes_visited = static_cast<int64_t>(nodes.size());

  int32_t max_backward_runs = 0;
  for (TensorImpl* node : nodes) {
    max_backward_runs = std::max(max_backward_runs, node->backward_runs);
  }

  for (TensorImpl* node : nodes) {
    const int64_t expected = node->rows * node->cols;
    // Tape nodes legitimately carry empty data: pending ops have not
    // executed yet, and fused interior members are never written (the
    // chain recomputes them per element). Their shapes are validated
    // when/if the buffer exists.
    const bool tape_empty_ok =
        !node->materialized || (node->rec != nullptr && node->rec->fused_member);
    if (!tape_empty_ok &&
        (static_cast<int64_t>(node->data.size()) != expected ||
         (!node->grad.empty() &&
          static_cast<int64_t>(node->grad.size()) != expected))) {
      report.issues.push_back(
          {LintKind::kShapeMismatch,
           Describe(node) + " has data[" + std::to_string(node->data.size()) +
               "] / grad[" + std::to_string(node->grad.size()) +
               "] but rows*cols = " + std::to_string(expected)});
    }
    if (node->backward_runs > 1) {
      report.issues.push_back(
          {LintKind::kDoubleBackward,
           Describe(node) + " ran backward " +
               std::to_string(node->backward_runs) +
               " times — gradients were double-accumulated into its "
               "parents"});
    }
    if (node->backward_fn) {
      if (node->parents.empty()) {
        report.issues.push_back(
            {LintKind::kDanglingBackwardFn,
             Describe(node) +
                 " holds a backward_fn but its parent list was released; "
                 "the closure pins the detached subgraph alive"});
      } else if (!node->requires_grad) {
        report.issues.push_back(
            {LintKind::kDanglingBackwardFn,
             Describe(node) +
                 " holds a backward_fn although requires_grad is false"});
      }
    } else if (node->rec != nullptr && node->parents.empty()) {
      // A tape record without parents cannot execute or run backward —
      // same manual-surgery hazard as a parentless backward_fn. (The
      // executor itself always clears rec and parents together.)
      report.issues.push_back(
          {LintKind::kDanglingBackwardFn,
           Describe(node) +
               " holds a tape record but its parent list was released; "
               "the record can neither execute nor propagate gradients"});
    }
    const bool is_leaf =
        node->parents.empty() && !node->backward_fn && node->rec == nullptr;
    if (is_leaf && node->requires_grad && max_backward_runs > 0 &&
        node->grad.empty()) {
      report.issues.push_back(
          {LintKind::kParamWithoutGradient,
           Describe(node) +
               " requires grad and Backward() ran, but no gradient ever "
               "reached it — the chain-rule path is broken"});
    }
  }
  return report;
}

namespace {

// Guard state. `g_enabled`/`g_triggered` are relaxed atomics so the
// per-op fast path is a single uncontended load even under TSan; the
// report string is written once, under the mutex, by the first
// violating op.
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_fatal{false};
std::atomic<bool> g_triggered{false};
core::Mutex g_report_mutex;
std::string g_report HYGNN_GUARDED_BY(g_report_mutex);

}  // namespace

void NumericsGuard::Enable(bool fatal) {
  g_fatal.store(fatal, std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_relaxed);
}

void NumericsGuard::Disable() {
  g_enabled.store(false, std::memory_order_relaxed);
}

bool NumericsGuard::enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

bool NumericsGuard::triggered() {
  return g_triggered.load(std::memory_order_acquire);
}

std::string NumericsGuard::report() {
  core::MutexLock lock(g_report_mutex);
  return g_report;
}

void NumericsGuard::Reset() {
  core::MutexLock lock(g_report_mutex);
  g_report.clear();
  g_triggered.store(false, std::memory_order_release);
}

NumericsGuardScope::NumericsGuardScope(bool fatal)
    : previous_enabled_(g_enabled.load(std::memory_order_relaxed)),
      previous_fatal_(g_fatal.load(std::memory_order_relaxed)) {
  NumericsGuard::Enable(fatal);
}

NumericsGuardScope::~NumericsGuardScope() {
  g_fatal.store(previous_fatal_, std::memory_order_relaxed);
  g_enabled.store(previous_enabled_, std::memory_order_relaxed);
}

void GuardOpResult(const std::shared_ptr<TensorImpl>& out) {
  GuardOpResult(out.get());
}

void GuardOpResult(TensorImpl* out) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  if (g_triggered.load(std::memory_order_acquire)) return;

  const int64_t total = static_cast<int64_t>(out->data.size());
  int64_t bad_index = -1;
  for (int64_t i = 0; i < total; ++i) {
    if (!std::isfinite(out->data[i])) {
      bad_index = i;
      break;
    }
  }
  if (bad_index < 0) return;

  std::ostringstream os;
  os << "NumericsGuard: op '" << out->op << "' produced non-finite value "
     << out->data[bad_index] << " at index " << bad_index << " of Tensor["
     << out->rows << "x" << out->cols << "]";
  if (!out->parents.empty()) {
    os << "\n  inputs:";
    for (const auto& parent : out->parents) {
      const bool finite = AllFinite(
          parent->data.data(), static_cast<int64_t>(parent->data.size()));
      os << " " << Describe(parent.get())
         << (finite ? " (finite)" : " (already non-finite)");
    }
  }
  os << "\n  trace: " << ProducerTrace(out);

  {
    core::MutexLock lock(g_report_mutex);
    if (g_triggered.load(std::memory_order_relaxed)) return;
    g_report = os.str();
    g_triggered.store(true, std::memory_order_release);
  }
  if (g_fatal.load(std::memory_order_relaxed)) {
    HYGNN_CHECK(false) << NumericsGuard::report();
  }
}

}  // namespace hygnn::tensor
