#ifndef HYGNN_TENSOR_DEBUG_H_
#define HYGNN_TENSOR_DEBUG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace hygnn::tensor {

/// Correctness tooling for the autograd engine: a static linter over a
/// Tensor's parent DAG (GraphLint) and an opt-in runtime mode that
/// attributes the first NaN/Inf to the operator that produced it
/// (NumericsGuard). Both are diagnostic aids — they never change
/// numerical results.

/// True when every element of [data, data + n) is finite (no NaN/Inf).
bool AllFinite(const float* data, int64_t n);

/// Categories of autograd-graph misuse detected by GraphLint.
enum class LintKind {
  /// The parent DAG contains a cycle (impossible via the public op API;
  /// indicates manual TensorImpl surgery and a guaranteed shared_ptr
  /// leak).
  kCycle,
  /// A node's backward_fn ran more than once, double-accumulating
  /// gradients into its parents.
  kDoubleBackward,
  /// A reachable requires_grad leaf (parameter) never received a
  /// gradient even though Backward() ran — the chain rule path to it is
  /// broken.
  kParamWithoutGradient,
  /// A node still holds a backward_fn although its parent list was
  /// released, or carries one despite requires_grad being false; the
  /// closure pins freed subgraphs alive and re-running it would write
  /// into detached parents.
  kDanglingBackwardFn,
  /// data/grad buffer sizes disagree with rows*cols.
  kShapeMismatch,
};

/// A single linter finding with a human-readable explanation.
struct LintIssue {
  LintKind kind;
  std::string message;
};

/// Result of linting one autograd graph.
struct LintReport {
  std::vector<LintIssue> issues;
  int64_t nodes_visited = 0;

  bool clean() const { return issues.empty(); }

  /// All findings joined into a printable block, one issue per line.
  std::string ToString() const;
};

/// Walks the autograd DAG rooted at `root` (following parent edges) and
/// reports structural misuse. Cheap: O(nodes + edges), no allocation of
/// tensor-sized buffers. Safe to call before or after Backward();
/// kParamWithoutGradient is only diagnosed once Backward() has run.
LintReport GraphLint(const Tensor& root);

/// Opt-in global watchdog that scans every operator result for NaN/Inf
/// and records the *first* offending op with a parent-chain trace. Off
/// by default: disabled cost is one relaxed atomic load per op. Enable
/// either explicitly (Enable / NumericsGuardScope) or via the
/// HYGNN_NUMERICS_GUARD=1 environment variable in the trainer.
///
/// Single write-site state: the guard records only the first violation
/// so attribution always names the op that introduced the bad value,
/// not downstream ops it contaminated.
class NumericsGuard {
 public:
  /// Turns the guard on. With `fatal` set, the first violation aborts
  /// via HYGNN_CHECK with the full report; otherwise it is recorded and
  /// readable through report().
  static void Enable(bool fatal = false);
  static void Disable();
  static bool enabled();

  /// True once a non-finite op result has been observed since the last
  /// Reset().
  static bool triggered();

  /// Human-readable description of the first violation (empty when not
  /// triggered): op name, shape, flat index, value, input summary, and
  /// a producer-chain trace.
  static std::string report();

  /// Clears triggered state and report; keeps the enabled/fatal mode.
  static void Reset();
};

/// RAII enable/restore for NumericsGuard; saves the previous
/// enabled/fatal mode and restores it on destruction. The triggered
/// state and report survive scope exit so callers can inspect them.
class NumericsGuardScope {
 public:
  explicit NumericsGuardScope(bool fatal = false);
  ~NumericsGuardScope();

  NumericsGuardScope(const NumericsGuardScope&) = delete;
  NumericsGuardScope& operator=(const NumericsGuardScope&) = delete;

 private:
  bool previous_enabled_;
  bool previous_fatal_;
};

/// Hook called after an op's forward value is written (the tape
/// executor for recorded ops, loss.cc for opaque eager ones). No-op
/// unless NumericsGuard is enabled and has not yet triggered.
void GuardOpResult(const std::shared_ptr<TensorImpl>& out);
void GuardOpResult(TensorImpl* out);

}  // namespace hygnn::tensor

#endif  // HYGNN_TENSOR_DEBUG_H_
