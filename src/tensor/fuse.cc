// Elementwise fusion pass over the linearized op tape (see fuse.h).

#include "tensor/fuse.h"

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>

#include "core/logging.h"
#include "core/mutex.h"

namespace hygnn::tensor {
namespace {

/// Kinds the fused kernels can chain. Everything here is elementwise
/// and shape-preserving along its chain operand.
bool FusableKind(OpKind kind) {
  switch (kind) {
    case OpKind::kRelu:
    case OpKind::kLeakyRelu:
    case OpKind::kSigmoid:
    case OpKind::kTanh:
    case OpKind::kExp:
    case OpKind::kLog:
    case OpKind::kScale:
    case OpKind::kDropout:
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kAddRowBroadcast:
    case OpKind::kMulColumnBroadcast:
      return true;
    default:
      return false;
  }
}

/// Which parent the chain flows through, or -1 when the node cannot be
/// fused. The other operand (if any) becomes a side input, read but not
/// differentiated — so a side that requires grad disqualifies the node:
/// FusedChainBackward propagates along the chain only.
int32_t ChainIndexOf(const TensorImpl* node) {
  switch (node->rec->kind) {
    case OpKind::kRelu:
    case OpKind::kLeakyRelu:
    case OpKind::kSigmoid:
    case OpKind::kTanh:
    case OpKind::kExp:
    case OpKind::kLog:
    case OpKind::kScale:
    case OpKind::kDropout:
      return 0;
    case OpKind::kAddRowBroadcast:
    case OpKind::kMulColumnBroadcast:
      // The broadcast operand is always the side; it must not need grad.
      return node->parents[1]->requires_grad ? -1 : 0;
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
      // Chain through whichever operand leaves a no-grad side,
      // preferring operand 0 for determinism when both qualify.
      if (!node->parents[1]->requires_grad) return 0;
      if (!node->parents[0]->requires_grad) return 1;
      return -1;
    default:
      return -1;
  }
}

/// Builds and interns the "Fused[A|B|C]" display name (head -> tail).
/// The obs attribution table keys on `const char*`, so names live in a
/// process-lifetime node-based set — pointers stay stable forever.
const char* InternFusedName(const std::vector<TensorImpl*>& members) {
  std::string name = "Fused[";
  for (size_t i = 0; i < members.size(); ++i) {
    if (i > 0) name += '|';
    name += members[i]->op;
  }
  name += ']';
  static core::Mutex g_names_mutex;
  static std::unordered_set<std::string>& g_names =
      *new std::unordered_set<std::string>();
  core::MutexLock lock(g_names_mutex);
  return g_names.insert(std::move(name)).first->c_str();
}

}  // namespace

void FuseEligibleChains(const std::vector<TensorImpl*>& order) {
  // Walk consumers-first (reverse topological order) so each chain is
  // grown from its tail toward its head and claimed greedily; a node
  // claimed by one group is never revisited for another.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* tail = *it;
    if (tail->rec == nullptr || tail->rec->group != nullptr ||
        tail->rec->fused_member || !FusableKind(tail->rec->kind)) {
      continue;
    }
    if (ChainIndexOf(tail) < 0) continue;
    std::vector<TensorImpl*> members{tail};
    std::vector<int32_t> chain_idx{ChainIndexOf(tail)};
    while (static_cast<int32_t>(members.size()) < kernels::kMaxFusedChain) {
      TensorImpl* cur = members.back();
      const auto& parent_ref = cur->parents[chain_idx.back()];
      TensorImpl* p = parent_ref.get();
      // An interior member must be pending, un-grouped, fusable, and
      // single-consumer: use_count == 1 means `cur` holds the only
      // reference, so no external Tensor handle (and no other op) can
      // ever observe the intermediate value we are about to skip.
      if (p->materialized || p->rec == nullptr || p->rec->group != nullptr ||
          p->rec->fused_member || !FusableKind(p->rec->kind) ||
          ChainIndexOf(p) < 0 || parent_ref.use_count() != 1) {
        break;
      }
      members.push_back(p);
      chain_idx.push_back(ChainIndexOf(p));
    }
    if (members.size() < 2) continue;
    // Collected tail-first; groups store execution order (head first).
    std::reverse(members.begin(), members.end());
    std::reverse(chain_idx.begin(), chain_idx.end());
    auto group = std::make_shared<FusedGroup>();
    group->head_input = members.front()->parents[chain_idx.front()].get();
    group->name = InternFusedName(members);
    group->members = members;
    group->chain_parent = chain_idx;
    for (size_t i = 0; i + 1 < members.size(); ++i) {
      members[i]->rec->fused_member = true;
    }
    members.back()->rec->group = std::move(group);
  }
}

void BuildFusedSteps(const FusedGroup& group,
                     std::vector<kernels::FusedStep>* steps) {
  steps->clear();
  steps->reserve(group.members.size());
  for (size_t i = 0; i < group.members.size(); ++i) {
    const TensorImpl* m = group.members[i];
    const int32_t ci = group.chain_parent[i];
    kernels::FusedStep step;
    switch (m->rec->kind) {
      case OpKind::kRelu:
        step.kind = kernels::FusedStep::Kind::kRelu;
        break;
      case OpKind::kLeakyRelu:
        step.kind = kernels::FusedStep::Kind::kLeakyRelu;
        step.alpha = m->rec->alpha;
        break;
      case OpKind::kSigmoid:
        step.kind = kernels::FusedStep::Kind::kSigmoid;
        break;
      case OpKind::kTanh:
        step.kind = kernels::FusedStep::Kind::kTanh;
        break;
      case OpKind::kExp:
        step.kind = kernels::FusedStep::Kind::kExp;
        break;
      case OpKind::kLog:
        step.kind = kernels::FusedStep::Kind::kLog;
        step.alpha = m->rec->alpha;
        break;
      case OpKind::kScale:
        step.kind = kernels::FusedStep::Kind::kScale;
        step.alpha = m->rec->alpha;
        break;
      case OpKind::kDropout:
        // Dropout is "multiply by the pre-drawn mask" at this layer, so
        // it lowers to the same step as elementwise Mul.
        step.kind = kernels::FusedStep::Kind::kMul;
        step.side = m->rec->fbuf->data();
        break;
      case OpKind::kAdd:
        step.kind = kernels::FusedStep::Kind::kAdd;
        step.side = m->parents[1 - ci]->data.data();
        break;
      case OpKind::kSub:
        step.kind = ci == 0 ? kernels::FusedStep::Kind::kSub
                            : kernels::FusedStep::Kind::kSubFrom;
        step.side = m->parents[1 - ci]->data.data();
        break;
      case OpKind::kMul:
        step.kind = kernels::FusedStep::Kind::kMul;
        step.side = m->parents[1 - ci]->data.data();
        break;
      case OpKind::kAddRowBroadcast:
        step.kind = kernels::FusedStep::Kind::kAddRowBias;
        step.side = m->parents[1]->data.data();
        break;
      case OpKind::kMulColumnBroadcast:
        step.kind = kernels::FusedStep::Kind::kMulRowScale;
        step.side = m->parents[1]->data.data();
        break;
      default:
        HYGNN_CHECK(false) << "non-fusable kind in fused group";
    }
    steps->push_back(step);
  }
}

}  // namespace hygnn::tensor
