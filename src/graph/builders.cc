#include "graph/builders.h"

#include <unordered_map>

#include "core/logging.h"

namespace hygnn::graph {

Graph BuildDdiGraph(int32_t num_drugs,
                    const std::vector<std::pair<int32_t, int32_t>>&
                        positive_training_pairs) {
  return Graph(num_drugs, positive_training_pairs);
}

Graph BuildSubstructureSimilarityGraph(
    const std::vector<std::vector<int32_t>>& drug_substructures,
    int32_t num_substructures, int64_t min_common_substructures) {
  HYGNN_CHECK_GE(min_common_substructures, 1);
  const int32_t num_drugs =
      static_cast<int32_t>(drug_substructures.size());
  // Invert: substructure -> drugs containing it, then count pair overlaps
  // through the inverted index (avoids the O(n^2 * s) all-pairs scan).
  std::vector<std::vector<int32_t>> owners(
      static_cast<size_t>(num_substructures));
  for (int32_t d = 0; d < num_drugs; ++d) {
    for (int32_t s : drug_substructures[static_cast<size_t>(d)]) {
      HYGNN_CHECK(s >= 0 && s < num_substructures);
      owners[static_cast<size_t>(s)].push_back(d);
    }
  }
  std::unordered_map<int64_t, int64_t> overlap;
  for (const auto& drugs : owners) {
    for (size_t i = 0; i < drugs.size(); ++i) {
      for (size_t j = i + 1; j < drugs.size(); ++j) {
        const int64_t key =
            static_cast<int64_t>(drugs[i]) * num_drugs + drugs[j];
        overlap[key]++;
      }
    }
  }
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (const auto& [key, count] : overlap) {
    if (count >= min_common_substructures) {
      edges.emplace_back(static_cast<int32_t>(key / num_drugs),
                         static_cast<int32_t>(key % num_drugs));
    }
  }
  return Graph(num_drugs, edges);
}

Hypergraph BuildDrugHypergraph(
    const std::vector<std::vector<int32_t>>& drug_substructures,
    int32_t num_substructures) {
  return Hypergraph(num_substructures, drug_substructures);
}

}  // namespace hygnn::graph
