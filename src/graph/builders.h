#ifndef HYGNN_GRAPH_BUILDERS_H_
#define HYGNN_GRAPH_BUILDERS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/hypergraph.h"

namespace hygnn::graph {

/// Builds the DDI graph (paper baseline group 1/2): drugs are nodes, an
/// edge joins two drugs with a *known training* interaction. Test-set
/// positives must NOT be included — passing only training positives here
/// is what keeps the baselines honest.
Graph BuildDdiGraph(int32_t num_drugs,
                    const std::vector<std::pair<int32_t, int32_t>>&
                        positive_training_pairs);

/// Builds the substructure-similarity graph (paper baseline group 3,
/// following Bumgardner et al.): drugs are nodes, an edge joins two
/// drugs sharing at least `min_common_substructures` substructures.
/// `drug_substructures[d]` is the (deduplicated) substructure-id set of
/// drug d.
Graph BuildSubstructureSimilarityGraph(
    const std::vector<std::vector<int32_t>>& drug_substructures,
    int32_t num_substructures, int64_t min_common_substructures);

/// Builds the paper's drug hypergraph (§III-B): substructures are nodes,
/// each drug is one hyperedge consisting of its unique substructures.
Hypergraph BuildDrugHypergraph(
    const std::vector<std::vector<int32_t>>& drug_substructures,
    int32_t num_substructures);

}  // namespace hygnn::graph

#endif  // HYGNN_GRAPH_BUILDERS_H_
