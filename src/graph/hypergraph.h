#ifndef HYGNN_GRAPH_HYPERGRAPH_H_
#define HYGNN_GRAPH_HYPERGRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace hygnn::graph {

/// A hypergraph G = (V, E) where each hyperedge connects an arbitrary
/// number of nodes (paper §III-A). In the drug hypergraph, nodes are
/// chemical substructures and hyperedges are drugs.
///
/// Storage is the COO incidence list — one (node, edge) pair per
/// membership — plus CSR adjacency in both directions. The COO pairs are
/// exactly the rows that HyGNN's segment-softmax attention operates on.
class Hypergraph {
 public:
  /// Builds from per-edge member lists: members[j] is the node set of
  /// hyperedge j. Duplicate members within an edge are merged.
  Hypergraph(int32_t num_nodes,
             const std::vector<std::vector<int32_t>>& members);

  int32_t num_nodes() const { return num_nodes_; }
  int32_t num_edges() const { return num_edges_; }
  /// Total number of (node, edge) incidences (nnz of H).
  int64_t num_incidences() const {
    return static_cast<int64_t>(pair_nodes_.size());
  }

  /// COO incidence: pair i connects node pair_nodes()[i] to hyperedge
  /// pair_edges()[i]. Pairs are ordered by edge then node.
  const std::vector<int32_t>& pair_nodes() const { return pair_nodes_; }
  const std::vector<int32_t>& pair_edges() const { return pair_edges_; }

  /// Nodes belonging to hyperedge `edge`, ascending.
  std::span<const int32_t> EdgeMembers(int32_t edge) const;

  /// Hyperedges containing `node`, ascending.
  std::span<const int32_t> NodeMemberships(int32_t node) const;

  /// Node degree |E_i| (number of incident hyperedges).
  int64_t NodeDegree(int32_t node) const;

  /// Hyperedge degree |e_j| (number of member nodes).
  int64_t EdgeDegree(int32_t edge) const;

  /// Number of shared nodes between two hyperedges.
  int64_t SharedNodes(int32_t edge_a, int32_t edge_b) const;

  /// Dense incidence matrix H (num_nodes x num_edges, 0/1) — matches the
  /// paper's H with H[i][j]=1 iff v_i in e_j. For tests/inspection only.
  std::vector<std::vector<uint8_t>> DenseIncidence() const;

 private:
  int32_t num_nodes_ = 0;
  int32_t num_edges_ = 0;
  // COO pairs sorted by (edge, node).
  std::vector<int32_t> pair_nodes_;
  std::vector<int32_t> pair_edges_;
  // CSR edge -> nodes
  std::vector<int64_t> edge_offsets_;
  std::vector<int32_t> edge_members_;
  // CSR node -> edges
  std::vector<int64_t> node_offsets_;
  std::vector<int32_t> node_memberships_;
};

}  // namespace hygnn::graph

#endif  // HYGNN_GRAPH_HYPERGRAPH_H_
