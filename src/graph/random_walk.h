#ifndef HYGNN_GRAPH_RANDOM_WALK_H_
#define HYGNN_GRAPH_RANDOM_WALK_H_

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "graph/graph.h"

namespace hygnn::graph {

/// Configuration shared by DeepWalk (uniform) and node2vec (biased)
/// walks. Paper settings: walk_length=100, num_walks_per_node=10.
struct RandomWalkConfig {
  int32_t walk_length = 100;
  int32_t num_walks_per_node = 10;
  /// node2vec return parameter p (1.0 = uniform second-order behaviour).
  double p = 1.0;
  /// node2vec in-out parameter q.
  double q = 1.0;
};

/// Generates `num_walks_per_node` uniform random walks from every node.
/// Walks stop early at isolated nodes. DeepWalk corpus generator.
std::vector<std::vector<int32_t>> UniformRandomWalks(
    const Graph& graph, const RandomWalkConfig& config, core::Rng* rng);

/// Generates node2vec second-order biased walks: the unnormalized
/// probability of stepping from v (previous node t) to x is
///   1/p if x == t, 1 if x adjacent to t, 1/q otherwise.
std::vector<std::vector<int32_t>> BiasedRandomWalks(
    const Graph& graph, const RandomWalkConfig& config, core::Rng* rng);

}  // namespace hygnn::graph

#endif  // HYGNN_GRAPH_RANDOM_WALK_H_
