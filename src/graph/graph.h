#ifndef HYGNN_GRAPH_GRAPH_H_
#define HYGNN_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "tensor/sparse.h"

namespace hygnn::graph {

/// An undirected simple graph stored in CSR form. Nodes are dense ids
/// [0, num_nodes). Self-loops and parallel edges in the input are
/// dropped/merged at construction.
class Graph {
 public:
  /// Builds from an undirected edge list; each {u, v} is stored in both
  /// directions. Out-of-range endpoints abort (programmer error).
  Graph(int32_t num_nodes,
        const std::vector<std::pair<int32_t, int32_t>>& edges);

  int32_t num_nodes() const { return num_nodes_; }
  /// Number of undirected edges.
  int64_t num_edges() const { return num_edges_; }

  /// Neighbors of `node`, sorted ascending.
  std::span<const int32_t> Neighbors(int32_t node) const;

  int64_t Degree(int32_t node) const;

  /// True when {u, v} is an edge (binary search).
  bool HasEdge(int32_t u, int32_t v) const;

  /// Symmetric-normalized adjacency with self-loops,
  /// D^-1/2 (A + I) D^-1/2 — the GCN propagation matrix.
  std::shared_ptr<const tensor::CsrMatrix> NormalizedAdjacency() const;

  /// Row-normalized adjacency D^-1 A (mean aggregation, no self loop),
  /// used by the GraphSAGE mean aggregator.
  std::shared_ptr<const tensor::CsrMatrix> MeanAdjacency() const;

  /// Directed edge list (both directions), for attention-style layers:
  /// returns {sources, targets} with one entry per directed edge.
  void DirectedEdges(std::vector<int32_t>* sources,
                     std::vector<int32_t>* targets) const;

 private:
  int32_t num_nodes_;
  int64_t num_edges_;
  std::vector<int64_t> offsets_;
  std::vector<int32_t> neighbors_;
};

}  // namespace hygnn::graph

#endif  // HYGNN_GRAPH_GRAPH_H_
