#include "graph/graph.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace hygnn::graph {

Graph::Graph(int32_t num_nodes,
             const std::vector<std::pair<int32_t, int32_t>>& edges)
    : num_nodes_(num_nodes) {
  HYGNN_CHECK_GE(num_nodes, 0);
  std::vector<std::vector<int32_t>> adjacency(
      static_cast<size_t>(num_nodes));
  for (const auto& [u, v] : edges) {
    HYGNN_CHECK(u >= 0 && u < num_nodes);
    HYGNN_CHECK(v >= 0 && v < num_nodes);
    if (u == v) continue;  // drop self-loops
    adjacency[static_cast<size_t>(u)].push_back(v);
    adjacency[static_cast<size_t>(v)].push_back(u);
  }
  offsets_.assign(static_cast<size_t>(num_nodes) + 1, 0);
  int64_t total = 0;
  for (int32_t i = 0; i < num_nodes; ++i) {
    auto& nbrs = adjacency[static_cast<size_t>(i)];
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    total += static_cast<int64_t>(nbrs.size());
    offsets_[static_cast<size_t>(i) + 1] = total;
  }
  neighbors_.reserve(static_cast<size_t>(total));
  for (int32_t i = 0; i < num_nodes; ++i) {
    const auto& nbrs = adjacency[static_cast<size_t>(i)];
    neighbors_.insert(neighbors_.end(), nbrs.begin(), nbrs.end());
  }
  num_edges_ = total / 2;
}

std::span<const int32_t> Graph::Neighbors(int32_t node) const {
  HYGNN_CHECK(node >= 0 && node < num_nodes_);
  const int64_t begin = offsets_[static_cast<size_t>(node)];
  const int64_t end = offsets_[static_cast<size_t>(node) + 1];
  return {neighbors_.data() + begin, static_cast<size_t>(end - begin)};
}

int64_t Graph::Degree(int32_t node) const {
  HYGNN_CHECK(node >= 0 && node < num_nodes_);
  return offsets_[static_cast<size_t>(node) + 1] -
         offsets_[static_cast<size_t>(node)];
}

bool Graph::HasEdge(int32_t u, int32_t v) const {
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::shared_ptr<const tensor::CsrMatrix> Graph::NormalizedAdjacency() const {
  std::vector<int32_t> rows, cols;
  std::vector<float> vals;
  // degrees including the self-loop
  std::vector<float> inv_sqrt_deg(static_cast<size_t>(num_nodes_));
  for (int32_t i = 0; i < num_nodes_; ++i) {
    inv_sqrt_deg[static_cast<size_t>(i)] =
        1.0f / std::sqrt(static_cast<float>(Degree(i) + 1));
  }
  for (int32_t i = 0; i < num_nodes_; ++i) {
    rows.push_back(i);
    cols.push_back(i);
    vals.push_back(inv_sqrt_deg[i] * inv_sqrt_deg[i]);
    for (int32_t nbr : Neighbors(i)) {
      rows.push_back(i);
      cols.push_back(nbr);
      vals.push_back(inv_sqrt_deg[i] * inv_sqrt_deg[static_cast<size_t>(nbr)]);
    }
  }
  return tensor::CsrMatrix::FromCoo(num_nodes_, num_nodes_, rows, cols, vals);
}

std::shared_ptr<const tensor::CsrMatrix> Graph::MeanAdjacency() const {
  std::vector<int32_t> rows, cols;
  std::vector<float> vals;
  for (int32_t i = 0; i < num_nodes_; ++i) {
    const int64_t degree = Degree(i);
    if (degree == 0) continue;
    const float weight = 1.0f / static_cast<float>(degree);
    for (int32_t nbr : Neighbors(i)) {
      rows.push_back(i);
      cols.push_back(nbr);
      vals.push_back(weight);
    }
  }
  return tensor::CsrMatrix::FromCoo(num_nodes_, num_nodes_, rows, cols, vals);
}

void Graph::DirectedEdges(std::vector<int32_t>* sources,
                          std::vector<int32_t>* targets) const {
  sources->clear();
  targets->clear();
  for (int32_t i = 0; i < num_nodes_; ++i) {
    for (int32_t nbr : Neighbors(i)) {
      sources->push_back(nbr);  // message flows nbr -> i
      targets->push_back(i);
    }
  }
}

}  // namespace hygnn::graph
