#include "graph/random_walk.h"

#include "core/logging.h"

namespace hygnn::graph {

std::vector<std::vector<int32_t>> UniformRandomWalks(
    const Graph& graph, const RandomWalkConfig& config, core::Rng* rng) {
  HYGNN_CHECK(rng != nullptr);
  std::vector<std::vector<int32_t>> walks;
  walks.reserve(static_cast<size_t>(graph.num_nodes()) *
                config.num_walks_per_node);
  for (int32_t round = 0; round < config.num_walks_per_node; ++round) {
    for (int32_t start = 0; start < graph.num_nodes(); ++start) {
      std::vector<int32_t> walk{start};
      int32_t current = start;
      for (int32_t step = 1; step < config.walk_length; ++step) {
        auto nbrs = graph.Neighbors(current);
        if (nbrs.empty()) break;
        current = nbrs[rng->UniformInt(nbrs.size())];
        walk.push_back(current);
      }
      walks.push_back(std::move(walk));
    }
  }
  return walks;
}

std::vector<std::vector<int32_t>> BiasedRandomWalks(
    const Graph& graph, const RandomWalkConfig& config, core::Rng* rng) {
  HYGNN_CHECK(rng != nullptr);
  HYGNN_CHECK_GT(config.p, 0.0);
  HYGNN_CHECK_GT(config.q, 0.0);
  std::vector<std::vector<int32_t>> walks;
  walks.reserve(static_cast<size_t>(graph.num_nodes()) *
                config.num_walks_per_node);
  std::vector<double> weights;
  for (int32_t round = 0; round < config.num_walks_per_node; ++round) {
    for (int32_t start = 0; start < graph.num_nodes(); ++start) {
      std::vector<int32_t> walk{start};
      int32_t prev = -1;
      int32_t current = start;
      for (int32_t step = 1; step < config.walk_length; ++step) {
        auto nbrs = graph.Neighbors(current);
        if (nbrs.empty()) break;
        int32_t next;
        if (prev < 0) {
          next = nbrs[rng->UniformInt(nbrs.size())];
        } else {
          weights.resize(nbrs.size());
          for (size_t i = 0; i < nbrs.size(); ++i) {
            const int32_t candidate = nbrs[i];
            if (candidate == prev) {
              weights[i] = 1.0 / config.p;
            } else if (graph.HasEdge(candidate, prev)) {
              weights[i] = 1.0;
            } else {
              weights[i] = 1.0 / config.q;
            }
          }
          next = nbrs[rng->Categorical(weights)];
        }
        walk.push_back(next);
        prev = current;
        current = next;
      }
      walks.push_back(std::move(walk));
    }
  }
  return walks;
}

}  // namespace hygnn::graph
