#ifndef HYGNN_GRAPH_STATS_H_
#define HYGNN_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/hypergraph.h"

namespace hygnn::graph {

/// Summary statistics of a simple graph; used to characterize generated
/// DDI / SSG graphs in benches and tests.
struct GraphStats {
  int32_t num_nodes = 0;
  int64_t num_edges = 0;
  double average_degree = 0.0;
  int64_t max_degree = 0;
  int64_t isolated_nodes = 0;
  int32_t connected_components = 0;
  /// Global clustering coefficient: 3 * triangles / wedges (0 when no
  /// wedges exist).
  double clustering_coefficient = 0.0;
};

GraphStats ComputeGraphStats(const Graph& graph);

/// Node ids of each connected component (singletons included), largest
/// first.
std::vector<std::vector<int32_t>> ConnectedComponents(const Graph& graph);

/// Summary statistics of a hypergraph.
struct HypergraphStats {
  int32_t num_nodes = 0;
  int32_t num_edges = 0;
  int64_t num_incidences = 0;
  double average_edge_degree = 0.0;  // mean |e_j|
  double average_node_degree = 0.0;  // mean |E_i|
  int64_t max_edge_degree = 0;
  int64_t max_node_degree = 0;
  /// Nodes contained in exactly one hyperedge (they carry no
  /// cross-drug signal).
  int64_t private_nodes = 0;
};

HypergraphStats ComputeHypergraphStats(const Hypergraph& hypergraph);

}  // namespace hygnn::graph

#endif  // HYGNN_GRAPH_STATS_H_
