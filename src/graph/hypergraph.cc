#include "graph/hypergraph.h"

#include <algorithm>

#include "core/logging.h"

namespace hygnn::graph {

Hypergraph::Hypergraph(int32_t num_nodes,
                       const std::vector<std::vector<int32_t>>& members)
    : num_nodes_(num_nodes),
      num_edges_(static_cast<int32_t>(members.size())) {
  HYGNN_CHECK_GE(num_nodes, 0);
  edge_offsets_.assign(static_cast<size_t>(num_edges_) + 1, 0);
  std::vector<std::vector<int32_t>> node_to_edges(
      static_cast<size_t>(num_nodes));

  int64_t total = 0;
  std::vector<std::vector<int32_t>> cleaned(members.size());
  for (int32_t j = 0; j < num_edges_; ++j) {
    auto sorted = members[static_cast<size_t>(j)];
    for (int32_t v : sorted) {
      HYGNN_CHECK(v >= 0 && v < num_nodes);
    }
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    total += static_cast<int64_t>(sorted.size());
    edge_offsets_[static_cast<size_t>(j) + 1] = total;
    for (int32_t v : sorted) {
      node_to_edges[static_cast<size_t>(v)].push_back(j);
    }
    cleaned[static_cast<size_t>(j)] = std::move(sorted);
  }

  edge_members_.reserve(static_cast<size_t>(total));
  pair_nodes_.reserve(static_cast<size_t>(total));
  pair_edges_.reserve(static_cast<size_t>(total));
  for (int32_t j = 0; j < num_edges_; ++j) {
    for (int32_t v : cleaned[static_cast<size_t>(j)]) {
      edge_members_.push_back(v);
      pair_nodes_.push_back(v);
      pair_edges_.push_back(j);
    }
  }

  node_offsets_.assign(static_cast<size_t>(num_nodes) + 1, 0);
  int64_t node_total = 0;
  for (int32_t v = 0; v < num_nodes; ++v) {
    node_total +=
        static_cast<int64_t>(node_to_edges[static_cast<size_t>(v)].size());
    node_offsets_[static_cast<size_t>(v) + 1] = node_total;
  }
  node_memberships_.reserve(static_cast<size_t>(node_total));
  for (int32_t v = 0; v < num_nodes; ++v) {
    const auto& edges = node_to_edges[static_cast<size_t>(v)];
    node_memberships_.insert(node_memberships_.end(), edges.begin(),
                             edges.end());
  }
}

std::span<const int32_t> Hypergraph::EdgeMembers(int32_t edge) const {
  HYGNN_CHECK(edge >= 0 && edge < num_edges_);
  const int64_t begin = edge_offsets_[static_cast<size_t>(edge)];
  const int64_t end = edge_offsets_[static_cast<size_t>(edge) + 1];
  return {edge_members_.data() + begin, static_cast<size_t>(end - begin)};
}

std::span<const int32_t> Hypergraph::NodeMemberships(int32_t node) const {
  HYGNN_CHECK(node >= 0 && node < num_nodes_);
  const int64_t begin = node_offsets_[static_cast<size_t>(node)];
  const int64_t end = node_offsets_[static_cast<size_t>(node) + 1];
  return {node_memberships_.data() + begin,
          static_cast<size_t>(end - begin)};
}

int64_t Hypergraph::NodeDegree(int32_t node) const {
  HYGNN_CHECK(node >= 0 && node < num_nodes_);
  return node_offsets_[static_cast<size_t>(node) + 1] -
         node_offsets_[static_cast<size_t>(node)];
}

int64_t Hypergraph::EdgeDegree(int32_t edge) const {
  HYGNN_CHECK(edge >= 0 && edge < num_edges_);
  return edge_offsets_[static_cast<size_t>(edge) + 1] -
         edge_offsets_[static_cast<size_t>(edge)];
}

int64_t Hypergraph::SharedNodes(int32_t edge_a, int32_t edge_b) const {
  auto a = EdgeMembers(edge_a);
  auto b = EdgeMembers(edge_b);
  int64_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::vector<std::vector<uint8_t>> Hypergraph::DenseIncidence() const {
  std::vector<std::vector<uint8_t>> h(
      static_cast<size_t>(num_nodes_),
      std::vector<uint8_t>(static_cast<size_t>(num_edges_), 0));
  for (size_t i = 0; i < pair_nodes_.size(); ++i) {
    h[static_cast<size_t>(pair_nodes_[i])]
     [static_cast<size_t>(pair_edges_[i])] = 1;
  }
  return h;
}

}  // namespace hygnn::graph
