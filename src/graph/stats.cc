#include "graph/stats.h"

#include <algorithm>

namespace hygnn::graph {

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats stats;
  stats.num_nodes = graph.num_nodes();
  stats.num_edges = graph.num_edges();
  int64_t degree_sum = 0;
  for (int32_t v = 0; v < graph.num_nodes(); ++v) {
    const int64_t degree = graph.Degree(v);
    degree_sum += degree;
    stats.max_degree = std::max(stats.max_degree, degree);
    if (degree == 0) ++stats.isolated_nodes;
  }
  if (graph.num_nodes() > 0) {
    stats.average_degree =
        static_cast<double>(degree_sum) / graph.num_nodes();
  }
  stats.connected_components =
      static_cast<int32_t>(ConnectedComponents(graph).size());

  // Triangles and wedges via neighbor-list intersection.
  int64_t triangles_x3 = 0;
  int64_t wedges = 0;
  for (int32_t v = 0; v < graph.num_nodes(); ++v) {
    const int64_t degree = graph.Degree(v);
    wedges += degree * (degree - 1) / 2;
    auto nbrs = graph.Neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        if (graph.HasEdge(nbrs[i], nbrs[j])) ++triangles_x3;
      }
    }
  }
  if (wedges > 0) {
    stats.clustering_coefficient =
        static_cast<double>(triangles_x3) / static_cast<double>(wedges);
  }
  return stats;
}

std::vector<std::vector<int32_t>> ConnectedComponents(const Graph& graph) {
  std::vector<std::vector<int32_t>> components;
  std::vector<bool> visited(static_cast<size_t>(graph.num_nodes()), false);
  std::vector<int32_t> stack;
  for (int32_t start = 0; start < graph.num_nodes(); ++start) {
    if (visited[static_cast<size_t>(start)]) continue;
    std::vector<int32_t> component;
    stack.push_back(start);
    visited[static_cast<size_t>(start)] = true;
    while (!stack.empty()) {
      const int32_t v = stack.back();
      stack.pop_back();
      component.push_back(v);
      for (int32_t nbr : graph.Neighbors(v)) {
        if (!visited[static_cast<size_t>(nbr)]) {
          visited[static_cast<size_t>(nbr)] = true;
          stack.push_back(nbr);
        }
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  std::sort(components.begin(), components.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  return components;
}

HypergraphStats ComputeHypergraphStats(const Hypergraph& hypergraph) {
  HypergraphStats stats;
  stats.num_nodes = hypergraph.num_nodes();
  stats.num_edges = hypergraph.num_edges();
  stats.num_incidences = hypergraph.num_incidences();
  for (int32_t e = 0; e < hypergraph.num_edges(); ++e) {
    stats.max_edge_degree =
        std::max(stats.max_edge_degree, hypergraph.EdgeDegree(e));
  }
  for (int32_t v = 0; v < hypergraph.num_nodes(); ++v) {
    const int64_t degree = hypergraph.NodeDegree(v);
    stats.max_node_degree = std::max(stats.max_node_degree, degree);
    if (degree == 1) ++stats.private_nodes;
  }
  if (hypergraph.num_edges() > 0) {
    stats.average_edge_degree =
        static_cast<double>(stats.num_incidences) / hypergraph.num_edges();
  }
  if (hypergraph.num_nodes() > 0) {
    stats.average_node_degree =
        static_cast<double>(stats.num_incidences) / hypergraph.num_nodes();
  }
  return stats;
}

}  // namespace hygnn::graph
