#include "hygnn/trainer.h"

#include <limits>
#include <optional>

#include "core/flags.h"
#include "core/logging.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "tensor/debug.h"
#include "tensor/loss.h"
#include "tensor/optimizer.h"

namespace hygnn::model {

EvalResult EvaluateScores(const std::vector<float>& scores,
                          const std::vector<float>& labels) {
  return metrics::EvaluateBinary(scores, labels);
}

std::vector<float> LabelsOf(const std::vector<data::LabeledPair>& pairs) {
  std::vector<float> labels;
  labels.reserve(pairs.size());
  for (const auto& pair : pairs) labels.push_back(pair.label);
  return labels;
}

HyGnnTrainer::HyGnnTrainer(HyGnnModel* model, const TrainConfig& config)
    : model_(model), config_(config) {
  HYGNN_CHECK(model != nullptr);
}

float HyGnnTrainer::Fit(const HypergraphContext& context,
                        const std::vector<data::LabeledPair>& train_pairs) {
  HYGNN_CHECK(!train_pairs.empty());
  epoch_losses_.clear();
  // Kernel thread count: an explicit config wins; 0 leaves the global
  // pool as-is (HYGNN_NUM_THREADS or a prior SetNumThreads call).
  if (config_.threads > 0) core::SetNumThreads(config_.threads);
  core::Rng rng(config_.seed);
  tensor::Adam optimizer(model_->Parameters(), config_.learning_rate, 0.9f,
                         0.999f, 1e-8f, config_.weight_decay);

  // Opt-in numerics watchdog: attributes the first NaN/Inf to the op
  // that produced it and stops training before weights are corrupted.
  const bool guard_numerics =
      config_.numerics_guard || core::EnvFlag("HYGNN_NUMERICS_GUARD", false);
  std::optional<tensor::NumericsGuardScope> guard;
  if (guard_numerics) {
    tensor::NumericsGuard::Reset();
    guard.emplace();
  }

  // Optional validation fold for early stopping.
  std::vector<data::LabeledPair> train = train_pairs;
  std::vector<data::LabeledPair> validation;
  if (config_.validation_fraction > 0.0 && train_pairs.size() >= 10) {
    rng.Shuffle(train);
    const size_t val_size = std::max<size_t>(
        1, static_cast<size_t>(config_.validation_fraction *
                               static_cast<double>(train.size())));
    validation.assign(train.end() - static_cast<ptrdiff_t>(val_size),
                      train.end());
    train.resize(train.size() - val_size);
  }
  const std::vector<float> validation_labels = LabelsOf(validation);

  float last_loss = 0.0f;
  float best_val_loss = std::numeric_limits<float>::infinity();
  int32_t epochs_since_improvement = 0;
  for (int32_t epoch = 0; epoch < config_.epochs; ++epoch) {
    if (config_.batch_size > 0) {
      rng.Shuffle(train);
      float epoch_loss = 0.0f;
      size_t batches = 0;
      for (size_t begin = 0; begin < train.size();
           begin += static_cast<size_t>(config_.batch_size)) {
        const size_t end = std::min(
            train.size(), begin + static_cast<size_t>(config_.batch_size));
        std::vector<data::LabeledPair> batch(train.begin() + begin,
                                             train.begin() + end);
        optimizer.ZeroGrad();
        tensor::Tensor logits =
            model_->Forward(context, batch, /*training=*/true, &rng);
        tensor::Tensor loss =
            tensor::BceWithLogitsLoss(logits, LabelsOf(batch));
        loss.Backward();
        if (config_.grad_clip > 0.0f) {
          optimizer.ClipGradNorm(config_.grad_clip);
        }
        optimizer.Step();
        epoch_loss += loss.item();
        ++batches;
        if (guard_numerics && tensor::NumericsGuard::triggered()) break;
      }
      last_loss = epoch_loss / static_cast<float>(batches);
    } else {
      optimizer.ZeroGrad();
      tensor::Tensor logits =
          model_->Forward(context, train, /*training=*/true, &rng);
      tensor::Tensor loss =
          tensor::BceWithLogitsLoss(logits, LabelsOf(train));
      loss.Backward();
      if (config_.grad_clip > 0.0f) {
        optimizer.ClipGradNorm(config_.grad_clip);
      }
      optimizer.Step();
      last_loss = loss.item();
    }
    epoch_losses_.push_back(last_loss);

    if (guard_numerics && tensor::NumericsGuard::triggered()) {
      HYGNN_LOG(Error) << "numerics guard tripped at epoch " << epoch
                       << "; stopping training early\n"
                       << tensor::NumericsGuard::report();
      break;
    }

    if (!validation.empty()) {
      tensor::Tensor val_logits =
          model_->Forward(context, validation, /*training=*/false, nullptr);
      const float val_loss =
          tensor::BceWithLogitsLoss(val_logits, validation_labels).item();
      if (val_loss < best_val_loss - 1e-5f) {
        best_val_loss = val_loss;
        epochs_since_improvement = 0;
      } else if (++epochs_since_improvement >= config_.patience) {
        if (config_.verbose) {
          HYGNN_LOG(Info) << "early stop at epoch " << epoch
                          << " (val loss " << val_loss << ")";
        }
        break;
      }
    }
    if (config_.verbose && (epoch % config_.log_every == 0 ||
                            epoch + 1 == config_.epochs)) {
      HYGNN_LOG(Info) << "epoch " << epoch << " loss " << last_loss;
    }
  }
  return last_loss;
}

EvalResult HyGnnTrainer::Evaluate(
    const HypergraphContext& context,
    const std::vector<data::LabeledPair>& pairs) const {
  const std::vector<float> scores =
      model_->PredictProbabilities(context, pairs);
  return EvaluateScores(scores, LabelsOf(pairs));
}

}  // namespace hygnn::model
