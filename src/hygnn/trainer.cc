#include "hygnn/trainer.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <optional>

#include "core/flags.h"
#include "core/fs.h"
#include "core/logging.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "hygnn/checkpoint.h"
#include "obs/metrics.h"
#include "obs/optime.h"
#include "obs/sink.h"
#include "tensor/debug.h"
#include "tensor/loss.h"
#include "tensor/optimizer.h"
#include "tensor/serialize.h"
#include "tensor/tape.h"

namespace hygnn::model {

using core::Status;

EvalResult EvaluateScores(const std::vector<float>& scores,
                          const std::vector<float>& labels) {
  return metrics::EvaluateBinary(scores, labels);
}

std::vector<float> LabelsOf(const std::vector<data::LabeledPair>& pairs) {
  std::vector<float> labels;
  labels.reserve(pairs.size());
  for (const auto& pair : pairs) labels.push_back(pair.label);
  return labels;
}

HyGnnTrainer::HyGnnTrainer(HyGnnModel* model, const TrainConfig& config)
    : model_(model), config_(config) {
  HYGNN_CHECK(model != nullptr);
}

float HyGnnTrainer::Fit(const HypergraphContext& context,
                        const std::vector<data::LabeledPair>& train_pairs) {
  auto result = TryFit(context, train_pairs);
  HYGNN_CHECK(result.ok()) << result.status().ToString();
  return result.value();
}

core::Result<float> HyGnnTrainer::TryFit(
    const HypergraphContext& context,
    const std::vector<data::LabeledPair>& train_pairs) {
  HYGNN_CHECK(!train_pairs.empty());
  epoch_losses_.clear();
  val_losses_.clear();
  last_batch_loss_ = 0.0f;
  best_epoch_ = -1;
  early_stopped_ = false;
  // Kernel thread count: an explicit config wins; 0 leaves the global
  // pool as-is (HYGNN_NUM_THREADS or a prior SetNumThreads call).
  if (config_.threads > 0) core::SetNumThreads(config_.threads);
  // Elementwise fusion: the config opts in (default on) and the
  // HYGNN_FUSE environment flag can veto it for A/B runs. Either way
  // the trained weights are bit-identical — fusion is purely a
  // performance switch.
  tensor::SetFusionEnabled(config_.fuse && core::EnvFlag("HYGNN_FUSE", true));
  core::Rng rng(config_.seed);
  tensor::Adam optimizer(model_->Parameters(), config_.learning_rate, 0.9f,
                         0.999f, 1e-8f, config_.weight_decay);

  // Opt-in numerics watchdog: attributes the first NaN/Inf to the op
  // that produced it and stops training before weights are corrupted.
  const bool guard_numerics =
      config_.numerics_guard || core::EnvFlag("HYGNN_NUMERICS_GUARD", false);
  std::optional<tensor::NumericsGuardScope> guard;
  if (guard_numerics) {
    tensor::NumericsGuard::Reset();
    guard.emplace();
  }

  // Optional validation fold for early stopping.
  std::vector<data::LabeledPair> train = train_pairs;
  std::vector<data::LabeledPair> validation;
  if (config_.validation_fraction > 0.0 && train_pairs.size() >= 10) {
    rng.Shuffle(train);
    const size_t val_size = std::max<size_t>(
        1, static_cast<size_t>(config_.validation_fraction *
                               static_cast<double>(train.size())));
    validation.assign(train.end() - static_cast<ptrdiff_t>(val_size),
                      train.end());
    train.resize(train.size() - val_size);
  }
  const std::vector<float> validation_labels = LabelsOf(validation);

  float last_loss = 0.0f;
  float best_val_loss = std::numeric_limits<float>::infinity();
  int32_t epochs_since_improvement = 0;
  int32_t start_epoch = 0;
  // Weights at the best-validation epoch, one flat vector per parameter
  // in Parameters() order; empty until the first improvement. Early
  // stopping restores these — without the snapshot the trainer would
  // hand back the weights of `patience` consecutive *worse* epochs.
  std::vector<std::vector<float>> best_weights;

  // Checkpointing. The validation split above was re-derived
  // deterministically from the seed, so on resume it is identical to the
  // interrupted run's; restoring the RNG stream afterwards makes every
  // subsequent draw identical too.
  const bool checkpointing = !config_.checkpoint_dir.empty();
  std::string ckpt_path;
  if (config_.resume && !checkpointing) {
    return Status::InvalidArgument(
        "resume requested but checkpoint_dir is empty");
  }
  if (checkpointing) {
    ckpt_path = CheckpointPath(config_.checkpoint_dir);
    if (auto status =
            core::ActiveFileSystem().CreateDir(config_.checkpoint_dir);
        !status.ok()) {
      return status;
    }
    if (config_.resume && core::ActiveFileSystem().Exists(ckpt_path)) {
      // A corrupt or mismatched checkpoint is a hard error: silently
      // restarting from scratch would discard work the caller believes
      // is preserved.
      auto loaded = TrainCheckpoint::Load(ckpt_path);
      if (!loaded.ok()) return loaded.status();
      TrainCheckpoint& ckpt = loaded.value();
      auto parameters = model_->Parameters();
      if (auto status = tensor::RestoreParameters(ckpt.weights, &parameters);
          !status.ok()) {
        return Status(status.code(),
                      "checkpoint does not fit this model (" +
                          status.message() + "): " + ckpt_path);
      }
      if (auto status = optimizer.RestoreState(ckpt.adam); !status.ok()) {
        return Status(status.code(), status.message() + ": " + ckpt_path);
      }
      rng.set_state(ckpt.rng);
      epoch_losses_ = ckpt.epoch_losses;
      if (!epoch_losses_.empty()) last_loss = epoch_losses_.back();
      best_val_loss = ckpt.best_val_loss;
      epochs_since_improvement = ckpt.epochs_since_improvement;
      val_losses_ = ckpt.val_losses;
      best_epoch_ = ckpt.best_epoch;
      best_weights = std::move(ckpt.best_weights);
      start_epoch = ckpt.next_epoch;
      if (config_.verbose) {
        HYGNN_LOG(Info) << "resumed from " << ckpt_path << " at epoch "
                        << start_epoch;
      }
    } else if (config_.resume) {
      // Missing checkpoint is not an error, so restart loops can always
      // pass --resume: the first run simply starts fresh.
      HYGNN_LOG(Info) << "no checkpoint at " << ckpt_path
                      << "; starting fresh";
    }
  }

  // Observability. The recorder is inert when no metrics path is
  // configured (an explicit config wins over the HYGNN_METRICS
  // environment variable), and every gate below is a null check, so the
  // uninstrumented path costs one relaxed load per site. Recording is
  // passive: weights and losses are bit-identical with metrics on or
  // off (ObsTest.MetricsDoNotPerturbTraining pins this).
  const std::string metrics_path = !config_.metrics_path.empty()
                                       ? config_.metrics_path
                                       : core::EnvString("HYGNN_METRICS", "");
  obs::MetricsRecorder recorder(metrics_path);
  std::optional<obs::ScopedMetricsEnabled> metrics_scope;
  const bool previous_timing = obs::KernelTimingEnabled();
  obs::Histogram* epoch_hist = nullptr;
  obs::Histogram* ckpt_hist = nullptr;
  obs::Counter* ckpt_failures = nullptr;
  obs::Counter* batches_counter = nullptr;
  if (recorder.active()) {
    metrics_scope.emplace(true);
    obs::SetKernelTimingEnabled(true);
    auto& registry = obs::MetricsRegistry::Global();
    epoch_hist = registry.GetHistogram("train.epoch_us");
    ckpt_hist = registry.GetHistogram("train.checkpoint_write_us");
    ckpt_failures = registry.GetCounter("train.checkpoint_failures");
    batches_counter = registry.GetCounter("train.batches");
  }

  for (int32_t epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    obs::Timer epoch_timer;
    double grad_norm_sum = 0.0;
    size_t grad_norm_samples = 0;
    if (config_.batch_size > 0) {
      // Each epoch's batch order must be a pure function of the canonical
      // post-split order and this epoch's RNG draws. Shuffling `train` in
      // place would accumulate permutations across epochs, so a resumed run
      // (whose `train` is freshly re-split) could never reproduce the order
      // the interrupted run would have used — breaking bit-identical resume.
      std::vector<size_t> order(train.size());
      std::iota(order.begin(), order.end(), size_t{0});
      rng.Shuffle(order);
      // Example-weighted mean: train.size() is rarely a multiple of the
      // batch size, so the final batch is short — an unweighted mean
      // over batch losses would overweight its examples. Accumulate in
      // double so the mean does not drift with epoch length
      // (TrainerFeaturesTest.EpochLossIsExampleWeightedMean).
      double epoch_loss_sum = 0.0;
      size_t epoch_examples = 0;
      for (size_t begin = 0; begin < train.size();
           begin += static_cast<size_t>(config_.batch_size)) {
        const size_t end = std::min(
            train.size(), begin + static_cast<size_t>(config_.batch_size));
        std::vector<data::LabeledPair> batch;
        batch.reserve(end - begin);
        for (size_t i = begin; i < end; ++i) batch.push_back(train[order[i]]);
        optimizer.ZeroGrad();
        tensor::Tensor logits =
            model_->Forward(context, batch, /*training=*/true, &rng);
        tensor::Tensor loss =
            tensor::BceWithLogitsLoss(logits, LabelsOf(batch));
        loss.Backward();
        float grad_norm = -1.0f;
        if (config_.grad_clip > 0.0f) {
          grad_norm = optimizer.ClipGradNorm(config_.grad_clip);
        } else if (recorder.active()) {
          // GradNorm is read-only; only spend the pass when recording.
          grad_norm = optimizer.GradNorm();
        }
        optimizer.Step();
        last_batch_loss_ = loss.item();
        epoch_loss_sum += static_cast<double>(last_batch_loss_) *
                          static_cast<double>(end - begin);
        epoch_examples += end - begin;
        if (batches_counter != nullptr) batches_counter->Add();
        if (grad_norm >= 0.0f) {
          grad_norm_sum += grad_norm;
          ++grad_norm_samples;
        }
        if (guard_numerics && tensor::NumericsGuard::triggered()) break;
      }
      last_loss = static_cast<float>(epoch_loss_sum /
                                     static_cast<double>(epoch_examples));
    } else {
      optimizer.ZeroGrad();
      tensor::Tensor logits =
          model_->Forward(context, train, /*training=*/true, &rng);
      tensor::Tensor loss =
          tensor::BceWithLogitsLoss(logits, LabelsOf(train));
      loss.Backward();
      float grad_norm = -1.0f;
      if (config_.grad_clip > 0.0f) {
        grad_norm = optimizer.ClipGradNorm(config_.grad_clip);
      } else if (recorder.active()) {
        grad_norm = optimizer.GradNorm();
      }
      optimizer.Step();
      last_loss = loss.item();
      last_batch_loss_ = last_loss;
      if (batches_counter != nullptr) batches_counter->Add();
      if (grad_norm >= 0.0f) {
        grad_norm_sum += grad_norm;
        ++grad_norm_samples;
      }
    }
    epoch_losses_.push_back(last_loss);

    if (guard_numerics && tensor::NumericsGuard::triggered()) {
      HYGNN_LOG(Error) << "numerics guard tripped at epoch " << epoch
                       << "; stopping training early\n"
                       << tensor::NumericsGuard::report();
      break;
    }

    bool stop_early = false;
    float val_loss = std::numeric_limits<float>::quiet_NaN();
    if (!validation.empty()) {
      tensor::Tensor val_logits =
          model_->Forward(context, validation, /*training=*/false, nullptr);
      val_loss =
          tensor::BceWithLogitsLoss(val_logits, validation_labels).item();
      val_losses_.push_back(val_loss);
      if (val_loss < best_val_loss - 1e-5f) {
        best_val_loss = val_loss;
        epochs_since_improvement = 0;
        best_epoch_ = epoch;
        // Snapshot the improving weights. Early stopping fires only
        // after `patience` consecutive *worse* epochs, so without this
        // snapshot the caller would be handed the stale final-epoch
        // weights instead of the best-validation ones.
        const auto parameters = model_->Parameters();
        best_weights.assign(parameters.size(), {});
        for (size_t i = 0; i < parameters.size(); ++i) {
          best_weights[i].assign(parameters[i].data(),
                                 parameters[i].data() + parameters[i].size());
        }
      } else if (++epochs_since_improvement >= config_.patience) {
        if (config_.verbose) {
          HYGNN_LOG(Info) << "early stop at epoch " << epoch
                          << " (val loss " << val_loss << ")";
        }
        stop_early = true;
      }
    }

    const double epoch_ms = epoch_timer.ElapsedMillis();
    if (epoch_hist != nullptr) epoch_hist->Observe(epoch_ms * 1e3);
    if (recorder.active()) {
      obs::JsonWriter event;
      event.Str("type", "event").Str("event", "epoch").Int("epoch", epoch);
      event.Num("wall_ms", epoch_ms);
      event.Num("train_loss", last_loss);
      event.Num("last_batch_loss", last_batch_loss_);
      if (grad_norm_samples > 0) {
        event.Num("grad_norm",
                  grad_norm_sum / static_cast<double>(grad_norm_samples));
      }
      if (!validation.empty()) {
        event.Num("val_loss", val_loss)
            .Num("best_val_loss", best_val_loss)
            .Int("best_epoch", best_epoch_);
      }
      recorder.Event(event.Finish());
    }

    if (stop_early) {
      early_stopped_ = true;
      // Break before the checkpoint block: an early-stopping epoch has
      // never written a checkpoint (the resumed run re-derives the stop
      // from the last interval's counters), and best_weights rides in
      // every interval checkpoint so the re-derived stop restores the
      // same weights.
      break;
    }
    if (checkpointing &&
        ((epoch + 1) % std::max(1, config_.checkpoint_every) == 0 ||
         epoch + 1 == config_.epochs)) {
      TrainCheckpoint ckpt;
      ckpt.next_epoch = epoch + 1;
      ckpt.epoch_losses = epoch_losses_;
      ckpt.best_val_loss = best_val_loss;
      ckpt.epochs_since_improvement = epochs_since_improvement;
      ckpt.val_losses = val_losses_;
      ckpt.best_epoch = best_epoch_;
      ckpt.best_weights = best_weights;
      ckpt.rng = rng.state();
      ckpt.adam = optimizer.ExportState();
      const auto parameters = model_->Parameters();
      ckpt.weights.reserve(parameters.size());
      for (size_t i = 0; i < parameters.size(); ++i) {
        ckpt.weights.emplace_back("param" + std::to_string(i),
                                  parameters[i]);
      }
      obs::Timer write_timer;
      if (auto status = ckpt.Save(ckpt_path, config_.checkpoint_write_attempts,
                                  config_.checkpoint_backoff_ms);
          !status.ok()) {
        // Graceful degradation: a run must not die because one
        // checkpoint write failed — the next interval tries again.
        if (ckpt_failures != nullptr) ckpt_failures->Add();
        HYGNN_LOG(Warning) << "checkpoint write failed (training "
                              "continues): " << status.ToString();
      } else if (ckpt_hist != nullptr) {
        ckpt_hist->Observe(write_timer.ElapsedMicros());
      }
    }
    if (config_.verbose && (epoch % config_.log_every == 0 ||
                            epoch + 1 == config_.epochs)) {
      HYGNN_LOG(Info) << "epoch " << epoch << " loss " << last_loss;
    }
  }

  // Early stopping restores the best-validation weights: the stop fired
  // because the last `patience` epochs were all worse than best_epoch_,
  // so the model currently holds exactly the weights we do NOT want.
  if (early_stopped_ && !best_weights.empty()) {
    auto parameters = model_->Parameters();
    HYGNN_CHECK_EQ(parameters.size(), best_weights.size());
    for (size_t i = 0; i < parameters.size(); ++i) {
      HYGNN_CHECK_EQ(static_cast<size_t>(parameters[i].size()),
                     best_weights[i].size());
      std::copy(best_weights[i].begin(), best_weights[i].end(),
                parameters[i].data());
    }
    if (config_.verbose) {
      HYGNN_LOG(Info) << "restored best-epoch weights (epoch " << best_epoch_
                      << ", val loss " << best_val_loss << ")";
    }
  }

  if (recorder.active()) {
    obs::JsonWriter done;
    done.Str("type", "event").Str("event", "train_done");
    done.Int("epochs_run", static_cast<int64_t>(epoch_losses_.size()));
    done.Int("early_stopped", early_stopped_ ? 1 : 0);
    done.Int("best_epoch", best_epoch_);
    done.Num("final_train_loss", last_loss);
    recorder.Event(done.Finish());
    if (auto status = recorder.Flush(); !status.ok()) {
      // Metrics are best-effort: a failed flush must not fail training.
      HYGNN_LOG(Warning) << "metrics flush failed: " << status.ToString();
    }
  }
  obs::SetKernelTimingEnabled(previous_timing);
  return last_loss;
}

EvalResult HyGnnTrainer::Evaluate(
    const HypergraphContext& context,
    const std::vector<data::LabeledPair>& pairs) const {
  const std::vector<float> scores =
      model_->PredictProbabilities(context, pairs);
  return EvaluateScores(scores, LabelsOf(pairs));
}

}  // namespace hygnn::model
