#include "hygnn/trainer.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <optional>

#include "core/flags.h"
#include "core/fs.h"
#include "core/logging.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "hygnn/checkpoint.h"
#include "tensor/debug.h"
#include "tensor/loss.h"
#include "tensor/optimizer.h"
#include "tensor/serialize.h"

namespace hygnn::model {

using core::Status;

EvalResult EvaluateScores(const std::vector<float>& scores,
                          const std::vector<float>& labels) {
  return metrics::EvaluateBinary(scores, labels);
}

std::vector<float> LabelsOf(const std::vector<data::LabeledPair>& pairs) {
  std::vector<float> labels;
  labels.reserve(pairs.size());
  for (const auto& pair : pairs) labels.push_back(pair.label);
  return labels;
}

HyGnnTrainer::HyGnnTrainer(HyGnnModel* model, const TrainConfig& config)
    : model_(model), config_(config) {
  HYGNN_CHECK(model != nullptr);
}

float HyGnnTrainer::Fit(const HypergraphContext& context,
                        const std::vector<data::LabeledPair>& train_pairs) {
  auto result = TryFit(context, train_pairs);
  HYGNN_CHECK(result.ok()) << result.status().ToString();
  return result.value();
}

core::Result<float> HyGnnTrainer::TryFit(
    const HypergraphContext& context,
    const std::vector<data::LabeledPair>& train_pairs) {
  HYGNN_CHECK(!train_pairs.empty());
  epoch_losses_.clear();
  // Kernel thread count: an explicit config wins; 0 leaves the global
  // pool as-is (HYGNN_NUM_THREADS or a prior SetNumThreads call).
  if (config_.threads > 0) core::SetNumThreads(config_.threads);
  core::Rng rng(config_.seed);
  tensor::Adam optimizer(model_->Parameters(), config_.learning_rate, 0.9f,
                         0.999f, 1e-8f, config_.weight_decay);

  // Opt-in numerics watchdog: attributes the first NaN/Inf to the op
  // that produced it and stops training before weights are corrupted.
  const bool guard_numerics =
      config_.numerics_guard || core::EnvFlag("HYGNN_NUMERICS_GUARD", false);
  std::optional<tensor::NumericsGuardScope> guard;
  if (guard_numerics) {
    tensor::NumericsGuard::Reset();
    guard.emplace();
  }

  // Optional validation fold for early stopping.
  std::vector<data::LabeledPair> train = train_pairs;
  std::vector<data::LabeledPair> validation;
  if (config_.validation_fraction > 0.0 && train_pairs.size() >= 10) {
    rng.Shuffle(train);
    const size_t val_size = std::max<size_t>(
        1, static_cast<size_t>(config_.validation_fraction *
                               static_cast<double>(train.size())));
    validation.assign(train.end() - static_cast<ptrdiff_t>(val_size),
                      train.end());
    train.resize(train.size() - val_size);
  }
  const std::vector<float> validation_labels = LabelsOf(validation);

  float last_loss = 0.0f;
  float best_val_loss = std::numeric_limits<float>::infinity();
  int32_t epochs_since_improvement = 0;
  int32_t start_epoch = 0;

  // Checkpointing. The validation split above was re-derived
  // deterministically from the seed, so on resume it is identical to the
  // interrupted run's; restoring the RNG stream afterwards makes every
  // subsequent draw identical too.
  const bool checkpointing = !config_.checkpoint_dir.empty();
  std::string ckpt_path;
  if (config_.resume && !checkpointing) {
    return Status::InvalidArgument(
        "resume requested but checkpoint_dir is empty");
  }
  if (checkpointing) {
    ckpt_path = CheckpointPath(config_.checkpoint_dir);
    if (auto status =
            core::ActiveFileSystem().CreateDir(config_.checkpoint_dir);
        !status.ok()) {
      return status;
    }
    if (config_.resume && core::ActiveFileSystem().Exists(ckpt_path)) {
      // A corrupt or mismatched checkpoint is a hard error: silently
      // restarting from scratch would discard work the caller believes
      // is preserved.
      auto loaded = TrainCheckpoint::Load(ckpt_path);
      if (!loaded.ok()) return loaded.status();
      TrainCheckpoint& ckpt = loaded.value();
      auto parameters = model_->Parameters();
      if (auto status = tensor::RestoreParameters(ckpt.weights, &parameters);
          !status.ok()) {
        return Status(status.code(),
                      "checkpoint does not fit this model (" +
                          status.message() + "): " + ckpt_path);
      }
      if (auto status = optimizer.RestoreState(ckpt.adam); !status.ok()) {
        return Status(status.code(), status.message() + ": " + ckpt_path);
      }
      rng.set_state(ckpt.rng);
      epoch_losses_ = ckpt.epoch_losses;
      if (!epoch_losses_.empty()) last_loss = epoch_losses_.back();
      best_val_loss = ckpt.best_val_loss;
      epochs_since_improvement = ckpt.epochs_since_improvement;
      start_epoch = ckpt.next_epoch;
      if (config_.verbose) {
        HYGNN_LOG(Info) << "resumed from " << ckpt_path << " at epoch "
                        << start_epoch;
      }
    } else if (config_.resume) {
      // Missing checkpoint is not an error, so restart loops can always
      // pass --resume: the first run simply starts fresh.
      HYGNN_LOG(Info) << "no checkpoint at " << ckpt_path
                      << "; starting fresh";
    }
  }

  for (int32_t epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    if (config_.batch_size > 0) {
      // Each epoch's batch order must be a pure function of the canonical
      // post-split order and this epoch's RNG draws. Shuffling `train` in
      // place would accumulate permutations across epochs, so a resumed run
      // (whose `train` is freshly re-split) could never reproduce the order
      // the interrupted run would have used — breaking bit-identical resume.
      std::vector<size_t> order(train.size());
      std::iota(order.begin(), order.end(), size_t{0});
      rng.Shuffle(order);
      float epoch_loss = 0.0f;
      size_t batches = 0;
      for (size_t begin = 0; begin < train.size();
           begin += static_cast<size_t>(config_.batch_size)) {
        const size_t end = std::min(
            train.size(), begin + static_cast<size_t>(config_.batch_size));
        std::vector<data::LabeledPair> batch;
        batch.reserve(end - begin);
        for (size_t i = begin; i < end; ++i) batch.push_back(train[order[i]]);
        optimizer.ZeroGrad();
        tensor::Tensor logits =
            model_->Forward(context, batch, /*training=*/true, &rng);
        tensor::Tensor loss =
            tensor::BceWithLogitsLoss(logits, LabelsOf(batch));
        loss.Backward();
        if (config_.grad_clip > 0.0f) {
          optimizer.ClipGradNorm(config_.grad_clip);
        }
        optimizer.Step();
        epoch_loss += loss.item();
        ++batches;
        if (guard_numerics && tensor::NumericsGuard::triggered()) break;
      }
      last_loss = epoch_loss / static_cast<float>(batches);
    } else {
      optimizer.ZeroGrad();
      tensor::Tensor logits =
          model_->Forward(context, train, /*training=*/true, &rng);
      tensor::Tensor loss =
          tensor::BceWithLogitsLoss(logits, LabelsOf(train));
      loss.Backward();
      if (config_.grad_clip > 0.0f) {
        optimizer.ClipGradNorm(config_.grad_clip);
      }
      optimizer.Step();
      last_loss = loss.item();
    }
    epoch_losses_.push_back(last_loss);

    if (guard_numerics && tensor::NumericsGuard::triggered()) {
      HYGNN_LOG(Error) << "numerics guard tripped at epoch " << epoch
                       << "; stopping training early\n"
                       << tensor::NumericsGuard::report();
      break;
    }

    if (!validation.empty()) {
      tensor::Tensor val_logits =
          model_->Forward(context, validation, /*training=*/false, nullptr);
      const float val_loss =
          tensor::BceWithLogitsLoss(val_logits, validation_labels).item();
      if (val_loss < best_val_loss - 1e-5f) {
        best_val_loss = val_loss;
        epochs_since_improvement = 0;
      } else if (++epochs_since_improvement >= config_.patience) {
        if (config_.verbose) {
          HYGNN_LOG(Info) << "early stop at epoch " << epoch
                          << " (val loss " << val_loss << ")";
        }
        break;
      }
    }
    if (checkpointing &&
        ((epoch + 1) % std::max(1, config_.checkpoint_every) == 0 ||
         epoch + 1 == config_.epochs)) {
      TrainCheckpoint ckpt;
      ckpt.next_epoch = epoch + 1;
      ckpt.epoch_losses = epoch_losses_;
      ckpt.best_val_loss = best_val_loss;
      ckpt.epochs_since_improvement = epochs_since_improvement;
      ckpt.rng = rng.state();
      ckpt.adam = optimizer.ExportState();
      const auto parameters = model_->Parameters();
      ckpt.weights.reserve(parameters.size());
      for (size_t i = 0; i < parameters.size(); ++i) {
        ckpt.weights.emplace_back("param" + std::to_string(i),
                                  parameters[i]);
      }
      if (auto status = ckpt.Save(ckpt_path, config_.checkpoint_write_attempts,
                                  config_.checkpoint_backoff_ms);
          !status.ok()) {
        // Graceful degradation: a run must not die because one
        // checkpoint write failed — the next interval tries again.
        HYGNN_LOG(Warning) << "checkpoint write failed (training "
                              "continues): " << status.ToString();
      }
    }
    if (config_.verbose && (epoch % config_.log_every == 0 ||
                            epoch + 1 == config_.epochs)) {
      HYGNN_LOG(Info) << "epoch " << epoch << " loss " << last_loss;
    }
  }
  return last_loss;
}

EvalResult HyGnnTrainer::Evaluate(
    const HypergraphContext& context,
    const std::vector<data::LabeledPair>& pairs) const {
  const std::vector<float> scores =
      model_->PredictProbabilities(context, pairs);
  return EvaluateScores(scores, LabelsOf(pairs));
}

}  // namespace hygnn::model
