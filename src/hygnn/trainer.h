#ifndef HYGNN_HYGNN_TRAINER_H_
#define HYGNN_HYGNN_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "data/drug.h"
#include "hygnn/model.h"
#include "metrics/metrics.h"

namespace hygnn::model {

/// Training hyperparameters. The paper trains 600 epochs with Adam at
/// lr 0.01; the scaled-down default converges in far fewer epochs on the
/// synthetic corpus.
struct TrainConfig {
  int32_t epochs = 120;
  float learning_rate = 0.01f;
  float grad_clip = 5.0f;
  /// L2 weight decay inside Adam; curbs the dot decoder's tendency to
  /// grow embedding magnitudes without bound.
  float weight_decay = 0.0f;
  /// Pairs per optimization step. <= 0 trains full-batch (the paper's
  /// regime); positive values shuffle and chunk the training pairs,
  /// re-running the encoder per chunk — useful when the pair set is too
  /// large for one graph.
  int32_t batch_size = 0;
  /// When > 0, hold out this fraction of the training pairs as a
  /// validation fold and stop once validation loss has not improved for
  /// `patience` consecutive epochs.
  double validation_fraction = 0.0;
  int32_t patience = 20;
  bool verbose = false;
  int32_t log_every = 20;
  uint64_t seed = 7;
  /// Runs training under tensor::NumericsGuard: the first op to produce
  /// a NaN/Inf is reported with a producer trace and training stops
  /// before the bad step corrupts the weights. Also enabled by the
  /// HYGNN_NUMERICS_GUARD=1 environment variable (see core::EnvFlag).
  bool numerics_guard = false;
  /// CPU threads for the tensor kernels (core::SetNumThreads). 0 keeps
  /// the current global setting (itself defaulting to HYGNN_NUM_THREADS
  /// or 1). Kernels are bit-deterministic, so the trained weights are
  /// identical at any thread count.
  int32_t threads = 0;
  /// Runs the tape executor's elementwise fusion pass (DESIGN.md §12):
  /// adjacent single-consumer elementwise ops execute as one fused
  /// kernel invocation, forward and backward. Fused and unfused runs
  /// are bit-identical, so this is purely a performance switch. Can be
  /// vetoed globally with HYGNN_FUSE=0 (see core::EnvFlag).
  bool fuse = true;
  /// When non-empty, TryFit durably writes a TrainCheckpoint into this
  /// directory every `checkpoint_every` epochs (and creates the
  /// directory if needed). A failed checkpoint write is logged and
  /// training continues — losing a checkpoint must not kill a run.
  std::string checkpoint_dir;
  int32_t checkpoint_every = 1;
  /// Resume from the checkpoint in `checkpoint_dir` if one exists. The
  /// continuation is bit-identical to a run that never stopped: weights,
  /// Adam moments, RNG stream, and early-stop counters are all restored.
  /// A missing checkpoint starts fresh (so restart loops can always pass
  /// the flag); a corrupt one is a typed error, never a silent restart.
  bool resume = false;
  /// Retry policy for transient checkpoint-write failures (e.g. a
  /// briefly full disk): attempts with exponential backoff from
  /// `checkpoint_backoff_ms`.
  int32_t checkpoint_write_attempts = 3;
  int32_t checkpoint_backoff_ms = 50;
  /// When non-empty, TryFit records training observability — per-epoch
  /// wall time, batch-weighted mean loss, validation loss, gradient
  /// norm, checkpoint write latency/failures, and per-op kernel times —
  /// and flushes it to this path as an atomic, checksummed JSONL file
  /// (see src/obs and DESIGN.md §10). Also settable via the
  /// HYGNN_METRICS environment variable (the config wins when both are
  /// set). Metrics never perturb training: a run with metrics on is
  /// bit-identical in weights and losses to the same run with them off.
  std::string metrics_path;
};

/// F1 / ROC-AUC / PR-AUC triple — the paper's reporting columns. The
/// definition lives in metrics::BinaryEval so every scoring path
/// (trainer, baselines, serving) reports through the same computation.
using EvalResult = metrics::BinaryEval;

/// Computes the paper's three metrics from scores and labels.
/// Equivalent to metrics::EvaluateBinary; kept for callers written
/// against the trainer API.
EvalResult EvaluateScores(const std::vector<float>& scores,
                          const std::vector<float>& labels);

/// Extracts labels from a labeled-pair list.
std::vector<float> LabelsOf(const std::vector<data::LabeledPair>& pairs);

/// Full-batch trainer for HyGnnModel: each epoch runs the encoder over
/// the whole hypergraph, scores all training pairs, and applies one Adam
/// step of the fused BCE-with-logits loss (eq. 12).
class HyGnnTrainer {
 public:
  /// `model` must outlive the trainer.
  HyGnnTrainer(HyGnnModel* model, const TrainConfig& config);

  /// Trains in place; returns the final training loss. Checkpoint
  /// configuration errors (corrupt checkpoint, unwritable directory)
  /// are fatal here — use TryFit to handle them.
  float Fit(const HypergraphContext& context,
            const std::vector<data::LabeledPair>& train_pairs);

  /// Fit with typed error reporting: resuming from a corrupt or
  /// mismatched checkpoint, or failing to create the checkpoint
  /// directory, returns a Status instead of aborting.
  core::Result<float> TryFit(const HypergraphContext& context,
                             const std::vector<data::LabeledPair>& train_pairs);

  /// Scores `pairs` and computes F1/ROC-AUC/PR-AUC against their labels.
  EvalResult Evaluate(const HypergraphContext& context,
                      const std::vector<data::LabeledPair>& pairs) const;

  /// Batch-weighted mean training loss of every epoch of the last
  /// Fit() call, in order (for full-batch training this is simply the
  /// epoch's loss). Deterministic given the seed (and independent of
  /// the thread count), which the determinism tests rely on.
  const std::vector<float>& epoch_losses() const { return epoch_losses_; }

  /// Loss of the final batch of the last epoch Fit() ran. This is the
  /// quantity epoch_losses() used to (incorrectly) record per epoch;
  /// kept for callers that want the raw last-step loss.
  float last_batch_loss() const { return last_batch_loss_; }

  /// Validation loss of every epoch of the last Fit() call (empty when
  /// no validation fold was configured).
  const std::vector<float>& val_losses() const { return val_losses_; }

  /// Epoch index with the best (lowest) validation loss, or -1 when no
  /// validation fold was configured or no epoch ran.
  int32_t best_epoch() const { return best_epoch_; }

  /// True when the last Fit() stopped early on validation patience. In
  /// that case the model holds the best-epoch weights, not the weights
  /// of the (worse) final epochs — see the restore logic in TryFit.
  bool early_stopped() const { return early_stopped_; }

 private:
  HyGnnModel* model_;
  TrainConfig config_;
  std::vector<float> epoch_losses_;
  std::vector<float> val_losses_;
  float last_batch_loss_ = 0.0f;
  int32_t best_epoch_ = -1;
  bool early_stopped_ = false;
};

}  // namespace hygnn::model

#endif  // HYGNN_HYGNN_TRAINER_H_
