#include "hygnn/scorer.h"

#include <cmath>

#include "core/logging.h"

namespace hygnn::model {

float StableSigmoid(float z) {
  return z >= 0.0f ? 1.0f / (1.0f + std::exp(-z))
                   : std::exp(z) / (1.0f + std::exp(z));
}

std::vector<float> SigmoidAll(const tensor::Tensor& logits) {
  HYGNN_CHECK(logits.defined());
  HYGNN_CHECK_EQ(logits.cols(), 1);
  std::vector<float> probabilities(static_cast<size_t>(logits.rows()));
  for (int64_t i = 0; i < logits.rows(); ++i) {
    probabilities[static_cast<size_t>(i)] = StableSigmoid(logits.data()[i]);
  }
  return probabilities;
}

ContextScorer::ContextScorer(const HyGnnModel* model,
                             const HypergraphContext* context)
    : model_(model), context_(context) {
  HYGNN_CHECK(model != nullptr);
  HYGNN_CHECK(context != nullptr);
}

std::vector<float> ContextScorer::Score(
    std::span<const data::LabeledPair> pairs) const {
  if (pairs.empty()) return {};
  tensor::InferenceModeScope inference;
  tensor::Tensor embeddings =
      model_->EmbedDrugs(*context_, /*training=*/false, nullptr);
  const std::vector<data::LabeledPair> batch(pairs.begin(), pairs.end());
  tensor::Tensor logits =
      model_->ScorePairs(embeddings, batch, /*training=*/false, nullptr);
  return SigmoidAll(logits);
}

metrics::BinaryEval EvaluateScorer(
    const Scorer& scorer, const std::vector<data::LabeledPair>& pairs) {
  HYGNN_CHECK_EQ(scorer.score_width(), 1);
  std::vector<float> labels;
  labels.reserve(pairs.size());
  for (const auto& pair : pairs) labels.push_back(pair.label);
  return metrics::EvaluateBinary(scorer.Score(pairs), labels);
}

}  // namespace hygnn::model
