#ifndef HYGNN_HYGNN_ENCODER_H_
#define HYGNN_HYGNN_ENCODER_H_

#include <memory>
#include <vector>

#include "core/rng.h"
#include "graph/hypergraph.h"
#include "nn/module.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace hygnn::model {

/// Static tensors derived from a drug hypergraph, shared by every
/// forward pass: the COO incidence pairs (the rows the two attention
/// softmaxes run over) and the sparse edge-feature matrix H^T (each
/// drug's binary substructure-membership row, the encoder input F).
struct HypergraphContext {
  std::vector<int32_t> pair_nodes;  // per incidence: substructure id
  std::vector<int32_t> pair_edges;  // per incidence: drug id
  int32_t num_nodes = 0;
  int32_t num_edges = 0;
  /// [num_edges, num_nodes] binary CSR — row j is drug j's substructure
  /// indicator (the paper's F = H^T input features).
  std::shared_ptr<const tensor::CsrMatrix> edge_features;

  /// Builds the context from a hypergraph.
  static HypergraphContext FromHypergraph(const graph::Hypergraph& graph);
};

/// Attention weights captured from the last forward pass (detached from
/// autograd). Entry i corresponds to incidence pair i of the context.
struct AttentionSnapshot {
  /// Hyperedge-level attention Y_ij (eq. 5): weight of hyperedge
  /// pair_edges[i] in the representation of node pair_nodes[i].
  std::vector<float> hyperedge_level;
  /// Node-level attention X_ji (eq. 8): weight of node pair_nodes[i] in
  /// the representation of hyperedge pair_edges[i].
  std::vector<float> node_level;
};

/// Configuration of one HyGNN encoder layer.
struct EncoderConfig {
  int64_t hidden_dim = 64;  // d_hid of W_q projection
  int64_t output_dim = 64;  // d' of W_p projection (drug embedding size)
  float leaky_slope = 0.2f;
  float dropout = 0.0f;
  /// When false, both aggregation levels use uniform (mean) weights
  /// instead of learned attention — the ablation that isolates the
  /// paper's two-level attention contribution.
  bool use_attention = true;
};

/// The paper's novel *hypergraph edge encoder* (§III-C1): one layer of
/// two stacked attentions producing hyperedge (drug) embeddings.
///
///   hyperedge-level (eqs. 4-6): node repr p_i aggregates the projected
///     features W_q q_j of its incident hyperedges, weighted by
///     Y_ij = softmax_j( g1 . LeakyReLU(W_q q_j) ) over e_j in E_i;
///   node-level (eqs. 7-9): hyperedge repr q_j aggregates the projected
///     node features W_p p_i of its members, weighted by
///     X_ji = softmax_i( g2 . LeakyReLU(W_p p_i || W_q q_j) ).
///
/// Both softmaxes are segment-softmaxes over the incidence pairs, which
/// is the memory-efficient formulation: nothing larger than
/// O(nnz(H) * dim) is ever materialized.
class HypergraphEdgeEncoder : public nn::Module {
 public:
  /// `input_dim` is the column count of the edge-feature matrix
  /// (= num_nodes when features are H^T).
  HypergraphEdgeEncoder(int64_t input_dim, const EncoderConfig& config,
                        core::Rng* rng);

  /// Returns drug (hyperedge) embeddings [num_edges, output_dim] from
  /// the context's sparse H^T edge features (first-layer form of
  /// eq. 1). When `attention` is non-null, the detached attention
  /// coefficients of this pass are stored there. `rng` is needed only
  /// when dropout is enabled and `training` is true.
  tensor::Tensor Forward(const HypergraphContext& context, bool training,
                         core::Rng* rng,
                         AttentionSnapshot* attention = nullptr) const;

  /// Same layer applied to dense edge features [num_edges, input_dim]
  /// — the l > 1 form of eq. 1, where the previous layer's hyperedge
  /// embeddings are the new F^l.
  tensor::Tensor ForwardDense(const HypergraphContext& context,
                              const tensor::Tensor& edge_features,
                              bool training, core::Rng* rng,
                              AttentionSnapshot* attention = nullptr) const;

  std::vector<tensor::Tensor> Parameters() const override;

  const EncoderConfig& config() const { return config_; }

  /// Weight accessors for inference paths that mirror the forward pass
  /// outside autograd (serve::EmbeddingStore's incremental encoder).
  const tensor::Tensor& w_q() const { return w_q_; }
  const tensor::Tensor& g1() const { return g1_; }
  const tensor::Tensor& w_p() const { return w_p_; }
  const tensor::Tensor& g2() const { return g2_; }

 private:
  /// Shared body: `q_proj` is the projected edge feature W_q F^l.
  tensor::Tensor ForwardFromProjection(
      const HypergraphContext& context, tensor::Tensor q_proj,
      bool training, core::Rng* rng, AttentionSnapshot* attention) const;

  EncoderConfig config_;
  tensor::Tensor w_q_;  // [input_dim, hidden_dim]
  tensor::Tensor g1_;   // [hidden_dim, 1]
  tensor::Tensor w_p_;  // [hidden_dim, output_dim]
  tensor::Tensor g2_;   // [output_dim + hidden_dim, 1]
};

/// A stack of HyGNN encoder layers (eq. 1 applied `num_layers` times).
/// The paper's model is a single layer; deeper stacks are provided for
/// the depth ablation.
class StackedEncoder : public nn::Module {
 public:
  StackedEncoder(int64_t input_dim, const EncoderConfig& config,
                 int32_t num_layers, core::Rng* rng);

  /// Runs all layers; `attention`, when given, receives the snapshot of
  /// the LAST layer (the one producing the final drug embeddings).
  tensor::Tensor Forward(const HypergraphContext& context, bool training,
                         core::Rng* rng,
                         AttentionSnapshot* attention = nullptr) const;

  std::vector<tensor::Tensor> Parameters() const override;

  int32_t num_layers() const {
    return static_cast<int32_t>(layers_.size());
  }

  /// Layer `i` of the stack, 0-based.
  const HypergraphEdgeEncoder& layer(int32_t i) const {
    return *layers_[static_cast<size_t>(i)];
  }

 private:
  std::vector<std::unique_ptr<HypergraphEdgeEncoder>> layers_;
};

}  // namespace hygnn::model

#endif  // HYGNN_HYGNN_ENCODER_H_
