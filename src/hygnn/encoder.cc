#include "hygnn/encoder.h"

#include "core/logging.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace hygnn::model {

HypergraphContext HypergraphContext::FromHypergraph(
    const graph::Hypergraph& graph) {
  HypergraphContext context;
  context.pair_nodes = graph.pair_nodes();
  context.pair_edges = graph.pair_edges();
  context.num_nodes = graph.num_nodes();
  context.num_edges = graph.num_edges();
  std::vector<float> ones(context.pair_nodes.size(), 1.0f);
  context.edge_features = tensor::CsrMatrix::FromCoo(
      graph.num_edges(), graph.num_nodes(), context.pair_edges,
      context.pair_nodes, ones);
  return context;
}

HypergraphEdgeEncoder::HypergraphEdgeEncoder(int64_t input_dim,
                                             const EncoderConfig& config,
                                             core::Rng* rng)
    : config_(config),
      w_q_(tensor::XavierUniform(input_dim, config.hidden_dim, rng)),
      g1_(tensor::XavierUniform(config.hidden_dim, 1, rng)),
      w_p_(tensor::XavierUniform(config.hidden_dim, config.output_dim, rng)),
      g2_(tensor::XavierUniform(config.output_dim + config.hidden_dim, 1,
                                rng)) {}

tensor::Tensor HypergraphEdgeEncoder::Forward(
    const HypergraphContext& context, bool training, core::Rng* rng,
    AttentionSnapshot* attention) const {
  HYGNN_CHECK(context.edge_features != nullptr);
  HYGNN_CHECK_EQ(context.edge_features->cols(), w_q_.rows());
  // Projected hyperedge features W_q q_j  [E, hidden].
  return ForwardFromProjection(context,
                               tensor::SpMM(context.edge_features, w_q_),
                               training, rng, attention);
}

tensor::Tensor HypergraphEdgeEncoder::ForwardDense(
    const HypergraphContext& context, const tensor::Tensor& edge_features,
    bool training, core::Rng* rng, AttentionSnapshot* attention) const {
  HYGNN_CHECK(edge_features.defined());
  HYGNN_CHECK_EQ(edge_features.rows(), context.num_edges);
  HYGNN_CHECK_EQ(edge_features.cols(), w_q_.rows());
  return ForwardFromProjection(context,
                               tensor::MatMul(edge_features, w_q_),
                               training, rng, attention);
}

tensor::Tensor HypergraphEdgeEncoder::ForwardFromProjection(
    const HypergraphContext& context, tensor::Tensor q_proj, bool training,
    core::Rng* rng, AttentionSnapshot* attention) const {
  if (config_.dropout > 0.0f) {
    q_proj = tensor::Dropout(q_proj, config_.dropout, training, rng);
  }

  // ----- Hyperedge-level attention (eqs. 4-6) -----
  // e_j = LeakyReLU(W_q q_j); score_j = g1 . e_j, broadcast to pairs.
  // With attention disabled the scores are constant, so the segment
  // softmax degenerates to uniform (mean) weights.
  tensor::Tensor y;
  if (config_.use_attention) {
    tensor::Tensor e_feat = tensor::LeakyRelu(q_proj, config_.leaky_slope);
    tensor::Tensor edge_scores = tensor::MatMul(e_feat, g1_);  // [E, 1]
    tensor::Tensor pair_scores_edge =
        tensor::IndexSelectRows(edge_scores, context.pair_edges);  // [P, 1]
    // Y_ij: softmax over the hyperedges incident to each node v_i.
    y = tensor::SegmentSoftmax(pair_scores_edge, context.pair_nodes,
                               context.num_nodes);
  } else {
    tensor::Tensor zeros = tensor::Tensor::Zeros(
        static_cast<int64_t>(context.pair_nodes.size()), 1);
    y = tensor::SegmentSoftmax(zeros, context.pair_nodes,
                               context.num_nodes);
  }
  // p_i = LeakyReLU( sum_j Y_ij W_q q_j )  [V, hidden].
  tensor::Tensor edge_messages =
      tensor::IndexSelectRows(q_proj, context.pair_edges);  // [P, hidden]
  tensor::Tensor p = tensor::LeakyRelu(
      tensor::SegmentSum(tensor::MulColumnBroadcast(edge_messages, y),
                         context.pair_nodes, context.num_nodes),
      config_.leaky_slope);

  // ----- Node-level attention (eqs. 7-9) -----
  // W_p p_i  [V, out]; per-pair v_i = LeakyReLU(W_p p_i || W_q q_j).
  tensor::Tensor p_proj = tensor::MatMul(p, w_p_);
  tensor::Tensor pair_node_feat =
      tensor::IndexSelectRows(p_proj, context.pair_nodes);  // [P, out]
  tensor::Tensor pair_edge_feat =
      tensor::IndexSelectRows(q_proj, context.pair_edges);  // [P, hidden]
  tensor::Tensor x;
  if (config_.use_attention) {
    tensor::Tensor v_feat = tensor::LeakyRelu(
        tensor::ConcatCols(pair_node_feat, pair_edge_feat),
        config_.leaky_slope);
    tensor::Tensor pair_scores_node =
        tensor::MatMul(v_feat, g2_);  // [P, 1]
    // X_ji: softmax over the member nodes of each hyperedge e_j.
    x = tensor::SegmentSoftmax(pair_scores_node, context.pair_edges,
                               context.num_edges);
  } else {
    tensor::Tensor zeros = tensor::Tensor::Zeros(
        static_cast<int64_t>(context.pair_nodes.size()), 1);
    x = tensor::SegmentSoftmax(zeros, context.pair_edges,
                               context.num_edges);
  }
  // q_j = LeakyReLU( sum_i X_ji W_p p_i )  [E, out].
  tensor::Tensor q_out = tensor::LeakyRelu(
      tensor::SegmentSum(tensor::MulColumnBroadcast(pair_node_feat, x),
                         context.pair_edges, context.num_edges),
      config_.leaky_slope);

  if (attention != nullptr) {
    attention->hyperedge_level.assign(y.data(), y.data() + y.size());
    attention->node_level.assign(x.data(), x.data() + x.size());
  }
  return q_out;
}

std::vector<tensor::Tensor> HypergraphEdgeEncoder::Parameters() const {
  return {w_q_, g1_, w_p_, g2_};
}

StackedEncoder::StackedEncoder(int64_t input_dim,
                               const EncoderConfig& config,
                               int32_t num_layers, core::Rng* rng) {
  HYGNN_CHECK_GE(num_layers, 1);
  layers_.push_back(
      std::make_unique<HypergraphEdgeEncoder>(input_dim, config, rng));
  for (int32_t layer = 1; layer < num_layers; ++layer) {
    // Deeper layers consume the previous layer's hyperedge embeddings.
    layers_.push_back(std::make_unique<HypergraphEdgeEncoder>(
        config.output_dim, config, rng));
  }
}

tensor::Tensor StackedEncoder::Forward(const HypergraphContext& context,
                                       bool training, core::Rng* rng,
                                       AttentionSnapshot* attention) const {
  AttentionSnapshot* last_only =
      layers_.size() == 1 ? attention : nullptr;
  tensor::Tensor q = layers_[0]->Forward(context, training, rng, last_only);
  for (size_t layer = 1; layer < layers_.size(); ++layer) {
    AttentionSnapshot* sink =
        layer + 1 == layers_.size() ? attention : nullptr;
    q = layers_[layer]->ForwardDense(context, q, training, rng, sink);
  }
  return q;
}

std::vector<tensor::Tensor> StackedEncoder::Parameters() const {
  std::vector<tensor::Tensor> parameters;
  for (const auto& layer : layers_) {
    auto params = layer->Parameters();
    parameters.insert(parameters.end(), params.begin(), params.end());
  }
  return parameters;
}

}  // namespace hygnn::model
