#ifndef HYGNN_HYGNN_CHECKPOINT_H_
#define HYGNN_HYGNN_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"

namespace hygnn::model {

/// Everything HyGnnTrainer needs to continue an interrupted run
/// bit-identically to one that never stopped: model weights, the full
/// Adam state (step count plus both moment vectors), the trainer RNG
/// stream, and the early-stopping bookkeeping.
///
/// On-disk format (all little-endian, written by core::WriteFileDurable
/// so the file carries a CRC-32 integrity footer and is committed via
/// temp + fsync + rename):
///
///   | section  | contents                                             |
///   |----------|------------------------------------------------------|
///   | header   | magic "HYGC", u32 format version (2)                 |
///   | progress | i32 next_epoch, f32 losses of completed epochs       |
///   | stopping | f32 best_val_loss, i32 epochs_since_improvement,     |
///   |          | f32 val losses, i32 best_epoch, per-parameter        |
///   |          | best-epoch weight vectors (possibly zero of them)    |
///   | rng      | 4 x u64 xoshiro words, u8 flag, f64 cached normal    |
///   | adam     | i64 step, then per-parameter m and v float vectors   |
///   | weights  | named tensor table (tensor/serialize "HYGT" section) |
struct TrainCheckpoint {
  /// First epoch index the resumed run should execute (= number of
  /// completed epochs).
  int32_t next_epoch = 0;
  /// Batch-weighted mean training loss of every completed epoch.
  std::vector<float> epoch_losses;
  /// Early-stopping state. best_val_loss is +inf when no validation
  /// fold is configured.
  float best_val_loss = 0.0f;
  int32_t epochs_since_improvement = 0;
  /// Validation loss of every completed epoch (empty without a fold).
  std::vector<float> val_losses;
  /// Epoch with the lowest validation loss so far; -1 when none.
  int32_t best_epoch = -1;
  /// Snapshot of the model weights at `best_epoch`, one flat vector per
  /// parameter in Parameters() order (empty when no epoch has improved
  /// yet). Restored on early stop so a resumed run that stops early
  /// evaluates with exactly the weights the uninterrupted run would.
  std::vector<std::vector<float>> best_weights;
  /// The trainer's RNG stream at the epoch boundary.
  core::Rng::State rng;
  /// Adam step count and both moment vectors.
  tensor::AdamState adam;
  /// Model weights in Parameters() order.
  std::vector<std::pair<std::string, tensor::Tensor>> weights;

  /// Durably writes the checkpoint (temp + fsync + rename + CRC footer),
  /// retrying transient failures up to `attempts` times with exponential
  /// backoff starting at `backoff_ms` (0 skips the sleeps). A crash at
  /// any point leaves the previous checkpoint or none — never a torn one.
  core::Status Save(const std::string& path, int attempts = 3,
                    int backoff_ms = 50) const;

  /// Reads and validates a Save file. Torn, truncated, or corrupt files
  /// are rejected with a typed Status — a resumed run never starts from
  /// half a checkpoint.
  static core::Result<TrainCheckpoint> Load(const std::string& path);
};

/// The checkpoint file HyGnnTrainer reads and writes inside a
/// checkpoint directory.
std::string CheckpointPath(const std::string& checkpoint_dir);

}  // namespace hygnn::model

#endif  // HYGNN_HYGNN_CHECKPOINT_H_
