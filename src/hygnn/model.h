#ifndef HYGNN_HYGNN_MODEL_H_
#define HYGNN_HYGNN_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "data/drug.h"
#include "hygnn/decoder.h"
#include "hygnn/encoder.h"
#include "nn/module.h"

namespace hygnn::chem {
class SubstructureVocabulary;
}  // namespace hygnn::chem

namespace hygnn::model {

/// Full HyGNN configuration (paper §IV-C: single-layer encoder with two
/// attention levels, LeakyReLU on the encoder side, ReLU inside the MLP
/// decoder, Adam at lr = 0.01).
struct HyGnnConfig {
  EncoderConfig encoder;
  /// Encoder depth (eq. 1 applied num_layers times). The paper uses 1.
  int32_t num_layers = 1;
  DecoderKind decoder = DecoderKind::kMlp;
  int64_t decoder_hidden_dim = 64;
  float decoder_dropout = 0.0f;
};

/// End-to-end HyGNN: hypergraph edge encoder + pairwise decoder.
class HyGnnModel : public nn::Module {
 public:
  /// `input_dim` is the encoder input width (= number of substructure
  /// nodes when using H^T features).
  HyGnnModel(int64_t input_dim, const HyGnnConfig& config, core::Rng* rng);

  /// Embeds every drug (hyperedge) in the context:
  /// [num_edges, output_dim].
  tensor::Tensor EmbedDrugs(const HypergraphContext& context, bool training,
                            core::Rng* rng,
                            AttentionSnapshot* attention = nullptr) const;

  /// Raw interaction logits for the given pairs (one row per pair),
  /// given precomputed drug embeddings.
  tensor::Tensor ScorePairs(const tensor::Tensor& drug_embeddings,
                            const std::vector<data::LabeledPair>& pairs,
                            bool training, core::Rng* rng) const;

  /// Convenience: encoder + decoder in one call.
  tensor::Tensor Forward(const HypergraphContext& context,
                         const std::vector<data::LabeledPair>& pairs,
                         bool training, core::Rng* rng) const;

  /// Sigmoid probabilities for pairs (inference mode, no autograd use).
  std::vector<float> PredictProbabilities(
      const HypergraphContext& context,
      const std::vector<data::LabeledPair>& pairs) const;

  std::vector<tensor::Tensor> Parameters() const override;

  /// Writes a self-describing serve::ModelBundle (config + vocabulary +
  /// weights) that Load can restore with no caller-supplied
  /// configuration. Implemented in src/serve/bundle.cc — callers must
  /// link hygnn_serve.
  core::Status Save(const std::string& path,
                    const chem::SubstructureVocabulary& vocabulary) const;

  /// Rebuilds a model from a Save file. When `vocabulary` is non-null
  /// it receives the bundled substructure vocabulary (needed to
  /// featurize new SMILES against the model). Implemented in
  /// src/serve/bundle.cc — callers must link hygnn_serve.
  static core::Result<HyGnnModel> Load(
      const std::string& path,
      chem::SubstructureVocabulary* vocabulary = nullptr);

  /// DEPRECATED: weights-only checkpoint with no config or vocabulary —
  /// the loader must already hold an identically-configured model.
  /// Prefer Save, which writes a self-describing bundle. Kept as a thin
  /// shim over the same tensor-table format.
  core::Status SaveWeights(const std::string& path) const;

  /// DEPRECATED: restores a SaveWeights file into this
  /// already-constructed model; fails with a Status naming both shapes
  /// on any mismatch. Prefer the static Load, which also restores the
  /// configuration.
  core::Status LoadWeights(const std::string& path);

  const HyGnnConfig& config() const { return config_; }
  const StackedEncoder& encoder() const { return encoder_; }
  const Decoder& decoder() const { return *decoder_; }
  /// Encoder input width the model was constructed with (= substructure
  /// vocabulary size when features are H^T).
  int64_t input_dim() const { return input_dim_; }

 private:
  int64_t input_dim_;
  HyGnnConfig config_;
  StackedEncoder encoder_;
  std::unique_ptr<Decoder> decoder_;
};

}  // namespace hygnn::model

#endif  // HYGNN_HYGNN_MODEL_H_
