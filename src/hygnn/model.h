#ifndef HYGNN_HYGNN_MODEL_H_
#define HYGNN_HYGNN_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "data/drug.h"
#include "hygnn/decoder.h"
#include "hygnn/encoder.h"
#include "nn/module.h"

namespace hygnn::model {

/// Full HyGNN configuration (paper §IV-C: single-layer encoder with two
/// attention levels, LeakyReLU on the encoder side, ReLU inside the MLP
/// decoder, Adam at lr = 0.01).
struct HyGnnConfig {
  EncoderConfig encoder;
  /// Encoder depth (eq. 1 applied num_layers times). The paper uses 1.
  int32_t num_layers = 1;
  DecoderKind decoder = DecoderKind::kMlp;
  int64_t decoder_hidden_dim = 64;
  float decoder_dropout = 0.0f;
};

/// End-to-end HyGNN: hypergraph edge encoder + pairwise decoder.
class HyGnnModel : public nn::Module {
 public:
  /// `input_dim` is the encoder input width (= number of substructure
  /// nodes when using H^T features).
  HyGnnModel(int64_t input_dim, const HyGnnConfig& config, core::Rng* rng);

  /// Embeds every drug (hyperedge) in the context:
  /// [num_edges, output_dim].
  tensor::Tensor EmbedDrugs(const HypergraphContext& context, bool training,
                            core::Rng* rng,
                            AttentionSnapshot* attention = nullptr) const;

  /// Raw interaction logits for the given pairs (one row per pair),
  /// given precomputed drug embeddings.
  tensor::Tensor ScorePairs(const tensor::Tensor& drug_embeddings,
                            const std::vector<data::LabeledPair>& pairs,
                            bool training, core::Rng* rng) const;

  /// Convenience: encoder + decoder in one call.
  tensor::Tensor Forward(const HypergraphContext& context,
                         const std::vector<data::LabeledPair>& pairs,
                         bool training, core::Rng* rng) const;

  /// Sigmoid probabilities for pairs (inference mode, no autograd use).
  std::vector<float> PredictProbabilities(
      const HypergraphContext& context,
      const std::vector<data::LabeledPair>& pairs) const;

  std::vector<tensor::Tensor> Parameters() const override;

  /// Checkpoints all trainable weights to a binary file.
  core::Status SaveWeights(const std::string& path) const;

  /// Restores weights from a SaveWeights file into this model. The
  /// model must have been constructed with the same configuration and
  /// input dimension.
  core::Status LoadWeights(const std::string& path);

  const HyGnnConfig& config() const { return config_; }
  const StackedEncoder& encoder() const { return encoder_; }

 private:
  HyGnnConfig config_;
  StackedEncoder encoder_;
  std::unique_ptr<Decoder> decoder_;
};

}  // namespace hygnn::model

#endif  // HYGNN_HYGNN_MODEL_H_
