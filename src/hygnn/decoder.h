#ifndef HYGNN_HYGNN_DECODER_H_
#define HYGNN_HYGNN_DECODER_H_

#include <memory>
#include <vector>

#include "core/rng.h"
#include "nn/mlp.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace hygnn::model {

/// Decoder interface (§III-C2): maps pairs of drug embeddings to a raw
/// interaction score (logit). The training loss and the evaluation
/// pipeline apply the sigmoid.
class Decoder : public nn::Module {
 public:
  /// `q_a`, `q_b` are [n, d'] embedding rows of the paired drugs;
  /// returns [n, 1] logits.
  virtual tensor::Tensor Score(const tensor::Tensor& q_a,
                               const tensor::Tensor& q_b, bool training,
                               core::Rng* rng) const = 0;
};

/// Dot-product decoder (eq. 10): gamma(q_x, q_y) = q_x . q_y.
/// Parameter-free.
class DotDecoder : public Decoder {
 public:
  tensor::Tensor Score(const tensor::Tensor& q_a, const tensor::Tensor& q_b,
                       bool training, core::Rng* rng) const override;

  std::vector<tensor::Tensor> Parameters() const override { return {}; }
};

/// MLP decoder (eq. 11): gamma(q_x, q_y) = W2 phi(W1 (q_x || q_y)) with
/// a ReLU phi, following the paper's predictor.
class MlpDecoder : public Decoder {
 public:
  MlpDecoder(int64_t embedding_dim, int64_t hidden_dim, core::Rng* rng,
             float dropout = 0.0f);

  tensor::Tensor Score(const tensor::Tensor& q_a, const tensor::Tensor& q_b,
                       bool training, core::Rng* rng) const override;

  std::vector<tensor::Tensor> Parameters() const override;

 private:
  nn::Mlp mlp_;
};

/// Decoder selector used by configs and CLI flags.
enum class DecoderKind { kDot, kMlp };

/// Builds a decoder of the requested kind.
std::unique_ptr<Decoder> MakeDecoder(DecoderKind kind, int64_t embedding_dim,
                                     int64_t hidden_dim, core::Rng* rng,
                                     float dropout = 0.0f);

}  // namespace hygnn::model

#endif  // HYGNN_HYGNN_DECODER_H_
