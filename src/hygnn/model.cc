#include "hygnn/model.h"

#include "core/logging.h"
#include "hygnn/scorer.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"

namespace hygnn::model {

HyGnnModel::HyGnnModel(int64_t input_dim, const HyGnnConfig& config,
                       core::Rng* rng)
    : input_dim_(input_dim),
      config_(config),
      encoder_(input_dim, config.encoder, config.num_layers, rng),
      decoder_(MakeDecoder(config.decoder, config.encoder.output_dim,
                           config.decoder_hidden_dim, rng,
                           config.decoder_dropout)) {}

tensor::Tensor HyGnnModel::EmbedDrugs(const HypergraphContext& context,
                                      bool training, core::Rng* rng,
                                      AttentionSnapshot* attention) const {
  return encoder_.Forward(context, training, rng, attention);
}

tensor::Tensor HyGnnModel::ScorePairs(
    const tensor::Tensor& drug_embeddings,
    const std::vector<data::LabeledPair>& pairs, bool training,
    core::Rng* rng) const {
  HYGNN_CHECK(!pairs.empty());
  std::vector<int32_t> left, right;
  left.reserve(pairs.size());
  right.reserve(pairs.size());
  for (const auto& pair : pairs) {
    left.push_back(pair.a);
    right.push_back(pair.b);
  }
  tensor::Tensor q_a = tensor::IndexSelectRows(drug_embeddings, left);
  tensor::Tensor q_b = tensor::IndexSelectRows(drug_embeddings, right);
  return decoder_->Score(q_a, q_b, training, rng);
}

tensor::Tensor HyGnnModel::Forward(const HypergraphContext& context,
                                   const std::vector<data::LabeledPair>& pairs,
                                   bool training, core::Rng* rng) const {
  tensor::Tensor embeddings = EmbedDrugs(context, training, rng);
  return ScorePairs(embeddings, pairs, training, rng);
}

std::vector<float> HyGnnModel::PredictProbabilities(
    const HypergraphContext& context,
    const std::vector<data::LabeledPair>& pairs) const {
  tensor::InferenceModeScope inference;
  tensor::Tensor logits =
      Forward(context, pairs, /*training=*/false, nullptr);
  return SigmoidAll(logits);
}

core::Status HyGnnModel::SaveWeights(const std::string& path) const {
  std::vector<std::pair<std::string, tensor::Tensor>> named;
  auto parameters = Parameters();
  for (size_t i = 0; i < parameters.size(); ++i) {
    named.emplace_back("param_" + std::to_string(i), parameters[i]);
  }
  return tensor::SaveTensors(named, path);
}

core::Status HyGnnModel::LoadWeights(const std::string& path) {
  auto loaded_or = tensor::LoadTensors(path);
  if (!loaded_or.ok()) return loaded_or.status();
  auto parameters = Parameters();
  return tensor::RestoreParameters(loaded_or.value(), &parameters);
}

std::vector<tensor::Tensor> HyGnnModel::Parameters() const {
  auto parameters = encoder_.Parameters();
  auto decoder_params = decoder_->Parameters();
  parameters.insert(parameters.end(), decoder_params.begin(),
                    decoder_params.end());
  return parameters;
}

}  // namespace hygnn::model
