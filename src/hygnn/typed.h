#ifndef HYGNN_HYGNN_TYPED_H_
#define HYGNN_HYGNN_TYPED_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/rng.h"
#include "data/drug.h"
#include "hygnn/encoder.h"
#include "metrics/metrics.h"
#include "nn/mlp.h"
#include "nn/module.h"

namespace hygnn::model {

/// A drug pair labeled with an interaction *type* in [0, num_types).
/// Extension of the paper toward multi-relational DDI prediction (the
/// setting of SumGNN / Decagon, both cited in §II): instead of "do they
/// interact?", predict *which* latent reaction fires.
struct TypedPair {
  int32_t a = 0;
  int32_t b = 0;
  int32_t type = 0;
};

/// HyGNN with a multi-class decoder: the same hypergraph edge encoder
/// followed by an MLP emitting one logit per interaction type.
class TypedHyGnnModel : public nn::Module {
 public:
  TypedHyGnnModel(int64_t input_dim, int32_t num_types,
                  const EncoderConfig& encoder_config,
                  int64_t decoder_hidden_dim, core::Rng* rng);

  /// Class logits [n_pairs, num_types].
  tensor::Tensor Forward(const HypergraphContext& context,
                         const std::vector<TypedPair>& pairs, bool training,
                         core::Rng* rng) const;

  /// Per-pair predicted type (argmax of the class distribution).
  std::vector<int32_t> PredictTypes(const HypergraphContext& context,
                                    const std::vector<TypedPair>& pairs)
      const;

  std::vector<tensor::Tensor> Parameters() const override;

  int32_t num_types() const { return num_types_; }

 private:
  int32_t num_types_;
  StackedEncoder encoder_;
  nn::Mlp head_;
};

/// Training configuration for the typed model.
struct TypedTrainConfig {
  int32_t epochs = 150;
  float learning_rate = 0.01f;
  float grad_clip = 5.0f;
  float weight_decay = 1e-4f;
  uint64_t seed = 7;
};

/// Multi-class evaluation: accuracy and macro-averaged F1. Defined in
/// metrics so the computation is shared with any other multi-class
/// consumer.
using TypedEvalResult = metrics::MultiClassEval;

/// Trains with softmax cross-entropy and evaluates typed predictions.
class TypedTrainer {
 public:
  TypedTrainer(TypedHyGnnModel* model, const TypedTrainConfig& config);

  float Fit(const HypergraphContext& context,
            const std::vector<TypedPair>& train_pairs);

  TypedEvalResult Evaluate(const HypergraphContext& context,
                           const std::vector<TypedPair>& pairs) const;

 private:
  TypedHyGnnModel* model_;
  TypedTrainConfig config_;
};

/// Computes accuracy and macro-F1 of predicted vs actual types.
TypedEvalResult EvaluateTyped(const std::vector<int32_t>& predicted,
                              const std::vector<int32_t>& actual,
                              int32_t num_types);

}  // namespace hygnn::model

#endif  // HYGNN_HYGNN_TYPED_H_
