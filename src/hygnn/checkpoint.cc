#include "hygnn/checkpoint.h"

#include <cstring>
#include <sstream>

#include "core/fs.h"
#include "tensor/serialize.h"

namespace hygnn::model {

using core::Result;
using core::Status;

namespace {

constexpr char kCheckpointMagic[4] = {'H', 'Y', 'G', 'C'};
// v2 added the stopping section's val losses, best_epoch, and the
// best-epoch weight snapshot (early-stop restore across resume).
constexpr uint32_t kCheckpointVersion = 2;

/// Largest per-parameter moment vector Load will believe; anything
/// bigger means a corrupt length field, not a model.
constexpr uint64_t kMaxMomentElements = 1ull << 32;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

void WriteFloatVector(std::ostream& out, const std::vector<float>& values) {
  WritePod(out, static_cast<uint64_t>(values.size()));
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(float)));
}

Status ReadFloatVector(std::istream& in, std::vector<float>* values,
                       const char* what) {
  uint64_t count = 0;
  if (!ReadPod(in, &count) || count > kMaxMomentElements) {
    return Status::IoError(std::string("corrupt checkpoint: bad ") + what +
                           " length");
  }
  values->resize(static_cast<size_t>(count));
  in.read(reinterpret_cast<char*>(values->data()),
          static_cast<std::streamsize>(values->size() * sizeof(float)));
  if (!in) {
    return Status::IoError(std::string("truncated checkpoint ") + what);
  }
  return Status::Ok();
}

}  // namespace

std::string CheckpointPath(const std::string& checkpoint_dir) {
  return checkpoint_dir + "/train.hygc";
}

Status TrainCheckpoint::Save(const std::string& path, int attempts,
                             int backoff_ms) const {
  std::ostringstream out;
  out.write(kCheckpointMagic, sizeof(kCheckpointMagic));
  WritePod(out, kCheckpointVersion);
  WritePod(out, next_epoch);
  WriteFloatVector(out, epoch_losses);
  WritePod(out, best_val_loss);
  WritePod(out, epochs_since_improvement);
  WriteFloatVector(out, val_losses);
  WritePod(out, best_epoch);
  WritePod(out, static_cast<uint64_t>(best_weights.size()));
  for (const auto& weights : best_weights) WriteFloatVector(out, weights);
  for (uint64_t word : rng.s) WritePod(out, word);
  WritePod(out, static_cast<uint8_t>(rng.has_cached_normal ? 1 : 0));
  WritePod(out, rng.cached_normal);
  WritePod(out, adam.step);
  WritePod(out, static_cast<uint64_t>(adam.m.size()));
  for (size_t i = 0; i < adam.m.size(); ++i) {
    WriteFloatVector(out, adam.m[i]);
    WriteFloatVector(out, i < adam.v.size() ? adam.v[i]
                                            : std::vector<float>{});
  }
  if (auto status = tensor::SaveTensorsToStream(weights, out);
      !status.ok()) {
    return Status(status.code(), status.message() + ": " + path);
  }
  return core::WriteFileDurableWithRetry(core::ActiveFileSystem(), path,
                                         out.str(), attempts, backoff_ms);
}

Result<TrainCheckpoint> TrainCheckpoint::Load(const std::string& path) {
  // ReadFileVerified already names the path in its errors.
  auto payload = core::ReadFileVerified(core::ActiveFileSystem(), path);
  if (!payload.ok()) return payload.status();
  std::istringstream in(std::move(payload).value());
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0) {
    return Status::IoError("not a HyGNN training checkpoint: " + path);
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version)) {
    return Status::IoError("truncated checkpoint header: " + path);
  }
  if (version != kCheckpointVersion) {
    return Status::FailedPrecondition(
        "checkpoint format version mismatch: file has version " +
        std::to_string(version) + ", this build reads version " +
        std::to_string(kCheckpointVersion) + ": " + path);
  }
  TrainCheckpoint ckpt;
  if (!ReadPod(in, &ckpt.next_epoch) || ckpt.next_epoch < 0) {
    return Status::IoError("corrupt checkpoint epoch index: " + path);
  }
  if (auto status = ReadFloatVector(in, &ckpt.epoch_losses, "loss history");
      !status.ok()) {
    return Status(status.code(), status.message() + ": " + path);
  }
  if (!ReadPod(in, &ckpt.best_val_loss) ||
      !ReadPod(in, &ckpt.epochs_since_improvement)) {
    return Status::IoError("truncated checkpoint stopping state: " + path);
  }
  if (auto status = ReadFloatVector(in, &ckpt.val_losses, "val loss history");
      !status.ok()) {
    return Status(status.code(), status.message() + ": " + path);
  }
  uint64_t num_best = 0;
  if (!ReadPod(in, &ckpt.best_epoch) || !ReadPod(in, &num_best) ||
      ckpt.best_epoch < -1 || num_best > (1u << 20)) {
    return Status::IoError("corrupt checkpoint best-weights header: " + path);
  }
  ckpt.best_weights.resize(static_cast<size_t>(num_best));
  for (uint64_t i = 0; i < num_best; ++i) {
    if (auto status = ReadFloatVector(in, &ckpt.best_weights[i],
                                      "best-epoch weights");
        !status.ok()) {
      return Status(status.code(), status.message() + ": " + path);
    }
  }
  uint8_t has_cached_normal = 0;
  for (uint64_t& word : ckpt.rng.s) {
    if (!ReadPod(in, &word)) {
      return Status::IoError("truncated checkpoint RNG state: " + path);
    }
  }
  if (!ReadPod(in, &has_cached_normal) ||
      !ReadPod(in, &ckpt.rng.cached_normal)) {
    return Status::IoError("truncated checkpoint RNG state: " + path);
  }
  ckpt.rng.has_cached_normal = has_cached_normal != 0;
  uint64_t num_params = 0;
  if (!ReadPod(in, &ckpt.adam.step) || !ReadPod(in, &num_params) ||
      ckpt.adam.step < 0 || num_params > (1u << 20)) {
    return Status::IoError("corrupt checkpoint optimizer header: " + path);
  }
  ckpt.adam.m.resize(static_cast<size_t>(num_params));
  ckpt.adam.v.resize(static_cast<size_t>(num_params));
  for (uint64_t i = 0; i < num_params; ++i) {
    if (auto status = ReadFloatVector(in, &ckpt.adam.m[i], "Adam m moment");
        !status.ok()) {
      return Status(status.code(), status.message() + ": " + path);
    }
    if (auto status = ReadFloatVector(in, &ckpt.adam.v[i], "Adam v moment");
        !status.ok()) {
      return Status(status.code(), status.message() + ": " + path);
    }
  }
  auto weights = tensor::LoadTensorsFromStream(in);
  if (!weights.ok()) {
    return Status(weights.status().code(),
                  weights.status().message() + ": " + path);
  }
  ckpt.weights = std::move(weights).value();
  return ckpt;
}

}  // namespace hygnn::model
