#include "hygnn/decoder.h"

#include "core/logging.h"
#include "tensor/ops.h"

namespace hygnn::model {

tensor::Tensor DotDecoder::Score(const tensor::Tensor& q_a,
                                 const tensor::Tensor& q_b, bool /*training*/,
                                 core::Rng* /*rng*/) const {
  return tensor::RowwiseDot(q_a, q_b);
}

MlpDecoder::MlpDecoder(int64_t embedding_dim, int64_t hidden_dim,
                       core::Rng* rng, float dropout)
    : mlp_({2 * embedding_dim, hidden_dim, 1}, rng, dropout) {}

tensor::Tensor MlpDecoder::Score(const tensor::Tensor& q_a,
                                 const tensor::Tensor& q_b, bool training,
                                 core::Rng* rng) const {
  return mlp_.Forward(tensor::ConcatCols(q_a, q_b), training, rng);
}

std::vector<tensor::Tensor> MlpDecoder::Parameters() const {
  return mlp_.Parameters();
}

std::unique_ptr<Decoder> MakeDecoder(DecoderKind kind, int64_t embedding_dim,
                                     int64_t hidden_dim, core::Rng* rng,
                                     float dropout) {
  switch (kind) {
    case DecoderKind::kDot:
      return std::make_unique<DotDecoder>();
    case DecoderKind::kMlp:
      return std::make_unique<MlpDecoder>(embedding_dim, hidden_dim, rng,
                                          dropout);
  }
  HYGNN_CHECK(false) << "unknown decoder kind";
  return nullptr;
}

}  // namespace hygnn::model
