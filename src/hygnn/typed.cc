#include "hygnn/typed.h"

#include <algorithm>

#include "core/logging.h"
#include "tensor/loss.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace hygnn::model {

TypedHyGnnModel::TypedHyGnnModel(int64_t input_dim, int32_t num_types,
                                 const EncoderConfig& encoder_config,
                                 int64_t decoder_hidden_dim, core::Rng* rng)
    : num_types_(num_types),
      encoder_(input_dim, encoder_config, /*num_layers=*/1, rng),
      head_({2 * encoder_config.output_dim, decoder_hidden_dim, num_types},
            rng) {
  HYGNN_CHECK_GT(num_types, 1);
}

tensor::Tensor TypedHyGnnModel::Forward(const HypergraphContext& context,
                                        const std::vector<TypedPair>& pairs,
                                        bool training,
                                        core::Rng* rng) const {
  HYGNN_CHECK(!pairs.empty());
  tensor::Tensor embeddings = encoder_.Forward(context, training, rng);
  std::vector<int32_t> left, right;
  left.reserve(pairs.size());
  right.reserve(pairs.size());
  for (const auto& pair : pairs) {
    left.push_back(pair.a);
    right.push_back(pair.b);
  }
  tensor::Tensor features = tensor::ConcatCols(
      tensor::IndexSelectRows(embeddings, left),
      tensor::IndexSelectRows(embeddings, right));
  return head_.Forward(features, training, rng);
}

std::vector<int32_t> TypedHyGnnModel::PredictTypes(
    const HypergraphContext& context,
    const std::vector<TypedPair>& pairs) const {
  tensor::Tensor logits = Forward(context, pairs, false, nullptr);
  std::vector<int32_t> predictions(pairs.size());
  for (int64_t i = 0; i < logits.rows(); ++i) {
    int32_t best = 0;
    for (int64_t j = 1; j < logits.cols(); ++j) {
      if (logits.At(i, j) > logits.At(i, best)) {
        best = static_cast<int32_t>(j);
      }
    }
    predictions[static_cast<size_t>(i)] = best;
  }
  return predictions;
}

std::vector<tensor::Tensor> TypedHyGnnModel::Parameters() const {
  auto parameters = encoder_.Parameters();
  auto head_params = head_.Parameters();
  parameters.insert(parameters.end(), head_params.begin(),
                    head_params.end());
  return parameters;
}

TypedTrainer::TypedTrainer(TypedHyGnnModel* model,
                           const TypedTrainConfig& config)
    : model_(model), config_(config) {
  HYGNN_CHECK(model != nullptr);
}

float TypedTrainer::Fit(const HypergraphContext& context,
                        const std::vector<TypedPair>& train_pairs) {
  HYGNN_CHECK(!train_pairs.empty());
  core::Rng rng(config_.seed);
  tensor::Adam optimizer(model_->Parameters(), config_.learning_rate, 0.9f,
                         0.999f, 1e-8f, config_.weight_decay);
  std::vector<int32_t> labels;
  labels.reserve(train_pairs.size());
  for (const auto& pair : train_pairs) labels.push_back(pair.type);

  float last_loss = 0.0f;
  for (int32_t epoch = 0; epoch < config_.epochs; ++epoch) {
    optimizer.ZeroGrad();
    tensor::Tensor logits =
        model_->Forward(context, train_pairs, /*training=*/true, &rng);
    tensor::Tensor loss = tensor::SoftmaxCrossEntropyLoss(logits, labels);
    loss.Backward();
    if (config_.grad_clip > 0.0f) {
      optimizer.ClipGradNorm(config_.grad_clip);
    }
    optimizer.Step();
    last_loss = loss.item();
  }
  return last_loss;
}

TypedEvalResult TypedTrainer::Evaluate(
    const HypergraphContext& context,
    const std::vector<TypedPair>& pairs) const {
  auto predicted = model_->PredictTypes(context, pairs);
  std::vector<int32_t> actual;
  actual.reserve(pairs.size());
  for (const auto& pair : pairs) actual.push_back(pair.type);
  return EvaluateTyped(predicted, actual, model_->num_types());
}

TypedEvalResult EvaluateTyped(const std::vector<int32_t>& predicted,
                              const std::vector<int32_t>& actual,
                              int32_t num_types) {
  return metrics::EvaluateMultiClass(predicted, actual, num_types);
}

}  // namespace hygnn::model
