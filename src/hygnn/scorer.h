#ifndef HYGNN_HYGNN_SCORER_H_
#define HYGNN_HYGNN_SCORER_H_

#include <span>
#include <vector>

#include "data/drug.h"
#include "hygnn/model.h"
#include "metrics/metrics.h"
#include "tensor/tensor.h"

namespace hygnn::model {

/// Numerically stable logistic function: never exponentiates a positive
/// argument, so it cannot overflow for any finite logit.
float StableSigmoid(float z);

/// Applies StableSigmoid to every element of a logit column
/// [n, 1] -> n probabilities.
std::vector<float> SigmoidAll(const tensor::Tensor& logits);

/// Uniform pair-scoring interface. Every inference path — the HyGNN
/// model's cold forward, the serving engine's cached PairScorer, and
/// the baseline harness heads — implements this, so evaluation,
/// benchmarking, and screening code is written once against it.
///
/// Score returns a row-major [pairs.size(), score_width()] matrix as a
/// flat vector. Binary scorers have width 1 (interaction probability);
/// multi-class scorers emit one score per interaction type. Labels on
/// the input pairs are ignored — only (a, b) are read.
class Scorer {
 public:
  virtual ~Scorer() = default;

  virtual std::vector<float> Score(
      std::span<const data::LabeledPair> pairs) const = 0;

  /// Scores per pair; 1 unless overridden.
  virtual int64_t score_width() const { return 1; }
};

/// Cold-path scorer: runs the full HyGNN forward (encoder + decoder)
/// for every Score call. The reference every cached path is checked
/// against bit-for-bit. Both pointers must outlive the scorer.
class ContextScorer : public Scorer {
 public:
  ContextScorer(const HyGnnModel* model, const HypergraphContext* context);

  std::vector<float> Score(
      std::span<const data::LabeledPair> pairs) const override;

 private:
  const HyGnnModel* model_;
  const HypergraphContext* context_;
};

/// Binary-evaluates any scorer of width 1 against the pairs' labels
/// through the shared metrics::EvaluateBinary path.
metrics::BinaryEval EvaluateScorer(
    const Scorer& scorer, const std::vector<data::LabeledPair>& pairs);

}  // namespace hygnn::model

#endif  // HYGNN_HYGNN_SCORER_H_
