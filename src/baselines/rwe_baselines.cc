#include "baselines/baselines.h"
#include "baselines/pair_harness.h"
#include "core/logging.h"
#include "data/pairs.h"
#include "embedding/walk_embedding.h"
#include "graph/builders.h"

namespace hygnn::baselines {

model::EvalResult RunRweOnDdiGraph(const BaselineInputs& inputs,
                                   RweKind kind,
                                   const BaselineConfig& config) {
  core::Rng rng(inputs.seed ^ 0x5bd1e995);
  graph::Graph ddi_graph = graph::BuildDdiGraph(
      inputs.num_drugs, data::PositivePairs(inputs.train));

  embedding::WalkEmbeddingConfig walk_config;
  walk_config.walk.walk_length = config.walk_length;
  walk_config.walk.num_walks_per_node = config.num_walks_per_node;
  walk_config.walk.p = config.node2vec_p;
  walk_config.walk.q = config.node2vec_q;
  walk_config.sgns.dimension = config.embedding_dim;
  walk_config.sgns.window_size = config.sgns_window;
  walk_config.sgns.epochs = config.sgns_epochs;

  std::vector<std::vector<float>> embeddings =
      kind == RweKind::kDeepWalk
          ? embedding::DeepWalkEmbeddings(ddi_graph, walk_config, &rng)
          : embedding::Node2VecEmbeddings(ddi_graph, walk_config, &rng);

  // Frozen embeddings: only the MLP pair head trains.
  tensor::Tensor embedding_tensor = EmbeddingsToTensor(embeddings);
  auto embed_fn = [embedding_tensor](bool /*training*/,
                                     core::Rng* /*rng*/) {
    return embedding_tensor;
  };
  PairModelHarness harness(embed_fn, /*embed_params=*/{},
                           config.embedding_dim, config, rng.Next());
  return harness.FitAndEvaluate(inputs.train, inputs.test);
}

std::string RweKindName(RweKind kind) {
  switch (kind) {
    case RweKind::kDeepWalk:
      return "DeepWalk";
    case RweKind::kNode2Vec:
      return "Node2Vec";
  }
  return "?";
}

}  // namespace hygnn::baselines
