#include <algorithm>
#include <vector>

#include "baselines/baselines.h"
#include "chem/fingerprint.h"
#include "core/logging.h"

namespace hygnn::baselines {

model::EvalResult RunMolecularSimilarity(const BaselineInputs& inputs,
                                         const BaselineConfig& config) {
  HYGNN_CHECK(inputs.drugs != nullptr)
      << "molecular-similarity baseline needs DrugRecords (SMILES)";
  const auto& drugs = *inputs.drugs;

  chem::FingerprintConfig fp_config;
  fp_config.radius = config.fingerprint_radius;
  fp_config.num_bits = config.fingerprint_bits;
  std::vector<ml::BitVector> fingerprints;
  fingerprints.reserve(drugs.size());
  for (const auto& drug : drugs) {
    auto fp_or = chem::MorganFingerprintFromSmiles(drug.smiles, fp_config);
    HYGNN_CHECK(fp_or.ok()) << fp_or.status().ToString();
    fingerprints.push_back(std::move(fp_or).value());
  }

  // Known training partners per drug.
  std::vector<std::vector<int32_t>> partners(drugs.size());
  for (const auto& pair : inputs.train) {
    if (pair.label > 0.5f) {
      partners[static_cast<size_t>(pair.a)].push_back(pair.b);
      partners[static_cast<size_t>(pair.b)].push_back(pair.a);
    }
  }

  // Vilar et al.: drug b likely interacts with a if b is structurally
  // similar to a known interactor of a (and symmetrically).
  auto side_score = [&](int32_t anchor, int32_t candidate) {
    double best = 0.0;
    for (int32_t partner : partners[static_cast<size_t>(anchor)]) {
      if (partner == candidate) continue;  // train edges exclude test pair
      best = std::max(best, chem::TanimotoSimilarity(
                                fingerprints[static_cast<size_t>(candidate)],
                                fingerprints[static_cast<size_t>(partner)]));
    }
    return best;
  };
  std::vector<float> scores;
  scores.reserve(inputs.test.size());
  for (const auto& pair : inputs.test) {
    scores.push_back(static_cast<float>(
        std::max(side_score(pair.a, pair.b), side_score(pair.b, pair.a))));
  }
  return model::EvaluateScores(scores, model::LabelsOf(inputs.test));
}

}  // namespace hygnn::baselines
