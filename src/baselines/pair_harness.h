#ifndef HYGNN_BASELINES_PAIR_HARNESS_H_
#define HYGNN_BASELINES_PAIR_HARNESS_H_

#include <functional>
#include <span>
#include <vector>

#include "baselines/baselines.h"
#include "core/rng.h"
#include "hygnn/scorer.h"
#include "nn/mlp.h"
#include "tensor/tensor.h"

namespace hygnn::baselines {

/// Gathers pair rows and concatenates: [n_pairs, 2 * dim].
tensor::Tensor ConcatPairRows(const tensor::Tensor& embeddings,
                              std::span<const data::LabeledPair> pairs);

/// Shared trainer for every "node embeddings + MLP pair head" baseline.
/// `embed_fn` recomputes the drug embedding matrix each epoch (so
/// GNN parameters, if trainable, receive gradients); `embed_params`
/// lists those trainable tensors (empty for frozen embeddings).
/// Implements model::Scorer, so baselines evaluate and benchmark
/// through the same path as the HyGNN model and the serving engine.
class PairModelHarness : public model::Scorer {
 public:
  PairModelHarness(std::function<tensor::Tensor(bool, core::Rng*)> embed_fn,
                   std::vector<tensor::Tensor> embed_params,
                   int64_t embedding_dim, const BaselineConfig& config,
                   uint64_t seed);

  /// End-to-end training with BCE-with-logits + Adam.
  void Fit(const std::vector<data::LabeledPair>& train_pairs);

  /// Sigmoid scores for `pairs` (inference mode).
  std::vector<float> Score(
      std::span<const data::LabeledPair> pairs) const override;

  /// Fit + Score + metric computation in one call.
  model::EvalResult FitAndEvaluate(
      const std::vector<data::LabeledPair>& train_pairs,
      const std::vector<data::LabeledPair>& test_pairs);

 private:
  std::function<tensor::Tensor(bool, core::Rng*)> embed_fn_;
  std::vector<tensor::Tensor> embed_params_;
  BaselineConfig config_;
  core::Rng rng_;
  nn::Mlp head_;
};

/// Builds a non-trainable tensor from row-major per-node embeddings.
tensor::Tensor EmbeddingsToTensor(
    const std::vector<std::vector<float>>& rows);

}  // namespace hygnn::baselines

#endif  // HYGNN_BASELINES_PAIR_HARNESS_H_
