#include "baselines/pair_harness.h"

#include "core/logging.h"
#include "tensor/loss.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace hygnn::baselines {

tensor::Tensor ConcatPairRows(const tensor::Tensor& embeddings,
                              std::span<const data::LabeledPair> pairs) {
  HYGNN_CHECK(!pairs.empty());
  std::vector<int32_t> left, right;
  left.reserve(pairs.size());
  right.reserve(pairs.size());
  for (const auto& pair : pairs) {
    left.push_back(pair.a);
    right.push_back(pair.b);
  }
  return tensor::ConcatCols(tensor::IndexSelectRows(embeddings, left),
                            tensor::IndexSelectRows(embeddings, right));
}

tensor::Tensor EmbeddingsToTensor(
    const std::vector<std::vector<float>>& rows) {
  HYGNN_CHECK(!rows.empty());
  const int64_t n = static_cast<int64_t>(rows.size());
  const int64_t d = static_cast<int64_t>(rows[0].size());
  std::vector<float> flat;
  flat.reserve(static_cast<size_t>(n * d));
  for (const auto& row : rows) {
    HYGNN_CHECK_EQ(static_cast<int64_t>(row.size()), d);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  return tensor::Tensor::FromVector(std::move(flat), n, d);
}

PairModelHarness::PairModelHarness(
    std::function<tensor::Tensor(bool, core::Rng*)> embed_fn,
    std::vector<tensor::Tensor> embed_params, int64_t embedding_dim,
    const BaselineConfig& config, uint64_t seed)
    : embed_fn_(std::move(embed_fn)),
      embed_params_(std::move(embed_params)),
      config_(config),
      rng_(seed),
      head_({2 * embedding_dim, config.classifier_hidden_dim, 1}, &rng_) {}

void PairModelHarness::Fit(const std::vector<data::LabeledPair>& train_pairs) {
  HYGNN_CHECK(!train_pairs.empty());
  std::vector<tensor::Tensor> parameters = head_.Parameters();
  parameters.insert(parameters.end(), embed_params_.begin(),
                    embed_params_.end());
  tensor::Adam optimizer(std::move(parameters), config_.learning_rate);
  std::vector<float> labels;
  labels.reserve(train_pairs.size());
  for (const auto& pair : train_pairs) labels.push_back(pair.label);

  for (int32_t epoch = 0; epoch < config_.epochs; ++epoch) {
    optimizer.ZeroGrad();
    tensor::Tensor embeddings = embed_fn_(/*training=*/true, &rng_);
    tensor::Tensor features = ConcatPairRows(embeddings, train_pairs);
    tensor::Tensor logits = head_.Forward(features, /*training=*/true,
                                          &rng_);
    tensor::Tensor loss = tensor::BceWithLogitsLoss(logits, labels);
    loss.Backward();
    optimizer.ClipGradNorm(5.0f);
    optimizer.Step();
  }
}

std::vector<float> PairModelHarness::Score(
    std::span<const data::LabeledPair> pairs) const {
  if (pairs.empty()) return {};
  tensor::InferenceModeScope inference;
  tensor::Tensor embeddings =
      embed_fn_(/*training=*/false, nullptr);
  tensor::Tensor features = ConcatPairRows(embeddings, pairs);
  tensor::Tensor logits = head_.Forward(features);
  return model::SigmoidAll(logits);
}

model::EvalResult PairModelHarness::FitAndEvaluate(
    const std::vector<data::LabeledPair>& train_pairs,
    const std::vector<data::LabeledPair>& test_pairs) {
  Fit(train_pairs);
  return model::EvaluateScorer(*this, test_pairs);
}

}  // namespace hygnn::baselines
