#ifndef HYGNN_BASELINES_BASELINES_H_
#define HYGNN_BASELINES_BASELINES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/drug.h"
#include "data/generator.h"
#include "hygnn/trainer.h"

namespace hygnn::baselines {

/// Everything a baseline needs for one train/evaluate run. The
/// substructure view is shared so every substructure-based method sees
/// identical featurization.
struct BaselineInputs {
  int32_t num_drugs = 0;
  /// Full drug records (SMILES) — required only by the
  /// molecular-similarity baseline.
  const std::vector<data::DrugRecord>* drugs = nullptr;
  /// ESPF substructure-id sets per drug (baseline groups 3 and 4 use
  /// ESPF per the paper).
  const std::vector<std::vector<int32_t>>* drug_substructures = nullptr;
  int32_t num_substructures = 0;
  std::vector<data::LabeledPair> train;
  std::vector<data::LabeledPair> test;
  uint64_t seed = 1;
};

/// GNN architecture selector for baseline groups 1 and 3.
enum class GnnKind { kGcn, kSage, kGat };

/// Random-walk embedding selector for baseline group 2.
enum class RweKind { kDeepWalk, kNode2Vec };

/// Classical classifier selector for baseline group 4.
enum class MlKind { kNn, kLr, kKnn };

/// Hyperparameters shared across baseline families. GNNs are 2-layer
/// (paper §IV-C); walk settings follow the paper (length 100, 10 walks,
/// window 5) but are scaled down by default for the synthetic corpus.
struct BaselineConfig {
  int64_t embedding_dim = 64;
  int64_t classifier_hidden_dim = 64;
  int32_t epochs = 120;
  float learning_rate = 0.01f;
  int32_t gat_heads = 2;
  /// SSG edge rule: minimum shared substructures (Bumgardner et al.).
  int64_t ssg_min_common = 2;
  /// Random-walk parameters (group 2).
  int32_t walk_length = 40;
  int32_t num_walks_per_node = 10;
  int32_t sgns_window = 5;
  int32_t sgns_epochs = 2;
  double node2vec_p = 1.0;
  double node2vec_q = 0.5;
  /// kNN neighbourhood size (group 4).
  int32_t knn_k = 5;
  /// Morgan fingerprint parameters (molecular-similarity baseline).
  int32_t fingerprint_radius = 2;
  int32_t fingerprint_bits = 1024;
};

/// Group 1 — GNN on the DDI graph: drugs are nodes, training-fold
/// positive DDIs are edges, node features are a learnable embedding
/// table; a 2-layer GNN plus an MLP pair head is trained end-to-end.
model::EvalResult RunGnnOnDdiGraph(const BaselineInputs& inputs,
                                   GnnKind kind,
                                   const BaselineConfig& config);

/// Group 2 — random-walk embedding on the DDI graph: DeepWalk/node2vec
/// embeddings (unsupervised, frozen) + MLP pair classifier.
model::EvalResult RunRweOnDdiGraph(const BaselineInputs& inputs,
                                   RweKind kind,
                                   const BaselineConfig& config);

/// Group 3 — GNN on the substructure-similarity graph: drugs sharing at
/// least `ssg_min_common` ESPF substructures are linked; node features
/// are the drugs' binary functional representations.
model::EvalResult RunGnnOnSsg(const BaselineInputs& inputs, GnnKind kind,
                              const BaselineConfig& config);

/// Group 4 — classical ML on functional representations: pair feature
/// is the bitwise AND of the two drugs' substructure indicator vectors
/// (CASTER-style), classified by NN / LR / kNN.
model::EvalResult RunMlOnFunctionalRepresentation(
    const BaselineInputs& inputs, MlKind kind, const BaselineConfig& config);

/// Extra baseline beyond the paper's Table I: Vilar et al.'s molecular
/// structure similarity (paper §II) — score(a, b) is the best Tanimoto
/// similarity between one drug's Morgan fingerprint and the other
/// drug's known training interactors.
model::EvalResult RunMolecularSimilarity(const BaselineInputs& inputs,
                                         const BaselineConfig& config);

/// Human-readable names matching the paper's Table I rows.
std::string GnnKindName(GnnKind kind);
std::string RweKindName(RweKind kind);
std::string MlKindName(MlKind kind);

}  // namespace hygnn::baselines

#endif  // HYGNN_BASELINES_BASELINES_H_
