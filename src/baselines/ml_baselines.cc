#include <cmath>

#include "baselines/baselines.h"
#include "core/logging.h"
#include "core/rng.h"
#include "ml/bitvector.h"
#include "ml/knn.h"
#include "ml/logistic_regression.h"
#include "nn/mlp.h"
#include "tensor/loss.h"
#include "tensor/optimizer.h"

namespace hygnn::baselines {

namespace {

/// Pair feature: bitwise AND of the two drugs' functional
/// representations (CASTER-style, paper baseline group 4).
std::vector<ml::BitVector> PairAndFeatures(
    const std::vector<ml::BitVector>& drug_frs,
    const std::vector<data::LabeledPair>& pairs) {
  std::vector<ml::BitVector> features;
  features.reserve(pairs.size());
  for (const auto& pair : pairs) {
    features.push_back(drug_frs[static_cast<size_t>(pair.a)].And(
        drug_frs[static_cast<size_t>(pair.b)]));
  }
  return features;
}

std::vector<std::vector<float>> ToDense(
    const std::vector<ml::BitVector>& features) {
  std::vector<std::vector<float>> dense;
  dense.reserve(features.size());
  for (const auto& feature : features) dense.push_back(feature.ToFloats());
  return dense;
}

model::EvalResult EvaluateWithScores(
    const std::vector<float>& scores,
    const std::vector<data::LabeledPair>& test) {
  return model::EvaluateScores(scores, model::LabelsOf(test));
}

/// Feed-forward NN on dense AND features, trained with BCE.
std::vector<float> RunNnClassifier(
    const std::vector<std::vector<float>>& train_features,
    const std::vector<float>& train_labels,
    const std::vector<std::vector<float>>& test_features,
    const BaselineConfig& config, core::Rng* rng) {
  const int64_t dim = static_cast<int64_t>(train_features[0].size());
  nn::Mlp mlp({dim, config.classifier_hidden_dim, 1}, rng);
  tensor::Adam optimizer(mlp.Parameters(), config.learning_rate);

  auto to_tensor = [](const std::vector<std::vector<float>>& rows) {
    std::vector<float> flat;
    flat.reserve(rows.size() * rows[0].size());
    for (const auto& row : rows) {
      flat.insert(flat.end(), row.begin(), row.end());
    }
    return tensor::Tensor::FromVector(
        std::move(flat), static_cast<int64_t>(rows.size()),
        static_cast<int64_t>(rows[0].size()));
  };
  tensor::Tensor train_x = to_tensor(train_features);
  for (int32_t epoch = 0; epoch < config.epochs; ++epoch) {
    optimizer.ZeroGrad();
    tensor::Tensor logits = mlp.Forward(train_x, /*training=*/true, rng);
    tensor::Tensor loss = tensor::BceWithLogitsLoss(logits, train_labels);
    loss.Backward();
    optimizer.Step();
  }
  tensor::Tensor test_logits = mlp.Forward(to_tensor(test_features));
  std::vector<float> scores(static_cast<size_t>(test_logits.rows()));
  for (int64_t i = 0; i < test_logits.rows(); ++i) {
    const float z = test_logits.data()[i];
    scores[static_cast<size_t>(i)] =
        z >= 0.0f ? 1.0f / (1.0f + std::exp(-z))
                  : std::exp(z) / (1.0f + std::exp(z));
  }
  return scores;
}

}  // namespace

model::EvalResult RunMlOnFunctionalRepresentation(
    const BaselineInputs& inputs, MlKind kind, const BaselineConfig& config) {
  HYGNN_CHECK(inputs.drug_substructures != nullptr);
  core::Rng rng(inputs.seed ^ 0xc2b2ae35);
  auto drug_frs = ml::BuildFunctionalRepresentations(
      *inputs.drug_substructures, inputs.num_substructures);
  auto train_features = PairAndFeatures(drug_frs, inputs.train);
  auto test_features = PairAndFeatures(drug_frs, inputs.test);
  std::vector<float> train_labels = model::LabelsOf(inputs.train);

  std::vector<float> scores;
  switch (kind) {
    case MlKind::kNn:
      scores = RunNnClassifier(ToDense(train_features), train_labels,
                               ToDense(test_features), config, &rng);
      break;
    case MlKind::kLr: {
      ml::LogisticRegression lr;
      lr.Fit(ToDense(train_features), train_labels, &rng);
      for (const auto& feature : ToDense(test_features)) {
        scores.push_back(lr.PredictProbability(feature));
      }
      break;
    }
    case MlKind::kKnn: {
      ml::KnnClassifier knn(config.knn_k);
      knn.Fit(train_features, train_labels);
      scores.reserve(test_features.size());
      for (const auto& feature : test_features) {
        scores.push_back(knn.PredictScore(feature));
      }
      break;
    }
  }
  return EvaluateWithScores(scores, inputs.test);
}

std::string MlKindName(MlKind kind) {
  switch (kind) {
    case MlKind::kNn:
      return "NN";
    case MlKind::kLr:
      return "LR";
    case MlKind::kKnn:
      return "kNN";
  }
  return "?";
}

}  // namespace hygnn::baselines
