#include <memory>

#include "baselines/baselines.h"
#include "baselines/pair_harness.h"
#include "core/logging.h"
#include "data/pairs.h"
#include "graph/builders.h"
#include "ml/bitvector.h"
#include "nn/gnn_layers.h"
#include "tensor/init.h"
#include "tensor/loss.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace hygnn::baselines {

namespace {

/// Two-layer GNN over a fixed graph with fixed or learnable input
/// features; owns all layer objects so it can live inside a closure.
struct TwoLayerGnn {
  GnnKind kind;
  std::shared_ptr<const tensor::CsrMatrix> norm_adj;   // GCN
  std::shared_ptr<const tensor::CsrMatrix> mean_adj;   // SAGE
  nn::GatEdgeIndex gat_edges;                          // GAT
  std::unique_ptr<nn::GcnConv> gcn1, gcn2;
  std::unique_ptr<nn::SageConv> sage1, sage2;
  std::unique_ptr<nn::GatConv> gat1, gat2;
  tensor::Tensor input_features;  // [n, in_dim]

  tensor::Tensor Forward() const {
    switch (kind) {
      case GnnKind::kGcn: {
        tensor::Tensor h =
            tensor::Relu(gcn1->Forward(norm_adj, input_features));
        return gcn2->Forward(norm_adj, h);
      }
      case GnnKind::kSage: {
        tensor::Tensor h =
            tensor::Relu(sage1->Forward(mean_adj, input_features));
        return sage2->Forward(mean_adj, h);
      }
      case GnnKind::kGat: {
        tensor::Tensor h =
            tensor::Relu(gat1->Forward(gat_edges, input_features));
        return gat2->Forward(gat_edges, h);
      }
    }
    HYGNN_CHECK(false) << "unknown GNN kind";
    return {};
  }

  std::vector<tensor::Tensor> Parameters() const {
    std::vector<tensor::Tensor> parameters;
    auto append = [&parameters](const std::vector<tensor::Tensor>& more) {
      parameters.insert(parameters.end(), more.begin(), more.end());
    };
    switch (kind) {
      case GnnKind::kGcn:
        append(gcn1->Parameters());
        append(gcn2->Parameters());
        break;
      case GnnKind::kSage:
        append(sage1->Parameters());
        append(sage2->Parameters());
        break;
      case GnnKind::kGat:
        append(gat1->Parameters());
        append(gat2->Parameters());
        break;
    }
    if (input_features.requires_grad()) {
      parameters.push_back(input_features);
    }
    return parameters;
  }
};

std::shared_ptr<TwoLayerGnn> BuildTwoLayerGnn(const graph::Graph& graph,
                                              GnnKind kind,
                                              tensor::Tensor input_features,
                                              const BaselineConfig& config,
                                              core::Rng* rng) {
  auto gnn = std::make_shared<TwoLayerGnn>();
  gnn->kind = kind;
  gnn->input_features = std::move(input_features);
  const int64_t in_dim = gnn->input_features.cols();
  const int64_t out_dim = config.embedding_dim;
  switch (kind) {
    case GnnKind::kGcn:
      gnn->norm_adj = graph.NormalizedAdjacency();
      gnn->gcn1 = std::make_unique<nn::GcnConv>(in_dim, out_dim, rng);
      gnn->gcn2 = std::make_unique<nn::GcnConv>(out_dim, out_dim, rng);
      break;
    case GnnKind::kSage:
      gnn->mean_adj = graph.MeanAdjacency();
      gnn->sage1 = std::make_unique<nn::SageConv>(in_dim, out_dim, rng);
      gnn->sage2 = std::make_unique<nn::SageConv>(out_dim, out_dim, rng);
      break;
    case GnnKind::kGat: {
      gnn->gat_edges = nn::GatEdgeIndex::FromGraph(graph);
      const int32_t heads = config.gat_heads;
      const int64_t head_dim =
          std::max<int64_t>(1, out_dim / std::max(1, heads));
      gnn->gat1 = std::make_unique<nn::GatConv>(in_dim, head_dim, heads, rng);
      gnn->gat2 = std::make_unique<nn::GatConv>(head_dim * heads, out_dim, 1,
                                                rng);
      break;
    }
  }
  return gnn;
}

/// Stage 1 of the paper's two-stage baseline protocol (§IV-B): the GNN
/// learns drug representations by unsupervised link prediction on the
/// training DDI edges (dot-product score, BCE loss, fresh random
/// negatives each epoch). The representations are then frozen.
tensor::Tensor TrainUnsupervisedEmbeddings(
    TwoLayerGnn* gnn, const BaselineInputs& inputs,
    const BaselineConfig& config, core::Rng* rng) {
  auto positives = data::PositivePairs(inputs.train);
  tensor::Adam optimizer(gnn->Parameters(), config.learning_rate);
  for (int32_t epoch = 0; epoch < config.epochs; ++epoch) {
    std::vector<int32_t> left, right;
    std::vector<float> labels;
    left.reserve(positives.size() * 2);
    right.reserve(positives.size() * 2);
    labels.reserve(positives.size() * 2);
    for (const auto& [a, b] : positives) {
      left.push_back(a);
      right.push_back(b);
      labels.push_back(1.0f);
    }
    for (size_t i = 0; i < positives.size(); ++i) {
      left.push_back(static_cast<int32_t>(
          rng->UniformInt(inputs.num_drugs)));
      right.push_back(static_cast<int32_t>(
          rng->UniformInt(inputs.num_drugs)));
      labels.push_back(0.0f);
    }
    optimizer.ZeroGrad();
    tensor::Tensor embeddings = gnn->Forward();
    tensor::Tensor logits = tensor::RowwiseDot(
        tensor::IndexSelectRows(embeddings, left),
        tensor::IndexSelectRows(embeddings, right));
    tensor::Tensor loss = tensor::BceWithLogitsLoss(logits, labels);
    loss.Backward();
    optimizer.ClipGradNorm(5.0f);
    optimizer.Step();
  }
  return gnn->Forward().Detach();
}

model::EvalResult RunGnnBaseline(const graph::Graph& graph,
                                 tensor::Tensor input_features,
                                 const BaselineInputs& inputs, GnnKind kind,
                                 const BaselineConfig& config) {
  core::Rng rng(inputs.seed);
  auto gnn = BuildTwoLayerGnn(graph, kind, std::move(input_features), config,
                              &rng);
  // Two-stage protocol: representation learning, then a separately
  // trained feed-forward pair classifier on the frozen embeddings.
  tensor::Tensor frozen =
      TrainUnsupervisedEmbeddings(gnn.get(), inputs, config, &rng);
  auto embed_fn = [frozen](bool /*training*/, core::Rng* /*rng*/) {
    return frozen;
  };
  PairModelHarness harness(embed_fn, /*embed_params=*/{},
                           config.embedding_dim, config, rng.Next());
  return harness.FitAndEvaluate(inputs.train, inputs.test);
}

}  // namespace

model::EvalResult RunGnnOnDdiGraph(const BaselineInputs& inputs,
                                   GnnKind kind,
                                   const BaselineConfig& config) {
  core::Rng rng(inputs.seed ^ 0x9e3779b9);
  graph::Graph ddi_graph = graph::BuildDdiGraph(
      inputs.num_drugs, data::PositivePairs(inputs.train));
  // Transductive learnable node features (the DDI graph carries no
  // intrinsic drug attributes).
  tensor::Tensor features = tensor::XavierUniform(
      inputs.num_drugs, config.embedding_dim, &rng, /*requires_grad=*/true);
  return RunGnnBaseline(ddi_graph, std::move(features), inputs, kind,
                        config);
}

model::EvalResult RunGnnOnSsg(const BaselineInputs& inputs, GnnKind kind,
                              const BaselineConfig& config) {
  HYGNN_CHECK(inputs.drug_substructures != nullptr);
  graph::Graph ssg = graph::BuildSubstructureSimilarityGraph(
      *inputs.drug_substructures, inputs.num_substructures,
      config.ssg_min_common);
  // Node features: the drugs' binary functional representations.
  auto frs = ml::BuildFunctionalRepresentations(*inputs.drug_substructures,
                                                inputs.num_substructures);
  std::vector<float> flat;
  flat.reserve(frs.size() * static_cast<size_t>(inputs.num_substructures));
  for (const auto& fr : frs) {
    auto row = fr.ToFloats();
    flat.insert(flat.end(), row.begin(), row.end());
  }
  tensor::Tensor features = tensor::Tensor::FromVector(
      std::move(flat), inputs.num_drugs, inputs.num_substructures);
  return RunGnnBaseline(ssg, std::move(features), inputs, kind, config);
}

std::string GnnKindName(GnnKind kind) {
  switch (kind) {
    case GnnKind::kGcn:
      return "GCN";
    case GnnKind::kSage:
      return "GraphSAGE";
    case GnnKind::kGat:
      return "GAT";
  }
  return "?";
}

}  // namespace hygnn::baselines
