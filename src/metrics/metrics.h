#ifndef HYGNN_METRICS_METRICS_H_
#define HYGNN_METRICS_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hygnn::metrics {

/// Binary confusion counts at a fixed decision threshold.
struct ConfusionMatrix {
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t true_negatives = 0;
  int64_t false_negatives = 0;

  double Accuracy() const;
  double Precision() const;
  double Recall() const;
  double F1() const;
};

/// Builds the confusion matrix of `scores` vs binary `labels` at
/// `threshold` (score >= threshold predicts positive).
ConfusionMatrix ComputeConfusion(const std::vector<float>& scores,
                                 const std::vector<float>& labels,
                                 float threshold = 0.5f);

/// F1 at threshold 0.5 — the paper's F1 column.
double F1Score(const std::vector<float>& scores,
               const std::vector<float>& labels, float threshold = 0.5f);

/// Area under the ROC curve, computed exactly via the Mann-Whitney U
/// statistic with tie correction. Returns 0.5 when one class is absent.
double RocAuc(const std::vector<float>& scores,
              const std::vector<float>& labels);

/// Area under the precision-recall curve (average precision, step-wise
/// interpolation — matches sklearn's average_precision_score). Returns
/// the positive prevalence when all scores tie.
double PrAuc(const std::vector<float>& scores,
             const std::vector<float>& labels);

/// Accuracy at the given threshold.
double Accuracy(const std::vector<float>& scores,
                const std::vector<float>& labels, float threshold = 0.5f);

/// Brier score: mean squared error between probabilistic scores and
/// binary labels (lower is better; measures calibration).
double BrierScore(const std::vector<float>& scores,
                  const std::vector<float>& labels);

/// The decision threshold maximizing F1, with the F1 it attains.
struct ThresholdF1 {
  double threshold = 0.5;
  double f1 = 0.0;
};

ThresholdF1 BestF1Threshold(const std::vector<float>& scores,
                            const std::vector<float>& labels);

/// F1 / ROC-AUC / PR-AUC triple — the paper's binary reporting columns.
/// Shared by the trainer, the baseline harness, and the serving scorers
/// so every evaluation path thresholds and aggregates identically.
struct BinaryEval {
  double f1 = 0.0;
  double roc_auc = 0.0;
  double pr_auc = 0.0;
};

/// Computes the paper's three binary metrics from scores and labels.
BinaryEval EvaluateBinary(const std::vector<float>& scores,
                          const std::vector<float>& labels);

/// Multi-class evaluation: accuracy and macro-averaged F1 over the
/// classes that actually occur (true or predicted).
struct MultiClassEval {
  double accuracy = 0.0;
  double macro_f1 = 0.0;
};

/// Computes accuracy and macro-F1 of predicted vs actual class ids in
/// [0, num_classes).
MultiClassEval EvaluateMultiClass(const std::vector<int32_t>& predicted,
                                  const std::vector<int32_t>& actual,
                                  int32_t num_classes);

/// Mean and (population) standard deviation over repeated runs.
struct Aggregate {
  double mean = 0.0;
  double stddev = 0.0;
};

Aggregate AggregateOf(const std::vector<double>& values);

}  // namespace hygnn::metrics

#endif  // HYGNN_METRICS_METRICS_H_
