#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/logging.h"

namespace hygnn::metrics {

double ConfusionMatrix::Accuracy() const {
  const int64_t total = true_positives + false_positives + true_negatives +
                        false_negatives;
  if (total == 0) return 0.0;
  return static_cast<double>(true_positives + true_negatives) /
         static_cast<double>(total);
}

double ConfusionMatrix::Precision() const {
  const int64_t denom = true_positives + false_positives;
  if (denom == 0) return 0.0;
  return static_cast<double>(true_positives) / static_cast<double>(denom);
}

double ConfusionMatrix::Recall() const {
  const int64_t denom = true_positives + false_negatives;
  if (denom == 0) return 0.0;
  return static_cast<double>(true_positives) / static_cast<double>(denom);
}

double ConfusionMatrix::F1() const {
  const double precision = Precision();
  const double recall = Recall();
  if (precision + recall == 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

ConfusionMatrix ComputeConfusion(const std::vector<float>& scores,
                                 const std::vector<float>& labels,
                                 float threshold) {
  HYGNN_CHECK_EQ(scores.size(), labels.size());
  ConfusionMatrix cm;
  for (size_t i = 0; i < scores.size(); ++i) {
    const bool predicted = scores[i] >= threshold;
    const bool actual = labels[i] > 0.5f;
    if (predicted && actual) {
      ++cm.true_positives;
    } else if (predicted && !actual) {
      ++cm.false_positives;
    } else if (!predicted && actual) {
      ++cm.false_negatives;
    } else {
      ++cm.true_negatives;
    }
  }
  return cm;
}

double F1Score(const std::vector<float>& scores,
               const std::vector<float>& labels, float threshold) {
  return ComputeConfusion(scores, labels, threshold).F1();
}

double RocAuc(const std::vector<float>& scores,
              const std::vector<float>& labels) {
  HYGNN_CHECK_EQ(scores.size(), labels.size());
  const size_t n = scores.size();
  // Rank the scores (average ranks on ties), then apply Mann-Whitney.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  // Tie-break by index: std::sort is not stable and a score-only
  // comparator leaves tied elements in an unspecified, standard-library-
  // dependent order. Ties are processed as one rank group below, so the
  // value is unchanged — but the traversal order (and any future code
  // that peels the groups apart) is now deterministic everywhere.
  std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] < scores[b];
    return a < b;
  });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) +
                             static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  double positive_rank_sum = 0.0;
  int64_t positives = 0;
  for (size_t k = 0; k < n; ++k) {
    if (labels[k] > 0.5f) {
      positive_rank_sum += ranks[k];
      ++positives;
    }
  }
  const int64_t negatives = static_cast<int64_t>(n) - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  const double u = positive_rank_sum -
                   static_cast<double>(positives) *
                       (static_cast<double>(positives) + 1.0) / 2.0;
  return u / (static_cast<double>(positives) *
              static_cast<double>(negatives));
}

double PrAuc(const std::vector<float>& scores,
             const std::vector<float>& labels) {
  HYGNN_CHECK_EQ(scores.size(), labels.size());
  const size_t n = scores.size();
  int64_t total_positives = 0;
  for (float label : labels) {
    if (label > 0.5f) ++total_positives;
  }
  if (total_positives == 0) return 0.0;
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  // Non-stable sort with a score-only comparator ordered ties
  // unspecifiedly (libstdc++ vs libc++ disagree); the index tie-break
  // makes the ranking a total order, so results are deterministic
  // across standard libraries. Regression: PrAucTest.TiedScores*.
  std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  // Average precision: sum over thresholds of precision * delta-recall,
  // processing tied scores as a single threshold.
  double average_precision = 0.0;
  int64_t tp = 0, fp = 0;
  double previous_recall = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    for (size_t k = i; k <= j; ++k) {
      if (labels[order[k]] > 0.5f) {
        ++tp;
      } else {
        ++fp;
      }
    }
    const double recall = static_cast<double>(tp) /
                          static_cast<double>(total_positives);
    const double precision = static_cast<double>(tp) /
                             static_cast<double>(tp + fp);
    average_precision += precision * (recall - previous_recall);
    previous_recall = recall;
    i = j + 1;
  }
  return average_precision;
}

double Accuracy(const std::vector<float>& scores,
                const std::vector<float>& labels, float threshold) {
  return ComputeConfusion(scores, labels, threshold).Accuracy();
}

double BrierScore(const std::vector<float>& scores,
                  const std::vector<float>& labels) {
  HYGNN_CHECK_EQ(scores.size(), labels.size());
  if (scores.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    const double diff = static_cast<double>(scores[i]) - labels[i];
    total += diff * diff;
  }
  return total / static_cast<double>(scores.size());
}

ThresholdF1 BestF1Threshold(const std::vector<float>& scores,
                            const std::vector<float>& labels) {
  HYGNN_CHECK_EQ(scores.size(), labels.size());
  ThresholdF1 best;
  if (scores.empty()) return best;
  // Sweep descending scores; at each distinct score, predicting
  // positive for everything at or above it.
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;  // deterministic tie order (see PrAuc)
  });
  int64_t total_positives = 0;
  for (float label : labels) {
    if (label > 0.5f) ++total_positives;
  }
  int64_t tp = 0, fp = 0;
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    for (size_t k = i; k <= j; ++k) {
      if (labels[order[k]] > 0.5f) {
        ++tp;
      } else {
        ++fp;
      }
    }
    if (tp > 0) {
      const double precision =
          static_cast<double>(tp) / static_cast<double>(tp + fp);
      const double recall =
          static_cast<double>(tp) / static_cast<double>(total_positives);
      const double f1 = 2.0 * precision * recall / (precision + recall);
      if (f1 > best.f1) {
        best.f1 = f1;
        best.threshold = scores[order[i]];
      }
    }
    i = j + 1;
  }
  return best;
}

BinaryEval EvaluateBinary(const std::vector<float>& scores,
                          const std::vector<float>& labels) {
  BinaryEval result;
  result.f1 = F1Score(scores, labels);
  result.roc_auc = RocAuc(scores, labels);
  result.pr_auc = PrAuc(scores, labels);
  return result;
}

MultiClassEval EvaluateMultiClass(const std::vector<int32_t>& predicted,
                                  const std::vector<int32_t>& actual,
                                  int32_t num_classes) {
  HYGNN_CHECK_EQ(predicted.size(), actual.size());
  HYGNN_CHECK(!predicted.empty());
  MultiClassEval result;
  int64_t correct = 0;
  std::vector<int64_t> tp(num_classes, 0), fp(num_classes, 0),
      fn(num_classes, 0);
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == actual[i]) {
      ++correct;
      ++tp[static_cast<size_t>(actual[i])];
    } else {
      ++fp[static_cast<size_t>(predicted[i])];
      ++fn[static_cast<size_t>(actual[i])];
    }
  }
  result.accuracy =
      static_cast<double>(correct) / static_cast<double>(predicted.size());
  double f1_sum = 0.0;
  int32_t active_classes = 0;
  for (int32_t c = 0; c < num_classes; ++c) {
    const int64_t support = tp[c] + fn[c];
    const int64_t predicted_count = tp[c] + fp[c];
    if (support == 0 && predicted_count == 0) continue;
    ++active_classes;
    if (tp[c] == 0) continue;
    const double precision = static_cast<double>(tp[c]) /
                             static_cast<double>(predicted_count);
    const double recall =
        static_cast<double>(tp[c]) / static_cast<double>(support);
    f1_sum += 2.0 * precision * recall / (precision + recall);
  }
  if (active_classes > 0) {
    result.macro_f1 = f1_sum / active_classes;
  }
  return result;
}

Aggregate AggregateOf(const std::vector<double>& values) {
  Aggregate agg;
  if (values.empty()) return agg;
  for (double v : values) agg.mean += v;
  agg.mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - agg.mean) * (v - agg.mean);
  var /= static_cast<double>(values.size());
  agg.stddev = std::sqrt(var);
  return agg;
}

}  // namespace hygnn::metrics
