#include "ml/bitvector.h"

#include <bit>

#include "core/logging.h"

namespace hygnn::ml {

BitVector::BitVector(int32_t num_bits) : num_bits_(num_bits) {
  HYGNN_CHECK_GE(num_bits, 0);
  words_.assign((static_cast<size_t>(num_bits) + 63) / 64, 0);
}

void BitVector::SetBit(int32_t index) {
  HYGNN_CHECK(index >= 0 && index < num_bits_);
  words_[static_cast<size_t>(index) / 64] |=
      uint64_t{1} << (static_cast<size_t>(index) % 64);
}

bool BitVector::GetBit(int32_t index) const {
  HYGNN_CHECK(index >= 0 && index < num_bits_);
  return (words_[static_cast<size_t>(index) / 64] >>
          (static_cast<size_t>(index) % 64)) &
         1;
}

int64_t BitVector::Popcount() const {
  int64_t count = 0;
  for (uint64_t w : words_) count += std::popcount(w);
  return count;
}

BitVector BitVector::And(const BitVector& other) const {
  HYGNN_CHECK_EQ(num_bits_, other.num_bits_);
  BitVector result(num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    result.words_[i] = words_[i] & other.words_[i];
  }
  return result;
}

int64_t BitVector::IntersectionCount(const BitVector& other) const {
  HYGNN_CHECK_EQ(num_bits_, other.num_bits_);
  int64_t count = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    count += std::popcount(words_[i] & other.words_[i]);
  }
  return count;
}

int64_t BitVector::UnionCount(const BitVector& other) const {
  HYGNN_CHECK_EQ(num_bits_, other.num_bits_);
  int64_t count = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    count += std::popcount(words_[i] | other.words_[i]);
  }
  return count;
}

double BitVector::Jaccard(const BitVector& other) const {
  const int64_t uni = UnionCount(other);
  if (uni == 0) return 0.0;
  return static_cast<double>(IntersectionCount(other)) /
         static_cast<double>(uni);
}

std::vector<float> BitVector::ToFloats() const {
  std::vector<float> dense(static_cast<size_t>(num_bits_), 0.0f);
  for (int32_t i = 0; i < num_bits_; ++i) {
    if (GetBit(i)) dense[static_cast<size_t>(i)] = 1.0f;
  }
  return dense;
}

std::vector<BitVector> BuildFunctionalRepresentations(
    const std::vector<std::vector<int32_t>>& drug_substructures,
    int32_t num_substructures) {
  std::vector<BitVector> representations;
  representations.reserve(drug_substructures.size());
  for (const auto& substructures : drug_substructures) {
    BitVector bits(num_substructures);
    for (int32_t id : substructures) bits.SetBit(id);
    representations.push_back(std::move(bits));
  }
  return representations;
}

}  // namespace hygnn::ml
