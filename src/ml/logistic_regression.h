#ifndef HYGNN_ML_LOGISTIC_REGRESSION_H_
#define HYGNN_ML_LOGISTIC_REGRESSION_H_

#include <cstdint>
#include <vector>

#include "core/rng.h"

namespace hygnn::ml {

/// Binary logistic regression trained by mini-batch gradient descent
/// with L2 regularization.
struct LogisticRegressionConfig {
  int32_t epochs = 300;
  float learning_rate = 0.5f;
  float l2 = 1e-4f;
  int32_t batch_size = 256;
};

class LogisticRegression {
 public:
  explicit LogisticRegression(const LogisticRegressionConfig& config = {});

  /// Fits on dense feature rows (all the same length) and 0/1 labels.
  void Fit(const std::vector<std::vector<float>>& features,
           const std::vector<float>& labels, core::Rng* rng);

  /// P(label = 1 | feature).
  float PredictProbability(const std::vector<float>& feature) const;

  const std::vector<float>& weights() const { return weights_; }
  float bias() const { return bias_; }

 private:
  LogisticRegressionConfig config_;
  std::vector<float> weights_;
  float bias_ = 0.0f;
};

}  // namespace hygnn::ml

#endif  // HYGNN_ML_LOGISTIC_REGRESSION_H_
