#include "ml/knn.h"

#include <algorithm>

#include "core/logging.h"

namespace hygnn::ml {

KnnClassifier::KnnClassifier(int32_t k) : k_(k) { HYGNN_CHECK_GT(k, 0); }

void KnnClassifier::Fit(std::vector<BitVector> features,
                        std::vector<float> labels) {
  HYGNN_CHECK_EQ(features.size(), labels.size());
  HYGNN_CHECK(!features.empty());
  features_ = std::move(features);
  labels_ = std::move(labels);
}

float KnnClassifier::PredictScore(const BitVector& feature) const {
  HYGNN_CHECK(!features_.empty()) << "Fit must be called first";
  const size_t k = std::min<size_t>(static_cast<size_t>(k_),
                                    features_.size());
  // Partial selection of the k most similar training samples.
  std::vector<std::pair<double, size_t>> similarity(features_.size());
  for (size_t i = 0; i < features_.size(); ++i) {
    similarity[i] = {feature.Jaccard(features_[i]), i};
  }
  std::partial_sort(similarity.begin(), similarity.begin() + k,
                    similarity.end(), [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });
  float positives = 0.0f;
  for (size_t i = 0; i < k; ++i) {
    positives += labels_[similarity[i].second];
  }
  return positives / static_cast<float>(k);
}

}  // namespace hygnn::ml
