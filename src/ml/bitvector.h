#ifndef HYGNN_ML_BITVECTOR_H_
#define HYGNN_ML_BITVECTOR_H_

#include <cstdint>
#include <vector>

namespace hygnn::ml {

/// Fixed-width bit vector used for drugs' functional representations
/// (presence/absence of each vocabulary substructure) and their
/// pairwise AND combinations.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(int32_t num_bits);

  int32_t num_bits() const { return num_bits_; }

  void SetBit(int32_t index);
  bool GetBit(int32_t index) const;

  /// Number of set bits.
  int64_t Popcount() const;

  /// Bitwise AND (paper §IV-B group 4: pair feature = a AND b).
  BitVector And(const BitVector& other) const;

  /// |a AND b| without materializing the AND.
  int64_t IntersectionCount(const BitVector& other) const;

  /// |a OR b|.
  int64_t UnionCount(const BitVector& other) const;

  /// Jaccard similarity |a&b| / |a|b|; 0 when both empty.
  double Jaccard(const BitVector& other) const;

  /// Expands to a dense 0/1 float vector (classifier input).
  std::vector<float> ToFloats() const;

  bool operator==(const BitVector& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

 private:
  int32_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

/// Builds the functional representation of each drug: bit i is set iff
/// vocabulary substructure i occurs in the drug (following CASTER's
/// functional representation).
std::vector<BitVector> BuildFunctionalRepresentations(
    const std::vector<std::vector<int32_t>>& drug_substructures,
    int32_t num_substructures);

}  // namespace hygnn::ml

#endif  // HYGNN_ML_BITVECTOR_H_
