#include "ml/logistic_regression.h"

#include <cmath>

#include "core/logging.h"

namespace hygnn::ml {

namespace {
float StableSigmoid(float x) {
  if (x >= 0.0f) {
    const float e = std::exp(-x);
    return 1.0f / (1.0f + e);
  }
  const float e = std::exp(x);
  return e / (1.0f + e);
}
}  // namespace

LogisticRegression::LogisticRegression(
    const LogisticRegressionConfig& config)
    : config_(config) {}

void LogisticRegression::Fit(const std::vector<std::vector<float>>& features,
                             const std::vector<float>& labels,
                             core::Rng* rng) {
  HYGNN_CHECK(!features.empty());
  HYGNN_CHECK_EQ(features.size(), labels.size());
  HYGNN_CHECK(rng != nullptr);
  const size_t dim = features[0].size();
  weights_.assign(dim, 0.0f);
  bias_ = 0.0f;

  std::vector<size_t> order(features.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<float> grad(dim, 0.0f);
  for (int32_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng->Shuffle(order);
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(config_.batch_size)) {
      const size_t end = std::min(
          order.size(), begin + static_cast<size_t>(config_.batch_size));
      std::fill(grad.begin(), grad.end(), 0.0f);
      float grad_bias = 0.0f;
      for (size_t i = begin; i < end; ++i) {
        const auto& x = features[order[i]];
        HYGNN_CHECK_EQ(x.size(), dim);
        float z = bias_;
        for (size_t j = 0; j < dim; ++j) z += weights_[j] * x[j];
        const float error = StableSigmoid(z) - labels[order[i]];
        for (size_t j = 0; j < dim; ++j) grad[j] += error * x[j];
        grad_bias += error;
      }
      const float scale =
          config_.learning_rate / static_cast<float>(end - begin);
      for (size_t j = 0; j < dim; ++j) {
        weights_[j] -= scale * grad[j] +
                       config_.learning_rate * config_.l2 * weights_[j];
      }
      bias_ -= scale * grad_bias;
    }
  }
}

float LogisticRegression::PredictProbability(
    const std::vector<float>& feature) const {
  HYGNN_CHECK_EQ(feature.size(), weights_.size());
  float z = bias_;
  for (size_t j = 0; j < feature.size(); ++j) {
    z += weights_[j] * feature[j];
  }
  return StableSigmoid(z);
}

}  // namespace hygnn::ml
