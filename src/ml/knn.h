#ifndef HYGNN_ML_KNN_H_
#define HYGNN_ML_KNN_H_

#include <cstdint>
#include <vector>

#include "ml/bitvector.h"

namespace hygnn::ml {

/// k-nearest-neighbours classifier over bit-vector features with
/// Jaccard similarity (the natural metric for substructure presence
/// vectors). Prediction score is the positive fraction among the k
/// most similar training samples, which gives graded scores for
/// ROC/PR computation.
class KnnClassifier {
 public:
  explicit KnnClassifier(int32_t k = 5);

  void Fit(std::vector<BitVector> features, std::vector<float> labels);

  /// Score in [0, 1]: fraction of positive neighbours.
  float PredictScore(const BitVector& feature) const;

 private:
  int32_t k_;
  std::vector<BitVector> features_;
  std::vector<float> labels_;
};

}  // namespace hygnn::ml

#endif  // HYGNN_ML_KNN_H_
