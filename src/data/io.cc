#include "data/io.h"

#include <cstdlib>
#include <fstream>

#include "core/string_util.h"

namespace hygnn::data {

using core::Result;
using core::Status;

Status WriteDrugsCsv(const std::vector<DrugRecord>& drugs,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "index,drugbank_id,name,smiles\n";
  for (const auto& drug : drugs) {
    out << drug.index << ',' << drug.drugbank_id << ',' << drug.name << ','
        << drug.smiles << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<std::vector<DrugRecord>> ReadDrugsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty file: " + path);
  }
  std::vector<DrugRecord> drugs;
  while (std::getline(in, line)) {
    if (core::Trim(line).empty()) continue;
    auto fields = core::Split(line, ',');
    if (fields.size() != 4) {
      return Status::IoError("malformed drug row: " + line);
    }
    DrugRecord record;
    record.index = static_cast<int32_t>(std::strtol(fields[0].c_str(),
                                                    nullptr, 10));
    record.drugbank_id = fields[1];
    record.name = fields[2];
    record.smiles = fields[3];
    drugs.push_back(std::move(record));
  }
  return drugs;
}

Status WritePairsCsv(const std::vector<LabeledPair>& pairs,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "drug_a,drug_b,label\n";
  for (const auto& pair : pairs) {
    out << pair.a << ',' << pair.b << ','
        << static_cast<int>(pair.label > 0.5f) << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<std::vector<LabeledPair>> ReadPairsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty file: " + path);
  }
  std::vector<LabeledPair> pairs;
  while (std::getline(in, line)) {
    if (core::Trim(line).empty()) continue;
    auto fields = core::Split(line, ',');
    if (fields.size() != 3) {
      return Status::IoError("malformed pair row: " + line);
    }
    LabeledPair pair;
    pair.a = static_cast<int32_t>(std::strtol(fields[0].c_str(), nullptr,
                                              10));
    pair.b = static_cast<int32_t>(std::strtol(fields[1].c_str(), nullptr,
                                              10));
    pair.label = std::strtof(fields[2].c_str(), nullptr);
    pairs.push_back(pair);
  }
  return pairs;
}

}  // namespace hygnn::data
