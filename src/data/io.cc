#include "data/io.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/fs.h"
#include "core/string_util.h"

namespace hygnn::data {

using core::Result;
using core::Status;

namespace {

constexpr char kCsvFooterPrefix[] = "#crc32,";

/// Strict int32 field parser: the whole trimmed field must be a decimal
/// integer in range. strtol with an ignored end pointer would happily
/// read "12garbage" as 12 and "" as 0 — exactly the silent corruption
/// the readers must refuse.
bool ParseInt32Field(const std::string& field, int32_t* out) {
  const std::string text = core::Trim(field);
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  if (value < INT32_MIN || value > INT32_MAX) return false;
  *out = static_cast<int32_t>(value);
  return true;
}

/// Strict finite-float field parser (labels).
bool ParseFloatField(const std::string& field, float* out) {
  const std::string text = core::Trim(field);
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const float value = std::strtof(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

Status LineError(const std::string& path, size_t line,
                 const std::string& what) {
  return Status::InvalidArgument(path + ":" + std::to_string(line) + ": " +
                                 what);
}

/// Splits verified CSV bytes into (line, 1-based line number) records,
/// dropping blank lines but keeping the numbering of the original file.
std::vector<std::pair<std::string, size_t>> SplitCsvLines(
    const std::string& content) {
  std::vector<std::pair<std::string, size_t>> lines;
  size_t begin = 0, line_no = 1;
  while (begin <= content.size()) {
    size_t end = content.find('\n', begin);
    if (end == std::string::npos) end = content.size();
    std::string line = content.substr(begin, end - begin);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!core::Trim(line).empty()) lines.emplace_back(line, line_no);
    if (end == content.size()) break;
    begin = end + 1;
    ++line_no;
  }
  return lines;
}

/// Locates and verifies the `#crc32` trailer, returning the bytes the
/// checksum covers (everything before the trailer line). Missing
/// trailer -> FailedPrecondition (could be an external file; the error
/// says how to adopt it). Bad checksum -> IoError (torn or corrupt).
Result<std::string> VerifyCsvFooter(const std::string& content,
                                    const std::string& path) {
  const size_t pos = content.rfind(kCsvFooterPrefix);
  if (pos == std::string::npos ||
      (pos != 0 && content[pos - 1] != '\n')) {
    return Status::FailedPrecondition(
        "missing #crc32 integrity trailer (torn file, or an "
        "externally-produced CSV — adopt it with "
        "data::AppendCsvIntegrityFooter): " + path);
  }
  std::string footer = content.substr(pos);
  while (!footer.empty() && (footer.back() == '\n' || footer.back() == '\r')) {
    footer.pop_back();
  }
  const std::string hex = footer.substr(sizeof(kCsvFooterPrefix) - 1);
  char* end = nullptr;
  errno = 0;
  const unsigned long stored = std::strtoul(hex.c_str(), &end, 16);
  if (errno != 0 || hex.empty() || hex.size() != 8 ||
      end != hex.c_str() + hex.size()) {
    return Status::IoError("malformed #crc32 integrity trailer (torn or "
                           "corrupt write): " + path);
  }
  const std::string body = content.substr(0, pos);
  const uint32_t computed = core::Crc32(body);
  if (computed != static_cast<uint32_t>(stored)) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer),
                  "stored 0x%08lx, computed 0x%08x", stored, computed);
    return Status::IoError("CSV integrity checksum mismatch (torn or "
                           "corrupt write): " + std::string(buffer) + ": " +
                           path);
  }
  return body;
}

/// Reads `path` through the active filesystem and returns the
/// checksum-verified CSV body.
Result<std::string> ReadVerifiedCsv(const std::string& path) {
  auto content = core::ActiveFileSystem().ReadFile(path);
  if (!content.ok()) return content.status();
  return VerifyCsvFooter(content.value(), path);
}

}  // namespace

void AppendCsvIntegrityFooter(std::string* csv) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%08x", core::Crc32(*csv));
  csv->append(kCsvFooterPrefix).append(buffer).append("\n");
}

Status WriteDrugsCsv(const std::vector<DrugRecord>& drugs,
                     const std::string& path) {
  std::string out = "index,drugbank_id,name,smiles\n";
  for (const auto& drug : drugs) {
    out += std::to_string(drug.index) + ',' + drug.drugbank_id + ',' +
           drug.name + ',' + drug.smiles + '\n';
  }
  AppendCsvIntegrityFooter(&out);
  return core::WriteFileAtomic(core::ActiveFileSystem(), path, out);
}

Result<std::vector<DrugRecord>> ReadDrugsCsv(const std::string& path) {
  auto body = ReadVerifiedCsv(path);
  if (!body.ok()) return body.status();
  const auto lines = SplitCsvLines(body.value());
  if (lines.empty()) return Status::IoError("empty file: " + path);
  std::vector<DrugRecord> drugs;
  for (size_t i = 1; i < lines.size(); ++i) {  // lines[0] is the header
    const auto& [line, line_no] = lines[i];
    auto fields = core::Split(line, ',');
    if (fields.size() != 4) {
      return LineError(path, line_no,
                       "expected 4 fields (index,drugbank_id,name,smiles), "
                       "got " + std::to_string(fields.size()));
    }
    DrugRecord record;
    if (!ParseInt32Field(fields[0], &record.index)) {
      return LineError(path, line_no,
                       "malformed drug index \"" + fields[0] + "\"");
    }
    if (record.index < 0) {
      return LineError(path, line_no,
                       "negative drug index " + std::to_string(record.index));
    }
    record.drugbank_id = fields[1];
    record.name = fields[2];
    record.smiles = fields[3];
    drugs.push_back(std::move(record));
  }
  return drugs;
}

Status WritePairsCsv(const std::vector<LabeledPair>& pairs,
                     const std::string& path) {
  std::string out = "drug_a,drug_b,label\n";
  for (const auto& pair : pairs) {
    out += std::to_string(pair.a) + ',' + std::to_string(pair.b) + ',' +
           std::to_string(static_cast<int>(pair.label > 0.5f)) + '\n';
  }
  AppendCsvIntegrityFooter(&out);
  return core::WriteFileAtomic(core::ActiveFileSystem(), path, out);
}

Result<std::vector<LabeledPair>> ReadPairsCsv(const std::string& path) {
  auto body = ReadVerifiedCsv(path);
  if (!body.ok()) return body.status();
  const auto lines = SplitCsvLines(body.value());
  if (lines.empty()) return Status::IoError("empty file: " + path);
  std::vector<LabeledPair> pairs;
  for (size_t i = 1; i < lines.size(); ++i) {
    const auto& [line, line_no] = lines[i];
    auto fields = core::Split(line, ',');
    if (fields.size() != 3) {
      return LineError(path, line_no,
                       "expected 3 fields (drug_a,drug_b,label), got " +
                       std::to_string(fields.size()));
    }
    LabeledPair pair;
    if (!ParseInt32Field(fields[0], &pair.a) || pair.a < 0) {
      return LineError(path, line_no,
                       "malformed drug_a index \"" + fields[0] + "\"");
    }
    if (!ParseInt32Field(fields[1], &pair.b) || pair.b < 0) {
      return LineError(path, line_no,
                       "malformed drug_b index \"" + fields[1] + "\"");
    }
    if (!ParseFloatField(fields[2], &pair.label)) {
      return LineError(path, line_no,
                       "malformed label \"" + fields[2] + "\"");
    }
    pairs.push_back(pair);
  }
  return pairs;
}

Status ValidatePairs(const std::vector<LabeledPair>& pairs,
                     int32_t num_drugs) {
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto& pair = pairs[i];
    if (pair.a < 0 || pair.a >= num_drugs || pair.b < 0 ||
        pair.b >= num_drugs) {
      const int32_t bad = (pair.a < 0 || pair.a >= num_drugs) ? pair.a
                                                              : pair.b;
      return Status::OutOfRange(
          "pair " + std::to_string(i) + ": drug index " +
          std::to_string(bad) + " outside catalog of " +
          std::to_string(num_drugs) + " drugs");
    }
  }
  return Status::Ok();
}

}  // namespace hygnn::data
