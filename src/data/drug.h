#ifndef HYGNN_DATA_DRUG_H_
#define HYGNN_DATA_DRUG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hygnn::data {

/// One synthetic drug: the SMILES string is what models see; the
/// fragment/reactive-class lists are the generator's latent ground truth
/// (used only by the oracle and never exposed to models).
struct DrugRecord {
  int32_t index = 0;            // dense id in [0, num_drugs)
  std::string drugbank_id;      // "DB00001"-style accession
  std::string name;             // pronounceable synthetic name
  std::string smiles;           // valid SMILES (see chem::ValidateSmiles)
  std::vector<int32_t> fragment_ids;      // library indices (latent)
  std::vector<int32_t> reactive_classes;  // deduplicated classes (latent)
};

/// An unordered drug pair, stored with a < b.
struct DrugPair {
  int32_t a = 0;
  int32_t b = 0;

  bool operator==(const DrugPair& other) const {
    return a == other.a && b == other.b;
  }
  bool operator<(const DrugPair& other) const {
    if (a != other.a) return a < other.a;
    return b < other.b;
  }
};

/// Canonicalizes pair order (a < b).
inline DrugPair MakePair(int32_t x, int32_t y) {
  return x < y ? DrugPair{x, y} : DrugPair{y, x};
}

/// A drug pair with a binary interaction label.
struct LabeledPair {
  int32_t a = 0;
  int32_t b = 0;
  float label = 0.0f;  // 1 = interacts
};

}  // namespace hygnn::data

#endif  // HYGNN_DATA_DRUG_H_
