#include "data/pairs.h"

#include <algorithm>
#include <unordered_set>

#include "core/logging.h"

namespace hygnn::data {

std::vector<LabeledPair> BuildBalancedPairs(const DdiDataset& dataset,
                                            core::Rng* rng) {
  HYGNN_CHECK(rng != nullptr);
  const int32_t n = dataset.num_drugs();
  std::vector<LabeledPair> pairs;
  pairs.reserve(dataset.positives().size() * 2);
  std::unordered_set<uint64_t> taken;
  for (const auto& p : dataset.positives()) {
    pairs.push_back({p.a, p.b, 1.0f});
    taken.insert(static_cast<uint64_t>(p.a) * n + p.b);
  }
  const size_t num_positives = dataset.positives().size();
  const uint64_t total_pairs =
      static_cast<uint64_t>(n) * (n - 1) / 2;
  HYGNN_CHECK_LT(num_positives * 2, total_pairs)
      << "not enough negative pairs to balance";
  size_t sampled = 0;
  while (sampled < num_positives) {
    int32_t a = static_cast<int32_t>(rng->UniformInt(n));
    int32_t b = static_cast<int32_t>(rng->UniformInt(n));
    if (a == b) continue;
    const DrugPair p = MakePair(a, b);
    const uint64_t key = static_cast<uint64_t>(p.a) * n + p.b;
    if (taken.count(key)) continue;
    taken.insert(key);
    pairs.push_back({p.a, p.b, 0.0f});
    ++sampled;
  }
  return pairs;
}

PairSplit RandomSplit(std::vector<LabeledPair> pairs, double train_fraction,
                      core::Rng* rng) {
  HYGNN_CHECK(rng != nullptr);
  HYGNN_CHECK(train_fraction > 0.0 && train_fraction < 1.0);
  rng->Shuffle(pairs);
  const size_t train_size =
      static_cast<size_t>(train_fraction * static_cast<double>(pairs.size()));
  PairSplit split;
  split.train.assign(pairs.begin(), pairs.begin() + train_size);
  split.test.assign(pairs.begin() + train_size, pairs.end());
  return split;
}

PairSplit ColdStartSplit(const std::vector<LabeledPair>& pairs,
                         const std::vector<int32_t>& new_drugs) {
  std::unordered_set<int32_t> held(new_drugs.begin(), new_drugs.end());
  PairSplit split;
  for (const auto& pair : pairs) {
    if (held.count(pair.a) || held.count(pair.b)) {
      split.test.push_back(pair);
    } else {
      split.train.push_back(pair);
    }
  }
  return split;
}

std::vector<std::pair<int32_t, int32_t>> PositivePairs(
    const std::vector<LabeledPair>& pairs) {
  std::vector<std::pair<int32_t, int32_t>> positives;
  for (const auto& pair : pairs) {
    if (pair.label > 0.5f) positives.emplace_back(pair.a, pair.b);
  }
  return positives;
}

double PositiveFraction(const std::vector<LabeledPair>& pairs) {
  if (pairs.empty()) return 0.0;
  size_t positives = 0;
  for (const auto& pair : pairs) {
    if (pair.label > 0.5f) ++positives;
  }
  return static_cast<double>(positives) / static_cast<double>(pairs.size());
}

}  // namespace hygnn::data
