#ifndef HYGNN_DATA_FEATURIZE_H_
#define HYGNN_DATA_FEATURIZE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chem/espf.h"
#include "chem/strobemer.h"
#include "chem/vocab.h"
#include "core/status.h"
#include "data/drug.h"

namespace hygnn::data {

/// Which substructure extraction algorithm to use (paper §III-B studies
/// both).
enum class SubstructureMode {
  kEspf,
  kKmer,
  kStrobemer,
};

/// Parameters for substructure extraction. Paper values: ESPF threshold
/// 5 (741 substructures on DrugBank), k-mer k = 10 (19877 substructures).
struct FeaturizeConfig {
  SubstructureMode mode = SubstructureMode::kEspf;
  int64_t espf_frequency_threshold = 5;
  int64_t kmer_k = 10;
  chem::StrobemerConfig strobemer;
  /// Canonicalize every SMILES before mining/segmentation (the paper's
  /// §IV-A preprocessing, played there by PubChem). Makes featurization
  /// invariant to SMILES spelling — two spellings of the same molecule
  /// yield identical substructure sets.
  bool canonicalize_smiles = false;
};

/// The substructure view of a drug corpus: a vocabulary (hypergraph
/// nodes) and each drug's unique substructure-id set (hyperedge
/// membership). Built on training drugs' SMILES; `SegmentNewSmiles`
/// featurizes unseen drugs against the same vocabulary, which is what
/// enables cold-start prediction.
class SubstructureFeaturizer {
 public:
  /// Mines substructures from every drug's SMILES and assigns ids.
  static core::Result<SubstructureFeaturizer> Build(
      const std::vector<DrugRecord>& drugs, const FeaturizeConfig& config);

  /// Unique substructure ids per drug, aligned with the input order.
  const std::vector<std::vector<int32_t>>& drug_substructures() const {
    return drug_substructures_;
  }

  const chem::SubstructureVocabulary& vocabulary() const { return vocab_; }
  int32_t num_substructures() const { return vocab_.size(); }

  /// Featurizes an unseen SMILES string against the fixed vocabulary.
  /// Substructures absent from the vocabulary are dropped (they carry no
  /// learned representation).
  core::Result<std::vector<int32_t>> SegmentNewSmiles(
      const std::string& smiles) const;

  const FeaturizeConfig& config() const { return config_; }

 private:
  core::Result<std::vector<std::string>> ExtractUnits(
      const std::string& smiles) const;
  core::Result<std::vector<std::string>> ExtractUnitsFromPrepared(
      const std::string& smiles) const;

  FeaturizeConfig config_;
  chem::SubstructureVocabulary vocab_;
  std::vector<std::vector<int32_t>> drug_substructures_;
  std::unique_ptr<chem::Espf> espf_;  // set when mode == kEspf
};

}  // namespace hygnn::data

#endif  // HYGNN_DATA_FEATURIZE_H_
