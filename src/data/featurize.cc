#include "data/featurize.h"

#include <unordered_set>

#include "chem/canonical.h"
#include "chem/kmer.h"
#include "core/logging.h"

namespace hygnn::data {

using core::Result;
using core::Status;

Result<SubstructureFeaturizer> SubstructureFeaturizer::Build(
    const std::vector<DrugRecord>& drugs, const FeaturizeConfig& config) {
  if (drugs.empty()) {
    return Status::InvalidArgument("no drugs to featurize");
  }
  SubstructureFeaturizer featurizer;
  featurizer.config_ = config;

  if (config.mode == SubstructureMode::kEspf) {
    std::vector<std::string> corpus;
    corpus.reserve(drugs.size());
    for (const auto& drug : drugs) corpus.push_back(drug.smiles);
    chem::EspfConfig espf_config;
    espf_config.frequency_threshold = config.espf_frequency_threshold;
    auto espf_or = chem::Espf::Train(corpus, espf_config);
    if (!espf_or.ok()) return espf_or.status();
    featurizer.espf_ =
        std::make_unique<chem::Espf>(std::move(espf_or).value());
  }

  featurizer.drug_substructures_.reserve(drugs.size());
  for (const auto& drug : drugs) {
    auto units_or = featurizer.ExtractUnits(drug.smiles);
    if (!units_or.ok()) return units_or.status();
    std::vector<int32_t> ids;
    std::unordered_set<int32_t> seen;
    for (const auto& unit : units_or.value()) {
      const int32_t id = featurizer.vocab_.AddOrGet(unit);
      featurizer.vocab_.CountOccurrence(id);
      if (seen.insert(id).second) ids.push_back(id);
    }
    featurizer.drug_substructures_.push_back(std::move(ids));
  }
  return featurizer;
}

Result<std::vector<std::string>> SubstructureFeaturizer::ExtractUnits(
    const std::string& smiles) const {
  std::string prepared = smiles;
  if (config_.canonicalize_smiles) {
    auto canonical_or = chem::CanonicalSmiles(smiles);
    if (!canonical_or.ok()) return canonical_or.status();
    prepared = std::move(canonical_or).value();
  }
  return ExtractUnitsFromPrepared(prepared);
}

Result<std::vector<std::string>>
SubstructureFeaturizer::ExtractUnitsFromPrepared(
    const std::string& smiles) const {
  switch (config_.mode) {
    case SubstructureMode::kEspf:
      HYGNN_CHECK(espf_ != nullptr);
      return espf_->Segment(smiles);
    case SubstructureMode::kKmer:
      return chem::ExtractKmers(smiles, config_.kmer_k);
    case SubstructureMode::kStrobemer:
      return chem::ExtractRandstrobes(smiles, config_.strobemer);
  }
  return core::Status::Internal("unknown substructure mode");
}

Result<std::vector<int32_t>> SubstructureFeaturizer::SegmentNewSmiles(
    const std::string& smiles) const {
  auto units_or = ExtractUnits(smiles);
  if (!units_or.ok()) return units_or.status();
  std::vector<int32_t> ids;
  std::unordered_set<int32_t> seen;
  for (const auto& unit : units_or.value()) {
    const int32_t id = vocab_.Find(unit);
    if (id < 0) continue;
    if (seen.insert(id).second) ids.push_back(id);
  }
  return ids;
}

}  // namespace hygnn::data
