#ifndef HYGNN_DATA_IO_H_
#define HYGNN_DATA_IO_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "data/drug.h"

namespace hygnn::data {

/// Writes the drug registry as CSV: index,drugbank_id,name,smiles.
core::Status WriteDrugsCsv(const std::vector<DrugRecord>& drugs,
                           const std::string& path);

/// Reads a drug registry written by WriteDrugsCsv (latent fields are not
/// persisted — a loaded registry is what an external user would have).
core::Result<std::vector<DrugRecord>> ReadDrugsCsv(const std::string& path);

/// Writes labeled pairs as CSV: drug_a,drug_b,label.
core::Status WritePairsCsv(const std::vector<LabeledPair>& pairs,
                           const std::string& path);

/// Reads labeled pairs written by WritePairsCsv.
core::Result<std::vector<LabeledPair>> ReadPairsCsv(const std::string& path);

}  // namespace hygnn::data

#endif  // HYGNN_DATA_IO_H_
