#ifndef HYGNN_DATA_IO_H_
#define HYGNN_DATA_IO_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "data/drug.h"

namespace hygnn::data {

/// All CSV I/O goes through core::ActiveFileSystem(): writes are atomic
/// (temp + fsync + rename), so a crash mid-write leaves the previous
/// file or none, never a torn one. Every written CSV ends with a
/// `#crc32,xxxxxxxx` trailer line; the readers require and verify it,
/// rejecting truncated or corrupt files with a typed Status. Readers
/// report each malformed row as InvalidArgument naming `path:line`.

/// Appends the `#crc32` integrity trailer the CSV readers require.
/// WriteDrugsCsv/WritePairsCsv do this automatically; call it to adopt
/// an externally-produced CSV (or bless a test fixture).
void AppendCsvIntegrityFooter(std::string* csv);

/// Writes the drug registry as CSV: index,drugbank_id,name,smiles.
core::Status WriteDrugsCsv(const std::vector<DrugRecord>& drugs,
                           const std::string& path);

/// Reads a drug registry written by WriteDrugsCsv (latent fields are not
/// persisted — a loaded registry is what an external user would have).
core::Result<std::vector<DrugRecord>> ReadDrugsCsv(const std::string& path);

/// Writes labeled pairs as CSV: drug_a,drug_b,label.
core::Status WritePairsCsv(const std::vector<LabeledPair>& pairs,
                           const std::string& path);

/// Reads labeled pairs written by WritePairsCsv.
core::Result<std::vector<LabeledPair>> ReadPairsCsv(const std::string& path);

/// Checks that every pair references a drug in [0, num_drugs); returns
/// OutOfRange naming the offending pair otherwise. Callers must run
/// this between loading a pairs CSV and indexing into model embeddings.
core::Status ValidatePairs(const std::vector<LabeledPair>& pairs,
                           int32_t num_drugs);

}  // namespace hygnn::data

#endif  // HYGNN_DATA_IO_H_
