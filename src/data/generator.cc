#include "data/generator.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "chem/fragments.h"
#include "chem/generator.h"
#include "core/logging.h"
#include "core/rng.h"
#include "data/names.h"

namespace hygnn::data {

using core::Result;
using core::Status;

DdiDataset::DdiDataset(std::vector<DrugRecord> drugs,
                       std::vector<DrugPair> positives,
                       std::vector<std::pair<int32_t, int32_t>> reactive_rule)
    : drugs_(std::move(drugs)),
      positives_(std::move(positives)),
      reactive_rule_(std::move(reactive_rule)) {
  positive_keys_.reserve(positives_.size());
  for (const auto& p : positives_) {
    positive_keys_.push_back(static_cast<uint64_t>(p.a) * drugs_.size() +
                             p.b);
  }
  std::sort(positive_keys_.begin(), positive_keys_.end());
}

bool DdiDataset::IsKnownPositive(int32_t a, int32_t b) const {
  const DrugPair p = MakePair(a, b);
  const uint64_t key = static_cast<uint64_t>(p.a) * drugs_.size() + p.b;
  return std::binary_search(positive_keys_.begin(), positive_keys_.end(),
                            key);
}

bool DdiDataset::OracleInteracts(int32_t a, int32_t b) const {
  return OracleInteractionType(a, b) >= 0;
}

int32_t DdiDataset::OracleInteractionType(int32_t a, int32_t b) const {
  HYGNN_CHECK(a >= 0 && a < num_drugs());
  HYGNN_CHECK(b >= 0 && b < num_drugs());
  const auto& ca = drugs_[static_cast<size_t>(a)].reactive_classes;
  const auto& cb = drugs_[static_cast<size_t>(b)].reactive_classes;
  for (size_t rule = 0; rule < reactive_rule_.size(); ++rule) {
    const auto& [x, y] = reactive_rule_[rule];
    const bool a_has_x = std::find(ca.begin(), ca.end(), x) != ca.end();
    const bool b_has_y = std::find(cb.begin(), cb.end(), y) != cb.end();
    if (a_has_x && b_has_y) return static_cast<int32_t>(rule);
    const bool a_has_y = std::find(ca.begin(), ca.end(), y) != ca.end();
    const bool b_has_x = std::find(cb.begin(), cb.end(), x) != cb.end();
    if (a_has_y && b_has_x) return static_cast<int32_t>(rule);
  }
  return -1;
}

Result<DdiDataset> GenerateDataset(const DatasetConfig& config) {
  if (config.num_drugs < 2) {
    return Status::InvalidArgument("need at least 2 drugs");
  }
  if (config.min_groups_per_drug < 1 ||
      config.max_groups_per_drug < config.min_groups_per_drug) {
    return Status::InvalidArgument("invalid groups_per_drug range");
  }
  core::Rng rng(config.seed);
  const auto& library = chem::StandardFragmentLibrary();
  const auto group_indices = chem::FunctionalGroupIndices();
  const int32_t num_classes = chem::NumReactiveClasses();

  // Latent reactive-pair rule: distinct unordered class pairs.
  std::set<std::pair<int32_t, int32_t>> rule_set;
  const int64_t max_rule_pairs =
      static_cast<int64_t>(num_classes) * (num_classes + 1) / 2;
  const int64_t target_rules =
      std::min<int64_t>(config.num_reactive_rule_pairs, max_rule_pairs);
  while (static_cast<int64_t>(rule_set.size()) < target_rules) {
    int32_t x = static_cast<int32_t>(rng.UniformInt(num_classes));
    int32_t y = static_cast<int32_t>(rng.UniformInt(num_classes));
    if (x > y) std::swap(x, y);
    rule_set.insert({x, y});
  }
  std::vector<std::pair<int32_t, int32_t>> rule(rule_set.begin(),
                                                rule_set.end());

  chem::SmilesGenerator smiles_gen;
  NameGenerator name_gen;

  std::vector<DrugRecord> drugs;
  drugs.reserve(static_cast<size_t>(config.num_drugs));
  for (int32_t d = 0; d < config.num_drugs; ++d) {
    DrugRecord record;
    record.index = d;
    char id_buffer[16];
    std::snprintf(id_buffer, sizeof(id_buffer), "DB%05d", d + 1);
    record.drugbank_id = id_buffer;
    record.name = name_gen.Generate(&rng);

    const int32_t num_groups =
        config.min_groups_per_drug +
        static_cast<int32_t>(rng.UniformInt(
            config.max_groups_per_drug - config.min_groups_per_drug + 1));
    auto picks = rng.SampleWithoutReplacement(group_indices.size(),
                                              std::min<size_t>(
                                                  num_groups,
                                                  group_indices.size()));
    for (size_t pick : picks) {
      record.fragment_ids.push_back(group_indices[pick]);
    }
    std::unordered_set<int32_t> classes;
    for (int32_t frag : record.fragment_ids) {
      classes.insert(library[static_cast<size_t>(frag)].reactive_class);
    }
    record.reactive_classes.assign(classes.begin(), classes.end());
    std::sort(record.reactive_classes.begin(), record.reactive_classes.end());

    const int32_t filler =
        config.min_filler +
        static_cast<int32_t>(
            rng.UniformInt(config.max_filler - config.min_filler + 1));
    auto smiles_or = smiles_gen.Generate(record.fragment_ids, filler, &rng);
    if (!smiles_or.ok()) return smiles_or.status();
    record.smiles = std::move(smiles_or).value();
    drugs.push_back(std::move(record));
  }

  // Recorded DDIs: noisy observation of the latent rule.
  std::vector<DrugPair> positives;
  DdiDataset oracle_view(drugs, {}, rule);  // reuse OracleInteracts
  for (int32_t a = 0; a < config.num_drugs; ++a) {
    for (int32_t b = a + 1; b < config.num_drugs; ++b) {
      const bool rule_positive = oracle_view.OracleInteracts(a, b);
      const bool recorded =
          rule_positive ? rng.Bernoulli(config.positive_keep_prob)
                        : rng.Bernoulli(config.false_positive_rate);
      if (recorded) positives.push_back({a, b});
    }
  }
  if (positives.empty()) {
    return Status::Internal(
        "generated dataset has no positive DDIs; increase num_drugs or "
        "rule pairs");
  }
  return DdiDataset(std::move(drugs), std::move(positives), std::move(rule));
}

}  // namespace hygnn::data
