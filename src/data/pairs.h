#ifndef HYGNN_DATA_PAIRS_H_
#define HYGNN_DATA_PAIRS_H_

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "data/drug.h"
#include "data/generator.h"

namespace hygnn::data {

/// A labeled pair dataset split into train and test folds.
struct PairSplit {
  std::vector<LabeledPair> train;
  std::vector<LabeledPair> test;
};

/// Builds the paper's balanced sample set: every recorded DDI is a
/// positive, and for each positive one negative pair is drawn uniformly
/// from the complement of the recorded-DDI set (§IV-A).
std::vector<LabeledPair> BuildBalancedPairs(const DdiDataset& dataset,
                                            core::Rng* rng);

/// Random split with `train_fraction` of the (shuffled) pairs in train.
/// The paper uses 70/30; Figure 2 sweeps 30%..70%.
PairSplit RandomSplit(std::vector<LabeledPair> pairs, double train_fraction,
                      core::Rng* rng);

/// Cold-start split for the Table II case study: every pair touching a
/// drug in `new_drugs` goes to test; the rest go to train. Drugs in
/// `new_drugs` are thus entirely unseen during training.
PairSplit ColdStartSplit(const std::vector<LabeledPair>& pairs,
                         const std::vector<int32_t>& new_drugs);

/// Positive training pairs only (the edges of the DDI graph baselines
/// must come from the training fold).
std::vector<std::pair<int32_t, int32_t>> PositivePairs(
    const std::vector<LabeledPair>& pairs);

/// Fraction of pairs labeled positive.
double PositiveFraction(const std::vector<LabeledPair>& pairs);

}  // namespace hygnn::data

#endif  // HYGNN_DATA_PAIRS_H_
