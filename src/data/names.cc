#include "data/names.h"

#include <array>

#include "core/logging.h"

namespace hygnn::data {

namespace {

constexpr std::array<const char*, 20> kOnsets = {
    "Za", "Me", "Lo", "Tri", "Flu", "Car", "Ve", "Do", "Ami", "Pro",
    "Keto", "Ri", "Nor", "Eso", "Ral", "Ti", "Bu", "Cla", "Oxa", "Pre"};

constexpr std::array<const char*, 16> kMiddles = {
    "tra", "bo", "ral", "mi", "xo", "pi", "ve", "do",
    "lu",  "fa", "ne",  "so", "ta", "ri", "co", "ze"};

constexpr std::array<const char*, 14> kSuffixes = {
    "vine", "prol", "zole", "mide", "pine", "statin", "cillin",
    "mycin", "oxacin", "dipine", "sartan", "azepam", "caine", "fenac"};

}  // namespace

std::string NameGenerator::Generate(core::Rng* rng) {
  HYGNN_CHECK(rng != nullptr);
  for (int attempt = 0; attempt < 10000; ++attempt) {
    std::string name = kOnsets[rng->UniformInt(kOnsets.size())];
    if (rng->Bernoulli(0.6)) {
      name += kMiddles[rng->UniformInt(kMiddles.size())];
    }
    name += kSuffixes[rng->UniformInt(kSuffixes.size())];
    if (used_.insert(name).second) return name;
  }
  // Syllable space exhausted: append a numeric disambiguator.
  for (int counter = 2;; ++counter) {
    std::string name = kOnsets[rng->UniformInt(kOnsets.size())];
    name += kSuffixes[rng->UniformInt(kSuffixes.size())];
    name += "-" + std::to_string(counter);
    if (used_.insert(name).second) return name;
  }
}

}  // namespace hygnn::data
