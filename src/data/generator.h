#ifndef HYGNN_DATA_GENERATOR_H_
#define HYGNN_DATA_GENERATOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/status.h"
#include "data/drug.h"

namespace hygnn::data {

/// Parameters of the synthetic DrugBank-like corpus. Defaults are the
/// scaled-down configuration used by the benches; pass
/// `num_drugs = 824` for paper scale.
struct DatasetConfig {
  int32_t num_drugs = 300;
  /// Functional groups per drug (uniform in [min, max]).
  int32_t min_groups_per_drug = 1;
  int32_t max_groups_per_drug = 4;
  /// Inert filler fragments per drug (uniform in [min, max]).
  int32_t min_filler = 2;
  int32_t max_filler = 6;
  /// Number of (class, class) entries in the latent reactive-pair rule.
  /// Tuned so the recorded-DDI density lands near DrugBank's ~28%.
  int32_t num_reactive_rule_pairs = 12;
  /// Probability that a rule-positive pair is recorded as a known DDI
  /// (models the incompleteness of curated databases).
  double positive_keep_prob = 0.85;
  /// Probability that a rule-negative pair is nevertheless recorded
  /// (curation noise).
  double false_positive_rate = 0.015;
  uint64_t seed = 42;
};

/// The synthetic corpus: drugs with SMILES, known DDIs, and the latent
/// rule for oracle queries (external validation in the case study).
class DdiDataset {
 public:
  DdiDataset(std::vector<DrugRecord> drugs,
             std::vector<DrugPair> positives,
             std::vector<std::pair<int32_t, int32_t>> reactive_rule);

  const std::vector<DrugRecord>& drugs() const { return drugs_; }
  int32_t num_drugs() const { return static_cast<int32_t>(drugs_.size()); }

  /// All recorded (noisy) DDIs — the paper's "known DDIs".
  const std::vector<DrugPair>& positives() const { return positives_; }

  /// True when the recorded DDI list contains {a, b}.
  bool IsKnownPositive(int32_t a, int32_t b) const;

  /// Noise-free latent rule: do drugs a and b carry a reactive class
  /// pair? Plays the role of the external gold-standard databases
  /// (DrugBank/MedScape) in the paper's Table II validation.
  bool OracleInteracts(int32_t a, int32_t b) const;

  /// Index of the first reactive-rule pair that fires for (a, b), or
  /// -1 when they do not interact. This is the latent *interaction
  /// type* used by the typed-DDI extension (multi-relational
  /// prediction, cf. SumGNN/Decagon in the paper's related work).
  int32_t OracleInteractionType(int32_t a, int32_t b) const;

  const std::vector<std::pair<int32_t, int32_t>>& reactive_rule() const {
    return reactive_rule_;
  }

 private:
  std::vector<DrugRecord> drugs_;
  std::vector<DrugPair> positives_;
  std::vector<uint64_t> positive_keys_;  // sorted a*N+b keys
  std::vector<std::pair<int32_t, int32_t>> reactive_rule_;
};

/// Generates the corpus: drugs assembled from the standard fragment
/// library, a random reactive-pair rule over fragment classes, and the
/// noisy recorded-DDI list.
core::Result<DdiDataset> GenerateDataset(const DatasetConfig& config);

}  // namespace hygnn::data

#endif  // HYGNN_DATA_GENERATOR_H_
