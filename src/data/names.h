#ifndef HYGNN_DATA_NAMES_H_
#define HYGNN_DATA_NAMES_H_

#include <string>
#include <unordered_set>

#include "core/rng.h"

namespace hygnn::data {

/// Generates unique pronounceable pseudo-drug names ("Zatravine",
/// "Meboprol", ...) for the synthetic registry that stands in for the
/// paper's Table III DrugBank name column.
class NameGenerator {
 public:
  /// Returns a fresh unique name drawn from syllable templates.
  std::string Generate(core::Rng* rng);

 private:
  std::unordered_set<std::string> used_;
};

}  // namespace hygnn::data

#endif  // HYGNN_DATA_NAMES_H_
