#include "serve/bundle.h"

#include <cstdint>
#include <cstring>
#include <sstream>

#include "core/fs.h"
#include "core/rng.h"
#include "tensor/serialize.h"

namespace hygnn::serve {

using core::Result;
using core::Status;

namespace {

constexpr char kBundleMagic[4] = {'H', 'Y', 'G', 'B'};

/// Longest substructure string Load will accept; anything larger means
/// a corrupt length field, not chemistry.
constexpr uint32_t kMaxTokenBytes = 1u << 16;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

void WriteConfig(std::ostream& out, int64_t input_dim,
                 const model::HyGnnConfig& config) {
  WritePod(out, input_dim);
  WritePod(out, config.num_layers);
  WritePod(out, config.encoder.hidden_dim);
  WritePod(out, config.encoder.output_dim);
  WritePod(out, config.encoder.leaky_slope);
  WritePod(out, config.encoder.dropout);
  WritePod(out, static_cast<uint8_t>(config.encoder.use_attention ? 1 : 0));
  WritePod(out, static_cast<uint8_t>(config.decoder));
  WritePod(out, config.decoder_hidden_dim);
  WritePod(out, config.decoder_dropout);
}

Status ReadConfig(std::istream& in, int64_t* input_dim,
                  model::HyGnnConfig* config) {
  uint8_t use_attention = 0;
  uint8_t decoder_kind = 0;
  if (!ReadPod(in, input_dim) || !ReadPod(in, &config->num_layers) ||
      !ReadPod(in, &config->encoder.hidden_dim) ||
      !ReadPod(in, &config->encoder.output_dim) ||
      !ReadPod(in, &config->encoder.leaky_slope) ||
      !ReadPod(in, &config->encoder.dropout) ||
      !ReadPod(in, &use_attention) || !ReadPod(in, &decoder_kind) ||
      !ReadPod(in, &config->decoder_hidden_dim) ||
      !ReadPod(in, &config->decoder_dropout)) {
    return Status::IoError("truncated bundle config section");
  }
  config->encoder.use_attention = use_attention != 0;
  if (decoder_kind >
      static_cast<uint8_t>(model::DecoderKind::kMlp)) {
    return Status::IoError("unknown decoder kind " +
                           std::to_string(decoder_kind) + " in bundle");
  }
  config->decoder = static_cast<model::DecoderKind>(decoder_kind);
  if (*input_dim <= 0 || config->num_layers < 1 ||
      config->encoder.hidden_dim <= 0 || config->encoder.output_dim <= 0) {
    return Status::IoError("corrupt bundle config: non-positive dimension");
  }
  return Status::Ok();
}

void WriteVocabulary(std::ostream& out,
                     const chem::SubstructureVocabulary& vocabulary) {
  WritePod(out, static_cast<uint32_t>(vocabulary.size()));
  for (int32_t id = 0; id < vocabulary.size(); ++id) {
    const std::string& text = vocabulary.Text(id);
    WritePod(out, static_cast<uint32_t>(text.size()));
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    WritePod(out, vocabulary.Frequency(id));
  }
}

Status ReadVocabulary(std::istream& in,
                      chem::SubstructureVocabulary* vocabulary) {
  uint32_t count = 0;
  if (!ReadPod(in, &count)) {
    return Status::IoError("truncated bundle vocabulary section");
  }
  for (uint32_t id = 0; id < count; ++id) {
    uint32_t length = 0;
    if (!ReadPod(in, &length) || length > kMaxTokenBytes) {
      return Status::IoError("corrupt vocabulary entry length at id " +
                             std::to_string(id));
    }
    std::string text(length, '\0');
    in.read(text.data(), length);
    int64_t frequency = 0;
    if (!in || !ReadPod(in, &frequency)) {
      return Status::IoError("truncated vocabulary entry at id " +
                             std::to_string(id));
    }
    const int32_t assigned = vocabulary->AddOrGet(text);
    if (assigned != static_cast<int32_t>(id)) {
      return Status::IoError("duplicate vocabulary entry \"" + text +
                             "\" at id " + std::to_string(id));
    }
    vocabulary->CountOccurrence(assigned, frequency);
  }
  return Status::Ok();
}

}  // namespace

std::vector<std::string> WeightNames(const model::HyGnnConfig& config,
                                     size_t num_parameters) {
  std::vector<std::string> names;
  names.reserve(num_parameters);
  static const char* kEncoderRole[] = {"w_q", "g1", "w_p", "g2"};
  for (int32_t layer = 0; layer < config.num_layers; ++layer) {
    for (const char* role : kEncoderRole) {
      names.push_back("encoder.layer" + std::to_string(layer) + "." + role);
    }
  }
  size_t decoder_index = 0;
  while (names.size() < num_parameters) {
    names.push_back("decoder.param" + std::to_string(decoder_index++));
  }
  return names;
}

Status ModelBundle::Save(const model::HyGnnModel& model,
                         const chem::SubstructureVocabulary& vocabulary,
                         const std::string& path) {
  if (vocabulary.size() != model.input_dim()) {
    return Status::InvalidArgument(
        "vocabulary/model mismatch: vocabulary has " +
        std::to_string(vocabulary.size()) + " substructures, model input "
        "dimension is " + std::to_string(model.input_dim()));
  }
  // Serialize in memory, then commit through the crash-safe write path
  // (temp + fsync + rename, CRC32 footer) of the active filesystem.
  std::ostringstream out;
  out.write(kBundleMagic, sizeof(kBundleMagic));
  WritePod(out, kBundleVersion);
  WriteConfig(out, model.input_dim(), model.config());
  WriteVocabulary(out, vocabulary);
  const auto parameters = model.Parameters();
  const auto names = WeightNames(model.config(), parameters.size());
  std::vector<std::pair<std::string, tensor::Tensor>> named;
  named.reserve(parameters.size());
  for (size_t i = 0; i < parameters.size(); ++i) {
    named.emplace_back(names[i], parameters[i]);
  }
  if (auto status = tensor::SaveTensorsToStream(named, out); !status.ok()) {
    return Status(status.code(), status.message() + ": " + path);
  }
  return core::WriteFileDurable(core::ActiveFileSystem(), path, out.str());
}

Result<ModelBundle> ModelBundle::Load(const std::string& path) {
  auto raw = core::ActiveFileSystem().ReadFile(path);
  if (!raw.ok()) return raw.status();
  // Check the magic on the raw bytes before the integrity footer, so a
  // wrong-format file is reported as such rather than as "corrupt".
  if (raw.value().size() < sizeof(kBundleMagic) ||
      std::memcmp(raw.value().data(), kBundleMagic, sizeof(kBundleMagic)) !=
          0) {
    return Status::IoError("not a HyGNN model bundle: " + path);
  }
  auto payload = core::StripIntegrityFooter(raw.value());
  if (!payload.ok()) {
    return Status(payload.status().code(),
                  payload.status().message() + ": " + path);
  }
  std::istringstream in{std::string(payload.value())};
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kBundleMagic, sizeof(kBundleMagic)) != 0) {
    return Status::IoError("not a HyGNN model bundle: " + path);
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version)) {
    return Status::IoError("truncated bundle header: " + path);
  }
  if (version != kBundleVersion) {
    return Status::FailedPrecondition(
        "bundle format version mismatch: file has version " +
        std::to_string(version) + ", this build reads version " +
        std::to_string(kBundleVersion) + ": " + path);
  }
  ModelBundle bundle;
  if (auto status = ReadConfig(in, &bundle.input_dim, &bundle.config);
      !status.ok()) {
    return Status(status.code(), status.message() + ": " + path);
  }
  if (auto status = ReadVocabulary(in, &bundle.vocabulary); !status.ok()) {
    return Status(status.code(), status.message() + ": " + path);
  }
  if (bundle.vocabulary.size() != bundle.input_dim) {
    return Status::IoError(
        "corrupt bundle: vocabulary has " +
        std::to_string(bundle.vocabulary.size()) +
        " substructures but config says input dimension " +
        std::to_string(bundle.input_dim) + ": " + path);
  }
  auto weights = tensor::LoadTensorsFromStream(in);
  if (!weights.ok()) {
    return Status(weights.status().code(),
                  weights.status().message() + ": " + path);
  }
  bundle.weights = std::move(weights).value();
  return bundle;
}

Result<model::HyGnnModel> ModelBundle::BuildModel() const {
  // Weights are fully overwritten below, so the init seed is arbitrary
  // but fixed (keeps BuildModel deterministic even on partial failure).
  core::Rng rng(0);
  model::HyGnnModel model(input_dim, config, &rng);
  auto parameters = model.Parameters();
  if (auto status = tensor::RestoreParameters(weights, &parameters);
      !status.ok()) {
    return Status(status.code(),
                  "bundle weights do not fit the bundled config (" +
                      status.message() + ")");
  }
  return model;
}

}  // namespace hygnn::serve

namespace hygnn::model {

core::Status HyGnnModel::Save(
    const std::string& path,
    const chem::SubstructureVocabulary& vocabulary) const {
  return serve::ModelBundle::Save(*this, vocabulary, path);
}

core::Result<HyGnnModel> HyGnnModel::Load(
    const std::string& path, chem::SubstructureVocabulary* vocabulary) {
  auto bundle = serve::ModelBundle::Load(path);
  if (!bundle.ok()) return bundle.status();
  auto model = bundle.value().BuildModel();
  if (!model.ok()) return model.status();
  if (vocabulary != nullptr) {
    *vocabulary = std::move(bundle.value().vocabulary);
  }
  return std::move(model).value();
}

}  // namespace hygnn::model
