#include "serve/chaos.h"

#include <utility>

#include "core/logging.h"

namespace hygnn::serve {

void FaultInjectingScorer::Reset() {
  core::MutexLock lock(mutex_);
  HYGNN_DCHECK(!stalled_) << "Reset with a worker parked in a stall";
  batches_ = 0;
  stall_at_ = 0;
  released_ = false;
  fail_at_ = 0;
  fail_status_ = core::Status::Ok();
}

void FaultInjectingScorer::StallNthBatch(int64_t n) {
  core::MutexLock lock(mutex_);
  stall_at_ = n;
  released_ = false;
}

void FaultInjectingScorer::FailNthBatch(int64_t n, core::Status status) {
  HYGNN_CHECK(!status.ok()) << "injected batch failure must be non-Ok";
  core::MutexLock lock(mutex_);
  fail_at_ = n;
  fail_status_ = std::move(status);
}

void FaultInjectingScorer::AwaitStalled() {
  core::MutexLock lock(mutex_);
  while (!stalled_) stalled_cv_.Wait(mutex_);
}

void FaultInjectingScorer::ReleaseStall() {
  core::MutexLock lock(mutex_);
  released_ = true;
  released_cv_.NotifyAll();
}

int64_t FaultInjectingScorer::batches_started() const {
  core::MutexLock lock(mutex_);
  return batches_;
}

core::Status FaultInjectingScorer::OnBatchStart() {
  core::MutexLock lock(mutex_);
  const int64_t index = ++batches_;
  if (index == stall_at_) {
    stalled_ = true;
    stalled_cv_.NotifyAll();
    // `released_` is sticky rather than an event: a ReleaseStall that
    // beats the worker to the stall point still releases it, so tests
    // cannot deadlock on arrival order.
    while (!released_) released_cv_.Wait(mutex_);
    stalled_ = false;
  }
  if (index == fail_at_) return fail_status_;
  return core::Status::Ok();
}

}  // namespace hygnn::serve
