#ifndef HYGNN_SERVE_SCORING_H_
#define HYGNN_SERVE_SCORING_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/status.h"
#include "data/drug.h"
#include "hygnn/model.h"
#include "hygnn/scorer.h"
#include "serve/embedding_store.h"
#include "serve/request.h"

namespace hygnn::serve {

/// Pairs per core::ParallelFor chunk in PairScorer. A fixed constant —
/// never derived from the thread count — so the batch partition (and
/// therefore every float) is identical at any thread count.
inline constexpr int64_t kScoreChunkPairs = 256;

/// Batched pair scoring against cached embeddings: gathers each pair's
/// rows from one pinned StoreSnapshot and runs only the decoder,
/// skipping the encoder entirely. Chunks are distributed over
/// core::ParallelFor; because the decoder is row-independent and the
/// snapshot rows are exact copies of the encoder output, scores are
/// bit-identical to the cold HyGnnModel::PredictProbabilities path at
/// any thread count — and independent of how pairs are grouped into
/// requests, which is what lets serve::Server coalesce requests into
/// dynamic batches without perturbing any result.
///
/// Every scoring call reads exactly one catalog epoch: the overload
/// without a snapshot pins the store's current one; the explicit
/// overload lets serve::Server score a whole batch against the epoch
/// it pinned at batch open, so a catalog swap mid-batch can never tear
/// a result.
///
/// Runs under tensor::InferenceModeScope; a debug assertion verifies
/// that no autograd graph nodes are allocated on the serving path.
/// Model and store must outlive the scorer; the store must be valid()
/// (Rebuild after any weight reload).
class PairScorer : public model::Scorer {
 public:
  PairScorer(const model::HyGnnModel* model, const EmbeddingStore* store);

  /// The typed request/response surface against the store's *current*
  /// epoch. Rejects a stale store with FailedPrecondition and
  /// out-of-catalog pair ids with InvalidArgument — no crash paths, so
  /// a bad request from one serving client cannot take the process
  /// down.
  core::Result<ScoreResponse> ScorePairs(const ScoreRequest& request) const;

  /// Scores against an explicit pinned epoch: validation and every row
  /// read use `snapshot`, never the live store, so the call is immune
  /// to concurrent AddDrug/Rebuild/Invalidate publications. A null
  /// snapshot is the stale store (FailedPrecondition); ids outside the
  /// snapshot's catalog are InvalidArgument.
  core::Result<ScoreResponse> ScorePairs(
      const ScoreRequest& request,
      const std::shared_ptr<const StoreSnapshot>& snapshot) const;

  /// DEPRECATED: the pre-request/response signature, kept as a thin
  /// shim over ScorePairs (and as the model::Scorer interface
  /// adapter). Crashes on invalid input where ScorePairs returns a
  /// typed status — prefer ScorePairs in new code.
  std::vector<float> Score(
      std::span<const data::LabeledPair> pairs) const override;

 private:
  /// Scoring body shared by ScorePairs and the deprecated shim; input
  /// must already be validated against `snapshot`.
  std::vector<float> ScoreValidated(std::span<const data::LabeledPair> pairs,
                                    const StoreSnapshot& snapshot) const;

  const model::HyGnnModel* model_;
  const EmbeddingStore* store_;
};

/// Screens one drug against the whole cached catalog and returns the
/// top-K candidates in ScreeningHitBefore order (descending score,
/// ties broken by ascending drug id — a total order, so results are
/// deterministic across stdlib sort implementations). Each Screen call
/// pins one StoreSnapshot for its whole pass, so a catalog growing
/// concurrently can never produce a shortlist that mixes epochs.
class ScreeningEngine {
 public:
  ScreeningEngine(const model::HyGnnModel* model,
                  const EmbeddingStore* store);

  /// The typed request/response surface. Rejects a stale store with
  /// FailedPrecondition, an out-of-catalog query with InvalidArgument,
  /// and a negative top_k with InvalidArgument.
  core::Result<ScreenResponse> Screen(const ScreenRequest& request) const;

  /// DEPRECATED: the pre-request/response signature, kept as a thin
  /// shim over Screen. Crashes on invalid input where Screen returns a
  /// typed status; negative `k` is clamped to 0 (the old behavior) —
  /// prefer Screen in new code.
  std::vector<ScreeningHit> TopK(int32_t query, int32_t k) const;

 private:
  const EmbeddingStore* store_;
  PairScorer scorer_;
};

}  // namespace hygnn::serve

#endif  // HYGNN_SERVE_SCORING_H_
