#ifndef HYGNN_SERVE_SCORING_H_
#define HYGNN_SERVE_SCORING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/drug.h"
#include "hygnn/model.h"
#include "hygnn/scorer.h"
#include "serve/embedding_store.h"

namespace hygnn::serve {

/// Pairs per core::ParallelFor chunk in PairScorer. A fixed constant —
/// never derived from the thread count — so the batch partition (and
/// therefore every float) is identical at any thread count.
inline constexpr int64_t kScoreChunkPairs = 256;

/// Batched pair scoring against cached embeddings: gathers each pair's
/// rows from the EmbeddingStore and runs only the decoder, skipping the
/// encoder entirely. Chunks are distributed over core::ParallelFor;
/// because the decoder is row-independent and the store rows are exact
/// copies of the encoder output, scores are bit-identical to the cold
/// HyGnnModel::PredictProbabilities path at any thread count.
///
/// Runs under tensor::InferenceModeScope; a debug assertion verifies
/// that no autograd graph nodes are allocated on the serving path.
/// Model and store must outlive the scorer; the store must be valid()
/// (Rebuild after any weight reload).
class PairScorer : public model::Scorer {
 public:
  PairScorer(const model::HyGnnModel* model, const EmbeddingStore* store);

  std::vector<float> Score(
      std::span<const data::LabeledPair> pairs) const override;

 private:
  const model::HyGnnModel* model_;
  const EmbeddingStore* store_;
};

/// One screening result: a catalog drug and its interaction probability
/// with the query.
struct ScreeningHit {
  int32_t drug = 0;
  float score = 0.0f;
};

/// Screens one drug against the whole cached catalog and returns the
/// top-K candidates, ordered by descending score with ties broken by
/// ascending drug id — a total order, so results are deterministic.
class ScreeningEngine {
 public:
  ScreeningEngine(const model::HyGnnModel* model,
                  const EmbeddingStore* store);

  /// Top `k` interaction candidates for `query` among all other drugs
  /// in the store (the query itself is excluded). Returns fewer than
  /// `k` hits when the catalog is smaller.
  std::vector<ScreeningHit> TopK(int32_t query, int32_t k) const;

 private:
  const EmbeddingStore* store_;
  PairScorer scorer_;
};

}  // namespace hygnn::serve

#endif  // HYGNN_SERVE_SCORING_H_
