#ifndef HYGNN_SERVE_EMBEDDING_STORE_H_
#define HYGNN_SERVE_EMBEDDING_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/mutex.h"
#include "core/status.h"
#include "core/thread_annotations.h"
#include "data/featurize.h"
#include "hygnn/encoder.h"
#include "hygnn/model.h"

namespace hygnn::serve {

/// Cache of drug (hyperedge) embeddings for serving. The paper's
/// architecture encodes each drug once and decodes per pair; this store
/// is the "encode once" half: Rebuild runs the encoder a single time
/// over the whole catalog (under tensor::InferenceModeScope, so no
/// autograd graph is retained) into a flat row-major buffer, and every
/// subsequent pair score is a cheap decoder pass over cached rows.
///
/// Cold-start drugs join the catalog through AddDrug, which extends the
/// cache *incrementally*: it mirrors the single-layer encoder's kernel
/// sequence over just the new hyperedge and the nodes it touches, so
/// the appended row is bit-identical to a full re-encode of the
/// extended hypergraph — without paying for one. Rows already in the
/// cache intentionally keep their snapshot values (adding a catalog
/// entry must not silently shift existing scores); call Rebuild to fold
/// new drugs into every row.
///
/// The buffer grows by copy-on-grow, so pointers returned by Row() are
/// invalidated by AddDrug and Rebuild. Each Rebuild bumps generation();
/// Invalidate marks the cache stale (call it after reloading model
/// weights) and every read path refuses to serve until the next
/// Rebuild.
///
/// Thread-safety: every *mutating* entry point (Rebuild, AddDrug*,
/// Invalidate) serializes on an internal annotated mutex, so concurrent
/// catalog growth is safe; the external-id registry is fully
/// mutex-guarded (FindDrug locks too). Read paths over the embedding
/// buffer (Row, num_drugs, valid) stay lock-free for scorer workers and
/// must not race a mutator — consumers detect change via generation()
/// and the future serve::Server quiesces scoring around mutations.
class EmbeddingStore {
 public:
  /// `model` must outlive the store. The store starts invalid; call
  /// Rebuild before reading.
  explicit EmbeddingStore(const model::HyGnnModel* model);

  /// Encodes every drug in `context` and replaces the cache. Also
  /// snapshots the encoder intermediates AddDrug needs (single-layer
  /// models; deeper stacks can Rebuild and Score but not AddDrug).
  core::Status Rebuild(const model::HypergraphContext& context)
      HYGNN_EXCLUDES(mutex_);

  /// Appends one drug given its substructure node ids (duplicates and
  /// ordering don't matter; ids must be within the encoder input
  /// vocabulary). Returns the new drug's id. Requires a valid store
  /// backed by a single-layer encoder.
  core::Result<int32_t> AddDrug(const std::vector<int32_t>& substructures)
      HYGNN_EXCLUDES(mutex_);

  /// ESPF-segments `smiles` against the featurizer's fixed vocabulary,
  /// then AddDrug on the resulting ids. The featurizer's vocabulary
  /// must match the model input dimension.
  core::Result<int32_t> AddDrugSmiles(
      const data::SubstructureFeaturizer& featurizer,
      const std::string& smiles) HYGNN_EXCLUDES(mutex_);

  /// AddDrug under an external identifier (e.g. a DrugBank accession).
  /// Rejects an already-registered id with AlreadyExists *before*
  /// touching the cache, so a double-submitted drug cannot occupy two
  /// rows. The registry is cleared by Rebuild (row ids are reassigned).
  core::Result<int32_t> AddDrugNamed(
      const std::string& external_id,
      const std::vector<int32_t>& substructures) HYGNN_EXCLUDES(mutex_);

  /// Row id previously returned by AddDrugNamed for `external_id`;
  /// NotFound when the id was never registered (or a Rebuild cleared it).
  core::Result<int32_t> FindDrug(const std::string& external_id) const
      HYGNN_EXCLUDES(mutex_);

  /// Marks the cache stale without touching its contents. Read paths
  /// fail until the next Rebuild.
  void Invalidate() HYGNN_EXCLUDES(mutex_) {
    core::MutexLock lock(mutex_);
    valid_ = false;
  }

  bool valid() const { return valid_; }

  /// Incremented on every successful Rebuild. Lets consumers holding
  /// derived state (top-K lists, score caches) detect that embeddings
  /// changed underneath them.
  uint64_t generation() const { return generation_; }

  int32_t num_drugs() const { return num_drugs_; }
  int64_t dim() const { return dim_; }

  /// Embedding row of `drug`; valid until the next AddDrug/Rebuild.
  const float* Row(int32_t drug) const;

 private:
  /// Body of AddDrug; factored out so AddDrugNamed can extend the cache
  /// while already holding the mutator lock.
  core::Result<int32_t> AddDrugLocked(
      const std::vector<int32_t>& substructures) HYGNN_REQUIRES(mutex_);

  const model::HyGnnModel* model_;
  /// Serializes every mutating entry point. The embedding buffers below
  /// are written only under this lock but read lock-free (see the class
  /// comment); only names_ is fully guarded on both sides, so only it
  /// carries the GUARDED_BY annotation.
  mutable core::Mutex mutex_;
  bool valid_ = false;
  uint64_t generation_ = 0;
  int32_t num_drugs_ = 0;
  int32_t num_nodes_ = 0;
  int64_t dim_ = 0;
  /// [num_drugs, dim] row-major drug embeddings.
  std::vector<float> embeddings_;
  /// Single-layer encoder intermediates for incremental AddDrug:
  /// projected edge features W_q F [num_drugs, hidden], the hyperedge
  /// attention score g1 . LeakyReLU(W_q q_j) per drug, and each node's
  /// incident drugs in ascending id order (the exact order the segment
  /// kernels visit incidence rows in).
  std::vector<float> q_proj_;
  std::vector<float> edge_scores_;
  std::vector<std::vector<int32_t>> incident_;
  /// External id -> row id for drugs added via AddDrugNamed. Cleared on
  /// Rebuild, which reassigns row ids.
  std::unordered_map<std::string, int32_t> names_ HYGNN_GUARDED_BY(mutex_);
};

}  // namespace hygnn::serve

#endif  // HYGNN_SERVE_EMBEDDING_STORE_H_
