#ifndef HYGNN_SERVE_EMBEDDING_STORE_H_
#define HYGNN_SERVE_EMBEDDING_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/mutex.h"
#include "core/status.h"
#include "core/thread_annotations.h"
#include "data/featurize.h"
#include "hygnn/encoder.h"
#include "hygnn/model.h"

namespace hygnn::serve {

/// One immutable epoch of the serving catalog: a frozen view of the
/// drug-embedding cache at a single generation. Snapshots are built off
/// to the side by EmbeddingStore mutators and published with one atomic
/// pointer swap; after publication a snapshot never changes, so readers
/// holding one need no synchronization of any kind. Reclamation is
/// grace-period-based via shared_ptr ownership: the previous epoch's
/// buffer is freed when the last reader pinning it drops its reference
/// (for serve::Server, when the last batch scored against it drains).
class StoreSnapshot {
 public:
  ~StoreSnapshot() { live_count_.fetch_sub(1, std::memory_order_relaxed); }

  StoreSnapshot(const StoreSnapshot&) = delete;
  StoreSnapshot& operator=(const StoreSnapshot&) = delete;

  /// The epoch tag: the store generation this snapshot was published
  /// at. Strictly increasing across publications of one store.
  uint64_t generation() const { return generation_; }

  int32_t num_drugs() const { return num_drugs_; }
  int64_t dim() const { return dim_; }

  /// Embedding row of `drug`; stable for the snapshot's lifetime.
  const float* Row(int32_t drug) const;

  /// Snapshots currently alive process-wide (every generation still
  /// pinned by some reader, plus each store's current epoch). Tests use
  /// deltas of this to assert grace-period reclamation; a relaxed
  /// counter bumped once per catalog mutation costs nothing in serving.
  static int64_t LiveCount() {
    return live_count_.load(std::memory_order_relaxed);
  }

 private:
  friend class EmbeddingStore;
  StoreSnapshot(uint64_t generation, int32_t num_drugs, int64_t dim,
                std::vector<float> embeddings)
      : generation_(generation),
        num_drugs_(num_drugs),
        dim_(dim),
        embeddings_(std::move(embeddings)) {
    live_count_.fetch_add(1, std::memory_order_relaxed);
  }

  static std::atomic<int64_t> live_count_;

  const uint64_t generation_;
  const int32_t num_drugs_;
  const int64_t dim_;
  /// [num_drugs, dim] row-major drug embeddings.
  const std::vector<float> embeddings_;
};

/// Cache of drug (hyperedge) embeddings for serving. The paper's
/// architecture encodes each drug once and decodes per pair; this store
/// is the "encode once" half: Rebuild runs the encoder a single time
/// over the whole catalog (under tensor::InferenceModeScope, so no
/// autograd graph is retained) into a flat row-major buffer, and every
/// subsequent pair score is a cheap decoder pass over cached rows.
///
/// Cold-start drugs join the catalog through AddDrug, which extends the
/// cache *incrementally*: it mirrors the single-layer encoder's kernel
/// sequence over just the new hyperedge and the nodes it touches, so
/// the appended row is bit-identical to a full re-encode of the
/// extended hypergraph — without paying for one. Rows already in the
/// cache intentionally keep their snapshot values (adding a catalog
/// entry must not silently shift existing scores); call Rebuild to fold
/// new drugs into every row.
///
/// Epoch-based hot swap (RCU-style): the cache lives in an immutable
/// StoreSnapshot behind a shared_ptr handle guarded by a dedicated
/// handle mutex. Snapshot() is the read side — one pointer copy under
/// a lock held for a few instructions, never across snapshot
/// construction or scoring — and it pins one epoch for as long as the
/// caller holds the pointer. Mutators (Rebuild, AddDrug*, Invalidate)
/// serialize on an internal mutex, build the next epoch's buffer off
/// to the side, and publish it with a single pointer swap — readers
/// never wait on a build, never observe a half-written buffer, and a
/// reader that pinned epoch N keeps scoring against N's bytes while
/// N+1 serves new arrivals. The superseded snapshot is reclaimed when
/// its last reader drains (shared_ptr refcount as the grace period).
/// AddDrug pays one O(num_drugs * dim) buffer copy per publication —
/// the classic RCU copy cost, bought back by a mutation-free read path.
///
/// Invalidate publishes a null snapshot (the stale state: every read
/// path refuses with FailedPrecondition until the next Rebuild); each
/// publication bumps generation(), so consumers holding derived state
/// detect that the catalog moved underneath them.
class EmbeddingStore {
 public:
  /// `model` must outlive the store. The store starts invalid; call
  /// Rebuild before reading.
  explicit EmbeddingStore(const model::HyGnnModel* model);

  /// Encodes every drug in `context` and replaces the cache. Also
  /// snapshots the encoder intermediates AddDrug needs (single-layer
  /// models; deeper stacks can Rebuild and Score but not AddDrug).
  core::Status Rebuild(const model::HypergraphContext& context)
      HYGNN_EXCLUDES(mutex_);

  /// Appends one drug given its substructure node ids (duplicates and
  /// ordering don't matter; ids must be within the encoder input
  /// vocabulary). Returns the new drug's id. Requires a valid store
  /// backed by a single-layer encoder. Publishes a new snapshot; the
  /// previous epoch keeps serving pinned readers until they drain.
  core::Result<int32_t> AddDrug(const std::vector<int32_t>& substructures)
      HYGNN_EXCLUDES(mutex_);

  /// ESPF-segments `smiles` against the featurizer's fixed vocabulary,
  /// then AddDrug on the resulting ids. The featurizer's vocabulary
  /// must match the model input dimension.
  core::Result<int32_t> AddDrugSmiles(
      const data::SubstructureFeaturizer& featurizer,
      const std::string& smiles) HYGNN_EXCLUDES(mutex_);

  /// AddDrug under an external identifier (e.g. a DrugBank accession).
  /// Rejects an already-registered id with AlreadyExists *before*
  /// touching the cache, so a double-submitted drug cannot occupy two
  /// rows. The registry is cleared by Rebuild (row ids are reassigned).
  core::Result<int32_t> AddDrugNamed(
      const std::string& external_id,
      const std::vector<int32_t>& substructures) HYGNN_EXCLUDES(mutex_);

  /// Row id previously returned by AddDrugNamed for `external_id`;
  /// NotFound when the id was never registered (or a Rebuild cleared it).
  core::Result<int32_t> FindDrug(const std::string& external_id) const
      HYGNN_EXCLUDES(mutex_);

  /// Marks the cache stale by publishing a null snapshot (call it after
  /// reloading model weights). Read paths fail until the next Rebuild;
  /// readers still pinning an older epoch keep their (now outdated)
  /// bytes until they drain.
  void Invalidate() HYGNN_EXCLUDES(mutex_);

  /// The read side: pins the current epoch. One pointer copy under
  /// the handle mutex (held for a few instructions — never across a
  /// rebuild); the returned snapshot — and every Row pointer inside
  /// it — stays valid for as long as the caller holds the pointer,
  /// across any number of concurrent AddDrug/Rebuild publications.
  /// Null when the store is stale (never rebuilt, or Invalidate'd).
  std::shared_ptr<const StoreSnapshot> Snapshot() const
      HYGNN_EXCLUDES(snapshot_mutex_) {
    core::MutexLock lock(snapshot_mutex_);
    return snapshot_;
  }

  /// True when a current epoch exists (Snapshot() non-null).
  bool valid() const { return Snapshot() != nullptr; }

  /// Incremented on every publication (Rebuild, AddDrug, Invalidate).
  /// Lets consumers holding derived state (top-K lists, score caches,
  /// pinned snapshots) detect that the catalog changed underneath them;
  /// equals Snapshot()->generation() for the current epoch.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Catalog size of the *current* epoch (0 when stale). A mutator may
  /// publish between this call and the next; pin Snapshot() instead
  /// when several reads must agree.
  int32_t num_drugs() const;
  int64_t dim() const;

  /// Embedding row of `drug` in the *current* epoch. The pointer is
  /// valid until the next AddDrug/Rebuild publication retires this
  /// epoch; readers that outlive mutations must pin Snapshot() and use
  /// its Row instead.
  const float* Row(int32_t drug) const;

 private:
  /// Body of AddDrug; factored out so AddDrugNamed can extend the cache
  /// while already holding the mutator lock.
  core::Result<int32_t> AddDrugLocked(
      const std::vector<int32_t>& substructures) HYGNN_REQUIRES(mutex_);

  /// Publishes `snapshot` (may be null = stale) as the current epoch
  /// and bumps generation(). The single pointer swap every mutator
  /// funnels through.
  void Publish(std::shared_ptr<const StoreSnapshot> snapshot)
      HYGNN_REQUIRES(mutex_);

  const model::HyGnnModel* model_;
  /// Serializes every mutating entry point; the read side never takes
  /// it (Snapshot() takes only snapshot_mutex_). The AddDrug
  /// intermediates below are build-side state written and read only
  /// under this lock; names_ is fully mutex-guarded and carries the
  /// annotation.
  mutable core::Mutex mutex_;
  /// Guards only the handle word below. Held for one pointer copy on
  /// the read side and one pointer assignment in Publish — never while
  /// an epoch is built or scored against. A dedicated mutex (not
  /// std::atomic<shared_ptr>) because libstdc++-12's _Sp_atomic
  /// releases its internal lock bit with a relaxed fetch_sub, which
  /// tsan's happens-before model cannot see — every concurrent
  /// load/store pair reports a false data race.
  mutable core::Mutex snapshot_mutex_ HYGNN_ACQUIRED_AFTER(mutex_);
  /// The current epoch. Replaced only by Publish (mutators hold mutex_
  /// and then take snapshot_mutex_ for the swap). Null = stale.
  std::shared_ptr<const StoreSnapshot> snapshot_
      HYGNN_GUARDED_BY(snapshot_mutex_);
  /// Monotonic publication counter (see generation()). Written only
  /// under mutex_, read lock-free.
  std::atomic<uint64_t> generation_{0};
  int32_t num_nodes_ = 0;
  /// Single-layer encoder intermediates for incremental AddDrug:
  /// projected edge features W_q F [num_drugs, hidden], the hyperedge
  /// attention score g1 . LeakyReLU(W_q q_j) per drug, and each node's
  /// incident drugs in ascending id order (the exact order the segment
  /// kernels visit incidence rows in).
  std::vector<float> q_proj_;
  std::vector<float> edge_scores_;
  std::vector<std::vector<int32_t>> incident_;
  /// External id -> row id for drugs added via AddDrugNamed. Cleared on
  /// Rebuild, which reassigns row ids.
  std::unordered_map<std::string, int32_t> names_ HYGNN_GUARDED_BY(mutex_);
};

}  // namespace hygnn::serve

#endif  // HYGNN_SERVE_EMBEDDING_STORE_H_
