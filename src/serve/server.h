#ifndef HYGNN_SERVE_SERVER_H_
#define HYGNN_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/mutex.h"
#include "core/status.h"
#include "core/thread_annotations.h"
#include "core/thread_pool.h"
#include "hygnn/model.h"
#include "serve/embedding_store.h"
#include "serve/request.h"
#include "serve/scoring.h"

namespace hygnn::serve {

/// The serving front-end: a request pipeline that turns the
/// library-call-per-batch PairScorer into a service loop with SLOs.
///
/// Architecture (marian-dev batch_generator style):
///
///   submitters ──> bounded MPMC queue ──> dynamic batcher ──> workers
///                  (admission control)    (close a batch on    (shared
///                   shed when full         max-size or          store
///                   ResourceExhausted)     max-wait-μs)         cache)
///
/// * Admission control: SubmitAsync validates the request against the
///   catalog, then enqueues — or sheds immediately with a typed
///   ResourceExhausted when queue_capacity requests are already
///   waiting. Overload degrades to fast typed errors, never to
///   unbounded queue growth or blocked submitters.
/// * Dynamic batching: a worker opens a batch with the oldest queued
///   request and keeps appending requests until the batch holds
///   max_batch pairs or has been open max_wait_us microseconds,
///   whichever comes first. Requests are never split across batches.
/// * Determinism: a batch is scored by concatenating its requests'
///   pairs into one PairScorer::ScorePairs call. The scorer's fixed
///   chunk partition and row-independent decoder make every per-request
///   result bit-identical to scoring that request alone, regardless of
///   batch composition, worker count, or arrival order (pinned by
///   tests/server_test.cc).
/// * Shutdown: Shutdown() stops admitting, then drains — every request
///   already accepted completes with a real result before workers
///   exit. Waiters never hang.
///
/// Requests may be submitted before Start(); they sit in the queue
/// until workers spawn. Start/Shutdown are not safe to call
/// concurrently with each other (call them from one owning thread);
/// SubmitAsync/Score are safe from any number of threads.
///
/// The model and store must outlive the server. Workers read the store
/// lock-free, so catalog mutations (AddDrug/Rebuild/Invalidate) must
/// be quiesced around: Shutdown, mutate, Start a fresh server.
class Server {
 public:
  /// A submitted request's completion handle. Submitter and worker
  /// share ownership via shared_ptr, so a caller may drop its handle
  /// without waiting (fire-and-forget) and the worker side stays valid.
  class Pending {
   public:
    /// Blocks until the request's batch has been scored, then returns
    /// the result (a copy — Wait may be called repeatedly). The
    /// result is an error only when the whole batch failed to score
    /// (e.g. the store went stale between admission and scoring) or
    /// the server was torn down without ever starting.
    core::Result<ScoreResponse> Wait();

    /// True once the result is available; Wait will not block.
    bool done() const;

   private:
    friend class Server;
    explicit Pending(ScoreRequest request)
        : request_(std::move(request)) {}

    void Complete(core::Result<ScoreResponse> result);

    /// Owned by the submitter until SubmitAsync succeeds, then by the
    /// worker that batches it; never mutated after that hand-off, so
    /// reads from the scoring path need no lock.
    ScoreRequest request_;
    /// Enqueue timestamp (obs::NowNanos) for the queue-wait histogram;
    /// 0 when metrics were off at submit time.
    uint64_t enqueue_nanos_ = 0;

    mutable core::Mutex mutex_;
    core::CondVar done_cv_;
    bool done_ HYGNN_GUARDED_BY(mutex_) = false;
    std::optional<core::Result<ScoreResponse>> result_
        HYGNN_GUARDED_BY(mutex_);
  };

  /// Always-on pipeline counters (relaxed atomics — cheap enough to
  /// never gate). The obs registry mirrors richer per-stage histograms
  /// when metrics are enabled.
  struct Stats {
    uint64_t accepted = 0;   ///< requests admitted to the queue
    uint64_t shed = 0;       ///< requests refused with ResourceExhausted
    uint64_t completed = 0;  ///< requests whose result was delivered
    uint64_t batches = 0;    ///< batches scored
  };

  /// Model and store must outlive the server; `options` are validated
  /// by Start (construction never fails).
  Server(const model::HyGnnModel* model, const EmbeddingStore* store,
         const ServerOptions& options);

  /// Joins workers; any still-queued request (server never started)
  /// completes with a FailedPrecondition result rather than hanging
  /// its waiter.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Validates options and spawns the worker pool. FailedPrecondition
  /// when already started or already shut down.
  core::Status Start();

  /// Stops admission, drains every accepted request, joins workers.
  /// Idempotent. Requests submitted after Shutdown are refused with
  /// FailedPrecondition.
  void Shutdown();

  /// Non-blocking admission. Validates the request against the catalog
  /// (InvalidArgument / FailedPrecondition) and applies admission
  /// control (ResourceExhausted when the queue is at capacity). On Ok
  /// the returned handle's Wait() delivers the response.
  core::Result<std::shared_ptr<Pending>> SubmitAsync(ScoreRequest request);

  /// Blocking convenience: SubmitAsync + Wait.
  core::Result<ScoreResponse> Score(ScoreRequest request);

  Stats stats() const;
  const ServerOptions& options() const { return options_; }

 private:
  /// Worker loop: close batches, score them, deliver results. Exits
  /// when shutdown is signalled and the queue is drained.
  void WorkerLoop() HYGNN_EXCLUDES(mutex_);

  /// Blocks for the next batch (dynamic batching rules above). Empty
  /// means shutdown-and-drained: the worker should exit.
  std::vector<std::shared_ptr<Pending>> NextBatch() HYGNN_EXCLUDES(mutex_);

  /// Scores one batch and completes every request in it.
  void RunBatch(const std::vector<std::shared_ptr<Pending>>& batch);

  const ServerOptions options_;
  PairScorer scorer_;
  const EmbeddingStore* store_;

  mutable core::Mutex mutex_;
  /// Signalled on enqueue and on shutdown.
  core::CondVar queue_nonempty_;
  std::deque<std::shared_ptr<Pending>> queue_ HYGNN_GUARDED_BY(mutex_);
  bool started_ HYGNN_GUARDED_BY(mutex_) = false;
  bool shutdown_ HYGNN_GUARDED_BY(mutex_) = false;

  /// Touched only by Start/Shutdown/destructor (single owning thread).
  std::vector<core::WorkerThread> workers_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> batches_{0};
};

}  // namespace hygnn::serve

#endif  // HYGNN_SERVE_SERVER_H_
